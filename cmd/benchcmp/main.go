// Command benchcmp compares a benchmark report (BENCH_*.json) against
// a committed baseline and fails when a tracked metric drifts outside
// the tolerance band. It is the regression gate of the CI bench job.
//
// Usage:
//
//	benchcmp -baseline BENCH_iter.json -current new.json \
//	    -tol 0.25 -skip cpu.cold_seconds,threads -min cpu.speedup=2 \
//	    -max cpu_estimated.cold_over_warm=4
//
// Both files are flattened to dotted numeric paths
// (engines.hash.seconds, gpu.speedup, ...). Every numeric field
// present in both files and not matched by a -skip substring must stay
// within the relative tolerance of the baseline value. Wall-clock
// fields are machine-dependent and belong in -skip; ratios and the
// simulated-device numbers are stable enough to gate on. -min and -max
// add absolute floors and ceilings (repeatable) that hold regardless
// of the baseline, e.g. the warm-path speedup acceptance target.
//
// Forward compatibility: a baseline field missing from the current
// report is a failure only when no -skip substring matches it, and
// fields only in the current report are noted, never failed — so a
// newer benchmark binary can grow fields ahead of the committed
// baseline, and an older baseline can retire fields behind -skip.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// minFlags collects repeated -min/-max path=value assertions.
type minFlags map[string]float64

func (m minFlags) String() string { return fmt.Sprint(map[string]float64(m)) }

func (m minFlags) Set(s string) error {
	path, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want path=value, got %q", s)
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return err
	}
	m[path] = f
	return nil
}

func main() {
	baseFile := flag.String("baseline", "", "committed baseline report (required)")
	curFile := flag.String("current", "", "freshly generated report (required)")
	tol := flag.Float64("tol", 0.25, "relative tolerance band around each baseline value")
	skip := flag.String("skip", "", "comma-separated path substrings excluded from the relative comparison")
	mins := minFlags{}
	flag.Var(mins, "min", "absolute floor assertion path=value (repeatable)")
	maxes := minFlags{}
	flag.Var(maxes, "max", "absolute ceiling assertion path=value (repeatable)")
	flag.Parse()
	if *baseFile == "" || *curFile == "" {
		fail(fmt.Errorf("-baseline and -current are required"))
	}

	base, err := flatten(*baseFile)
	if err != nil {
		fail(err)
	}
	cur, err := flatten(*curFile)
	if err != nil {
		fail(err)
	}

	var skips []string
	for _, s := range strings.Split(*skip, ",") {
		if s = strings.TrimSpace(s); s != "" {
			skips = append(skips, s)
		}
	}
	skipped := func(path string) bool {
		for _, s := range skips {
			if strings.Contains(path, s) {
				return true
			}
		}
		return false
	}

	var failures []string
	compared := 0
	for _, path := range sortedKeys(base) {
		bv := base[path]
		// Skips apply before the missing-field check, so a retired
		// baseline field behind -skip does not fail newer binaries.
		if skipped(path) {
			continue
		}
		cv, ok := cur[path]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from current report (baseline %.6g)", path, bv))
			continue
		}
		compared++
		if !within(bv, cv, *tol) {
			failures = append(failures, fmt.Sprintf("%s: %.6g vs baseline %.6g (%.1f%% drift, tol %.0f%%)",
				path, cv, bv, 100*drift(bv, cv), 100**tol))
		}
	}
	for path := range cur {
		if _, ok := base[path]; !ok && !skipped(path) {
			fmt.Printf("note: %s only in current report (new field)\n", path)
		}
	}
	for _, path := range sortedKeys(mins) {
		floor := mins[path]
		cv, ok := cur[path]
		compared++
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: -min floor %.6g but field missing from current report", path, floor))
		} else if cv < floor {
			failures = append(failures, fmt.Sprintf("%s: %.6g below floor %.6g", path, cv, floor))
		}
	}
	for _, path := range sortedKeys(maxes) {
		ceil := maxes[path]
		cv, ok := cur[path]
		compared++
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: -max ceiling %.6g but field missing from current report", path, ceil))
		} else if cv > ceil {
			failures = append(failures, fmt.Sprintf("%s: %.6g above ceiling %.6g", path, cv, ceil))
		}
	}

	fmt.Printf("benchcmp: %s vs %s: %d fields gated, %d failures\n",
		*curFile, *baseFile, compared, len(failures))
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  FAIL "+f)
		}
		os.Exit(1)
	}
}

// flatten reads a JSON file and returns every numeric leaf keyed by
// its dotted path. Non-numeric leaves (matrix names, labels) are
// ignored — only numbers are gated.
func flatten(file string) (map[string]float64, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var root any
	if err := json.Unmarshal(data, &root); err != nil {
		return nil, fmt.Errorf("%s: %w", file, err)
	}
	out := map[string]float64{}
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		switch t := v.(type) {
		case map[string]any:
			for k, c := range t {
				p := k
				if prefix != "" {
					p = prefix + "." + k
				}
				walk(p, c)
			}
		case []any:
			for i, c := range t {
				walk(fmt.Sprintf("%s.%d", prefix, i), c)
			}
		case float64:
			out[prefix] = t
		}
	}
	walk("", root)
	return out, nil
}

// within reports whether cur is inside the relative tolerance band of
// base. A zero baseline degrades to an absolute band of tol.
func within(base, cur, tol float64) bool { return drift(base, cur) <= tol }

func drift(base, cur float64) float64 {
	scale := math.Abs(base)
	if scale == 0 {
		scale = 1
	}
	return math.Abs(cur-base) / scale
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(1)
}
