// Command matgen writes synthetic sparse matrices to Matrix Market
// files: either the nine-matrix evaluation suite or a single generator.
//
// Usage:
//
//	matgen -suite -dir=out/                     # all nine analogs
//	matgen -gen=rmat -scale=12 -ef=8 -o=a.mtx   # one R-MAT graph
//	matgen -gen=band -n=10000 -half=5 -o=b.mtx  # one band matrix
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/csr"
	"repro/internal/matgen"
	"repro/internal/mmio"
)

func main() {
	var (
		suite = flag.Bool("suite", false, "write the nine-matrix evaluation suite")
		dir   = flag.String("dir", ".", "output directory for -suite")
		gen   = flag.String("gen", "", "single generator: rmat, band, stencil, er, blockdiag")
		out   = flag.String("o", "", "output path for a single matrix")
		scale = flag.Uint("scale", 12, "rmat: log2 of the vertex count")
		ef    = flag.Int("ef", 8, "rmat: edges per vertex")
		n     = flag.Int("n", 10000, "band/er: dimension; blockdiag: blocks")
		half  = flag.Int("half", 5, "band: half bandwidth")
		gx    = flag.Int("gx", 100, "stencil: grid width")
		gy    = flag.Int("gy", 100, "stencil: grid height")
		p     = flag.Float64("p", 0.001, "er: density")
		bs    = flag.Int("bs", 16, "blockdiag: block size")
		seed  = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	switch {
	case *suite:
		for _, e := range matgen.Suite() {
			m := e.Gen()
			path := filepath.Join(*dir, e.Abbr+".mtx")
			if err := mmio.WriteFile(path, m); err != nil {
				fail(err)
			}
			fmt.Printf("%-10s %s  n=%d nnz=%d (analog of %s)\n", e.Abbr, path, m.Rows, m.Nnz(), e.Name)
		}
	case *gen != "":
		if *out == "" {
			fail(fmt.Errorf("missing -o"))
		}
		var m *csr.Matrix
		switch *gen {
		case "rmat":
			m = matgen.RMAT(*scale, *ef, 0.57, 0.19, 0.19, *seed)
		case "band":
			m = matgen.Band(*n, *half, *seed)
		case "stencil":
			m = matgen.Stencil2D(*gx, *gy)
		case "er":
			m = matgen.ER(*n, *n, *p, *seed)
		case "blockdiag":
			m = matgen.BlockDiag(*n, *bs, *seed)
		default:
			fail(fmt.Errorf("unknown generator %q", *gen))
		}
		if err := mmio.WriteFile(*out, m); err != nil {
			fail(err)
		}
		fmt.Printf("%s  n=%dx%d nnz=%d\n", *out, m.Rows, m.Cols, m.Nnz())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "matgen:", err)
	os.Exit(1)
}
