// Command spgemm-run multiplies two Matrix Market files (or a file by
// itself) with a chosen engine and optionally writes the product.
//
// Usage:
//
//	spgemm-run -a=A.mtx [-b=B.mtx] [-engine=cpu|gpu|gpu-sync|hybrid]
//	           [-o=C.mtx] [-devmem=64M] [-rows=4 -cols=4] [-threads=N]
//
// With -b omitted the tool computes A·A (the convention of the paper's
// evaluation). The gpu engines run on the simulated device and print
// simulated-time statistics; the product itself is always exact.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/spgemm"
)

func main() {
	var (
		aPath   = flag.String("a", "", "left input matrix (.mtx, required)")
		bPath   = flag.String("b", "", "right input matrix (.mtx; default: same as -a)")
		outPath = flag.String("o", "", "output path for the product (.mtx; omit to skip writing)")
		engine  = flag.String("engine", "gpu", "engine: cpu, cpu-merge, cpu-outer, gpu (async out-of-core), gpu-sync, hybrid, summa")
		devmem  = flag.String("devmem", "64M", "simulated device memory (e.g. 512K, 64M, 2G)")
		rows    = flag.Int("rows", 0, "row panels (0 = plan automatically)")
		cols    = flag.Int("cols", 0, "column panels (0 = plan automatically)")
		threads = flag.Int("threads", 0, "CPU threads (0 = GOMAXPROCS)")
		verify  = flag.Bool("verify", false, "cross-check the product against the multi-core CPU engine")
	)
	flag.Parse()
	if *aPath == "" {
		fail(fmt.Errorf("missing -a"))
	}

	a, err := spgemm.ReadMatrixMarket(*aPath)
	if err != nil {
		fail(err)
	}
	b := a
	if *bPath != "" && *bPath != *aPath {
		if b, err = spgemm.ReadMatrixMarket(*bPath); err != nil {
			fail(err)
		}
	}

	mem, err := parseBytes(*devmem)
	if err != nil {
		fail(err)
	}
	cfg := spgemm.V100WithMemory(mem)

	opts := spgemm.OutOfCoreOptions{RowPanels: *rows, ColPanels: *cols}
	if *rows == 0 || *cols == 0 {
		if opts, err = spgemm.Plan(a, b, cfg); err != nil {
			fail(err)
		}
	}

	var c *spgemm.Matrix
	switch *engine {
	case "cpu", "cpu-merge", "cpu-outer":
		switch *engine {
		case "cpu":
			c, err = spgemm.MultiplyCPU(a, b, *threads)
		case "cpu-merge":
			c, err = spgemm.MultiplyCPUMerge(a, b, *threads)
		default:
			c, err = spgemm.MultiplyCPUOuter(a, b, *threads)
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("engine=%s nnz(C)=%d flops=%d\n", *engine, c.Nnz(), spgemm.Flops(a, b))
	case "summa":
		var st spgemm.SUMMAStats
		c, st, err = spgemm.MultiplySUMMA(a, b, spgemm.SUMMAConfig{Q: 2, Pipelined: true})
		if err != nil {
			fail(err)
		}
		fmt.Printf("engine=summa nodes=%d nnz(C)=%d sim_time=%.3fms GFLOPS=%.3f\n",
			st.Nodes, c.Nnz(), st.TotalSec*1e3, st.GFLOPS)
	case "gpu", "gpu-sync":
		opts.Async = *engine == "gpu"
		opts.Reorder = opts.Async
		opts.DynamicAlloc = !opts.Async
		var st spgemm.Stats
		c, st, err = spgemm.MultiplyOutOfCore(a, b, cfg, opts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("engine=%s grid=%dx%d nnz(C)=%d sim_time=%.3fms transfer=%.1f%% GFLOPS=%.3f\n",
			*engine, opts.RowPanels, opts.ColPanels, c.Nnz(),
			st.TotalSec*1e3, st.TransferFraction*100, st.GFLOPS)
	case "hybrid":
		var st spgemm.HybridStats
		c, st, err = spgemm.MultiplyHybrid(a, b, cfg, spgemm.HybridOptions{Core: opts, Reorder: true})
		if err != nil {
			fail(err)
		}
		fmt.Printf("engine=hybrid grid=%dx%d nnz(C)=%d sim_time=%.3fms GPU_chunks=%d CPU_chunks=%d GFLOPS=%.3f\n",
			opts.RowPanels, opts.ColPanels, c.Nnz(), st.TotalSec*1e3, st.GPUChunks, st.CPUChunks, st.GFLOPS)
	default:
		fail(fmt.Errorf("unknown engine %q", *engine))
	}

	if *verify {
		ref, err := spgemm.MultiplyCPU(a, b, *threads)
		if err != nil {
			fail(err)
		}
		if !spgemm.Equal(c, ref, 1e-9) {
			fail(fmt.Errorf("verification FAILED: product differs from the CPU engine"))
		}
		fmt.Println("verified: product matches the multi-core CPU engine")
	}

	if *outPath != "" {
		if err := spgemm.WriteMatrixMarket(*outPath, c); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
}

func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return n * mult, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "spgemm-run:", err)
	os.Exit(1)
}
