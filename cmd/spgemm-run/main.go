// Command spgemm-run multiplies two Matrix Market files (or a file by
// itself) with any registered engine and optionally writes the product
// and a Chrome-tracing profile.
//
// Usage:
//
//	spgemm-run -a=A.mtx [-b=B.mtx] [-engine=hybrid] [-o=C.mtx]
//	           [-devmem=64M] [-rows=4 -cols=4] [-threads=N]
//	           [-gpus=2] [-q=2] [-trace=run.json] [-verify]
//	           [-faults=seed=7,rate=0.02] [-deadline=0.5]
//
// With -b omitted the tool computes A·A (the convention of the paper's
// evaluation). The engine names come from the spgemm registry
// (spgemm.Engines()); device engines run on the simulated device and
// report simulated-time statistics, while the product itself is always
// exact. -trace writes the run's span timeline in Chrome trace-event
// format (load it at chrome://tracing or https://ui.perfetto.dev).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/spgemm"
)

func main() {
	var (
		aPath    = flag.String("a", "", "left input matrix (.mtx, required)")
		bPath    = flag.String("b", "", "right input matrix (.mtx; default: same as -a)")
		outPath  = flag.String("o", "", "output path for the product (.mtx; omit to skip writing)")
		engine   = flag.String("engine", "gpu", "engine: one of "+strings.Join(spgemm.Engines(), ", "))
		devmem   = flag.String("devmem", "64M", "simulated device memory (e.g. 512K, 64M, 2G)")
		rows     = flag.Int("rows", 0, "row panels (0 = plan automatically)")
		cols     = flag.Int("cols", 0, "column panels (0 = plan automatically)")
		threads  = flag.Int("threads", 0, "CPU threads (0 = GOMAXPROCS)")
		gpus     = flag.Int("gpus", 0, "device count for the multigpu engine (0 = 1)")
		q        = flag.Int("q", 2, "process-grid side for the summa engine")
		trace    = flag.String("trace", "", "write the run's Chrome trace-event JSON to this file")
		verify   = flag.Bool("verify", false, "cross-check the product against the multi-core CPU engine")
		faults   = flag.String("faults", "", "fault-injection spec, e.g. seed=7,rate=0.02,straggler=0.05,loseafter=40 (device engines)")
		deadline = flag.Float64("deadline", 0, "abort the run after this many seconds (simulated for device engines, wall for cpu); 0 = none")
		symbolic = flag.String("symbolic", "exact", "symbolic strategy: exact, estimate (sampled elision, identical output) or auto")
		chain    = flag.Int("chain", 0, "multiply a k-stage chain (((A·B)·B)·B)... through one shared plan cache, reporting per-stage time and plan reuse (0/1 = single multiply)")
	)
	flag.Parse()
	if *aPath == "" {
		fail(fmt.Errorf("missing -a"))
	}

	a, err := spgemm.ReadMatrixMarket(*aPath)
	if err != nil {
		fail(err)
	}
	b := a
	if *bPath != "" && *bPath != *aPath {
		if b, err = spgemm.ReadMatrixMarket(*bPath); err != nil {
			fail(err)
		}
	}

	mem, err := parseBytes(*devmem)
	if err != nil {
		fail(err)
	}
	cfg := spgemm.V100WithMemory(mem)

	eng, err := spgemm.ByName(*engine)
	if err != nil {
		fail(err)
	}
	opts := &spgemm.RunOptions{
		Threads:     *threads,
		Device:      &cfg,
		Core:        spgemm.OutOfCoreOptions{RowPanels: *rows, ColPanels: *cols},
		NumGPUs:     *gpus,
		UseCPU:      *gpus > 0,
		SUMMA:       spgemm.SUMMAConfig{Q: *q, Pipelined: true},
		DeadlineSec: *deadline,
	}
	if opts.Symbolic, err = spgemm.ParseSymbolicMode(*symbolic); err != nil {
		fail(err)
	}
	if *faults != "" {
		fc, err := spgemm.ParseFaultSpec(*faults)
		if err != nil {
			fail(err)
		}
		opts.Faults = fc
	}
	if *trace != "" {
		opts.Metrics = spgemm.NewCollector()
	}

	var c *spgemm.Matrix
	var report spgemm.Report
	if *chain > 1 {
		// Chain mode: stage k multiplies the previous product by B
		// through one shared plan cache. When B's pattern is closed under
		// multiplication (block-diagonal operands), every stage after the
		// first replays the cached symbolic plan numeric-only — the local
		// mirror of the serving layer's /v1/batch plan sharing.
		opts.PlanCache = spgemm.NewPlanCache(0)
		left := a
		for k := 1; k <= *chain; k++ {
			stageOpts := *opts
			stageOpts.Metrics = spgemm.NewCollector()
			c, report, err = eng.Run(left, b, &stageOpts)
			if err != nil {
				fail(fmt.Errorf("chain stage %d: %w", k, err))
			}
			snap := stageOpts.Metrics.Snapshot()
			fmt.Printf("stage %d: nnz(C)=%d time=%.3fms plan_cache_hit=%v\n",
				k, report.OutputNnz(), report.Seconds()*1e3, snap["plan_cache_hits"] > 0)
			left = c
			opts.Metrics = stageOpts.Metrics // -trace records the final stage
		}
		hits, misses, _ := opts.PlanCache.Counters()
		fmt.Printf("engine=%s stages=%d nnz(C)=%d plan_cache hits=%d misses=%d\n",
			*engine, *chain, c.Nnz(), hits, misses)
	} else {
		c, report, err = eng.Run(a, b, opts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("engine=%s nnz(C)=%d flops=%d time=%.3fms GFLOPS=%.3f\n",
			*engine, report.OutputNnz(), report.FlopCount(), report.Seconds()*1e3, report.Throughput())
	}
	if counters := report.Counters(); opts.Faults.Enabled() {
		fmt.Printf("recovery: retries=%d abandoned=%d fallbacks=%d failovers=%d devices_lost=%d\n",
			counters["recovery_retries"], counters["recovery_abandoned"],
			counters["recovery_fallbacks"], counters["recovery_failovers"],
			counters["recovery_devices_lost"])
	}

	if *verify {
		ref := a
		stages := *chain
		if stages < 1 {
			stages = 1
		}
		var err error
		for k := 0; k < stages; k++ {
			if ref, err = spgemm.MultiplyCPU(ref, b, *threads); err != nil {
				fail(err)
			}
		}
		if !spgemm.Equal(c, ref, 1e-9) {
			fail(fmt.Errorf("verification FAILED: product differs from the CPU engine"))
		}
		fmt.Println("verified: product matches the multi-core CPU engine")
	}

	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fail(err)
		}
		if err := opts.Metrics.WriteChromeTrace(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (load at chrome://tracing)\n", *trace)
	}

	if *outPath != "" {
		if err := spgemm.WriteMatrixMarket(*outPath, c); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
}

func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return n * mult, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "spgemm-run:", err)
	os.Exit(1)
}
