package main

import "testing"

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"1024", 1024, true},
		{"64M", 64 << 20, true},
		{"2G", 2 << 30, true},
		{"512K", 512 << 10, true},
		{" 16m ", 16 << 20, true},
		{"", 0, false},
		{"abc", 0, false},
		{"12T", 0, false},
	}
	for _, c := range cases {
		got, err := parseBytes(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseBytes(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("parseBytes(%q) succeeded, want error", c.in)
		}
	}
}
