// Command spgemm-serve is the overload-safe SpGEMM serving daemon: an
// HTTP front end over the engine registry with admission control,
// per-engine circuit breakers and graceful drain (internal/serve).
//
// Server mode (default):
//
//	spgemm-serve -addr :8097 -max-concurrent 4 -devmem 1048576 \
//	    -faults seed=7,loseafter=60 -snapshot serve-snapshot.json
//
// SIGTERM or SIGINT starts the graceful drain: admission stops,
// inflight jobs finish within -drain-timeout, and the final metrics
// snapshot is written to -snapshot before the process exits.
//
// Drive mode turns the same binary into a load-generating client for
// soak tests (it speaks the versioned wire types of repro/spgemm/api/v1
// through that package's Client):
//
//	spgemm-serve -drive http://127.0.0.1:8097 -clients 8 -requests 25 \
//	    -drive-engines hybrid,cpu,panicky -expect-shed -expect-breaker
//
// Batch-drive mode submits one /v1/batch DAG — a three-stage chain over
// a stored handle plus a fault-injected node with a dependent — and
// asserts the partial-failure statuses, plan sharing and the 405
// envelope:
//
//	spgemm-serve -drive http://127.0.0.1:8097 -drive-batch
//
// The drive run fails (exit 1) when an assertion does not hold.
//
// Cluster mode (-cluster N) serves the same wire API through the
// internal/cluster coordinator over N in-process replicas: requests
// shard by structural fingerprint on a consistent-hash ring, replica
// health is probed in the background, and failures re-route to ring
// successors:
//
//	spgemm-serve -addr :8097 -cluster 3 -max-concurrent 2
//
// The cluster soak (-cluster-soak) is the self-contained chaos
// acceptance run CI executes: a seeded kill + restart sweep over the
// in-process replicas where every admitted request must succeed —
// killing any single replica of three mid-stream loses nothing — and
// the failover counters must reconcile:
//
//	spgemm-serve -cluster-soak -cluster 3 -soak-requests 60 \
//	    -cluster-seed 7 -snapshot cluster-snapshot.json
//
// Networked cluster mode splits the same topology across real
// processes. A coordinator serves the wire API with an empty
// membership and replicas register themselves:
//
//	spgemm-serve -coordinator -addr :8097 -probe-interval 500ms
//	spgemm-serve -addr :8098 -name r1 -join http://127.0.0.1:8097
//	spgemm-serve -addr :8099 -name r2 -join http://127.0.0.1:8097
//
// Each -join replica heartbeats the coordinator and re-registers with
// capped backoff after a coordinator restart; the coordinator dials
// replicas back over HTTP (internal/cluster.RemoteReplica), so a
// SIGKILLed replica is a real dead socket, not a simulated one.
//
// The networked soak driver (-drive-cluster) runs the acceptance
// sweep CI uses against that topology: paced handle multiplies and
// batch DAGs through the coordinator, every product's content handle
// checked against the same multiply computed locally (byte-identity),
// zero admitted requests lost. It writes the name of the replica that
// owns the primary operand to -kill-target-file so the harness knows
// which process to SIGKILL mid-sweep; with -expect-rejoin the final
// merged snapshot must prove the failover, the rejoin and the spill
// re-upload actually happened:
//
//	spgemm-serve -drive-cluster http://127.0.0.1:8097 -drive-replicas 3 \
//	    -soak-requests 60 -expect-rejoin -kill-target-file kill-target \
//	    -snapshot cluster-net-snapshot.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/spgemm"
	apiv1 "repro/spgemm/api/v1"
)

func main() {
	addr := flag.String("addr", ":8097", "HTTP listen address (server mode)")
	maxConc := flag.Int("max-concurrent", 2, "jobs running at once")
	queueDepth := flag.Int("queue", 0, "admission queue depth (0 = 2*max-concurrent)")
	maxFlops := flag.Int64("max-inflight-flops", 0, "inflight flop budget for admission (0 = unlimited)")
	devmem := flag.Int64("devmem", 0, "simulated device memory in bytes (0 = full V100)")
	faultSpec := flag.String("faults", "", "base fault spec for device engines, e.g. seed=7,rate=0.02,loseafter=60")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain deadline on SIGTERM")
	snapshotPath := flag.String("snapshot", "serve-snapshot.json", "write the final metrics snapshot here on drain")
	panicEvery := flag.Int64("chaos-panic-every", 0, "register a 'panicky' engine that panics every Nth call (0 = off)")
	tripLost := flag.Int64("trip-devices-lost", 0, "breaker: cumulative lost devices to trip (0 = default)")
	tripFailures := flag.Int("trip-failures", 0, "breaker: consecutive failures to trip (0 = default)")
	cooldownJobs := flag.Int("cooldown-jobs", 0, "breaker: degraded jobs before a half-open probe (0 = default)")
	planCacheBytes := flag.Int64("plan-cache-bytes", 0, "structure-reuse plan cache budget in bytes (0 = default, negative disables)")
	storeBytes := flag.Int64("matrix-store-bytes", 0, "content-addressed matrix store budget in bytes (0 = 512 MiB)")
	symbolic := flag.String("symbolic", "exact", "base symbolic strategy jobs inherit: exact, estimate or auto")

	driveURL := flag.String("drive", "", "drive mode: base URL of a running spgemm-serve to load-test")
	clients := flag.Int("clients", 4, "drive mode: concurrent clients")
	requests := flag.Int("requests", 20, "drive mode: requests per client")
	driveEngines := flag.String("drive-engines", "cpu", "drive mode: comma-separated engines to request round-robin")
	expectShed := flag.Bool("expect-shed", false, "drive mode: fail unless the server shed load")
	expectBreaker := flag.Bool("expect-breaker", false, "drive mode: fail unless a breaker tripped and jobs degraded")
	driveReuse := flag.Bool("drive-reuse", false, "drive mode: upload one matrix and multiply by handle (repeated-pattern traffic); fails unless the plan cache got hits")
	driveBatch := flag.Bool("drive-batch", false, "drive mode: submit a /v1/batch DAG (chain + fault-injected node) and assert partial-failure statuses")

	clusterN := flag.Int("cluster", 0, "cluster mode: in-process replicas behind the coordinator (0 = single server)")
	clusterSoak := flag.Bool("cluster-soak", false, "run the seeded in-process cluster kill+restart soak and exit (uses -cluster, -soak-requests, -cluster-seed)")
	soakRequests := flag.Int("soak-requests", 60, "cluster soak: requests in the sweep")
	clusterSeed := flag.Int64("cluster-seed", 7, "cluster mode: chaos seed for replica fault injection")
	clusterFailRate := flag.Float64("cluster-fail-rate", 0, "cluster mode: per-operation probability a replica drops a request")

	coordMode := flag.Bool("coordinator", false, "run as a networked cluster coordinator: membership starts empty, replicas register via POST /v1/join")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "coordinator/cluster mode: background health probe cadence")
	joinURL := flag.String("join", "", "coordinator base URL this replica registers with and heartbeats (server mode)")
	replicaName := flag.String("name", "", "replica name sent on join (default replica-<port>)")
	advertiseURL := flag.String("advertise", "", "base URL the coordinator dials this replica back on (default http://127.0.0.1:<port>)")

	driveClusterURL := flag.String("drive-cluster", "", "drive mode: coordinator URL for the networked soak (paced handle multiplies + batch DAGs with byte-identity checks)")
	driveReplicas := flag.Int("drive-replicas", 0, "drive-cluster: wait until this many replicas are up before driving (0 = don't wait)")
	drivePace := flag.Duration("drive-pace", 100*time.Millisecond, "drive-cluster: pause between requests, so an external kill window lands mid-sweep")
	expectRejoin := flag.Bool("expect-rejoin", false, "drive-cluster: fail unless the snapshot shows a failover, a rejoin and a spill re-upload")
	killTargetFile := flag.String("kill-target-file", "", "drive-cluster: write the primary operand's owning replica name here once the sweep is underway (the harness's SIGKILL target)")
	flag.Parse()

	if *driveClusterURL != "" {
		err := driveClusterSoak(driveClusterOptions{
			coordURL:    *driveClusterURL,
			requests:    *soakRequests,
			seed:        *clusterSeed,
			minReplicas: *driveReplicas,
			pace:        *drivePace,
			expectChaos: *expectRejoin,
			killFile:    *killTargetFile,
			snapshot:    *snapshotPath,
		})
		if err != nil {
			log.Fatal("spgemm-serve: drive-cluster: ", err)
		}
		return
	}

	if *driveURL != "" {
		var err error
		if *driveBatch {
			err = driveBatchDAG(*driveURL)
		} else {
			err = drive(*driveURL, *clients, *requests,
				strings.Split(*driveEngines, ","), *expectShed, *expectBreaker, *driveReuse)
		}
		if err != nil {
			log.Fatal("spgemm-serve: drive: ", err)
		}
		return
	}

	if *panicEvery > 0 {
		registerPanicky(*panicEvery)
	}
	base := spgemm.RunOptions{}
	mode, err := spgemm.ParseSymbolicMode(*symbolic)
	if err != nil {
		log.Fatal("spgemm-serve: ", err)
	}
	base.Symbolic = mode
	if *devmem > 0 {
		cfg := spgemm.V100WithMemory(*devmem)
		base.Device = &cfg
	}
	if *faultSpec != "" {
		fc, err := spgemm.ParseFaultSpec(*faultSpec)
		if err != nil {
			log.Fatal("spgemm-serve: ", err)
		}
		base.Faults = fc
	}
	cfg := serve.Config{
		MaxConcurrent:    *maxConc,
		QueueDepth:       *queueDepth,
		MaxInflightFlops: *maxFlops,
		Base:             base,
		DrainTimeout:     *drainTimeout,
		PlanCacheBytes:   *planCacheBytes,
		MatrixStoreBytes: *storeBytes,
		Breaker: serve.BreakerConfig{
			TripDevicesLost: *tripLost,
			TripFailures:    *tripFailures,
			CooldownJobs:    *cooldownJobs,
		},
	}

	if *clusterSoak {
		n := *clusterN
		if n <= 0 {
			n = 3
		}
		if err := runClusterSoak(cfg, n, *soakRequests, *clusterSeed, *snapshotPath); err != nil {
			log.Fatal("spgemm-serve: cluster-soak: ", err)
		}
		return
	}

	var handler http.Handler
	var drain func(time.Duration) map[string]int64
	switch {
	case *coordMode:
		coord := cluster.New(cluster.Config{})
		stopProbe := startProbeLoop(coord, *probeInterval)
		handler = coord.Handler()
		drain = func(t time.Duration) map[string]int64 {
			close(stopProbe)
			return coord.Drain(t)
		}
		log.Printf("spgemm-serve: coordinator mode; waiting for replicas on /v1/join (probe every %v)", *probeInterval)
	case *clusterN > 1:
		coord, _ := buildCluster(cfg, *clusterN, *clusterSeed, *clusterFailRate)
		stopProbe := startProbeLoop(coord, *probeInterval)
		handler = coord.Handler()
		drain = func(t time.Duration) map[string]int64 {
			close(stopProbe)
			return coord.Drain(t)
		}
		log.Printf("spgemm-serve: cluster mode with %d in-process replicas", *clusterN)
	default:
		srv := serve.New(cfg)
		handler = srv.Handler()
		drain = srv.Drain
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal("spgemm-serve: ", err)
		}
	}()
	log.Printf("spgemm-serve: listening on %s (engines: %s)", *addr, strings.Join(spgemm.Engines(), ", "))

	var joiner *cluster.Joiner
	if *joinURL != "" {
		name, adv := replicaIdentity(*addr, *replicaName, *advertiseURL)
		joiner = cluster.NewJoiner(cluster.JoinerConfig{
			Coordinator: *joinURL, Name: name, Advertise: adv,
		})
		joiner.Start()
		log.Printf("spgemm-serve: joining %s as %s (advertising %s)", *joinURL, name, adv)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	got := <-sig
	log.Printf("spgemm-serve: %v: draining (deadline %v)", got, *drainTimeout)

	if joiner != nil {
		joiner.Stop() // stop advertising before admission closes
	}
	snap := drain(*drainTimeout)
	if err := writeSnapshot(*snapshotPath, snap); err != nil {
		log.Fatal("spgemm-serve: ", err)
	}
	log.Printf("spgemm-serve: drained; snapshot written to %s (%d jobs completed, %d shed)",
		*snapshotPath, snap[metrics.CounterServeCompleted],
		snap[metrics.CounterServeRejectedOverload]+snap[metrics.CounterServeRejectedQueue])
	if err := httpSrv.Close(); err != nil {
		log.Fatal("spgemm-serve: ", err)
	}
}

// buildCluster assembles n in-process replicas, each a real serve
// server behind a seeded chaos wrapper, under one coordinator.
func buildCluster(cfg serve.Config, n int, seed int64, failRate float64) (*cluster.Coordinator, []*cluster.ChaosBackend) {
	var backends []cluster.Backend
	var chaos []*cluster.ChaosBackend
	for i := 0; i < n; i++ {
		s := serve.New(cfg)
		cb := cluster.NewChaosBackend(
			cluster.NewLocalReplica(fmt.Sprintf("r%d", i), s),
			cluster.ChaosConfig{Seed: seed + int64(i), FailRate: failRate},
		)
		backends = append(backends, cb)
		chaos = append(chaos, cb)
	}
	return cluster.New(cluster.Config{}, backends...), chaos
}

// startProbeLoop runs the coordinator's background health probe until
// the returned channel is closed.
func startProbeLoop(coord *cluster.Coordinator, interval time.Duration) chan struct{} {
	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				coord.Probe()
			case <-stop:
				return
			}
		}
	}()
	return stop
}

// replicaIdentity derives the join name and advertise URL from the
// listen address when the flags leave them blank.
func replicaIdentity(addr, name, advertise string) (string, string) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		host, port = "", strings.TrimPrefix(addr, ":")
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	if name == "" {
		name = "replica-" + port
	}
	if advertise == "" {
		advertise = "http://" + net.JoinHostPort(host, port)
	}
	return name, advertise
}

// contentHandle is the server's content address for a matrix — the
// same derivation internal/serve's store uses, so a handle returned
// over the wire equal to a locally computed one is a witness that the
// remote product is byte-identical to the local multiply.
func contentHandle(m *spgemm.Matrix) string {
	return fmt.Sprintf("m-%016x%016x", spgemm.Fingerprint(m), spgemm.FingerprintValues(m))
}

type driveClusterOptions struct {
	coordURL    string
	requests    int
	seed        int64
	minReplicas int
	pace        time.Duration
	expectChaos bool
	killFile    string
	snapshot    string
}

// driveClusterSoak drives a networked cluster through its coordinator:
// paced handle multiplies (StoreC) and batch DAG chains whose stored
// products are checked for byte-identity against the same multiplies
// computed locally. The sweep is paced so an external SIGKILL+restart
// of a replica lands mid-stream; the kill target (the replica owning
// the primary operand, so the dead socket is guaranteed to take
// traffic) is written to killFile for the harness. Zero admitted
// requests may be lost, and with expectChaos the merged snapshot must
// reconcile: a failover happened, the killed replica rejoined, and its
// voided placements were re-uploaded from spill in batched transfers.
func driveClusterSoak(o driveClusterOptions) error {
	cli := &apiv1.Client{
		BaseURL: o.coordURL,
		HTTP:    &http.Client{Timeout: 120 * time.Second},
		// Shed-retry is the backstop for the instant where every
		// candidate for a key is condemned; the coordinator's own
		// failover absorbs everything else.
		Retry: &apiv1.RetryPolicy{MaxAttempts: 10, MaxDelay: 2 * time.Second, Seed: o.seed},
	}
	if err := cli.WaitHealthy(30 * time.Second); err != nil {
		return err
	}
	names, err := waitReplicas(cli, o.minReplicas)
	if err != nil {
		return err
	}

	// The primary operand, its expected products (A², A⁴) and its ring
	// owner — computed locally with the very engine the replicas run.
	m := spgemm.RMAT(6, 8, 0.57, 0.19, 0.19, o.seed)
	cpuEng, err := spgemm.ByName("cpu")
	if err != nil {
		return err
	}
	a2, _, err := cpuEng.Run(m, m, nil)
	if err != nil {
		return err
	}
	a3, _, err := cpuEng.Run(a2, m, nil)
	if err != nil {
		return err
	}
	a4, _, err := cpuEng.Run(a3, m, nil)
	if err != nil {
		return err
	}
	wantA2, wantA4 := contentHandle(a2), contentHandle(a4)

	mr, err := cli.StoreMatrix(apiv1.MatrixRequest{Data: apiv1.MatrixDataFrom(m)})
	if err != nil {
		return fmt.Errorf("seed store: %w", err)
	}
	handle := mr.Handle
	if want := contentHandle(m); handle != want {
		return fmt.Errorf("stored operand handle %s, want %s: content addressing diverged", handle, want)
	}

	killTarget := ""
	if len(names) > 0 {
		ring := cluster.NewRing(0)
		for _, n := range names {
			ring.Add(n)
		}
		killTarget = ring.Owner(spgemm.Fingerprint(m))
	}

	warmup := o.requests / 4
	for r := 0; r < o.requests; r++ {
		// Announce the kill target only once the sweep is underway, so
		// the harness's SIGKILL lands mid-stream.
		if r == warmup && o.killFile != "" && killTarget != "" {
			if err := os.WriteFile(o.killFile, []byte(killTarget+"\n"), 0o644); err != nil {
				return err
			}
			log.Printf("drive-cluster: kill target %s announced at request %d", killTarget, r)
		}
		if r%2 == 0 {
			resp, err := cli.Multiply(apiv1.MultiplyRequest{Engine: "cpu", AHandle: handle, StoreC: true})
			if err != nil {
				return fmt.Errorf("request %d (handle multiply) lost: %w", r, err)
			}
			if resp.CHandle != wantA2 {
				return fmt.Errorf("request %d: stored product %s, want %s: remote result not byte-identical", r, resp.CHandle, wantA2)
			}
		} else {
			resp, err := cli.Batch(apiv1.BatchRequest{
				Engine: "cpu",
				Nodes: []apiv1.BatchNode{
					{ID: "s1", A: apiv1.Operand{Handle: handle}},
					{ID: "s2", A: apiv1.Operand{Node: "s1"}, B: &apiv1.Operand{Handle: handle}},
					{ID: "s3", A: apiv1.Operand{Node: "s2"}, B: &apiv1.Operand{Handle: handle}, Store: true},
				},
			})
			if err != nil {
				return fmt.Errorf("request %d (batch DAG) lost: %w", r, err)
			}
			for _, n := range resp.Nodes {
				if n.Status != apiv1.StatusOK {
					return fmt.Errorf("request %d: batch node %s status %s", r, n.ID, n.Status)
				}
				if n.ID == "s3" && n.Handle != wantA4 {
					return fmt.Errorf("request %d: chain product %s, want %s: remote result not byte-identical", r, n.Handle, wantA4)
				}
			}
		}
		time.Sleep(o.pace)
	}

	rawSnap, err := cli.Metrics()
	if err != nil {
		return fmt.Errorf("metricsz: %w", err)
	}
	snap := make(map[string]int64, len(rawSnap))
	for k, v := range rawSnap {
		snap[k] = int64(v)
	}
	if err := writeSnapshot(o.snapshot, snap); err != nil {
		return err
	}
	fmt.Printf("drive-cluster: %d requests, failovers=%d rejoins=%d reupload_batches=%d reupload_bytes=%d down=%d up=%d timeouts=%d refused=%d\n",
		o.requests,
		snap[metrics.CounterClusterFailovers], snap[metrics.CounterClusterRejoins],
		snap[metrics.CounterClusterSpillReuploadBatch], snap[metrics.CounterClusterSpillReuploadBytes],
		snap[metrics.CounterClusterReplicaDown], snap[metrics.CounterClusterReplicaUp],
		snap[metrics.CounterClusterRemoteTimeouts], snap[metrics.CounterClusterRemoteRefused])

	if snap[metrics.CounterServeFailed]+snap[metrics.CounterServePanicked] != 0 {
		return fmt.Errorf("replica-side failures during soak: failed=%d panicked=%d",
			snap[metrics.CounterServeFailed], snap[metrics.CounterServePanicked])
	}
	if o.expectChaos {
		if snap[metrics.CounterClusterFailovers] == 0 {
			return fmt.Errorf("kill window produced no failovers")
		}
		if snap[metrics.CounterClusterRejoins] == 0 {
			return fmt.Errorf("killed replica never rejoined")
		}
		if snap[metrics.CounterClusterSpillReuploadBatch] == 0 {
			return fmt.Errorf("no batched spill re-upload happened")
		}
		if snap[metrics.CounterClusterReplicaDown] == 0 || snap[metrics.CounterClusterReplicaUp] == 0 {
			return fmt.Errorf("health machine saw no down/up transition: down=%d up=%d",
				snap[metrics.CounterClusterReplicaDown], snap[metrics.CounterClusterReplicaUp])
		}
	}
	return nil
}

// waitReplicas polls the coordinator's /readyz until min replicas are
// up, returning the sorted membership names.
func waitReplicas(cli *apiv1.Client, min int) ([]string, error) {
	deadline := time.Now().Add(60 * time.Second)
	for {
		var names []string
		rr, err := cli.Ready()
		if err == nil {
			for name, health := range rr.Replicas {
				if health == cluster.HealthUp {
					names = append(names, name)
				}
			}
		}
		if min <= 0 || len(names) >= min {
			sort.Strings(names)
			return names, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("only %d of %d replicas up after 60s (last readyz err: %v)", len(names), min, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// runClusterSoak is the chaos acceptance sweep: with a fixed seed,
// every replica of the cluster is killed and restarted in turn while a
// request stream runs, and not one admitted request may be lost — the
// coordinator's failover (spill re-upload + ring successor walk) and
// the degraded single-survivor funnel must absorb every kill. The
// merged counter snapshot (cluster_failover_total and friends) is
// written as the CI artifact.
func runClusterSoak(cfg serve.Config, n, requests int, seed int64, snapshotPath string) error {
	coord, chaos := buildCluster(cfg, n, seed, 0)
	defer coord.Drain(30 * time.Second)

	// One shared operand: the handle traffic exercises placement,
	// spill re-upload and plan-cache locality across failovers.
	m := spgemm.RMAT(6, 8, 0.57, 0.19, 0.19, seed)
	ref, err := spgemm.Multiply(m, m)
	if err != nil {
		return err
	}
	handle, err := coord.StoreMatrix(m)
	if err != nil {
		return fmt.Errorf("seed store: %w", err)
	}

	phase := requests / n
	if phase == 0 {
		phase = 1
	}
	kills := 0
	var killed *cluster.ChaosBackend
	for r := 0; r < requests; r++ {
		// Kill schedule: at each phase boundary restart the previously
		// killed replica and kill the next one, mid-stream. Every
		// replica takes its turn dying.
		if r%phase == 0 && r/phase < n {
			if killed != nil {
				killed.Revive()
				coord.Probe()
			}
			killed = chaos[r/phase]
			killed.Kill()
			kills++
		}
		var nnz int64
		if r%2 == 0 {
			resp, err := coord.Multiply(apiv1.MultiplyRequest{Engine: "cpu", AHandle: handle})
			if err != nil {
				return fmt.Errorf("request %d (handle) lost: %w", r, err)
			}
			nnz = resp.NnzC
		} else {
			resp, err := coord.Multiply(apiv1.MultiplyRequest{
				Engine: "cpu",
				A:      apiv1.MatrixSpec{Kind: "er", Rows: 48, Cols: 48, Density: 0.08, Seed: seed + int64(r)},
			})
			if err != nil {
				return fmt.Errorf("request %d (spec) lost: %w", r, err)
			}
			nnz = resp.NnzC
		}
		if nnz == 0 {
			return fmt.Errorf("request %d: empty product", r)
		}
		if r%2 == 0 {
			if got := ref.Nnz(); nnz != got {
				return fmt.Errorf("request %d: nnz %d, want %d", r, nnz, got)
			}
		}
	}
	if killed != nil {
		killed.Revive()
		coord.Probe()
	}

	// Degraded-funnel phase: every replica but the last dies and stays
	// dead, and the whole stream funnels through the single survivor's
	// own admission and breaker machinery. Still zero lost requests.
	for i := 0; i < n-1; i++ {
		chaos[i].Kill()
	}
	coord.Probe()
	coord.Probe() // second failed round condemns suspect -> down
	funnel := requests / 4
	if funnel == 0 {
		funnel = 1
	}
	for r := 0; r < funnel; r++ {
		if _, err := coord.Multiply(apiv1.MultiplyRequest{Engine: "cpu", AHandle: handle}); err != nil {
			return fmt.Errorf("degraded request %d lost: %w", r, err)
		}
	}
	for i := 0; i < n-1; i++ {
		chaos[i].Revive()
	}
	coord.Probe()

	snap := coord.Counters()
	if err := writeSnapshot(snapshotPath, snap); err != nil {
		return err
	}
	fmt.Printf("cluster-soak: %d+%d requests, %d kills, failovers=%d rebalances=%d degraded=%d down=%d up=%d\n",
		requests, funnel, kills,
		snap[metrics.CounterClusterFailovers], snap[metrics.CounterClusterRebalances],
		snap[metrics.CounterClusterDegraded],
		snap[metrics.CounterClusterReplicaDown], snap[metrics.CounterClusterReplicaUp])

	// Reconciliation: every request admitted exactly once across the
	// replica set (failover re-routes only never-admitted requests),
	// failovers actually happened, every kill was both condemned and
	// recovered, and the funnel phase really ran degraded.
	if got := snap[metrics.CounterServeAccepted]; got != int64(requests+funnel) {
		return fmt.Errorf("admitted jobs %d != %d requests: a request ran twice or vanished", got, requests+funnel)
	}
	if snap[metrics.CounterClusterFailovers] == 0 {
		return fmt.Errorf("kill sweep produced no failovers")
	}
	totalKills := int64(kills + n - 1)
	if down := snap[metrics.CounterClusterReplicaDown]; down != totalKills {
		return fmt.Errorf("down transitions %d != %d kills", down, totalKills)
	}
	if up := snap[metrics.CounterClusterReplicaUp]; up != totalKills {
		return fmt.Errorf("up transitions %d != %d revives", up, totalKills)
	}
	if got := snap[metrics.CounterClusterDegraded]; got != int64(funnel) {
		return fmt.Errorf("degraded-mode requests %d != %d funnel requests", got, funnel)
	}
	if snap[metrics.CounterServeFailed]+snap[metrics.CounterServePanicked] != 0 {
		return fmt.Errorf("replica-side failures during soak: %v", snap)
	}
	return nil
}

func writeSnapshot(path string, snap map[string]int64) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// panickyEngine delegates to the cpu engine but panics every Nth call:
// the chaos source for the serve-soak's panic-isolation check.
type panickyEngine struct {
	every int64
	calls *int64
}

func (e panickyEngine) Name() string     { return "panicky" }
func (e panickyEngine) Describe() string { return "cpu engine that panics every Nth call (chaos)" }
func (e panickyEngine) Run(a, b *spgemm.Matrix, opts *spgemm.RunOptions) (*spgemm.Matrix, spgemm.Report, error) {
	if n := atomic.AddInt64(e.calls, 1); n%e.every == 0 {
		panic(fmt.Sprintf("panicky engine: injected panic on call %d", n))
	}
	cpu, err := spgemm.ByName("cpu")
	if err != nil {
		return nil, nil, err
	}
	return cpu.Run(a, b, opts)
}

func registerPanicky(every int64) {
	spgemm.Register(panickyEngine{every: every, calls: new(int64)})
}

// drive load-tests a running server: clients*requests multiply posts
// round-robin over the requested engines, then assertions against the
// final /metricsz snapshot. With reuse, each client multiplies one
// shared uploaded matrix by handle — the repeated-pattern workload the
// plan cache accelerates — instead of generating a fresh operand per
// request.
func drive(baseURL string, clients, requests int, engines []string, expectShed, expectBreaker, reuse bool) error {
	cli := apiv1.NewClient(baseURL)
	if err := cli.WaitHealthy(30 * time.Second); err != nil {
		return err
	}

	var handle string
	if reuse {
		mr, err := cli.StoreMatrix(apiv1.MatrixRequest{
			Spec: &apiv1.MatrixSpec{Kind: "rmat", Scale: 7, EdgeFactor: 8, Seed: 100},
		})
		if err != nil || mr.Handle == "" {
			return fmt.Errorf("matrix upload: no handle (%v)", err)
		}
		handle = mr.Handle
	}

	var (
		mu       sync.Mutex
		statuses = map[int]int{}
		degraded int
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				engine := engines[(c*requests+r)%len(engines)]
				req := apiv1.MultiplyRequest{Engine: strings.TrimSpace(engine)}
				if reuse {
					req.AHandle = handle
				} else {
					req.A = apiv1.MatrixSpec{
						Kind: "rmat", Scale: 7, EdgeFactor: 8,
						Seed: int64(100 + c*requests + r),
					}
				}
				resp, err := cli.Multiply(req)
				status := http.StatusOK
				if err != nil {
					var ae *apiv1.APIError
					if errors.As(err, &ae) {
						status = ae.Status
					} else {
						status = -1 // transport error
					}
				}
				mu.Lock()
				statuses[status]++
				if err == nil && resp.Degraded {
					degraded++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	// /metricsz mixes int64 counters with float hit rates; truncate
	// where ints are asserted.
	rawSnap, err := cli.Metrics()
	if err != nil {
		return fmt.Errorf("metricsz: %w", err)
	}
	snap := make(map[string]int64, len(rawSnap))
	for k, v := range rawSnap {
		snap[k] = int64(v)
	}

	fmt.Printf("drive: %d clients x %d requests, statuses %v, degraded responses %d\n",
		clients, requests, statuses, degraded)
	fmt.Printf("drive: server counters: completed=%d failed=%d panicked=%d shed(overload)=%d shed(queue)=%d degraded=%d trips=%d\n",
		snap[metrics.CounterServeCompleted], snap[metrics.CounterServeFailed],
		snap[metrics.CounterServePanicked], snap[metrics.CounterServeRejectedOverload],
		snap[metrics.CounterServeRejectedQueue], snap[metrics.CounterServeDegraded],
		snap[metrics.CounterServeBreakerTrips])
	if reuse {
		fmt.Printf("drive: plan cache hits=%d misses=%d hit_rate=%.2f store hits=%d\n",
			snap[metrics.CounterPlanCacheHits], snap[metrics.CounterPlanCacheMisses],
			rawSnap["plan_cache_hit_rate"], snap[metrics.CounterMatrixStoreHits])
	}

	if snap[metrics.CounterServeCompleted] == 0 {
		return fmt.Errorf("no job completed")
	}
	if expectShed {
		if shed := snap[metrics.CounterServeRejectedOverload] + snap[metrics.CounterServeRejectedQueue]; shed == 0 {
			return fmt.Errorf("expected load shedding, server shed nothing")
		}
	}
	if expectBreaker {
		if snap[metrics.CounterServeBreakerTrips] == 0 {
			return fmt.Errorf("expected a breaker trip, none happened")
		}
		if snap[metrics.CounterServeDegraded] == 0 {
			return fmt.Errorf("breaker tripped but no job degraded to the fallback engine")
		}
	}
	if reuse && snap[metrics.CounterPlanCacheHits] == 0 {
		return fmt.Errorf("handle-reuse traffic got no plan cache hits (misses=%d)",
			snap[metrics.CounterPlanCacheMisses])
	}
	return nil
}

// driveBatchDAG soaks /v1/batch against a running server: a
// three-stage A³ chain over a stored block-diagonal handle (whose
// pattern is closed under multiplication, so the chain shares one
// plan), one node on the fault-injected "panicky" engine (the server
// must run with -chaos-panic-every 1), and a node downstream of the
// failure. Asserts the partial-failure contract — ok/ok/ok/failed/
// skipped — the plan sharing, the stored final handle, and the 405
// envelope on a wrong-method request.
func driveBatchDAG(baseURL string) error {
	cli := apiv1.NewClient(baseURL)
	if err := cli.WaitHealthy(30 * time.Second); err != nil {
		return err
	}
	mr, err := cli.StoreMatrix(apiv1.MatrixRequest{
		Spec: &apiv1.MatrixSpec{Kind: "blocks", N: 512, Block: 8, Seed: 42},
	})
	if err != nil {
		return fmt.Errorf("matrix upload: %w", err)
	}
	handle := mr.Handle

	resp, err := cli.Batch(apiv1.BatchRequest{
		Engine: "cpu",
		Nodes: []apiv1.BatchNode{
			{ID: "s1", A: apiv1.Operand{Handle: handle}},
			{ID: "s2", A: apiv1.Operand{Node: "s1"}, B: &apiv1.Operand{Handle: handle}},
			{ID: "s3", A: apiv1.Operand{Node: "s2"}, B: &apiv1.Operand{Handle: handle}, Store: true},
			{ID: "bad", Engine: "panicky", A: apiv1.Operand{Handle: handle}},
			{ID: "dead", A: apiv1.Operand{Node: "bad"}, B: &apiv1.Operand{Handle: handle}},
		},
	})
	if err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	fmt.Printf("drive-batch: completed=%d failed=%d skipped=%d plan hits=%d misses=%d hit_rate=%.2f\n",
		resp.Completed, resp.Failed, resp.Skipped,
		resp.PlanCacheHits, resp.PlanCacheMisses, resp.PlanCacheHitRate)
	for _, n := range resp.Nodes {
		code := ""
		if n.Error != nil {
			code = n.Error.Code
		}
		fmt.Printf("drive-batch: node %-4s status=%-7s engine=%-7s plan_hit=%-5v code=%s\n",
			n.ID, n.Status, n.Engine, n.PlanCacheHit, code)
	}

	want := map[string]string{
		"s1": apiv1.StatusOK, "s2": apiv1.StatusOK, "s3": apiv1.StatusOK,
		"bad": apiv1.StatusFailed, "dead": apiv1.StatusSkipped,
	}
	byID := map[string]apiv1.NodeResult{}
	for _, n := range resp.Nodes {
		byID[n.ID] = n
	}
	for id, status := range want {
		if byID[id].Status != status {
			return fmt.Errorf("node %s: status %q, want %q", id, byID[id].Status, status)
		}
	}
	if code := byID["bad"].Error.Code; code != apiv1.CodeJobPanic {
		return fmt.Errorf("failed node code %q, want %q", code, apiv1.CodeJobPanic)
	}
	if code := byID["dead"].Error.Code; code != apiv1.CodeUpstreamFailed {
		return fmt.Errorf("skipped node code %q, want %q", code, apiv1.CodeUpstreamFailed)
	}
	if byID["s3"].Handle == "" {
		return fmt.Errorf("store:true node s3 returned no handle")
	}
	if resp.PlanCacheHits < 2 {
		return fmt.Errorf("chain shared no plans: %d hits, %d misses", resp.PlanCacheHits, resp.PlanCacheMisses)
	}

	// The consistent-HTTP-semantics contract: a wrong method gets 405,
	// an Allow header and the envelope with code method_not_allowed.
	httpResp, err := http.Get(baseURL + "/v1/batch")
	if err != nil {
		return err
	}
	var env apiv1.ErrorResponse
	decodeErr := json.NewDecoder(httpResp.Body).Decode(&env)
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusMethodNotAllowed || decodeErr != nil ||
		env.Code != apiv1.CodeMethodNotAllowed || httpResp.Header.Get("Allow") != http.MethodPost {
		return fmt.Errorf("GET /v1/batch: status=%d allow=%q code=%q, want 405/POST/%s",
			httpResp.StatusCode, httpResp.Header.Get("Allow"), env.Code, apiv1.CodeMethodNotAllowed)
	}
	return nil
}
