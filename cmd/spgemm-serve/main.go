// Command spgemm-serve is the overload-safe SpGEMM serving daemon: an
// HTTP front end over the engine registry with admission control,
// per-engine circuit breakers and graceful drain (internal/serve).
//
// Server mode (default):
//
//	spgemm-serve -addr :8097 -max-concurrent 4 -devmem 1048576 \
//	    -faults seed=7,loseafter=60 -snapshot serve-snapshot.json
//
// SIGTERM or SIGINT starts the graceful drain: admission stops,
// inflight jobs finish within -drain-timeout, and the final metrics
// snapshot is written to -snapshot before the process exits.
//
// Drive mode turns the same binary into a load-generating client for
// soak tests:
//
//	spgemm-serve -drive http://127.0.0.1:8097 -clients 8 -requests 25 \
//	    -drive-engines hybrid,cpu,panicky -expect-shed -expect-breaker
//
// The drive run fails (exit 1) when an -expect-* assertion does not
// hold in the server's final /metricsz snapshot.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/spgemm"
)

func main() {
	addr := flag.String("addr", ":8097", "HTTP listen address (server mode)")
	maxConc := flag.Int("max-concurrent", 2, "jobs running at once")
	queueDepth := flag.Int("queue", 0, "admission queue depth (0 = 2*max-concurrent)")
	maxFlops := flag.Int64("max-inflight-flops", 0, "inflight flop budget for admission (0 = unlimited)")
	devmem := flag.Int64("devmem", 0, "simulated device memory in bytes (0 = full V100)")
	faultSpec := flag.String("faults", "", "base fault spec for device engines, e.g. seed=7,rate=0.02,loseafter=60")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain deadline on SIGTERM")
	snapshotPath := flag.String("snapshot", "serve-snapshot.json", "write the final metrics snapshot here on drain")
	panicEvery := flag.Int64("chaos-panic-every", 0, "register a 'panicky' engine that panics every Nth call (0 = off)")
	tripLost := flag.Int64("trip-devices-lost", 0, "breaker: cumulative lost devices to trip (0 = default)")
	tripFailures := flag.Int("trip-failures", 0, "breaker: consecutive failures to trip (0 = default)")
	cooldownJobs := flag.Int("cooldown-jobs", 0, "breaker: degraded jobs before a half-open probe (0 = default)")
	planCacheBytes := flag.Int64("plan-cache-bytes", 0, "structure-reuse plan cache budget in bytes (0 = default, negative disables)")
	storeBytes := flag.Int64("matrix-store-bytes", 0, "content-addressed matrix store budget in bytes (0 = 512 MiB)")
	symbolic := flag.String("symbolic", "exact", "base symbolic strategy jobs inherit: exact, estimate or auto")

	driveURL := flag.String("drive", "", "drive mode: base URL of a running spgemm-serve to load-test")
	clients := flag.Int("clients", 4, "drive mode: concurrent clients")
	requests := flag.Int("requests", 20, "drive mode: requests per client")
	driveEngines := flag.String("drive-engines", "cpu", "drive mode: comma-separated engines to request round-robin")
	expectShed := flag.Bool("expect-shed", false, "drive mode: fail unless the server shed load")
	expectBreaker := flag.Bool("expect-breaker", false, "drive mode: fail unless a breaker tripped and jobs degraded")
	driveReuse := flag.Bool("drive-reuse", false, "drive mode: upload one matrix and multiply by handle (repeated-pattern traffic); fails unless the plan cache got hits")
	flag.Parse()

	if *driveURL != "" {
		if err := drive(*driveURL, *clients, *requests,
			strings.Split(*driveEngines, ","), *expectShed, *expectBreaker, *driveReuse); err != nil {
			log.Fatal("spgemm-serve: drive: ", err)
		}
		return
	}

	if *panicEvery > 0 {
		registerPanicky(*panicEvery)
	}
	base := spgemm.RunOptions{}
	mode, err := spgemm.ParseSymbolicMode(*symbolic)
	if err != nil {
		log.Fatal("spgemm-serve: ", err)
	}
	base.Symbolic = mode
	if *devmem > 0 {
		cfg := spgemm.V100WithMemory(*devmem)
		base.Device = &cfg
	}
	if *faultSpec != "" {
		fc, err := spgemm.ParseFaultSpec(*faultSpec)
		if err != nil {
			log.Fatal("spgemm-serve: ", err)
		}
		base.Faults = fc
	}
	srv := serve.New(serve.Config{
		MaxConcurrent:    *maxConc,
		QueueDepth:       *queueDepth,
		MaxInflightFlops: *maxFlops,
		Base:             base,
		DrainTimeout:     *drainTimeout,
		PlanCacheBytes:   *planCacheBytes,
		MatrixStoreBytes: *storeBytes,
		Breaker: serve.BreakerConfig{
			TripDevicesLost: *tripLost,
			TripFailures:    *tripFailures,
			CooldownJobs:    *cooldownJobs,
		},
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal("spgemm-serve: ", err)
		}
	}()
	log.Printf("spgemm-serve: listening on %s (engines: %s)", *addr, strings.Join(spgemm.Engines(), ", "))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	got := <-sig
	log.Printf("spgemm-serve: %v: draining (deadline %v)", got, *drainTimeout)

	snap := srv.Drain(*drainTimeout)
	if err := writeSnapshot(*snapshotPath, snap); err != nil {
		log.Fatal("spgemm-serve: ", err)
	}
	log.Printf("spgemm-serve: drained; snapshot written to %s (%d jobs completed, %d shed)",
		*snapshotPath, snap[metrics.CounterServeCompleted],
		snap[metrics.CounterServeRejectedOverload]+snap[metrics.CounterServeRejectedQueue])
	if err := httpSrv.Close(); err != nil {
		log.Fatal("spgemm-serve: ", err)
	}
}

func writeSnapshot(path string, snap map[string]int64) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// panickyEngine delegates to the cpu engine but panics every Nth call:
// the chaos source for the serve-soak's panic-isolation check.
type panickyEngine struct {
	every int64
	calls *int64
}

func (e panickyEngine) Name() string     { return "panicky" }
func (e panickyEngine) Describe() string { return "cpu engine that panics every Nth call (chaos)" }
func (e panickyEngine) Run(a, b *spgemm.Matrix, opts *spgemm.RunOptions) (*spgemm.Matrix, spgemm.Report, error) {
	if n := atomic.AddInt64(e.calls, 1); n%e.every == 0 {
		panic(fmt.Sprintf("panicky engine: injected panic on call %d", n))
	}
	cpu, err := spgemm.ByName("cpu")
	if err != nil {
		return nil, nil, err
	}
	return cpu.Run(a, b, opts)
}

func registerPanicky(every int64) {
	spgemm.Register(panickyEngine{every: every, calls: new(int64)})
}

// drive load-tests a running server: clients*requests multiply posts
// round-robin over the requested engines, then assertions against the
// final /metricsz snapshot. With reuse, each client multiplies one
// shared uploaded matrix by handle — the repeated-pattern workload the
// plan cache accelerates — instead of generating a fresh operand per
// request.
func drive(baseURL string, clients, requests int, engines []string, expectShed, expectBreaker, reuse bool) error {
	client := &http.Client{Timeout: 120 * time.Second}
	if err := waitHealthy(client, baseURL, 30*time.Second); err != nil {
		return err
	}

	var handle string
	if reuse {
		spec := serve.MatrixSpec{Kind: "rmat", Scale: 7, EdgeFactor: 8, Seed: 100}
		body, _ := json.Marshal(serve.MatrixRequest{Spec: &spec})
		resp, err := client.Post(baseURL+"/v1/matrices", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("matrix upload: %w", err)
		}
		var mr serve.MatrixResponse
		err = json.NewDecoder(resp.Body).Decode(&mr)
		resp.Body.Close()
		if err != nil || mr.Handle == "" {
			return fmt.Errorf("matrix upload: no handle (status %d, err %v)", resp.StatusCode, err)
		}
		handle = mr.Handle
	}

	var (
		mu       sync.Mutex
		statuses = map[int]int{}
		degraded int
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				engine := engines[(c*requests+r)%len(engines)]
				req := serve.MultiplyRequest{Engine: strings.TrimSpace(engine)}
				if reuse {
					req.AHandle = handle
				} else {
					req.A = serve.MatrixSpec{
						Kind: "rmat", Scale: 7, EdgeFactor: 8,
						Seed: int64(100 + c*requests + r),
					}
				}
				body, _ := json.Marshal(req)
				resp, err := client.Post(baseURL+"/v1/multiply", "application/json", bytes.NewReader(body))
				if err != nil {
					mu.Lock()
					statuses[-1]++
					mu.Unlock()
					continue
				}
				var mr serve.MultiplyResponse
				_ = json.NewDecoder(resp.Body).Decode(&mr)
				resp.Body.Close()
				mu.Lock()
				statuses[resp.StatusCode]++
				if mr.Degraded {
					degraded++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	// /metricsz mixes int64 counters with float hit rates; decode into
	// float64 and truncate where ints are asserted.
	rawSnap := map[string]float64{}
	resp, err := client.Get(baseURL + "/metricsz")
	if err != nil {
		return fmt.Errorf("metricsz: %w", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, &rawSnap); err != nil {
		return fmt.Errorf("metricsz: %w", err)
	}
	snap := make(map[string]int64, len(rawSnap))
	for k, v := range rawSnap {
		snap[k] = int64(v)
	}

	fmt.Printf("drive: %d clients x %d requests, statuses %v, degraded responses %d\n",
		clients, requests, statuses, degraded)
	fmt.Printf("drive: server counters: completed=%d failed=%d panicked=%d shed(overload)=%d shed(queue)=%d degraded=%d trips=%d\n",
		snap[metrics.CounterServeCompleted], snap[metrics.CounterServeFailed],
		snap[metrics.CounterServePanicked], snap[metrics.CounterServeRejectedOverload],
		snap[metrics.CounterServeRejectedQueue], snap[metrics.CounterServeDegraded],
		snap[metrics.CounterServeBreakerTrips])
	if reuse {
		fmt.Printf("drive: plan cache hits=%d misses=%d hit_rate=%.2f store hits=%d\n",
			snap[metrics.CounterPlanCacheHits], snap[metrics.CounterPlanCacheMisses],
			rawSnap["plan_cache_hit_rate"], snap[metrics.CounterMatrixStoreHits])
	}

	if snap[metrics.CounterServeCompleted] == 0 {
		return fmt.Errorf("no job completed")
	}
	if expectShed {
		if shed := snap[metrics.CounterServeRejectedOverload] + snap[metrics.CounterServeRejectedQueue]; shed == 0 {
			return fmt.Errorf("expected load shedding, server shed nothing")
		}
	}
	if expectBreaker {
		if snap[metrics.CounterServeBreakerTrips] == 0 {
			return fmt.Errorf("expected a breaker trip, none happened")
		}
		if snap[metrics.CounterServeDegraded] == 0 {
			return fmt.Errorf("breaker tripped but no job degraded to the fallback engine")
		}
	}
	if reuse && snap[metrics.CounterPlanCacheHits] == 0 {
		return fmt.Errorf("handle-reuse traffic got no plan cache hits (misses=%d)",
			snap[metrics.CounterPlanCacheMisses])
	}
	return nil
}

func waitHealthy(client *http.Client, baseURL string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %v: %v", baseURL, timeout, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}
