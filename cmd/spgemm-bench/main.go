// Command spgemm-bench regenerates the tables and figures of the
// paper's evaluation section on the synthetic suite and the simulated
// CPU-GPU node.
//
// Usage:
//
//	spgemm-bench -exp=all
//	spgemm-bench -exp=fig7,table3
//	spgemm-bench -engine=hybrid -trace=hybrid.json
//
// Experiments: table1, table2, fig4, fig7, fig8, fig9, fig10, table3.
// -engine benchmarks one registered engine (see spgemm.Engines()) and
// writes BENCH_<name>.json; -trace additionally writes the run's
// Chrome trace-event profile.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/trace"
	"repro/spgemm"
)

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiments to run (cpu,iter,batch,table1,table2,fig4,fig7,fig8,fig9,fig10,table3,scaling,distributed,gridsweep,ablation-ub,ablation-um,ablation-split,timeline,all)")
	csvDir := flag.String("csv", "", "also write each experiment's table as CSV into this directory")
	engFlag := flag.String("engine", "", "benchmark one registered engine ("+strings.Join(spgemm.Engines(), ", ")+") and write BENCH_<name>.json")
	traceFlag := flag.String("trace", "", "with -engine: write the run's Chrome trace-event JSON to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (after the selected experiments) to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		// The experiment paths exit through fail() on error, so the
		// profile is flushed there too (see fail).
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "spgemm-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live allocations, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "spgemm-bench:", err)
			}
		}()
	}

	if *engFlag != "" {
		if err := runEngineBench(*engFlag, *traceFlag, *csvDir); err != nil {
			fail(err)
		}
		return
	}
	if *traceFlag != "" {
		fail(fmt.Errorf("-trace requires -engine"))
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	pick := func(name string) bool { return all || want[name] }

	// The CPU and iterative benchmarks need no suite preparation, so
	// run them before the (expensive) Suite call and exit early if
	// nothing else is requested.
	ran := 0
	if pick("cpu") {
		if err := runCPUBench(*csvDir); err != nil {
			fail(err)
		}
		ran++
	}
	if pick("iter") {
		if err := runIterBench(*csvDir); err != nil {
			fail(err)
		}
		ran++
	}
	if pick("batch") {
		if err := runBatchBench(*csvDir); err != nil {
			fail(err)
		}
		ran++
	}
	if !all && ran == len(want) {
		return
	}

	runs, err := exp.Suite()
	if err != nil {
		fail(err)
	}

	type experiment struct {
		name string
		run  func() (*exp.Table, error)
	}
	experiments := []experiment{
		{"table1", func() (*exp.Table, error) { return exp.Table1(), nil }},
		{"table2", func() (*exp.Table, error) { return exp.Table2(runs), nil }},
		{"fig4", func() (*exp.Table, error) { return exp.Fig4(runs) }},
		{"fig7", func() (*exp.Table, error) { return exp.Fig7(runs) }},
		{"fig8", func() (*exp.Table, error) { return exp.Fig8(runs) }},
		{"fig9", func() (*exp.Table, error) { return exp.Fig9(runs) }},
		{"fig10", func() (*exp.Table, error) { return exp.Fig10(runs) }},
		{"table3", func() (*exp.Table, error) { return exp.Table3(runs) }},
		{"scaling", func() (*exp.Table, error) { return exp.FigScaling(runs) }},
		{"ablation-ub", func() (*exp.Table, error) { return exp.AblationUpperBound(runs), nil }},
		{"ablation-um", func() (*exp.Table, error) { return exp.AblationUnifiedMemory(runs) }},
		{"ablation-split", func() (*exp.Table, error) { return exp.AblationSplitFraction(runs) }},
		{"gridsweep", func() (*exp.Table, error) { return exp.GridSweep(runs, "com-lj") }},
		{"distributed", func() (*exp.Table, error) { return exp.FigDistributed(runs) }},
		{"formulation", func() (*exp.Table, error) { return exp.AblationFormulation(runs) }},
		{"locality", func() (*exp.Table, error) { return exp.AblationLocality() }},
		{"sensitivity", func() (*exp.Table, error) { return exp.SensitivityBandwidth(runs, "com-lj") }},
		{"phases", func() (*exp.Table, error) { return exp.PhaseBreakdown(runs) }},
	}

	if pick("timeline") {
		if err := printTimeline(runs); err != nil {
			fail(err)
		}
		ran++
	}
	for _, e := range experiments {
		if !pick(e.name) {
			continue
		}
		t, err := e.run()
		if err != nil {
			fail(fmt.Errorf("%s: %w", e.name, err))
		}
		if err := t.Fprint(os.Stdout); err != nil {
			fail(err)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.name, t); err != nil {
				fail(err)
			}
		}
		ran++
	}
	if ran == 0 {
		fail(fmt.Errorf("no experiment matches %q", *expFlag))
	}
}

// runEngineBench benchmarks one registered engine with the metrics
// layer attached, prints the table, writes BENCH_<name>.json and
// optionally the Chrome trace.
func runEngineBench(name, traceFile, csvDir string) error {
	var traceOut io.Writer
	var traceF *os.File
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		traceF, traceOut = f, f
	}
	t, rep, err := exp.EngineBench(name, traceOut)
	if traceF != nil {
		if cerr := traceF.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	if err := t.Fprint(os.Stdout); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out := "BENCH_" + name + ".json"
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote " + out)
	if traceFile != "" {
		fmt.Printf("wrote %s (load at chrome://tracing)\n", traceFile)
	}
	if csvDir != "" {
		return writeCSV(csvDir, "engine-"+name, t)
	}
	return nil
}

// runCPUBench times every real CPU engine plus chunk assembly,
// prints the table and writes the machine-readable BENCH_cpu.json
// next to the working directory (and a CSV if -csv is set).
func runCPUBench(csvDir string) error {
	t, rep, err := exp.CPUBench()
	if err != nil {
		return err
	}
	if err := t.Fprint(os.Stdout); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_cpu.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_cpu.json")
	if csvDir != "" {
		return writeCSV(csvDir, "cpu", t)
	}
	return nil
}

// runIterBench times the structure-reuse fast path (cold full
// multiply vs warm numeric-only re-multiply) on the CPU and simulated
// GPU engines, prints the table and writes BENCH_iter.json.
func runIterBench(csvDir string) error {
	t, rep, err := exp.IterBench()
	if err != nil {
		return err
	}
	if err := t.Fprint(os.Stdout); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_iter.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_iter.json")
	if csvDir != "" {
		return writeCSV(csvDir, "iter", t)
	}
	return nil
}

// runBatchBench times the /v1/batch DAG surface against sequential
// per-request multiplies on the 6-stage chain workload, prints the
// table and writes BENCH_batch.json.
func runBatchBench(csvDir string) error {
	t, rep, err := exp.BatchBench()
	if err != nil {
		return err
	}
	if err := t.Fprint(os.Stdout); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_batch.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_batch.json")
	if csvDir != "" {
		return writeCSV(csvDir, "batch", t)
	}
	return nil
}

// printTimeline renders the Figure 5/6-style schedules: the first
// suite matrix's synchronous and asynchronous device timelines.
func printTimeline(runs []*exp.Run) error {
	r := runs[0]
	for _, mode := range []struct {
		name string
		opts func() core.Options
	}{
		{"synchronous (Figure 5 situation: no overlap)", func() core.Options {
			o := r.CoreOpts()
			o.DynamicAlloc = true
			return o
		}},
		{"asynchronous (Figure 6 schedule: split + reordered transfers)", func() core.Options {
			o := r.CoreOpts()
			o.Async = true
			o.Reorder = true
			return o
		}},
	} {
		_, _, tl, err := core.RunTraced(r.A, r.A, r.Cfg(), mode.opts())
		if err != nil {
			return err
		}
		fmt.Printf("== Timeline: %s on %s ==\n", mode.name, r.Entry.Abbr)
		fmt.Print(trace.Gantt(tl, 100))
		if err := trace.FprintUtilization(os.Stdout, tl); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// writeCSV writes one experiment table to <dir>/<name>.csv.
func writeCSV(dir, name string, t *exp.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	if err := t.CSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// stopProfile flushes the CPU profile; set only when -cpuprofile is
// given. fail calls it because os.Exit skips deferred calls.
var stopProfile func()

func fail(err error) {
	if stopProfile != nil {
		stopProfile()
	}
	fmt.Fprintln(os.Stderr, "spgemm-bench:", err)
	os.Exit(1)
}
