// Package semiring generalizes SpGEMM over arbitrary semirings, the
// GraphBLAS formulation of the paper's reference [22] ("Mathematical
// foundations of the GraphBLAS"): many graph algorithms are exactly a
// sparse matrix product in which (+, x) is replaced by another
// (monoid, operator) pair — (min, +) for shortest paths, (or, and) for
// reachability, (max, min) for bottleneck paths.
//
// The numeric kernel follows the same two-phase Gustavson structure as
// the rest of the repository: a symbolic pass sizes the output (the
// structure of C is semiring-independent — it is the union of
// contributing positions), then a numeric pass accumulates with the
// semiring's Plus over its Times.
package semiring

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/accum"
	"repro/internal/cpuspgemm"
	"repro/internal/csr"
)

// Semiring is an algebraic (⊕, ⊗) pair with the ⊕-identity Zero.
// Multiply treats absent entries as Zero and never stores Zero in the
// output (the standard sparse-semiring convention).
type Semiring struct {
	// Name identifies the semiring in errors and traces.
	Name string
	// Zero is the additive identity (+0 for plus-times, +Inf for
	// min-plus, ...). Accumulation starts from Zero.
	Zero float64
	// Plus is the commutative, associative accumulator.
	Plus func(a, b float64) float64
	// Times combines one A entry with one B entry.
	Times func(a, b float64) float64
}

// PlusTimes is the ordinary arithmetic semiring (ℝ, +, x).
func PlusTimes() Semiring {
	return Semiring{
		Name:  "plus-times",
		Zero:  0,
		Plus:  func(a, b float64) float64 { return a + b },
		Times: func(a, b float64) float64 { return a * b },
	}
}

// MinPlus is the tropical semiring (ℝ ∪ {∞}, min, +): the product of
// adjacency matrices under min-plus relaxes shortest paths.
func MinPlus() Semiring {
	return Semiring{
		Name:  "min-plus",
		Zero:  math.Inf(1),
		Plus:  math.Min,
		Times: func(a, b float64) float64 { return a + b },
	}
}

// MaxMin is the bottleneck semiring ({0..}, max, min): path capacity.
func MaxMin() Semiring {
	return Semiring{
		Name:  "max-min",
		Zero:  math.Inf(-1),
		Plus:  math.Max,
		Times: math.Min,
	}
}

// OrAnd is the boolean semiring ({0,1}, or, and): reachability.
func OrAnd() Semiring {
	b := func(x float64) bool { return x != 0 }
	return Semiring{
		Name: "or-and",
		Zero: 0,
		Plus: func(a, x float64) float64 {
			if b(a) || b(x) {
				return 1
			}
			return 0
		},
		Times: func(a, x float64) float64 {
			if b(a) && b(x) {
				return 1
			}
			return 0
		},
	}
}

// Multiply computes C = A ⊗ B over the semiring with threads worker
// goroutines (0 = GOMAXPROCS). Entries equal to the semiring's Zero
// are dropped from the output.
func Multiply(a, b *csr.Matrix, s Semiring, threads int) (*csr.Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("semiring: dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if s.Plus == nil || s.Times == nil {
		return nil, fmt.Errorf("semiring: %q missing operators", s.Name)
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}

	rowFlops := csr.RowFlops(a, b)
	bounds := cpuspgemm.BalanceRows(rowFlops, threads)

	// Symbolic phase: output structure (semiring-independent).
	rowNnz := make([]int64, a.Rows)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			acc := accum.NewHash(64)
			for i := lo; i < hi; i++ {
				ac, _ := a.Row(i)
				for _, k := range ac {
					bc, _ := b.Row(int(k))
					for _, col := range bc {
						acc.AddSymbolic(col)
					}
				}
				rowNnz[i] = int64(acc.FlushSymbolic())
			}
		}(lo, hi)
	}
	wg.Wait()

	c := &csr.Matrix{Rows: a.Rows, Cols: b.Cols, RowOffsets: make([]int64, a.Rows+1)}
	for i := 0; i < a.Rows; i++ {
		c.RowOffsets[i+1] = c.RowOffsets[i] + rowNnz[i]
	}
	nnz := c.RowOffsets[a.Rows]
	c.ColIDs = make([]int32, nnz)
	c.Data = make([]float64, nnz)

	// Numeric phase with a per-worker semiring accumulator.
	for w := 0; w < threads; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			acc := newSemiringAccum(s)
			for i := lo; i < hi; i++ {
				ac, av := a.Row(i)
				for p := range ac {
					bc, bv := b.Row(int(ac[p]))
					for q := range bc {
						acc.add(bc[q], s.Times(av[p], bv[q]))
					}
				}
				off, end := c.RowOffsets[i], c.RowOffsets[i+1]
				acc.flush(c.ColIDs[off:off:end], c.Data[off:off:end])
			}
		}(lo, hi)
	}
	wg.Wait()

	// Drop entries that accumulated to the semiring's Zero (e.g. a
	// boolean OR of all-false operands cannot happen, but a min-plus
	// over empty support can't either — structural positions always
	// received at least one Times result; still, Times may yield Zero).
	return pruneZero(c, s.Zero), nil
}

// semiAccum is a hash accumulator with a custom Plus.
type semiAccum struct {
	s    Semiring
	idx  map[int32]int
	cols []int32
	vals []float64
}

func newSemiringAccum(s Semiring) *semiAccum {
	return &semiAccum{s: s, idx: make(map[int32]int, 64)}
}

func (h *semiAccum) add(col int32, v float64) {
	if i, ok := h.idx[col]; ok {
		h.vals[i] = h.s.Plus(h.vals[i], v)
		return
	}
	h.idx[col] = len(h.cols)
	h.cols = append(h.cols, col)
	h.vals = append(h.vals, v)
}

func (h *semiAccum) flush(cols []int32, vals []float64) {
	// Insertion sort by column (rows are modest); then emit.
	for i := 1; i < len(h.cols); i++ {
		c, v := h.cols[i], h.vals[i]
		j := i - 1
		for j >= 0 && h.cols[j] > c {
			h.cols[j+1], h.vals[j+1] = h.cols[j], h.vals[j]
			j--
		}
		h.cols[j+1], h.vals[j+1] = c, v
	}
	// The caller sized the row from the symbolic pass: write directly
	// into its backing storage.
	copy(cols[:len(h.cols)], h.cols)
	copy(vals[:len(h.vals)], h.vals)
	h.cols = h.cols[:0]
	h.vals = h.vals[:0]
	for k := range h.idx {
		delete(h.idx, k)
	}
}

// pruneZero removes entries equal to zero (NaN-safe: NaN never equals).
func pruneZero(m *csr.Matrix, zero float64) *csr.Matrix {
	needs := false
	for _, v := range m.Data {
		if v == zero {
			needs = true
			break
		}
	}
	if !needs {
		return m
	}
	out := &csr.Matrix{Rows: m.Rows, Cols: m.Cols, RowOffsets: make([]int64, m.Rows+1)}
	for r := 0; r < m.Rows; r++ {
		_, vals := m.Row(r)
		var n int64
		for _, v := range vals {
			if v != zero {
				n++
			}
		}
		out.RowOffsets[r+1] = out.RowOffsets[r] + n
	}
	out.ColIDs = make([]int32, out.RowOffsets[m.Rows])
	out.Data = make([]float64, out.RowOffsets[m.Rows])
	w := int64(0)
	for r := 0; r < m.Rows; r++ {
		cols, vals := m.Row(r)
		for i := range cols {
			if vals[i] != zero {
				out.ColIDs[w] = cols[i]
				out.Data[w] = vals[i]
				w++
			}
		}
	}
	return out
}
