package semiring

import (
	"fmt"

	"repro/internal/csr"
)

// APSP computes all-pairs shortest path distances of a non-negative
// weighted directed graph by repeated min-plus squaring:
// D ← min(D, D ⊗ D) doubles the covered path length each iteration,
// so ⌈log2(n)⌉ products reach the fixpoint. The result stores one
// entry per reachable pair (including an explicit 0 diagonal);
// unreachable pairs are absent.
//
// threads bounds each product's parallelism (0 = GOMAXPROCS).
func APSP(adj *csr.Matrix, threads int) (*csr.Matrix, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("semiring: APSP needs a square matrix, got %dx%d", adj.Rows, adj.Cols)
	}
	n := adj.Rows
	// D0 = adj with an explicit zero diagonal. The zero diagonal makes
	// D ⊗ D include all paths of length <= 2k, not exactly 2k, and is
	// preserved by elementMin because Multiply prunes the semiring
	// zero (+Inf), never the number 0.
	diag := make([]csr.Entry, n)
	for i := range diag {
		diag[i] = csr.Entry{Row: int32(i), Col: int32(i), Val: 0}
	}
	// Merge, keeping the smaller weight on the diagonal (0 beats any
	// non-negative self loop).
	d := adj.Clone()
	id, err := csr.FromEntries(n, n, diag)
	if err != nil {
		return nil, err
	}
	d, err = elementMin(d, id)
	if err != nil {
		return nil, err
	}

	s := MinPlus()
	for span := 1; span < n; span *= 2 {
		next, err := Multiply(d, d, s, threads)
		if err != nil {
			return nil, err
		}
		// The zero diagonal already makes D⊗D monotone (paths of all
		// lengths are covered), but merging with D guards against
		// floating-point asymmetries.
		merged, err := elementMin(next, d)
		if err != nil {
			return nil, err
		}
		if csr.Equal(merged, d, 0) {
			return merged, nil // fixpoint reached early
		}
		d = merged
	}
	return d, nil
}

// elementMin merges two matrices taking the smaller value where both
// have an entry.
func elementMin(a, b *csr.Matrix) (*csr.Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("semiring: elementMin dimension mismatch")
	}
	var es []csr.Entry
	for r := 0; r < a.Rows; r++ {
		ac, av := a.Row(r)
		bc, bv := b.Row(r)
		i, j := 0, 0
		for i < len(ac) || j < len(bc) {
			switch {
			case j >= len(bc) || (i < len(ac) && ac[i] < bc[j]):
				es = append(es, csr.Entry{Row: int32(r), Col: ac[i], Val: av[i]})
				i++
			case i >= len(ac) || bc[j] < ac[i]:
				es = append(es, csr.Entry{Row: int32(r), Col: bc[j], Val: bv[j]})
				j++
			default:
				v := av[i]
				if bv[j] < v {
					v = bv[j]
				}
				es = append(es, csr.Entry{Row: int32(r), Col: ac[i], Val: v})
				i++
				j++
			}
		}
	}
	return csr.FromEntries(a.Rows, a.Cols, es)
}
