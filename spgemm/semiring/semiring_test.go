package semiring

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cpuspgemm"
	"repro/internal/csr"
	"repro/internal/matgen"
)

func TestPlusTimesMatchesStandardSpGEMM(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		a := matgen.ER(40+rng.Intn(30), 50, 0.1, rng.Int63())
		b := matgen.ER(50, 40+rng.Intn(30), 0.1, rng.Int63())
		want, err := cpuspgemm.Sequential(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, threads := range []int{1, 4} {
			got, err := Multiply(a, b, PlusTimes(), threads)
			if err != nil {
				t.Fatal(err)
			}
			if err := got.Validate(); err != nil {
				t.Fatal(err)
			}
			if !csr.Equal(got, want, 1e-12) {
				t.Fatalf("trial %d threads %d: %s", trial, threads, csr.Diff(got, want, 1e-12))
			}
		}
	}
}

// weightedGraph builds a directed weighted adjacency matrix.
func weightedGraph(t testing.TB, n int, edges map[[2]int32]float64) *csr.Matrix {
	t.Helper()
	var es []csr.Entry
	for e, w := range edges {
		es = append(es, csr.Entry{Row: e[0], Col: e[1], Val: w})
	}
	m, err := csr.FromEntries(n, n, es)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMinPlusRelaxation(t *testing.T) {
	// Path graph 0 -(1)-> 1 -(2)-> 2; (A ⊗ A)[0][2] = 3.
	a := weightedGraph(t, 3, map[[2]int32]float64{
		{0, 1}: 1, {1, 2}: 2,
	})
	p, err := Multiply(a, a, MinPlus(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cols, vals := p.Row(0)
	if len(cols) != 1 || cols[0] != 2 || vals[0] != 3 {
		t.Fatalf("min-plus A² row 0 = %v %v, want [(2,3)]", cols, vals)
	}
}

func TestMinPlusPicksShorterPath(t *testing.T) {
	// Two 2-hop routes from 0 to 3: via 1 (cost 5) and via 2 (cost 4).
	a := weightedGraph(t, 4, map[[2]int32]float64{
		{0, 1}: 2, {1, 3}: 3,
		{0, 2}: 1, {2, 3}: 3,
	})
	p, err := Multiply(a, a, MinPlus(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cols, vals := p.Row(0)
	if len(cols) != 1 || cols[0] != 3 || vals[0] != 4 {
		t.Fatalf("min-plus chose %v %v, want [(3,4)]", cols, vals)
	}
}

func TestOrAndReachability(t *testing.T) {
	// 0 -> 1 -> 2; A² under or-and marks 2-hop reachability.
	a := weightedGraph(t, 3, map[[2]int32]float64{
		{0, 1}: 1, {1, 2}: 1,
	})
	p, err := Multiply(a, a, OrAnd(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cols, vals := p.Row(0)
	if len(cols) != 1 || cols[0] != 2 || vals[0] != 1 {
		t.Fatalf("or-and A² row 0 = %v %v", cols, vals)
	}
}

func TestMaxMinBottleneck(t *testing.T) {
	// 0 -(5)-> 1 -(2)-> 3 and 0 -(3)-> 2 -(4)-> 3: best bottleneck is
	// max(min(5,2), min(3,4)) = 3.
	a := weightedGraph(t, 4, map[[2]int32]float64{
		{0, 1}: 5, {1, 3}: 2,
		{0, 2}: 3, {2, 3}: 4,
	})
	p, err := Multiply(a, a, MaxMin(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cols, vals := p.Row(0)
	if len(cols) != 1 || cols[0] != 3 || vals[0] != 3 {
		t.Fatalf("max-min = %v %v, want [(3,3)]", cols, vals)
	}
}

func TestZeroResultsPruned(t *testing.T) {
	// Plus-times where products cancel: (1)(1) + (1)(-1) = 0 must be
	// dropped from the sparse output.
	a, _ := csr.FromEntries(1, 2, []csr.Entry{{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 1}})
	b, _ := csr.FromEntries(2, 1, []csr.Entry{{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 0, Val: -1}})
	p, err := Multiply(a, b, PlusTimes(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Nnz() != 0 {
		t.Fatalf("cancelled product kept %d entries", p.Nnz())
	}
}

func TestErrors(t *testing.T) {
	if _, err := Multiply(csr.New(2, 3), csr.New(4, 4), PlusTimes(), 1); err == nil {
		t.Fatal("expected dimension mismatch")
	}
	if _, err := Multiply(csr.New(2, 2), csr.New(2, 2), Semiring{Name: "broken"}, 1); err == nil {
		t.Fatal("expected missing-operator error")
	}
}

// TestAPSPAgainstFloydWarshall iterates min-plus products to a
// fixpoint and compares against Floyd-Warshall.
func TestAPSPAgainstFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 24
	edges := map[[2]int32]float64{}
	for i := 0; i < n*3; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != v {
			edges[[2]int32{u, v}] = 1 + rng.Float64()*9
		}
	}
	a := weightedGraph(t, n, edges)

	dist, err := APSP(a, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Floyd-Warshall reference.
	const inf = math.MaxFloat64
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i == j {
				d[i][j] = 0
			} else {
				d[i][j] = inf
			}
		}
	}
	for e, w := range edges {
		if w < d[e[0]][e[1]] {
			d[e[0]][e[1]] = w
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][k] != inf && d[k][j] != inf && d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}

	for i := 0; i < n; i++ {
		row := map[int32]float64{}
		cols, vals := dist.Row(i)
		for x := range cols {
			row[cols[x]] = vals[x]
		}
		for j := 0; j < n; j++ {
			want, ok := d[i][j], d[i][j] != inf
			got, gok := row[int32(j)]
			if i == j {
				// APSP stores explicit zero-distance diagonal.
				if !gok || got != 0 {
					t.Fatalf("diagonal (%d,%d) = %v,%v", i, j, got, gok)
				}
				continue
			}
			if ok != gok {
				t.Fatalf("(%d,%d): reachable %v vs %v", i, j, gok, ok)
			}
			if ok && math.Abs(got-want) > 1e-9 {
				t.Fatalf("(%d,%d): dist %v, want %v", i, j, got, want)
			}
		}
	}
}
