package semiring_test

import (
	"fmt"

	"repro/spgemm"
	"repro/spgemm/semiring"
)

// ExampleMultiply relaxes 2-hop shortest paths with the tropical
// (min, +) semiring.
func ExampleMultiply() {
	a, _ := spgemm.FromEntries(3, 3, []spgemm.Entry{
		{Row: 0, Col: 1, Val: 1.5}, {Row: 1, Col: 2, Val: 2.5},
	})
	p, _ := semiring.Multiply(a, a, semiring.MinPlus(), 1)
	cols, vals := p.Row(0)
	fmt.Println(cols, vals)
	// Output: [2] [4]
}

// ExampleAPSP computes all-pairs shortest paths on a weighted path
// graph by min-plus squaring.
func ExampleAPSP() {
	a, _ := spgemm.FromEntries(4, 4, []spgemm.Entry{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 2, Val: 2}, {Row: 2, Col: 3, Val: 3},
	})
	d, _ := semiring.APSP(a, 1)
	cols, vals := d.Row(0)
	fmt.Println(cols, vals)
	// Output: [0 1 2 3] [0 1 3 6]
}
