package spgemm

import (
	"testing"

	"repro/internal/cpuspgemm"
)

// TestPlanCacheCPUUpgrade pins the provenance rules of storeCPU: an
// exact plan upgrades an estimated entry in place, an estimated plan
// never displaces an exact one, and first-store-wins otherwise.
func TestPlanCacheCPUUpgrade(t *testing.T) {
	a := ER(200, 200, 0.03, 51)
	pc := NewPlanCache(0)
	key := cpuPlanKey{fpA: Fingerprint(a), fpB: Fingerprint(a), rows: a.Rows, aCols: a.Cols, cols: a.Cols}

	_, symEst, _, err := cpuspgemm.MultiplyEstimated(a, a, cpuspgemm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, symExact, err := cpuspgemm.MultiplyPlanned(a, a, cpuspgemm.Options{})
	if err != nil {
		t.Fatal(err)
	}

	if pc.storeCPU(key, symEst) {
		t.Fatal("first store reported an upgrade")
	}
	if pc.Upgrades() != 0 {
		t.Fatal("upgrades counted before any upgrade")
	}
	// Estimated never displaces estimated: first store wins.
	if pc.storeCPU(key, symEst) {
		t.Fatal("estimated displaced estimated")
	}
	// Exact upgrades the estimated entry in place.
	if !pc.storeCPU(key, symExact) {
		t.Fatal("exact did not upgrade the estimated entry")
	}
	if pc.Upgrades() != 1 {
		t.Fatalf("Upgrades = %d, want 1", pc.Upgrades())
	}
	if got := pc.acquireCPU(key); got != symExact {
		t.Fatal("cache did not serve the upgraded exact plan")
	}
	// Estimated never displaces exact.
	if pc.storeCPU(key, symEst) {
		t.Fatal("estimated displaced exact")
	}
	if got := pc.acquireCPU(key); got != symExact || got.Estimated {
		t.Fatal("exact entry lost after estimated re-store")
	}
}

// TestPlanCacheGridUpgrade pins the grid-memo provenance: an estimated
// memo serves estimated requests, an exact request re-plans and
// upgrades it, and the exact memo then serves everyone.
func TestPlanCacheGridUpgrade(t *testing.T) {
	a := RMAT(9, 8, 0.57, 0.19, 0.19, 52)
	cfg := V100WithMemory(1 << 20)
	pc := NewPlanCache(0)

	est1, err := pc.plan(a, a, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	est2, err := pc.plan(a, a, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if est1 != est2 {
		t.Fatal("estimated memo did not serve a repeated estimated request")
	}
	exact, err := pc.plan(a, a, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Upgrades() != 1 {
		t.Fatalf("Upgrades = %d after exact re-plan, want 1", pc.Upgrades())
	}
	wantExact, err := Plan(a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exact != wantExact {
		t.Fatalf("upgraded memo %+v != exact plan %+v", exact, wantExact)
	}
	// The exact memo now serves estimated requests too, with no further
	// upgrade churn.
	served, err := pc.plan(a, a, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if served != wantExact || pc.Upgrades() != 1 {
		t.Fatal("exact memo not reused for an estimated request")
	}
}

// TestPlanCacheEstimatedWarmBitIdentical runs the cpu engine cold in
// estimation mode, then warm in exact mode on refreshed values: the
// warm run replays the cached (estimated-provenance, exact-structure)
// plan and must match an uncached exact run byte for byte.
func TestPlanCacheEstimatedWarmBitIdentical(t *testing.T) {
	a := ER(250, 250, 0.03, 53)
	pc := NewPlanCache(0)
	eng, err := ByName("cpu")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Run(a, a, &RunOptions{PlanCache: pc, Symbolic: SymbolicEstimate}); err != nil {
		t.Fatal(err)
	}
	fresh := refreshValues(a, 54)
	cold, _, err := eng.Run(fresh, fresh, &RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warm, _, err := eng.Run(fresh, fresh, &RunOptions{PlanCache: pc})
	if err != nil {
		t.Fatal(err)
	}
	mustBitIdentical(t, cold, warm)
	hits, _, _ := pc.Counters()
	if hits == 0 {
		t.Fatal("estimated cold run did not populate the plan cache")
	}
}
