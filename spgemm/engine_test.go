package spgemm

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/metrics"
)

// runOptsFor returns RunOptions that exercise each engine's machinery
// on a small matrix: a small device so the gpu engines go out-of-core,
// two GPUs for multigpu, a 2x2 grid for summa.
func runOptsFor(name string) *RunOptions {
	cfg := V100WithMemory(8 << 20)
	o := &RunOptions{Device: &cfg}
	switch name {
	case "multigpu":
		o.NumGPUs = 2
		o.UseCPU = true
	case "summa":
		o.SUMMA = SUMMAConfig{Q: 2, Pipelined: true}
	}
	return o
}

func TestEngineRegistry(t *testing.T) {
	names := Engines()
	want := []string{"auto", "cpu", "cpu-merge", "cpu-outer", "gpu", "gpu-sync", "hybrid", "multigpu", "summa"}
	if len(names) != len(want) {
		t.Fatalf("Engines() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Engines() = %v, want %v", names, want)
		}
	}
	for _, n := range names {
		e, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() != n {
			t.Fatalf("ByName(%q).Name() = %q", n, e.Name())
		}
		if e.Describe() == "" {
			t.Fatalf("engine %q has no description", n)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted an unknown engine")
	}
}

// TestEveryEngineRunsAndReports is the registry's contract test: every
// registered engine computes the exact product and returns a Report
// whose core quantities are consistent with it.
func TestEveryEngineRunsAndReports(t *testing.T) {
	a := RMAT(9, 8, 0.57, 0.19, 0.19, 11)
	ref, err := Multiply(a, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Engines() {
		name := name
		t.Run(name, func(t *testing.T) {
			eng, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			c, rep, err := eng.Run(a, a, runOptsFor(name))
			if err != nil {
				t.Fatal(err)
			}
			if !Equal(c, ref, 1e-9) {
				t.Fatal("product differs from the CPU reference")
			}
			if rep == nil {
				t.Fatal("nil Report")
			}
			if rep.OutputNnz() != c.Nnz() {
				t.Fatalf("OutputNnz %d != nnz(C) %d", rep.OutputNnz(), c.Nnz())
			}
			if rep.FlopCount() <= 0 || rep.Seconds() <= 0 || rep.Throughput() <= 0 {
				t.Fatalf("degenerate report: flops=%d sec=%g gflops=%g",
					rep.FlopCount(), rep.Seconds(), rep.Throughput())
			}
			counters := rep.Counters()
			if counters[metrics.CounterNnzC] != c.Nnz() {
				t.Fatalf("counter nnz_c %d != nnz(C) %d", counters[metrics.CounterNnzC], c.Nnz())
			}
			if counters[metrics.CounterFlops] != rep.FlopCount() {
				t.Fatalf("counter flops %d != FlopCount %d", counters[metrics.CounterFlops], rep.FlopCount())
			}
		})
	}
}

// TestEngineCorruptInputRejected closes the validation hole: every
// engine, including multigpu and summa, must reject structurally
// corrupt operands at the API boundary.
func TestEngineCorruptInputRejected(t *testing.T) {
	a := Band(64, 2, 17)
	corrupt := a.Clone()
	corrupt.ColIDs[0] = 9999 // out of range
	for _, name := range Engines() {
		name := name
		t.Run(name, func(t *testing.T) {
			eng, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := eng.Run(corrupt, a, runOptsFor(name)); err == nil {
				t.Fatal("corrupt left operand accepted")
			}
			if _, _, err := eng.Run(a, corrupt, runOptsFor(name)); err == nil {
				t.Fatal("corrupt right operand accepted")
			}
		})
	}
}

// TestCounterParityAcrossSyncModes checks the counter semantics are
// mode-independent: the synchronous baseline and the asynchronous
// pipeline move the same payloads and do the same arithmetic, so their
// counters must agree exactly.
func TestCounterParityAcrossSyncModes(t *testing.T) {
	a := RMAT(9, 8, 0.57, 0.19, 0.19, 23)
	snapshots := map[string]map[string]int64{}
	for _, name := range []string{"gpu", "gpu-sync"} {
		eng, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		o := runOptsFor(name)
		o.Core = OutOfCoreOptions{RowPanels: 3, ColPanels: 3}
		o.Metrics = NewCollector()
		_, rep, err := eng.Run(a, a, o)
		if err != nil {
			t.Fatal(err)
		}
		snapshots[name] = rep.Counters()
		// The collector saw the same counters the report carries.
		for k, v := range rep.Counters() {
			if got := o.Metrics.Counter(k); got != v {
				t.Fatalf("%s: collector counter %s = %d, report says %d", name, k, got, v)
			}
		}
	}
	async, sync := snapshots["gpu"], snapshots["gpu-sync"]
	for _, k := range []string{
		metrics.CounterFlops, metrics.CounterNnzC, metrics.CounterChunks,
		metrics.CounterBytesH2D, metrics.CounterBytesD2H,
	} {
		if async[k] != sync[k] {
			t.Errorf("counter %s differs across modes: async %d, sync %d", k, async[k], sync[k])
		}
	}
}

// TestHybridTraceReconciles is the acceptance test of the metrics
// layer: a hybrid run's Chrome trace must be loadable (well-formed
// trace-event JSON) and its per-phase totals must reconcile with the
// collector and the engine Report within rounding.
func TestHybridTraceReconciles(t *testing.T) {
	a := RMAT(9, 8, 0.57, 0.19, 0.19, 31)
	eng, err := ByName("hybrid")
	if err != nil {
		t.Fatal(err)
	}
	o := runOptsFor("hybrid")
	o.Metrics = NewCollector()
	_, rep, err := eng.Run(a, a, o)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := o.Metrics.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.Unit == "" || len(doc.TraceEvents) == 0 {
		t.Fatal("trace missing displayTimeUnit or events")
	}

	// Shape: every event has the mandatory trace-event fields; complete
	// events carry non-negative timestamps and durations.
	simDurUs := 0.0 // total busy µs in the simulated domain (pid 1)
	var counterArgs map[string]any
	sawX := false
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if _, ok := ev["name"].(string); !ok || ph == "" {
			t.Fatalf("event missing name/ph: %v", ev)
		}
		pid, ok := ev["pid"].(float64)
		if !ok || (pid != 1 && pid != 2) {
			t.Fatalf("event with bad pid: %v", ev)
		}
		switch ph {
		case "X":
			sawX = true
			ts, tok := ev["ts"].(float64)
			dur, dok := ev["dur"].(float64)
			if !tok || !dok || ts < 0 || dur < 0 {
				t.Fatalf("complete event with bad ts/dur: %v", ev)
			}
			if pid == 1 {
				simDurUs += dur
			}
		case "I":
			if args, ok := ev["args"].(map[string]any); ok {
				counterArgs = args
			}
		}
	}
	if !sawX {
		t.Fatal("trace has no complete events")
	}

	// Reconcile: total simulated busy time in the trace equals the
	// collector's span totals (ns -> µs within rounding).
	var busyNs int64
	for _, s := range o.Metrics.Spans() {
		if s.Domain == metrics.Sim {
			busyNs += s.Dur()
		}
	}
	if got, want := simDurUs, float64(busyNs)/1e3; math.Abs(got-want) > 1e-3+1e-9*want {
		t.Fatalf("trace busy %.3fus != collector busy %.3fus", got, want)
	}

	// Reconcile: the report's duration matches the simulated makespan.
	makespan := float64(o.Metrics.Makespan(metrics.Sim))
	if sec := rep.Seconds() * 1e9; math.Abs(sec-makespan) > 0.01*sec {
		t.Fatalf("report %.0fns vs sim makespan %.0fns", sec, makespan)
	}

	// Reconcile: the counters instant event matches the report.
	if counterArgs == nil {
		t.Fatal("trace has no counters event")
	}
	for k, v := range rep.Counters() {
		got, ok := counterArgs[k].(float64)
		if !ok || int64(got) != v {
			t.Fatalf("trace counter %s = %v, report says %d", k, counterArgs[k], v)
		}
	}
}

// TestNilRunOptions checks that a nil *RunOptions means defaults.
func TestNilRunOptions(t *testing.T) {
	a := Band(64, 2, 5)
	eng, err := ByName("cpu")
	if err != nil {
		t.Fatal(err)
	}
	c, rep, err := eng.Run(a, a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OutputNnz() != c.Nnz() {
		t.Fatal("report/nnz mismatch with nil options")
	}
}
