package spgemm

import (
	"path/filepath"
	"testing"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	a, err := FromEntries(3, 3, []Entry{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 2, Val: 2},
		{Row: 1, Col: 1, Val: 3}, {Row: 2, Col: 0, Val: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Multiply(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows != 3 || c.Cols != 3 {
		t.Fatalf("product dims %dx%d", c.Rows, c.Cols)
	}
	// (A²)[0][0] = 1*1 + 2*4 = 9.
	cols, vals := c.Row(0)
	if cols[0] != 0 || vals[0] != 9 {
		t.Fatalf("A²[0] = %v %v", cols, vals)
	}
}

func TestEnginesAgree(t *testing.T) {
	a := RMAT(9, 8, 0.57, 0.19, 0.19, 31)
	cpu, err := MultiplyCPU(a, a, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := V100WithMemory(64 << 20)
	ooc, st, err := MultiplyOutOfCore(a, a, cfg, OutOfCoreOptions{RowPanels: 3, ColPanels: 3, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(cpu, ooc, 1e-9) {
		t.Fatal("CPU and out-of-core products differ")
	}
	if st.GFLOPS <= 0 || st.Flops != Flops(a, a) {
		t.Fatalf("bad stats %+v", st)
	}
	hy, hst, err := MultiplyHybrid(a, a, cfg, HybridOptions{Core: OutOfCoreOptions{RowPanels: 3, ColPanels: 3}, Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(cpu, hy, 1e-9) {
		t.Fatal("CPU and hybrid products differ")
	}
	if hst.GPUChunks+hst.CPUChunks != 9 {
		t.Fatalf("hybrid chunk split %d+%d", hst.GPUChunks, hst.CPUChunks)
	}
}

func TestPlan(t *testing.T) {
	a := RMAT(10, 8, 0.57, 0.19, 0.19, 32)
	cfg := V100WithMemory(8 << 20)
	opts, err := Plan(a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if opts.RowPanels*opts.ColPanels < 2 {
		t.Fatalf("plan %dx%d not out-of-core for a tiny device", opts.RowPanels, opts.ColPanels)
	}
	// The planned options must actually run.
	c, _, err := MultiplyOutOfCore(a, a, cfg, opts)
	if err != nil {
		t.Fatalf("planned run failed: %v", err)
	}
	want, _ := Multiply(a, a)
	if !Equal(c, want, 1e-9) {
		t.Fatal("planned run wrong product")
	}
}

func TestPlanErrors(t *testing.T) {
	a := RMAT(8, 8, 0.57, 0.19, 0.19, 33)
	if _, err := Plan(a, NewMatrix(99, 5), V100()); err == nil {
		t.Fatal("expected dimension mismatch")
	}
	if _, err := Plan(a, a, V100WithMemory(1024)); err == nil {
		t.Fatal("expected too-small-device error")
	}
}

func TestGridFor(t *testing.T) {
	r, c := gridFor(6, 100, 100)
	if r*c < 6 {
		t.Fatalf("gridFor(6) = %dx%d", r, c)
	}
	r, c = gridFor(50, 4, 4)
	if r > 4 || c > 4 {
		t.Fatalf("gridFor exceeded dims: %dx%d", r, c)
	}
	r, c = gridFor(1, 10, 10)
	if r != 1 || c != 1 {
		t.Fatalf("gridFor(1) = %dx%d", r, c)
	}
}

func TestMatrixMarketThroughFacade(t *testing.T) {
	a := Band(50, 2, 34)
	path := filepath.Join(t.TempDir(), "a.mtx")
	if err := WriteMatrixMarket(path, a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(path)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(a, got, 0) {
		t.Fatal("matrix market round trip mismatch")
	}
}

func TestGenerators(t *testing.T) {
	if m := Stencil2D(4, 4); m.Rows != 16 {
		t.Fatal("Stencil2D wrong")
	}
	if m := ER(10, 10, 0.5, 1); m.Nnz() == 0 {
		t.Fatal("ER empty")
	}
	if m := BlockDiag(2, 3, 1); m.Nnz() != 18 {
		t.Fatal("BlockDiag wrong")
	}
}

func TestMultiplySUMMA(t *testing.T) {
	a := RMAT(9, 8, 0.57, 0.19, 0.19, 35)
	want, err := Multiply(a, a)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := MultiplySUMMA(a, a, SUMMAConfig{Q: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, want, 1e-9) {
		t.Fatal("SUMMA product differs from CPU reference")
	}
	if st.Nodes != 4 || st.GFLOPS <= 0 {
		t.Fatalf("bad stats %+v", st)
	}
}

func TestMultiplyMultiGPUFacade(t *testing.T) {
	a := Band(500, 3, 36)
	want, err := Multiply(a, a)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := MultiplyMultiGPU(a, a, V100WithMemory(16<<20), MultiGPUOptions{
		Core:    OutOfCoreOptions{RowPanels: 2, ColPanels: 2},
		NumGPUs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, want, 1e-9) {
		t.Fatal("multi-GPU product differs from CPU reference")
	}
	if len(st.GPUChunks) != 2 {
		t.Fatalf("bad stats %+v", st)
	}
}

func TestMultiplyAuto(t *testing.T) {
	// A skewed graph on a device so small that the initial plan's
	// densest chunk may not fit; MultiplyAuto must refine and succeed.
	a := RMAT(10, 10, 0.6, 0.17, 0.17, 37)
	cfg := V100WithMemory(3 << 20)
	c, st, err := MultiplyAuto(a, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Multiply(a, a)
	if !Equal(c, want, 1e-9) {
		t.Fatal("auto product wrong")
	}
	if st.Chunks < 4 {
		t.Fatalf("auto run used only %d chunks on a tiny device", st.Chunks)
	}
	// Hopeless device: must return an error, not loop forever.
	if _, _, err := MultiplyAuto(a, a, V100WithMemory(1<<10)); err == nil {
		t.Fatal("expected error for hopeless device")
	}
}

func TestCorruptInputRejected(t *testing.T) {
	a := Band(50, 2, 40)
	corrupt := a.Clone()
	corrupt.ColIDs[0] = 9999 // out of range
	if _, err := Multiply(corrupt, a); err == nil {
		t.Fatal("corrupt left operand accepted")
	}
	if _, err := Multiply(a, corrupt); err == nil {
		t.Fatal("corrupt right operand accepted")
	}
	if _, _, err := MultiplyOutOfCore(corrupt, a, V100WithMemory(8<<20), OutOfCoreOptions{RowPanels: 2, ColPanels: 2}); err == nil {
		t.Fatal("corrupt operand accepted by out-of-core engine")
	}
	if _, _, err := MultiplyHybrid(corrupt, a, V100WithMemory(8<<20), HybridOptions{Core: OutOfCoreOptions{RowPanels: 2, ColPanels: 2}}); err == nil {
		t.Fatal("corrupt operand accepted by hybrid engine")
	}
}

func TestReorderFacade(t *testing.T) {
	a := Band(100, 3, 44)
	perm, err := RCM(a)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Permute(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	if Bandwidth(p) > 2*Bandwidth(a)+2 {
		t.Fatalf("RCM of an already-banded matrix exploded the bandwidth: %d vs %d",
			Bandwidth(p), Bandwidth(a))
	}
}

func TestAlternativeCPUEngines(t *testing.T) {
	a := RMAT(9, 7, 0.57, 0.19, 0.19, 48)
	want, err := Multiply(a, a)
	if err != nil {
		t.Fatal(err)
	}
	merge, err := MultiplyCPUMerge(a, a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(merge, want, 1e-9) {
		t.Fatal("merge engine differs")
	}
	outer, err := MultiplyCPUOuter(a, a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(outer, want, 1e-9) {
		t.Fatal("outer-product engine differs")
	}
	// Boundary validation applies here too.
	bad := a.Clone()
	bad.ColIDs[0] = 32000
	if _, err := MultiplyCPUMerge(bad, a, 1); err == nil {
		t.Fatal("corrupt input accepted by merge engine")
	}
	if _, err := MultiplyCPUOuter(a, bad, 1); err == nil {
		t.Fatal("corrupt input accepted by outer engine")
	}
}
