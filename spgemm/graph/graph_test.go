package graph

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/csr"
	"repro/internal/gpusim"
)

// undirected builds a symmetric 0/1 adjacency matrix from an edge list.
func undirected(t testing.TB, n int, edges [][2]int32) *csr.Matrix {
	t.Helper()
	var es []csr.Entry
	for _, e := range edges {
		es = append(es, csr.Entry{Row: e[0], Col: e[1], Val: 1})
		es = append(es, csr.Entry{Row: e[1], Col: e[0], Val: 1})
	}
	m, err := csr.FromEntries(n, n, es)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Data {
		m.Data[i] = 1 // collapse duplicate edges
	}
	return m
}

func TestTrianglesKnownGraphs(t *testing.T) {
	// K4: C(4,3) = 4 triangles.
	k4 := undirected(t, 4, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if got, err := Triangles(k4, nil); err != nil || got != 4 {
		t.Fatalf("K4 triangles = %d, err %v; want 4", got, err)
	}
	// C5 (5-cycle): no triangles.
	c5 := undirected(t, 5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	if got, err := Triangles(c5, nil); err != nil || got != 0 {
		t.Fatalf("C5 triangles = %d, err %v; want 0", got, err)
	}
	// Two disjoint triangles.
	two := undirected(t, 6, [][2]int32{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})
	if got, err := Triangles(two, nil); err != nil || got != 2 {
		t.Fatalf("2xK3 triangles = %d, err %v; want 2", got, err)
	}
	// Empty graph.
	if got, err := Triangles(csr.New(7, 7), nil); err != nil || got != 0 {
		t.Fatalf("empty graph triangles = %d, err %v", got, err)
	}
}

func TestTrianglesErrors(t *testing.T) {
	if _, err := Triangles(csr.New(3, 4), nil); err == nil {
		t.Fatal("expected non-square error")
	}
}

func TestTrianglesAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		n := 20 + rng.Intn(20)
		var edges [][2]int32
		adjSet := map[[2]int32]bool{}
		for i := 0; i < n*3; i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if !adjSet[[2]int32{u, v}] {
				adjSet[[2]int32{u, v}] = true
				edges = append(edges, [2]int32{u, v})
			}
		}
		adj := undirected(t, n, edges)
		got, err := Triangles(adj, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force.
		has := func(u, v int) bool {
			cols, _ := adj.Row(u)
			for _, c := range cols {
				if int(c) == v {
					return true
				}
			}
			return false
		}
		var want int64
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if !has(u, v) {
					continue
				}
				for w := v + 1; w < n; w++ {
					if has(u, w) && has(v, w) {
						want++
					}
				}
			}
		}
		if got != want {
			t.Fatalf("trial %d: triangles = %d, want %d", trial, got, want)
		}
	}
}

// plantedPartition builds k dense clusters of size cs with sparse
// inter-cluster edges.
func plantedPartition(t testing.TB, k, cs int, seed int64) (*csr.Matrix, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := k * cs
	var edges [][2]int32
	truth := make([]int, n)
	for g := 0; g < k; g++ {
		base := g * cs
		for i := 0; i < cs; i++ {
			truth[base+i] = g
			for j := i + 1; j < cs; j++ {
				if rng.Float64() < 0.85 {
					edges = append(edges, [2]int32{int32(base + i), int32(base + j)})
				}
			}
		}
	}
	// One weak bridge between consecutive clusters.
	for g := 0; g+1 < k; g++ {
		edges = append(edges, [2]int32{int32(g*cs + cs - 1), int32((g + 1) * cs)})
	}
	return undirected(t, n, edges), truth
}

func TestMCLRecoverPlantedClusters(t *testing.T) {
	adj, truth := plantedPartition(t, 3, 12, 5)
	res, err := MCL(adj, MCLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 3 {
		t.Fatalf("found %d clusters, want 3 (sizes %v)", res.NumClusters, ClusterSizes(res))
	}
	// Every planted cluster must map to exactly one found cluster.
	for g := 0; g < 3; g++ {
		first := -1
		for v, tg := range truth {
			if tg != g {
				continue
			}
			if first == -1 {
				first = res.Labels[v]
			} else if res.Labels[v] != first {
				t.Fatalf("planted cluster %d split: vertex %d has label %d, want %d",
					g, v, res.Labels[v], first)
			}
		}
	}
	if res.Iters < 2 {
		t.Fatalf("suspiciously fast convergence: %d iters", res.Iters)
	}
}

func TestMCLDisconnectedComponents(t *testing.T) {
	// Two disjoint triangles must form two clusters.
	adj := undirected(t, 6, [][2]int32{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})
	res, err := MCL(adj, MCLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("found %d clusters, want 2", res.NumClusters)
	}
	if res.Labels[0] != res.Labels[1] || res.Labels[0] != res.Labels[2] {
		t.Fatal("first triangle split")
	}
	if res.Labels[3] != res.Labels[4] || res.Labels[3] != res.Labels[5] {
		t.Fatal("second triangle split")
	}
	if res.Labels[0] == res.Labels[3] {
		t.Fatal("triangles merged")
	}
}

func TestMCLWithOutOfCoreMultiplier(t *testing.T) {
	adj, _ := plantedPartition(t, 3, 12, 6)
	cfg := gpusim.ScaledV100Config(4 << 20)
	mult := func(a, b *csr.Matrix) (*csr.Matrix, error) {
		c, _, err := core.Run(a, b, cfg, core.Options{RowPanels: 2, ColPanels: 2, Async: true})
		return c, err
	}
	got, err := MCL(adj, MCLOptions{Multiply: mult})
	if err != nil {
		t.Fatal(err)
	}
	want, err := MCL(adj, MCLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClusters != want.NumClusters {
		t.Fatalf("engines disagree: %d vs %d clusters", got.NumClusters, want.NumClusters)
	}
	for v := range got.Labels {
		// Labels may be permuted; compare co-membership of vertex 0's
		// cluster as a cheap invariant.
		same1 := got.Labels[v] == got.Labels[0]
		same2 := want.Labels[v] == want.Labels[0]
		if same1 != same2 {
			t.Fatalf("vertex %d co-membership differs between engines", v)
		}
	}
}

func TestMCLErrors(t *testing.T) {
	if _, err := MCL(csr.New(3, 4), MCLOptions{}); err == nil {
		t.Fatal("expected non-square error")
	}
}

func TestClusterSizes(t *testing.T) {
	r := &MCLResult{Labels: []int{0, 1, 1, 2, 1}, NumClusters: 3}
	sizes := ClusterSizes(r)
	if len(sizes) != 3 || sizes[0] != 3 || sizes[1] != 1 || sizes[2] != 1 {
		t.Fatalf("sizes = %v", sizes)
	}
}
