// Package graph implements SpGEMM-based graph algorithms: triangle
// counting and Markov clustering (MCL).
//
// Graph analytics is the second application family the paper's
// introduction motivates; its related work highlights Markov
// clustering (Selvitopi et al. [33] optimize MCL with distributed
// SpGEMM), whose expansion step is exactly the out-of-core-sized
// product M·M this repository accelerates. Both algorithms accept a
// pluggable Multiplier so they can run on the CPU, simulated-GPU or
// hybrid engines.
package graph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cpuspgemm"
	"repro/internal/csr"
)

// Multiplier computes a sparse product C = A·B.
type Multiplier func(a, b *csr.Matrix) (*csr.Matrix, error)

func defaultMultiplier(a, b *csr.Matrix) (*csr.Matrix, error) {
	return cpuspgemm.Multiply(a, b, cpuspgemm.Options{})
}

// Triangles counts the triangles of an undirected simple graph given
// its symmetric 0/1 adjacency matrix: tri = trace-free masked sum
// sum_{(i,j) in E} (A²)_ij / 6. Each triangle {i,j,k} contributes a
// 2-path i-k-j for each of its 6 ordered edge pairs.
func Triangles(adj *csr.Matrix, mult Multiplier) (int64, error) {
	if adj.Rows != adj.Cols {
		return 0, fmt.Errorf("graph: adjacency must be square, got %dx%d", adj.Rows, adj.Cols)
	}
	if mult == nil {
		mult = defaultMultiplier
	}
	a2, err := mult(adj, adj)
	if err != nil {
		return 0, err
	}
	// Masked sum A ∘ A²: each triangle contributes one 2-path per
	// ordered edge pair.
	masked, err := csr.Hadamard(adj, a2)
	if err != nil {
		return 0, err
	}
	return int64(masked.Sum()+0.5) / 6, nil
}

// MCLOptions configures Markov clustering.
type MCLOptions struct {
	// Inflation is the inflation exponent; zero means 2.0.
	Inflation float64
	// Prune drops entries below this value after inflation; zero means
	// 1e-4.
	Prune float64
	// MaxIters bounds the iteration count; zero means 50.
	MaxIters int
	// Tol is the convergence threshold on the largest entry change;
	// zero means 1e-6.
	Tol float64
	// Multiply is the SpGEMM engine for the expansion step (M·M).
	Multiply Multiplier
}

func (o MCLOptions) withDefaults() MCLOptions {
	if o.Inflation == 0 {
		o.Inflation = 2.0
	}
	if o.Prune == 0 {
		o.Prune = 1e-4
	}
	if o.MaxIters == 0 {
		o.MaxIters = 50
	}
	if o.Tol == 0 {
		o.Tol = 1e-6
	}
	if o.Multiply == nil {
		o.Multiply = defaultMultiplier
	}
	return o
}

// MCLResult reports a Markov clustering.
type MCLResult struct {
	// Labels maps each vertex to its cluster id (0..NumClusters-1).
	Labels []int
	// NumClusters is the cluster count.
	NumClusters int
	// Iters is the number of expansion/inflation iterations performed.
	Iters int
}

// MCL runs Markov clustering on a graph given by its (non-negative)
// adjacency matrix. Each iteration expands (M ← M·M, the SpGEMM), then
// inflates (entrywise power + column renormalization) and prunes.
func MCL(adj *csr.Matrix, opts MCLOptions) (*MCLResult, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("graph: adjacency must be square, got %dx%d", adj.Rows, adj.Cols)
	}
	opts = opts.withDefaults()

	// MCL operates on column-stochastic matrices. Work with the
	// transpose convention: keep M row-stochastic over the transposed
	// graph, which is equivalent and CSR-friendly. Add self loops
	// first (standard MCL practice).
	m, err := addSelfLoops(adj.Transpose())
	if err != nil {
		return nil, err
	}
	normalizeRows(m)

	iters := 0
	for ; iters < opts.MaxIters; iters++ {
		// Expansion: the SpGEMM step.
		next, err := opts.Multiply(m, m)
		if err != nil {
			return nil, err
		}
		// Inflation + pruning + renormalization.
		inflate(next, opts.Inflation, opts.Prune)
		normalizeRows(next)
		next = next.Prune(0) // drop the explicit zeros pruning left

		if converged(m, next, opts.Tol) {
			m = next
			iters++
			break
		}
		m = next
	}

	labels, num := interpretClusters(m)
	return &MCLResult{Labels: labels, NumClusters: num, Iters: iters}, nil
}

func addSelfLoops(a *csr.Matrix) (*csr.Matrix, error) {
	var loops []csr.Entry
	for i := 0; i < a.Rows; i++ {
		loops = append(loops, csr.Entry{Row: int32(i), Col: int32(i), Val: 1})
	}
	id, err := csr.FromEntries(a.Rows, a.Cols, loops)
	if err != nil {
		return nil, err
	}
	return csr.Add(a, id)
}

func normalizeRows(m *csr.Matrix) {
	for r := 0; r < m.Rows; r++ {
		lo, hi := m.RowOffsets[r], m.RowOffsets[r+1]
		var sum float64
		for p := lo; p < hi; p++ {
			sum += m.Data[p]
		}
		if sum == 0 {
			continue
		}
		for p := lo; p < hi; p++ {
			m.Data[p] /= sum
		}
	}
}

func inflate(m *csr.Matrix, power, prune float64) {
	for i, v := range m.Data {
		m.Data[i] = math.Pow(v, power)
		if m.Data[i] < prune {
			m.Data[i] = 0
		}
	}
}

// converged reports whether the largest entrywise difference between
// two (structurally close) iterates is below tol.
func converged(a, b *csr.Matrix, tol float64) bool {
	if a.Rows != b.Rows {
		return false
	}
	for r := 0; r < a.Rows; r++ {
		ac, av := a.Row(r)
		bc, bv := b.Row(r)
		i, j := 0, 0
		for i < len(ac) || j < len(bc) {
			switch {
			case j >= len(bc) || (i < len(ac) && ac[i] < bc[j]):
				if math.Abs(av[i]) > tol {
					return false
				}
				i++
			case i >= len(ac) || bc[j] < ac[i]:
				if math.Abs(bv[j]) > tol {
					return false
				}
				j++
			default:
				if math.Abs(av[i]-bv[j]) > tol {
					return false
				}
				i++
				j++
			}
		}
	}
	return true
}

// interpretClusters extracts clusters from a converged MCL matrix. In
// the transpose convention m = Mᵀ, row j of m holds vertex j's column
// of the standard column-stochastic M, so vertex j's attractor is the
// column index of row j's largest entry; vertices sharing an attractor
// form a cluster.
func interpretClusters(m *csr.Matrix) ([]int, int) {
	n := m.Rows
	attractor := make([]int32, n)
	for j := 0; j < n; j++ {
		attractor[j] = int32(j)
		best := 0.0
		cols, vals := m.Row(j)
		for i, c := range cols {
			if vals[i] > best {
				best = vals[i]
				attractor[j] = c
			}
		}
	}
	// Union attractors transitively (attractors attract themselves).
	labels := make([]int, n)
	ids := map[int32]int{}
	for j := 0; j < n; j++ {
		root := attractor[j]
		// Bounded walk guards against attractor cycles in
		// not-fully-converged matrices.
		for steps := 0; root != attractor[root] && steps < n; steps++ {
			root = attractor[root]
		}
		id, ok := ids[root]
		if !ok {
			id = len(ids)
			ids[root] = id
		}
		labels[j] = id
	}
	return labels, len(ids)
}

// ClusterSizes returns the cluster cardinalities, largest first.
func ClusterSizes(r *MCLResult) []int {
	sizes := make([]int, r.NumClusters)
	for _, l := range r.Labels {
		sizes[l]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}
