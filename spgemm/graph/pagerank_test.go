package graph

import (
	"math"
	"testing"

	"repro/internal/csr"
)

func TestPageRankUniformOnCycle(t *testing.T) {
	// A directed cycle: perfectly symmetric, so every rank is 1/n.
	n := 10
	var es []csr.Entry
	for i := 0; i < n; i++ {
		es = append(es, csr.Entry{Row: int32(i), Col: int32((i + 1) % n), Val: 1})
	}
	adj, _ := csr.FromEntries(n, n, es)
	rank, iters, res, err := PageRank(adj, 0.85, 1e-12, 500)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rank {
		if math.Abs(r-0.1) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want 0.1 (iters %d res %.2e)", i, r, iters, res)
		}
	}
}

func TestPageRankSumsToOneAndOrdersHub(t *testing.T) {
	// A star: everyone links to vertex 0; 0 links to 1.
	n := 8
	var es []csr.Entry
	for i := 1; i < n; i++ {
		es = append(es, csr.Entry{Row: int32(i), Col: 0, Val: 1})
	}
	es = append(es, csr.Entry{Row: 0, Col: 1, Val: 1})
	adj, _ := csr.FromEntries(n, n, es)
	rank, _, _, err := PageRank(adj, 0.85, 1e-12, 500)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ranks sum to %v", sum)
	}
	for i := 2; i < n; i++ {
		if rank[0] <= rank[i] {
			t.Fatalf("hub rank %v not above leaf %v", rank[0], rank[i])
		}
	}
	// Vertex 1 receives all of the hub's mass: second highest.
	if rank[1] <= rank[2] {
		t.Fatalf("rank[1]=%v not above leaf %v", rank[1], rank[2])
	}
}

func TestPageRankDanglingNodes(t *testing.T) {
	// 0 -> 1, 1 dangling: mass must not leak (sum stays 1).
	adj, _ := csr.FromEntries(3, 3, []csr.Entry{{Row: 0, Col: 1, Val: 1}})
	rank, _, _, err := PageRank(adj, 0.85, 1e-12, 500)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ranks sum to %v with dangling nodes", sum)
	}
	if rank[1] <= rank[0] {
		t.Fatal("linked-to vertex not ranked above its source")
	}
}

func TestPageRankErrors(t *testing.T) {
	if _, _, _, err := PageRank(csr.New(3, 4), 0.85, 1e-9, 10); err == nil {
		t.Fatal("expected non-square error")
	}
	if rank, _, _, err := PageRank(csr.New(0, 0), 0.85, 1e-9, 10); err != nil || rank != nil {
		t.Fatal("empty graph should be a trivial success")
	}
}

func TestBFSPathAndUnreachable(t *testing.T) {
	// 0 -> 1 -> 2, 3 isolated.
	adj, _ := csr.FromEntries(4, 4, []csr.Entry{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 2, Val: 1},
	})
	dist, err := BFS(adj, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, -1}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
}

func TestBFSAgainstAPSPHops(t *testing.T) {
	// BFS levels on the planted-partition graph must match unweighted
	// shortest hop counts computed by brute-force relaxation.
	adj, _ := plantedPartition(t, 2, 10, 9)
	dist, err := BFS(adj, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Bellman-Ford reference over unit weights.
	n := adj.Rows
	ref := make([]int, n)
	for i := range ref {
		ref[i] = 1 << 30
	}
	ref[0] = 0
	for round := 0; round < n; round++ {
		for u := 0; u < n; u++ {
			if ref[u] == 1<<30 {
				continue
			}
			cols, _ := adj.Row(u)
			for _, v := range cols {
				if ref[u]+1 < ref[v] {
					ref[v] = ref[u] + 1
				}
			}
		}
	}
	for i := range ref {
		want := ref[i]
		if want == 1<<30 {
			want = -1
		}
		if dist[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
}

func TestBFSErrors(t *testing.T) {
	if _, err := BFS(csr.New(3, 4), 0); err == nil {
		t.Fatal("expected non-square error")
	}
	if _, err := BFS(csr.New(3, 3), 7); err == nil {
		t.Fatal("expected out-of-range source error")
	}
}
