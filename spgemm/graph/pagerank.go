package graph

import (
	"fmt"
	"math"

	"repro/internal/csr"
)

// PageRank computes the PageRank vector of a directed graph by power
// iteration with damping factor d: r ← (1-d)/n + d·Aᵀ_norm·r, where
// A_norm is the out-degree-normalized adjacency. Dangling nodes
// redistribute their mass uniformly. It returns the ranks, the
// iteration count, and the final residual.
func PageRank(adj *csr.Matrix, damping, tol float64, maxIters int) ([]float64, int, float64, error) {
	if adj.Rows != adj.Cols {
		return nil, 0, 0, fmt.Errorf("graph: adjacency must be square, got %dx%d", adj.Rows, adj.Cols)
	}
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIters <= 0 {
		maxIters = 200
	}
	n := adj.Rows
	if n == 0 {
		return nil, 0, 0, nil
	}

	// Column-normalized transpose: T[j][i] = A[i][j]/outdeg(i), so
	// r_new = T·r is one CSR SpMV.
	outdeg := make([]float64, n)
	for i := 0; i < n; i++ {
		_, vals := adj.Row(i)
		for _, v := range vals {
			outdeg[i] += v
		}
	}
	t := adj.Transpose()
	for r := 0; r < t.Rows; r++ {
		cols, _ := t.Row(r)
		lo := t.RowOffsets[r]
		for k := range cols {
			t.Data[lo+int64(k)] /= outdeg[cols[k]]
		}
	}

	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	next := make([]float64, n)
	var residual float64
	for iter := 1; iter <= maxIters; iter++ {
		// Dangling mass: nodes without out-edges spread uniformly.
		var dangling float64
		for i := 0; i < n; i++ {
			if outdeg[i] == 0 {
				dangling += rank[i]
			}
		}
		if err := t.MulVec(rank, next); err != nil {
			return nil, iter, 0, err
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		residual = 0
		for i := 0; i < n; i++ {
			v := base + damping*next[i]
			residual += math.Abs(v - rank[i])
			next[i] = v
		}
		rank, next = next, rank
		if residual < tol {
			return rank, iter, residual, nil
		}
	}
	return rank, maxIters, residual, nil
}

// BFS returns the hop distance from src to every vertex (-1 when
// unreachable), computed level by level with sparse frontier
// propagation over the adjacency structure — the linear-algebra view
// of breadth-first search (a boolean SpMSpV per level).
func BFS(adj *csr.Matrix, src int) ([]int, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("graph: adjacency must be square, got %dx%d", adj.Rows, adj.Cols)
	}
	if src < 0 || src >= adj.Rows {
		return nil, fmt.Errorf("graph: source %d outside %d vertices", src, adj.Rows)
	}
	dist := make([]int, adj.Rows)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []int32{int32(src)}
	for level := 1; len(frontier) > 0; level++ {
		var next []int32
		for _, u := range frontier {
			cols, _ := adj.Row(int(u))
			for _, v := range cols {
				if dist[v] == -1 {
					dist[v] = level
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist, nil
}
