package graph_test

import (
	"fmt"

	"repro/spgemm"
	"repro/spgemm/graph"
)

// ExampleTriangles counts the triangles of K4 via masked SpGEMM.
func ExampleTriangles() {
	var es []spgemm.Entry
	for u := int32(0); u < 4; u++ {
		for v := int32(0); v < 4; v++ {
			if u != v {
				es = append(es, spgemm.Entry{Row: u, Col: v, Val: 1})
			}
		}
	}
	k4, _ := spgemm.FromEntries(4, 4, es)
	tri, _ := graph.Triangles(k4, nil)
	fmt.Println(tri)
	// Output: 4
}

// ExampleMCL clusters two disjoint triangles.
func ExampleMCL() {
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}}
	var es []spgemm.Entry
	for _, e := range edges {
		es = append(es, spgemm.Entry{Row: e[0], Col: e[1], Val: 1},
			spgemm.Entry{Row: e[1], Col: e[0], Val: 1})
	}
	adj, _ := spgemm.FromEntries(6, 6, es)
	res, _ := graph.MCL(adj, graph.MCLOptions{})
	fmt.Println("clusters:", res.NumClusters)
	fmt.Println("sizes:", graph.ClusterSizes(res))
	// Output:
	// clusters: 2
	// sizes: [3 3]
}
