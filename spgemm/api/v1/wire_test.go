package apiv1

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestWireFieldStability pins the v1 wire contract: the JSON names of
// every request/response type. A failure here means a wire-breaking
// change — additions are fine (add them to the want set), renames and
// removals need a new version package.
func TestWireFieldStability(t *testing.T) {
	cases := []struct {
		name string
		typ  any
		want []string
	}{
		{"MatrixSpec", MatrixSpec{}, []string{
			"kind", "scale", "edge_factor", "rows", "cols", "density", "n", "half", "block", "seed",
		}},
		{"MultiplyRequest", MultiplyRequest{}, []string{
			"engine", "a", "b", "a_handle", "b_handle", "store_c", "deadline_sec", "threads", "num_gpus",
		}},
		{"MultiplyResponse", MultiplyResponse{}, []string{
			"requested", "engine", "degraded", "rows", "cols", "nnz_c", "flops", "seconds", "gflops", "c_handle",
		}},
		{"MatrixRequest", MatrixRequest{}, []string{"spec", "handle", "values_seed", "data"}},
		{"MatrixData", MatrixData{}, []string{"rows", "cols", "row_offsets", "col_ids", "values"}},
		{"MatrixBatchRequest", MatrixBatchRequest{}, []string{"matrices"}},
		{"MatrixBatchResponse", MatrixBatchResponse{}, []string{"matrices"}},
		{"JoinRequest", JoinRequest{}, []string{"name", "url"}},
		{"JoinResponse", JoinResponse{}, []string{"name", "rejoined", "replicas", "heartbeat_sec"}},
		{"DrainRequest", DrainRequest{}, []string{"timeout_sec"}},
		{"DrainResponse", DrainResponse{}, []string{"counters"}},
		{"MatrixResponse", MatrixResponse{}, []string{
			"handle", "rows", "cols", "nnz", "bytes", "structure_fingerprint",
		}},
		{"ErrorResponse", ErrorResponse{}, []string{"code", "error", "retry_after_sec"}},
		{"Operand", Operand{}, []string{"handle", "node", "spec"}},
		{"BatchNode", BatchNode{}, []string{"id", "engine", "a", "b", "store"}},
		{"BatchRequest", BatchRequest{}, []string{"engine", "deadline_sec", "threads", "num_gpus", "nodes"}},
		{"NodeResult", NodeResult{}, []string{
			"id", "status", "engine", "degraded", "rows", "cols", "nnz_c", "flops",
			"seconds", "plan_cache_hit", "handle", "error",
		}},
		{"BatchResponse", BatchResponse{}, []string{
			"nodes", "completed", "failed", "skipped", "seconds", "estimated_flops",
			"plan_cache_hits", "plan_cache_misses", "plan_cache_hit_rate",
		}},
		{"ReadyResponse", ReadyResponse{}, []string{
			"status", "draining", "inflight_jobs", "inflight_flops", "breakers", "replicas",
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt := reflect.TypeOf(tc.typ)
			got := make([]string, 0, rt.NumField())
			for i := 0; i < rt.NumField(); i++ {
				tag := rt.Field(i).Tag.Get("json")
				name := strings.Split(tag, ",")[0]
				if name == "" || name == "-" {
					t.Fatalf("field %s has no json name", rt.Field(i).Name)
				}
				got = append(got, name)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("wire fields changed:\n got %v\nwant %v", got, tc.want)
			}
		})
	}
}

// TestErrorCodeStability pins the taxonomy constants — clients dispatch
// on these strings.
func TestErrorCodeStability(t *testing.T) {
	want := map[string]string{
		CodeBadRequest:       "bad_request",
		CodeMethodNotAllowed: "method_not_allowed",
		CodeUnknownHandle:    "unknown_handle",
		CodeOverloaded:       "overloaded",
		CodeQueueFull:        "queue_full",
		CodeDraining:         "draining",
		CodeJobPanic:         "job_panic",
		CodeDeadline:         "deadline",
		CodeOOM:              "oom",
		CodeDeviceLost:       "device_lost",
		CodeInvalidDAG:       "invalid_dag",
		CodeShapeMismatch:    "shape_mismatch",
		CodeUpstreamFailed:   "upstream_failed",
		CodeReplicaDown:      "replica_down",
	}
	for got, expect := range want {
		if got != expect {
			t.Errorf("code %q changed (want %q)", got, expect)
		}
	}
	if StatusOK != "ok" || StatusFailed != "failed" || StatusSkipped != "skipped" {
		t.Error("node status strings changed")
	}
	if ReadyStatusReady != "ready" || ReadyStatusDegraded != "degraded" || ReadyStatusDraining != "draining" {
		t.Error("readiness status strings changed")
	}
}

// TestOmitEmptyKeepsRequestsSmall asserts the minimal chain node
// marshals without optional noise — the compactness of batch requests
// is part of the API's appeal for iterative clients.
func TestOmitEmptyKeepsRequestsSmall(t *testing.T) {
	data, err := json.Marshal(BatchNode{ID: "s1", A: Operand{Handle: "h"}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(data), `{"id":"s1","a":{"handle":"h"}}`; got != want {
		t.Fatalf("minimal node = %s, want %s", got, want)
	}
}

// TestMatrixDataRoundTrip: a raw upload survives the JSON wire
// byte-identically — the content-addressed handles of the cluster's
// spill re-uploads depend on float64 values round-tripping exactly.
func TestMatrixDataRoundTrip(t *testing.T) {
	m, err := MatrixSpec{Kind: "er", Rows: 48, Cols: 48, Density: 0.1, Seed: 9}.Build()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(MatrixDataFrom(m))
	if err != nil {
		t.Fatal(err)
	}
	var d MatrixData
	if err := json.Unmarshal(buf, &d); err != nil {
		t.Fatal(err)
	}
	got, err := d.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != m.Rows || got.Cols != m.Cols || got.Nnz() != m.Nnz() {
		t.Fatalf("shape changed: %dx%d nnz %d", got.Rows, got.Cols, got.Nnz())
	}
	for i := range m.Data {
		if m.Data[i] != got.Data[i] || m.ColIDs[i] != got.ColIDs[i] {
			t.Fatalf("entry %d changed across the wire", i)
		}
	}
	// A corrupt payload is rejected, not stored.
	d.RowOffsets[len(d.RowOffsets)-1]++
	if _, err := d.Matrix(); err == nil {
		t.Fatal("corrupt matrix data was accepted")
	}
}

// TestMatrixSpecBuild covers the generator dispatch: every kind
// produces a matrix of the documented shape, unknown kinds and
// oversized dimensions error.
func TestMatrixSpecBuild(t *testing.T) {
	m, err := MatrixSpec{Kind: "er", Rows: 32, Cols: 16, Density: 0.1, Seed: 1}.Build()
	if err != nil || m.Rows != 32 || m.Cols != 16 {
		t.Fatalf("er = %v %v", m, err)
	}
	m, err = MatrixSpec{Kind: "band", N: 64, Half: 2}.Build()
	if err != nil || m.Rows != 64 {
		t.Fatalf("band = %v %v", m, err)
	}
	m, err = MatrixSpec{Kind: "blocks", N: 64, Block: 8, Seed: 3}.Build()
	if err != nil || m.Rows != 64 {
		t.Fatalf("blocks = %v %v", m, err)
	}
	// Dense diagonal blocks: nnz = (n/block) * block² exactly.
	if m.Nnz() != 64*8 {
		t.Fatalf("blocks nnz = %d, want %d", m.Nnz(), 64*8)
	}
	m, err = MatrixSpec{Kind: "rmat", Scale: 6, EdgeFactor: 4, Seed: 2}.Build()
	if err != nil || m.Rows != 1<<6 {
		t.Fatalf("rmat = %v %v", m, err)
	}
	if _, err = (MatrixSpec{Kind: "warp"}).Build(); err == nil {
		t.Fatal("unknown kind did not error")
	}
	if _, err = (MatrixSpec{Kind: "er", Rows: maxGenDim + 1}).Build(); err == nil {
		t.Fatal("oversized er did not error")
	}
	if _, err = (MatrixSpec{Kind: "rmat", Scale: 23}).Build(); err == nil {
		t.Fatal("oversized rmat did not error")
	}
}
