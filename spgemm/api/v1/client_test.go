package apiv1

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientDecodesEnvelope stubs a server speaking the uniform
// envelope and checks the client turns every non-2xx into a typed
// *APIError carrying status, code, message and the retry hint.
func TestClientDecodesEnvelope(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/multiply":
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(ErrorResponse{
				Code: CodeOverloaded, Error: "serve: overloaded", RetryAfterSec: 2,
			})
		case "/v1/matrices/ghost":
			w.WriteHeader(http.StatusNotFound)
			_ = json.NewEncoder(w).Encode(ErrorResponse{Code: CodeUnknownHandle, Error: "no such handle"})
		default:
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("{}"))
		}
	}))
	defer ts.Close()
	cli := NewClient(ts.URL)

	_, err := cli.Multiply(MultiplyRequest{Engine: "cpu"})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if ae.Status != http.StatusTooManyRequests || ae.Code != CodeOverloaded || ae.RetryAfterSec != 2 {
		t.Fatalf("APIError = %+v", ae)
	}
	if ae.Error() == "" || ae.Message != "serve: overloaded" {
		t.Fatalf("message lost: %+v", ae)
	}

	err = cli.DeleteMatrix("ghost")
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound || ae.Code != CodeUnknownHandle {
		t.Fatalf("delete err = %v", err)
	}
}

// flakyServer sheds the first n requests per path with the given
// status (and a Retry-After hint when hinted), then serves.
func flakyServer(shed int, status int, hintSec float64) (*httptest.Server, *int32) {
	var calls int32
	mu := sync.Mutex{}
	perPath := map[string]int{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		mu.Lock()
		perPath[r.URL.Path]++
		n := perPath[r.URL.Path]
		mu.Unlock()
		if n <= shed {
			if hintSec > 0 {
				w.Header().Set("Retry-After", "1")
			}
			w.WriteHeader(status)
			_ = json.NewEncoder(w).Encode(ErrorResponse{
				Code: CodeOverloaded, Error: "shed", RetryAfterSec: hintSec,
			})
			return
		}
		switch r.URL.Path {
		case "/v1/multiply":
			_ = json.NewEncoder(w).Encode(MultiplyResponse{Engine: "cpu", NnzC: 7})
		default:
			_, _ = w.Write([]byte("{}"))
		}
	}))
	return ts, &calls
}

// TestClientRetriesShedMultiply: a multiply shed twice with 429 then
// served succeeds under the retry policy, the recorded sleeps follow
// the Retry-After hint, and the jitter is deterministic per seed.
func TestClientRetriesShedMultiply(t *testing.T) {
	ts, calls := flakyServer(2, http.StatusTooManyRequests, 0.5)
	defer ts.Close()
	var slept []time.Duration
	cli := NewClient(ts.URL)
	cli.Retry = &RetryPolicy{
		MaxAttempts: 4, Seed: 7,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	resp, err := cli.Multiply(MultiplyRequest{Engine: "cpu"})
	if err != nil {
		t.Fatalf("multiply with retry: %v", err)
	}
	if resp.NnzC != 7 {
		t.Fatalf("response = %+v", resp)
	}
	if *calls != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 shed + 1 ok)", *calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	// The 0.5s hint overrides the 50ms exponential base; jitter keeps
	// the delay in [0.4s, 0.5s] (jitter fraction 0.2).
	for i, d := range slept {
		if d < 400*time.Millisecond || d > 500*time.Millisecond {
			t.Fatalf("sleep %d = %v outside the hinted [400ms, 500ms]", i, d)
		}
	}

	// Determinism: the same seed replays the same jittered delays.
	ts2, _ := flakyServer(2, http.StatusTooManyRequests, 0.5)
	defer ts2.Close()
	var slept2 []time.Duration
	cli2 := NewClient(ts2.URL)
	cli2.Retry = &RetryPolicy{
		MaxAttempts: 4, Seed: 7,
		Sleep: func(d time.Duration) { slept2 = append(slept2, d) },
	}
	if _, err := cli2.Multiply(MultiplyRequest{Engine: "cpu"}); err != nil {
		t.Fatal(err)
	}
	for i := range slept {
		if slept[i] != slept2[i] {
			t.Fatalf("seeded jitter not deterministic: %v vs %v", slept, slept2)
		}
	}
}

// TestClientRetryExhaustionAndBackoffCap: a server that never stops
// shedding exhausts MaxAttempts and surfaces the last *APIError; the
// un-hinted exponential schedule stays under MaxDelay.
func TestClientRetryExhaustionAndBackoffCap(t *testing.T) {
	ts, calls := flakyServer(1000, http.StatusServiceUnavailable, 0)
	defer ts.Close()
	var slept []time.Duration
	cli := NewClient(ts.URL)
	cli.Retry = &RetryPolicy{
		MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 25 * time.Millisecond,
		Jitter: -1, Seed: 1,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	_, err := cli.Batch(BatchRequest{Nodes: []BatchNode{{ID: "s1", A: Operand{Handle: "h"}}}})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 *APIError after exhaustion", err)
	}
	if *calls != 5 {
		t.Fatalf("server saw %d calls, want 5", *calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond, 25 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("backoff schedule %v, want %v (no-jitter)", slept, want)
		}
	}
}

// TestClientNeverRetriesStoreMutations: shed responses on the store
// endpoints surface immediately even with a retry policy configured —
// a mutation whose response was lost may have taken effect.
func TestClientNeverRetriesStoreMutations(t *testing.T) {
	ts, calls := flakyServer(1000, http.StatusTooManyRequests, 0)
	defer ts.Close()
	cli := NewClient(ts.URL)
	cli.Retry = &RetryPolicy{MaxAttempts: 4, Sleep: func(time.Duration) {
		t.Fatal("retry slept on a store mutation")
	}}
	if _, err := cli.StoreMatrix(MatrixRequest{Spec: &MatrixSpec{Kind: "er"}}); err == nil {
		t.Fatal("store succeeded against an always-shedding server")
	}
	if err := cli.DeleteMatrix("m-xyz"); err == nil {
		t.Fatal("delete succeeded against an always-shedding server")
	}
	if *calls != 2 {
		t.Fatalf("server saw %d calls, want 2 (one per mutation, no retries)", *calls)
	}
}

// TestClientNoRetryOnNonShedStatuses: a 500 (the job ran and failed)
// must never be retried, even under a policy.
func TestClientNoRetryOnNonShedStatuses(t *testing.T) {
	ts, calls := flakyServer(1000, http.StatusInternalServerError, 0)
	defer ts.Close()
	cli := NewClient(ts.URL)
	cli.Retry = &RetryPolicy{MaxAttempts: 4, Sleep: func(time.Duration) {
		t.Fatal("retry slept on a non-shed status")
	}}
	if _, err := cli.Multiply(MultiplyRequest{Engine: "cpu"}); err == nil {
		t.Fatal("multiply succeeded against an erroring server")
	}
	if *calls != 1 {
		t.Fatalf("server saw %d calls, want 1", *calls)
	}
}

// TestClientRoundTrips checks the happy-path encode/decode of the
// endpoint methods against a recording stub.
func TestClientRoundTrips(t *testing.T) {
	var gotPath, gotMethod string
	var gotBody BatchRequest
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath, gotMethod = r.URL.Path, r.Method
		switch r.URL.Path {
		case "/v1/batch":
			_ = json.NewDecoder(r.Body).Decode(&gotBody)
			_ = json.NewEncoder(w).Encode(BatchResponse{
				Completed: 1,
				Nodes:     []NodeResult{{ID: "s1", Status: StatusOK, NnzC: 9}},
			})
		case "/metricsz":
			_ = json.NewEncoder(w).Encode(map[string]float64{"serve_jobs_accepted": 3})
		default:
			_, _ = w.Write([]byte("{}"))
		}
	}))
	defer ts.Close()
	cli := NewClient(ts.URL)

	resp, err := cli.Batch(BatchRequest{Engine: "cpu", Nodes: []BatchNode{{ID: "s1", A: Operand{Handle: "h"}}}})
	if err != nil {
		t.Fatal(err)
	}
	if gotPath != "/v1/batch" || gotMethod != http.MethodPost {
		t.Fatalf("request went to %s %s", gotMethod, gotPath)
	}
	if len(gotBody.Nodes) != 1 || gotBody.Nodes[0].ID != "s1" {
		t.Fatalf("server saw %+v", gotBody)
	}
	if resp.Completed != 1 || resp.Nodes[0].NnzC != 9 {
		t.Fatalf("batch response = %+v", resp)
	}

	metricsSnap, err := cli.Metrics()
	if err != nil || metricsSnap["serve_jobs_accepted"] != 3 {
		t.Fatalf("metrics = %v %v", metricsSnap, err)
	}
	if err := cli.WaitHealthy(time.Second); err != nil {
		t.Fatal(err)
	}
}
