package apiv1

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestClientDecodesEnvelope stubs a server speaking the uniform
// envelope and checks the client turns every non-2xx into a typed
// *APIError carrying status, code, message and the retry hint.
func TestClientDecodesEnvelope(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/multiply":
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(ErrorResponse{
				Code: CodeOverloaded, Error: "serve: overloaded", RetryAfterSec: 2,
			})
		case "/v1/matrices/ghost":
			w.WriteHeader(http.StatusNotFound)
			_ = json.NewEncoder(w).Encode(ErrorResponse{Code: CodeUnknownHandle, Error: "no such handle"})
		default:
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("{}"))
		}
	}))
	defer ts.Close()
	cli := NewClient(ts.URL)

	_, err := cli.Multiply(MultiplyRequest{Engine: "cpu"})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if ae.Status != http.StatusTooManyRequests || ae.Code != CodeOverloaded || ae.RetryAfterSec != 2 {
		t.Fatalf("APIError = %+v", ae)
	}
	if ae.Error() == "" || ae.Message != "serve: overloaded" {
		t.Fatalf("message lost: %+v", ae)
	}

	err = cli.DeleteMatrix("ghost")
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound || ae.Code != CodeUnknownHandle {
		t.Fatalf("delete err = %v", err)
	}
}

// TestClientRoundTrips checks the happy-path encode/decode of the
// endpoint methods against a recording stub.
func TestClientRoundTrips(t *testing.T) {
	var gotPath, gotMethod string
	var gotBody BatchRequest
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath, gotMethod = r.URL.Path, r.Method
		switch r.URL.Path {
		case "/v1/batch":
			_ = json.NewDecoder(r.Body).Decode(&gotBody)
			_ = json.NewEncoder(w).Encode(BatchResponse{
				Completed: 1,
				Nodes:     []NodeResult{{ID: "s1", Status: StatusOK, NnzC: 9}},
			})
		case "/metricsz":
			_ = json.NewEncoder(w).Encode(map[string]float64{"serve_jobs_accepted": 3})
		default:
			_, _ = w.Write([]byte("{}"))
		}
	}))
	defer ts.Close()
	cli := NewClient(ts.URL)

	resp, err := cli.Batch(BatchRequest{Engine: "cpu", Nodes: []BatchNode{{ID: "s1", A: Operand{Handle: "h"}}}})
	if err != nil {
		t.Fatal(err)
	}
	if gotPath != "/v1/batch" || gotMethod != http.MethodPost {
		t.Fatalf("request went to %s %s", gotMethod, gotPath)
	}
	if len(gotBody.Nodes) != 1 || gotBody.Nodes[0].ID != "s1" {
		t.Fatalf("server saw %+v", gotBody)
	}
	if resp.Completed != 1 || resp.Nodes[0].NnzC != 9 {
		t.Fatalf("batch response = %+v", resp)
	}

	metricsSnap, err := cli.Metrics()
	if err != nil || metricsSnap["serve_jobs_accepted"] != 3 {
		t.Fatalf("metrics = %v %v", metricsSnap, err)
	}
	if err := cli.WaitHealthy(time.Second); err != nil {
		t.Fatal(err)
	}
}
