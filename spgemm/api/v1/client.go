package apiv1

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// APIError is a non-2xx response decoded from the uniform error
// envelope. Clients dispatch on Code (and Status); RetryAfterSec is
// populated on shed responses.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code, Message and RetryAfterSec mirror the envelope fields.
	Code          string
	Message       string
	RetryAfterSec float64
}

func (e *APIError) Error() string {
	return fmt.Sprintf("apiv1: server returned %d (%s): %s", e.Status, e.Code, e.Message)
}

// RetryPolicy is the client's opt-in shed-retry behaviour: capped
// exponential backoff with deterministic jitter, honoring the server's
// Retry-After hint on 429 and 503 responses.
//
// Only responses that guarantee the job was never admitted are
// retried — the serving layer's shed statuses (429 overloaded/queue
// full, 503 draining/replica down) — and only on endpoints where a
// duplicate attempt is harmless (Multiply, Batch and the read-only
// GETs). Store mutations (StoreMatrix, DeleteMatrix) are never
// retried by policy, regardless of status: the client cannot know
// whether the mutation took effect before the response was lost.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first
	// (0 means 4, 1 disables retrying).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: attempt k sleeps
	// BaseDelay*2^(k-1), capped at MaxDelay (0 means 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 means 2s). A server Retry-After
	// hint overrides the computed backoff but is still capped here.
	MaxDelay time.Duration
	// Jitter scatters each delay uniformly in [delay*(1-Jitter),
	// delay] so synchronized clients do not re-stampede the server
	// (0 means 0.2; negative disables jitter).
	Jitter float64
	// Seed makes the jitter deterministic for tests (0 seeds from the
	// global source).
	Seed int64
	// Sleep replaces time.Sleep in tests; nil means time.Sleep.
	Sleep func(time.Duration)

	rngOnce sync.Once
	rng     *rand.Rand
	rngMu   sync.Mutex
}

// Client is the thin Go client of the /v1 API: one method per
// endpoint, JSON in, JSON out, every non-2xx decoded into *APIError.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8097".
	BaseURL string
	// HTTP is the underlying client; nil means a client with a
	// 120-second timeout (multiplies are long-running requests).
	HTTP *http.Client
	// Retry enables shed-retry with backoff; nil means no retries
	// (every 429/503 surfaces immediately as *APIError).
	Retry *RetryPolicy
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{Timeout: 120 * time.Second}}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 120 * time.Second}
}

// retriable reports whether an attempt's outcome is a shed the policy
// may retry: HTTP 429 (overloaded, queue full) or 503 (draining,
// replica down) — statuses the server only sends before admission, so
// the job never ran.
func retriable(err error) bool {
	var ae *APIError
	if !errors.As(err, &ae) {
		return false
	}
	return ae.Status == http.StatusTooManyRequests || ae.Status == http.StatusServiceUnavailable
}

// delay computes the sleep before retry attempt (1-based), preferring
// the server's Retry-After hint over the exponential schedule, capping
// at MaxDelay, then applying jitter.
func (p *RetryPolicy) delay(attempt int, hintSec float64) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	d := base << (attempt - 1)
	if hintSec > 0 {
		d = time.Duration(hintSec * float64(time.Second))
	}
	if d > maxd {
		d = maxd
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = 0.2
	}
	if jitter > 0 {
		p.rngOnce.Do(func() {
			seed := p.Seed
			if seed == 0 {
				seed = time.Now().UnixNano()
			}
			p.rng = rand.New(rand.NewSource(seed))
		})
		p.rngMu.Lock()
		f := p.rng.Float64()
		p.rngMu.Unlock()
		d = d - time.Duration(f*jitter*float64(d))
	}
	if d < 0 {
		d = 0
	}
	return d
}

func (p *RetryPolicy) sleep(d time.Duration) {
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// do sends one request and decodes the response into out (skipped when
// out is nil). Non-2xx responses become *APIError. When a retry policy
// is configured and the call is idempotent-safe, shed responses are
// retried with backoff honoring the Retry-After hint. The context
// bounds every attempt AND the backoff sleeps between them: a
// cancelled context stops the retry loop immediately.
func (c *Client) do(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	attempts := 1
	if c.Retry != nil && idempotent {
		attempts = c.Retry.MaxAttempts
		if attempts <= 0 {
			attempts = 4
		}
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = c.doOnce(ctx, method, path, in, out)
		if err == nil || attempt >= attempts || !retriable(err) {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
		var ae *APIError
		errors.As(err, &ae)
		c.Retry.sleep(c.Retry.delay(attempt, ae.RetryAfterSec))
	}
}

// doOnce is one request/response exchange under the given context.
func (c *Client) doOnce(ctx context.Context, method, path string, in, out any) error {
	var body *bytes.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	} else {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var env ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&env)
		return &APIError{
			Status: resp.StatusCode, Code: env.Code,
			Message: env.Error, RetryAfterSec: env.RetryAfterSec,
		}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Multiply submits one job to POST /v1/multiply. Shed responses are
// retried under the client's retry policy: a 429/503 means the job was
// never admitted, so a duplicate attempt cannot double-run it.
func (c *Client) Multiply(req MultiplyRequest) (*MultiplyResponse, error) {
	return c.MultiplyCtx(context.Background(), req)
}

// MultiplyCtx is Multiply bounded by a caller context: the deadline
// covers the transport, independent of the job's own DeadlineSec
// (which budgets engine time after admission). The cluster tier uses
// this to give health-critical calls short transport timeouts without
// shrinking the job deadline.
func (c *Client) MultiplyCtx(ctx context.Context, req MultiplyRequest) (*MultiplyResponse, error) {
	var out MultiplyResponse
	if err := c.do(ctx, http.MethodPost, "/v1/multiply", req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Batch submits a DAG of multiplies to POST /v1/batch. A non-nil
// response means the batch was admitted; per-node failures live in the
// node statuses. Shed responses (the whole DAG rejected before
// admission) are retried under the client's retry policy.
func (c *Client) Batch(req BatchRequest) (*BatchResponse, error) {
	return c.BatchCtx(context.Background(), req)
}

// BatchCtx is Batch bounded by a caller context.
func (c *Client) BatchCtx(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	var out BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/batch", req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// StoreMatrix uploads a spec, raw data, or a re-value request via POST
// /v1/matrices and returns the stored matrix description. Never
// retried: a store mutation whose response was lost may still have
// taken effect.
func (c *Client) StoreMatrix(req MatrixRequest) (*MatrixResponse, error) {
	return c.StoreMatrixCtx(context.Background(), req)
}

// StoreMatrixCtx is StoreMatrix bounded by a caller context.
func (c *Client) StoreMatrixCtx(ctx context.Context, req MatrixRequest) (*MatrixResponse, error) {
	var out MatrixResponse
	if err := c.do(ctx, http.MethodPost, "/v1/matrices", req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// StoreMatrixBulk uploads several matrices in one POST
// /v1/matrices/bulk round trip — the pipelined transfer the cluster
// coordinator uses to re-home spill copies during failover. Never
// retried (store mutation).
func (c *Client) StoreMatrixBulk(ctx context.Context, req MatrixBatchRequest) (*MatrixBatchResponse, error) {
	var out MatrixBatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/matrices/bulk", req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// FetchMatrix downloads a stored matrix's raw CSR payload via GET
// /v1/matrices/{handle}.
func (c *Client) FetchMatrix(ctx context.Context, handle string) (*MatrixData, error) {
	var out MatrixData
	if err := c.do(ctx, http.MethodGet, "/v1/matrices/"+handle, nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// DeleteMatrix drops a stored handle via DELETE /v1/matrices/{handle}.
// Never retried (store mutation).
func (c *Client) DeleteMatrix(handle string) error {
	return c.DeleteMatrixCtx(context.Background(), handle)
}

// DeleteMatrixCtx is DeleteMatrix bounded by a caller context.
func (c *Client) DeleteMatrixCtx(ctx context.Context, handle string) error {
	return c.do(ctx, http.MethodDelete, "/v1/matrices/"+handle, nil, nil, false)
}

// Join registers (or heartbeats) a replica with a cluster coordinator
// via POST /v1/join. The client must point at the coordinator.
func (c *Client) Join(ctx context.Context, req JoinRequest) (*JoinResponse, error) {
	var out JoinResponse
	if err := c.do(ctx, http.MethodPost, "/v1/join", req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Drain asks the server to drain gracefully via POST /v1/admin/drain
// and returns its final counter snapshot. The call blocks until the
// drain completes, so the context should allow for the drain deadline.
func (c *Client) Drain(ctx context.Context, req DrainRequest) (*DrainResponse, error) {
	var out DrainResponse
	if err := c.do(ctx, http.MethodPost, "/v1/admin/drain", req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the flat /metricsz snapshot. Integer counters and
// float hit rates share the map; truncate where ints are asserted.
func (c *Client) Metrics() (map[string]float64, error) {
	return c.MetricsCtx(context.Background())
}

// MetricsCtx is Metrics bounded by a caller context. Non-numeric
// values (the cluster endpoint annotates the body with its replica
// health map) are skipped: the method's contract is the counters.
func (c *Client) MetricsCtx(ctx context.Context) (map[string]float64, error) {
	raw := map[string]any{}
	if err := c.do(ctx, http.MethodGet, "/metricsz", nil, &raw, true); err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(raw))
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	return out, nil
}

// Ready fetches the GET /readyz body. A draining server answers 503
// with the same body, so the response is returned alongside the
// *APIError in that case — callers who only care about the status
// string can ignore err when out.Status is set.
func (c *Client) Ready() (*ReadyResponse, error) {
	return c.ReadyCtx(context.Background())
}

// ReadyCtx is Ready bounded by a caller context — the cluster prober
// gives it a timeout much shorter than a multiply's, so a hung replica
// is detected in probe time, not job time.
func (c *Client) ReadyCtx(ctx context.Context) (*ReadyResponse, error) {
	var out ReadyResponse
	// Bypass retry: readiness polls want the immediate answer.
	err := c.doOnce(ctx, http.MethodGet, "/readyz", nil, &out)
	if err != nil {
		var ae *APIError
		if errors.As(err, &ae) && ae.Status == http.StatusServiceUnavailable {
			// The 503 body is the ReadyResponse itself, which doOnce
			// discarded while decoding the envelope; re-fetch the fields
			// we can: a draining server is status "draining" by contract.
			return &ReadyResponse{Status: ReadyStatusDraining, Draining: true}, nil
		}
		return nil, err
	}
	return &out, nil
}

// WaitHealthy polls GET /healthz until the server answers 200 or the
// timeout passes.
func (c *Client) WaitHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err := c.do(ctx, http.MethodGet, "/healthz", nil, nil, false)
		cancel()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("apiv1: server at %s not healthy after %v: %w", c.BaseURL, timeout, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}
