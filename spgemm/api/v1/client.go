package apiv1

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// APIError is a non-2xx response decoded from the uniform error
// envelope. Clients dispatch on Code (and Status); RetryAfterSec is
// populated on shed responses.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code, Message and RetryAfterSec mirror the envelope fields.
	Code          string
	Message       string
	RetryAfterSec float64
}

func (e *APIError) Error() string {
	return fmt.Sprintf("apiv1: server returned %d (%s): %s", e.Status, e.Code, e.Message)
}

// Client is the thin Go client of the /v1 API: one method per
// endpoint, JSON in, JSON out, every non-2xx decoded into *APIError.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8097".
	BaseURL string
	// HTTP is the underlying client; nil means a client with a
	// 120-second timeout (multiplies are long-running requests).
	HTTP *http.Client
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{Timeout: 120 * time.Second}}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 120 * time.Second}
}

// do sends one request and decodes the response into out (skipped when
// out is nil). Non-2xx responses become *APIError.
func (c *Client) do(method, path string, in, out any) error {
	var body *bytes.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	} else {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var env ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&env)
		return &APIError{
			Status: resp.StatusCode, Code: env.Code,
			Message: env.Error, RetryAfterSec: env.RetryAfterSec,
		}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Multiply submits one job to POST /v1/multiply.
func (c *Client) Multiply(req MultiplyRequest) (*MultiplyResponse, error) {
	var out MultiplyResponse
	if err := c.do(http.MethodPost, "/v1/multiply", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Batch submits a DAG of multiplies to POST /v1/batch. A non-nil
// response means the batch was admitted; per-node failures live in the
// node statuses.
func (c *Client) Batch(req BatchRequest) (*BatchResponse, error) {
	var out BatchResponse
	if err := c.do(http.MethodPost, "/v1/batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// StoreMatrix uploads a spec (or re-values a handle) via POST
// /v1/matrices and returns the stored matrix description.
func (c *Client) StoreMatrix(req MatrixRequest) (*MatrixResponse, error) {
	var out MatrixResponse
	if err := c.do(http.MethodPost, "/v1/matrices", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DeleteMatrix drops a stored handle via DELETE /v1/matrices/{handle}.
func (c *Client) DeleteMatrix(handle string) error {
	return c.do(http.MethodDelete, "/v1/matrices/"+handle, nil, nil)
}

// Metrics fetches the flat /metricsz snapshot. Integer counters and
// float hit rates share the map; truncate where ints are asserted.
func (c *Client) Metrics() (map[string]float64, error) {
	out := map[string]float64{}
	if err := c.do(http.MethodGet, "/metricsz", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// WaitHealthy polls GET /healthz until the server answers 200 or the
// timeout passes.
func (c *Client) WaitHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		err := c.do(http.MethodGet, "/healthz", nil, nil)
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("apiv1: server at %s not healthy after %v: %w", c.BaseURL, timeout, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}
