package apiv1

// MaxBatchNodes bounds the DAG size of one /v1/batch request. The cap
// keeps a single request from monopolizing the scheduler; iterative
// clients submit successive batches instead.
const MaxBatchNodes = 64

// Operand names one input of a batch node — exactly one of the three
// fields must be set:
//
//   - Handle references a stored matrix (POST /v1/matrices).
//   - Node references the output of another node in the same batch,
//     consumed directly from the in-flight namespace without a round
//     trip through the matrix store.
//   - Spec builds a generated operand in place.
type Operand struct {
	Handle string      `json:"handle,omitempty"`
	Node   string      `json:"node,omitempty"`
	Spec   *MatrixSpec `json:"spec,omitempty"`
}

// BatchNode is one multiply of the DAG: C(id) = A·B. B defaults to the
// same operand as A (the A·A convention shared with /v1/multiply).
// Engine defaults to the batch-level engine. Store additionally
// persists the node's output into the matrix store, returning its
// handle in the node result — outputs without Store live only for the
// duration of the batch.
type BatchNode struct {
	ID     string   `json:"id"`
	Engine string   `json:"engine,omitempty"`
	A      Operand  `json:"a"`
	B      *Operand `json:"b,omitempty"`
	Store  bool     `json:"store,omitempty"`
}

// BatchRequest is the POST /v1/batch body: a DAG of multiplies over
// stored handles, generated specs and each other's outputs, admitted
// as one unit under a single cost estimate. Engine, DeadlineSec,
// Threads and NumGPUs are batch-level defaults every node inherits.
type BatchRequest struct {
	Engine      string      `json:"engine,omitempty"`
	DeadlineSec float64     `json:"deadline_sec,omitempty"`
	Threads     int         `json:"threads,omitempty"`
	NumGPUs     int         `json:"num_gpus,omitempty"`
	Nodes       []BatchNode `json:"nodes"`
}

// Node statuses of a batch response.
const (
	// StatusOK is a node that ran and produced its product.
	StatusOK = "ok"
	// StatusFailed is a node that was rejected (unknown handle, bad
	// spec) or whose engine run failed; Error carries the envelope.
	StatusFailed = "failed"
	// StatusSkipped is a node never run because an upstream dependency
	// failed or was itself skipped.
	StatusSkipped = "skipped"
)

// NodeResult reports one node of a finished batch. Exactly the nodes
// with Status == StatusOK carry result fields; failed nodes carry the
// shared error envelope; skipped nodes carry an envelope with code
// CodeUpstreamFailed naming the failed dependency.
type NodeResult struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	// Engine is the engine that ran the node after breaker routing;
	// Degraded reports whether a tripped breaker rerouted it.
	Engine   string `json:"engine,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	// Rows, Cols, NnzC, Flops and Seconds as in MultiplyResponse.
	Rows    int     `json:"rows,omitempty"`
	Cols    int     `json:"cols,omitempty"`
	NnzC    int64   `json:"nnz_c,omitempty"`
	Flops   int64   `json:"flops,omitempty"`
	Seconds float64 `json:"seconds,omitempty"`
	// PlanCacheHit reports whether the node replayed a cached symbolic
	// plan (numeric-only) instead of running a cold symbolic phase.
	PlanCacheHit bool `json:"plan_cache_hit,omitempty"`
	// Handle is the stored output (nodes with Store only).
	Handle string         `json:"handle,omitempty"`
	Error  *ErrorResponse `json:"error,omitempty"`
}

// BatchResponse reports a finished batch: per-node statuses in request
// order plus the batch-level accounting. A batch that was admitted
// always returns 200 with this body — partial failure lives in the
// node statuses, not the HTTP status.
type BatchResponse struct {
	Nodes     []NodeResult `json:"nodes"`
	Completed int          `json:"completed"`
	Failed    int          `json:"failed"`
	Skipped   int          `json:"skipped"`
	// Seconds is the wall-clock duration of the whole batch execution.
	Seconds float64 `json:"seconds"`
	// EstimatedFlops is the single admission estimate the DAG was
	// admitted under.
	EstimatedFlops int64 `json:"estimated_flops"`
	// PlanCacheHits/Misses aggregate the nodes' plan-cache traffic;
	// ColdSymbolic == PlanCacheMisses is the number of cold symbolic
	// phases the batch paid (the plan-sharing target for an iterative
	// chain is exactly one).
	PlanCacheHits    int64   `json:"plan_cache_hits"`
	PlanCacheMisses  int64   `json:"plan_cache_misses"`
	PlanCacheHitRate float64 `json:"plan_cache_hit_rate"`
}
