// Package apiv1 is the versioned wire-type package of the serving
// layer: the JSON request, response and error-envelope types spoken on
// every /v1/* endpoint, shared by the server (internal/serve), the
// drive harnesses of cmd/spgemm-serve, the batch benchmark and the
// thin Client in this package.
//
// The field names are the wire contract. They are covered by a
// stability test (wire_test.go) and must never change within v1;
// additions are allowed, renames and removals get a new version
// package.
//
// Every error, on every endpoint, is the same envelope
// (ErrorResponse): a machine-readable code from the Code* taxonomy, a
// human-readable message, and — on 429 responses — a retry-after hint
// mirroring the Retry-After header.
package apiv1

import (
	"fmt"

	"repro/spgemm"
)

// MatrixSpec describes a generated operand, so clients submit matrix
// *recipes* instead of shipping coordinate data. Kind selects the
// generator: "rmat" (Scale, EdgeFactor), "er" (Rows, Cols, Density),
// "band" (N, Half), "blocks" (N, Block — dense diagonal blocks, whose
// sparsity pattern is closed under multiplication: the pattern of A²
// equals the pattern of A, the iterative-chain workload). Seed feeds
// all of them.
type MatrixSpec struct {
	Kind       string  `json:"kind"`
	Scale      uint    `json:"scale,omitempty"`
	EdgeFactor int     `json:"edge_factor,omitempty"`
	Rows       int     `json:"rows,omitempty"`
	Cols       int     `json:"cols,omitempty"`
	Density    float64 `json:"density,omitempty"`
	N          int     `json:"n,omitempty"`
	Half       int     `json:"half,omitempty"`
	Block      int     `json:"block,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
}

// maxGenDim caps generated matrix dimensions so a single request
// cannot ask the server to materialize an absurd operand: generation
// happens before admission control can weigh the job.
const maxGenDim = 1 << 22

// Build materializes the spec.
func (m MatrixSpec) Build() (*spgemm.Matrix, error) {
	switch m.Kind {
	case "rmat":
		scale := m.Scale
		if scale == 0 {
			scale = 10
		}
		if scale > 22 {
			return nil, fmt.Errorf("apiv1: rmat scale %d too large (max 22)", scale)
		}
		ef := m.EdgeFactor
		if ef <= 0 {
			ef = 8
		}
		return spgemm.RMAT(scale, ef, 0.57, 0.19, 0.19, m.Seed), nil
	case "er":
		rows, cols := m.Rows, m.Cols
		if rows <= 0 {
			rows = 1024
		}
		if cols <= 0 {
			cols = rows
		}
		if rows > maxGenDim || cols > maxGenDim {
			return nil, fmt.Errorf("apiv1: er dimensions %dx%d too large (max %d)", rows, cols, maxGenDim)
		}
		p := m.Density
		if p <= 0 {
			p = 0.01
		}
		return spgemm.ER(rows, cols, p, m.Seed), nil
	case "band":
		n, half := m.N, m.Half
		if n <= 0 {
			n = 1024
		}
		if n > maxGenDim {
			return nil, fmt.Errorf("apiv1: band n %d too large (max %d)", n, maxGenDim)
		}
		if half <= 0 {
			half = 8
		}
		return spgemm.Band(n, half, m.Seed), nil
	case "blocks":
		n, bs := m.N, m.Block
		if n <= 0 {
			n = 1024
		}
		if n > maxGenDim {
			return nil, fmt.Errorf("apiv1: blocks n %d too large (max %d)", n, maxGenDim)
		}
		if bs <= 0 {
			bs = 16
		}
		if bs > n {
			bs = n
		}
		return spgemm.BlockDiag(n/bs, bs, m.Seed), nil
	default:
		return nil, fmt.Errorf("apiv1: unknown matrix kind %q (want rmat, er, band or blocks)", m.Kind)
	}
}

// MultiplyRequest is the POST /v1/multiply body. Operands come either
// as specs or as handles into the matrix store (a handle wins over
// its spec); B defaults to the same matrix as A (the common A·A graph
// workload). StoreC additionally persists the product into the matrix
// store and returns its handle, so a client can chain multiplies
// across sequential requests.
type MultiplyRequest struct {
	Engine      string      `json:"engine"`
	A           MatrixSpec  `json:"a"`
	B           *MatrixSpec `json:"b,omitempty"`
	AHandle     string      `json:"a_handle,omitempty"`
	BHandle     string      `json:"b_handle,omitempty"`
	StoreC      bool        `json:"store_c,omitempty"`
	DeadlineSec float64     `json:"deadline_sec,omitempty"`
	Threads     int         `json:"threads,omitempty"`
	NumGPUs     int         `json:"num_gpus,omitempty"`
}

// MatrixData is a raw CSR payload on the wire: the three arrays of the
// internal representation, verbatim. It exists for the cluster tier —
// a coordinator re-uploading its spill copy of a stored matrix to a
// failover successor ships the actual bytes, not a recipe — but any
// client may use it to upload real data instead of a generator spec.
// encoding/json round-trips float64 exactly, so an upload and its
// re-download are byte-identical (content-addressed handles depend on
// this).
type MatrixData struct {
	Rows       int       `json:"rows"`
	Cols       int       `json:"cols"`
	RowOffsets []int64   `json:"row_offsets"`
	ColIDs     []int32   `json:"col_ids"`
	Values     []float64 `json:"values"`
}

// MatrixDataFrom converts a matrix into its wire payload. The slices
// alias the matrix storage — marshal before mutating.
func MatrixDataFrom(m *spgemm.Matrix) *MatrixData {
	return &MatrixData{
		Rows: m.Rows, Cols: m.Cols,
		RowOffsets: m.RowOffsets, ColIDs: m.ColIDs, Values: m.Data,
	}
}

// Matrix validates the payload and returns it as a matrix. The matrix
// aliases the payload slices.
func (d *MatrixData) Matrix() (*spgemm.Matrix, error) {
	m := &spgemm.Matrix{
		Rows: d.Rows, Cols: d.Cols,
		RowOffsets: d.RowOffsets, ColIDs: d.ColIDs, Data: d.Values,
	}
	if m.RowOffsets == nil {
		m.RowOffsets = make([]int64, d.Rows+1)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("apiv1: matrix data rejected: %w", err)
	}
	return m, nil
}

// MatrixRequest is the POST /v1/matrices body: a spec to build and
// store, raw CSR data to store verbatim, or a stored handle plus a
// values seed to re-value (same pattern, fresh deterministic values —
// the iterative-workload upload that keeps cached plans warm). Data
// wins over Handle wins over Spec.
type MatrixRequest struct {
	Spec       *MatrixSpec `json:"spec,omitempty"`
	Handle     string      `json:"handle,omitempty"`
	ValuesSeed int64       `json:"values_seed,omitempty"`
	Data       *MatrixData `json:"data,omitempty"`
}

// MatrixBatchRequest is the POST /v1/matrices/bulk body: several
// uploads admitted as one pipelined transfer. The cluster coordinator
// uses it to re-home every spill copy a failover successor is missing
// in a single round trip instead of N serial ones.
type MatrixBatchRequest struct {
	Matrices []MatrixRequest `json:"matrices"`
}

// MatrixBatchResponse answers a bulk upload, one response per request
// in order. The whole batch either stores or fails as a unit.
type MatrixBatchResponse struct {
	Matrices []MatrixResponse `json:"matrices"`
}

// MatrixResponse describes a stored matrix. StructureFP is the
// sparsity-pattern fingerprint: two handles sharing it share cached
// plans.
type MatrixResponse struct {
	Handle      string `json:"handle"`
	Rows        int    `json:"rows"`
	Cols        int    `json:"cols"`
	Nnz         int64  `json:"nnz"`
	Bytes       int64  `json:"bytes"`
	StructureFP string `json:"structure_fingerprint"`
}

// MultiplyResponse reports a completed job. CHandle is set only when
// the request asked for StoreC.
type MultiplyResponse struct {
	Requested string  `json:"requested"`
	Engine    string  `json:"engine"`
	Degraded  bool    `json:"degraded"`
	Rows      int     `json:"rows"`
	Cols      int     `json:"cols"`
	NnzC      int64   `json:"nnz_c"`
	Flops     int64   `json:"flops"`
	Seconds   float64 `json:"seconds"`
	GFLOPS    float64 `json:"gflops"`
	CHandle   string  `json:"c_handle,omitempty"`
}

// ReadyResponse is the GET /readyz body: a coarse machine-readable
// Status (one of the ReadyStatus* strings) plus the detail behind it.
// A single server reports its own drain flag, inflight load and
// breaker states; a cluster coordinator additionally reports every
// replica's health-state-machine position in Replicas and omits the
// single-server fields that do not apply.
type ReadyResponse struct {
	// Status is "ready" (serving normally), "degraded" (serving, but
	// through a fallback path: an open breaker, or a cluster with
	// replicas down), or "draining" (shutting down, not admitting).
	Status        string            `json:"status"`
	Draining      bool              `json:"draining"`
	InflightJobs  int               `json:"inflight_jobs"`
	InflightFlops int64             `json:"inflight_flops"`
	// Breakers maps engine name to circuit state
	// (closed/open/half-open) on a single server.
	Breakers map[string]string `json:"breakers,omitempty"`
	// Replicas maps replica name to health state
	// (up/suspect/down/draining) on a cluster coordinator.
	Replicas map[string]string `json:"replicas,omitempty"`
}

// Readiness statuses of the /readyz body. Like the error codes these
// are wire contract: clients and load balancers dispatch on them.
const (
	// ReadyStatusReady is a server (or cluster) serving normally.
	ReadyStatusReady = "ready"
	// ReadyStatusDegraded is a server still serving but through a
	// fallback path: a tripped breaker routing device traffic to the
	// CPU engine, or a cluster with at least one replica not up
	// (including the single-survivor funnel mode).
	ReadyStatusDegraded = "degraded"
	// ReadyStatusDraining is a server that stopped admitting (HTTP 503
	// on /readyz; in-flight work is finishing).
	ReadyStatusDraining = "draining"
)

// JoinRequest is the POST /v1/join body a serve replica sends to a
// cluster coordinator to register itself (and thereafter as a
// heartbeat): the replica's stable name and the base URL the
// coordinator should dial it on. Re-joining an existing name is how a
// restarted replica re-enters the ring — the coordinator voids its
// placement records (the restart lost the store) and revives it.
type JoinRequest struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// JoinResponse acknowledges a registration. Rejoined reports that the
// coordinator already knew the name and treated the join as a
// recovery (replica restart or partition heal) rather than a first
// registration or a routine heartbeat. HeartbeatSec is the cadence the
// coordinator wants subsequent heartbeat joins at.
type JoinResponse struct {
	Name         string  `json:"name"`
	Rejoined     bool    `json:"rejoined"`
	Replicas     int     `json:"replicas"`
	HeartbeatSec float64 `json:"heartbeat_sec"`
}

// DrainRequest is the POST /v1/admin/drain body: the graceful-drain
// deadline. Zero means the server's configured default.
type DrainRequest struct {
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// DrainResponse reports a completed drain: the final counter snapshot
// the process would have written to its snapshot file.
type DrainResponse struct {
	Counters map[string]int64 `json:"counters"`
}

// ErrorResponse is the uniform error envelope of every /v1 endpoint
// (and of per-node failures inside a batch response): a
// machine-readable code from the Code* taxonomy, the human-readable
// message, and — when the job was shed — the retry-after hint also
// carried by the Retry-After header.
type ErrorResponse struct {
	Code          string  `json:"code"`
	Error         string  `json:"error"`
	RetryAfterSec float64 `json:"retry_after_sec,omitempty"`
}

// Machine-readable error codes of the envelope, mapped from the
// serving layer's faults taxonomy. Clients dispatch on these, never on
// message text.
const (
	// CodeBadRequest is a malformed or unsatisfiable request body
	// (HTTP 400).
	CodeBadRequest = "bad_request"
	// CodeMethodNotAllowed is a wrong HTTP method on a known route
	// (HTTP 405; the Allow header lists the accepted method).
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeUnknownHandle is a matrix handle the store does not hold —
	// never uploaded, deleted, or evicted (HTTP 404; re-upload).
	CodeUnknownHandle = "unknown_handle"
	// CodeOverloaded is the admission controller's flop-budget shed
	// (HTTP 429 with Retry-After).
	CodeOverloaded = "overloaded"
	// CodeQueueFull is the bounded admission queue shed (HTTP 429 with
	// Retry-After).
	CodeQueueFull = "queue_full"
	// CodeDraining rejects jobs submitted after graceful drain began
	// (HTTP 503; try another replica).
	CodeDraining = "draining"
	// CodeJobPanic is an engine panic isolated to the job (HTTP 500).
	CodeJobPanic = "job_panic"
	// CodeDeadline is a run that exceeded its deadline, or a job
	// abandoned at the drain deadline (HTTP 504).
	CodeDeadline = "deadline"
	// CodeOOM is an up-front rejection of a job that cannot fit the
	// device at any chunk grid, or a store-budget overflow (HTTP 413).
	CodeOOM = "oom"
	// CodeDeviceLost is a permanent simulated-device failure that the
	// engine could not recover from (HTTP 500).
	CodeDeviceLost = "device_lost"
	// CodeInvalidDAG is a /v1/batch request whose node graph cannot be
	// scheduled: empty, too large, duplicate or missing ids, unknown
	// node references, or a dependency cycle (HTTP 400).
	CodeInvalidDAG = "invalid_dag"
	// CodeShapeMismatch is a /v1/batch request with incompatible
	// operand dimensions somewhere in the DAG, rejected before
	// admission (HTTP 400).
	CodeShapeMismatch = "shape_mismatch"
	// CodeUpstreamFailed marks a batch node skipped because a node it
	// depends on failed (node status "skipped", never a top-level
	// HTTP error).
	CodeUpstreamFailed = "upstream_failed"
	// CodeReplicaDown is a cluster request that no replica could
	// serve: the owning replica and every successor on the ring are
	// down or draining (HTTP 503 with Retry-After; the request was
	// never admitted anywhere and is safe to retry).
	CodeReplicaDown = "replica_down"
)
