// Package spgemm is the public API of the out-of-core CPU-GPU SpGEMM
// framework: sparse matrix-matrix multiplication for products that do
// not fit in (simulated) GPU memory, after "Scaling Sparse Matrix
// Multiplication on CPU-GPU Nodes" (Xia, Jiang, Agrawal, Ramnath —
// IPDPS 2021).
//
// Three engines are exposed:
//
//   - MultiplyCPU: real multi-core two-phase hash SpGEMM (the paper's
//     CPU baseline, after Nagasaka et al.).
//   - MultiplyOutOfCore: the paper's out-of-core GPU framework on a
//     simulated V100-class device, with the synchronous baseline and
//     the asynchronous pre-allocated pipeline.
//   - MultiplyHybrid: the CPU-GPU hybrid with flop-sorted chunk
//     distribution.
//
// All engines return numerically exact products; the GPU and hybrid
// engines additionally report simulated-time statistics under the
// device's cost model. See the examples directory for usage.
//
// Besides the Multiply* functions, every implementation (including the
// multi-GPU and distributed SUMMA extensions) is registered as a named
// Engine with one uniform entry point:
//
//	eng, _ := spgemm.ByName("hybrid")
//	c, report, _ := eng.Run(a, b, &spgemm.RunOptions{Metrics: spgemm.NewCollector()})
//
// Engines() lists the names; Report is the common statistics interface
// of all engines, and RunOptions.Metrics plugs in the shared
// observability layer (per-phase spans in simulated and wall-clock
// time, counters, Chrome-trace export).
package spgemm

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpuspgemm"
	"repro/internal/csr"
	"repro/internal/faults"
	"repro/internal/gpusim"
	"repro/internal/hybrid"
	"repro/internal/mmio"
	"repro/internal/multigpu"
	"repro/internal/reorder"
	"repro/internal/speck"
	"repro/internal/summa"
)

// FaultConfig configures deterministic fault injection on the
// simulated devices (seeded transfer/kernel failures, stragglers, OOM
// pressure, device loss). The zero value is fault-free and leaves runs
// byte-identical to a build without the injection layer; pass it via
// RunOptions.Faults or OutOfCoreOptions.Faults.
type FaultConfig = faults.Config

// ParseFaultSpec parses the CLI fault specification, a comma-separated
// key=value list such as "seed=7,rate=0.02,loseafter=40".
func ParseFaultSpec(spec string) (FaultConfig, error) { return faults.ParseSpec(spec) }

// The fault/recovery error taxonomy. Engines wrap these sentinels with
// chunk and device context; classify with errors.Is.
var (
	// ErrTransfer and ErrKernel are transient device faults (retried up
	// to OutOfCoreOptions.ChunkRetries times per chunk).
	ErrTransfer = faults.ErrTransfer
	ErrKernel   = faults.ErrKernel
	// ErrOOM marks an allocation that exceeded usable device memory.
	ErrOOM = faults.ErrOOM
	// ErrDeviceLost marks a permanently failed device.
	ErrDeviceLost = faults.ErrDeviceLost
	// ErrChunkAbandoned marks a chunk whose retry budget was exhausted
	// with no recovery path left.
	ErrChunkAbandoned = faults.ErrChunkAbandoned
	// ErrDeadline marks a run aborted at RunOptions.DeadlineSec.
	ErrDeadline = faults.ErrDeadline
	// ErrOverloaded is the serving layer's load-shed rejection: the
	// job was never admitted (internal/serve wraps it with a
	// retry-after hint).
	ErrOverloaded = faults.ErrOverloaded
	// ErrQueueFull is the serving layer's bounded-queue rejection.
	ErrQueueFull = faults.ErrQueueFull
	// ErrJobPanic marks a job whose engine panicked; the serving layer
	// isolates the crash as this typed error instead of dying.
	ErrJobPanic = faults.ErrJobPanic
)

// Matrix is a sparse matrix in compressed sparse row form.
type Matrix = csr.Matrix

// Entry is a coordinate-format non-zero used to build matrices.
type Entry = csr.Entry

// NewMatrix creates an empty rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix { return csr.New(rows, cols) }

// FromEntries builds a matrix from coordinate triplets, summing
// duplicates.
func FromEntries(rows, cols int, entries []Entry) (*Matrix, error) {
	return csr.FromEntries(rows, cols, entries)
}

// Equal reports whether two matrices match within tol.
func Equal(a, b *Matrix, tol float64) bool { return csr.Equal(a, b, tol) }

// Flops reports the multiply-add flop count (x2) of computing A·B.
func Flops(a, b *Matrix) int64 { return csr.Flops(a, b) }

// ReadMatrixMarket loads a .mtx (optionally gzipped) file.
func ReadMatrixMarket(path string) (*Matrix, error) { return mmio.ReadFile(path) }

// WriteMatrixMarket writes a .mtx (optionally gzipped) file.
func WriteMatrixMarket(path string, m *Matrix) error { return mmio.WriteFile(path, m) }

// DeviceConfig describes the simulated GPU and its cost model.
type DeviceConfig = gpusim.DeviceConfig

// V100 returns the calibrated Tesla V100 device model (Table I of the
// paper).
func V100() DeviceConfig { return gpusim.V100Config() }

// V100WithMemory returns the V100 model with a different device-memory
// capacity, used to study out-of-core behaviour at small scales.
func V100WithMemory(bytes int64) DeviceConfig { return gpusim.ScaledV100Config(bytes) }

// OutOfCoreOptions configures the out-of-core GPU engine; see
// core.Options for the fields (chunk grid, Async, Reorder, ...).
type OutOfCoreOptions = core.Options

// Stats reports simulated-time statistics of an out-of-core run.
type Stats = core.Stats

// SymbolicMode selects the symbolic strategy of a multiply: exact
// two-phase analysis, estimation-based elision (Ocean-style sampled
// sizing with over-allocation and compaction — output bit-identical
// to exact), or automatic selection by problem size.
type SymbolicMode = speck.Mode

const (
	// SymbolicExact runs the exact symbolic phase (the default).
	SymbolicExact = speck.ModeExact
	// SymbolicEstimate elides the symbolic phase behind the sampled
	// row-nnz estimator wherever the confidence gate allows.
	SymbolicEstimate = speck.ModeEstimate
	// SymbolicAuto estimates only multiplies (or chunks) whose flop
	// count clears the estimator's auto threshold.
	SymbolicAuto = speck.ModeAuto
)

// EstimatorConfig tunes the estimation path (sample size, safety
// factor, confidence gate, fallback thresholds); the zero value uses
// the defaults.
type EstimatorConfig = speck.EstimatorConfig

// ParseSymbolicMode parses the -symbolic CLI spelling
// (exact|estimate|auto).
func ParseSymbolicMode(s string) (SymbolicMode, error) { return speck.ParseMode(s) }

// HybridOptions configures the CPU-GPU hybrid engine.
type HybridOptions = hybrid.Options

// HybridStats extends Stats with the device split.
type HybridStats = hybrid.Stats

// HostModel is the simulated multi-core CPU cost model.
type HostModel = hybrid.HostModel

// validateInputs rejects structurally corrupt matrices at the API
// boundary, where the cost (one O(nnz) scan per operand) is paid once
// rather than as a crash deep inside an engine.
func validateInputs(a, b *Matrix) error {
	if err := a.Validate(); err != nil {
		return fmt.Errorf("spgemm: left operand invalid: %w", err)
	}
	if err := b.Validate(); err != nil {
		return fmt.Errorf("spgemm: right operand invalid: %w", err)
	}
	return nil
}

// MultiplyCPU computes A·B on the real multi-core CPU engine with
// threads worker goroutines (0 = GOMAXPROCS).
func MultiplyCPU(a, b *Matrix, threads int) (*Matrix, error) {
	if err := validateInputs(a, b); err != nil {
		return nil, err
	}
	return cpuspgemm.Multiply(a, b, cpuspgemm.Options{Threads: threads})
}

// Multiply computes A·B with the default engine (multi-core CPU).
func Multiply(a, b *Matrix) (*Matrix, error) { return MultiplyCPU(a, b, 0) }

// MultiplyOutOfCore computes A·B with the out-of-core GPU framework on
// a simulated device, returning the exact product and the simulated
// statistics.
func MultiplyOutOfCore(a, b *Matrix, cfg DeviceConfig, opts OutOfCoreOptions) (*Matrix, Stats, error) {
	if err := validateInputs(a, b); err != nil {
		return nil, Stats{}, err
	}
	return core.Run(a, b, cfg, opts)
}

// MultiplyHybrid computes A·B with the CPU-GPU hybrid engine.
func MultiplyHybrid(a, b *Matrix, cfg DeviceConfig, opts HybridOptions) (*Matrix, HybridStats, error) {
	if err := validateInputs(a, b); err != nil {
		return nil, HybridStats{}, err
	}
	return hybrid.Run(a, b, cfg, opts)
}

// Plan chooses a chunk grid for the out-of-core engine: the smallest
// grid whose double-buffered pipeline fits the device memory, assuming
// chunk outputs up to skew x the average (graph matrices concentrate
// output in hub chunks). It runs a symbolic pass to size the output
// exactly.
func Plan(a, b *Matrix, cfg DeviceConfig) (OutOfCoreOptions, error) {
	if a.Cols != b.Rows {
		return OutOfCoreOptions{}, fmt.Errorf("spgemm: dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	_, _, outNnz := speck.ClassifyFlops(a, b)
	return planFromNnz(a, b, cfg, outNnz)
}

// PlanEstimated chooses a chunk grid like Plan but sizes the output
// from the sampled estimator instead of an exact symbolic pass —
// O(nnz) instead of O(flops), which is what admission control wants
// when it must price a job before deciding to run it. The estimate
// errs toward over-allocation (more chunks than strictly needed), the
// safe direction for fitting device memory; the memoizing plan cache
// upgrades an estimated grid in place when an exact plan for the same
// pattern is computed later.
func PlanEstimated(a, b *Matrix, cfg DeviceConfig) (OutOfCoreOptions, error) {
	if a.Cols != b.Rows {
		return OutOfCoreOptions{}, fmt.Errorf("spgemm: dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	outNnz := speck.EstimateTotalNnz(a, b, speck.EstimatorConfig{})
	return planFromNnz(a, b, cfg, outNnz)
}

// planFromNnz is the shared planning arithmetic behind Plan and
// PlanEstimated, parameterized only by the output-size figure.
func planFromNnz(a, b *Matrix, cfg DeviceConfig, outNnz int64) (OutOfCoreOptions, error) {
	outBytes := outNnz*12 + int64(a.Rows+1)*8
	inputs := a.Bytes() + b.Bytes()
	// Workspace and per-chunk row-info margins.
	margin := inputs/4 + int64(a.Rows)*24 + (1 << 16)
	avail := cfg.MemoryBytes - inputs - margin
	if avail <= 0 {
		return OutOfCoreOptions{}, fmt.Errorf("spgemm: device memory %d too small for inputs (%d) + margin (%d)",
			cfg.MemoryBytes, inputs, margin)
	}
	const skew = 4
	// Need 2 output slots of up to skew*outBytes/chunks each.
	chunks := int(2*skew*outBytes/avail) + 1
	if chunks < 1 {
		chunks = 1
	}
	opts := OutOfCoreOptions{Async: true, Reorder: true}
	opts.RowPanels, opts.ColPanels = gridFor(chunks, a.Rows, b.Cols)
	return opts, nil
}

// gridFor factors a chunk budget into a near-square grid bounded by
// the matrix dimensions.
func gridFor(chunks, rows, cols int) (r, c int) {
	r, c = 1, 1
	for r*c < chunks {
		// Grow the dimension that keeps the grid square-ish and legal.
		if (r <= c || c >= cols) && r < rows {
			r++
		} else if c < cols {
			c++
		} else {
			break
		}
	}
	return r, c
}

// MultiGPUOptions configures the multi-GPU extension engine.
type MultiGPUOptions = multigpu.Options

// MultiGPUStats reports a multi-GPU run.
type MultiGPUStats = multigpu.Stats

// MultiplyMultiGPU computes A·B across several simulated GPUs (plus
// optionally the CPU) — the scaling extension beyond the paper's
// single-GPU node.
func MultiplyMultiGPU(a, b *Matrix, cfg DeviceConfig, opts MultiGPUOptions) (*Matrix, MultiGPUStats, error) {
	if err := validateInputs(a, b); err != nil {
		return nil, MultiGPUStats{}, err
	}
	return multigpu.Run(a, b, cfg, opts)
}

// SUMMAConfig configures the distributed sparse-SUMMA engine.
type SUMMAConfig = summa.Config

// SUMMAStats reports a distributed run.
type SUMMAStats = summa.Stats

// MultiplySUMMA computes A·B with 2-D sparse SUMMA on a simulated
// cluster of Q x Q nodes — the distributed-memory counterpart of the
// out-of-core single-node framework (the paper's reference [33]).
func MultiplySUMMA(a, b *Matrix, cfg SUMMAConfig) (*Matrix, SUMMAStats, error) {
	if err := validateInputs(a, b); err != nil {
		return nil, SUMMAStats{}, err
	}
	return summa.Run(a, b, cfg)
}

// MultiplyAuto multiplies A·B out-of-core, planning the chunk grid
// automatically and refining it (up to a few retries) if a chunk turns
// out not to fit the device arena — the situation the paper notes when
// "certain chunks are extremely dense and require large allocation".
func MultiplyAuto(a, b *Matrix, cfg DeviceConfig) (*Matrix, Stats, error) {
	return runAuto(a, b, cfg, nil, nil, SymbolicExact)
}

// runAuto is MultiplyAuto with an optional metrics sink, plan cache
// and symbolic mode (the "auto" registry engine threads all three
// through here).
func runAuto(a, b *Matrix, cfg DeviceConfig, m *Collector, pc *PlanCache, mode SymbolicMode) (*Matrix, Stats, error) {
	estimated := mode != SymbolicExact
	var opts OutOfCoreOptions
	var err error
	switch {
	case pc != nil:
		opts, err = pc.plan(a, b, cfg, estimated)
	case estimated:
		opts, err = PlanEstimated(a, b, cfg)
	default:
		opts, err = Plan(a, b, cfg)
	}
	if err != nil {
		return nil, Stats{}, err
	}
	opts.Metrics = m
	opts.PlanCache = pc.coreCache()
	opts.Symbolic = mode
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		c, st, err := MultiplyOutOfCore(a, b, cfg, opts)
		if err == nil {
			return c, st, nil
		}
		lastErr = err
		// Refine: more chunks shrink every per-chunk allocation.
		if opts.RowPanels*2 <= a.Rows {
			opts.RowPanels *= 2
		} else if opts.ColPanels*2 <= b.Cols {
			opts.ColPanels *= 2
		} else {
			break
		}
	}
	return nil, Stats{}, fmt.Errorf("spgemm: no chunk grid fits the device: %w", lastErr)
}

// RCM computes the reverse Cuthill-McKee bandwidth-reducing permutation
// of a square matrix's sparsity graph (perm[new] = old). Reordering
// inputs concentrates the out-of-core chunk grid's work near the
// diagonal (see the locality ablation in EXPERIMENTS.md).
func RCM(a *Matrix) ([]int32, error) { return reorder.RCM(a) }

// Permute applies a symmetric permutation P·A·Pᵀ.
func Permute(a *Matrix, perm []int32) (*Matrix, error) { return reorder.Permute(a, perm) }

// Bandwidth reports max |i-j| over the stored entries.
func Bandwidth(a *Matrix) int { return reorder.Bandwidth(a) }

// MultiplyCPUMerge computes A·B with k-way merge accumulation
// (RMerge-style), the third accumulation family of the paper's related
// work.
func MultiplyCPUMerge(a, b *Matrix, threads int) (*Matrix, error) {
	if err := validateInputs(a, b); err != nil {
		return nil, err
	}
	return cpuspgemm.MultiplyMerge(a, b, threads)
}

// MultiplyCPUOuter computes A·B with the outer-product (column-row)
// formulation of the paper's Section II-B taxonomy.
func MultiplyCPUOuter(a, b *Matrix, threads int) (*Matrix, error) {
	if err := validateInputs(a, b); err != nil {
		return nil, err
	}
	return cpuspgemm.OuterProduct(a, b, threads)
}
