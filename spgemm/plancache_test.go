package spgemm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

// refreshValues returns a copy of m sharing the sparsity pattern with
// new deterministic values — the iterative-workload shape (fixed
// structure, fresh numerics) the plan cache accelerates.
func refreshValues(m *Matrix, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	out := &Matrix{
		Rows: m.Rows, Cols: m.Cols,
		RowOffsets: m.RowOffsets, ColIDs: m.ColIDs,
		Data: make([]float64, len(m.Data)),
	}
	for i := range out.Data {
		out.Data[i] = rng.NormFloat64()
	}
	return out
}

func mustBitIdentical(t *testing.T, cold, warm *Matrix) {
	t.Helper()
	if cold.Rows != warm.Rows || cold.Cols != warm.Cols || len(cold.ColIDs) != len(warm.ColIDs) {
		t.Fatalf("shape/nnz mismatch: %dx%d/%d vs %dx%d/%d",
			cold.Rows, cold.Cols, len(cold.ColIDs), warm.Rows, warm.Cols, len(warm.ColIDs))
	}
	for i := range cold.RowOffsets {
		if cold.RowOffsets[i] != warm.RowOffsets[i] {
			t.Fatalf("row offset %d: %d != %d", i, cold.RowOffsets[i], warm.RowOffsets[i])
		}
	}
	for i := range cold.ColIDs {
		if cold.ColIDs[i] != warm.ColIDs[i] {
			t.Fatalf("col id %d: %d != %d", i, cold.ColIDs[i], warm.ColIDs[i])
		}
	}
	for i := range cold.Data {
		if math.Float64bits(cold.Data[i]) != math.Float64bits(warm.Data[i]) {
			t.Fatalf("value %d: bits differ (%v vs %v)", i, cold.Data[i], warm.Data[i])
		}
	}
}

// TestPlanCacheEngines runs each cache-aware registry engine twice on
// a fixed pattern with refreshed values: the second run must hit the
// cache and stay byte-identical to an uncached run of the same inputs.
func TestPlanCacheEngines(t *testing.T) {
	a := RMAT(9, 8, 0.57, 0.19, 0.19, 41)
	for _, name := range []string{"cpu", "gpu", "gpu-sync", "hybrid"} {
		pc := NewPlanCache(0)
		eng, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		opts := runOptsFor(name)
		opts.PlanCache = pc
		if _, _, err := eng.Run(a, a, opts); err != nil {
			t.Fatalf("%s cold: %v", name, err)
		}
		fresh := refreshValues(a, 42)
		cold, _, err := eng.Run(fresh, fresh, runOptsFor(name))
		if err != nil {
			t.Fatalf("%s uncached: %v", name, err)
		}
		warm, _, err := eng.Run(fresh, fresh, opts)
		if err != nil {
			t.Fatalf("%s warm: %v", name, err)
		}
		mustBitIdentical(t, cold, warm)
		hits, misses, _ := pc.Counters()
		if hits == 0 {
			t.Fatalf("%s: no plan cache hits after a repeat run (misses=%d)", name, misses)
		}
	}
}

// TestPlanCacheCPUCounters pins the cpu engine's hit/miss accounting:
// N runs on one pattern are 1 miss + N-1 hits, in both the cache's own
// counters and the per-run metrics collector.
func TestPlanCacheCPUCounters(t *testing.T) {
	a := ER(300, 300, 0.02, 43)
	pc := NewPlanCache(0)
	col := NewCollector()
	eng, _ := ByName("cpu")
	const runs = 4
	for i := 0; i < runs; i++ {
		if _, _, err := eng.Run(a, a, &RunOptions{PlanCache: pc, Metrics: col}); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, _ := pc.Counters()
	if misses != 1 || hits != runs-1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", hits, misses, runs-1)
	}
	if got := col.Counter(metrics.CounterPlanCacheHits); got != hits {
		t.Fatalf("metrics hit counter %d != cache %d", got, hits)
	}
	if got := col.Counter(metrics.CounterPlanCacheMisses); got != misses {
		t.Fatalf("metrics miss counter %d != cache %d", got, misses)
	}
}

// TestPlanCacheInvalidateFacade invalidates one pattern's fingerprint
// and checks exactly its entries (cpu and device halves) disappear.
func TestPlanCacheInvalidateFacade(t *testing.T) {
	a := ER(200, 200, 0.03, 44)
	b := ER(200, 200, 0.03, 45)
	pc := NewPlanCache(0)
	for _, eng := range []string{"cpu", "gpu"} {
		e, _ := ByName(eng)
		for _, m := range []*Matrix{a, b} {
			opts := runOptsFor(eng)
			opts.PlanCache = pc
			if _, _, err := e.Run(m, m, opts); err != nil {
				t.Fatalf("%s: %v", eng, err)
			}
		}
	}
	before := pc.Len()
	if before != 4 { // 2 patterns x (cpu sym + device plan)
		t.Fatalf("cache has %d entries, want 4", before)
	}
	if n := pc.Invalidate(Fingerprint(a)); n < 2 {
		t.Fatalf("invalidated %d entries for pattern a, want >= 2 (cpu + device)", n)
	}
	if pc.Len() != 2 {
		t.Fatalf("cache has %d entries after invalidate, want 2", pc.Len())
	}
	// Pattern b must still be warm on both engines.
	h0, _, _ := pc.Counters()
	for _, eng := range []string{"cpu", "gpu"} {
		e, _ := ByName(eng)
		opts := runOptsFor(eng)
		opts.PlanCache = pc
		if _, _, err := e.Run(b, b, opts); err != nil {
			t.Fatal(err)
		}
	}
	h1, _, _ := pc.Counters()
	if h1-h0 != 2 {
		t.Fatalf("pattern b got %d hits after invalidating a, want 2", h1-h0)
	}
}

// TestEstimateCostPlansOnce is the double-planning fix: EstimateCost
// writes the planned grid back into opts.Core, so the engine run that
// follows sees a non-zero grid and skips its own Plan call.
func TestEstimateCostPlansOnce(t *testing.T) {
	a := RMAT(9, 8, 0.57, 0.19, 0.19, 46)
	opts := runOptsFor("gpu")
	cost, err := EstimateCost("gpu", a, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Core.RowPanels == 0 || opts.Core.ColPanels == 0 {
		t.Fatalf("EstimateCost did not thread the planned grid back (grid %dx%d)",
			opts.Core.RowPanels, opts.Core.ColPanels)
	}
	if got := opts.Core.RowPanels * opts.Core.ColPanels; got != cost.Chunks {
		t.Fatalf("written-back grid %d chunks != estimated %d", got, cost.Chunks)
	}
	// The run must agree with the estimate — same grid, no re-plan.
	eng, _ := ByName("gpu")
	_, rep, err := eng.Run(a, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("no report")
	}
	// And a second estimate with the grid already present is stable.
	cost2, err := EstimateCost("gpu", a, a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cost2.Chunks != cost.Chunks {
		t.Fatalf("re-estimate changed chunks %d -> %d", cost.Chunks, cost2.Chunks)
	}
}
