package spgemm

import "repro/internal/matgen"

// RMAT generates a scale-free directed graph adjacency matrix with
// 2^scale vertices and about edgeFactor edges per vertex (recursive
// R-MAT with quadrant probabilities a, b, c; d = 1-a-b-c).
func RMAT(scale uint, edgeFactor int, a, b, c float64, seed int64) *Matrix {
	return matgen.RMAT(scale, edgeFactor, a, b, c, seed)
}

// Band generates an n x n banded matrix with the given half-bandwidth,
// modeling regular PDE/optimization matrices.
func Band(n, half int, seed int64) *Matrix { return matgen.Band(n, half, seed) }

// Stencil2D generates the 5-point Laplacian on a gx x gy grid.
func Stencil2D(gx, gy int) *Matrix { return matgen.Stencil2D(gx, gy) }

// ER generates an Erdős–Rényi random matrix with density p.
func ER(rows, cols int, p float64, seed int64) *Matrix { return matgen.ER(rows, cols, p, seed) }

// BlockDiag generates nblocks dense diagonal blocks of size bs.
func BlockDiag(nblocks, bs int, seed int64) *Matrix { return matgen.BlockDiag(nblocks, bs, seed) }
