package spgemm

import (
	"math/rand"

	"repro/internal/matgen"
)

// RMAT generates a scale-free directed graph adjacency matrix with
// 2^scale vertices and about edgeFactor edges per vertex (recursive
// R-MAT with quadrant probabilities a, b, c; d = 1-a-b-c).
func RMAT(scale uint, edgeFactor int, a, b, c float64, seed int64) *Matrix {
	return matgen.RMAT(scale, edgeFactor, a, b, c, seed)
}

// Band generates an n x n banded matrix with the given half-bandwidth,
// modeling regular PDE/optimization matrices.
func Band(n, half int, seed int64) *Matrix { return matgen.Band(n, half, seed) }

// Stencil2D generates the 5-point Laplacian on a gx x gy grid.
func Stencil2D(gx, gy int) *Matrix { return matgen.Stencil2D(gx, gy) }

// ER generates an Erdős–Rényi random matrix with density p.
func ER(rows, cols int, p float64, seed int64) *Matrix { return matgen.ER(rows, cols, p, seed) }

// BlockDiag generates nblocks dense diagonal blocks of size bs.
func BlockDiag(nblocks, bs int, seed int64) *Matrix { return matgen.BlockDiag(nblocks, bs, seed) }

// Revalue returns a copy of m with the same sparsity pattern (sharing
// the structure slices) and fresh values drawn deterministically from
// seed — the "new values, old plan" primitive of iterative workloads.
// The result shares m's structural fingerprint, so plans cached for m
// replay numeric-only on it.
func Revalue(m *Matrix, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	fresh := &Matrix{
		Rows: m.Rows, Cols: m.Cols,
		RowOffsets: m.RowOffsets, ColIDs: m.ColIDs,
		Data: make([]float64, len(m.Data)),
	}
	for i := range fresh.Data {
		fresh.Data[i] = rng.NormFloat64()
	}
	return fresh
}
