package spgemm_test

import (
	"fmt"

	"repro/spgemm"
)

// ExampleMultiply squares a tiny matrix on the CPU engine.
func ExampleMultiply() {
	a, _ := spgemm.FromEntries(2, 2, []spgemm.Entry{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 2}, {Row: 1, Col: 1, Val: 3},
	})
	c, _ := spgemm.Multiply(a, a)
	cols, vals := c.Row(0)
	fmt.Println(cols, vals)
	// Output: [0 1] [1 8]
}

// ExampleMultiplyOutOfCore runs the paper's asynchronous out-of-core
// pipeline on a simulated GPU too small to hold the product.
func ExampleMultiplyOutOfCore() {
	a := spgemm.RMAT(10, 8, 0.57, 0.19, 0.19, 1)
	cfg := spgemm.V100WithMemory(2 << 20)
	opts, _ := spgemm.Plan(a, a, cfg)
	c, stats, _ := spgemm.MultiplyOutOfCore(a, a, cfg, opts)

	ref, _ := spgemm.Multiply(a, a)
	fmt.Println("exact:", spgemm.Equal(c, ref, 1e-9))
	fmt.Println("out-of-core:", stats.Chunks > 1)
	// Output:
	// exact: true
	// out-of-core: true
}

// ExampleMultiplyHybrid distributes chunks between the simulated GPU
// and the real multi-core CPU.
func ExampleMultiplyHybrid() {
	a := spgemm.Band(2000, 4, 7)
	cfg := spgemm.V100WithMemory(4 << 20)
	c, stats, _ := spgemm.MultiplyHybrid(a, a, cfg, spgemm.HybridOptions{
		Core:    spgemm.OutOfCoreOptions{RowPanels: 3, ColPanels: 3},
		Reorder: true,
	})
	fmt.Println("nnz:", c.Nnz() > 0)
	fmt.Println("both devices used:", stats.GPUChunks > 0 && stats.CPUChunks > 0)
	// Output:
	// nnz: true
	// both devices used: true
}
