package spgemm

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cpuspgemm"
	"repro/internal/hybrid"
	"repro/internal/metrics"
)

// Report is the common statistics interface every engine returns: the
// run's duration (simulated seconds for device engines, wall-clock for
// the real-CPU ones), its work and throughput, and a flat counter
// snapshot for benchmark files and figure runners. Stats, HybridStats,
// MultiGPUStats, SUMMAStats and CPUStats all satisfy it.
type Report = metrics.Report

// Collector is the shared observability sink of the framework: a
// concurrency-safe recorder of per-phase spans (in both the simulated
// and the wall-clock time domain) and named counters. A nil *Collector
// is valid everywhere and records nothing, so disabled instrumentation
// costs one pointer comparison.
type Collector = metrics.Collector

// NewCollector returns an enabled metrics collector to pass through
// RunOptions.Metrics (or the engine-specific option structs).
func NewCollector() *Collector { return metrics.New() }

// SnapshotKeys returns a snapshot's keys in sorted order, for
// deterministic printing of Collector.Snapshot maps.
func SnapshotKeys(snap map[string]int64) []string { return metrics.SnapshotKeys(snap) }

// RunOptions is the one option set shared by every registered engine.
// The zero value (or a nil pointer) is usable: a V100-class device, an
// automatically planned chunk grid, default flop ratios and no
// instrumentation.
type RunOptions struct {
	// Threads bounds the real CPU parallelism (0 = GOMAXPROCS). It
	// applies to the cpu* engines and to the CPU workers of the hybrid
	// and multi-GPU engines.
	Threads int
	// Device is the simulated GPU model; nil means V100().
	Device *DeviceConfig
	// Core configures the out-of-core chunk grid and pipeline for the
	// gpu, gpu-sync, hybrid and multigpu engines. A zero grid
	// (RowPanels == 0 || ColPanels == 0) is planned automatically with
	// Plan.
	Core OutOfCoreOptions
	// Ratio is the GPU flop share of the hybrid and multigpu engines;
	// 0 means the engine's calibrated default.
	Ratio float64
	// NumGPUs is the device count of the multigpu engine; 0 means 1.
	NumGPUs int
	// UseCPU adds the CPU worker to the multigpu engine.
	UseCPU bool
	// SUMMA configures the distributed engine (process grid, fabric).
	SUMMA SUMMAConfig
	// Metrics, when non-nil, receives every engine's spans and
	// counters; export it with WriteChromeTrace or Snapshot.
	Metrics *Collector
	// PlanCache, when non-nil, enables the structure-reuse fast path:
	// symbolic results, chunk plans and device panel residency are
	// cached across runs keyed by the operands' structural
	// fingerprints, so repeated multiplies on an unchanged sparsity
	// pattern skip the symbolic phase and re-run only the numeric
	// accumulation. Share one cache across jobs to get warm hits; nil
	// keeps every run cold (byte-identical to a build without the
	// cache). DynamicAlloc device runs never consult it.
	PlanCache *PlanCache
	// Faults configures deterministic fault injection on the simulated
	// devices of the gpu, gpu-sync, hybrid and multigpu engines. The
	// zero value is fault-free.
	Faults FaultConfig
	// ChunkRetries bounds the transient-fault retries per chunk before
	// it is handed to a recovery path (0 means 3, negative disables).
	ChunkRetries int
	// DeadlineSec aborts a run once its clock passes it: the simulated
	// clock for device engines and SUMMA, the wall clock for the cpu
	// engine. 0 means no deadline.
	DeadlineSec float64
	// Symbolic selects the symbolic strategy of every engine that runs
	// a cold symbolic phase: SymbolicExact (the default) keeps the
	// classic two-phase pipeline, SymbolicEstimate elides the exact
	// symbolic pass behind the sampled row estimator (the product is
	// bit-for-bit identical), SymbolicAuto estimates only multiplies
	// (or chunks) large enough to amortize it. EstimateCost and the
	// grid planner follow the same setting, pricing jobs from the
	// estimator instead of an exact symbolic pass.
	Symbolic SymbolicMode
	// Estimator tunes the estimation path; the zero value uses the
	// defaults documented on speck.EstimatorConfig.
	Estimator EstimatorConfig
}

// wallDeadline converts DeadlineSec into a wall-clock cancellation
// hook for the real-CPU engines, whose time domain is wall time.
func (o RunOptions) wallDeadline() func() bool {
	if o.DeadlineSec <= 0 {
		return nil
	}
	deadline := time.Now().Add(time.Duration(o.DeadlineSec * float64(time.Second)))
	return func() bool { return time.Now().After(deadline) }
}

func (o *RunOptions) withDefaults() RunOptions {
	if o == nil {
		return RunOptions{}
	}
	return *o
}

func (o RunOptions) device() DeviceConfig {
	if o.Device != nil {
		return *o.Device
	}
	return V100()
}

// plan resolves the chunk grid for a's and b's structures, through
// the plan cache's memoized planner when one is configured. The
// symbolic mode decides whether the grid is sized by the exact
// symbolic pass or the sampled estimator.
func (o RunOptions) plan(a, b *Matrix) (OutOfCoreOptions, error) {
	estimated := o.Symbolic != SymbolicExact
	if o.PlanCache != nil {
		return o.PlanCache.plan(a, b, o.device(), estimated)
	}
	if estimated {
		return PlanEstimated(a, b, o.device())
	}
	return Plan(a, b, o.device())
}

// coreOptions resolves the out-of-core options: an explicit grid is
// kept, a zero grid is planned from the device memory. The engine name
// (gpu vs gpu-sync) decides the pipeline mode either way.
func (o RunOptions) coreOptions(a, b *Matrix, async bool) (OutOfCoreOptions, error) {
	opts := o.Core
	if opts.RowPanels == 0 || opts.ColPanels == 0 {
		planned, err := o.plan(a, b)
		if err != nil {
			return OutOfCoreOptions{}, err
		}
		opts = planned
	}
	opts.Async = async
	opts.Metrics = o.Metrics
	opts.Faults = o.Faults
	opts.ChunkRetries = o.ChunkRetries
	opts.DeadlineSec = o.DeadlineSec
	opts.Symbolic = o.Symbolic
	opts.Estimator = o.Estimator
	if pc := o.PlanCache.coreCache(); pc != nil {
		opts.PlanCache = pc // an explicitly set Core.PlanCache is kept otherwise
	}
	return opts, nil
}

// Engine is a named SpGEMM implementation with a uniform entry point.
// All engines return the exact product; Report carries the per-engine
// statistics (simulated or wall-clock) behind one interface.
type Engine interface {
	// Name is the registry key (e.g. "hybrid").
	Name() string
	// Describe is a one-line human-readable summary.
	Describe() string
	// Run multiplies A·B. opts may be nil for defaults.
	Run(a, b *Matrix, opts *RunOptions) (*Matrix, Report, error)
}

// engine is the registry's function-backed Engine implementation.
type engine struct {
	name     string
	describe string
	// device marks engines that run (at least partly) on the simulated
	// GPU stack: they honor FaultConfig, need a device arena, and are
	// the ones a serving-layer circuit breaker can degrade away from.
	device bool
	run    func(a, b *Matrix, o RunOptions) (*Matrix, Report, error)
}

func (e *engine) Name() string     { return e.name }
func (e *engine) Describe() string { return e.describe }
func (e *engine) Run(a, b *Matrix, opts *RunOptions) (*Matrix, Report, error) {
	if err := validateInputs(a, b); err != nil {
		return nil, nil, err
	}
	return e.run(a, b, opts.withDefaults())
}

var registry = map[string]*engine{}

// Register adds an engine under its name; it panics on duplicates
// (registration is an init-time act). The built-in engines are
// registered by this package; external packages may add their own.
func Register(e Engine) {
	name := e.Name()
	if _, dup := registry[name]; dup {
		panic("spgemm: duplicate engine " + name)
	}
	if impl, ok := e.(*engine); ok {
		registry[name] = impl
		return
	}
	registry[name] = &engine{name: name, describe: e.Describe(), run: func(a, b *Matrix, o RunOptions) (*Matrix, Report, error) {
		return e.Run(a, b, &o)
	}}
}

// Engines returns the registered engine names, sorted.
func Engines() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Describe returns the one-line description of a registered engine.
func Describe(name string) string {
	if e, ok := registry[name]; ok {
		return e.describe
	}
	return ""
}

// ByName looks up a registered engine. The error lists the valid names
// so CLI flag errors are self-documenting.
func ByName(name string) (Engine, error) {
	if e, ok := registry[name]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("spgemm: unknown engine %q (have %v)", name, Engines())
}

// DeviceBacked reports whether a registered engine runs on the
// simulated GPU stack (honors FaultConfig and needs a device arena).
// The serving layer uses it to decide which engines plan against
// device memory at admission and which a tripped circuit breaker can
// degrade to the CPU path. Unknown and externally registered engines
// report false.
func DeviceBacked(name string) bool {
	e, ok := registry[name]
	return ok && e.device
}

// Cost is a job's pre-execution footprint estimate — the signal an
// admission controller needs before accepting work (the
// memory-footprint-first discipline of the heterogeneous SpGEMM
// frameworks this repo follows). Flops is exact (a host-side scan);
// the device fields are the planned out-of-core grid for
// device-backed engines and zero otherwise.
type Cost struct {
	// Flops is the multiply-add flop count (x2) of A·B.
	Flops int64
	// Chunks is the planned RowPanels*ColPanels grid (device engines).
	Chunks int
	// ArenaBytes is the simulated device memory the plan assumes.
	ArenaBytes int64
	// DeviceBacked mirrors DeviceBacked(engine).
	DeviceBacked bool
}

// EstimateCost sizes a job before it runs: input validation, the exact
// flop count, and — for device-backed engines — the out-of-core chunk
// plan against the job's device memory. A job whose inputs cannot fit
// the device at any grid comes back as an error wrapping ErrOOM, so an
// admission controller can reject it up front instead of discovering
// mid-run.
//
// When opts is non-nil and the grid had to be planned here, the
// planned grid is written back into opts.Core, so running the job
// with the same options reuses it instead of planning a second time
// (the admission path plans each job exactly once).
func EstimateCost(engineName string, a, b *Matrix, opts *RunOptions) (Cost, error) {
	if _, ok := registry[engineName]; !ok {
		return Cost{}, fmt.Errorf("spgemm: unknown engine %q (have %v)", engineName, Engines())
	}
	if err := validateInputs(a, b); err != nil {
		return Cost{}, err
	}
	if a.Cols != b.Rows {
		return Cost{}, fmt.Errorf("spgemm: dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	o := opts.withDefaults()
	cost := Cost{Flops: Flops(a, b), DeviceBacked: DeviceBacked(engineName)}
	if !cost.DeviceBacked {
		return cost, nil
	}
	cost.ArenaBytes = o.device().MemoryBytes
	grid := o.Core
	if grid.RowPanels == 0 || grid.ColPanels == 0 {
		planned, err := o.plan(a, b)
		if err != nil {
			return Cost{}, fmt.Errorf("spgemm: job does not fit the device: %w: %w", ErrOOM, err)
		}
		grid = planned
		if opts != nil {
			// Thread the plan through to the engine: coreOptions sees a
			// non-zero grid and skips its own Plan call. The engine still
			// overrides the pipeline mode (Async) by name, exactly as it
			// does for a user-provided grid.
			opts.Core = planned
		}
	}
	cost.Chunks = grid.RowPanels * grid.ColPanels
	return cost, nil
}

// CPUStats reports a wall-clock run of one of the real-CPU engines.
type CPUStats struct {
	// TotalSec is the measured wall-clock duration of the multiply.
	TotalSec float64
	// Flops, GFLOPS and NnzC as elsewhere in the framework.
	Flops  int64
	GFLOPS float64
	NnzC   int64
}

// Seconds returns the wall-clock duration; part of Report.
func (s CPUStats) Seconds() float64 { return s.TotalSec }

// FlopCount returns the multiply-add flop count (x2) of the product.
func (s CPUStats) FlopCount() int64 { return s.Flops }

// Throughput returns the run's GFLOPS.
func (s CPUStats) Throughput() float64 { return s.GFLOPS }

// OutputNnz returns the product's non-zero count.
func (s CPUStats) OutputNnz() int64 { return s.NnzC }

// Counters returns the flat key/value snapshot of the run.
func (s CPUStats) Counters() map[string]int64 {
	return map[string]int64{
		metrics.CounterFlops: s.Flops,
		metrics.CounterNnzC:  s.NnzC,
	}
}

// cpuStatsFor measures a finished CPU multiply.
func cpuStatsFor(a, b, c *Matrix, elapsed time.Duration) CPUStats {
	st := CPUStats{TotalSec: elapsed.Seconds(), Flops: Flops(a, b), NnzC: c.Nnz()}
	if st.TotalSec > 0 {
		st.GFLOPS = float64(st.Flops) / st.TotalSec / 1e9
	}
	return st
}

// cpuEngine wraps one of the real-CPU multiplies (already validated)
// as a registry engine with wall-clock stats.
func cpuEngine(a, b *Matrix,
	multiply func() (*Matrix, error)) (*Matrix, Report, error) {
	start := time.Now()
	c, err := multiply()
	if err != nil {
		return nil, nil, err
	}
	return c, cpuStatsFor(a, b, c, time.Since(start)), nil
}

func init() {
	Register(&engine{
		name:     "cpu",
		describe: "real multi-core two-phase SpGEMM with per-row accumulator selection (Nagasaka et al.)",
		run: func(a, b *Matrix, o RunOptions) (*Matrix, Report, error) {
			c, st, err := cpuEngine(a, b, func() (*Matrix, error) {
				copts := cpuspgemm.Options{
					Threads: o.Threads, Metrics: o.Metrics, Cancel: o.wallDeadline(),
					Symbolic: o.Symbolic, Estimator: o.Estimator,
				}
				if o.PlanCache != nil {
					return o.PlanCache.multiplyCPU(a, b, copts)
				}
				return cpuspgemm.Multiply(a, b, copts)
			})
			if errors.Is(err, cpuspgemm.ErrCanceled) {
				err = fmt.Errorf("spgemm: cpu engine: %w: %w", ErrDeadline, err)
			}
			return c, st, err
		},
	})
	Register(&engine{
		name:     "cpu-merge",
		describe: "real multi-core SpGEMM with k-way merge accumulation (RMerge family)",
		run: func(a, b *Matrix, o RunOptions) (*Matrix, Report, error) {
			return cpuEngine(a, b, func() (*Matrix, error) {
				defer o.Metrics.StartWall("host", "cpu-merge")()
				return cpuspgemm.MultiplyMerge(a, b, o.Threads)
			})
		},
	})
	Register(&engine{
		name:     "cpu-outer",
		describe: "real multi-core outer-product (column-row) SpGEMM",
		run: func(a, b *Matrix, o RunOptions) (*Matrix, Report, error) {
			return cpuEngine(a, b, func() (*Matrix, error) {
				defer o.Metrics.StartWall("host", "cpu-outer")()
				return cpuspgemm.OuterProduct(a, b, o.Threads)
			})
		},
	})
	Register(&engine{
		name:     "gpu",
		device:   true,
		describe: "out-of-core GPU framework, asynchronous pre-allocated pipeline (paper Section III-B)",
		run: func(a, b *Matrix, o RunOptions) (*Matrix, Report, error) {
			opts, err := o.coreOptions(a, b, true)
			if err != nil {
				return nil, nil, err
			}
			c, st, err := MultiplyOutOfCore(a, b, o.device(), opts)
			if err != nil {
				return nil, nil, err
			}
			return c, st, nil
		},
	})
	Register(&engine{
		name:     "gpu-sync",
		device:   true,
		describe: "out-of-core GPU framework, synchronous baseline (paper Algorithm 3)",
		run: func(a, b *Matrix, o RunOptions) (*Matrix, Report, error) {
			opts, err := o.coreOptions(a, b, false)
			if err != nil {
				return nil, nil, err
			}
			c, st, err := MultiplyOutOfCore(a, b, o.device(), opts)
			if err != nil {
				return nil, nil, err
			}
			return c, st, nil
		},
	})
	Register(&engine{
		name:     "hybrid",
		device:   true,
		describe: "CPU-GPU hybrid with flop-sorted chunk distribution (paper Algorithm 4)",
		run: func(a, b *Matrix, o RunOptions) (*Matrix, Report, error) {
			opts, err := o.coreOptions(a, b, true)
			if err != nil {
				return nil, nil, err
			}
			hopts := HybridOptions{Core: opts, Ratio: o.Ratio, Reorder: true, Metrics: o.Metrics}
			if o.Threads != 0 {
				hopts.Host = hybrid.DefaultHostModel()
				hopts.Host.Threads = o.Threads
			}
			c, st, err := MultiplyHybrid(a, b, o.device(), hopts)
			if err != nil {
				return nil, nil, err
			}
			return c, st, nil
		},
	})
	Register(&engine{
		name:     "multigpu",
		device:   true,
		describe: "LPT-scheduled chunks across several simulated GPUs, optional CPU worker",
		run: func(a, b *Matrix, o RunOptions) (*Matrix, Report, error) {
			opts, err := o.coreOptions(a, b, true)
			if err != nil {
				return nil, nil, err
			}
			mopts := MultiGPUOptions{
				Core: opts, NumGPUs: o.NumGPUs, UseCPU: o.UseCPU,
				Ratio: o.Ratio, Metrics: o.Metrics,
			}
			if o.Threads != 0 {
				mopts.Host = hybrid.DefaultHostModel()
				mopts.Host.Threads = o.Threads
			}
			c, st, err := MultiplyMultiGPU(a, b, o.device(), mopts)
			if err != nil {
				return nil, nil, err
			}
			return c, st, nil
		},
	})
	Register(&engine{
		name:     "summa",
		describe: "2-D sparse SUMMA on a simulated cluster (distributed counterpart, reference [33])",
		run: func(a, b *Matrix, o RunOptions) (*Matrix, Report, error) {
			cfg := o.SUMMA
			cfg.Metrics = o.Metrics
			if cfg.Threads == 0 {
				cfg.Threads = o.Threads
			}
			if cfg.DeadlineSec == 0 {
				cfg.DeadlineSec = o.DeadlineSec
			}
			c, st, err := MultiplySUMMA(a, b, cfg)
			if err != nil {
				return nil, nil, err
			}
			return c, st, nil
		},
	})
	Register(&engine{
		name:     "auto",
		device:   true,
		describe: "out-of-core GPU with automatic chunk-grid planning and refinement",
		run: func(a, b *Matrix, o RunOptions) (*Matrix, Report, error) {
			c, st, err := runAuto(a, b, o.device(), o.Metrics, o.PlanCache, o.Symbolic)
			if err != nil {
				return nil, nil, err
			}
			return c, st, nil
		},
	})
}
