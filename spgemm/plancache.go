package spgemm

import (
	"sync"

	"repro/internal/core"
	"repro/internal/cpuspgemm"
	"repro/internal/csr"
	"repro/internal/metrics"
)

// Fingerprint hashes a matrix's sparsity *structure* (dimensions, row
// offsets, column ids — never the values) into the 64-bit key the plan
// cache and the serving layer's matrix store use. Two matrices with
// the same pattern and different values fingerprint identically.
func Fingerprint(m *Matrix) uint64 { return csr.Fingerprint(m) }

// FingerprintValues hashes a matrix's numeric values (and nothing
// else); together with Fingerprint it content-addresses a matrix.
func FingerprintValues(m *Matrix) uint64 { return csr.FingerprintValues(m) }

// PlanCache is the structure-reuse fast path of the framework: a
// byte-bounded LRU cache of everything a multiply computes that
// depends only on the operands' sparsity patterns, keyed by structural
// fingerprints. One cache serves every engine:
//
//   - For the real-CPU engine it stores cpuspgemm.SymbolicResult (the
//     product's row pointers, column indices and per-row flop counts),
//     so a warm multiply re-runs only the numeric accumulation —
//     byte-identical to the cold path for the Hash and Dense
//     accumulators.
//   - For the device engines (gpu, gpu-sync, hybrid, multigpu) it
//     holds the core.PlanCache: chunk grid partitions, per-chunk flop
//     counts, per-chunk symbolic results and cross-job device
//     residency of input panels.
//   - For the planner it memoizes Plan's chunk-grid choice per
//     (structure pair, device memory), so admission control and warm
//     runs skip the planning scan entirely.
//
// A nil *PlanCache is valid everywhere and disables the fast path;
// every run then behaves byte-identically to a build without it.
// PlanCache is safe for concurrent use.
type PlanCache struct {
	dev *core.PlanCache

	mu      sync.Mutex
	max     int64
	bytes   int64
	entries map[cpuPlanKey]*cpuPlanEntry
	order   []cpuPlanKey // LRU: oldest first
	grids   map[gridKey]gridEntry

	hits, misses, evictions int64
	upgrades                int64
}

type cpuPlanKey struct {
	fpA, fpB          uint64
	rows, aCols, cols int
}

type cpuPlanEntry struct {
	sym   *cpuspgemm.SymbolicResult
	bytes int64
}

type gridKey struct {
	fpA, fpB uint64
	memBytes int64
}

// gridEntry is one memoized chunk grid, tagged with its provenance: a
// grid planned from the estimator may differ from the exact one (the
// estimate over-sizes skewed outputs), so an exact planning pass later
// upgrades the memo in place; an exact grid is never displaced by an
// estimated request.
type gridEntry struct {
	opts      OutOfCoreOptions
	estimated bool
}

// NewPlanCache returns a plan cache bounded to maxBytes of cached
// structure (0 means a default of 256 MiB split between the CPU and
// device halves).
func NewPlanCache(maxBytes int64) *PlanCache {
	if maxBytes <= 0 {
		maxBytes = core.DefaultPlanCacheBytes * 2
	}
	return &PlanCache{
		dev:     core.NewPlanCache(maxBytes / 2),
		max:     maxBytes / 2,
		entries: map[cpuPlanKey]*cpuPlanEntry{},
		grids:   map[gridKey]gridEntry{},
	}
}

// Counters reports the cache's lifetime hits, misses and evictions,
// summed across the CPU and device halves. Grid-plan memoization is
// not counted: hits+misses equals the number of cache-eligible
// multiplies, which is what a serving layer reconciles job counts
// against.
func (p *PlanCache) Counters() (hits, misses, evictions int64) {
	if p == nil {
		return 0, 0, 0
	}
	dh, dm, de := p.dev.Counters()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits + dh, p.misses + dm, p.evictions + de
}

// Len reports the cached plan entries across both halves.
func (p *PlanCache) Len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	n := len(p.entries)
	p.mu.Unlock()
	return n + p.dev.Len()
}

// Invalidate drops every cached plan that references the structural
// fingerprint — CPU symbolic results, device plans, and memoized
// chunk grids — and reports how many entries were removed. Callers
// invalidate when a pattern is retired (e.g. the serving layer's
// matrix store evicting the last matrix with that structure); a
// values-only change keeps the fingerprint and must NOT invalidate.
func (p *PlanCache) Invalidate(fp uint64) int {
	if p == nil {
		return 0
	}
	n := p.dev.Invalidate(fp)
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < len(p.order); {
		key := p.order[i]
		if key.fpA == fp || key.fpB == fp {
			p.dropLocked(i)
			n++
			continue
		}
		i++
	}
	for key := range p.grids {
		if key.fpA == fp || key.fpB == fp {
			delete(p.grids, key)
			n++
		}
	}
	return n
}

// HasPlan reports whether the cache already holds a plan for the
// structure pair (a, b) — a CPU symbolic entry or a device chunk plan
// under any grid. The serving layer's batch planner probes it so plan
// groups whose pattern is already warm skip leader serialization.
func (p *PlanCache) HasPlan(a, b *Matrix) bool {
	if p == nil {
		return false
	}
	return p.HasPlanKey(csr.Fingerprint(a), csr.Fingerprint(b), a.Rows, a.Cols, b.Cols)
}

// HasPlanKey is HasPlan for a caller that already fingerprinted the
// operands (fpA, fpB structural fingerprints; rows×aCols · aCols×cols
// the multiply's dimensions), so the probe costs two map lookups and
// no re-hashing.
func (p *PlanCache) HasPlanKey(fpA, fpB uint64, rows, aCols, cols int) bool {
	if p == nil {
		return false
	}
	key := cpuPlanKey{fpA: fpA, fpB: fpB, rows: rows, aCols: aCols, cols: cols}
	p.mu.Lock()
	_, ok := p.entries[key]
	p.mu.Unlock()
	return ok || p.dev.Has(fpA, fpB)
}

// coreCache exposes the device half for core.Options threading.
func (p *PlanCache) coreCache() *core.PlanCache {
	if p == nil {
		return nil
	}
	return p.dev
}

// multiplyCPU is the cpu engine's cached path: a warm call replays
// only the numeric phase into the cached symbolic structure. The ESC
// accumulator is bypassed (its unstable sort makes cold bits
// unreproducible), so warm output stays byte-identical to cold.
func (p *PlanCache) multiplyCPU(a, b *Matrix, opts cpuspgemm.Options) (*Matrix, error) {
	if opts.Method == cpuspgemm.ESC {
		return cpuspgemm.Multiply(a, b, opts)
	}
	key := cpuPlanKey{
		fpA: csr.Fingerprint(a), fpB: csr.Fingerprint(b),
		rows: a.Rows, aCols: a.Cols, cols: b.Cols,
	}
	if sym := p.acquireCPU(key); sym != nil {
		opts.Metrics.Add(metrics.CounterPlanCacheHits, 1)
		return cpuspgemm.Numeric(sym, a, b, opts)
	}
	opts.Metrics.Add(metrics.CounterPlanCacheMisses, 1)
	c, sym, err := cpuspgemm.MultiplyPlanned(a, b, opts)
	if err != nil {
		return nil, err
	}
	if p.storeCPU(key, sym) {
		opts.Metrics.Add(metrics.CounterPlanCacheUpgrades, 1)
	}
	return c, nil
}

func (p *PlanCache) acquireCPU(key cpuPlanKey) *cpuspgemm.SymbolicResult {
	p.mu.Lock()
	defer p.mu.Unlock()
	ent := p.entries[key]
	if ent == nil {
		p.misses++
		return nil
	}
	p.hits++
	p.touchLocked(key)
	return ent.sym
}

// storeCPU records a cold run's plan. Provenance rules: a first store
// wins against concurrent cold runs on one pattern, except that an
// exact plan upgrades an estimated entry in place (the cached
// structure is exact either way — the upgrade flips the provenance so
// observability and the estimated-vs-exact accounting stay truthful);
// an estimated plan never displaces an exact one. The boolean reports
// whether an upgrade happened.
func (p *PlanCache) storeCPU(key cpuPlanKey, sym *cpuspgemm.SymbolicResult) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ent := p.entries[key]; ent != nil {
		if !ent.sym.Estimated || sym.Estimated {
			return false // concurrent cold runs on one pattern: first store wins
		}
		p.bytes += sym.Bytes() - ent.bytes
		ent.sym = sym
		ent.bytes = sym.Bytes()
		p.upgrades++
		return true
	}
	p.entries[key] = &cpuPlanEntry{sym: sym, bytes: sym.Bytes()}
	p.order = append(p.order, key)
	p.bytes += sym.Bytes()
	for p.bytes > p.max && len(p.order) > 1 {
		p.dropLocked(0)
		p.evictions++
	}
	return false
}

// plan memoizes the chunk-grid planner per structure pair and device
// memory size, so repeated jobs (and the admission controller sizing
// them) pay the planning scan once per pattern. estimated selects the
// sampled-estimator planner (PlanEstimated) over the exact one; a memo
// planned from the estimator satisfies estimated requests but not
// exact ones — an exact request re-plans and upgrades the memo in
// place, and an exact memo serves everyone.
func (p *PlanCache) plan(a, b *Matrix, cfg DeviceConfig, estimated bool) (OutOfCoreOptions, error) {
	key := gridKey{fpA: csr.Fingerprint(a), fpB: csr.Fingerprint(b), memBytes: cfg.MemoryBytes}
	p.mu.Lock()
	if ent, ok := p.grids[key]; ok && (!ent.estimated || estimated) {
		p.mu.Unlock()
		return ent.opts, nil
	}
	p.mu.Unlock()
	var opts OutOfCoreOptions
	var err error
	if estimated {
		opts, err = PlanEstimated(a, b, cfg)
	} else {
		opts, err = Plan(a, b, cfg)
	}
	if err != nil {
		return OutOfCoreOptions{}, err
	}
	p.mu.Lock()
	if cur, ok := p.grids[key]; ok && !cur.estimated {
		// A concurrent exact planning pass won; keep its memo.
		opts = cur.opts
	} else {
		if ok && cur.estimated && !estimated {
			p.upgrades++
		}
		p.grids[key] = gridEntry{opts: opts, estimated: estimated}
	}
	p.mu.Unlock()
	return opts, nil
}

// Upgrades reports how many estimated plans (CPU symbolic entries,
// device chunk plans and grid memos) were upgraded in place by exact
// ones.
func (p *PlanCache) Upgrades() int64 {
	if p == nil {
		return 0
	}
	n := p.dev.Upgrades()
	p.mu.Lock()
	defer p.mu.Unlock()
	return n + p.upgrades
}

func (p *PlanCache) touchLocked(key cpuPlanKey) {
	for i, k := range p.order {
		if k == key {
			p.order = append(append(p.order[:i:i], p.order[i+1:]...), key)
			return
		}
	}
}

func (p *PlanCache) dropLocked(i int) {
	key := p.order[i]
	p.order = append(p.order[:i:i], p.order[i+1:]...)
	if ent := p.entries[key]; ent != nil {
		p.bytes -= ent.bytes
		delete(p.entries, key)
	}
}
