package amg_test

import (
	"fmt"

	"repro/spgemm"
	"repro/spgemm/amg"
)

// ExampleBuild constructs a multigrid hierarchy for a 2-D Laplacian
// and solves a Poisson problem with V-cycles. The Galerkin coarse
// operators are built with SpGEMM.
func ExampleBuild() {
	a := spgemm.Stencil2D(24, 24).Clone()
	a.Data[0] += 1 // pin the singular Neumann operator

	h, _ := amg.Build(a, amg.Options{})
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	_, rel, _, _ := h.Solve(b, 1e-8, 60)
	fmt.Println("levels >= 2:", len(h.Levels) >= 2)
	fmt.Println("converged:", rel < 1e-8)
	// Output:
	// levels >= 2: true
	// converged: true
}
