// Package amg builds algebraic-multigrid hierarchies with SpGEMM and
// solves symmetric positive-definite systems with them.
//
// AMG is the first application the paper's introduction names for
// SpGEMM: every coarse-grid operator is a Galerkin triple product
// A_c = Pᵀ·A·P, i.e. two sparse matrix-matrix multiplications. The
// package uses smoothed aggregation (strength-of-connection graph →
// greedy aggregation → Jacobi-smoothed prolongator) and accepts a
// pluggable Multiplier so the triple products can run on any engine in
// this repository — in particular the out-of-core simulated-GPU
// engine, which is how large hierarchies would be built on a real
// CPU-GPU node.
package amg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cpuspgemm"
	"repro/internal/csr"
)

// Multiplier computes a sparse product C = A·B; the default is the
// multi-core CPU engine.
type Multiplier func(a, b *csr.Matrix) (*csr.Matrix, error)

func defaultMultiplier(a, b *csr.Matrix) (*csr.Matrix, error) {
	return cpuspgemm.Multiply(a, b, cpuspgemm.Options{})
}

// Options configures hierarchy construction.
type Options struct {
	// Theta is the strength-of-connection threshold: j is a strong
	// neighbor of i when |a_ij| >= Theta * sqrt(|a_ii·a_jj|).
	// Zero means 0.08.
	Theta float64
	// JacobiWeight is the prolongator-smoothing damping; zero means
	// 2/3. Negative disables smoothing (plain aggregation).
	JacobiWeight float64
	// CoarsestSize stops coarsening once a level has at most this many
	// unknowns; zero means 64.
	CoarsestSize int
	// MaxLevels bounds the hierarchy depth; zero means 12.
	MaxLevels int
	// Multiply is the SpGEMM engine for the Galerkin products; nil
	// means the multi-core CPU engine.
	Multiply Multiplier
}

func (o Options) withDefaults() Options {
	if o.Theta == 0 {
		o.Theta = 0.08
	}
	if o.JacobiWeight == 0 {
		o.JacobiWeight = 2.0 / 3.0
	}
	if o.CoarsestSize == 0 {
		o.CoarsestSize = 64
	}
	if o.MaxLevels == 0 {
		o.MaxLevels = 12
	}
	if o.Multiply == nil {
		o.Multiply = defaultMultiplier
	}
	return o
}

// Level is one level of the hierarchy.
type Level struct {
	// A is the operator on this level.
	A *csr.Matrix
	// P and R are the prolongation and restriction operators to/from
	// the next coarser level (nil on the coarsest level).
	P, R *csr.Matrix
	// InvDiag caches 1/diag(A) for the Jacobi smoother.
	InvDiag []float64
}

// Hierarchy is a multigrid hierarchy from finest to coarsest.
type Hierarchy struct {
	Levels []Level
	opts   Options
}

// Build constructs a hierarchy for the SPD matrix a.
func Build(a *csr.Matrix, opts Options) (*Hierarchy, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("amg: matrix must be square, got %dx%d", a.Rows, a.Cols)
	}
	opts = opts.withDefaults()
	h := &Hierarchy{opts: opts}
	cur := a
	for len(h.Levels) < opts.MaxLevels-1 && cur.Rows > opts.CoarsestSize {
		agg, numAgg := Aggregate(cur, opts.Theta)
		if numAgg == 0 || numAgg >= cur.Rows {
			break // coarsening stalled
		}
		p, err := Prolongator(cur, agg, numAgg, opts.JacobiWeight)
		if err != nil {
			return nil, err
		}
		r := p.Transpose()
		// Galerkin product A_c = R·(A·P): the SpGEMM workload.
		ap, err := opts.Multiply(cur, p)
		if err != nil {
			return nil, fmt.Errorf("amg: A·P on level %d: %w", len(h.Levels), err)
		}
		ac, err := opts.Multiply(r, ap)
		if err != nil {
			return nil, fmt.Errorf("amg: R·AP on level %d: %w", len(h.Levels), err)
		}
		h.Levels = append(h.Levels, Level{A: cur, P: p, R: r, InvDiag: invDiag(cur)})
		cur = ac
	}
	h.Levels = append(h.Levels, Level{A: cur, InvDiag: invDiag(cur)})
	return h, nil
}

func invDiag(a *csr.Matrix) []float64 {
	d := a.Diagonal()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v != 0 {
			inv[i] = 1 / v
		}
	}
	return inv
}

// Aggregate performs greedy standard aggregation over the strength
// graph: each unaggregated node with all strong neighbors free seeds a
// new aggregate; leftovers join a neighboring aggregate. It returns
// the aggregate id per node (-1 for isolated nodes folded into
// aggregate 0 when present) and the aggregate count.
func Aggregate(a *csr.Matrix, theta float64) ([]int32, int) {
	n := a.Rows
	diag := a.Diagonal()
	strong := func(i int, j int32, v float64) bool {
		if int(j) == i {
			return false
		}
		return math.Abs(v) >= theta*math.Sqrt(math.Abs(diag[i]*diag[j]))
	}

	agg := make([]int32, n)
	for i := range agg {
		agg[i] = -1
	}
	num := int32(0)

	// Pass 1: seed aggregates from nodes whose strong neighborhood is
	// entirely unaggregated.
	for i := 0; i < n; i++ {
		if agg[i] != -1 {
			continue
		}
		cols, vals := a.Row(i)
		free := true
		for k, j := range cols {
			if strong(i, j, vals[k]) && agg[j] != -1 {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		agg[i] = num
		for k, j := range cols {
			if strong(i, j, vals[k]) {
				agg[j] = num
			}
		}
		num++
	}

	// Pass 2: attach leftovers to a strongly connected aggregate.
	for i := 0; i < n; i++ {
		if agg[i] != -1 {
			continue
		}
		cols, vals := a.Row(i)
		for k, j := range cols {
			if strong(i, j, vals[k]) && agg[j] != -1 {
				agg[i] = agg[j]
				break
			}
		}
	}

	// Pass 3: any still-isolated node becomes its own aggregate.
	for i := 0; i < n; i++ {
		if agg[i] == -1 {
			agg[i] = num
			num++
		}
	}
	return agg, int(num)
}

// Prolongator builds the tentative piecewise-constant prolongator from
// an aggregation and smooths it with one damped-Jacobi step
// P = (I - w·D⁻¹A)·T when weight > 0.
func Prolongator(a *csr.Matrix, agg []int32, numAgg int, weight float64) (*csr.Matrix, error) {
	entries := make([]csr.Entry, 0, len(agg))
	for i, g := range agg {
		entries = append(entries, csr.Entry{Row: int32(i), Col: g, Val: 1})
	}
	t, err := csr.FromEntries(a.Rows, numAgg, entries)
	if err != nil {
		return nil, err
	}
	if weight <= 0 {
		return t, nil
	}
	// P = T - w·D⁻¹·(A·T), assembled directly to avoid an extra pass.
	at, err := defaultMultiplier(a, t)
	if err != nil {
		return nil, err
	}
	inv := invDiag(a)
	scaled := at.Clone()
	for r := 0; r < scaled.Rows; r++ {
		lo, hi := scaled.RowOffsets[r], scaled.RowOffsets[r+1]
		for p := lo; p < hi; p++ {
			scaled.Data[p] *= -weight * inv[r]
		}
	}
	return csr.Add(t, scaled)
}

// Jacobi runs iters weighted-Jacobi smoothing steps on A x = b.
func (l *Level) Jacobi(x, b []float64, weight float64, iters int) error {
	n := l.A.Rows
	r := make([]float64, n)
	for it := 0; it < iters; it++ {
		if err := l.A.MulVec(x, r); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			x[i] += weight * l.InvDiag[i] * (b[i] - r[i])
		}
	}
	return nil
}

// VCycle performs one V-cycle on level lev for A x = b.
func (h *Hierarchy) VCycle(lev int, x, b []float64) error {
	l := &h.Levels[lev]
	if lev == len(h.Levels)-1 {
		// Coarsest: many Jacobi sweeps stand in for a direct solve.
		return l.Jacobi(x, b, 0.8, 60)
	}
	if err := l.Jacobi(x, b, 2.0/3.0, 2); err != nil {
		return err
	}
	// Residual restriction.
	n := l.A.Rows
	ax := make([]float64, n)
	if err := l.A.MulVec(x, ax); err != nil {
		return err
	}
	res := make([]float64, n)
	for i := range res {
		res[i] = b[i] - ax[i]
	}
	coarseB := make([]float64, l.R.Rows)
	if err := l.R.MulVec(res, coarseB); err != nil {
		return err
	}
	coarseX := make([]float64, l.R.Rows)
	if err := h.VCycle(lev+1, coarseX, coarseB); err != nil {
		return err
	}
	// Prolongate and correct.
	corr := make([]float64, n)
	if err := l.P.MulVec(coarseX, corr); err != nil {
		return err
	}
	for i := range corr {
		x[i] += corr[i]
	}
	return l.Jacobi(x, b, 2.0/3.0, 2)
}

// Solve runs V-cycles on A x = b until the relative residual drops
// below tol or maxCycles is reached. It returns the solution, the
// final relative residual, and the cycle count.
func (h *Hierarchy) Solve(b []float64, tol float64, maxCycles int) ([]float64, float64, int, error) {
	if len(h.Levels) == 0 {
		return nil, 0, 0, errors.New("amg: empty hierarchy")
	}
	a := h.Levels[0].A
	if len(b) != a.Rows {
		return nil, 0, 0, fmt.Errorf("amg: rhs length %d, want %d", len(b), a.Rows)
	}
	x := make([]float64, a.Rows)
	norm0 := norm2(b)
	if norm0 == 0 {
		return x, 0, 0, nil
	}
	r := make([]float64, a.Rows)
	for cycle := 1; cycle <= maxCycles; cycle++ {
		if err := h.VCycle(0, x, b); err != nil {
			return nil, 0, cycle, err
		}
		if err := a.MulVec(x, r); err != nil {
			return nil, 0, cycle, err
		}
		for i := range r {
			r[i] = b[i] - r[i]
		}
		rel := norm2(r) / norm0
		if rel < tol {
			return x, rel, cycle, nil
		}
	}
	if err := a.MulVec(x, r); err != nil {
		return nil, 0, maxCycles, err
	}
	for i := range r {
		r[i] = b[i] - r[i]
	}
	return x, norm2(r) / norm0, maxCycles, nil
}

// OperatorComplexity is the sum of all levels' nnz over the finest
// level's nnz — the standard AMG grid-quality metric.
func (h *Hierarchy) OperatorComplexity() float64 {
	if len(h.Levels) == 0 {
		return 0
	}
	var total int64
	for _, l := range h.Levels {
		total += l.A.Nnz()
	}
	return float64(total) / float64(h.Levels[0].A.Nnz())
}

func norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
