package amg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/csr"
	"repro/internal/gpusim"
	"repro/internal/matgen"
)

// laplacian2D builds the SPD 5-point Laplacian test problem.
func laplacian2D(gx, gy int) *csr.Matrix {
	return matgen.Stencil2D(gx, gy)
}

func TestAggregateCoversAllNodes(t *testing.T) {
	a := laplacian2D(20, 20)
	agg, num := Aggregate(a, 0.08)
	if num <= 0 || num >= a.Rows {
		t.Fatalf("aggregates = %d of %d nodes", num, a.Rows)
	}
	seen := make([]bool, num)
	for i, g := range agg {
		if g < 0 || int(g) >= num {
			t.Fatalf("node %d has aggregate %d outside [0,%d)", i, g, num)
		}
		seen[g] = true
	}
	for g, ok := range seen {
		if !ok {
			t.Fatalf("aggregate %d empty", g)
		}
	}
	// 5-point stencil aggregation should coarsen by roughly 3-6x.
	ratio := float64(a.Rows) / float64(num)
	if ratio < 2 || ratio > 8 {
		t.Fatalf("coarsening ratio %.1f implausible", ratio)
	}
}

func TestProlongatorColumnsPartition(t *testing.T) {
	a := laplacian2D(12, 12)
	agg, num := Aggregate(a, 0.08)
	// Tentative (unsmoothed) prolongator: exactly one unit entry per row.
	p, err := Prolongator(a, agg, num, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Rows != a.Rows || p.Cols != num {
		t.Fatalf("P dims %dx%d", p.Rows, p.Cols)
	}
	for r := 0; r < p.Rows; r++ {
		cols, vals := p.Row(r)
		if len(cols) != 1 || vals[0] != 1 {
			t.Fatalf("tentative P row %d = %v %v", r, cols, vals)
		}
	}
}

func TestProlongatorSmoothed(t *testing.T) {
	a := laplacian2D(12, 12)
	agg, num := Aggregate(a, 0.08)
	p, err := Prolongator(a, agg, num, 2.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Smoothing widens the stencil: strictly more non-zeros than rows.
	if p.Nnz() <= int64(p.Rows) {
		t.Fatalf("smoothed P has only %d nnz for %d rows", p.Nnz(), p.Rows)
	}
	// Constant-preserving: P·1_c = 1_f (rows sum to 1) wherever A has
	// zero row sums, i.e. at interior grid points (boundary rows of the
	// truncated stencil have non-zero row sums, so the smoothed rows
	// there deviate by design).
	sums := p.RowSums()
	for y := 1; y < 11; y++ {
		for x := 1; x < 11; x++ {
			i := y*12 + x
			if math.Abs(sums[i]-1) > 1e-9 {
				t.Fatalf("interior row %d of smoothed P sums to %v", i, sums[i])
			}
		}
	}
}

func TestBuildHierarchyShape(t *testing.T) {
	a := laplacian2D(40, 40)
	h, err := Build(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Levels) < 2 {
		t.Fatalf("hierarchy has %d levels", len(h.Levels))
	}
	for i := 0; i < len(h.Levels)-1; i++ {
		if h.Levels[i+1].A.Rows >= h.Levels[i].A.Rows {
			t.Fatalf("level %d did not coarsen: %d -> %d", i, h.Levels[i].A.Rows, h.Levels[i+1].A.Rows)
		}
		if h.Levels[i].P == nil || h.Levels[i].R == nil {
			t.Fatalf("level %d missing transfer operators", i)
		}
	}
	last := h.Levels[len(h.Levels)-1]
	if last.P != nil || last.R != nil {
		t.Fatal("coarsest level has transfer operators")
	}
	oc := h.OperatorComplexity()
	if oc < 1 || oc > 3 {
		t.Fatalf("operator complexity %.2f outside [1,3]", oc)
	}
}

func TestGalerkinOperatorSymmetryAndNullSpace(t *testing.T) {
	a := laplacian2D(24, 24)
	h, err := Build(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ac := h.Levels[1].A
	// Symmetry: A_c == A_cᵀ (Galerkin of symmetric A).
	if !csr.Equal(ac, ac.Transpose(), 1e-9) {
		t.Fatal("coarse operator not symmetric")
	}
}

func TestSolvePoisson(t *testing.T) {
	a := laplacian2D(32, 32)
	// Pin the operator (pure Neumann Laplacian is singular): add 1 to
	// the first diagonal entry so the system is SPD.
	aa := a.Clone()
	aa.Data[0] += 1
	h, err := Build(aa, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Manufactured solution.
	rng := rand.New(rand.NewSource(9))
	want := make([]float64, aa.Rows)
	for i := range want {
		want[i] = rng.Float64()
	}
	b := make([]float64, aa.Rows)
	if err := aa.MulVec(want, b); err != nil {
		t.Fatal(err)
	}
	x, rel, cycles, err := h.Solve(b, 1e-8, 60)
	if err != nil {
		t.Fatal(err)
	}
	if rel > 1e-8 {
		t.Fatalf("did not converge: rel residual %.2e after %d cycles", rel, cycles)
	}
	var maxErr float64
	for i := range x {
		if e := math.Abs(x[i] - want[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-5 {
		t.Fatalf("solution error %.2e", maxErr)
	}
	t.Logf("converged in %d V-cycles, %d levels, operator complexity %.2f",
		cycles, len(h.Levels), h.OperatorComplexity())
}

func TestSolveWithOutOfCoreMultiplier(t *testing.T) {
	// The hierarchy's Galerkin products run on the simulated GPU, the
	// way a real CPU-GPU node would build a large hierarchy.
	a := laplacian2D(30, 30)
	aa := a.Clone()
	aa.Data[0] += 1
	cfg := gpusim.ScaledV100Config(8 << 20)
	mult := func(x, y *csr.Matrix) (*csr.Matrix, error) {
		c, _, err := core.Run(x, y, cfg, core.Options{RowPanels: 2, ColPanels: 2, Async: true})
		return c, err
	}
	h, err := Build(aa, Options{Multiply: mult})
	if err != nil {
		t.Fatal(err)
	}
	href, err := Build(aa, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Levels) != len(href.Levels) {
		t.Fatalf("level counts differ: %d vs %d", len(h.Levels), len(href.Levels))
	}
	for i := range h.Levels {
		if !csr.Equal(h.Levels[i].A, href.Levels[i].A, 1e-9) {
			t.Fatalf("level %d operators differ between engines", i)
		}
	}
}

func TestSolveEdgeCases(t *testing.T) {
	a := laplacian2D(8, 8)
	aa := a.Clone()
	aa.Data[0] += 1
	h, err := Build(aa, Options{CoarsestSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Zero rhs: zero solution, zero cycles.
	x, rel, cycles, err := h.Solve(make([]float64, aa.Rows), 1e-10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 0 || rel != 0 {
		t.Fatalf("zero rhs: cycles=%d rel=%v", cycles, rel)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero rhs produced nonzero solution")
		}
	}
	// Wrong rhs length.
	if _, _, _, err := h.Solve(make([]float64, 3), 1e-10, 5); err == nil {
		t.Fatal("expected rhs length error")
	}
	// Non-square matrix.
	if _, err := Build(csr.New(3, 4), Options{}); err == nil {
		t.Fatal("expected non-square error")
	}
}

func TestBuildTinyMatrixSingleLevel(t *testing.T) {
	a := laplacian2D(4, 4) // 16 unknowns < default CoarsestSize
	h, err := Build(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Levels) != 1 {
		t.Fatalf("tiny matrix produced %d levels", len(h.Levels))
	}
}
