package spgemm

import "testing"

// planMargin mirrors Plan's internal memory accounting so the boundary
// tests hit the exact threshold.
func planMargin(a, b *Matrix) (inputs, margin int64) {
	inputs = a.Bytes() + b.Bytes()
	margin = inputs/4 + int64(a.Rows)*24 + (1 << 16)
	return inputs, margin
}

func TestGridForBudgetExceedsMatrix(t *testing.T) {
	// A chunk budget larger than rows x cols must terminate and cap at
	// the full grid, never exceed either dimension.
	cases := []struct{ chunks, rows, cols int }{
		{100, 4, 4},
		{1 << 30, 3, 5},
		{7, 1, 3},
		{7, 3, 1},
		{1, 1, 1},
	}
	for _, c := range cases {
		r, col := gridFor(c.chunks, c.rows, c.cols)
		if r < 1 || col < 1 || r > c.rows || col > c.cols {
			t.Fatalf("gridFor(%d, %d, %d) = %dx%d out of bounds", c.chunks, c.rows, c.cols, r, col)
		}
		if c.chunks >= c.rows*c.cols && r*col != c.rows*c.cols {
			t.Fatalf("gridFor(%d, %d, %d) = %dx%d, want the full %dx%d grid",
				c.chunks, c.rows, c.cols, r, col, c.rows, c.cols)
		}
	}
	// Satisfiable budgets must be met.
	if r, c := gridFor(6, 8, 8); r*c < 6 {
		t.Fatalf("gridFor(6, 8, 8) = %dx%d < 6 chunks", r, c)
	}
}

func TestPlanDegenerateShapes(t *testing.T) {
	// 1 x N times N x 1 and the transposed pair: the planner must
	// produce a legal grid for single-row and single-column operands.
	n := 512
	var rowEntries, colEntries []Entry
	for j := 0; j < n; j++ {
		rowEntries = append(rowEntries, Entry{Row: 0, Col: int32(j), Val: 1})
		colEntries = append(colEntries, Entry{Row: int32(j), Col: 0, Val: 1})
	}
	rowVec, err := FromEntries(1, n, rowEntries)
	if err != nil {
		t.Fatal(err)
	}
	colVec, err := FromEntries(n, 1, colEntries)
	if err != nil {
		t.Fatal(err)
	}
	cfg := V100WithMemory(1 << 20)
	for _, pair := range []struct {
		name string
		a, b *Matrix
	}{
		{"1xN * Nx1", rowVec, colVec},
		{"Nx1 * 1xN", colVec, rowVec},
	} {
		opts, err := Plan(pair.a, pair.b, cfg)
		if err != nil {
			t.Fatalf("%s: %v", pair.name, err)
		}
		if opts.RowPanels < 1 || opts.RowPanels > pair.a.Rows ||
			opts.ColPanels < 1 || opts.ColPanels > pair.b.Cols {
			t.Fatalf("%s: illegal grid %dx%d for %dx%d output",
				pair.name, opts.RowPanels, opts.ColPanels, pair.a.Rows, pair.b.Cols)
		}
		c, _, err := MultiplyOutOfCore(pair.a, pair.b, cfg, opts)
		if err != nil {
			t.Fatalf("%s: %v", pair.name, err)
		}
		ref, err := Multiply(pair.a, pair.b)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(c, ref, 1e-9) {
			t.Fatalf("%s: planned out-of-core product wrong", pair.name)
		}
	}
}

func TestPlanMemoryAtMarginBoundary(t *testing.T) {
	a := Band(256, 4, 3)
	inputs, margin := planMargin(a, a)

	// Exactly inputs + margin leaves zero bytes for chunk outputs: Plan
	// must refuse rather than divide by (or near) zero.
	if _, err := Plan(a, a, V100WithMemory(inputs+margin)); err == nil {
		t.Fatal("Plan accepted a device with zero available output memory")
	}
	// One byte below the boundary must also fail.
	if _, err := Plan(a, a, V100WithMemory(inputs+margin-1)); err == nil {
		t.Fatal("Plan accepted a device below the margin boundary")
	}
	// One byte above: the tightest legal device. The grid is maximally
	// fine but must stay within the output dimensions and still run.
	opts, err := Plan(a, a, V100WithMemory(inputs+margin+1))
	if err != nil {
		t.Fatal(err)
	}
	if opts.RowPanels < 1 || opts.RowPanels > a.Rows || opts.ColPanels < 1 || opts.ColPanels > a.Cols {
		t.Fatalf("illegal grid %dx%d at the margin boundary", opts.RowPanels, opts.ColPanels)
	}
	if opts.RowPanels*opts.ColPanels != a.Rows*a.Cols {
		t.Fatalf("one spare byte should plan the finest grid, got %dx%d", opts.RowPanels, opts.ColPanels)
	}
}
