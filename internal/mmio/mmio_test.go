package mmio

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/csr"
)

func TestReadGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 4 4
1 1 1.5
1 3 -2
2 2 3
3 4 4.25
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if m.Rows != 3 || m.Cols != 4 || m.Nnz() != 4 {
		t.Fatalf("got %dx%d nnz=%d", m.Rows, m.Cols, m.Nnz())
	}
	cols, vals := m.Row(0)
	if cols[0] != 0 || vals[0] != 1.5 || cols[1] != 2 || vals[1] != -2 {
		t.Fatalf("row 0 = %v %v", cols, vals)
	}
}

func TestReadSymmetricExpansion(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 5
2 1 1
3 2 2
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	// Off-diagonals mirrored: nnz = 1 + 2 + 2 = 5.
	if m.Nnz() != 5 {
		t.Fatalf("nnz = %d, want 5", m.Nnz())
	}
	cols, vals := m.Row(0)
	if len(cols) != 2 || cols[1] != 1 || vals[1] != 1 {
		t.Fatalf("row 0 = %v %v; want mirrored (0,1)=1", cols, vals)
	}
}

func TestReadSkewSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	cols, vals := m.Row(0)
	if len(cols) != 1 || cols[0] != 1 || vals[0] != -3 {
		t.Fatalf("row 0 = %v %v; want (0,1)=-3", cols, vals)
	}
}

func TestReadPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	_, vals := m.Row(0)
	if vals[0] != 1 {
		t.Fatalf("pattern value = %v, want 1", vals[0])
	}
}

func TestReadInteger(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate integer general
1 2 1
1 2 7
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	_, vals := m.Row(0)
	if vals[0] != 7 {
		t.Fatalf("integer value = %v, want 7", vals[0])
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad banner":     "%%NotMatrixMarket matrix coordinate real general\n1 1 0\n",
		"array format":   "%%MatrixMarket matrix array real general\n1 1\n",
		"complex field":  "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"bad size":       "%%MatrixMarket matrix coordinate real general\n1 x 1\n1 1 1\n",
		"nnz mismatch":   "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n",
		"out of range":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
		"malformed line": "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",
		"bad value":      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 zzz\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func randomMatrix(rng *rand.Rand, rows, cols int, density float64) *csr.Matrix {
	var es []csr.Entry
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				es = append(es, csr.Entry{Row: int32(r), Col: int32(c), Val: rng.NormFloat64()})
			}
		}
	}
	m, err := csr.FromEntries(rows, cols, es)
	if err != nil {
		panic(err)
	}
	return m
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		m := randomMatrix(rng, 1+rng.Intn(40), 1+rng.Intn(40), 0.15)
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatalf("Write: %v", err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read back: %v", err)
		}
		if !csr.Equal(m, got, 0) {
			t.Fatalf("round trip mismatch: %s", csr.Diff(m, got, 0))
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randomMatrix(rng, 25, 25, 0.2)
	dir := t.TempDir()

	for _, name := range []string{"m.mtx", "m.mtx.gz"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, m); err != nil {
			t.Fatalf("WriteFile(%s): %v", name, err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", name, err)
		}
		if !csr.Equal(m, got, 0) {
			t.Fatalf("%s: file round trip mismatch", name)
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.mtx")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
