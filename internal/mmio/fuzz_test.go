package mmio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/csr"
)

// FuzzRead checks the Matrix Market parser never panics and that any
// matrix it accepts is structurally valid and round-trips.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.5\n",
		"%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 5\n2 1 1\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n",
		"%%MatrixMarket matrix coordinate integer general\n1 2 1\n1 2 7\n",
		"%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 3\n",
		"% comment only\n",
		"%%MatrixMarket matrix coordinate real general\n0 0 0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 nan\n",
		"%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n",
		"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		m, err := Read(strings.NewReader(in))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("accepted invalid matrix: %v\ninput: %q", verr, in)
		}
		// Accepted matrices must round-trip (NaN values break Equal,
		// so compare structure only when values are comparable).
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v\ninput: %q", err, in)
		}
		if back.Rows != m.Rows || back.Cols != m.Cols || back.Nnz() != m.Nnz() {
			t.Fatalf("round trip changed shape: %dx%d/%d vs %dx%d/%d",
				m.Rows, m.Cols, m.Nnz(), back.Rows, back.Cols, back.Nnz())
		}
	})
}

// FuzzFromEntries checks the CSR builder on arbitrary triplets.
func FuzzFromEntries(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(10), uint16(30))
	f.Fuzz(func(t *testing.T, seed int64, rows, cols uint8, count uint16) {
		r := int(rows)%64 + 1
		c := int(cols)%64 + 1
		es := make([]csr.Entry, 0, count%512)
		x := seed
		for i := 0; i < int(count%512); i++ {
			// Cheap deterministic PRNG to map the fuzz input to entries.
			x = x*6364136223846793005 + 1442695040888963407
			es = append(es, csr.Entry{
				Row: int32((x >> 8) & 0x3f % int64(r)),
				Col: int32((x >> 20) & 0x3f % int64(c)),
				Val: float64(int8(x >> 32)),
			})
		}
		m, err := csr.FromEntries(r, c, es)
		if err != nil {
			t.Fatalf("in-range entries rejected: %v", err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("invalid CSR built: %v", err)
		}
	})
}
