// Package mmio reads and writes sparse matrices in the Matrix Market
// exchange format (.mtx), the format the SuiteSparse Matrix Collection
// distributes its matrices in. Coordinate-format real, integer and
// pattern matrices are supported, with general, symmetric and
// skew-symmetric storage. Files compressed with gzip are handled
// transparently by ReadFile/WriteFile when the name ends in ".gz".
package mmio

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/csr"
)

// header describes the banner line of a Matrix Market file.
type header struct {
	object   string // "matrix"
	format   string // "coordinate" or "array"
	field    string // "real", "integer", "pattern", "complex"
	symmetry string // "general", "symmetric", "skew-symmetric", "hermitian"
}

func parseHeader(line string) (header, error) {
	fields := strings.Fields(strings.ToLower(line))
	if len(fields) != 5 || fields[0] != "%%matrixmarket" {
		return header{}, fmt.Errorf("mmio: malformed banner %q", line)
	}
	h := header{object: fields[1], format: fields[2], field: fields[3], symmetry: fields[4]}
	if h.object != "matrix" {
		return h, fmt.Errorf("mmio: unsupported object %q", h.object)
	}
	if h.format != "coordinate" {
		return h, fmt.Errorf("mmio: unsupported format %q (only coordinate)", h.format)
	}
	switch h.field {
	case "real", "integer", "pattern":
	default:
		return h, fmt.Errorf("mmio: unsupported field %q", h.field)
	}
	switch h.symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return h, fmt.Errorf("mmio: unsupported symmetry %q", h.symmetry)
	}
	return h, nil
}

// Read parses a Matrix Market stream into a CSR matrix. Symmetric and
// skew-symmetric storage are expanded to full general form (as SpGEMM
// codes conventionally do before multiplying).
func Read(r io.Reader) (*csr.Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)

	if !sc.Scan() {
		return nil, fmt.Errorf("mmio: empty input: %w", sc.Err())
	}
	h, err := parseHeader(sc.Text())
	if err != nil {
		return nil, err
	}

	// Skip comments, find the size line.
	var rows, cols int
	var declared int64
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("mmio: missing size line: %w", sc.Err())
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("mmio: malformed size line %q", line)
		}
		if rows, err = strconv.Atoi(f[0]); err != nil {
			return nil, fmt.Errorf("mmio: bad row count: %w", err)
		}
		if cols, err = strconv.Atoi(f[1]); err != nil {
			return nil, fmt.Errorf("mmio: bad column count: %w", err)
		}
		if declared, err = strconv.ParseInt(f[2], 10, 64); err != nil {
			return nil, fmt.Errorf("mmio: bad nnz count: %w", err)
		}
		break
	}

	entries := make([]csr.Entry, 0, declared)
	var seen int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		minFields := 3
		if h.field == "pattern" {
			minFields = 2
		}
		if len(f) < minFields {
			return nil, fmt.Errorf("mmio: malformed entry line %q", line)
		}
		ri, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("mmio: bad row index %q: %w", f[0], err)
		}
		ci, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("mmio: bad column index %q: %w", f[1], err)
		}
		v := 1.0
		if h.field != "pattern" {
			if v, err = strconv.ParseFloat(f[2], 64); err != nil {
				return nil, fmt.Errorf("mmio: bad value %q: %w", f[2], err)
			}
		}
		// Matrix Market is 1-based.
		r0, c0 := ri-1, ci-1
		if r0 < 0 || r0 >= rows || c0 < 0 || c0 >= cols {
			return nil, fmt.Errorf("mmio: entry (%d,%d) outside %dx%d", ri, ci, rows, cols)
		}
		entries = append(entries, csr.Entry{Row: int32(r0), Col: int32(c0), Val: v})
		if h.symmetry != "general" && r0 != c0 {
			mv := v
			if h.symmetry == "skew-symmetric" {
				mv = -v
			}
			entries = append(entries, csr.Entry{Row: int32(c0), Col: int32(r0), Val: mv})
		}
		seen++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mmio: read: %w", err)
	}
	if seen != declared {
		return nil, fmt.Errorf("mmio: declared %d entries, found %d", declared, seen)
	}
	return csr.FromEntries(rows, cols, entries)
}

// Write emits the matrix in coordinate real general Matrix Market form.
func Write(w io.Writer, m *csr.Matrix) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.Nnz()); err != nil {
		return err
	}
	for r := 0; r < m.Rows; r++ {
		cols, vals := m.Row(r)
		for i := range cols {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", r+1, cols[i]+1, vals[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadFile reads a .mtx (optionally .mtx.gz) file.
func ReadFile(path string) (*csr.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("mmio: %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	m, err := Read(r)
	if err != nil {
		return nil, fmt.Errorf("mmio: %s: %w", path, err)
	}
	return m, nil
}

// WriteFile writes a .mtx (optionally .mtx.gz) file.
func WriteFile(path string, m *csr.Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		if err := Write(gz, m); err != nil {
			return err
		}
		if err := gz.Close(); err != nil {
			return err
		}
		return f.Close()
	}
	if err := Write(f, m); err != nil {
		return err
	}
	return f.Close()
}
