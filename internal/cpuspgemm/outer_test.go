package cpuspgemm

import (
	"math/rand"
	"testing"

	"repro/internal/csr"
	"repro/internal/matgen"
)

func TestOuterProductMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		a := randomMatrix(rng, 30+rng.Intn(30), 40, 0.12)
		b := randomMatrix(rng, 40, 30+rng.Intn(30), 0.12)
		want, err := Sequential(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, threads := range []int{1, 3} {
			got, err := OuterProduct(a, b, threads)
			if err != nil {
				t.Fatalf("threads=%d: %v", threads, err)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("threads=%d: invalid: %v", threads, err)
			}
			if !csr.Equal(got, want, 1e-12) {
				t.Fatalf("trial %d threads %d: %s", trial, threads, csr.Diff(got, want, 1e-12))
			}
		}
	}
}

func TestOuterProductRMAT(t *testing.T) {
	a := matgen.RMAT(9, 7, 0.57, 0.19, 0.19, 42)
	want, _ := Sequential(a, a)
	got, err := OuterProduct(a, a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !csr.Equal(got, want, 1e-9) {
		t.Fatalf("%s", csr.Diff(got, want, 1e-9))
	}
}

func TestOuterProductEdgeCases(t *testing.T) {
	if _, err := OuterProduct(csr.New(2, 3), csr.New(4, 4), 1); err == nil {
		t.Fatal("expected dimension mismatch")
	}
	empty, err := OuterProduct(csr.New(5, 5), csr.New(5, 5), 2)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Nnz() != 0 {
		t.Fatal("empty product has entries")
	}
	// More threads than rows.
	a := matgen.Band(6, 1, 43)
	want, _ := Sequential(a, a)
	got, err := OuterProduct(a, a, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !csr.Equal(got, want, 1e-12) {
		t.Fatal("mismatch with excess threads")
	}
}

func BenchmarkOuterProductRMAT(b *testing.B) {
	a := matgen.RMAT(11, 8, 0.57, 0.19, 0.19, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OuterProduct(a, a, 0); err != nil {
			b.Fatal(err)
		}
	}
}
