package cpuspgemm

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/csr"
	"repro/internal/matgen"
	"repro/internal/metrics"
	"repro/internal/speck"
)

func requireBitsEqual(t *testing.T, got, want *csr.Matrix, label string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	if !reflect.DeepEqual(got.RowOffsets, want.RowOffsets) {
		t.Fatalf("%s: RowOffsets differ", label)
	}
	if !reflect.DeepEqual(got.ColIDs, want.ColIDs) {
		t.Fatalf("%s: ColIDs differ", label)
	}
	for i := range got.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: Data[%d] bits differ", label, i)
		}
	}
}

// TestEstimatedPropertyBitIdentical is the PR's property test: across
// matrix families, estimator extremes and thread counts, the estimated
// multiply must be byte-identical — structure and values — to the exact
// engine, and its plan must replay identically through Numeric.
func TestEstimatedPropertyBitIdentical(t *testing.T) {
	mats := map[string]*csr.Matrix{
		"rmat":     matgen.RMAT(10, 8, 0.57, 0.19, 0.19, 71),
		"er":       matgen.ER(300, 300, 0.03, 72),
		"band":     matgen.Band(600, 5, 73),
		"diag":     matgen.BlockDiag(20, 8, 74),
		"stencil":  matgen.Stencil2D(24, 24),
		"skewrmat": matgen.RMAT(9, 16, 0.7, 0.12, 0.12, 75),
	}
	cfgs := map[string]speck.EstimatorConfig{
		"default":     {},
		"allFallback": {SpreadGate: -1, ExactBelow: -1},
		"overflowy":   {Safety: 0.01, ExactBelow: -1, SpreadGate: 1e9},
		"tinySample":  {SampleK: 1},
	}
	for mname, a := range mats {
		want, err := Multiply(a, a, Options{Method: Hash})
		if err != nil {
			t.Fatal(err)
		}
		for cname, cfg := range cfgs {
			for _, threads := range []int{1, 4} {
				label := mname + "/" + cname
				c, sym, stats, err := MultiplyEstimated(a, a, Options{Threads: threads, Estimator: cfg})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if err := c.Validate(); err != nil {
					t.Fatalf("%s: invalid product: %v", label, err)
				}
				requireBitsEqual(t, c, want, label)
				if !sym.Estimated {
					t.Fatalf("%s: plan not marked estimated", label)
				}
				if cname == "allFallback" {
					if stats.EstimatedRows != 0 || stats.FallbackRows == 0 {
						t.Fatalf("%s: stats %+v despite forced fallback", label, stats)
					}
				}
				if cname == "overflowy" && mname == "er" && stats.OverflowRows == 0 {
					t.Fatalf("%s: no overflow despite Safety=0.01", label)
				}
				// The estimated plan replays through the warm path.
				warm, err := Numeric(sym, a, a, Options{Threads: threads})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				requireBitsEqual(t, warm, want, label+"/warm")
			}
		}
	}
}

// TestMultiplyModeDispatch checks the mode plumbing on the public
// Multiply entry point: estimate and auto produce the exact product,
// and ESC ignores estimation entirely.
func TestMultiplyModeDispatch(t *testing.T) {
	a := matgen.RMAT(9, 8, 0.57, 0.19, 0.19, 81)
	want, err := Multiply(a, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []speck.Mode{speck.ModeEstimate, speck.ModeAuto} {
		got, err := Multiply(a, a, Options{Symbolic: mode})
		if err != nil {
			t.Fatal(err)
		}
		requireBitsEqual(t, got, want, mode.String())
	}
	// Auto with a huge threshold stays exact; with threshold 1 every
	// multiply estimates. Either way the bits cannot change — this just
	// exercises both branches of useEstimation.
	got, err := Multiply(a, a, Options{
		Symbolic:  speck.ModeAuto,
		Estimator: speck.EstimatorConfig{AutoFlopsMin: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	requireBitsEqual(t, got, want, "auto-low-threshold")
	esc, err := Multiply(a, a, Options{Method: ESC, Symbolic: speck.ModeEstimate})
	if err != nil {
		t.Fatal(err)
	}
	requireBitsEqual(t, esc, want, "esc-ignores-estimation")
}

func TestMultiplyPlannedEstimated(t *testing.T) {
	a := matgen.ER(200, 200, 0.04, 91)
	cExact, symExact, err := MultiplyPlanned(a, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if symExact.Estimated {
		t.Fatal("exact plan marked estimated")
	}
	cEst, symEst, err := MultiplyPlanned(a, a, Options{Symbolic: speck.ModeEstimate})
	if err != nil {
		t.Fatal(err)
	}
	if !symEst.Estimated {
		t.Fatal("estimated plan not marked")
	}
	requireBitsEqual(t, cEst, cExact, "planned")
	if !reflect.DeepEqual(symEst.RowOffsets, symExact.RowOffsets) ||
		!reflect.DeepEqual(symEst.ColIDs, symExact.ColIDs) {
		t.Fatal("estimated plan structure differs from exact")
	}
}

func TestEstimatedCounters(t *testing.T) {
	a := matgen.ER(300, 300, 0.03, 92)
	m := metrics.New()
	_, _, stats, err := MultiplyEstimated(a, a, Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Counters()
	if snap[metrics.CounterSymbolicEstimatedRows] != stats.EstimatedRows {
		t.Fatalf("estimated rows counter %d != stats %d",
			snap[metrics.CounterSymbolicEstimatedRows], stats.EstimatedRows)
	}
	if snap[metrics.CounterSymbolicFallbackRows] != stats.FallbackRows {
		t.Fatalf("fallback rows counter %d != stats %d",
			snap[metrics.CounterSymbolicFallbackRows], stats.FallbackRows)
	}
	if snap[metrics.CounterSymbolicOverflowRows] != stats.OverflowRows {
		t.Fatalf("overflow rows counter %d != stats %d",
			snap[metrics.CounterSymbolicOverflowRows], stats.OverflowRows)
	}
	if stats.EstimatedRows == 0 {
		t.Fatal("default config estimated nothing")
	}
}

func TestEstimatedCancel(t *testing.T) {
	a := matgen.ER(400, 400, 0.05, 93)
	if _, _, _, err := MultiplyEstimated(a, a, Options{Cancel: func() bool { return true }}); err != ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestEstimatedDimensionMismatch(t *testing.T) {
	if _, _, _, err := MultiplyEstimated(csr.New(3, 4), csr.New(5, 3), Options{}); err == nil {
		t.Fatal("expected dimension mismatch")
	}
}

func TestEstimatedEmptyAndIdentity(t *testing.T) {
	empty := csr.New(16, 16)
	c, _, _, err := MultiplyEstimated(empty, empty, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Nnz() != 0 {
		t.Fatalf("empty product nnz %d", c.Nnz())
	}
	ents := make([]csr.Entry, 16)
	for i := range ents {
		ents[i] = csr.Entry{Row: int32(i), Col: int32(i), Val: 1}
	}
	id, err := csr.FromEntries(16, 16, ents)
	if err != nil {
		t.Fatal(err)
	}
	a := matgen.ER(16, 16, 0.3, 94)
	c, _, _, err = MultiplyEstimated(a, id, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireBitsEqual(t, c, a, "identity")
}
