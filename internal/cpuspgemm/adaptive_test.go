package cpuspgemm

import (
	"testing"
	"time"

	"repro/internal/csr"
	"repro/internal/matgen"
	"repro/internal/parallel"
)

// TestAdaptivePropertyBitIdentical is the adaptive exact path's
// property test: across matrix families and thread counts, Multiply
// (per-row adaptive kernels, dynamic scheduling) must be bit-identical
// — structure and values — to MultiplyStatic, the seed's uniform-hash
// static-schedule pipeline kept unchanged as the reference.
func TestAdaptivePropertyBitIdentical(t *testing.T) {
	mats := map[string]*csr.Matrix{
		"rmat":     matgen.RMAT(10, 8, 0.57, 0.19, 0.19, 71),
		"er":       matgen.ER(300, 300, 0.03, 72),
		"band":     matgen.Band(600, 5, 73),
		"diag":     matgen.BlockDiag(20, 8, 74),
		"stencil":  matgen.Stencil2D(24, 24),
		"skewrmat": matgen.RMAT(9, 16, 0.7, 0.12, 0.12, 75),
	}
	for mname, a := range mats {
		want, err := MultiplyStatic(a, a, Options{Method: Hash, Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, threads := range []int{1, 4, 8} {
			got, err := Multiply(a, a, Options{Method: Hash, Threads: threads})
			if err != nil {
				t.Fatalf("%s/threads=%d: %v", mname, threads, err)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("%s/threads=%d: invalid product: %v", mname, threads, err)
			}
			requireBitsEqual(t, got, want, mname)
		}
	}
}

// TestAdaptiveClassStats checks the per-class instrumentation: every
// flop-bearing row lands in exactly one class, and patterns engineered
// for specific kernels actually reach them.
func TestAdaptiveClassStats(t *testing.T) {
	// Hash-class rows (sparse output, low revisit rate) against a
	// clustered B take the compressed-segment kernel: a very sparse ER
	// times a band gives each product row a few 29-column runs — high
	// segment compression, ~2 products per output column.
	n := 1 << 15
	er := matgen.ER(n, n, 3.0/float64(n), 9)
	band := matgen.Band(n, 14, 10)
	var stats ClassStats
	if _, err := Multiply(er, band, Options{Method: Hash, ClassStats: &stats}); err != nil {
		t.Fatal(err)
	}
	var totalRows int64
	for _, c := range stats.Classes {
		totalRows += c.Rows
	}
	if totalRows == 0 || totalRows > int64(er.Rows) {
		t.Fatalf("class rows sum %d outside (0, %d]", totalRows, er.Rows)
	}
	if stats.Classes[kindCSeg].Rows == 0 {
		t.Fatalf("clustered multiply used no cseg rows: %+v", stats)
	}

	// A skewed RMAT square mixes tiny and heavy rows: the list class
	// must see some rows.
	rmat := matgen.RMAT(10, 8, 0.57, 0.19, 0.19, 71)
	stats = ClassStats{}
	if _, err := Multiply(rmat, rmat, Options{Method: Hash, ClassStats: &stats}); err != nil {
		t.Fatal(err)
	}
	if stats.Classes[kindList].Rows == 0 {
		t.Fatalf("rmat multiply used no list rows: %+v", stats)
	}
	if names := stats.Names(); names[kindCSeg] != "cseg" || names[kindList] != "list" {
		t.Fatalf("class names = %v", names)
	}
}

// TestAdaptiveChunkLogAndWorkers checks the scheduled-speedup plumbing:
// ChunkWorkers cuts N-worker granularity while running serially, every
// row appears in exactly one chunk per phase, and the logged durations
// replay through ListSchedule to a sane makespan.
func TestAdaptiveChunkLogAndWorkers(t *testing.T) {
	a := matgen.RMAT(10, 8, 0.57, 0.19, 0.19, 71)
	var log ChunkLog
	if _, err := Multiply(a, a, Options{Method: Hash, Threads: 1, ChunkWorkers: 4, ChunkLog: &log}); err != nil {
		t.Fatal(err)
	}
	for phase, spans := range map[string][]ChunkSpan{"symbolic": log.Symbolic, "numeric": log.Numeric} {
		if len(spans) < 4 {
			t.Fatalf("%s: only %d chunks logged with ChunkWorkers=4", phase, len(spans))
		}
		covered := make([]int, a.Rows)
		durations := make([]float64, 0, len(spans))
		for _, s := range spans {
			if s.Seconds < 0 {
				t.Fatalf("%s: negative duration %v", phase, s.Seconds)
			}
			durations = append(durations, s.Seconds)
			for i := s.Lo; i < s.Hi; i++ {
				covered[i]++
			}
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("%s: row %d covered %d times", phase, i, c)
			}
		}
		var sum float64
		for _, d := range durations {
			sum += d
		}
		if mk := parallel.ListSchedule(durations, 4); mk > sum || mk < sum/4 {
			t.Fatalf("%s: makespan %v outside [sum/4, sum] = [%v, %v]", phase, mk, sum/4, sum)
		}
	}
}

// TestAdaptiveCancel checks cancellation still propagates through the
// adaptive pipeline.
func TestAdaptiveCancel(t *testing.T) {
	a := matgen.RMAT(9, 8, 0.57, 0.19, 0.19, 13)
	_, err := Multiply(a, a, Options{Method: Hash, Threads: 2, Cancel: func() bool { return true }})
	if err != ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestDynamicNeverLosesToStatic is the regression test for the
// speedup_hash_vs_static < 1 finding this PR fixes: the dynamic
// scheduler's only per-chunk overhead is now the atomic claim (see the
// oversample comment in internal/parallel), so Multiply must not lose
// measurably to the static-schedule MultiplyStatic ablation. Timing
// on shared CI hosts is noisy, so it takes the best of 5 runs per
// engine and allows a 1.25x band before failing.
func TestDynamicNeverLosesToStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	a := matgen.RMAT(11, 8, 0.57, 0.19, 0.19, 29)
	best := func(fn func() error) float64 {
		b := 1e18
		for rep := 0; rep < 5; rep++ {
			t0 := time.Now()
			if err := fn(); err != nil {
				t.Fatal(err)
			}
			if s := time.Since(t0).Seconds(); s < b {
				b = s
			}
		}
		return b
	}
	dyn := best(func() error {
		_, err := Multiply(a, a, Options{Method: Hash, Threads: 2})
		return err
	})
	static := best(func() error {
		_, err := MultiplyStatic(a, a, Options{Method: Hash, Threads: 2})
		return err
	})
	ratio := dyn / static
	t.Logf("dynamic %.4fs static %.4fs ratio %.3f", dyn, static, ratio)
	if ratio > 1.25 {
		t.Fatalf("dynamic scheduler lost to static ablation: ratio %.3f > 1.25", ratio)
	}
}
