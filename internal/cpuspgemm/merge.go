package cpuspgemm

import (
	"container/heap"

	"repro/internal/csr"
	"repro/internal/parallel"
)

// Merge-based accumulation, the third family of the paper's related
// work (RMerge [16], Gremse et al. [17], bhSPARSE [24]): each output
// row is the k-way merge of the (sorted) B rows selected by the A row,
// so no hash table or dense array is needed — colliding columns meet
// at the head of a heap. Cost is O(flops·log k) comparisons.

// mergeCursor walks one scaled B row.
type mergeCursor struct {
	cols  []int32
	vals  []float64
	scale float64
	pos   int
}

type mergeHeap []mergeCursor

func (h mergeHeap) Len() int           { return len(h) }
func (h mergeHeap) Less(i, j int) bool { return h[i].cols[h[i].pos] < h[j].cols[h[j].pos] }
func (h mergeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)        { *h = append(*h, x.(mergeCursor)) }
func (h *mergeHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// mergeRow merges the B rows selected by row i of A. When cols/vals
// are nil it only counts distinct columns (the symbolic phase);
// otherwise it appends the merged row and returns the slices.
func mergeRow(a, b *csr.Matrix, i int, cols []int32, vals []float64) (int, []int32, []float64) {
	ac, av := a.Row(i)
	h := make(mergeHeap, 0, len(ac))
	for p := range ac {
		bc, bv := b.Row(int(ac[p]))
		if len(bc) > 0 {
			h = append(h, mergeCursor{cols: bc, vals: bv, scale: av[p]})
		}
	}
	heap.Init(&h)

	count := 0
	numeric := cols != nil
	for h.Len() > 0 {
		col := h[0].cols[h[0].pos]
		var sum float64
		for h.Len() > 0 && h[0].cols[h[0].pos] == col {
			if numeric {
				sum += h[0].scale * h[0].vals[h[0].pos]
			}
			h[0].pos++
			if h[0].pos == len(h[0].cols) {
				heap.Pop(&h)
			} else {
				heap.Fix(&h, 0)
			}
		}
		count++
		if numeric {
			cols = append(cols, col)
			vals = append(vals, sum)
		}
	}
	return count, cols, vals
}

// MultiplyMerge computes C = A·B with merge-based accumulation,
// two-phase like the other engines, on the same work-stealing runtime:
// cost-tuned chunks are claimed dynamically in both phases.
func MultiplyMerge(a, b *csr.Matrix, threads int) (*csr.Matrix, error) {
	if a.Cols != b.Rows {
		return nil, errDims(a, b)
	}
	nt := parallel.Workers(threads)
	rowFlops := csr.RowFlops(a, b)
	bounds := parallel.CostBounds(rowFlops, nt)

	c := &csr.Matrix{Rows: a.Rows, Cols: b.Cols, RowOffsets: make([]int64, a.Rows+1)}
	rowNnz := make([]int64, a.Rows)
	parallel.ForChunks(nt, bounds, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			n, _, _ := mergeRow(a, b, i, nil, nil)
			rowNnz[i] = int64(n)
		}
	})
	parallel.PrefixSum(nt, c.RowOffsets, rowNnz)
	nnz := c.RowOffsets[a.Rows]
	c.ColIDs = make([]int32, nnz)
	c.Data = make([]float64, nnz)
	parallel.ForChunks(nt, bounds, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			off, end := c.RowOffsets[i], c.RowOffsets[i+1]
			mergeRow(a, b, i, c.ColIDs[off:off:end], c.Data[off:off:end])
		}
	})
	return c, nil
}
