package cpuspgemm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/accum"
	"repro/internal/csr"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/speck"
)

// The exact-path adaptive kernel layer. The seed's exact pipeline ran
// every row of a chunk through one accumulator sized to the chunk's
// worst-case row — a hub row inflated its whole chunk's hash table,
// and uniformly tiny rows still paid full hash probes. This file
// instead bins every row through speck.PickClass (the same work-class
// selection the estimation path uses) and sizes each row's accumulator
// from its own bound: list scans for tiny rows, bitmap-dense scatter
// for dense rows in narrow panels, the CSeg-style compressed segment
// accumulator when B's pattern clusters or the panel is too wide for a
// bitmap, and a per-row-presized hash for the sparse remainder. The
// symbolic phase additionally consumes B in segment-compressed form
// (csr.Segments): one word-OR per segment instead of one probe per
// column. Every class accumulates same-column products in first-touch
// arrival order and flushes sorted, so the product is bit-for-bit the
// one the seed path produced.

const (
	// bitmapDirectMax is the widest B panel served by the direct Bitmap
	// accumulator; beyond it the width-proportional flush scan and reset
	// stop amortizing and dense-class rows fall through to CSeg, whose
	// cost tracks touched segments instead of panel width.
	bitmapDirectMax = 1 << 16
	// csegSymbolicRatio is the minimum B segment-compression ratio at
	// which hash-class rows run their symbolic pass on the compressed
	// accumulator: below it a segment rarely covers more than one
	// column, so the per-segment probe saves nothing over the hash.
	csegSymbolicRatio = 1.5
	// csegNumericRatio is the (stricter) ratio at which hash-class rows
	// also run their numeric pass on CSeg. The numeric pass touches
	// every product regardless, so the win is only the smaller, hotter
	// segment table; it needs real clustering to beat the presized hash.
	csegNumericRatio = 4.0
	// compressMinFlopsPerNnz gates the O(nnz(B)) segment-compression
	// pass: multiplies doing fewer than this many flops per B non-zero
	// cannot amortize building the compressed form. The pass itself is
	// one shift/OR per non-zero, and a clustered symbolic phase saves
	// roughly one probe per product (flops/2), so it breaks even near
	// flops ≈ nnz(B); 2 leaves margin for the unclustered worst case.
	compressMinFlopsPerNnz = 2
)

// kernelKind names the accumulator actually used for a row — the three
// speck work classes, with the compressed accumulator split out so the
// benchmark can report it separately.
type kernelKind uint8

const (
	kindList kernelKind = iota
	kindHash
	kindDense
	kindCSeg
	numKinds
)

var kindNames = [numKinds]string{"list", "hash", "dense", "cseg"}

// String names the kind as the benchmark reports it.
func (k kernelKind) String() string { return kindNames[k] }

// ClassStat aggregates one kernel class's share of a multiply.
type ClassStat struct {
	Rows, Flops, Nnz      int64
	SymbolicNs, NumericNs int64
}

// ClassStats is the per-class breakdown of an adaptive multiply,
// accumulated atomically across workers when Options.ClassStats is
// set. The per-phase nanoseconds are measured per row (two clock reads
// per row per phase), so attach it only to instrumented runs — the
// benchmark uses a dedicated pass, never the timed reps.
type ClassStats struct {
	Classes [numKinds]ClassStat
}

// Names returns the class names in Classes order.
func (s *ClassStats) Names() [numKinds]string { return kindNames }

func (s *ClassStats) add(k kernelKind, rows, flops, nnz, symNs, numNs int64) {
	c := &s.Classes[k]
	atomic.AddInt64(&c.Rows, rows)
	atomic.AddInt64(&c.Flops, flops)
	atomic.AddInt64(&c.Nnz, nnz)
	atomic.AddInt64(&c.SymbolicNs, symNs)
	atomic.AddInt64(&c.NumericNs, numNs)
}

// ChunkSpan is one dynamically claimed chunk's measured execution.
type ChunkSpan struct {
	Lo, Hi  int
	Seconds float64
}

// ChunkLog records per-chunk wall durations of the two exact phases
// when attached via Options.ChunkLog. The benchmark replays these
// measured durations through parallel.ListSchedule to report the
// scheduled speedup at thread counts the machine cannot physically
// host (see BENCH_cpu.json's thread_scaling).
type ChunkLog struct {
	mu       sync.Mutex
	Symbolic []ChunkSpan
	Numeric  []ChunkSpan
}

func (l *ChunkLog) record(symbolic bool, lo, hi int, sec float64) {
	l.mu.Lock()
	if symbolic {
		l.Symbolic = append(l.Symbolic, ChunkSpan{lo, hi, sec})
	} else {
		l.Numeric = append(l.Numeric, ChunkSpan{lo, hi, sec})
	}
	l.mu.Unlock()
}

// forChunksLogged is ForChunksW with optional per-chunk wall timing
// recorded into log (symbolic selects which phase list receives it).
func forChunksLogged(nt int, bounds []int, log *ChunkLog, symbolic bool, fn func(w, lo, hi int)) {
	body := fn
	if log != nil {
		body = func(w, lo, hi int) {
			t0 := time.Now()
			fn(w, lo, hi)
			log.record(symbolic, lo, hi, time.Since(t0).Seconds())
		}
	}
	parallel.ForChunksW(nt, bounds, body)
}

// workerKit is one worker's lazily pooled accumulator set, fetched at
// most once per accumulator class per phase and reused across every
// chunk the worker claims — per-chunk pool traffic was one of the
// costs that let the static ablation beat the dynamic scheduler.
type workerKit struct {
	list  *accum.List
	hash  *accum.Hash
	dense *accum.Bitmap
	cseg  *accum.CSeg
}

func (k *workerKit) release() {
	if k.list != nil {
		accum.PutList(k.list)
	}
	if k.hash != nil {
		accum.PutHash(k.hash)
	}
	if k.dense != nil {
		accum.PutBitmap(k.dense)
	}
	if k.cseg != nil {
		accum.PutCSeg(k.cseg)
	}
	*k = workerKit{}
}

// get returns the worker's accumulator for kind, sized for a row with
// at most bound distinct output columns in a width-column panel. bound
// must be the row's own bound (upper bound in the symbolic phase, the
// exact count in the numeric phase) — never a chunk-wide maximum.
func (k *workerKit) get(kind kernelKind, bound int64, width int) accum.Accumulator {
	switch kind {
	case kindList:
		if k.list == nil {
			k.list = accum.GetList(speck.ListClassMax)
		}
		return k.list
	case kindDense:
		if k.dense == nil {
			k.dense = accum.GetBitmap(width)
		}
		return k.dense
	case kindCSeg:
		if k.cseg == nil {
			k.cseg = accum.GetCSeg(16)
		}
		segBound := bound
		if w := int64(width+63) / 64; segBound > w {
			segBound = w
		}
		k.cseg.Grow(int(segBound))
		return k.cseg
	default:
		if k.hash == nil {
			k.hash = accum.GetHash(16)
		}
		if bound > int64(width) {
			bound = int64(width)
		}
		if bound < 16 {
			bound = 16
		}
		k.hash.Grow(int(bound))
		return k.hash
	}
}

// pickKind maps a row's speck work class to the kernel that serves it,
// given the panel width and B's segment-compression ratio. numeric
// selects the stricter compression threshold (see csegNumericRatio).
func pickKind(rowFlops, estNnz, width int64, segRatio float64, numeric bool) kernelKind {
	switch speck.PickClass(rowFlops, estNnz, width) {
	case speck.ListClass:
		return kindList
	case speck.DenseClass:
		if width <= bitmapDirectMax {
			return kindDense
		}
		return kindCSeg
	default:
		gate := csegSymbolicRatio
		if numeric {
			gate = csegNumericRatio
		}
		if segRatio >= gate {
			return kindCSeg
		}
		return kindHash
	}
}

// multiplyAdaptive is the exact two-phase pipeline with per-row
// adaptive kernel selection — the Hash method's implementation behind
// Multiply. rowFlops, when non-nil, is the precomputed row analysis.
func multiplyAdaptive(a, b *csr.Matrix, opts Options, rowFlops []int64) (*csr.Matrix, error) {
	nt := opts.threads()
	chunkNT := nt
	if opts.ChunkWorkers > 0 {
		chunkNT = opts.ChunkWorkers
	}

	stopAnalysis := opts.Metrics.StartWall("cpu", "row analysis")
	if rowFlops == nil {
		rowFlops = csr.RowFlops(a, b)
	}
	var totalFlops int64
	for _, f := range rowFlops {
		totalFlops += f
	}
	bounds := parallel.CostBounds(rowFlops, chunkNT)

	// Segment-compress B once when the multiply can amortize the
	// O(nnz(B)) pass; the symbolic phase then does one word-OR per
	// segment instead of one accumulator update per column.
	var segs *csr.Segments
	segRatio := 1.0
	if nnzB := int64(len(b.ColIDs)); nnzB > 0 && totalFlops >= compressMinFlopsPerNnz*nnzB {
		segs = csr.Compress(b)
		segRatio = segs.Ratio()
	}
	width := int64(b.Cols)
	// Expected output sizes drive the symbolic-phase class binning
	// (the numeric phase re-bins from the exact counts).
	estNnz := make([]int64, a.Rows)
	for i := range rowFlops {
		estNnz[i] = speck.ExpectedDistinct(width, rowFlops[i]/2)
	}
	stopAnalysis()

	var poolGets0, poolNews0 int64
	if opts.Metrics.Enabled() {
		poolGets0, poolNews0 = accum.PoolCounters()
	}

	c := &csr.Matrix{Rows: a.Rows, Cols: b.Cols, RowOffsets: make([]int64, a.Rows+1)}
	rowNnz := make([]int64, a.Rows)
	var werr firstErr
	kits := make([]workerKit, parallel.Workers(nt))

	// Symbolic phase: count distinct columns per output row, each row
	// on the kernel its class picks, consuming compressed B rows where
	// the kernel supports the segment OR.
	stopSymbolic := opts.Metrics.StartWall("cpu", "symbolic")
	forChunksLogged(nt, bounds, opts.ChunkLog, true, func(w, lo, hi int) {
		if werr.get() != nil {
			return
		}
		if opts.canceled() {
			werr.set(ErrCanceled)
			return
		}
		kit := &kits[w]
		t0 := time.Now()
		var classNs [numKinds]int64
		var classRows, classFlops [numKinds]int64
		for i := lo; i < hi; i++ {
			if rowFlops[i] == 0 {
				continue
			}
			kind := pickKind(rowFlops[i], estNnz[i], width, segRatio, false)
			acc := kit.get(kind, rowFlops[i]/2, b.Cols)
			ac, _ := a.Row(i)
			switch acc := acc.(type) {
			case *accum.Bitmap:
				if segs != nil {
					for _, k := range ac {
						sids, masks := segs.Row(int(k))
						for j, sid := range sids {
							acc.AddSegment(sid, masks[j])
						}
					}
				} else {
					addSymbolicCols(acc, a, b, ac)
				}
			case *accum.CSeg:
				if segs != nil {
					for _, k := range ac {
						sids, masks := segs.Row(int(k))
						for j, sid := range sids {
							acc.AddSegment(sid, masks[j])
						}
					}
				} else {
					addSymbolicCols(acc, a, b, ac)
				}
			default:
				addSymbolicCols(acc, a, b, ac)
			}
			rowNnz[i] = int64(acc.FlushSymbolic())
			if opts.ClassStats != nil {
				t1 := time.Now()
				classNs[kind] += t1.Sub(t0).Nanoseconds()
				t0 = t1
				classRows[kind]++
				classFlops[kind] += rowFlops[i]
			}
		}
		if opts.ClassStats != nil {
			for k := kernelKind(0); k < numKinds; k++ {
				if classRows[k] != 0 || classNs[k] != 0 {
					opts.ClassStats.add(k, classRows[k], classFlops[k], 0, classNs[k], 0)
				}
			}
		}
	})
	stopSymbolic()
	if err := werr.get(); err != nil {
		releaseKits(kits)
		return nil, err
	}

	// Prefix sum gives the final row offsets; allocation is now exact.
	parallel.PrefixSum(nt, c.RowOffsets, rowNnz)
	nnz := c.RowOffsets[a.Rows]
	c.ColIDs = make([]int32, nnz)
	c.Data = make([]float64, nnz)

	// Numeric phase: recompute with values, each row re-binned from its
	// now-exact output size and its accumulator sized to exactly that.
	stopNumeric := opts.Metrics.StartWall("cpu", "numeric")
	forChunksLogged(nt, bounds, opts.ChunkLog, false, func(w, lo, hi int) {
		if werr.get() != nil {
			return
		}
		if opts.canceled() {
			werr.set(ErrCanceled)
			return
		}
		kit := &kits[w]
		t0 := time.Now()
		var classNs [numKinds]int64
		var classRows, classNnz [numKinds]int64
		for i := lo; i < hi; i++ {
			if rowFlops[i] == 0 {
				continue
			}
			kind := pickKind(rowFlops[i], rowNnz[i], width, segRatio, true)
			acc := kit.get(kind, rowNnz[i], b.Cols)
			ac, av := a.Row(i)
			for p := range ac {
				bc, bv := b.Row(int(ac[p]))
				for q := range bc {
					acc.Add(bc[q], av[p]*bv[q])
				}
			}
			if int64(acc.Len()) != rowNnz[i] {
				// Non-finite or NaN inputs can legitimately collapse
				// accumulator slots between phases, so a mismatch is a
				// data-dependent failure, not an invariant worth dying on.
				werr.set(fmt.Errorf("cpuspgemm: row %d numeric nnz %d != symbolic %d", i, acc.Len(), rowNnz[i]))
				return
			}
			off, end := c.RowOffsets[i], c.RowOffsets[i+1]
			acc.Flush(c.ColIDs[off:off:end], c.Data[off:off:end])
			if opts.ClassStats != nil {
				t1 := time.Now()
				classNs[kind] += t1.Sub(t0).Nanoseconds()
				t0 = t1
				classRows[kind]++
				classNnz[kind] += rowNnz[i]
			}
		}
		if opts.ClassStats != nil {
			for k := kernelKind(0); k < numKinds; k++ {
				if classRows[k] != 0 || classNs[k] != 0 {
					opts.ClassStats.add(k, 0, 0, classNnz[k], 0, classNs[k])
				}
			}
		}
	})
	stopNumeric()
	releaseKits(kits)
	if err := werr.get(); err != nil {
		return nil, err
	}
	if m := opts.Metrics; m.Enabled() {
		gets, news := accum.PoolCounters()
		m.Add(metrics.CounterPoolGets, gets-poolGets0)
		m.Add(metrics.CounterPoolNews, news-poolNews0)
		m.Add(metrics.CounterFlops, totalFlops)
		m.Add(metrics.CounterRows, int64(a.Rows))
		m.Add(metrics.CounterNnzC, nnz)
	}
	return c, nil
}

// addSymbolicCols runs the uncompressed symbolic inner loop for one A
// row: every contributing B column hits the accumulator once.
func addSymbolicCols(acc accum.Accumulator, a, b *csr.Matrix, ac []int32) {
	for _, k := range ac {
		bc, _ := b.Row(int(k))
		for _, col := range bc {
			acc.AddSymbolic(col)
		}
	}
}

func releaseKits(kits []workerKit) {
	for i := range kits {
		kits[i].release()
	}
}
