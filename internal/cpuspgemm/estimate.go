package cpuspgemm

import (
	"sync"

	"repro/internal/accum"
	"repro/internal/csr"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/speck"
)

// MultiplyEstimated computes C = A·B with the estimation-based
// symbolic elision (Ocean-style) and adaptive per-row accumulator
// selection (ApSpGEMM-style), unconditionally — the mode dispatch in
// Multiply/MultiplyPlanned is bypassed so tests and benchmarks can
// force the path. The pipeline replaces the exact symbolic phase with:
//
//  1. the sampled row-nnz estimator (exact symbolic counting only for
//     rows the confidence gate rejects),
//  2. one adaptive numeric pass into over-allocated per-row buffers,
//     each row's accumulator picked from its estimate (list for tiny
//     rows, bitmap-dense — whose flush is sorted for free — for rows
//     dense enough to amortize its bit scan, hash pre-sized from the
//     estimate otherwise); estimated rows that outgrow their buffer
//     spill to a side store,
//  3. a parallel compaction copying the exact rows into a tight CSR.
//
// Every accumulator class sums same-column products in first-touch
// arrival order and flushes sorted, so the product is bit-for-bit
// identical to the exact Hash/Dense paths and to the warm Numeric
// replay. The returned SymbolicResult is marked Estimated; an exact
// plan for the same pattern upgrades it in the plan caches.
func MultiplyEstimated(a, b *csr.Matrix, opts Options) (*csr.Matrix, *SymbolicResult, speck.EstStats, error) {
	if a.Cols != b.Rows {
		return nil, nil, speck.EstStats{}, errDims(a, b)
	}
	return estimatedMultiply(a, b, opts, nil)
}

func estimatedMultiply(a, b *csr.Matrix, opts Options, rowFlops []int64) (*csr.Matrix, *SymbolicResult, speck.EstStats, error) {
	nt := opts.threads()
	cfg := opts.Estimator.WithDefaults()
	var stats speck.EstStats

	stopAnalysis := opts.Metrics.StartWall("cpu", "row analysis")
	if rowFlops == nil {
		rowFlops = csr.RowFlops(a, b)
	}
	ub := make([]int64, len(rowFlops))
	for i, f := range rowFlops {
		ub[i] = f / 2
	}
	bounds := parallel.CostBounds(rowFlops, nt)
	stopAnalysis()

	var poolGets0, poolNews0 int64
	if opts.Metrics.Enabled() {
		poolGets0, poolNews0 = accum.PoolCounters()
	}

	stopEstimate := opts.Metrics.StartWall("cpu", "estimate")
	est := speck.EstimateRows(a, b, ub, cfg)
	stopEstimate()
	stats.EstimatedRows, stats.FallbackRows = est.EstimatedRows, est.FallbackRows

	var werr firstErr
	// One accumulator set per worker, reused across every chunk the
	// worker claims in both the fallback and numeric loops — per-chunk
	// pool round-trips were part of what kept the dynamic scheduler
	// from beating the static split (see parallel.ForChunksW).
	kits := make([]workerKit, parallel.Workers(nt))
	defer releaseKits(kits)

	// Exact symbolic counting, but only for the rows the confidence
	// gate rejected — the elision's whole point is that this loop
	// usually touches almost nothing.
	if est.FallbackRows > 0 {
		stopFallback := opts.Metrics.StartWall("cpu", "symbolic (fallback)")
		parallel.ForChunksW(nt, bounds, func(w, lo, hi int) {
			if werr.get() != nil {
				return
			}
			if opts.canceled() {
				werr.set(ErrCanceled)
				return
			}
			for i := lo; i < hi; i++ {
				if !est.Fallback[i] {
					continue
				}
				acc := kits[w].get(kindHash, ub[i], b.Cols)
				ac, _ := a.Row(i)
				for _, k := range ac {
					bc, _ := b.Row(int(k))
					for _, col := range bc {
						acc.AddSymbolic(col)
					}
				}
				est.Caps[i] = int64(acc.FlushSymbolic())
			}
		})
		stopFallback()
		if err := werr.get(); err != nil {
			return nil, nil, stats, err
		}
	}

	// Over-allocated layout: each row gets its estimated (or exactly
	// counted) capacity; the numeric pass writes rows in place at these
	// speculative offsets and compaction squeezes the slack out.
	capOffsets := make([]int64, a.Rows+1)
	parallel.PrefixSum(nt, capOffsets, est.Caps)
	total := capOffsets[a.Rows]
	bigCols := make([]int32, total)
	bigVals := make([]float64, total)
	rowNnz := make([]int64, a.Rows)

	// Spill store for estimated rows that outgrow their buffer. Rare by
	// construction (the safety factor plus the upper-bound clamp), so a
	// mutex-guarded map beats complicating the hot path.
	var ovMu sync.Mutex
	ovCols := map[int][]int32{}
	ovVals := map[int][]float64{}
	var overflow int64

	// Per-worker spill scratch, reused across chunks like the kits.
	spillC := make([][]int32, len(kits))
	spillV := make([][]float64, len(kits))

	width := int64(b.Cols)
	stopNumeric := opts.Metrics.StartWall("cpu", "numeric (estimated)")
	parallel.ForChunksW(nt, bounds, func(w, lo, hi int) {
		if werr.get() != nil {
			return
		}
		if opts.canceled() {
			werr.set(ErrCanceled)
			return
		}
		kit := &kits[w]
		for i := lo; i < hi; i++ {
			if ub[i] == 0 {
				continue
			}
			estN := est.Est[i]
			if est.Fallback[i] {
				estN = est.Caps[i] // exact count: the best class signal there is
			}
			var acc accum.Accumulator
			switch speck.PickClass(rowFlops[i], estN, width) {
			case speck.ListClass:
				acc = kit.get(kindList, estN, b.Cols)
			case speck.DenseClass:
				acc = kit.get(kindDense, estN, b.Cols)
			default:
				acc = kit.get(kindHash, est.Caps[i], b.Cols)
			}
			ac, av := a.Row(i)
			for p := range ac {
				bc, bv := b.Row(int(ac[p]))
				for q := range bc {
					acc.Add(bc[q], av[p]*bv[q])
				}
			}
			n := int64(acc.Len())
			rowNnz[i] = n
			if n <= est.Caps[i] {
				off := capOffsets[i]
				acc.Flush(bigCols[off:off:off+n], bigVals[off:off:off+n])
			} else {
				spillC[w], spillV[w] = acc.Flush(spillC[w][:0], spillV[w][:0])
				cc := append([]int32(nil), spillC[w]...)
				vv := append([]float64(nil), spillV[w]...)
				ovMu.Lock()
				ovCols[i] = cc
				ovVals[i] = vv
				overflow++
				ovMu.Unlock()
			}
		}
	})
	stopNumeric()
	if err := werr.get(); err != nil {
		return nil, nil, stats, err
	}
	stats.OverflowRows = overflow

	// Compaction: exact offsets from the observed row sizes, then a
	// parallel copy from the speculative layout (or the spill store —
	// read-only by now, so no lock) into the tight CSR.
	stopCompact := opts.Metrics.StartWall("cpu", "compact")
	c := &csr.Matrix{Rows: a.Rows, Cols: b.Cols, RowOffsets: make([]int64, a.Rows+1)}
	parallel.PrefixSum(nt, c.RowOffsets, rowNnz)
	nnz := c.RowOffsets[a.Rows]
	c.ColIDs = make([]int32, nnz)
	c.Data = make([]float64, nnz)
	parallel.ForChunks(nt, bounds, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			n := rowNnz[i]
			if n == 0 {
				continue
			}
			dst := c.RowOffsets[i]
			if oc, ok := ovCols[i]; ok {
				copy(c.ColIDs[dst:dst+n], oc)
				copy(c.Data[dst:dst+n], ovVals[i])
			} else {
				src := capOffsets[i]
				copy(c.ColIDs[dst:dst+n], bigCols[src:src+n])
				copy(c.Data[dst:dst+n], bigVals[src:src+n])
			}
		}
	})
	stopCompact()

	if m := opts.Metrics; m.Enabled() {
		gets, news := accum.PoolCounters()
		m.Add(metrics.CounterPoolGets, gets-poolGets0)
		m.Add(metrics.CounterPoolNews, news-poolNews0)
		var flops int64
		for _, f := range rowFlops {
			flops += f
		}
		m.Add(metrics.CounterFlops, flops)
		m.Add(metrics.CounterRows, int64(a.Rows))
		m.Add(metrics.CounterNnzC, nnz)
		m.Add(metrics.CounterSymbolicEstimatedRows, stats.EstimatedRows)
		m.Add(metrics.CounterSymbolicFallbackRows, stats.FallbackRows)
		m.Add(metrics.CounterSymbolicOverflowRows, stats.OverflowRows)
	}
	sym := &SymbolicResult{
		Rows:       a.Rows,
		ACols:      a.Cols,
		Cols:       b.Cols,
		RowFlops:   rowFlops,
		RowOffsets: c.RowOffsets,
		ColIDs:     c.ColIDs,
		Estimated:  true,
	}
	return c, sym, stats, nil
}
