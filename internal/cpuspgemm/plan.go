package cpuspgemm

import (
	"fmt"
	"sync"

	"repro/internal/csr"
	"repro/internal/metrics"
	"repro/internal/parallel"
)

// SymbolicResult is the values-independent half of a CPU multiply: the
// row-analysis output and the exact output structure. It is what the
// plan cache stores for a sparsity pattern — a later multiply whose
// operands carry the same pattern re-runs only Numeric against it,
// skipping row analysis, the symbolic phase and the prefix sum.
type SymbolicResult struct {
	// Rows, ACols and Cols record the operand shape the plan was built
	// for (A is Rows x ACols, B is ACols x Cols).
	Rows, ACols, Cols int
	// RowFlops is the row-analysis output; the warm path re-balances
	// its chunk boundaries from it.
	RowFlops []int64
	// RowOffsets and ColIDs are the exact output structure. Numeric
	// shares them with every product it emits; treat them as read-only.
	RowOffsets []int64
	ColIDs     []int32
	// Estimated records the plan's provenance: true when the structure
	// came from the estimation-elided path. The structure is exact
	// either way (the numeric pass observed every row), so warm replays
	// never care — the flag exists for observability and so plan caches
	// can upgrade an estimated entry in place when an exact plan for
	// the same pattern arrives.
	Estimated bool
}

// Bytes reports the memory the plan retains, for cache accounting.
func (s *SymbolicResult) Bytes() int64 {
	return int64(len(s.RowFlops))*8 + int64(len(s.RowOffsets))*8 + int64(len(s.ColIDs))*4
}

// MultiplyPlanned computes C = A·B exactly like Multiply and
// additionally captures the symbolic plan of the multiply. The capture
// is nearly free: the product's structure arrays are shared with the
// plan (not copied), and only the row-analysis pass is re-run. This is
// the cold half of the structure-reuse fast path — the first multiply
// of a pattern pays full price once and hands back the plan that every
// later Numeric call reuses.
func MultiplyPlanned(a, b *csr.Matrix, opts Options) (*csr.Matrix, *SymbolicResult, error) {
	if a.Cols != b.Rows {
		return nil, nil, errDims(a, b)
	}
	rowFlops := csr.RowFlops(a, b)
	if opts.useEstimation(rowFlops) {
		// The estimated cold path captures its plan for free: the
		// structure falls out of the adaptive numeric pass.
		c, sym, _, err := estimatedMultiply(a, b, opts, rowFlops)
		return c, sym, err
	}
	c, err := multiplyExact(a, b, opts, rowFlops)
	if err != nil {
		return nil, nil, err
	}
	sym := &SymbolicResult{
		Rows:       a.Rows,
		ACols:      a.Cols,
		Cols:       b.Cols,
		RowFlops:   rowFlops,
		RowOffsets: c.RowOffsets,
		ColIDs:     c.ColIDs,
	}
	return c, sym, nil
}

// denseScratch is the warm numeric path's per-worker accumulator: a
// dense value array with generation stamps for assign-on-first-touch
// (the same semantics the cold accumulators have, so every float64 sum
// associates identically and the output stays bit-for-bit equal —
// without the stamps a lone -0.0 product would surface as +0.0).
type denseScratch struct {
	vals  []float64
	stamp []uint32
	gen   uint32
}

var scratchPool = sync.Pool{New: func() any { return &denseScratch{} }}

func getScratch(width int) *denseScratch {
	s := scratchPool.Get().(*denseScratch)
	if len(s.vals) < width {
		s.vals = make([]float64, width)
		s.stamp = make([]uint32, width)
		s.gen = 0
	}
	return s
}

// nextGen advances the generation, clearing the stamps on wrap-around.
func (s *denseScratch) nextGen() uint32 {
	s.gen++
	if s.gen == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
	return s.gen
}

// Numeric re-runs only value accumulation against a cached symbolic
// plan: per output row the intermediate products scatter into a dense
// scratch array in the same order the cold accumulators apply them,
// then gather out through the cached column ids. The product shares
// the plan's structure arrays and allocates only its value array.
//
// The output is bit-for-bit identical to a cold Multiply with the
// Hash or Dense method (both accumulate same-column products in
// insertion order, as the scratch array does). ESC sorts products with
// an unstable sort before summing, so against it the warm path agrees
// exactly in structure and to rounding in values.
//
// The operands must carry the same sparsity pattern the plan was built
// from; Numeric checks the shape, while pattern equality is the
// caller's contract — the plan cache enforces it by fingerprint.
func Numeric(sym *SymbolicResult, a, b *csr.Matrix, opts Options) (*csr.Matrix, error) {
	if a.Rows != sym.Rows || a.Cols != sym.ACols || b.Rows != sym.ACols || b.Cols != sym.Cols {
		return nil, fmt.Errorf("cpuspgemm: numeric shape %dx%d · %dx%d does not match plan %dx%d · %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, sym.Rows, sym.ACols, sym.ACols, sym.Cols)
	}
	nt := opts.threads()
	nnz := sym.RowOffsets[sym.Rows]
	c := &csr.Matrix{
		Rows:       sym.Rows,
		Cols:       sym.Cols,
		RowOffsets: sym.RowOffsets,
		ColIDs:     sym.ColIDs,
		Data:       make([]float64, nnz),
	}
	bounds := parallel.CostBounds(sym.RowFlops, nt)
	var werr firstErr

	// One scratch per worker, fetched on the worker's first chunk and
	// reused across all chunks it claims (not one pool round-trip per
	// chunk — see parallel.ForChunksW).
	scratch := make([]*denseScratch, parallel.Workers(nt))
	defer func() {
		for _, s := range scratch {
			if s != nil {
				scratchPool.Put(s)
			}
		}
	}()
	stopNumeric := opts.Metrics.StartWall("cpu", "numeric (warm)")
	parallel.ForChunksW(nt, bounds, func(w, lo, hi int) {
		if werr.get() != nil {
			return
		}
		if opts.canceled() {
			werr.set(ErrCanceled)
			return
		}
		if scratch[w] == nil {
			scratch[w] = getScratch(sym.Cols)
		}
		s := scratch[w]
		for i := lo; i < hi; i++ {
			off, end := sym.RowOffsets[i], sym.RowOffsets[i+1]
			if off == end {
				continue
			}
			gen := s.nextGen()
			ac, av := a.Row(i)
			for p := range ac {
				bc, bv := b.Row(int(ac[p]))
				for q := range bc {
					col := bc[q]
					if s.stamp[col] != gen {
						s.stamp[col] = gen
						s.vals[col] = av[p] * bv[q]
					} else {
						s.vals[col] += av[p] * bv[q]
					}
				}
			}
			for j := off; j < end; j++ {
				c.Data[j] = s.vals[sym.ColIDs[j]]
			}
		}
	})
	stopNumeric()
	if err := werr.get(); err != nil {
		return nil, err
	}
	if m := opts.Metrics; m.Enabled() {
		var flops int64
		for _, f := range sym.RowFlops {
			flops += f
		}
		m.Add(metrics.CounterFlops, flops)
		m.Add(metrics.CounterRows, int64(sym.Rows))
		m.Add(metrics.CounterNnzC, nnz)
	}
	return c, nil
}
