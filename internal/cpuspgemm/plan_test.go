package cpuspgemm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/csr"
	"repro/internal/matgen"
)

// freshValues returns a copy of m sharing the sparsity pattern with
// new deterministic values, the iterative-workload shape.
func freshValues(m *csr.Matrix, seed int64) *csr.Matrix {
	rng := rand.New(rand.NewSource(seed))
	out := &csr.Matrix{
		Rows:       m.Rows,
		Cols:       m.Cols,
		RowOffsets: m.RowOffsets,
		ColIDs:     m.ColIDs,
		Data:       make([]float64, len(m.Data)),
	}
	for i := range out.Data {
		out.Data[i] = rng.NormFloat64()
	}
	return out
}

func assertBitIdentical(t *testing.T, cold, warm *csr.Matrix) {
	t.Helper()
	if cold.Rows != warm.Rows || cold.Cols != warm.Cols {
		t.Fatalf("dims %dx%d != %dx%d", cold.Rows, cold.Cols, warm.Rows, warm.Cols)
	}
	if len(cold.ColIDs) != len(warm.ColIDs) {
		t.Fatalf("nnz %d != %d", len(cold.ColIDs), len(warm.ColIDs))
	}
	for i := range cold.RowOffsets {
		if cold.RowOffsets[i] != warm.RowOffsets[i] {
			t.Fatalf("row offset %d: %d != %d", i, cold.RowOffsets[i], warm.RowOffsets[i])
		}
	}
	for i := range cold.ColIDs {
		if cold.ColIDs[i] != warm.ColIDs[i] {
			t.Fatalf("col id %d: %d != %d", i, cold.ColIDs[i], warm.ColIDs[i])
		}
	}
	for i := range cold.Data {
		if math.Float64bits(cold.Data[i]) != math.Float64bits(warm.Data[i]) {
			t.Fatalf("value %d: bits %x != %x (%v vs %v)", i,
				math.Float64bits(cold.Data[i]), math.Float64bits(warm.Data[i]), cold.Data[i], warm.Data[i])
		}
	}
}

// TestNumericByteIdenticalToMultiply is the CPU fast path's contract:
// a warm numeric-only re-multiply against a captured plan is
// bit-for-bit what a cold Multiply of the same inputs returns, across
// repeated value refreshes. The contract covers the insertion-order
// accumulators (Hash, Dense); ESC sorts same-column products with an
// unstable sort before summing, so it cannot promise a bit pattern
// even against itself — TestNumericMatchesESCApprox covers it.
func TestNumericByteIdenticalToMultiply(t *testing.T) {
	mats := []*csr.Matrix{
		matgen.RMAT(9, 8, 0.57, 0.19, 0.19, 11),
		matgen.Band(500, 5, 12),
		matgen.ER(150, 150, 0.04, 13),
	}
	for _, m := range mats {
		for _, method := range []Method{Hash, Dense} {
			opts := Options{Threads: 4, Method: method}
			cold0, sym, err := MultiplyPlanned(m, m, opts)
			if err != nil {
				t.Fatal(err)
			}
			// The captured plan's first product must itself match a
			// plain Multiply of the same inputs.
			ref, err := Multiply(m, m, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, ref, cold0)
			for it := int64(0); it < 3; it++ {
				fresh := freshValues(m, 700+it)
				cold, err := Multiply(fresh, fresh, opts)
				if err != nil {
					t.Fatal(err)
				}
				warm, err := Numeric(sym, fresh, fresh, opts)
				if err != nil {
					t.Fatal(err)
				}
				assertBitIdentical(t, cold, warm)
			}
		}
	}
}

// TestNumericMatchesESCApprox covers the ESC method: structure is
// still exact (the plan determines it), values agree to rounding
// because ESC's unstable sort may permute same-column products.
func TestNumericMatchesESCApprox(t *testing.T) {
	m := matgen.ER(120, 120, 0.05, 19)
	opts := Options{Threads: 4, Method: ESC}
	cold, sym, err := MultiplyPlanned(m, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Numeric(sym, m, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold.RowOffsets {
		if cold.RowOffsets[i] != warm.RowOffsets[i] {
			t.Fatalf("row offset %d: %d != %d", i, cold.RowOffsets[i], warm.RowOffsets[i])
		}
	}
	for i := range cold.ColIDs {
		if cold.ColIDs[i] != warm.ColIDs[i] {
			t.Fatalf("col id %d: %d != %d", i, cold.ColIDs[i], warm.ColIDs[i])
		}
	}
	for i := range cold.Data {
		diff := math.Abs(cold.Data[i] - warm.Data[i])
		scale := math.Abs(cold.Data[i]) + math.Abs(warm.Data[i]) + 1
		if diff/scale > 1e-12 {
			t.Fatalf("value %d: %v vs %v", i, cold.Data[i], warm.Data[i])
		}
	}
}

// TestNumericSharesPlanStructure pins the zero-copy contract: warm
// products share the plan's structure arrays.
func TestNumericSharesPlanStructure(t *testing.T) {
	m := matgen.ER(80, 80, 0.05, 14)
	_, sym, err := MultiplyPlanned(m, m, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Numeric(sym, m, m, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if &warm.RowOffsets[0] != &sym.RowOffsets[0] {
		t.Fatal("warm product does not share the plan's RowOffsets")
	}
	if len(sym.ColIDs) > 0 && &warm.ColIDs[0] != &sym.ColIDs[0] {
		t.Fatal("warm product does not share the plan's ColIDs")
	}
}

// TestNumericShapeMismatch rejects operands that do not fit the plan.
func TestNumericShapeMismatch(t *testing.T) {
	m := matgen.ER(40, 40, 0.1, 15)
	other := matgen.ER(30, 30, 0.1, 16)
	_, sym, err := MultiplyPlanned(m, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Numeric(sym, other, other, Options{}); err == nil {
		t.Fatal("shape mismatch not rejected")
	}
}

// TestNumericCanceled honors the cancellation hook like Multiply does.
func TestNumericCanceled(t *testing.T) {
	m := matgen.ER(100, 100, 0.05, 17)
	_, sym, err := MultiplyPlanned(m, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Numeric(sym, m, m, Options{Threads: 2, Cancel: func() bool { return true }})
	if err != ErrCanceled {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// TestNumericSingleRowRegression exercises generation wrap-around
// bookkeeping indirectly by running many rows through a single worker.
func TestNumericSingleRowRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	a := randomMatrix(rng, 60, 40, 0.15)
	b := randomMatrix(rng, 40, 50, 0.15)
	cold, sym, err := MultiplyPlanned(a, b, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Numeric(sym, a, b, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, cold, warm)
}
