// Package cpuspgemm implements multi-core CPU SpGEMM.
//
// The paper's CPU baseline (and the CPU half of its hybrid engine) is
// the hash-map implementation of Nagasaka et al. [27]: a two-phase
// (symbolic, then numeric) row-parallel Gustavson SpGEMM with
// per-thread hash accumulators and flops-balanced row distribution.
// This package provides that implementation, a dense-accumulator
// variant in the style of Patwary et al. [31], and a simple sequential
// Gustavson reference used as ground truth by the test suites of every
// other package.
//
// Scheduling: Multiply runs on the work-stealing runtime of
// internal/parallel — per-row flops are computed once, chunk
// boundaries are cut from them, and workers claim chunks dynamically
// with pooled accumulators (internal/accum). The seed's static
// contiguous-range scheduler is kept as MultiplyStatic, the ablation
// baseline the benchmarks compare against.
package cpuspgemm

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/accum"
	"repro/internal/csr"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/speck"
)

// ErrCanceled is returned when Options.Cancel stops a multiplication
// before it completes. Callers with deadlines (the spgemm facade's
// wall-clock deadline for CPU engines) wrap it with their own context.
var ErrCanceled = errors.New("cpuspgemm: canceled")

// firstErr collects the first failure reported by any worker. The
// parallel phases run library code on caller data, so data-dependent
// failures are returned, never panicked; panics remain only for
// programmer errors (e.g. accumulator misuse inside internal/accum).
type firstErr struct {
	mu  sync.Mutex
	err error
}

func (e *firstErr) set(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *firstErr) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Method selects the accumulation strategy.
type Method int

const (
	// Hash uses per-thread hash accumulators (Nagasaka et al. [27]).
	Hash Method = iota
	// Dense uses per-thread dense accumulators (Patwary et al. [31]).
	Dense
	// ESC uses per-thread expand-sort-compress accumulators (Bell et
	// al. [7,9]), the classic baseline of the paper's related work.
	ESC
)

func (m Method) String() string {
	switch m {
	case Hash:
		return "hash"
	case Dense:
		return "dense"
	case ESC:
		return "esc"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures a multiplication.
type Options struct {
	// Threads is the number of worker goroutines; 0 means GOMAXPROCS.
	Threads int
	// Method selects the accumulator; the default is Hash, matching the
	// implementation the paper uses from Nagasaka et al.
	Method Method
	// Metrics is an optional observability sink: the run records
	// wall-clock spans for its symbolic and numeric phases plus flop,
	// row and accumulator-pool counters. Nil (the default) keeps the
	// hot path untouched beyond a pointer comparison.
	Metrics *metrics.Collector
	// Cancel, when non-nil, is polled between row chunks; once it
	// returns true the multiplication stops and returns ErrCanceled.
	// It must be safe to call from multiple goroutines.
	Cancel func() bool
	// Symbolic selects the symbolic strategy: ModeExact (the zero
	// value) runs the classic two-phase pipeline; ModeEstimate elides
	// the exact symbolic phase behind the sampled row estimator with a
	// single adaptive numeric pass (output bit-identical to exact);
	// ModeAuto estimates only multiplies large enough to amortize it.
	// The ESC method ignores estimation and always runs exact (its
	// unstable sort already excludes it from every reuse fast path).
	Symbolic speck.Mode
	// Estimator tunes the estimation path; the zero value uses the
	// defaults (see speck.EstimatorConfig).
	Estimator speck.EstimatorConfig
	// ClassStats, when non-nil, accumulates the adaptive exact path's
	// per-kernel-class row/flop/nnz shares and per-phase times. The
	// per-row clock reads cost a few percent, so attach it only to
	// instrumented runs, never timed repetitions.
	ClassStats *ClassStats
	// ChunkLog, when non-nil, records each dynamically claimed chunk's
	// wall duration per exact phase (see ChunkLog for the scheduled-
	// speedup replay the CPU benchmark builds from it).
	ChunkLog *ChunkLog
	// ChunkWorkers, when positive, overrides the worker count used to
	// cut chunk boundaries without changing how many goroutines run.
	// The CPU benchmark sets Threads=1 with ChunkWorkers=N to measure
	// the true per-chunk durations of an N-worker chunking serially.
	ChunkWorkers int
}

// canceled polls the cancellation hook.
func (o Options) canceled() bool { return o.Cancel != nil && o.Cancel() }

func (o Options) threads() int {
	return parallel.Workers(o.Threads)
}

// Sequential computes C = A·B with the straightforward sequential
// Gustavson row-row algorithm (Algorithm 1 of the paper), using a plain
// map accumulator. It is the correctness reference for every other
// engine in this repository.
func Sequential(a, b *csr.Matrix) (*csr.Matrix, error) {
	if a.Cols != b.Rows {
		return nil, errDims(a, b)
	}
	entries := make([]csr.Entry, 0)
	row := map[int32]float64{}
	for i := 0; i < a.Rows; i++ {
		ac, av := a.Row(i)
		for p := range ac {
			k := ac[p]
			bc, bv := b.Row(int(k))
			for q := range bc {
				row[bc[q]] += av[p] * bv[q]
			}
		}
		for c, v := range row {
			entries = append(entries, csr.Entry{Row: int32(i), Col: c, Val: v})
			delete(row, c)
		}
	}
	return csr.FromEntries(a.Rows, b.Cols, entries)
}

// Multiply computes C = A·B with the two-phase multi-core algorithm on
// the work-stealing runtime: chunk boundaries are auto-tuned from the
// per-row flops (so a skewed row cannot strand one worker behind a
// static range), both phases claim chunks dynamically, and the
// accumulators come from the shared pool instead of being rebuilt per
// worker per phase. Options.Symbolic can replace the exact symbolic
// phase with the estimation-based elision; the product is bit-for-bit
// identical either way.
func Multiply(a, b *csr.Matrix, opts Options) (*csr.Matrix, error) {
	if a.Cols != b.Rows {
		return nil, errDims(a, b)
	}
	if opts.Method != ESC && opts.Symbolic != speck.ModeExact {
		rowFlops := csr.RowFlops(a, b)
		if opts.useEstimation(rowFlops) {
			c, _, _, err := estimatedMultiply(a, b, opts, rowFlops)
			return c, err
		}
		return multiplyExact(a, b, opts, rowFlops)
	}
	return multiplyExact(a, b, opts, nil)
}

// useEstimation resolves the symbolic mode against the row-analysis
// output (ModeAuto needs the total flop count).
func (o Options) useEstimation(rowFlops []int64) bool {
	if o.Method == ESC || o.Symbolic == speck.ModeExact {
		return false
	}
	if o.Symbolic == speck.ModeEstimate {
		return true
	}
	var total int64
	for _, f := range rowFlops {
		total += f
	}
	return o.Symbolic.Estimates(total, o.Estimator)
}

// multiplyExact is the two-phase exact pipeline behind Multiply.
// rowFlops, when non-nil, is the precomputed row analysis (the mode
// dispatcher already paid for it). The Hash method runs the adaptive
// per-row kernel pipeline (adaptive.go); Dense and ESC keep the
// uniform single-accumulator loop their methods pin by definition.
func multiplyExact(a, b *csr.Matrix, opts Options, rowFlops []int64) (*csr.Matrix, error) {
	if opts.Method == Hash {
		return multiplyAdaptive(a, b, opts, rowFlops)
	}
	nt := opts.threads()

	// Row analysis, computed once for both phases: rowFlops[i]/2 is
	// also the worst-case nnz of output row i (each multiply-add pair
	// contributes one candidate column), so it doubles as the
	// accumulator sizing bound — the seed's separate maxUpperBound
	// rescan per phase is gone.
	stopAnalysis := opts.Metrics.StartWall("cpu", "row analysis")
	if rowFlops == nil {
		rowFlops = csr.RowFlops(a, b)
	}
	bounds := parallel.CostBounds(rowFlops, nt)
	stopAnalysis()

	var poolGets0, poolNews0 int64
	if opts.Metrics.Enabled() {
		poolGets0, poolNews0 = accum.PoolCounters()
	}

	c := &csr.Matrix{Rows: a.Rows, Cols: b.Cols, RowOffsets: make([]int64, a.Rows+1)}
	rowNnz := make([]int64, a.Rows)
	var werr firstErr

	// Symbolic phase: count distinct columns per output row.
	stopSymbolic := opts.Metrics.StartWall("cpu", "symbolic")
	parallel.ForChunks(nt, bounds, func(lo, hi int) {
		if werr.get() != nil {
			return
		}
		if opts.canceled() {
			werr.set(ErrCanceled)
			return
		}
		acc := getAccumulator(opts.Method, b.Cols, chunkBound(rowFlops, lo, hi))
		defer accum.Put(acc)
		for i := lo; i < hi; i++ {
			ac, _ := a.Row(i)
			for _, k := range ac {
				bc, _ := b.Row(int(k))
				for _, col := range bc {
					acc.AddSymbolic(col)
				}
			}
			rowNnz[i] = int64(acc.FlushSymbolic())
		}
	})
	stopSymbolic()
	if err := werr.get(); err != nil {
		return nil, err
	}

	// Prefix sum gives the final row offsets; allocation is now exact.
	parallel.PrefixSum(nt, c.RowOffsets, rowNnz)
	nnz := c.RowOffsets[a.Rows]
	c.ColIDs = make([]int32, nnz)
	c.Data = make([]float64, nnz)

	// Numeric phase: recompute with values, writing into the allocated
	// arrays at each row's offset.
	stopNumeric := opts.Metrics.StartWall("cpu", "numeric")
	parallel.ForChunks(nt, bounds, func(lo, hi int) {
		if werr.get() != nil {
			return
		}
		if opts.canceled() {
			werr.set(ErrCanceled)
			return
		}
		acc := getAccumulator(opts.Method, b.Cols, chunkBound(rowFlops, lo, hi))
		defer accum.Put(acc)
		for i := lo; i < hi; i++ {
			ac, av := a.Row(i)
			for p := range ac {
				bc, bv := b.Row(int(ac[p]))
				for q := range bc {
					acc.Add(bc[q], av[p]*bv[q])
				}
			}
			if int64(acc.Len()) != rowNnz[i] {
				// Non-finite or NaN inputs can legitimately collapse
				// accumulator slots between phases, so a mismatch is a
				// data-dependent failure, not an invariant worth dying on.
				werr.set(fmt.Errorf("cpuspgemm: row %d numeric nnz %d != symbolic %d", i, acc.Len(), rowNnz[i]))
				return
			}
			// Flushing into full-capacity sub-slices writes the row
			// in place at its pre-computed offset.
			off, end := c.RowOffsets[i], c.RowOffsets[i]+rowNnz[i]
			acc.Flush(c.ColIDs[off:off:end], c.Data[off:off:end])
		}
	})
	stopNumeric()
	if err := werr.get(); err != nil {
		return nil, err
	}
	if m := opts.Metrics; m.Enabled() {
		gets, news := accum.PoolCounters()
		m.Add(metrics.CounterPoolGets, gets-poolGets0)
		m.Add(metrics.CounterPoolNews, news-poolNews0)
		var flops int64
		for _, f := range rowFlops {
			flops += f
		}
		m.Add(metrics.CounterFlops, flops)
		m.Add(metrics.CounterRows, int64(a.Rows))
		m.Add(metrics.CounterNnzC, nnz)
	}
	return c, nil
}

// MultiplyStatic computes C = A·B with the seed's scheduling strategy,
// kept as the ablation baseline for the work-stealing runtime: one
// static flops-balanced contiguous range per worker (BalanceRows) and
// a fresh accumulator per worker per phase. cmd/spgemm-bench -exp=cpu
// records Multiply's speedup over it in BENCH_cpu.json.
func MultiplyStatic(a, b *csr.Matrix, opts Options) (*csr.Matrix, error) {
	if a.Cols != b.Rows {
		return nil, errDims(a, b)
	}
	nt := opts.threads()

	rowFlops := csr.RowFlops(a, b)
	bounds := BalanceRows(rowFlops, nt)

	c := &csr.Matrix{Rows: a.Rows, Cols: b.Cols, RowOffsets: make([]int64, a.Rows+1)}
	rowNnz := make([]int64, a.Rows)
	var werr firstErr

	parallelRanges(bounds, func(lo, hi int) {
		if opts.canceled() {
			werr.set(ErrCanceled)
			return
		}
		acc := newAccumulator(opts.Method, b.Cols, maxUpperBound(a, b, lo, hi))
		for i := lo; i < hi; i++ {
			ac, _ := a.Row(i)
			for _, k := range ac {
				bc, _ := b.Row(int(k))
				for _, col := range bc {
					acc.AddSymbolic(col)
				}
			}
			rowNnz[i] = int64(acc.FlushSymbolic())
		}
	})
	if err := werr.get(); err != nil {
		return nil, err
	}

	for i := 0; i < a.Rows; i++ {
		c.RowOffsets[i+1] = c.RowOffsets[i] + rowNnz[i]
	}
	nnz := c.RowOffsets[a.Rows]
	c.ColIDs = make([]int32, nnz)
	c.Data = make([]float64, nnz)

	parallelRanges(bounds, func(lo, hi int) {
		if opts.canceled() {
			werr.set(ErrCanceled)
			return
		}
		acc := newAccumulator(opts.Method, b.Cols, maxUpperBound(a, b, lo, hi))
		for i := lo; i < hi; i++ {
			ac, av := a.Row(i)
			for p := range ac {
				bc, bv := b.Row(int(ac[p]))
				for q := range bc {
					acc.Add(bc[q], av[p]*bv[q])
				}
			}
			if int64(acc.Len()) != rowNnz[i] {
				werr.set(fmt.Errorf("cpuspgemm: row %d numeric nnz %d != symbolic %d", i, acc.Len(), rowNnz[i]))
				return
			}
			off, end := c.RowOffsets[i], c.RowOffsets[i]+rowNnz[i]
			acc.Flush(c.ColIDs[off:off:end], c.Data[off:off:end])
		}
	})
	if err := werr.get(); err != nil {
		return nil, err
	}
	return c, nil
}

// chunkBound returns the largest worst-case output-row size over rows
// [lo, hi), derived from the per-row flop counts (2 flops per
// candidate column).
func chunkBound(rowFlops []int64, lo, hi int) int64 {
	var mx int64
	for i := lo; i < hi; i++ {
		if rowFlops[i] > mx {
			mx = rowFlops[i]
		}
	}
	return mx / 2
}

// getAccumulator takes a pooled accumulator sized for the worst-case
// row of the chunk. Return it with accum.Put.
func getAccumulator(m Method, width int, bound int64) accum.Accumulator {
	switch m {
	case Dense:
		return accum.GetDense(width)
	case ESC:
		if bound < 16 {
			bound = 16
		}
		return accum.GetSort(int(bound))
	default:
		if bound < 16 {
			bound = 16
		}
		if bound > int64(width) {
			bound = int64(width)
		}
		return accum.GetHash(int(bound))
	}
}

// newAccumulator allocates a fresh, unpooled accumulator; the static
// baseline uses it so its allocation behavior stays the seed's.
func newAccumulator(m Method, width int, bound int64) accum.Accumulator {
	switch m {
	case Dense:
		return accum.NewDense(width)
	case ESC:
		if bound < 16 {
			bound = 16
		}
		return accum.NewSort(int(bound))
	default:
		if bound < 16 {
			bound = 16
		}
		if bound > int64(width) {
			bound = int64(width)
		}
		return accum.NewHash(int(bound))
	}
}

// maxUpperBound returns the largest worst-case output-row size over rows
// [lo, hi) of A·B, used to size the hash accumulator once per worker.
func maxUpperBound(a, b *csr.Matrix, lo, hi int) int64 {
	var mx int64
	for i := lo; i < hi; i++ {
		var n int64
		for p := a.RowOffsets[i]; p < a.RowOffsets[i+1]; p++ {
			n += b.RowNnz(int(a.ColIDs[p]))
		}
		if n > mx {
			mx = n
		}
	}
	return mx
}

// BalanceRows partitions rows into parts contiguous ranges with roughly
// equal total flops. It returns parts+1 boundaries with bounds[0]=0 and
// bounds[parts]=len(rowFlops). parts < 1 is treated as 1; an all-zero
// (or empty) flop array falls back to an even split by row count.
func BalanceRows(rowFlops []int64, parts int) []int {
	if parts < 1 {
		parts = 1
	}
	n := len(rowFlops)
	var total int64
	for _, f := range rowFlops {
		total += f
	}
	if total == 0 {
		// No flop information to balance on: split evenly by count so
		// no worker inherits everything (the seed put all rows in the
		// final part).
		return parallel.Blocks(n, parts)
	}
	bounds := make([]int, parts+1)
	bounds[parts] = n
	var acc int64
	next := 1
	for i := 0; i < n && next < parts; i++ {
		acc += rowFlops[i]
		// Place boundary next when we cross next/parts of the total.
		for next < parts && acc*int64(parts) >= total*int64(next) {
			bounds[next] = i + 1
			next++
		}
	}
	for ; next < parts; next++ {
		bounds[next] = n
	}
	return bounds
}

// errDims formats the standard dimension-mismatch error.
func errDims(a, b *csr.Matrix) error {
	return fmt.Errorf("cpuspgemm: dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
}

// parallelRanges runs fn over each non-empty [bounds[w], bounds[w+1])
// range in its own goroutine and waits for all of them.
func parallelRanges(bounds []int, fn func(lo, hi int)) {
	var wg sync.WaitGroup
	for w := 0; w+1 < len(bounds); w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
