package cpuspgemm

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/csr"
	"repro/internal/matgen"
)

func randomMatrix(rng *rand.Rand, rows, cols int, density float64) *csr.Matrix {
	var es []csr.Entry
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				es = append(es, csr.Entry{Row: int32(r), Col: int32(c), Val: rng.NormFloat64()})
			}
		}
	}
	m, err := csr.FromEntries(rows, cols, es)
	if err != nil {
		panic(err)
	}
	return m
}

// denseMul computes A·B via dense arithmetic for ground truth.
func denseMul(t *testing.T, a, b *csr.Matrix) *csr.Matrix {
	t.Helper()
	acc := make([]float64, a.Rows*b.Cols)
	for i := 0; i < a.Rows; i++ {
		ac, av := a.Row(i)
		for p := range ac {
			bc, bv := b.Row(int(ac[p]))
			for q := range bc {
				acc[i*b.Cols+int(bc[q])] += av[p] * bv[q]
			}
		}
	}
	var es []csr.Entry
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			if acc[i*b.Cols+j] != 0 {
				es = append(es, csr.Entry{Row: int32(i), Col: int32(j), Val: acc[i*b.Cols+j]})
			}
		}
	}
	m, err := csr.FromEntries(a.Rows, b.Cols, es)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSequentialAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		a := randomMatrix(rng, 1+rng.Intn(30), 1+rng.Intn(20), 0.2)
		b := randomMatrix(rng, a.Cols, 1+rng.Intn(25), 0.2)
		got, err := Sequential(a, b)
		if err != nil {
			t.Fatalf("Sequential: %v", err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("product invalid: %v", err)
		}
		want := denseMul(t, a, b)
		// Note: structural zeros that cancel exactly would differ, but
		// NormFloat64 values never cancel to exactly zero in practice.
		if !csr.Equal(got, want, 1e-12) {
			t.Fatalf("trial %d: %s", trial, csr.Diff(got, want, 1e-12))
		}
	}
}

func TestMultiplyMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, method := range []Method{Hash, Dense, ESC} {
		for _, threads := range []int{1, 2, 4, 7} {
			for trial := 0; trial < 5; trial++ {
				a := randomMatrix(rng, 40+rng.Intn(30), 35, 0.15)
				b := randomMatrix(rng, 35, 45, 0.15)
				want, err := Sequential(a, b)
				if err != nil {
					t.Fatal(err)
				}
				got, err := Multiply(a, b, Options{Threads: threads, Method: method})
				if err != nil {
					t.Fatalf("%v/%d: %v", method, threads, err)
				}
				if err := got.Validate(); err != nil {
					t.Fatalf("%v/%d: invalid: %v", method, threads, err)
				}
				if !csr.Equal(got, want, 1e-12) {
					t.Fatalf("%v/%d: %s", method, threads, csr.Diff(got, want, 1e-12))
				}
			}
		}
	}
}

func TestMultiplyRMATSquare(t *testing.T) {
	a := matgen.RMAT(9, 8, 0.57, 0.19, 0.19, 3)
	want, err := Sequential(a, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []Method{Hash, Dense, ESC} {
		got, err := Multiply(a, a, Options{Method: method})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if !csr.Equal(got, want, 1e-9) {
			t.Fatalf("%v: %s", method, csr.Diff(got, want, 1e-9))
		}
	}
}

func TestMultiplyDimensionMismatch(t *testing.T) {
	a := csr.New(3, 4)
	b := csr.New(5, 3)
	if _, err := Multiply(a, b, Options{}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
	if _, err := Sequential(a, b); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestMultiplyEmptyInputs(t *testing.T) {
	a := csr.New(4, 4)
	for _, method := range []Method{Hash, Dense, ESC} {
		c, err := Multiply(a, a, Options{Method: method})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if c.Nnz() != 0 || c.Rows != 4 || c.Cols != 4 {
			t.Fatalf("%v: empty product wrong: nnz=%d dims %dx%d", method, c.Nnz(), c.Rows, c.Cols)
		}
	}
}

func TestMultiplyMoreThreadsThanRows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(rng, 3, 3, 0.5)
	got, err := Multiply(a, a, Options{Threads: 16})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Sequential(a, a)
	if !csr.Equal(got, want, 1e-12) {
		t.Fatal("mismatch with more threads than rows")
	}
}

func TestMultiplyIdentity(t *testing.T) {
	n := 60
	var es []csr.Entry
	for i := 0; i < n; i++ {
		es = append(es, csr.Entry{Row: int32(i), Col: int32(i), Val: 1})
	}
	id, _ := csr.FromEntries(n, n, es)
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(rng, n, n, 0.1)
	for _, method := range []Method{Hash, Dense, ESC} {
		c, err := Multiply(a, id, Options{Method: method})
		if err != nil {
			t.Fatal(err)
		}
		if !csr.Equal(c, a, 0) {
			t.Fatalf("%v: A·I != A: %s", method, csr.Diff(c, a, 0))
		}
		c, err = Multiply(id, a, Options{Method: method})
		if err != nil {
			t.Fatal(err)
		}
		if !csr.Equal(c, a, 0) {
			t.Fatalf("%v: I·A != A", method)
		}
	}
}

func TestBalanceRows(t *testing.T) {
	// Uniform flops: boundaries should split evenly.
	uniform := make([]int64, 100)
	for i := range uniform {
		uniform[i] = 10
	}
	b := BalanceRows(uniform, 4)
	if len(b) != 5 || b[0] != 0 || b[4] != 100 {
		t.Fatalf("bounds = %v", b)
	}
	for w := 0; w < 4; w++ {
		if sz := b[w+1] - b[w]; sz < 20 || sz > 30 {
			t.Fatalf("uneven uniform split: %v", b)
		}
	}

	// One huge row: it should get its own part (others may be empty).
	skew := make([]int64, 10)
	skew[0] = 1000
	bounds := BalanceRows(skew, 2)
	if bounds[1] != 1 {
		t.Fatalf("skewed bounds = %v, want first part exactly the heavy row", bounds)
	}

	// Monotone, covering, correct endpoints on random input.
	rng := rand.New(rand.NewSource(6))
	rf := make([]int64, 57)
	for i := range rf {
		rf[i] = int64(rng.Intn(100))
	}
	for parts := 1; parts <= 8; parts++ {
		bb := BalanceRows(rf, parts)
		if bb[0] != 0 || bb[parts] != len(rf) {
			t.Fatalf("parts=%d endpoints wrong: %v", parts, bb)
		}
		for i := 0; i < parts; i++ {
			if bb[i] > bb[i+1] {
				t.Fatalf("parts=%d not monotone: %v", parts, bb)
			}
		}
	}
}

func TestBalanceRowsZeroFlops(t *testing.T) {
	b := BalanceRows(make([]int64, 10), 3)
	if b[0] != 0 || b[3] != 10 {
		t.Fatalf("zero-flop bounds = %v", b)
	}
	// All-zero flops must fall back to an even split, not leave every
	// row in one part.
	for w := 0; w < 3; w++ {
		if sz := b[w+1] - b[w]; sz < 3 || sz > 4 {
			t.Fatalf("zero-flop split uneven: %v", b)
		}
	}
}

func TestBalanceRowsEdgeCases(t *testing.T) {
	// More parts than rows: boundaries must stay monotone and cover.
	rf := []int64{5, 1, 9}
	b := BalanceRows(rf, 8)
	if len(b) != 9 || b[0] != 0 || b[8] != 3 {
		t.Fatalf("parts>rows endpoints wrong: %v", b)
	}
	for i := 0; i < 8; i++ {
		if b[i] > b[i+1] {
			t.Fatalf("parts>rows not monotone: %v", b)
		}
	}

	// Empty matrix (no rows).
	b = BalanceRows(nil, 4)
	if len(b) != 5 || b[0] != 0 || b[4] != 0 {
		t.Fatalf("empty bounds = %v", b)
	}

	// parts < 1 is treated as one part.
	b = BalanceRows([]int64{1, 2, 3}, 0)
	if len(b) != 2 || b[0] != 0 || b[1] != 3 {
		t.Fatalf("parts=0 bounds = %v", b)
	}

	// Zero flops with more parts than rows.
	b = BalanceRows(make([]int64, 2), 5)
	if len(b) != 6 || b[0] != 0 || b[5] != 2 {
		t.Fatalf("zero-flop parts>rows bounds = %v", b)
	}
	for i := 0; i < 5; i++ {
		if b[i] > b[i+1] {
			t.Fatalf("zero-flop parts>rows not monotone: %v", b)
		}
	}
}

// TestMultiplyStaticMatchesSequential anchors the kept static-range
// baseline to the same ground truth as the work-stealing Multiply.
func TestMultiplyStaticMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, method := range []Method{Hash, Dense, ESC} {
		for trial := 0; trial < 3; trial++ {
			a := randomMatrix(rng, 40+rng.Intn(30), 35, 0.15)
			b := randomMatrix(rng, 35, 45, 0.15)
			want, err := Sequential(a, b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := MultiplyStatic(a, b, Options{Threads: 4, Method: method})
			if err != nil {
				t.Fatalf("%v: %v", method, err)
			}
			if !csr.Equal(got, want, 1e-12) {
				t.Fatalf("%v: %s", method, csr.Diff(got, want, 1e-12))
			}
		}
	}
	if _, err := MultiplyStatic(csr.New(3, 4), csr.New(5, 3), Options{}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

// TestMultiplyReusesPooledAccumulators runs repeated multiplications
// to exercise the cross-call accumulator reuse path under the race
// detector.
func TestMultiplyReusesPooledAccumulators(t *testing.T) {
	a := matgen.RMAT(8, 8, 0.57, 0.19, 0.19, 11)
	want, err := Sequential(a, a)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		for _, method := range []Method{Hash, Dense, ESC} {
			got, err := Multiply(a, a, Options{Threads: 3, Method: method})
			if err != nil {
				t.Fatalf("round %d %v: %v", round, method, err)
			}
			if !csr.Equal(got, want, 1e-9) {
				t.Fatalf("round %d %v: %s", round, method, csr.Diff(got, want, 1e-9))
			}
		}
	}
}

func TestMethodString(t *testing.T) {
	if Hash.String() != "hash" || Dense.String() != "dense" || ESC.String() != "esc" {
		t.Fatal("Method.String wrong")
	}
	if Method(9).String() == "" {
		t.Fatal("unknown method should still format")
	}
}

func BenchmarkMultiplyHashRMAT(b *testing.B) {
	a := matgen.RMAT(11, 8, 0.57, 0.19, 0.19, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Multiply(a, a, Options{Method: Hash}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiplyDenseBand(b *testing.B) {
	a := matgen.Band(4000, 5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Multiply(a, a, Options{Method: Dense}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiplyMethods compares the three accumulation strategies
// (hash, dense, ESC) on a graph and a regular matrix — the trade-off
// discussed in the paper's Section II-B.
func BenchmarkMultiplyMethods(b *testing.B) {
	inputs := map[string]func() *csr.Matrix{
		"rmat": func() *csr.Matrix { return matgen.RMAT(11, 8, 0.57, 0.19, 0.19, 3) },
		"band": func() *csr.Matrix { return matgen.Band(4000, 5, 1) },
	}
	for name, gen := range inputs {
		a := gen()
		for _, method := range []Method{Hash, Dense, ESC} {
			method := method
			b.Run(name+"/"+method.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := Multiply(a, a, Options{Method: method}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(name+"/merge", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := MultiplyMerge(a, a, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMultiplyThreadScaling measures the real multi-core engine's
// wall-time scaling with the worker count.
func BenchmarkMultiplyThreadScaling(b *testing.B) {
	a := matgen.RMAT(12, 8, 0.57, 0.19, 0.19, 3)
	for _, threads := range []int{1, 2, 4, 8} {
		threads := threads
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Multiply(a, a, Options{Threads: threads}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMultiplySchedulers compares the seed's static flops-balanced
// ranges (MultiplyStatic) against the work-stealing runtime (Multiply)
// on a skewed RMAT matrix — the acceptance benchmark of the runtime
// retrofit. cmd/spgemm-bench -exp=cpu records the same comparison in
// BENCH_cpu.json.
func BenchmarkMultiplySchedulers(b *testing.B) {
	a := matgen.RMAT(12, 16, 0.6, 0.19, 0.19, 7)
	for _, threads := range []int{1, 8} {
		for _, engine := range []struct {
			name string
			fn   func() (*csr.Matrix, error)
		}{
			{"static", func() (*csr.Matrix, error) {
				return MultiplyStatic(a, a, Options{Threads: threads, Method: Hash})
			}},
			{"stealing", func() (*csr.Matrix, error) {
				return Multiply(a, a, Options{Threads: threads, Method: Hash})
			}},
		} {
			b.Run(fmt.Sprintf("%s/threads=%d", engine.name, threads), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := engine.fn(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
