package cpuspgemm

import (
	"repro/internal/accum"
	"repro/internal/csr"
	"repro/internal/parallel"
)

// OuterProduct computes C = A·B with the outer-product (column-row)
// formulation of the paper's Section II-B taxonomy, used by the
// partitioning work of Akbudak et al. [1,3]: C = Σ_k A(:,k) ⊗ B(k,:),
// one rank-1 update per inner index k. The expansion is generated from
// the CSC view of A (its transpose) and merged with per-row hash
// accumulators.
//
// The formulation's character differs from Gustavson's row-row: all
// rows of C accumulate simultaneously, so the working set is O(rows)
// accumulators — the reason the paper's out-of-core framework avoids
// it (partial results for the whole output would have to live on the
// device at once). It is provided as a taxonomy-complete baseline and
// a cross-check for the other engines.
func OuterProduct(a, b *csr.Matrix, threads int) (*csr.Matrix, error) {
	if a.Cols != b.Rows {
		return nil, errDims(a, b)
	}
	threads = parallel.Workers(threads)
	// CSC view of A: row r of at holds column r of A.
	at := a.Transpose()

	// Each worker owns a contiguous range of OUTPUT rows and scans all
	// inner indices, so no two workers touch the same accumulator. The
	// ranges must stay static (every worker pays the full inner scan,
	// so more chunks would multiply that cost), but they are balanced
	// by per-output-row flops rather than the seed's raw row counts.
	rowAcc := make([]*accum.Hash, a.Rows)
	rowBounds := BalanceRows(csr.RowFlops(a, b), threads)
	parallelRanges(rowBounds, func(lo, hi int) {
		for k := 0; k < at.Rows; k++ {
			// Column k of A x row k of B.
			ac, av := at.Row(k)
			bc, bv := b.Row(k)
			if len(ac) == 0 || len(bc) == 0 {
				continue
			}
			for p := range ac {
				i := int(ac[p])
				if i < lo || i >= hi {
					continue
				}
				acc := rowAcc[i]
				if acc == nil {
					acc = accum.GetHash(len(bc) * 2)
					rowAcc[i] = acc
				}
				for q := range bc {
					acc.Add(bc[q], av[p]*bv[q])
				}
			}
		}
	})

	// Assemble C from the per-row accumulators: exact offsets from a
	// parallel prefix sum, then a parallel flush into sub-slices. Each
	// accumulator goes back to the pool once its row is written.
	c := &csr.Matrix{Rows: a.Rows, Cols: b.Cols, RowOffsets: make([]int64, a.Rows+1)}
	rowNnz := make([]int64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		if rowAcc[i] != nil {
			rowNnz[i] = int64(rowAcc[i].Len())
		}
	}
	parallel.PrefixSum(threads, c.RowOffsets, rowNnz)
	nnz := c.RowOffsets[a.Rows]
	c.ColIDs = make([]int32, nnz)
	c.Data = make([]float64, nnz)
	parallel.For(threads, a.Rows, parallel.Grain(a.Rows, threads), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if rowAcc[i] == nil {
				continue
			}
			off, end := c.RowOffsets[i], c.RowOffsets[i+1]
			rowAcc[i].Flush(c.ColIDs[off:off:end], c.Data[off:off:end])
			accum.PutHash(rowAcc[i])
			rowAcc[i] = nil
		}
	})
	return c, nil
}
