package cpuspgemm

import (
	"fmt"
	"sync"

	"repro/internal/accum"
	"repro/internal/csr"
)

// OuterProduct computes C = A·B with the outer-product (column-row)
// formulation of the paper's Section II-B taxonomy, used by the
// partitioning work of Akbudak et al. [1,3]: C = Σ_k A(:,k) ⊗ B(k,:),
// one rank-1 update per inner index k. The expansion is generated from
// the CSC view of A (its transpose) and merged with per-row hash
// accumulators.
//
// The formulation's character differs from Gustavson's row-row: all
// rows of C accumulate simultaneously, so the working set is O(rows)
// accumulators — the reason the paper's out-of-core framework avoids
// it (partial results for the whole output would have to live on the
// device at once). It is provided as a taxonomy-complete baseline and
// a cross-check for the other engines.
func OuterProduct(a, b *csr.Matrix, threads int) (*csr.Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("cpuspgemm: dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if threads < 1 {
		threads = 1
	}
	// CSC view of A: row r of at holds column r of A.
	at := a.Transpose()

	// Each worker owns a contiguous range of OUTPUT rows and scans all
	// inner indices, so no two workers touch the same accumulator. (A
	// transpose-free variant would partition k and merge; partitioning
	// output rows keeps the merge trivial.)
	rowAcc := make([]*accum.Hash, a.Rows)
	rowBounds := make([]int, threads+1)
	for w := 0; w <= threads; w++ {
		rowBounds[w] = w * a.Rows / threads
	}
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		lo, hi := rowBounds[w], rowBounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for k := 0; k < at.Rows; k++ {
				// Column k of A x row k of B.
				ac, av := at.Row(k)
				bc, bv := b.Row(k)
				if len(ac) == 0 || len(bc) == 0 {
					continue
				}
				for p := range ac {
					i := int(ac[p])
					if i < lo || i >= hi {
						continue
					}
					acc := rowAcc[i]
					if acc == nil {
						acc = accum.NewHash(len(bc) * 2)
						rowAcc[i] = acc
					}
					for q := range bc {
						acc.Add(bc[q], av[p]*bv[q])
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()

	// Assemble C from the per-row accumulators.
	c := &csr.Matrix{Rows: a.Rows, Cols: b.Cols, RowOffsets: make([]int64, a.Rows+1)}
	for i := 0; i < a.Rows; i++ {
		n := 0
		if rowAcc[i] != nil {
			n = rowAcc[i].Len()
		}
		c.RowOffsets[i+1] = c.RowOffsets[i] + int64(n)
	}
	nnz := c.RowOffsets[a.Rows]
	c.ColIDs = make([]int32, 0, nnz)
	c.Data = make([]float64, 0, nnz)
	for i := 0; i < a.Rows; i++ {
		if rowAcc[i] != nil {
			c.ColIDs, c.Data = rowAcc[i].Flush(c.ColIDs, c.Data)
		}
	}
	return c, nil
}
