package matgen

import (
	"fmt"

	"repro/internal/csr"
)

// SuiteEntry describes one matrix of the evaluation suite: a scaled
// synthetic analog of one of the paper's nine SuiteSparse inputs
// (Table II), chosen to match the structural class and the compression
// ratio flop(A²)/nnz(A²) of the original.
type SuiteEntry struct {
	// Name is the SuiteSparse matrix this entry stands in for.
	Name string
	// Abbr is the abbreviation used in the paper's figures.
	Abbr string
	// Class describes the generator family ("rmat", "band", "stencil").
	Class string
	// PaperN, PaperNnz, PaperFlops, PaperNnzC are the Table II numbers
	// (in millions) for the original matrix.
	PaperN, PaperNnz, PaperFlops, PaperNnzC float64
	// PaperCR is the Table II compression ratio flop(A²)/nnz(A²).
	PaperCR float64
	// Gen builds the scaled analog.
	Gen func() *csr.Matrix
}

// Suite returns the nine-matrix evaluation suite in the paper's Table II
// order. Matrices are scaled down roughly 1000x so that experiments run
// on a laptop, with the simulated device memory scaled down accordingly
// (see the exp package). Generation is deterministic.
func Suite() []SuiteEntry {
	return []SuiteEntry{
		{
			Name: "ljournal-2008", Abbr: "lj2008", Class: "rmat",
			PaperN: 5.36, PaperNnz: 79.02, PaperFlops: 7828.66, PaperNnzC: 4245.41, PaperCR: 1.84,
			Gen: func() *csr.Matrix { return RMAT(12, 8, 0.57, 0.19, 0.19, 1001) },
		},
		{
			Name: "com-LiveJournal", Abbr: "com-lj", Class: "rmat",
			PaperN: 4.00, PaperNnz: 69.36, PaperFlops: 8580.90, PaperNnzC: 4859.09, PaperCR: 1.77,
			Gen: func() *csr.Matrix { return RMAT(12, 9, 0.55, 0.2, 0.2, 1002) },
		},
		{
			Name: "soc-LiveJournal1", Abbr: "soc-lj", Class: "rmat",
			PaperN: 4.85, PaperNnz: 68.99, PaperFlops: 5915.63, PaperNnzC: 3366.05, PaperCR: 1.76,
			Gen: func() *csr.Matrix { return RMAT(12, 7, 0.55, 0.2, 0.2, 1003) },
		},
		{
			Name: "stokes", Abbr: "stokes", Class: "band",
			PaperN: 11.45, PaperNnz: 349.32, PaperFlops: 9424.18, PaperNnzC: 2115.15, PaperCR: 4.46,
			Gen: func() *csr.Matrix { return Band(11450, 5, 1004) },
		},
		{
			Name: "uk-2002", Abbr: "uk-2002", Class: "band",
			PaperN: 18.52, PaperNnz: 298.11, PaperFlops: 29206.61, PaperNnzC: 3194.99, PaperCR: 9.14,
			Gen: func() *csr.Matrix { return Band(12000, 8, 1005) },
		},
		{
			Name: "wikipedia-20070206", Abbr: "wiki0206", Class: "rmat",
			PaperN: 3.57, PaperNnz: 45.03, PaperFlops: 12796.04, PaperNnzC: 4802.94, PaperCR: 2.66,
			Gen: func() *csr.Matrix { return RMAT(11, 14, 0.58, 0.18, 0.18, 1006) },
		},
		{
			Name: "nlpkkt200", Abbr: "nlp", Class: "band",
			PaperN: 16.24, PaperNnz: 440.23, PaperFlops: 24932.82, PaperNnzC: 2425.94, PaperCR: 10.28,
			Gen: func() *csr.Matrix { return Band(13000, 10, 1007) },
		},
		{
			Name: "wikipedia-20061104", Abbr: "wiki1104", Class: "rmat",
			PaperN: 3.15, PaperNnz: 39.38, PaperFlops: 10728.99, PaperNnzC: 4018.47, PaperCR: 2.67,
			Gen: func() *csr.Matrix { return RMAT(11, 13, 0.58, 0.18, 0.18, 1008) },
		},
		{
			Name: "wikipedia-20060925", Abbr: "wiki0925", Class: "rmat",
			PaperN: 2.98, PaperNnz: 37.27, PaperFlops: 10030.09, PaperNnzC: 3750.38, PaperCR: 2.67,
			Gen: func() *csr.Matrix { return RMAT(11, 12, 0.58, 0.18, 0.18, 1009) },
		},
	}
}

// SuiteByAbbr returns the suite entry with the given abbreviation.
func SuiteByAbbr(abbr string) (SuiteEntry, error) {
	for _, e := range Suite() {
		if e.Abbr == abbr {
			return e, nil
		}
	}
	return SuiteEntry{}, fmt.Errorf("matgen: no suite matrix %q", abbr)
}
