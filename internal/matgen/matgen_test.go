package matgen

import (
	"testing"

	"repro/internal/csr"
)

func TestRMATDeterministicAndValid(t *testing.T) {
	a := RMAT(8, 8, 0.57, 0.19, 0.19, 42)
	b := RMAT(8, 8, 0.57, 0.19, 0.19, 42)
	if err := a.Validate(); err != nil {
		t.Fatalf("RMAT invalid: %v", err)
	}
	if !csr.Equal(a, b, 0) {
		t.Fatal("RMAT not deterministic for same seed")
	}
	c := RMAT(8, 8, 0.57, 0.19, 0.19, 43)
	if csr.Equal(a, c, 0) {
		t.Fatal("RMAT identical for different seeds")
	}
	if a.Rows != 256 || a.Cols != 256 {
		t.Fatalf("RMAT dims %dx%d, want 256x256", a.Rows, a.Cols)
	}
	if a.Nnz() == 0 || a.Nnz() > 8*256 {
		t.Fatalf("RMAT nnz = %d out of range", a.Nnz())
	}
	for _, v := range a.Data {
		if v != 1 {
			t.Fatalf("RMAT value %v, want 1", v)
		}
	}
}

func TestRMATSkew(t *testing.T) {
	// With a >> d the degree distribution must be skewed: the maximum
	// out-degree should far exceed the average.
	m := RMAT(10, 16, 0.6, 0.17, 0.17, 7)
	avg := float64(m.Nnz()) / float64(m.Rows)
	if mx := float64(m.MaxRowNnz()); mx < 4*avg {
		t.Fatalf("RMAT max degree %.0f not skewed vs avg %.1f", mx, avg)
	}
}

func TestERDensity(t *testing.T) {
	p := 0.05
	m := ER(200, 300, p, 11)
	if err := m.Validate(); err != nil {
		t.Fatalf("ER invalid: %v", err)
	}
	want := p * 200 * 300
	got := float64(m.Nnz())
	if got < want*0.7 || got > want*1.3 {
		t.Fatalf("ER nnz = %.0f, want about %.0f", got, want)
	}
}

func TestEREmptyAndFull(t *testing.T) {
	if m := ER(10, 10, 0, 1); m.Nnz() != 0 {
		t.Fatal("ER(p=0) not empty")
	}
	if m := ER(10, 10, 1, 1); m.Nnz() != 100 {
		t.Fatalf("ER(p=1) nnz = %d, want 100", m.Nnz())
	}
}

func TestBandStructure(t *testing.T) {
	n, half := 50, 3
	m := Band(n, half, 5)
	if err := m.Validate(); err != nil {
		t.Fatalf("Band invalid: %v", err)
	}
	for i := 0; i < n; i++ {
		cols, _ := m.Row(i)
		for _, c := range cols {
			if int(c) < i-half || int(c) > i+half {
				t.Fatalf("row %d has column %d outside band", i, c)
			}
		}
		wantLen := min(n-1, i+half) - max(0, i-half) + 1
		if len(cols) != wantLen {
			t.Fatalf("row %d nnz = %d, want %d", i, len(cols), wantLen)
		}
	}
}

func TestStencil2D(t *testing.T) {
	m := Stencil2D(7, 5)
	if err := m.Validate(); err != nil {
		t.Fatalf("Stencil2D invalid: %v", err)
	}
	if m.Rows != 35 {
		t.Fatalf("rows = %d, want 35", m.Rows)
	}
	// Interior point has 5 entries; a corner has 3.
	if n := m.RowNnz(0); n != 3 {
		t.Fatalf("corner nnz = %d, want 3", n)
	}
	interior := 2*7 + 3 // (x=3, y=2)
	if n := m.RowNnz(interior); n != 5 {
		t.Fatalf("interior nnz = %d, want 5", n)
	}
	// Laplacian rows sum to >= 0 with our sign convention (4 diag, -1 off).
	cols, vals := m.Row(interior)
	var sum float64
	for i := range cols {
		sum += vals[i]
	}
	if sum != 0 {
		t.Fatalf("interior row sum = %v, want 0", sum)
	}
}

func TestBlockDiag(t *testing.T) {
	m := BlockDiag(4, 3, 9)
	if err := m.Validate(); err != nil {
		t.Fatalf("BlockDiag invalid: %v", err)
	}
	if m.Rows != 12 || m.Nnz() != 4*9 {
		t.Fatalf("dims %d nnz %d", m.Rows, m.Nnz())
	}
	// Entry (0, 5) crosses the first block boundary and must be absent.
	cols, _ := m.Row(0)
	for _, c := range cols {
		if c >= 3 {
			t.Fatalf("row 0 has out-of-block column %d", c)
		}
	}
}

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 9 {
		t.Fatalf("suite has %d matrices, want 9", len(suite))
	}
	seen := map[string]bool{}
	for _, e := range suite {
		if seen[e.Abbr] {
			t.Fatalf("duplicate abbreviation %q", e.Abbr)
		}
		seen[e.Abbr] = true
		if e.PaperCR < 1 {
			t.Fatalf("%s: paper CR %v < 1", e.Abbr, e.PaperCR)
		}
	}
	if _, err := SuiteByAbbr("nlp"); err != nil {
		t.Fatalf("SuiteByAbbr(nlp): %v", err)
	}
	if _, err := SuiteByAbbr("missing"); err == nil {
		t.Fatal("SuiteByAbbr(missing) should fail")
	}
}

func TestSuiteMatricesValidSquare(t *testing.T) {
	for _, e := range Suite() {
		m := e.Gen()
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: invalid: %v", e.Abbr, err)
		}
		if m.Rows != m.Cols {
			t.Fatalf("%s: not square (%dx%d)", e.Abbr, m.Rows, m.Cols)
		}
		if m.Nnz() == 0 {
			t.Fatalf("%s: empty", e.Abbr)
		}
	}
}
