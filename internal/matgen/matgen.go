// Package matgen generates deterministic synthetic sparse matrices.
//
// The paper evaluates on nine large SuiteSparse matrices (Table II).
// Those inputs are proprietary-scale downloads we cannot ship, so this
// package provides generators whose products exhibit the same structure
// classes:
//
//   - RMAT power-law graphs stand in for the social-network and web
//     matrices (LiveJournal, wikipedia, uk-2002): skewed degree
//     distributions and low compression ratios (flop/nnz of A² under 3).
//   - Banded and stencil matrices stand in for the regular PDE/
//     optimization matrices (stokes, nlpkkt200): uniform rows and high
//     compression ratios (4.5-10).
//
// All generators are deterministic functions of their seed.
package matgen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/csr"
)

// RMAT generates a scale-free directed graph adjacency matrix with
// 2^scale vertices and approximately edgeFactor*2^scale edges using the
// recursive R-MAT procedure with partition probabilities (a, b, c, d),
// d = 1-a-b-c. Duplicate edges are merged (values summed then reset to
// 1); self loops are kept. Typical social-network parameters are
// a=0.57, b=0.19, c=0.19.
func RMAT(scale uint, edgeFactor int, a, b, c float64, seed int64) *csr.Matrix {
	n := 1 << scale
	m := edgeFactor * n
	rng := rand.New(rand.NewSource(seed))
	entries := make([]csr.Entry, 0, m)
	for e := 0; e < m; e++ {
		r, cc := 0, 0
		for bit := n >> 1; bit >= 1; bit >>= 1 {
			u := rng.Float64()
			switch {
			case u < a:
				// top-left quadrant
			case u < a+b:
				cc |= bit
			case u < a+b+c:
				r |= bit
			default:
				r |= bit
				cc |= bit
			}
		}
		entries = append(entries, csr.Entry{Row: int32(r), Col: int32(cc), Val: 1})
	}
	mat, err := csr.FromEntries(n, n, entries)
	if err != nil {
		panic(fmt.Sprintf("matgen: RMAT: %v", err))
	}
	// Merged duplicates hold counts; normalize all values to 1 so the
	// adjacency is a 0/1 matrix as in graph SpGEMM workloads.
	for i := range mat.Data {
		mat.Data[i] = 1
	}
	return mat
}

// ER generates an Erdős–Rényi random matrix with the given dimensions
// where each entry is present independently with probability p, values
// uniform in (-1, 1).
func ER(rows, cols int, p float64, seed int64) *csr.Matrix {
	rng := rand.New(rand.NewSource(seed))
	var entries []csr.Entry
	// Use geometric skipping so generation is O(nnz), not O(rows*cols).
	if p <= 0 {
		m, _ := csr.FromEntries(rows, cols, nil)
		return m
	}
	total := int64(rows) * int64(cols)
	for idx := nextHit(rng, -1, p); idx < total; idx = nextHit(rng, idx, p) {
		entries = append(entries, csr.Entry{
			Row: int32(idx / int64(cols)),
			Col: int32(idx % int64(cols)),
			Val: rng.Float64()*2 - 1,
		})
	}
	m, err := csr.FromEntries(rows, cols, entries)
	if err != nil {
		panic(fmt.Sprintf("matgen: ER: %v", err))
	}
	return m
}

// nextHit advances a geometric skip sequence: given the previous hit
// index, it returns the next index that is a hit under probability p.
func nextHit(rng *rand.Rand, prev int64, p float64) int64 {
	// Geometric(p) gap, at least 1.
	u := rng.Float64()
	if u <= 0 {
		u = 1e-300
	}
	gap := int64(1)
	if p < 1 {
		gap = 1 + int64(math.Log(u)/math.Log(1-p))
	}
	return prev + gap
}

// Band generates an n x n banded matrix with the given half-bandwidth:
// row i has entries in columns [i-half, i+half] clipped to range.
// Banded matrices model the regular high-compression-ratio inputs
// (nlpkkt200-like): A² of a band has compression ratio close to the
// band width.
func Band(n, half int, seed int64) *csr.Matrix {
	rng := rand.New(rand.NewSource(seed))
	var entries []csr.Entry
	for i := 0; i < n; i++ {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		for j := lo; j <= hi; j++ {
			v := rng.Float64() + 0.5
			if j == i {
				v += float64(2 * half) // diagonally dominant
			}
			entries = append(entries, csr.Entry{Row: int32(i), Col: int32(j), Val: v})
		}
	}
	m, err := csr.FromEntries(n, n, entries)
	if err != nil {
		panic(fmt.Sprintf("matgen: Band: %v", err))
	}
	return m
}

// Stencil2D generates the 5-point Laplacian stencil matrix on a gx x gy
// grid (n = gx*gy rows). It models the discretized-PDE inputs such as
// stokes.
func Stencil2D(gx, gy int) *csr.Matrix {
	n := gx * gy
	var entries []csr.Entry
	at := func(x, y int) int32 { return int32(y*gx + x) }
	for y := 0; y < gy; y++ {
		for x := 0; x < gx; x++ {
			i := at(x, y)
			entries = append(entries, csr.Entry{Row: i, Col: i, Val: 4})
			if x > 0 {
				entries = append(entries, csr.Entry{Row: i, Col: at(x-1, y), Val: -1})
			}
			if x < gx-1 {
				entries = append(entries, csr.Entry{Row: i, Col: at(x+1, y), Val: -1})
			}
			if y > 0 {
				entries = append(entries, csr.Entry{Row: i, Col: at(x, y-1), Val: -1})
			}
			if y < gy-1 {
				entries = append(entries, csr.Entry{Row: i, Col: at(x, y+1), Val: -1})
			}
		}
	}
	m, err := csr.FromEntries(n, n, entries)
	if err != nil {
		panic(fmt.Sprintf("matgen: Stencil2D: %v", err))
	}
	return m
}

// BlockDiag generates a block-diagonal matrix of nblocks dense blocks of
// size bs x bs each. Dense blocks square to dense blocks, giving a
// compression ratio of about 2*bs — useful for stressing the dense
// accumulator path.
func BlockDiag(nblocks, bs int, seed int64) *csr.Matrix {
	rng := rand.New(rand.NewSource(seed))
	n := nblocks * bs
	var entries []csr.Entry
	for bb := 0; bb < nblocks; bb++ {
		base := int32(bb * bs)
		for i := 0; i < bs; i++ {
			for j := 0; j < bs; j++ {
				entries = append(entries, csr.Entry{Row: base + int32(i), Col: base + int32(j), Val: rng.Float64() + 0.1})
			}
		}
	}
	m, err := csr.FromEntries(n, n, entries)
	if err != nil {
		panic(fmt.Sprintf("matgen: BlockDiag: %v", err))
	}
	return m
}
