// Package partition splits the input matrices of an out-of-core SpGEMM
// into panels, following Section III-D of the paper.
//
// Matrix A is split into row panels — trivial under CSR, since each
// row's storage is contiguous. Matrix B is split into column panels,
// which is harder because CSR gives no direct access to columns. Three
// implementations of the B partitioner are provided:
//
//   - Simplistic: for every panel, scan every row in full and test each
//     element against the panel's column range — O(panels · nnz).
//   - ColOffset: the paper's optimization. An auxiliary col_offset array
//     remembers, per row, where the previous panel's scan stopped;
//     because column ids are sorted within a row, each panel's elements
//     are a contiguous segment, so the whole partitioning is O(nnz).
//   - Parallel: a row-parallel prefix-sum formulation of the same idea.
//
// Column panels store local column ids (rebased so the panel's first
// column is 0) plus the global offset, so downstream dense accumulators
// can be sized to the panel width.
package partition

import (
	"fmt"
	"sync"

	"repro/internal/csr"
)

// RowPanel is a contiguous range of rows of A.
type RowPanel struct {
	// Start and End give the global row range [Start, End).
	Start, End int
	// M is the panel contents; M.Rows == End-Start.
	M *csr.Matrix
}

// ColPanel is a contiguous range of columns of B with local column ids.
type ColPanel struct {
	// Start and End give the global column range [Start, End).
	Start, End int
	// M is the panel contents with column ids rebased by -Start;
	// M.Cols == End-Start.
	M *csr.Matrix
}

// Bounds returns num+1 even boundaries over extent.
func Bounds(extent, num int) []int {
	b := make([]int, num+1)
	for i := 0; i <= num; i++ {
		b[i] = i * extent / num
	}
	return b
}

// RowPanels partitions A into num contiguous row panels of
// near-equal row counts (partition_rows of Algorithm 3).
func RowPanels(a *csr.Matrix, num int) ([]RowPanel, error) {
	if num < 1 || num > max(1, a.Rows) {
		return nil, fmt.Errorf("partition: %d row panels for %d rows", num, a.Rows)
	}
	b := Bounds(a.Rows, num)
	out := make([]RowPanel, num)
	for i := 0; i < num; i++ {
		m, err := a.ExtractRows(b[i], b[i+1])
		if err != nil {
			return nil, fmt.Errorf("partition: row panel %d: %w", i, err)
		}
		out[i] = RowPanel{Start: b[i], End: b[i+1], M: m}
	}
	return out, nil
}

// ColPanelsSimplistic partitions B into num column panels with the
// unoptimized algorithm the paper describes first: each panel scans all
// rows in full. Kept as a baseline for the partitioner ablation.
func ColPanelsSimplistic(b *csr.Matrix, num int) ([]ColPanel, error) {
	if err := checkColArgs(b, num); err != nil {
		return nil, err
	}
	bounds := Bounds(b.Cols, num)
	out := make([]ColPanel, num)
	for p := 0; p < num; p++ {
		startCol, endCol := int32(bounds[p]), int32(bounds[p+1])
		// Stage 1: count non-zeros per row within the column range.
		pm := &csr.Matrix{Rows: b.Rows, Cols: int(endCol - startCol), RowOffsets: make([]int64, b.Rows+1)}
		for r := 0; r < b.Rows; r++ {
			var n int64
			for q := b.RowOffsets[r]; q < b.RowOffsets[r+1]; q++ {
				if c := b.ColIDs[q]; c >= startCol && c < endCol {
					n++
				}
			}
			pm.RowOffsets[r+1] = pm.RowOffsets[r] + n
		}
		// Stage 2: allocate, then fill.
		nnz := pm.RowOffsets[b.Rows]
		pm.ColIDs = make([]int32, nnz)
		pm.Data = make([]float64, nnz)
		w := int64(0)
		for r := 0; r < b.Rows; r++ {
			for q := b.RowOffsets[r]; q < b.RowOffsets[r+1]; q++ {
				if c := b.ColIDs[q]; c >= startCol && c < endCol {
					pm.ColIDs[w] = c - startCol
					pm.Data[w] = b.Data[q]
					w++
				}
			}
		}
		out[p] = ColPanel{Start: int(startCol), End: int(endCol), M: pm}
	}
	return out, nil
}

// ColPanels partitions B into num column panels using the paper's
// col_offset optimization: each row is scanned exactly once across all
// panels, resuming where the previous panel stopped.
func ColPanels(b *csr.Matrix, num int) ([]ColPanel, error) {
	if err := checkColArgs(b, num); err != nil {
		return nil, err
	}
	bounds := Bounds(b.Cols, num)
	// col_offset[r]: earliest location in ColIDs/Data where elements for
	// row r and the current panel can start.
	colOffset := make([]int64, b.Rows)
	for r := 0; r < b.Rows; r++ {
		colOffset[r] = b.RowOffsets[r]
	}
	out := make([]ColPanel, num)
	for p := 0; p < num; p++ {
		startCol, endCol := int32(bounds[p]), int32(bounds[p+1])
		pm := &csr.Matrix{Rows: b.Rows, Cols: int(endCol - startCol), RowOffsets: make([]int64, b.Rows+1)}
		// Stage 1: advance each row's offset to find this panel's
		// contiguous segment; record segment lengths.
		segEnd := make([]int64, b.Rows)
		for r := 0; r < b.Rows; r++ {
			q := colOffset[r]
			for q < b.RowOffsets[r+1] && b.ColIDs[q] < endCol {
				q++
			}
			segEnd[r] = q
			pm.RowOffsets[r+1] = pm.RowOffsets[r] + (q - colOffset[r])
		}
		// Stage 2: allocate and copy the contiguous segments.
		nnz := pm.RowOffsets[b.Rows]
		pm.ColIDs = make([]int32, nnz)
		pm.Data = make([]float64, nnz)
		for r := 0; r < b.Rows; r++ {
			w := pm.RowOffsets[r]
			for q := colOffset[r]; q < segEnd[r]; q++ {
				pm.ColIDs[w] = b.ColIDs[q] - startCol
				pm.Data[w] = b.Data[q]
				w++
			}
			colOffset[r] = segEnd[r]
		}
		out[p] = ColPanel{Start: int(startCol), End: int(endCol), M: pm}
	}
	return out, nil
}

// ColPanelsParallel is the row-parallel prefix-sum formulation: workers
// split the rows, each computing all its rows' per-panel segment
// boundaries in a single sweep; per-panel row offsets then come from
// prefix sums and the fill phase is parallel too.
func ColPanelsParallel(b *csr.Matrix, num, threads int) ([]ColPanel, error) {
	if err := checkColArgs(b, num); err != nil {
		return nil, err
	}
	if threads < 1 {
		threads = 1
	}
	bounds := Bounds(b.Cols, num)

	// seg[p][r] = index into ColIDs where row r's segment for panel p
	// ends (its start is the previous panel's end).
	seg := make([][]int64, num)
	for p := range seg {
		seg[p] = make([]int64, b.Rows)
	}
	rowBounds := Bounds(b.Rows, threads)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		lo, hi := rowBounds[w], rowBounds[w+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for r := lo; r < hi; r++ {
				q := b.RowOffsets[r]
				for p := 0; p < num; p++ {
					endCol := int32(bounds[p+1])
					for q < b.RowOffsets[r+1] && b.ColIDs[q] < endCol {
						q++
					}
					seg[p][r] = q
				}
			}
		}(lo, hi)
	}
	wg.Wait()

	out := make([]ColPanel, num)
	for p := 0; p < num; p++ {
		startCol := int32(bounds[p])
		pm := &csr.Matrix{Rows: b.Rows, Cols: bounds[p+1] - bounds[p], RowOffsets: make([]int64, b.Rows+1)}
		segStart := func(r int) int64 {
			if p == 0 {
				return b.RowOffsets[r]
			}
			return seg[p-1][r]
		}
		for r := 0; r < b.Rows; r++ {
			pm.RowOffsets[r+1] = pm.RowOffsets[r] + (seg[p][r] - segStart(r))
		}
		nnz := pm.RowOffsets[b.Rows]
		pm.ColIDs = make([]int32, nnz)
		pm.Data = make([]float64, nnz)
		for w := 0; w < threads; w++ {
			lo, hi := rowBounds[w], rowBounds[w+1]
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for r := lo; r < hi; r++ {
					wpos := pm.RowOffsets[r]
					for q := segStart(r); q < seg[p][r]; q++ {
						pm.ColIDs[wpos] = b.ColIDs[q] - startCol
						pm.Data[wpos] = b.Data[q]
						wpos++
					}
				}
			}(lo, hi)
		}
		wg.Wait()
		out[p] = ColPanel{Start: bounds[p], End: bounds[p+1], M: pm}
	}
	return out, nil
}

func checkColArgs(b *csr.Matrix, num int) error {
	if num < 1 || num > max(1, b.Cols) {
		return fmt.Errorf("partition: %d column panels for %d columns", num, b.Cols)
	}
	return nil
}
