package partition

import (
	"math/rand"
	"testing"

	"repro/internal/csr"
	"repro/internal/matgen"
)

func randomMatrix(rng *rand.Rand, rows, cols int, density float64) *csr.Matrix {
	var es []csr.Entry
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				es = append(es, csr.Entry{Row: int32(r), Col: int32(c), Val: rng.NormFloat64()})
			}
		}
	}
	m, err := csr.FromEntries(rows, cols, es)
	if err != nil {
		panic(err)
	}
	return m
}

func TestBounds(t *testing.T) {
	b := Bounds(10, 3)
	want := []int{0, 3, 6, 10}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("Bounds(10,3) = %v", b)
		}
	}
	if b := Bounds(5, 5); b[1] != 1 || b[5] != 5 {
		t.Fatalf("Bounds(5,5) = %v", b)
	}
	if b := Bounds(0, 1); b[0] != 0 || b[1] != 0 {
		t.Fatalf("Bounds(0,1) = %v", b)
	}
}

func TestRowPanelsReassemble(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 37, 20, 0.2)
	for _, num := range []int{1, 2, 5, 37} {
		panels, err := RowPanels(a, num)
		if err != nil {
			t.Fatalf("RowPanels(%d): %v", num, err)
		}
		if len(panels) != num {
			t.Fatalf("got %d panels, want %d", len(panels), num)
		}
		row := 0
		for _, p := range panels {
			if p.Start != row {
				t.Fatalf("panel start %d, want %d", p.Start, row)
			}
			if err := p.M.Validate(); err != nil {
				t.Fatalf("panel invalid: %v", err)
			}
			for r := 0; r < p.M.Rows; r++ {
				pc, pv := p.M.Row(r)
				ac, av := a.Row(p.Start + r)
				if len(pc) != len(ac) {
					t.Fatalf("panel row %d nnz mismatch", r)
				}
				for i := range pc {
					if pc[i] != ac[i] || pv[i] != av[i] {
						t.Fatalf("panel row %d element %d mismatch", r, i)
					}
				}
			}
			row = p.End
		}
		if row != a.Rows {
			t.Fatalf("panels cover %d rows, want %d", row, a.Rows)
		}
	}
}

func TestRowPanelsErrors(t *testing.T) {
	a := csr.New(5, 5)
	if _, err := RowPanels(a, 0); err == nil {
		t.Fatal("expected error for 0 panels")
	}
	if _, err := RowPanels(a, 6); err == nil {
		t.Fatal("expected error for more panels than rows")
	}
}

// reassembleCols rebuilds B from its column panels for verification.
func reassembleCols(t *testing.T, rows, cols int, panels []ColPanel) *csr.Matrix {
	t.Helper()
	var es []csr.Entry
	for _, p := range panels {
		if p.M.Cols != p.End-p.Start {
			t.Fatalf("panel [%d,%d) has width %d", p.Start, p.End, p.M.Cols)
		}
		if err := p.M.Validate(); err != nil {
			t.Fatalf("panel [%d,%d) invalid: %v", p.Start, p.End, err)
		}
		for r := 0; r < p.M.Rows; r++ {
			pc, pv := p.M.Row(r)
			for i := range pc {
				es = append(es, csr.Entry{Row: int32(r), Col: pc[i] + int32(p.Start), Val: pv[i]})
			}
		}
	}
	m, err := csr.FromEntries(rows, cols, es)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

type colPartitioner struct {
	name string
	fn   func(*csr.Matrix, int) ([]ColPanel, error)
}

func partitioners() []colPartitioner {
	return []colPartitioner{
		{"simplistic", ColPanelsSimplistic},
		{"coloffset", ColPanels},
		{"parallel-1", func(b *csr.Matrix, n int) ([]ColPanel, error) { return ColPanelsParallel(b, n, 1) }},
		{"parallel-4", func(b *csr.Matrix, n int) ([]ColPanel, error) { return ColPanelsParallel(b, n, 4) }},
	}
}

func TestColPanelsReassemble(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, pt := range partitioners() {
		for trial := 0; trial < 5; trial++ {
			b := randomMatrix(rng, 20+rng.Intn(30), 15+rng.Intn(30), 0.15)
			for _, num := range []int{1, 2, 3, 7} {
				panels, err := pt.fn(b, num)
				if err != nil {
					t.Fatalf("%s(%d): %v", pt.name, num, err)
				}
				got := reassembleCols(t, b.Rows, b.Cols, panels)
				if !csr.Equal(b, got, 0) {
					t.Fatalf("%s(%d): reassembly mismatch: %s", pt.name, num, csr.Diff(b, got, 0))
				}
			}
		}
	}
}

func TestColPartitionersAgree(t *testing.T) {
	b := matgen.RMAT(9, 6, 0.57, 0.19, 0.19, 3)
	for _, num := range []int{1, 3, 8} {
		want, err := ColPanelsSimplistic(b, num)
		if err != nil {
			t.Fatal(err)
		}
		for _, pt := range partitioners()[1:] {
			got, err := pt.fn(b, num)
			if err != nil {
				t.Fatalf("%s: %v", pt.name, err)
			}
			for i := range want {
				if got[i].Start != want[i].Start || got[i].End != want[i].End {
					t.Fatalf("%s: panel %d range [%d,%d) want [%d,%d)", pt.name, i, got[i].Start, got[i].End, want[i].Start, want[i].End)
				}
				if !csr.Equal(got[i].M, want[i].M, 0) {
					t.Fatalf("%s: panel %d contents differ: %s", pt.name, i, csr.Diff(got[i].M, want[i].M, 0))
				}
			}
		}
	}
}

func TestColPanelsNnzConservation(t *testing.T) {
	b := matgen.Band(500, 3, 7)
	for _, pt := range partitioners() {
		panels, err := pt.fn(b, 5)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, p := range panels {
			total += p.M.Nnz()
		}
		if total != b.Nnz() {
			t.Fatalf("%s: panels hold %d nnz, matrix has %d", pt.name, total, b.Nnz())
		}
	}
}

func TestColPanelsEmptyMatrix(t *testing.T) {
	b := csr.New(10, 10)
	for _, pt := range partitioners() {
		panels, err := pt.fn(b, 3)
		if err != nil {
			t.Fatalf("%s: %v", pt.name, err)
		}
		for _, p := range panels {
			if p.M.Nnz() != 0 {
				t.Fatalf("%s: empty matrix produced nnz", pt.name)
			}
		}
	}
}

func TestColPanelsErrors(t *testing.T) {
	b := csr.New(4, 4)
	for _, pt := range partitioners() {
		if _, err := pt.fn(b, 0); err == nil {
			t.Fatalf("%s: expected error for 0 panels", pt.name)
		}
		if _, err := pt.fn(b, 5); err == nil {
			t.Fatalf("%s: expected error for more panels than columns", pt.name)
		}
	}
}

func BenchmarkColPanelsSimplistic(b *testing.B) {
	m := matgen.RMAT(12, 8, 0.57, 0.19, 0.19, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ColPanelsSimplistic(m, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColPanelsColOffset(b *testing.B) {
	m := matgen.RMAT(12, 8, 0.57, 0.19, 0.19, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ColPanels(m, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColPanelsParallel(b *testing.B) {
	m := matgen.RMAT(12, 8, 0.57, 0.19, 0.19, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ColPanelsParallel(m, 8, 4); err != nil {
			b.Fatal(err)
		}
	}
}
