package hybrid

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpuspgemm"
	"repro/internal/csr"
	"repro/internal/gpusim"
	"repro/internal/matgen"
)

func cfg() gpusim.DeviceConfig { return gpusim.ScaledV100Config(256 << 20) }

func grid(r, c int) core.Options { return core.Options{RowPanels: r, ColPanels: c} }

func TestSplitBasic(t *testing.T) {
	flops := []int64{10, 40, 30, 20} // total 100
	gpu, cpu := Split(flops, 0.65, true)
	// Sorted desc: 1(40), 2(30), 3(20), 0(10); prefix >= 65 at 40+30=70.
	if len(gpu) != 2 || gpu[0] != 1 || gpu[1] != 2 {
		t.Fatalf("gpu = %v", gpu)
	}
	if len(cpu) != 2 || cpu[0] != 3 || cpu[1] != 0 {
		t.Fatalf("cpu = %v", cpu)
	}

	gpu, cpu = Split(flops, 0.65, false)
	// Default order: 10+40+30 = 80 >= 65 at index 2.
	if len(gpu) != 3 || gpu[0] != 0 || gpu[2] != 2 {
		t.Fatalf("default gpu = %v", gpu)
	}
	if len(cpu) != 1 || cpu[0] != 3 {
		t.Fatalf("default cpu = %v", cpu)
	}
}

func TestSplitEdgeCases(t *testing.T) {
	gpu, cpu := Split(nil, 0.65, true)
	if len(gpu) != 0 || len(cpu) != 0 {
		t.Fatal("empty split wrong")
	}
	gpu, cpu = Split([]int64{0, 0}, 0.65, true)
	if len(gpu) != 2 || len(cpu) != 0 {
		t.Fatalf("zero-flop split: gpu=%v cpu=%v", gpu, cpu)
	}
	// Ratio 1.0: everything on GPU.
	gpu, cpu = Split([]int64{5, 5}, 1.0, true)
	if len(gpu) != 2 || len(cpu) != 0 {
		t.Fatalf("ratio 1: gpu=%v cpu=%v", gpu, cpu)
	}
}

func TestHybridMatchesSequential(t *testing.T) {
	mats := []*csr.Matrix{
		matgen.RMAT(10, 8, 0.57, 0.19, 0.19, 21),
		matgen.Band(800, 3, 22),
	}
	for mi, a := range mats {
		want, err := cpuspgemm.Sequential(a, a)
		if err != nil {
			t.Fatal(err)
		}
		for _, reorder := range []bool{false, true} {
			got, st, err := Run(a, a, cfg(), Options{Core: grid(3, 3), Reorder: reorder})
			if err != nil {
				t.Fatalf("matrix %d reorder=%v: %v", mi, reorder, err)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("matrix %d: invalid: %v", mi, err)
			}
			if !csr.Equal(got, want, 1e-9) {
				t.Fatalf("matrix %d reorder=%v: %s", mi, reorder, csr.Diff(got, want, 1e-9))
			}
			if st.GPUChunks+st.CPUChunks != 9 {
				t.Fatalf("chunks %d + %d != 9", st.GPUChunks, st.CPUChunks)
			}
			if st.GPUFlops+st.CPUFlops != st.Flops {
				t.Fatalf("flop split %d+%d != %d", st.GPUFlops, st.CPUFlops, st.Flops)
			}
		}
	}
}

func TestHybridFlopShareRespectsRatio(t *testing.T) {
	a := matgen.RMAT(10, 10, 0.57, 0.19, 0.19, 23)
	_, st, err := Run(a, a, cfg(), Options{Core: grid(3, 4), Reorder: true, Ratio: 0.65})
	if err != nil {
		t.Fatal(err)
	}
	share := float64(st.GPUFlops) / float64(st.Flops)
	if share < 0.65 {
		t.Fatalf("GPU share %.3f below the requested ratio", share)
	}
	// The prefix stops at the first chunk crossing the ratio, so the
	// share must not wildly exceed it either (one chunk of slack).
	if share > 0.95 {
		t.Fatalf("GPU share %.3f suspiciously high", share)
	}
}

func TestHybridFasterThanGPUOnly(t *testing.T) {
	a := matgen.RMAT(11, 10, 0.57, 0.19, 0.19, 24)
	_, gpuSt, err := core.Run(a, a, cfg(), core.Options{RowPanels: 3, ColPanels: 3, Async: true, Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	_, hySt, err := Run(a, a, cfg(), Options{Core: grid(3, 3), Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if hySt.TotalSec >= gpuSt.TotalSec {
		t.Fatalf("hybrid %.4fs not faster than GPU-only %.4fs", hySt.TotalSec, gpuSt.TotalSec)
	}
}

func TestReorderingEffect(t *testing.T) {
	// Figure 9: reordering must clearly help on banded matrices (whose
	// default row-major order mixes empty and diagonal chunks) and stay
	// within chunk-granularity noise of the default on skewed graphs.
	band := matgen.Band(6000, 5, 29)
	_, def, err := Run(band, band, cfg(), Options{Core: grid(5, 4), Reorder: false})
	if err != nil {
		t.Fatal(err)
	}
	_, reord, err := Run(band, band, cfg(), Options{Core: grid(5, 4), Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if reord.TotalSec >= def.TotalSec {
		t.Fatalf("reordering did not help on band: %.4fs vs default %.4fs", reord.TotalSec, def.TotalSec)
	}

	rmat := matgen.RMAT(11, 12, 0.6, 0.17, 0.17, 25)
	_, def, err = Run(rmat, rmat, cfg(), Options{Core: grid(4, 4), Reorder: false})
	if err != nil {
		t.Fatal(err)
	}
	_, reord, err = Run(rmat, rmat, cfg(), Options{Core: grid(4, 4), Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if reord.TotalSec > def.TotalSec*1.10 {
		t.Fatalf("reordering hurt beyond noise: %.4fs vs default %.4fs", reord.TotalSec, def.TotalSec)
	}
}

func TestRunCPUOnly(t *testing.T) {
	a := matgen.Band(600, 4, 26)
	want, _ := cpuspgemm.Sequential(a, a)
	got, st, err := RunCPUOnly(a, a, cfg(), HostModel{})
	if err != nil {
		t.Fatal(err)
	}
	if !csr.Equal(got, want, 1e-9) {
		t.Fatalf("CPU-only product wrong: %s", csr.Diff(got, want, 1e-9))
	}
	if st.TotalSec <= 0 || st.GFLOPS <= 0 {
		t.Fatalf("bad stats %+v", st)
	}
	if st.Flops != csr.Flops(a, a) {
		t.Fatalf("flops %d, want %d", st.Flops, csr.Flops(a, a))
	}
}

func TestGPUBeatsCPUBaseline(t *testing.T) {
	// Figure 7's headline: out-of-core GPU about 2-3x over multi-core
	// CPU under the calibrated models.
	for _, gen := range []func() *csr.Matrix{
		func() *csr.Matrix { return matgen.RMAT(11, 10, 0.57, 0.19, 0.19, 27) },
		func() *csr.Matrix { return matgen.Band(4000, 5, 28) },
	} {
		a := gen()
		_, cpuSt, err := RunCPUOnly(a, a, cfg(), HostModel{})
		if err != nil {
			t.Fatal(err)
		}
		_, gpuSt, err := core.Run(a, a, cfg(), core.Options{RowPanels: 3, ColPanels: 3, Async: true, Reorder: true})
		if err != nil {
			t.Fatal(err)
		}
		ratio := cpuSt.TotalSec / gpuSt.TotalSec
		if ratio < 1.2 || ratio > 6 {
			t.Fatalf("GPU/CPU speedup %.2f outside plausible band (cpu %.4fs gpu %.4fs)",
				ratio, cpuSt.TotalSec, gpuSt.TotalSec)
		}
	}
}

func TestChunkSeconds(t *testing.T) {
	h := HostModel{HashRate: 2, DenseRate: 4, OutputBandwidth: 8}
	if got := h.ChunkSeconds(4, 8, 16); got != 6 {
		t.Fatalf("ChunkSeconds = %v, want 6", got)
	}
	var zero HostModel
	if zero.ChunkSeconds(100, 100, 100) != 0 {
		t.Fatal("zero model must cost nothing")
	}
}

func TestSplitCount(t *testing.T) {
	flops := []int64{10, 40, 30, 20}
	gpu, cpu := SplitCount(flops, 2, true)
	if len(gpu) != 2 || gpu[0] != 1 || gpu[1] != 2 {
		t.Fatalf("gpu = %v", gpu)
	}
	if len(cpu) != 2 {
		t.Fatalf("cpu = %v", cpu)
	}
	// Unsorted variant keeps original order.
	gpu, _ = SplitCount(flops, 3, false)
	if gpu[0] != 0 || gpu[1] != 1 || gpu[2] != 2 {
		t.Fatalf("unsorted gpu = %v", gpu)
	}
	// Over-length count is clamped.
	gpu, cpu = SplitCount(flops, 99, true)
	if len(gpu) != 4 || len(cpu) != 0 {
		t.Fatalf("clamped: gpu=%v cpu=%v", gpu, cpu)
	}
}

func TestForceGPUChunks(t *testing.T) {
	a := matgen.RMAT(9, 8, 0.57, 0.19, 0.19, 51)
	want, _ := cpuspgemm.Sequential(a, a)
	for _, n := range []int{1, 4, 9} {
		got, st, err := Run(a, a, cfg(), Options{Core: grid(3, 3), Reorder: true, ForceGPUChunks: n})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if st.GPUChunks != n {
			t.Fatalf("n=%d: GPUChunks = %d", n, st.GPUChunks)
		}
		if !csr.Equal(got, want, 1e-9) {
			t.Fatalf("n=%d: wrong product", n)
		}
	}
}
