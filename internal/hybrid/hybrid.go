// Package hybrid implements the paper's CPU-GPU hybrid SpGEMM engine
// (Section III-C, Algorithm 4).
//
// The flop count of every chunk is computed up front; chunks are sorted
// by decreasing flops; the most expensive chunks — at least Ratio of
// the total flops, Ratio = S/(S+1) for an expected GPU/CPU speedup S —
// go to the GPU, the rest to the CPU. A GPU worker then runs the
// asynchronous out-of-core pipeline over its chunks while a CPU worker
// (the multi-core hash SpGEMM of Nagasaka et al.) processes the
// remainder concurrently; the run ends when both finish.
package hybrid

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cpuspgemm"
	"repro/internal/csr"
	"repro/internal/faults"
	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/speck"
)

// DefaultRatio is the share of total flops assigned to the GPU,
// computed as S/(S+1) for the expected GPU/CPU speedup S (Section
// III-C). The paper's hardware gives S about 1.9 and a 65% ratio; the
// calibrated simulation sits at S about 2.1, giving 68%. The paper
// notes the ratio "might change if we use another GPU or CPU, but we
// should still be able to use a [fixed] ratio" — this constant is that
// fixed ratio for the simulated node.
const DefaultRatio = 0.68

// HostModel is the cost model of the multi-core CPU worker in
// simulated time. CPU SpGEMM time decomposes into an arithmetic term
// (flops at FlopRate) and an output-write term (the product's bytes at
// OutputBandwidth); the second term is why measured CPU GFLOPS track
// the compression ratio, on the paper's Xeon as in this model. Values
// are calibrated so the simulated multi-core implementation sits 2-3x
// below the out-of-core GPU across the suite, as the paper measures
// for its 28-thread Xeon E5-2680.
type HostModel struct {
	// HashRate and DenseRate are effective multiply-add throughputs in
	// flops/s for sparse (hash-accumulated) and dense output rows.
	HashRate, DenseRate float64
	// OutputBandwidth is the effective rate at which the CPU engine
	// materializes the output CSR arrays, bytes/s.
	OutputBandwidth float64
	// Threads is the worker thread count of the real CPU
	// implementation (the simulated duration does not depend on it,
	// but the actual computation uses it).
	Threads int
}

// DefaultHostModel returns the calibrated Xeon E5-2680 v2 model.
func DefaultHostModel() HostModel {
	return HostModel{HashRate: 0.62e9, DenseRate: 1.6e9, OutputBandwidth: 5.0e9, Threads: 0}
}

// ChunkSeconds converts a chunk's work into simulated CPU seconds.
func (h HostModel) ChunkSeconds(hashFlops, denseFlops, outputBytes int64) float64 {
	var s float64
	if h.HashRate > 0 {
		s += float64(hashFlops) / h.HashRate
	}
	if h.DenseRate > 0 {
		s += float64(denseFlops) / h.DenseRate
	}
	if h.OutputBandwidth > 0 {
		s += float64(outputBytes) / h.OutputBandwidth
	}
	return s
}

// Options configures a hybrid run.
type Options struct {
	// Core configures the chunk grid and the GPU pipeline. Async
	// defaults to true for the hybrid engine.
	Core core.Options
	// Ratio is the GPU flop share; 0 means DefaultRatio.
	Ratio float64
	// Reorder assigns the highest-flop chunks to the GPU and processes
	// them in decreasing order (the paper's design). When false, the
	// "default implementation" of Figure 9 is used: chunks are taken
	// in row-major order until the ratio is met.
	Reorder bool
	// Host is the CPU worker model; zero value means DefaultHostModel.
	Host HostModel
	// ForceGPUChunks, when positive, overrides Ratio and assigns
	// exactly this many chunks (in schedule order) to the GPU. The
	// exhaustive search behind the paper's Table III uses it.
	ForceGPUChunks int
	// Metrics is an optional observability sink; it receives the
	// combined GPU+CPU timeline and the split counters. It also
	// propagates to the underlying core engine and its CPU worker.
	Metrics *metrics.Collector
}

// Stats extends the core stats with the split between devices.
type Stats struct {
	core.Stats
	// GPUChunks and CPUChunks count the chunks each device processed.
	GPUChunks, CPUChunks int
	// GPUFlops and CPUFlops split the flops between devices.
	GPUFlops, CPUFlops int64
	// GPUSec and CPUSec are each worker's busy makespan.
	GPUSec, CPUSec float64
	// Ratio is the flop share requested for the GPU.
	Ratio float64
	// FallbackChunks counts GPU chunks the CPU worker absorbed after
	// their device-side retries were exhausted (graceful degradation).
	FallbackChunks int
}

// Counters extends the core counters with the device split, keeping
// Stats a metrics.Report (Seconds, FlopCount, ... promote from the
// embedded core.Stats).
func (s Stats) Counters() map[string]int64 {
	out := s.Stats.Counters()
	out["gpu_chunks"] = int64(s.GPUChunks)
	out["cpu_chunks"] = int64(s.CPUChunks)
	out["gpu_flops"] = s.GPUFlops
	out["cpu_flops"] = s.CPUFlops
	out[metrics.CounterFallbacks] = int64(s.FallbackChunks)
	return out
}

// Split computes Algorithm 4's chunk assignment: it returns the chunk
// ids for the GPU and the CPU. When reorder is set the ids are sorted
// by decreasing flops before the prefix is taken; otherwise the
// original order is kept ("default implementation").
func Split(flops []int64, ratio float64, reorder bool) (gpu, cpu []int) {
	ids := make([]int, len(flops))
	for i := range ids {
		ids[i] = i
	}
	if reorder {
		sort.SliceStable(ids, func(i, j int) bool { return flops[ids[i]] > flops[ids[j]] })
	}
	var total int64
	for _, f := range flops {
		total += f
	}
	if total == 0 {
		return ids, nil
	}
	var acc int64
	numGPU := len(ids)
	for i, id := range ids {
		acc += flops[id]
		if float64(acc)/float64(total) >= ratio {
			numGPU = i + 1
			break
		}
	}
	return ids[:numGPU], ids[numGPU:]
}

// SplitCount assigns exactly numGPU chunks (in schedule order) to the
// GPU, used by the exhaustive search of Table III.
func SplitCount(flops []int64, numGPU int, reorder bool) (gpu, cpu []int) {
	ids := make([]int, len(flops))
	for i := range ids {
		ids[i] = i
	}
	if reorder {
		sort.SliceStable(ids, func(i, j int) bool { return flops[ids[i]] > flops[ids[j]] })
	}
	if numGPU > len(ids) {
		numGPU = len(ids)
	}
	return ids[:numGPU], ids[numGPU:]
}

// Run multiplies A·B with the hybrid engine on a fresh simulated
// device and host, returning the exact product and statistics.
func Run(a, b *csr.Matrix, cfg gpusim.DeviceConfig, opts Options) (*csr.Matrix, Stats, error) {
	if opts.Ratio <= 0 {
		opts.Ratio = DefaultRatio
	}
	if opts.Host == (HostModel{}) {
		opts.Host = DefaultHostModel()
	}
	opts.Core.Async = true
	// The GPU worker's own chunk list is already ordered by the split;
	// core-level reordering must not permute it again.
	opts.Core.Reorder = false
	// The engine records host-side wall phases (partition, assemble)
	// into the same collector; counters and the timeline are published
	// once, below, after the run completes.
	opts.Core.Metrics = opts.Metrics

	env := sim.NewEnv()
	dev := gpusim.NewDevice(env, cfg)
	eng, err := core.NewEngine(dev, a, b, opts.Core)
	if err != nil {
		return nil, Stats{}, err
	}
	// Release device allocations and publish the leak-audit counter on
	// every exit path, including deadline aborts.
	defer eng.Teardown()

	flops := eng.ChunkFlops()
	var gpuIDs, cpuIDs []int
	if n := opts.ForceGPUChunks; n > 0 {
		gpuIDs, cpuIDs = SplitCount(flops, n, opts.Reorder)
	} else {
		gpuIDs, cpuIDs = Split(flops, opts.Ratio, opts.Reorder)
	}

	st := Stats{Ratio: opts.Ratio, GPUChunks: len(gpuIDs), CPUChunks: len(cpuIDs)}
	for _, id := range gpuIDs {
		st.GPUFlops += flops[id]
	}
	for _, id := range cpuIDs {
		st.CPUFlops += flops[id]
	}

	// The CPU worker's throughput is a property of the whole matrix
	// (the multicore implementation's cache behavior is set by B's
	// global structure), so per-chunk durations are the matrix-level
	// time prorated by flops — consistent with the paper's use of
	// flops as the workload indicator for both devices.
	hashF, denseF, outNnz := speck.ClassifyFlops(a, b)
	var total int64
	for _, f := range flops {
		total += f
	}
	wholeSec := opts.Host.ChunkSeconds(hashF, denseF, outNnz*12+int64(a.Rows+1)*8)

	// cpuChunk runs one chunk on the real multi-core CPU engine and
	// registers the result under a simulated span of the given label.
	// The hash implementation is the one the paper takes from Nagasaka
	// et al.; it runs on the shared work-stealing runtime and recycles
	// its accumulators through the internal/accum pool, so successive
	// chunks reuse the tables the previous chunk grew. Its own metrics
	// stay off: the hybrid run publishes one combined counter set
	// below, and the CPU share is already the timeline's "cpu" lane.
	cpuChunk := func(p *sim.Proc, id int, label string) error {
		nc := len(eng.ColPanels)
		rp, cp := eng.RowPanels[id/nc], eng.ColPanels[id%nc]
		c, err := cpuspgemm.Multiply(rp.M, cp.M, cpuspgemm.Options{
			Threads: opts.Host.Threads, Method: cpuspgemm.Hash,
		})
		if err != nil {
			return err
		}
		sec := 0.0
		if total > 0 {
			sec = wholeSec * float64(flops[id]) / float64(total)
		}
		p.Span("cpu", fmt.Sprintf("%s %d", label, id), sim.Seconds(sec))
		eng.PutCPUResult(id, c, flops[id])
		return nil
	}
	pastDeadline := func() (float64, bool) {
		now := sim.SecondsAt(env.Now())
		return now, opts.Core.DeadlineSec > 0 && now > opts.Core.DeadlineSec
	}

	var cpuErr error
	gpuDone := &sim.Signal{}
	env.Spawn("gpu", func(p *sim.Proc) {
		eng.ProcessChunks(p, gpuIDs)
		st.GPUSec = sim.SecondsAt(env.Now())
		gpuDone.Fire(p)
	})
	env.Spawn("cpu", func(p *sim.Proc) {
		for _, id := range cpuIDs {
			if now, late := pastDeadline(); late {
				cpuErr = fmt.Errorf("hybrid: cpu worker: %w: simulated clock at %.6fs past %.6fs",
					faults.ErrDeadline, now, opts.Core.DeadlineSec)
				return
			}
			if err := cpuChunk(p, id, "chunk"); err != nil {
				cpuErr = err
				return
			}
		}
		st.CPUSec = sim.SecondsAt(env.Now())

		// Graceful degradation: chunks the GPU abandoned (retries
		// exhausted, arena misfits, a lost device) drain to this
		// worker once the GPU pipeline winds down, instead of failing
		// the run. The same exact arithmetic runs either way, so the
		// product is unchanged — only the simulated schedule pays.
		p.Await(gpuDone)
		orphans := make([]int, 0, len(eng.Failed()))
		for id, ferr := range eng.Failed() {
			if core.IsRecoverable(ferr) {
				orphans = append(orphans, id)
			}
		}
		if len(orphans) == 0 {
			return
		}
		sort.Ints(orphans)
		for _, id := range orphans {
			if now, late := pastDeadline(); late {
				cpuErr = fmt.Errorf("hybrid: fallback: %w: simulated clock at %.6fs past %.6fs",
					faults.ErrDeadline, now, opts.Core.DeadlineSec)
				return
			}
			if err := cpuChunk(p, id, "fallback chunk"); err != nil {
				cpuErr = err
				return
			}
			eng.ClearFailed(id)
			st.FallbackChunks++
		}
		st.CPUSec = sim.SecondsAt(env.Now())
	})
	if err := env.Run(); err != nil {
		return nil, Stats{}, err
	}
	if eng.Err() != nil {
		return nil, Stats{}, eng.Err()
	}
	if cpuErr != nil {
		return nil, Stats{}, cpuErr
	}
	if err := eng.FailedError(); err != nil {
		return nil, Stats{}, err
	}
	c, err := eng.Assemble()
	if err != nil {
		return nil, Stats{}, err
	}
	st.Stats = eng.StatsFor(env, c)
	if m := opts.Metrics; m != nil {
		m.ImportSim(env.Timeline)
		for k, v := range st.Counters() {
			m.Add(k, v)
		}
		for kind, n := range dev.Faults().Counts() {
			m.Add("faults_injected_"+kind, n)
		}
	}
	return c, st, nil
}

// RunCPUOnly multiplies A·B entirely on the simulated multi-core CPU
// (the paper's baseline in Figure 7): real computation via the
// Nagasaka-style hash SpGEMM, simulated duration from the host model.
func RunCPUOnly(a, b *csr.Matrix, cfg gpusim.DeviceConfig, host HostModel) (*csr.Matrix, Stats, error) {
	if host == (HostModel{}) {
		host = DefaultHostModel()
	}
	c, err := cpuspgemm.Multiply(a, b, cpuspgemm.Options{Threads: host.Threads, Method: cpuspgemm.Hash})
	if err != nil {
		return nil, Stats{}, err
	}
	hashF, denseF, _ := speck.ClassifyFlops(a, b)
	flops := hashF + denseF
	total := host.ChunkSeconds(hashF, denseF, c.Bytes())
	st := Stats{
		CPUChunks: 1,
		CPUFlops:  flops,
		CPUSec:    total,
	}
	st.Stats = core.Stats{
		TotalSec: total,
		Flops:    flops,
		NnzC:     c.Nnz(),
		Chunks:   1,
	}
	if total > 0 {
		st.Stats.GFLOPS = float64(flops) / total / 1e9
	}
	return c, st, nil
}
