// Package summa implements distributed-memory sparse SUMMA SpGEMM on
// a simulated cluster — the algorithm behind the paper's reference
// [33] (Selvitopi et al., "Optimizing high performance Markov
// clustering for pre-exascale architectures"), which the related-work
// section singles out as the CPU-GPU distributed counterpart of the
// paper's single-node framework.
//
// The classic 2-D SUMMA formulation runs on a q x q process grid: A
// and B are partitioned into q x q blocks, C(i,j) lives on process
// (i,j), and in stage k process (i,j) receives A(i,k) (broadcast along
// its process row) and B(k,j) (broadcast along its process column),
// multiplies them and accumulates into its local C block. As
// everywhere in this repository, the arithmetic is real (the returned
// matrix is exact) while time comes from a cluster cost model: tree
// broadcasts over links with finite bandwidth and latency, and a
// per-node compute model.
package summa

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/core"
	"repro/internal/cpuspgemm"
	"repro/internal/csr"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/sim"
)

// Config describes the simulated cluster.
type Config struct {
	// Q is the process-grid side: Q*Q nodes. Zero means 1.
	Q int
	// NetBandwidth is the per-link bandwidth in bytes/second; zero
	// means 10 GB/s (a 100 Gb/s fabric).
	NetBandwidth float64
	// NetLatency is the per-message latency in seconds; zero means
	// 5 microseconds.
	NetLatency float64
	// NodeFlopRate is a node's effective SpGEMM throughput in flops/s;
	// zero means 2 GFLOP/s (one multicore CPU node, matching the
	// hybrid package's host model).
	NodeFlopRate float64
	// Threads bounds the real computation's parallelism per block
	// multiply (0 = GOMAXPROCS).
	Threads int
	// Pipelined enables the pipelined variant of reference [33]: block
	// fetches run ahead of the computation and the per-stage global
	// barrier is dropped, so a node proceeds as soon as its own blocks
	// arrive. This is what lets band-structured matrices (whose work
	// concentrates in one stage per node) scale.
	Pipelined bool
	// Metrics is an optional observability sink receiving the cluster
	// timeline (net and compute lanes) and the run counters.
	Metrics *metrics.Collector
	// DeadlineSec aborts the run with faults.ErrDeadline once the
	// simulated clock passes it (checked between SUMMA stages). 0 means
	// no deadline.
	DeadlineSec float64
}

func (c Config) withDefaults() Config {
	if c.Q < 1 {
		c.Q = 1
	}
	if c.NetBandwidth == 0 {
		c.NetBandwidth = 10e9
	}
	if c.NetLatency == 0 {
		c.NetLatency = 5e-6
	}
	if c.NodeFlopRate == 0 {
		c.NodeFlopRate = 2e9
	}
	return c
}

// Stats reports a distributed run.
type Stats struct {
	// TotalSec is the simulated makespan of all stages.
	TotalSec float64
	// CommSec and CompSec are the maximum per-node communication and
	// computation times (the critical path splits).
	CommSec, CompSec float64
	// Flops, GFLOPS and NnzC as elsewhere.
	Flops  int64
	GFLOPS float64
	NnzC   int64
	// Nodes is Q*Q.
	Nodes int
	// NetBytes is the total payload broadcast over the fabric.
	NetBytes int64
}

// Seconds returns the simulated makespan; part of metrics.Report.
func (s Stats) Seconds() float64 { return s.TotalSec }

// FlopCount returns the multiply-add flop count (x2) of the product.
func (s Stats) FlopCount() int64 { return s.Flops }

// Throughput returns the run's GFLOPS.
func (s Stats) Throughput() float64 { return s.GFLOPS }

// OutputNnz returns the product's non-zero count.
func (s Stats) OutputNnz() int64 { return s.NnzC }

// Counters returns the flat key/value snapshot of the run.
func (s Stats) Counters() map[string]int64 {
	return map[string]int64{
		metrics.CounterFlops: s.Flops,
		metrics.CounterNnzC:  s.NnzC,
		"nodes":              int64(s.Nodes),
		"net_bytes":          s.NetBytes,
	}
}

// block is one distributed block of a matrix with its global offsets.
type block struct {
	m        *csr.Matrix
	rowStart int
	colStart int
}

// partition2D splits m into q x q blocks using even boundaries.
func partition2D(m *csr.Matrix, q int) ([][]block, error) {
	rows, err := partition.RowPanels(m, q)
	if err != nil {
		return nil, err
	}
	out := make([][]block, q)
	for i, rp := range rows {
		cps, err := partition.ColPanels(rp.M, q)
		if err != nil {
			return nil, err
		}
		out[i] = make([]block, q)
		for j, cp := range cps {
			out[i][j] = block{m: cp.M, rowStart: rp.Start, colStart: cp.Start}
		}
	}
	return out, nil
}

// Run multiplies A·B with sparse SUMMA on a simulated Q x Q cluster.
func Run(a, b *csr.Matrix, cfg Config) (*csr.Matrix, Stats, error) {
	if a.Cols != b.Rows {
		return nil, Stats{}, fmt.Errorf("summa: dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	cfg = cfg.withDefaults()
	q := cfg.Q
	if q > a.Rows || q > a.Cols || q > b.Cols {
		return nil, Stats{}, fmt.Errorf("summa: grid %dx%d too fine for %dx%d · %dx%d", q, q, a.Rows, a.Cols, b.Rows, b.Cols)
	}

	// Distribute. A's column blocks and B's row blocks share the inner
	// boundaries, so local indices line up.
	ab, err := partition2D(a, q)
	if err != nil {
		return nil, Stats{}, err
	}
	bb, err := partition2D(b, q)
	if err != nil {
		return nil, Stats{}, err
	}

	// bcast models a binomial-tree broadcast among q nodes.
	bcast := func(bytes int64) float64 {
		if q == 1 {
			return 0
		}
		steps := bits.Len(uint(q - 1)) // ceil(log2(q))
		return float64(steps) * (cfg.NetLatency + float64(bytes)/cfg.NetBandwidth)
	}

	env := sim.NewEnv()
	type nodeState struct {
		c       *csr.Matrix // local C block
		commSec float64
		compSec float64
		err     error
	}
	nodes := make([][]nodeState, q)
	for i := range nodes {
		nodes[i] = make([]nodeState, q)
	}

	// Stage barrier for the plain variant: all nodes finish stage k
	// before k+1 (the broadcasts are collectives). The pipelined
	// variant drops it and instead gates each node on its own fetches.
	barriers := make([]*sim.Signal, q+1)
	for k := range barriers {
		barriers[k] = &sim.Signal{}
	}
	arrived := make([]int, q+1)

	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			i, j := i, j
			env.Spawn(fmt.Sprintf("node(%d,%d)", i, j), func(p *sim.Proc) {
				st := &nodes[i][j]

				// stageComm is the node's receive time for stage k.
				stageComm := func(k int) float64 {
					var comm float64
					if k != j {
						comm += bcast(ab[i][k].m.Bytes())
					}
					if k != i {
						comm += bcast(bb[k][j].m.Bytes())
					}
					return comm
				}

				// Pipelined mode: a fetcher process runs the receives
				// ahead of the compute loop.
				var fetched []*sim.Signal
				if cfg.Pipelined {
					fetched = make([]*sim.Signal, q)
					for k := range fetched {
						fetched[k] = &sim.Signal{}
					}
					env.Spawn(fmt.Sprintf("fetch(%d,%d)", i, j), func(f *sim.Proc) {
						for k := 0; k < q; k++ {
							if comm := stageComm(k); comm > 0 {
								f.Span("net", fmt.Sprintf("n(%d,%d) stage %d", i, j, k), sim.Seconds(comm))
								st.commSec += comm
							}
							fetched[k].Fire(f)
						}
					})
				}

				for k := 0; k < q; k++ {
					if d := cfg.DeadlineSec; d > 0 && sim.SecondsAt(env.Now()) > d {
						st.err = fmt.Errorf("summa: node(%d,%d) stage %d: %w: simulated clock at %.6fs past %.6fs",
							i, j, k, faults.ErrDeadline, sim.SecondsAt(env.Now()), d)
						return
					}
					if cfg.Pipelined {
						p.Await(fetched[k])
					} else if comm := stageComm(k); comm > 0 {
						p.Span("net", fmt.Sprintf("n(%d,%d) stage %d", i, j, k), sim.Seconds(comm))
						st.commSec += comm
					}
					// Local multiply-accumulate (real arithmetic).
					prod, err := cpuspgemm.Multiply(ab[i][k].m, bb[k][j].m, cpuspgemm.Options{Threads: cfg.Threads})
					if err != nil {
						st.err = err
						return
					}
					flops := csr.Flops(ab[i][k].m, bb[k][j].m)
					comp := float64(flops) / cfg.NodeFlopRate
					if comp > 0 {
						p.Span("compute", fmt.Sprintf("n(%d,%d) stage %d", i, j, k), sim.Seconds(comp))
						st.compSec += comp
					}
					if st.c == nil {
						st.c = prod
					} else if st.c, err = csr.Add(st.c, prod); err != nil {
						st.err = err
						return
					}
					if !cfg.Pipelined {
						// Barrier.
						arrived[k]++
						if arrived[k] == q*q {
							barriers[k].Fire(p)
						} else {
							p.Await(barriers[k])
						}
					}
				}
			})
		}
	}
	if err := env.Run(); err != nil {
		// A node that aborts at the deadline strands its peers at the
		// stage barrier; surface the typed node error over the kernel's
		// deadlock report.
		for i := 0; i < q; i++ {
			for j := 0; j < q; j++ {
				if nodes[i][j].err != nil {
					return nil, Stats{}, nodes[i][j].err
				}
			}
		}
		return nil, Stats{}, err
	}

	st := Stats{Nodes: q * q, TotalSec: sim.SecondsAt(env.Now())}
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			n := &nodes[i][j]
			if n.err != nil {
				return nil, Stats{}, n.err
			}
			st.CommSec = math.Max(st.CommSec, n.commSec)
			st.CompSec = math.Max(st.CompSec, n.compSec)
			for k := 0; k < q; k++ {
				if k != j {
					st.NetBytes += ab[i][k].m.Bytes()
				}
				if k != i {
					st.NetBytes += bb[k][j].m.Bytes()
				}
			}
		}
	}

	// Assemble the distributed C (left distributed in [33]; gathered
	// here for verification, at no simulated cost).
	rowBounds := partition.Bounds(a.Rows, q)
	colBounds := partition.Bounds(b.Cols, q)
	c, err := core.AssembleChunks(a.Rows, b.Cols, q, q,
		func(i, j int) *csr.Matrix { return nodes[i][j].c },
		func(i int) int { return rowBounds[i] },
		func(j int) int { return colBounds[j] },
	)
	if err != nil {
		return nil, Stats{}, err
	}
	st.Flops = csr.Flops(a, b)
	st.NnzC = c.Nnz()
	if st.TotalSec > 0 {
		st.GFLOPS = float64(st.Flops) / st.TotalSec / 1e9
	}
	if m := cfg.Metrics; m != nil {
		m.ImportSim(env.Timeline)
		for k, v := range st.Counters() {
			m.Add(k, v)
		}
	}
	return c, st, nil
}
