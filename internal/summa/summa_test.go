package summa

import (
	"testing"

	"repro/internal/cpuspgemm"
	"repro/internal/csr"
	"repro/internal/matgen"
)

func TestRunMatchesSequential(t *testing.T) {
	mats := []*csr.Matrix{
		matgen.RMAT(9, 8, 0.57, 0.19, 0.19, 91),
		matgen.Band(700, 4, 92),
		matgen.ER(300, 300, 0.04, 93),
	}
	for mi, a := range mats {
		want, err := cpuspgemm.Sequential(a, a)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []int{1, 2, 3, 4} {
			got, st, err := Run(a, a, Config{Q: q})
			if err != nil {
				t.Fatalf("matrix %d q=%d: %v", mi, q, err)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("matrix %d q=%d: invalid: %v", mi, q, err)
			}
			if !csr.Equal(got, want, 1e-9) {
				t.Fatalf("matrix %d q=%d: %s", mi, q, csr.Diff(got, want, 1e-9))
			}
			if st.Nodes != q*q || st.TotalSec <= 0 {
				t.Fatalf("matrix %d q=%d: bad stats %+v", mi, q, st)
			}
		}
	}
}

func TestRectangularSUMMA(t *testing.T) {
	a := matgen.ER(120, 90, 0.08, 94)
	b := matgen.ER(90, 150, 0.08, 95)
	want, err := cpuspgemm.Sequential(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Run(a, b, Config{Q: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !csr.Equal(got, want, 1e-9) {
		t.Fatalf("rect: %s", csr.Diff(got, want, 1e-9))
	}
}

func TestSingleNodeHasNoComm(t *testing.T) {
	a := matgen.Band(300, 3, 96)
	_, st, err := Run(a, a, Config{Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.CommSec != 0 {
		t.Fatalf("single node communicated %.6fs", st.CommSec)
	}
	if st.CompSec <= 0 {
		t.Fatal("no compute recorded")
	}
}

func TestStrongScalingComputeShrinks(t *testing.T) {
	a := matgen.RMAT(11, 8, 0.57, 0.19, 0.19, 97)
	_, one, err := Run(a, a, Config{Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, four, err := Run(a, a, Config{Q: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Per-node compute must shrink with the grid; the total may not
	// (communication), but the critical-path compute should.
	if four.CompSec >= one.CompSec {
		t.Fatalf("per-node compute did not shrink: %.6f vs %.6f", four.CompSec, one.CompSec)
	}
	if four.CommSec == 0 {
		t.Fatal("distributed run communicated nothing")
	}
}

func TestSlowNetworkDominates(t *testing.T) {
	a := matgen.RMAT(10, 8, 0.57, 0.19, 0.19, 98)
	_, fast, err := Run(a, a, Config{Q: 2, NetBandwidth: 100e9})
	if err != nil {
		t.Fatal(err)
	}
	_, slow, err := Run(a, a, Config{Q: 2, NetBandwidth: 0.1e9})
	if err != nil {
		t.Fatal(err)
	}
	if slow.TotalSec <= fast.TotalSec {
		t.Fatalf("slow network not slower: %.6f vs %.6f", slow.TotalSec, fast.TotalSec)
	}
	if slow.CommSec <= slow.CompSec {
		t.Fatalf("0.1 GB/s network should be comm-bound: comm %.6f comp %.6f", slow.CommSec, slow.CompSec)
	}
}

func TestErrors(t *testing.T) {
	if _, _, err := Run(csr.New(3, 4), csr.New(5, 5), Config{}); err == nil {
		t.Fatal("expected dimension mismatch")
	}
	if _, _, err := Run(csr.New(2, 2), csr.New(2, 2), Config{Q: 5}); err == nil {
		t.Fatal("expected too-fine grid error")
	}
}

func TestPipelinedMatchesPlain(t *testing.T) {
	a := matgen.RMAT(9, 8, 0.57, 0.19, 0.19, 99)
	want, err := cpuspgemm.Sequential(a, a)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := Run(a, a, Config{Q: 3, Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	if !csr.Equal(got, want, 1e-9) {
		t.Fatalf("pipelined: %s", csr.Diff(got, want, 1e-9))
	}
	if st.TotalSec <= 0 {
		t.Fatalf("bad stats %+v", st)
	}
}

func TestPipelinedFixesBandScaling(t *testing.T) {
	// Reference [33]'s motivation: under plain SUMMA a band matrix's
	// work concentrates in one barriered stage per node and does not
	// scale; the pipelined variant (no barrier, fetches ahead) does.
	a := matgen.Band(4000, 6, 100)
	_, plain, err := Run(a, a, Config{Q: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, piped, err := Run(a, a, Config{Q: 4, Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	if piped.TotalSec >= plain.TotalSec {
		t.Fatalf("pipelined (%.4fs) not faster than plain (%.4fs) on a band matrix",
			piped.TotalSec, plain.TotalSec)
	}
	// And it must also be a genuine speedup over one node.
	_, one, err := Run(a, a, Config{Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	if one.TotalSec/piped.TotalSec < 1.5 {
		t.Fatalf("pipelined 16-node speedup only %.2fx over one node", one.TotalSec/piped.TotalSec)
	}
}
