package parallel

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// coverageCheck asserts that the ranges passed to a loop body cover
// [0, n) exactly once.
type coverageCheck struct {
	mu   sync.Mutex
	seen []int
}

func (c *coverageCheck) visit(lo, hi int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := lo; i < hi; i++ {
		c.seen[i]++
	}
}

func (c *coverageCheck) assertOnce(t *testing.T, n int) {
	t.Helper()
	if len(c.seen) != n {
		t.Fatalf("seen length %d, want %d", len(c.seen), n)
	}
	for i, v := range c.seen {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("Workers(3) != 3")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Fatal("Workers(0) != GOMAXPROCS")
	}
	if Workers(-2) != runtime.GOMAXPROCS(0) {
		t.Fatal("Workers(-2) != GOMAXPROCS")
	}
}

func TestRunCallsEveryWorker(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		var called int64
		Run(workers, func(w int) {
			if w < 0 || w >= workers {
				t.Errorf("worker id %d outside [0,%d)", w, workers)
			}
			atomic.AddInt64(&called, 1)
		})
		if called != int64(workers) {
			t.Fatalf("workers=%d: %d calls", workers, called)
		}
	}
}

func TestForCoversExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ workers, n, grain int }{
		{1, 100, 7},
		{4, 100, 7},
		{4, 1, 16},
		{8, 1000, 1},
		{3, 17, 100}, // grain larger than n
		{4, 0, 4},    // empty
	} {
		c := &coverageCheck{seen: make([]int, tc.n)}
		For(tc.workers, tc.n, tc.grain, c.visit)
		c.assertOnce(t, tc.n)
	}
}

func TestForChunksCoversExactlyOnce(t *testing.T) {
	for _, bounds := range [][]int{
		{0, 5, 5, 12, 40}, // includes an empty chunk
		{0, 100},
		{0},
		{0, 1, 2, 3, 4, 5},
	} {
		n := bounds[len(bounds)-1]
		for _, workers := range []int{1, 4} {
			c := &coverageCheck{seen: make([]int, n)}
			ForChunks(workers, bounds, c.visit)
			c.assertOnce(t, n)
		}
	}
}

func TestForCostCoversExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cost := make([]int64, 500)
	for i := range cost {
		cost[i] = int64(rng.Intn(50))
	}
	cost[17] = 1 << 40 // one pathologically expensive row
	c := &coverageCheck{seen: make([]int, len(cost))}
	ForCost(4, cost, c.visit)
	c.assertOnce(t, len(cost))
}

func TestCostBoundsProperties(t *testing.T) {
	check := func(bounds []int, n int) {
		t.Helper()
		if bounds[0] != 0 || bounds[len(bounds)-1] != n {
			t.Fatalf("endpoints wrong: %v (n=%d)", bounds, n)
		}
		for i := 0; i+1 < len(bounds); i++ {
			if bounds[i] >= bounds[i+1] {
				t.Fatalf("bounds not strictly increasing: %v", bounds)
			}
		}
	}

	// Uniform cost: all chunks near-equal.
	uniform := make([]int64, 1000)
	for i := range uniform {
		uniform[i] = 3
	}
	b := CostBounds(uniform, 4)
	check(b, 1000)
	if len(b) < 4 {
		t.Fatalf("uniform cost produced too few chunks: %v", b)
	}

	// A single dominant item must sit alone in its chunk.
	skew := make([]int64, 100)
	for i := range skew {
		skew[i] = 1
	}
	skew[50] = 1 << 30
	b = CostBounds(skew, 4)
	check(b, 100)
	alone := false
	for i := 0; i+1 < len(b); i++ {
		if b[i] == 50 && b[i+1] == 51 {
			alone = true
		}
	}
	if !alone {
		t.Fatalf("dominant item not isolated: %v", b)
	}

	// All-zero cost falls back to an even split.
	b = CostBounds(make([]int64, 64), 4)
	check(b, 64)

	// Empty input.
	b = CostBounds(nil, 4)
	if len(b) != 1 || b[0] != 0 {
		t.Fatalf("empty cost bounds = %v", b)
	}
}

func TestBlocks(t *testing.T) {
	b := Blocks(10, 3)
	if b[0] != 0 || b[3] != 10 {
		t.Fatalf("Blocks endpoints: %v", b)
	}
	for i := 0; i < 3; i++ {
		if b[i] > b[i+1] {
			t.Fatalf("Blocks not monotone: %v", b)
		}
	}
	if b := Blocks(5, 0); len(b) != 2 || b[1] != 5 {
		t.Fatalf("Blocks with parts=0: %v", b)
	}
}

func TestPrefixSumMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 100, prefixSeqCutoff + 1000} {
		counts := make([]int64, n)
		for i := range counts {
			counts[i] = int64(rng.Intn(1000))
		}
		want := make([]int64, n+1)
		for i, c := range counts {
			want[i+1] = want[i] + c
		}
		for _, workers := range []int{1, 4} {
			got := make([]int64, n+1)
			PrefixSum(workers, got, counts)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d workers=%d: offsets[%d] = %d, want %d", n, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestPrefixSumBadLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad offsets length")
		}
	}()
	PrefixSum(1, make([]int64, 3), make([]int64, 3))
}

func TestForChunksWCoversExactlyOnceWithValidWorkers(t *testing.T) {
	const n = 1000
	bounds := CostBounds(make([]int64, n), 4) // zero costs: even split
	hits := make([]int32, n)
	var badWorker atomic.Int32
	ForChunksW(4, bounds, func(w, lo, hi int) {
		if w < 0 || w >= 4 {
			badWorker.Store(int32(w + 1))
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	if bw := badWorker.Load(); bw != 0 {
		t.Fatalf("worker index out of range: %d", bw-1)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("item %d hit %d times", i, h)
		}
	}
}

// TestForChunksWPerWorkerExclusive checks the contract callers rely on
// for per-worker accumulator kits: a given worker index is never active
// on two chunks at once.
func TestForChunksWPerWorkerExclusive(t *testing.T) {
	bounds := Blocks(512, 64)
	var active [8]atomic.Int32
	var violated atomic.Bool
	ForChunksW(8, bounds, func(w, lo, hi int) {
		if active[w].Add(1) != 1 {
			violated.Store(true)
		}
		for i := 0; i < 100; i++ {
			_ = i * i
		}
		active[w].Add(-1)
	})
	if violated.Load() {
		t.Fatal("same worker index active on two chunks concurrently")
	}
}

func TestListSchedule(t *testing.T) {
	// Greedy earliest-free replay: w0 takes 4; w1 takes 2, 2; the final
	// 2 goes to whichever freed first (w1 at t=4 ties w0; w0 wins the
	// tie by index) -> makespan 6.
	if got := ListSchedule([]float64{4, 2, 2, 2}, 2); got != 6 {
		t.Fatalf("makespan = %v, want 6", got)
	}
	// One worker: makespan is the sum.
	if got := ListSchedule([]float64{1, 2, 3}, 1); got != 6 {
		t.Fatalf("1-worker makespan = %v, want 6", got)
	}
	// More workers than chunks: makespan is the max.
	if got := ListSchedule([]float64{1, 5, 2}, 8); got != 5 {
		t.Fatalf("8-worker makespan = %v, want 5", got)
	}
	// Degenerate inputs.
	if got := ListSchedule(nil, 4); got != 0 {
		t.Fatalf("empty makespan = %v, want 0", got)
	}
	if got := ListSchedule([]float64{3}, 0); got != 3 {
		t.Fatalf("0-worker makespan = %v, want 3", got)
	}
}

// TestListScheduleBalancedNearPerfect: on CostBounds-shaped chunk lists
// (many similar chunks), the scheduled speedup must approach the worker
// count — the property BENCH_cpu.json's thread_scaling gates assert.
func TestListScheduleBalancedNearPerfect(t *testing.T) {
	durations := make([]float64, 64)
	for i := range durations {
		durations[i] = 1 + float64(i%5)/100
	}
	var sum float64
	for _, d := range durations {
		sum += d
	}
	for _, w := range []int{2, 4, 8} {
		speedup := sum / ListSchedule(durations, w)
		if speedup < 0.9*float64(w) {
			t.Fatalf("scheduled speedup at %d workers = %.2f, want >= %.2f", w, speedup, 0.9*float64(w))
		}
	}
}
