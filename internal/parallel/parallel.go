// Package parallel is the shared parallel runtime of every real
// wall-clock hot path in this repository (the multicore SpGEMM engines,
// chunk-result assembly, and the CSR utilities feeding them).
//
// The paper's CPU baseline distributes rows over threads with static
// flops-balanced contiguous ranges. On power-law inputs (the RMAT class
// of the synthetic suite) a static split leaves stragglers: the flop
// estimate is only a proxy for time, and a single skewed row pins one
// worker while the rest idle. Liu & Vinter's heterogeneous SpGEMM
// framework identifies exactly this load imbalance as the dominant
// cost on such inputs. The runtime here therefore schedules
// dynamically: chunk boundaries are precomputed from a per-item cost
// array (so one expensive row ends up alone in its chunk), and workers
// claim chunks off a shared atomic counter until none remain.
//
// The package also provides a block-parallel prefix sum, used wherever
// a CSR row-offset array is built from per-row counts.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// oversample is the number of chunks targeted per worker by the
// cost-based chunking. More chunks give the dynamic scheduler finer
// rebalancing at the price of more claim operations; 8 keeps the claim
// overhead (one atomic add per chunk) far below the per-chunk work for
// any realistic grain.
//
// Granularity heuristic, recorded for the dynamic-vs-static regression
// test (TestDynamicNeverLosesToStatic): with chunks ≈ workers ×
// oversample, a perfectly balanced input costs the dynamic scheduler
// only the oversample−1 extra claim operations per worker over a
// static split — nanoseconds against millisecond chunks — while a
// skewed input lets the last-finishing worker trail the rest by at
// most one chunk ≈ 1/(workers·oversample) of the total work instead of
// a whole static range. The regression the test guards against was
// never the claim cost: it was per-chunk accumulator churn (each chunk
// re-fetching and re-growing pooled accumulators sized to its own
// worst-case row). ForChunksW exists so workloads hoist that state to
// one set per *worker*, making per-chunk overhead claim-only.
const oversample = 8

// prefixSeqCutoff is the input size below which PrefixSum runs
// sequentially; a scan this short is cheaper than two goroutine fleets.
const prefixSeqCutoff = 1 << 14

// Workers normalizes a thread-count option: n > 0 returns n, anything
// else returns GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run spawns workers goroutines, calls body(w) on each with w in
// [0, workers), and waits for all of them. workers <= 0 means
// GOMAXPROCS; workers == 1 calls body inline.
func Run(workers int, body func(w int)) {
	workers = Workers(workers)
	if workers == 1 {
		body(0)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body(w)
		}(w)
	}
	wg.Wait()
}

// For runs fn over [0, n) in dynamically claimed chunks of grain
// iterations: workers pull the next chunk off a shared counter, so slow
// chunks never leave the remaining work stranded behind a static
// assignment. fn is called concurrently on disjoint ranges.
func For(workers, n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers = Workers(workers)
	if chunks := (n + grain - 1) / grain; workers > chunks {
		workers = chunks
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	var next int64
	Run(workers, func(int) {
		for {
			hi := atomic.AddInt64(&next, int64(grain))
			lo := int(hi) - grain
			if lo >= n {
				return
			}
			if hi > int64(n) {
				hi = int64(n)
			}
			fn(lo, int(hi))
		}
	})
}

// ForChunks runs fn over each precomputed range [bounds[k],
// bounds[k+1]), with chunks claimed dynamically by workers goroutines.
// Empty ranges are skipped. Use CostBounds to derive bounds from a
// per-item cost array.
func ForChunks(workers int, bounds []int, fn func(lo, hi int)) {
	ForChunksW(workers, bounds, func(_, lo, hi int) { fn(lo, hi) })
}

// ForChunksW is ForChunks with the claiming worker's index passed to
// fn (w in [0, workers)). A given w is never active on two chunks at
// once, so callers can keep per-worker state — pooled accumulators,
// scratch arrays — fetched once per phase instead of once per chunk.
// That per-chunk re-fetch (and the re-Grow churn it caused) is what
// made the dynamic scheduler measurably lose to the static ablation on
// balanced inputs before this existed.
func ForChunksW(workers int, bounds []int, fn func(w, lo, hi int)) {
	chunks := len(bounds) - 1
	if chunks <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > chunks {
		workers = chunks
	}
	if workers == 1 {
		for k := 0; k < chunks; k++ {
			if bounds[k] < bounds[k+1] {
				fn(0, bounds[k], bounds[k+1])
			}
		}
		return
	}
	var next int64
	Run(workers, func(w int) {
		for {
			k := int(atomic.AddInt64(&next, 1)) - 1
			if k >= chunks {
				return
			}
			if bounds[k] < bounds[k+1] {
				fn(w, bounds[k], bounds[k+1])
			}
		}
	})
}

// ListSchedule replays measured per-chunk durations through the
// dynamic claiming discipline with the given worker count and returns
// the makespan: chunks are claimed in order, each by the worker that
// frees up first — exactly what ForChunks does when every worker runs
// at the same speed. The ratio sum(durations)/makespan is the
// *scheduled speedup*: how much the chunking + dynamic claiming let N
// equal workers overlap the measured work. The CPU benchmark reports
// it next to wall-clock speedup so machines with fewer physical cores
// than the requested thread count (where wall-clock speedup is
// physically capped) still put the scheduler's real balance on record,
// from real measured chunk times.
func ListSchedule(durations []float64, workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	free := make([]float64, workers)
	for _, d := range durations {
		// The earliest-free worker claims the next chunk.
		mi := 0
		for w := 1; w < workers; w++ {
			if free[w] < free[mi] {
				mi = w
			}
		}
		free[mi] += d
	}
	makespan := 0.0
	for _, f := range free {
		if f > makespan {
			makespan = f
		}
	}
	return makespan
}

// ForCost runs fn over [0, len(cost)) in dynamically claimed chunks
// whose boundaries are auto-tuned from the per-item cost array (e.g.
// per-row flops): each chunk carries roughly equal total cost.
func ForCost(workers int, cost []int64, fn func(lo, hi int)) {
	ForChunks(workers, CostBounds(cost, workers), fn)
}

// CostBounds cuts [0, len(cost)) into chunks of roughly equal total
// cost, targeting oversample chunks per worker so the dynamic scheduler
// can rebalance. An item whose cost alone exceeds the target gets its
// own chunk — the skewed-row case that breaks static partitions. With
// an all-zero cost array the split falls back to equal item counts.
func CostBounds(cost []int64, workers int) []int {
	n := len(cost)
	if n == 0 {
		return []int{0}
	}
	workers = Workers(workers)
	chunks := workers * oversample
	if chunks > n {
		chunks = n
	}
	var total int64
	for _, c := range cost {
		total += c
	}
	if total == 0 {
		return Blocks(n, chunks)
	}
	threshold := (total + int64(chunks) - 1) / int64(chunks)
	bounds := make([]int, 1, chunks+1)
	var acc int64
	for i := 0; i < n; i++ {
		// An item that alone meets the target gets its own chunk: close
		// the running chunk first so cheap predecessors don't ride along.
		if cost[i] >= threshold && acc > 0 {
			bounds = append(bounds, i)
			acc = 0
		}
		acc += cost[i]
		if acc >= threshold && i+1 < n {
			bounds = append(bounds, i+1)
			acc = 0
		}
	}
	return append(bounds, n)
}

// Grain picks a chunk size for For over n uniform-cost items: small
// enough that about oversample chunks per worker exist for dynamic
// rebalancing, large enough to amortize the claim.
func Grain(n, workers int) int {
	g := n / (Workers(workers) * oversample)
	if g < 1 {
		g = 1
	}
	return g
}

// Blocks returns parts+1 even boundaries over [0, extent).
func Blocks(extent, parts int) []int {
	if parts < 1 {
		parts = 1
	}
	b := make([]int, parts+1)
	for i := 0; i <= parts; i++ {
		b[i] = i * extent / parts
	}
	return b
}

// PrefixSum fills offsets (length len(counts)+1) with the exclusive
// prefix sum of counts: offsets[0] = 0 and offsets[i+1] = offsets[i] +
// counts[i] — the CSR row-offset construction. Large inputs use the
// three-phase block-parallel scan (block sums in parallel, sequential
// scan of the per-block totals, parallel fill).
func PrefixSum(workers int, offsets, counts []int64) {
	n := len(counts)
	if len(offsets) != n+1 {
		panic(fmt.Sprintf("parallel: PrefixSum offsets length %d, want %d", len(offsets), n+1))
	}
	workers = Workers(workers)
	if workers == 1 || n < prefixSeqCutoff {
		offsets[0] = 0
		for i, c := range counts {
			offsets[i+1] = offsets[i] + c
		}
		return
	}
	bounds := Blocks(n, workers)
	sums := make([]int64, workers)
	Run(workers, func(w int) {
		var s int64
		for i := bounds[w]; i < bounds[w+1]; i++ {
			s += counts[i]
		}
		sums[w] = s
	})
	starts := make([]int64, workers)
	var run int64
	for w := 0; w < workers; w++ {
		starts[w] = run
		run += sums[w]
	}
	offsets[0] = 0
	Run(workers, func(w int) {
		s := starts[w]
		for i := bounds[w]; i < bounds[w+1]; i++ {
			s += counts[i]
			offsets[i+1] = s
		}
	})
}
