package metrics

import "repro/internal/sim"

// ImportSim copies a simulated-execution timeline into the collector's
// Sim domain. The engines call it once per run after the environment
// drains, so simulation hot paths never touch the collector. Nil-safe.
func (c *Collector) ImportSim(tl []sim.Span) {
	if c == nil || len(tl) == 0 {
		return
	}
	c.mu.Lock()
	for _, s := range tl {
		c.spans = append(c.spans, Span{
			Domain: Sim,
			Lane:   s.Lane,
			Label:  s.Label,
			Start:  int64(s.Start),
			End:    int64(s.End),
		})
	}
	c.mu.Unlock()
}

// FromSim converts a simulated timeline to metrics spans without a
// collector, for renderers that operate on raw timelines.
func FromSim(tl []sim.Span) []Span {
	out := make([]Span, len(tl))
	for i, s := range tl {
		out[i] = Span{Domain: Sim, Lane: s.Lane, Label: s.Label, Start: int64(s.Start), End: int64(s.End)}
	}
	return out
}
