package metrics

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace-event export. The format is the JSON "trace event"
// schema consumed by chrome://tracing and Perfetto: an object with a
// traceEvents array of complete ("ph":"X") events, timestamps and
// durations in microseconds, plus metadata ("ph":"M") events naming
// processes and threads. Each time domain becomes one process (sim =
// pid 1, wall = pid 2) and each lane one thread within it, so the two
// clocks never share a track.

// TraceEvent is one entry of the traceEvents array.
type TraceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the exported file shape.
type ChromeTrace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// chromePID maps a domain to its Chrome-trace process id.
func chromePID(d Domain) int { return int(d) + 1 }

// BuildChromeTrace converts the collector's spans and counters into
// the trace-event structure. Counters ride along as args of a single
// zero-duration summary event so the values survive in the trace file.
func (c *Collector) BuildChromeTrace() *ChromeTrace {
	tr := &ChromeTrace{DisplayTimeUnit: "ms"}
	if c == nil {
		tr.TraceEvents = []TraceEvent{}
		return tr
	}
	spans := c.Spans()

	// Assign a stable tid per (domain, lane), in first-seen order.
	type laneKey struct {
		d    Domain
		lane string
	}
	tids := map[laneKey]int{}
	domains := map[Domain]bool{}
	for _, s := range spans {
		k := laneKey{s.Domain, s.Lane}
		if _, ok := tids[k]; !ok {
			tids[k] = len(tids) + 1
		}
		domains[s.Domain] = true
	}

	// Metadata: name the processes and threads.
	for d := range domains {
		tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
			Name: "process_name", Phase: "M", PID: chromePID(d), TID: 0,
			Args: map[string]any{"name": d.String() + " time"},
		})
	}
	// Deterministic thread-name order for tests and diffs.
	keys := make([]laneKey, 0, len(tids))
	for k := range tids {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].d != keys[j].d {
			return keys[i].d < keys[j].d
		}
		return keys[i].lane < keys[j].lane
	})
	for _, k := range keys {
		tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
			Name: "thread_name", Phase: "M", PID: chromePID(k.d), TID: tids[k],
			Args: map[string]any{"name": k.lane},
		})
	}

	for _, s := range spans {
		tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
			Name:  s.Label,
			Cat:   s.Lane,
			Phase: "X",
			TS:    float64(s.Start) / 1e3, // ns -> µs
			Dur:   float64(s.Dur()) / 1e3,
			PID:   chromePID(s.Domain),
			TID:   tids[laneKey{s.Domain, s.Lane}],
		})
	}

	if counters := c.Counters(); len(counters) > 0 {
		args := make(map[string]any, len(counters))
		for k, v := range counters {
			args[k] = v
		}
		tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
			Name: "counters", Phase: "I", TS: 0, PID: 1, TID: 0, Args: args,
		})
	}
	return tr
}

// WriteChromeTrace writes the collector as chrome://tracing JSON.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(c.BuildChromeTrace())
}
