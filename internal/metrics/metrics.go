// Package metrics is the unified observability layer of the SpGEMM
// framework: one low-overhead, concurrency-safe event/counter sink
// shared by both of the repository's time domains — simulated device
// runs (core, hybrid, multigpu, summa on the internal/sim clock) and
// real wall-clock CPU engines (cpuspgemm, partitioning, chunk
// assembly).
//
// A Collector records per-phase spans (analysis, symbolic, numeric,
// h2d, d2h, assemble, ...) and named counters (bytes moved, flops,
// chunks, device mallocs, accumulator-pool hits). It exports three
// views:
//
//   - a Chrome trace-event JSON file loadable in chrome://tracing /
//     Perfetto (WriteChromeTrace),
//   - a flat key/value snapshot consumed by the experiment harness and
//     the BENCH_*.json files (Snapshot),
//   - the text Gantt and per-lane utilization tables that
//     internal/trace renders (Gantt, Utilizations).
//
// Instrumentation is disabled by default and must cost ~nothing when
// off: every method is safe on a nil *Collector and returns
// immediately, so hot paths guard with a single nil comparison.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Domain distinguishes the two time bases a Collector can hold.
// Spans from different domains never share a clock; exports keep them
// in separate Chrome-trace processes and snapshot key prefixes.
type Domain int

const (
	// Sim is virtual time from the discrete-event kernel
	// (internal/sim), in nanoseconds from simulation start.
	Sim Domain = iota
	// Wall is real elapsed time, in nanoseconds from collector
	// creation.
	Wall
)

func (d Domain) String() string {
	switch d {
	case Sim:
		return "sim"
	case Wall:
		return "wall"
	default:
		return "unknown"
	}
}

// Span is one recorded interval of work in a single time domain.
type Span struct {
	Domain Domain
	// Lane names the resource or actor ("kernel", "h2d", "d2h",
	// "cpu", "host", ...).
	Lane string
	// Label describes the work ("numeric c3", "symbolic phase", ...).
	Label string
	// Start and End are nanoseconds in the span's domain.
	Start, End int64
}

// Dur returns the span length in nanoseconds.
func (s Span) Dur() int64 { return s.End - s.Start }

// Collector accumulates spans and counters for one run. The zero
// value is not used directly; create one with New. A nil *Collector
// is the disabled state: every method no-ops.
//
// Collectors are safe for concurrent use: counter updates take an
// atomic fast path and span appends share one mutex (spans are
// recorded per phase or per simulated operation, far off any
// per-element hot loop).
type Collector struct {
	mu       sync.Mutex
	spans    []Span
	start    time.Time // wall-clock epoch for Wall-domain spans
	counters sync.Map  // string -> *int64
}

// New creates an empty collector whose wall-clock spans are measured
// from this moment.
func New() *Collector {
	return &Collector{start: time.Now()}
}

// Enabled reports whether the collector records anything (false for a
// nil collector). Callers with non-trivial setup cost gate on it.
func (c *Collector) Enabled() bool { return c != nil }

// AddSpan records a fully-formed span. Nil-safe.
func (c *Collector) AddSpan(s Span) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

// SimSpan records a simulated-time span from explicit nanosecond
// bounds. Nil-safe.
func (c *Collector) SimSpan(lane, label string, start, end int64) {
	if c == nil {
		return
	}
	c.AddSpan(Span{Domain: Sim, Lane: lane, Label: label, Start: start, End: end})
}

// StartWall begins a wall-clock span and returns a function that ends
// and records it. Nil-safe: the returned stop function of a nil
// collector does nothing.
//
//	stop := col.StartWall("cpu", "numeric phase")
//	... work ...
//	stop()
func (c *Collector) StartWall(lane, label string) func() {
	if c == nil {
		return func() {}
	}
	start := time.Since(c.start).Nanoseconds()
	return func() {
		end := time.Since(c.start).Nanoseconds()
		c.AddSpan(Span{Domain: Wall, Lane: lane, Label: label, Start: start, End: end})
	}
}

// Add increments a named counter by delta. Nil-safe.
func (c *Collector) Add(name string, delta int64) {
	if c == nil {
		return
	}
	v, ok := c.counters.Load(name)
	if !ok {
		v, _ = c.counters.LoadOrStore(name, new(int64))
	}
	atomic.AddInt64(v.(*int64), delta)
}

// Set stores a counter's absolute value. Nil-safe.
func (c *Collector) Set(name string, value int64) {
	if c == nil {
		return
	}
	v, ok := c.counters.Load(name)
	if !ok {
		v, _ = c.counters.LoadOrStore(name, new(int64))
	}
	atomic.StoreInt64(v.(*int64), value)
}

// Counter returns a counter's current value (0 when absent or nil).
func (c *Collector) Counter(name string) int64 {
	if c == nil {
		return 0
	}
	if v, ok := c.counters.Load(name); ok {
		return atomic.LoadInt64(v.(*int64))
	}
	return 0
}

// Spans returns a copy of the recorded spans in recording order.
func (c *Collector) Spans() []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Span(nil), c.spans...)
}

// Counters returns a copy of all counters.
func (c *Collector) Counters() map[string]int64 {
	if c == nil {
		return nil
	}
	out := map[string]int64{}
	c.counters.Range(func(k, v any) bool {
		out[k.(string)] = atomic.LoadInt64(v.(*int64))
		return true
	})
	return out
}

// LaneBusy sums span time on one lane of one domain, in nanoseconds.
func (c *Collector) LaneBusy(d Domain, lane string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, s := range c.spans {
		if s.Domain == d && s.Lane == lane {
			total += s.Dur()
		}
	}
	return total
}

// Makespan returns the latest span end per domain, in nanoseconds.
func (c *Collector) Makespan(d Domain) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var end int64
	for _, s := range c.spans {
		if s.Domain == d && s.End > end {
			end = s.End
		}
	}
	return end
}

// Standard counter names. Engines that report the same quantity use
// the same key so exports stay comparable across engines.
const (
	CounterFlops    = "flops"
	CounterBytesH2D = "bytes_h2d"
	CounterBytesD2H = "bytes_d2h"
	CounterChunks   = "chunks"
	CounterMallocs  = "mallocs"
	CounterMemPeak  = "mem_peak_bytes"
	CounterNnzC     = "nnz_c"
	CounterPoolGets = "accum_pool_gets"
	CounterPoolNews = "accum_pool_news"
	CounterRows     = "rows"

	// Recovery counters. Retries counts transient device faults
	// absorbed by retrying; Abandoned counts transient faults that
	// exhausted a chunk's budget (Retries+Abandoned reconciles with the
	// injector's fault count); Fallbacks counts GPU chunks recomputed
	// on the CPU; Failovers counts chunks redistributed off a failed
	// device; DevicesLost counts devices that died mid-run.
	CounterRetries     = "recovery_retries"
	CounterAbandoned   = "recovery_abandoned"
	CounterFallbacks   = "recovery_fallbacks"
	CounterFailovers   = "recovery_failovers"
	CounterDevicesLost = "recovery_devices_lost"

	// CounterMemInUse is the device memory still accounted at the end
	// of a run, after host-side teardown — nonzero means an allocation
	// leaked (the arena-leak audit asserts it is zero even for
	// deadline-aborted runs).
	CounterMemInUse = "mem_in_use_bytes"

	// Serving counters, published by internal/serve. Accepted counts
	// admissions; the rejected_* family counts load shedding before a
	// job ran (overload budget, bounded queue, drain); completed /
	// failed / panicked partition finished jobs; abandoned counts jobs
	// dropped at the drain deadline; degraded counts jobs routed to
	// the fallback engine by an open breaker; the breaker_* family
	// counts circuit state transitions.
	CounterServeAccepted         = "serve_jobs_accepted"
	CounterServeRejectedOverload = "serve_jobs_rejected_overload"
	CounterServeRejectedQueue    = "serve_jobs_rejected_queue_full"
	CounterServeRejectedDraining = "serve_jobs_rejected_draining"
	CounterServeCompleted        = "serve_jobs_completed"
	CounterServeFailed           = "serve_jobs_failed"
	CounterServePanicked         = "serve_jobs_panicked"
	CounterServeAbandoned        = "serve_jobs_abandoned"
	CounterServeDegraded         = "serve_jobs_degraded"
	CounterServeBreakerTrips     = "serve_breaker_trips"
	CounterServeBreakerProbes    = "serve_breaker_probes"
	CounterServeBreakerCloses    = "serve_breaker_closes"

	// Batch counters, published by the /v1/batch planner. Accepted and
	// completed count whole DAGs (a batch with failed nodes still
	// completes); skipped counts nodes never run because an upstream
	// dependency failed. Node outcomes feed the serve_jobs_* family
	// above, one unit per node.
	CounterServeBatchesAccepted  = "serve_batches_accepted"
	CounterServeBatchesCompleted = "serve_batches_completed"
	CounterServeBatchSkipped     = "serve_batch_nodes_skipped"

	// Plan-cache counters, published per run by engines given a
	// core.PlanCache (hits+misses reconciles with the job count) and in
	// aggregate by the serving layer's /metricsz. Evictions counts
	// entries dropped to keep the cache under its byte budget or
	// invalidated by a device loss or matrix-store eviction.
	CounterPlanCacheHits      = "plan_cache_hits"
	CounterPlanCacheMisses    = "plan_cache_misses"
	CounterPlanCacheEvictions = "plan_cache_evictions"
	// CounterPlanCacheUpgrades counts estimated plans replaced in place
	// by exact plans for the same pattern (provenance upgrade; the
	// cached structure itself is exact either way).
	CounterPlanCacheUpgrades = "plan_cache_upgrades"

	// Symbolic-estimation counters, published by the estimation-elided
	// cold path (Ocean-style sampled sizing). EstimatedRows counts
	// non-empty output rows sized from the sampled estimator,
	// FallbackRows those the confidence gate sent to exact symbolic
	// counting, and OverflowRows the estimated rows that outgrew their
	// buffer and took the spill path. The estimation hit rate is
	// estimated / (estimated + fallback).
	CounterSymbolicEstimatedRows = "symbolic_estimated_rows"
	CounterSymbolicFallbackRows  = "symbolic_fallback_rows"
	CounterSymbolicOverflowRows  = "symbolic_overflow_rows"

	// Matrix-store counters, published by internal/serve's
	// content-addressed store behind handle-based re-multiply.
	CounterMatrixStoreHits      = "matrix_store_hits"
	CounterMatrixStoreMisses    = "matrix_store_misses"
	CounterMatrixStoreEvictions = "matrix_store_evictions"

	// Cluster counters, published by internal/cluster's coordinator.
	// Requests/routes count client requests and the replica sends made
	// for them (a failover or hedge sends more than once); failover
	// counts re-routes to a ring successor after a replica failure;
	// retries counts shed-retry attempts against the same replica;
	// hedges/hedges_won count duplicate tail-latency sends and how many
	// beat the primary; rebalance_moves counts spill-copy re-uploads
	// that moved a pattern to a new owner; degraded counts requests
	// funneled through a lone surviving replica; the replica_* pair
	// counts health-state-machine transitions into down and back up;
	// probe_failures counts failed health probes.
	CounterClusterRequests      = "cluster_requests_total"
	CounterClusterRoutes        = "cluster_routes_total"
	CounterClusterFailovers     = "cluster_failover_total"
	CounterClusterRetries       = "cluster_retries_total"
	CounterClusterHedges        = "cluster_hedges_total"
	CounterClusterHedgesWon     = "cluster_hedges_won_total"
	CounterClusterRebalances    = "cluster_rebalance_moves_total"
	CounterClusterDegraded      = "cluster_degraded_requests_total"
	CounterClusterReplicaDown   = "cluster_replica_transitions_down"
	CounterClusterReplicaUp     = "cluster_replica_transitions_up"
	CounterClusterProbeFailures = "cluster_probe_failures_total"

	// Networked-transport counters, published by the cluster tier once
	// replicas live behind real sockets. The remote_* trio classifies
	// transport failures (connection refused, per-operation deadline
	// exceeded, connection reset / truncated body); joins counts every
	// /v1/join that changed membership (new replica, new URL, or a
	// revival) and rejoins the subset that brought a previously non-up
	// replica back — healthy heartbeats count neither; the
	// spill_reupload pair counts batched failover re-uploads and the
	// payload bytes they pipelined.
	CounterClusterRemoteRefused       = "cluster_remote_conn_refused"
	CounterClusterRemoteTimeouts      = "cluster_remote_timeouts"
	CounterClusterRemoteResets        = "cluster_remote_resets"
	CounterClusterJoins               = "cluster_join_total"
	CounterClusterRejoins             = "cluster_rejoin_total"
	CounterClusterSpillReuploadBatch  = "cluster_spill_reupload_batches"
	CounterClusterSpillReuploadBytes  = "cluster_spill_reupload_bytes"
)

// Snapshot flattens the collector into sorted key/value pairs: every
// counter plus, per domain present, "<domain>.<lane>_busy_ns" for each
// lane and "<domain>.makespan_ns". This is the machine-readable form
// the experiment harness and BENCH_*.json consume instead of
// recomputing per-phase totals from raw timelines.
func (c *Collector) Snapshot() map[string]int64 {
	if c == nil {
		return nil
	}
	out := c.Counters()
	c.mu.Lock()
	type key struct {
		d    Domain
		lane string
	}
	busy := map[key]int64{}
	mk := map[Domain]int64{}
	for _, s := range c.spans {
		busy[key{s.Domain, s.Lane}] += s.Dur()
		if s.End > mk[s.Domain] {
			mk[s.Domain] = s.End
		}
	}
	c.mu.Unlock()
	for k, v := range busy {
		out[k.d.String()+"."+k.lane+"_busy_ns"] = v
	}
	for d, v := range mk {
		out[d.String()+".makespan_ns"] = v
	}
	return out
}

// SnapshotKeys returns the snapshot's keys in sorted order, for
// deterministic rendering.
func SnapshotKeys(snap map[string]int64) []string {
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
