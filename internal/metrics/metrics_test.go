package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	c.Add("x", 1)
	c.Set("y", 2)
	c.SimSpan("kernel", "k", 0, 10)
	c.AddSpan(Span{})
	c.StartWall("cpu", "phase")() // stop func of nil collector
	c.ImportSim([]sim.Span{{Lane: "h2d"}})
	if c.Counter("x") != 0 || c.Spans() != nil || c.Counters() != nil || c.Snapshot() != nil {
		t.Fatal("nil collector returned data")
	}
	if c.LaneBusy(Sim, "kernel") != 0 || c.Makespan(Sim) != 0 {
		t.Fatal("nil collector accounted time")
	}
	tr := c.BuildChromeTrace()
	if len(tr.TraceEvents) != 0 {
		t.Fatal("nil collector built trace events")
	}
}

func TestCountersAndSpans(t *testing.T) {
	c := New()
	c.Add(CounterFlops, 100)
	c.Add(CounterFlops, 23)
	c.Set(CounterChunks, 4)
	if got := c.Counter(CounterFlops); got != 123 {
		t.Fatalf("flops counter = %d, want 123", got)
	}
	c.SimSpan("kernel", "numeric c0", 0, 1000)
	c.SimSpan("kernel", "numeric c1", 1500, 2000)
	c.SimSpan("d2h", "output c0", 500, 2500)
	if got := c.LaneBusy(Sim, "kernel"); got != 1500 {
		t.Fatalf("kernel busy = %d, want 1500", got)
	}
	if got := c.Makespan(Sim); got != 2500 {
		t.Fatalf("makespan = %d, want 2500", got)
	}

	snap := c.Snapshot()
	for key, want := range map[string]int64{
		CounterFlops:         123,
		CounterChunks:        4,
		"sim.kernel_busy_ns": 1500,
		"sim.d2h_busy_ns":    2000,
		"sim.makespan_ns":    2500,
	} {
		if snap[key] != want {
			t.Errorf("snapshot[%q] = %d, want %d", key, snap[key], want)
		}
	}
	keys := SnapshotKeys(snap)
	if !sort_IsSorted(keys) {
		t.Fatalf("snapshot keys not sorted: %v", keys)
	}
}

func sort_IsSorted(keys []string) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return false
		}
	}
	return true
}

func TestWallSpans(t *testing.T) {
	c := New()
	stop := c.StartWall("cpu", "numeric phase")
	stop()
	spans := c.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Domain != Wall || s.Lane != "cpu" || s.End < s.Start {
		t.Fatalf("bad wall span %+v", s)
	}
}

// TestConcurrentRecording drives counters and spans from many
// goroutines; `go test -race ./internal/metrics/...` is the check the
// CI pins.
func TestConcurrentRecording(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	const workers, iters = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Add(CounterFlops, 2)
				c.SimSpan("kernel", "k", int64(i), int64(i+1))
				if i%16 == 0 {
					stop := c.StartWall("cpu", "chunk")
					stop()
					_ = c.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Counter(CounterFlops); got != workers*iters*2 {
		t.Fatalf("flops = %d, want %d", got, workers*iters*2)
	}
	spans := c.Spans()
	wallSpans := 0
	simSpans := 0
	for _, s := range spans {
		switch s.Domain {
		case Wall:
			wallSpans++
		case Sim:
			simSpans++
		}
	}
	if simSpans != workers*iters {
		t.Fatalf("sim spans = %d, want %d", simSpans, workers*iters)
	}
	if wallSpans != workers*((iters+15)/16) {
		t.Fatalf("wall spans = %d, want %d", wallSpans, workers*((iters+15)/16))
	}
}

func TestChromeTraceShape(t *testing.T) {
	c := New()
	c.SimSpan("kernel", "numeric c0", 0, 2000)
	c.SimSpan("d2h", "output c0", 1000, 3000)
	stop := c.StartWall("host", "assemble")
	stop()
	c.Add(CounterFlops, 42)

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	// Decode generically, as chrome://tracing would: a JSON object with
	// a traceEvents array whose events carry name/ph/ts/pid/tid.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.Unit)
	}
	var complete, meta int
	for _, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event missing %q: %v", field, ev)
			}
		}
		switch ev["ph"] {
		case "X":
			complete++
			if ev["dur"].(float64) < 0 {
				t.Fatalf("negative duration: %v", ev)
			}
		case "M":
			meta++
		}
	}
	if complete != 3 {
		t.Fatalf("complete events = %d, want 3", complete)
	}
	if meta < 2 {
		t.Fatalf("metadata events = %d, want >= 2 (process + thread names)", meta)
	}
	if !strings.Contains(buf.String(), "\"counters\"") {
		t.Fatal("counters summary event missing")
	}

	// Sim and wall spans must land in different Chrome processes.
	pids := map[any]bool{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			pids[ev["pid"]] = true
		}
	}
	if len(pids) != 2 {
		t.Fatalf("expected 2 trace processes (sim + wall), got %d", len(pids))
	}
}

// TestChromeTraceReconciles checks the acceptance property at the unit
// level: per-phase totals computed from the exported trace match the
// collector's own accounting within rounding (ns -> µs floats).
func TestChromeTraceReconciles(t *testing.T) {
	c := New()
	c.SimSpan("kernel", "numeric c0", 0, 1_000_000)
	c.SimSpan("kernel", "symbolic c1", 2_000_000, 2_700_000)
	c.SimSpan("d2h", "output c0", 500_000, 4_000_000)
	tr := c.BuildChromeTrace()
	var kernelUS, d2hUS float64
	for _, ev := range tr.TraceEvents {
		if ev.Phase != "X" {
			continue
		}
		switch ev.Cat {
		case "kernel":
			kernelUS += ev.Dur
		case "d2h":
			d2hUS += ev.Dur
		}
	}
	if want := float64(c.LaneBusy(Sim, "kernel")) / 1e3; !approxEqual(kernelUS, want) {
		t.Fatalf("kernel trace total %.3fµs != collector %.3fµs", kernelUS, want)
	}
	if want := float64(c.LaneBusy(Sim, "d2h")) / 1e3; !approxEqual(d2hUS, want) {
		t.Fatalf("d2h trace total %.3fµs != collector %.3fµs", d2hUS, want)
	}
}

func approxEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-6*(1+b)
}

func TestGanttAndUtilizations(t *testing.T) {
	spans := []Span{
		{Domain: Sim, Lane: "kernel", Label: "k", Start: 0, End: 50},
		{Domain: Sim, Lane: "d2h", Label: "t", Start: 50, End: 100},
	}
	g := Gantt(spans, 10)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt lines = %d, want 3:\n%s", len(lines), g)
	}
	if !strings.HasPrefix(lines[0], "d2h") || !strings.HasPrefix(lines[1], "kernel") {
		t.Fatalf("lanes not sorted:\n%s", g)
	}
	// kernel occupies the first half, d2h the second.
	if !strings.Contains(lines[1], "#####.....") {
		t.Fatalf("kernel row wrong:\n%s", g)
	}
	if !strings.Contains(lines[0], ".....#####") {
		t.Fatalf("d2h row wrong:\n%s", g)
	}

	us := Utilizations(spans)
	if len(us) != 2 {
		t.Fatalf("utilizations = %d, want 2", len(us))
	}
	for _, u := range us {
		if u.BusyNs != 50 || u.Fraction != 0.5 {
			t.Fatalf("bad utilization %+v", u)
		}
	}
	if Gantt(nil, 10) != "(empty timeline)\n" {
		t.Fatal("empty gantt")
	}
}

func TestImportSim(t *testing.T) {
	c := New()
	c.ImportSim([]sim.Span{
		{Lane: "h2d", Label: "A panel c0", Start: 0, End: 100},
		{Lane: "kernel", Label: "numeric c0", Start: 100, End: 300},
	})
	if got := c.LaneBusy(Sim, "kernel"); got != 200 {
		t.Fatalf("kernel busy = %d, want 200", got)
	}
	fs := FromSim([]sim.Span{{Lane: "x", Start: 1, End: 5}})
	if len(fs) != 1 || fs[0].Domain != Sim || fs[0].Dur() != 4 {
		t.Fatalf("FromSim wrong: %+v", fs)
	}
}
