package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Text rendering: the Gantt-style schedule view of the paper's
// Figures 5 and 6 and the per-lane utilization table. These operate on
// a plain span slice so internal/trace (simulated timelines) and the
// Collector (either domain) share one renderer.

// Gantt renders spans as one row per lane over width character cells
// spanning [0, latest end]. Cells covered by a span show '#', idle
// cells '.'. Spans from different domains should not be mixed in one
// call (their clocks are unrelated); use Spans filtered by domain, or
// the Collector.GanttFor helper.
func Gantt(spans []Span, width int) string {
	if len(spans) == 0 {
		return "(empty timeline)\n"
	}
	var end int64
	lanes := map[string][]Span{}
	var order []string
	for _, s := range spans {
		if s.End > end {
			end = s.End
		}
		if _, ok := lanes[s.Lane]; !ok {
			order = append(order, s.Lane)
		}
		lanes[s.Lane] = append(lanes[s.Lane], s)
	}
	sort.Strings(order)
	if end == 0 {
		end = 1
	}

	var b strings.Builder
	nameW := 0
	for _, l := range order {
		if len(l) > nameW {
			nameW = len(l)
		}
	}
	cell := func(lane string, i int) byte {
		lo := end * int64(i) / int64(width)
		hi := end * int64(i+1) / int64(width)
		if hi == lo {
			hi = lo + 1
		}
		for _, s := range lanes[lane] {
			if s.Start < hi && s.End > lo {
				return '#'
			}
		}
		return '.'
	}
	for _, lane := range order {
		fmt.Fprintf(&b, "%-*s |", nameW, lane)
		for i := 0; i < width; i++ {
			b.WriteByte(cell(lane, i))
		}
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "%-*s  0%*s\n", nameW, "", width-1, fmt.Sprintf("%.3fms", float64(end)/1e6))
	return b.String()
}

// GanttFor renders one domain of the collector's spans.
func (c *Collector) GanttFor(d Domain, width int) string {
	var filtered []Span
	for _, s := range c.Spans() {
		if s.Domain == d {
			filtered = append(filtered, s)
		}
	}
	return Gantt(filtered, width)
}

// Utilization reports one lane's busy time and its fraction of the
// makespan.
type Utilization struct {
	Lane string
	// BusyNs is the lane's total span time in nanoseconds.
	BusyNs int64
	// Fraction is BusyNs over the latest span end.
	Fraction float64
}

// Utilizations computes per-lane busy fractions, lanes sorted by name.
func Utilizations(spans []Span) []Utilization {
	var end int64
	busy := map[string]int64{}
	var order []string
	for _, s := range spans {
		if s.End > end {
			end = s.End
		}
		if _, ok := busy[s.Lane]; !ok {
			order = append(order, s.Lane)
		}
		busy[s.Lane] += s.Dur()
	}
	sort.Strings(order)
	out := make([]Utilization, 0, len(order))
	for _, lane := range order {
		u := Utilization{Lane: lane, BusyNs: busy[lane]}
		if end > 0 {
			u.Fraction = float64(busy[lane]) / float64(end)
		}
		out = append(out, u)
	}
	return out
}

// FprintUtilization writes the utilization table of a span set.
func FprintUtilization(w io.Writer, spans []Span) error {
	for _, u := range Utilizations(spans) {
		if _, err := fmt.Fprintf(w, "%-8s %8.3f ms  %5.1f%%\n",
			u.Lane, float64(u.BusyNs)/1e6, u.Fraction*100); err != nil {
			return err
		}
	}
	return nil
}
