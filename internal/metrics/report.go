package metrics

// Report is the common statistics interface every engine returns: one
// shape for the out-of-core GPU stats, the hybrid split, the
// multi-GPU schedule and the distributed SUMMA run, so callers (CLI,
// experiment harness, benchmarks) read one vocabulary instead of four
// struct layouts.
//
// Seconds is the run's makespan in the engine's own time domain
// (simulated seconds for device engines, wall seconds for real-CPU
// engines); Throughput is FlopCount/Seconds/1e9 — the paper's GFLOPS
// definition. Counters returns the flat key/value view (see the
// Counter* constants) whose totals reconcile with the run's trace.
type Report interface {
	// Seconds is the makespan of the run.
	Seconds() float64
	// FlopCount is the multiply-add flop count (x2) of the product.
	FlopCount() int64
	// Throughput is FlopCount/Seconds in GFLOPS.
	Throughput() float64
	// OutputNnz is the number of non-zeros of the product.
	OutputNnz() int64
	// Counters is the flat key/value snapshot of the run's counters.
	Counters() map[string]int64
}
