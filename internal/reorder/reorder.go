// Package reorder implements matrix reordering for locality, the theme
// of the paper's related work on partitioning (Akbudak et al. [1,2,3],
// Ballard et al. [6] study hypergraph models that minimize data
// movement of SpGEMM). Full hypergraph partitioning is out of scope;
// this package provides the classic bandwidth-reducing permutation —
// reverse Cuthill-McKee (RCM) — plus permutation utilities, which is
// enough to study how input ordering shapes the out-of-core chunk
// grid (Ablation experiment in internal/exp).
package reorder

import (
	"fmt"
	"sort"

	"repro/internal/csr"
)

// RCM computes the reverse Cuthill-McKee permutation of a square
// matrix's symmetrized sparsity graph: perm[newIndex] = oldIndex.
// Components are traversed from minimum-degree seeds.
func RCM(a *csr.Matrix) ([]int32, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("reorder: RCM needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	// Symmetrized adjacency (pattern of A + Aᵀ), built as index lists.
	adj := make([][]int32, n)
	addEdge := func(u int, v int32) {
		if int(v) != u {
			adj[u] = append(adj[u], v)
		}
	}
	at := a.Transpose()
	for r := 0; r < n; r++ {
		cols, _ := a.Row(r)
		for _, c := range cols {
			addEdge(r, c)
		}
		tcols, _ := at.Row(r)
		for _, c := range tcols {
			addEdge(r, c)
		}
	}
	// Dedup neighbor lists and sort by degree for the CM tie-break.
	deg := make([]int, n)
	for u := range adj {
		sort.Slice(adj[u], func(i, j int) bool { return adj[u][i] < adj[u][j] })
		w := 0
		for i, v := range adj[u] {
			if i == 0 || v != adj[u][i-1] {
				adj[u][w] = v
				w++
			}
		}
		adj[u] = adj[u][:w]
		deg[u] = w
	}

	visited := make([]bool, n)
	order := make([]int32, 0, n)
	queue := make([]int32, 0, n)
	for {
		// Minimum-degree unvisited seed.
		seed := -1
		for u := 0; u < n; u++ {
			if !visited[u] && (seed == -1 || deg[u] < deg[seed]) {
				seed = u
			}
		}
		if seed == -1 {
			break
		}
		visited[seed] = true
		queue = append(queue[:0], int32(seed))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			// Enqueue unvisited neighbors in increasing-degree order.
			var next []int32
			for _, v := range adj[u] {
				if !visited[v] {
					visited[v] = true
					next = append(next, v)
				}
			}
			sort.Slice(next, func(i, j int) bool { return deg[next[i]] < deg[next[j]] })
			queue = append(queue, next...)
		}
	}
	// Reverse (the "R" in RCM).
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, nil
}

// Permute applies a symmetric permutation: B = P·A·Pᵀ with
// B[i][j] = A[perm[i]][perm[j]].
func Permute(a *csr.Matrix, perm []int32) (*csr.Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("reorder: Permute needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(perm) != a.Rows {
		return nil, fmt.Errorf("reorder: permutation length %d for %d rows", len(perm), a.Rows)
	}
	// inv[old] = new.
	inv := make([]int32, a.Rows)
	seen := make([]bool, a.Rows)
	for newI, oldI := range perm {
		if int(oldI) < 0 || int(oldI) >= a.Rows || seen[oldI] {
			return nil, fmt.Errorf("reorder: invalid permutation at %d", newI)
		}
		seen[oldI] = true
		inv[oldI] = int32(newI)
	}
	entries := make([]csr.Entry, 0, a.Nnz())
	for r := 0; r < a.Rows; r++ {
		cols, vals := a.Row(r)
		for i := range cols {
			entries = append(entries, csr.Entry{Row: inv[r], Col: inv[cols[i]], Val: vals[i]})
		}
	}
	return csr.FromEntries(a.Rows, a.Cols, entries)
}

// Bandwidth reports the matrix bandwidth max |i-j| over stored entries.
func Bandwidth(a *csr.Matrix) int {
	bw := 0
	for r := 0; r < a.Rows; r++ {
		cols, _ := a.Row(r)
		for _, c := range cols {
			d := r - int(c)
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// Profile reports the sum over rows of the distance from the diagonal
// to the leftmost entry — a finer locality measure than bandwidth.
func Profile(a *csr.Matrix) int64 {
	var p int64
	for r := 0; r < a.Rows; r++ {
		cols, _ := a.Row(r)
		if len(cols) == 0 {
			continue
		}
		d := r - int(cols[0])
		if d > 0 {
			p += int64(d)
		}
	}
	return p
}
