package reorder

import (
	"math/rand"
	"testing"

	"repro/internal/cpuspgemm"
	"repro/internal/csr"
	"repro/internal/matgen"
)

func TestPermuteIdentity(t *testing.T) {
	a := matgen.Band(50, 2, 1)
	id := make([]int32, a.Rows)
	for i := range id {
		id[i] = int32(i)
	}
	p, err := Permute(a, id)
	if err != nil {
		t.Fatal(err)
	}
	if !csr.Equal(a, p, 0) {
		t.Fatal("identity permutation changed the matrix")
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := matgen.ER(40, 40, 0.1, 3)
	perm := rng.Perm(a.Rows)
	p32 := make([]int32, len(perm))
	for i, v := range perm {
		p32[i] = int32(v)
	}
	b, err := Permute(a, p32)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Inverse permutation: inv[new]=old means applying inv brings back.
	inv := make([]int32, len(perm))
	for newI, oldI := range p32 {
		inv[oldI] = int32(newI)
	}
	back, err := Permute(b, inv)
	if err != nil {
		t.Fatal(err)
	}
	if !csr.Equal(a, back, 0) {
		t.Fatal("permutation round trip failed")
	}
}

func TestPermuteErrors(t *testing.T) {
	a := matgen.Band(10, 1, 4)
	if _, err := Permute(csr.New(3, 4), nil); err == nil {
		t.Fatal("expected non-square error")
	}
	if _, err := Permute(a, make([]int32, 3)); err == nil {
		t.Fatal("expected length error")
	}
	bad := make([]int32, 10)
	for i := range bad {
		bad[i] = 0 // not a permutation
	}
	if _, err := Permute(a, bad); err == nil {
		t.Fatal("expected invalid-permutation error")
	}
}

func TestPermutePreservesSpectrumOfProduct(t *testing.T) {
	// (P A Pᵀ)² = P A² Pᵀ: permuting commutes with squaring.
	a := matgen.RMAT(8, 6, 0.57, 0.19, 0.19, 5)
	perm, err := RCM(a)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := Permute(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	paSq, err := cpuspgemm.Sequential(pa, pa)
	if err != nil {
		t.Fatal(err)
	}
	aSq, err := cpuspgemm.Sequential(a, a)
	if err != nil {
		t.Fatal(err)
	}
	pASq, err := Permute(aSq, perm)
	if err != nil {
		t.Fatal(err)
	}
	if !csr.Equal(paSq, pASq, 1e-9) {
		t.Fatalf("permutation does not commute with squaring: %s", csr.Diff(paSq, pASq, 1e-9))
	}
}

func TestRCMReducesBandwidthOfShuffledBand(t *testing.T) {
	// Take a band matrix (bandwidth 3), scramble it, and check RCM
	// recovers a small bandwidth.
	band := matgen.Band(200, 3, 6)
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(band.Rows)
	p32 := make([]int32, len(perm))
	for i, v := range perm {
		p32[i] = int32(v)
	}
	shuffled, err := Permute(band, p32)
	if err != nil {
		t.Fatal(err)
	}
	bwShuffled := Bandwidth(shuffled)
	if bwShuffled < 50 {
		t.Fatalf("shuffle did not destroy locality: bandwidth %d", bwShuffled)
	}
	rcm, err := RCM(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := Permute(shuffled, rcm)
	if err != nil {
		t.Fatal(err)
	}
	bwRecovered := Bandwidth(recovered)
	if bwRecovered > 10 {
		t.Fatalf("RCM bandwidth %d, want near the original 3 (shuffled %d)", bwRecovered, bwShuffled)
	}
	if Profile(recovered) >= Profile(shuffled) {
		t.Fatal("RCM did not reduce the profile")
	}
}

func TestRCMIsAPermutation(t *testing.T) {
	a := matgen.ER(100, 100, 0.03, 8) // may be disconnected
	perm, err := RCM(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) != a.Rows {
		t.Fatalf("perm length %d", len(perm))
	}
	seen := make([]bool, a.Rows)
	for _, v := range perm {
		if seen[v] {
			t.Fatalf("index %d repeated", v)
		}
		seen[v] = true
	}
}

func TestRCMErrors(t *testing.T) {
	if _, err := RCM(csr.New(3, 4)); err == nil {
		t.Fatal("expected non-square error")
	}
}

func TestBandwidthAndProfile(t *testing.T) {
	m, _ := csr.FromEntries(4, 4, []csr.Entry{
		{Row: 0, Col: 3, Val: 1}, {Row: 2, Col: 1, Val: 1}, {Row: 3, Col: 3, Val: 1},
	})
	if bw := Bandwidth(m); bw != 3 {
		t.Fatalf("Bandwidth = %d", bw)
	}
	if p := Profile(m); p != 1 { // row 2 leftmost at col 1 → distance 1
		t.Fatalf("Profile = %d", p)
	}
	if Bandwidth(csr.New(5, 5)) != 0 {
		t.Fatal("empty bandwidth not 0")
	}
}
