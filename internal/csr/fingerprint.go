package csr

import "math"

// fpOffset seeds the hash (the FNV-1a 64-bit offset basis); fpPrime is
// the FNV-1a 64-bit prime, reused as the multiplier of the
// word-at-a-time mixing below.
const (
	fpOffset = 14695981039346656037
	fpPrime  = 1099511628211
)

// fpMix folds one 64-bit word into the running hash. The word is first
// diffused with the murmur3 finalizer (so a change in any input bit
// flips about half the word before it meets the accumulator), then
// combined FNV-style. One multiply-xor-shift sequence per word instead
// of eight dependent byte steps keeps fingerprinting a small, flat
// cost on warm serving paths, where it runs per request rather than
// per symbolic phase.
func fpMix(h, v uint64) uint64 {
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	return (h ^ v) * fpPrime
}

// Fingerprint hashes the *structure* of a matrix — dimensions, row
// offsets and column ids, never the values — into a 64-bit key. Two
// matrices with the same sparsity pattern but different numeric values
// fingerprint identically, which is exactly what the structure-reuse
// fast path wants: a plan (chunk grid, row groups, output structure)
// computed for one multiply is valid for any later multiply whose
// operands carry the same pattern with fresh values.
//
// The hash mixes one machine word at a time (column ids are packed in
// pairs), making it cheap — one linear pass, no allocation — relative
// to the symbolic work it lets callers skip. Collisions are improbable
// enough for cache keying; the plan cache additionally stores the
// dimensions so a collision can at worst alias two patterns of
// identical shape, never cause an out-of-bounds plan.
func Fingerprint(m *Matrix) uint64 {
	h := fpMix(fpOffset, uint64(m.Rows))
	h = fpMix(h, uint64(m.Cols))
	for _, o := range m.RowOffsets {
		h = fpMix(h, uint64(o))
	}
	ids := m.ColIDs
	for len(ids) >= 2 {
		h = fpMix(h, uint64(uint32(ids[0]))|uint64(uint32(ids[1]))<<32)
		ids = ids[2:]
	}
	if len(ids) == 1 {
		h = fpMix(h, uint64(uint32(ids[0])))
	}
	return h
}

// FingerprintValues hashes the numeric values of a matrix (and nothing
// else). Together with Fingerprint it content-addresses a matrix: the
// serving layer's matrix store derives its handles from the pair, so
// re-uploading identical content is idempotent while a values-only
// change produces a new handle that still shares the structural
// fingerprint — and therefore the cached plan — of its pattern.
func FingerprintValues(m *Matrix) uint64 {
	h := uint64(fpOffset)
	for _, v := range m.Data {
		h = fpMix(h, math.Float64bits(v))
	}
	return h
}
