package csr

import "math"

// Fingerprint hashes the *structure* of a matrix — dimensions, row
// offsets and column ids, never the values — into a 64-bit key. Two
// matrices with the same sparsity pattern but different numeric values
// fingerprint identically, which is exactly what the structure-reuse
// fast path wants: a plan (chunk grid, row groups, output structure)
// computed for one multiply is valid for any later multiply whose
// operands carry the same pattern with fresh values.
//
// The hash is FNV-1a over the little-endian encoding of the fields.
// It is cheap (one linear pass over the index arrays, no allocation)
// relative to the symbolic work it lets callers skip, and collisions
// are improbable enough for cache keying; the plan cache additionally
// stores the dimensions so a collision can at worst alias two patterns
// of identical shape, never cause an out-of-bounds plan.
func Fingerprint(m *Matrix) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix32 := func(v uint32) {
		for i := 0; i < 4; i++ {
			h ^= uint64(v & 0xff)
			h *= prime64
			v >>= 8
		}
	}
	mix64(uint64(m.Rows))
	mix64(uint64(m.Cols))
	for _, o := range m.RowOffsets {
		mix64(uint64(o))
	}
	for _, c := range m.ColIDs {
		mix32(uint32(c))
	}
	return h
}

// FingerprintValues hashes the numeric values of a matrix (and nothing
// else). Together with Fingerprint it content-addresses a matrix: the
// serving layer's matrix store derives its handles from the pair, so
// re-uploading identical content is idempotent while a values-only
// change produces a new handle that still shares the structural
// fingerprint — and therefore the cached plan — of its pattern.
func FingerprintValues(m *Matrix) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range m.Data {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			h ^= bits & 0xff
			h *= prime64
			bits >>= 8
		}
	}
	return h
}
