package csr

import (
	"math/rand"
	"testing"
)

// denseMul multiplies via dense arithmetic for cross-checking flop and
// bound computations on small matrices.
func denseFlops(a, b *Matrix) int64 {
	var total int64
	for i := 0; i < a.Rows; i++ {
		cols, _ := a.Row(i)
		for _, k := range cols {
			total += 2 * b.RowNnz(int(k))
		}
	}
	return total
}

func TestFlopsAgainstDirectCount(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		a := randomMatrix(rng, 20, 15, 0.2)
		b := randomMatrix(rng, 15, 25, 0.2)
		if got, want := Flops(a, b), denseFlops(a, b); got != want {
			t.Fatalf("Flops = %d, want %d", got, want)
		}
	}
}

func TestRowFlopsSumsToFlops(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomMatrix(rng, 30, 30, 0.15)
	b := randomMatrix(rng, 30, 30, 0.15)
	rf := RowFlops(a, b)
	var sum int64
	for _, f := range rf {
		sum += f
	}
	if sum != Flops(a, b) {
		t.Fatalf("sum(RowFlops) = %d, Flops = %d", sum, Flops(a, b))
	}
}

func TestRowUpperBoundsAreFlopsHalved(t *testing.T) {
	// By definition the worst-case row nnz equals the number of
	// multiplications, which is flops/2.
	rng := rand.New(rand.NewSource(12))
	a := randomMatrix(rng, 25, 25, 0.2)
	b := randomMatrix(rng, 25, 25, 0.2)
	ub := RowUpperBounds(a, b)
	rf := RowFlops(a, b)
	for i := range ub {
		if ub[i]*2 != rf[i] {
			t.Fatalf("row %d: upper bound %d, flops %d", i, ub[i], rf[i])
		}
	}
}

func TestFlopsIdentity(t *testing.T) {
	// A * I: every nonzero of A touches exactly one row of I with one
	// element, so flops = 2*nnz(A).
	n := 12
	var es []Entry
	for i := 0; i < n; i++ {
		es = append(es, Entry{int32(i), int32(i), 1})
	}
	id, _ := FromEntries(n, n, es)
	rng := rand.New(rand.NewSource(13))
	a := randomMatrix(rng, n, n, 0.3)
	if got, want := Flops(a, id), 2*a.Nnz(); got != want {
		t.Fatalf("Flops(A,I) = %d, want %d", got, want)
	}
}

func TestCompressionRatioEmptyProduct(t *testing.T) {
	a := New(4, 4)
	if r := CompressionRatio(a, a, New(4, 4)); r != 0 {
		t.Fatalf("CompressionRatio of empty product = %v, want 0", r)
	}
}
