package csr

import (
	"math/bits"
	"testing"
)

// segMatrix builds a small CSR matrix from explicit rows of column ids.
func segMatrix(t *testing.T, cols int, rows [][]int32) *Matrix {
	t.Helper()
	m := &Matrix{Rows: len(rows), Cols: cols, RowOffsets: make([]int64, len(rows)+1)}
	for r, rc := range rows {
		for _, c := range rc {
			m.ColIDs = append(m.ColIDs, c)
			m.Data = append(m.Data, 1)
		}
		m.RowOffsets[r+1] = int64(len(m.ColIDs))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCompressRoundTrip(t *testing.T) {
	m := segMatrix(t, 300, [][]int32{
		{0, 1, 2, 63, 64, 65, 200},
		{},
		{128},
		{5, 70, 135, 299},
	})
	s := Compress(m)
	if s.Nnz != int64(len(m.ColIDs)) {
		t.Fatalf("Nnz = %d, want %d", s.Nnz, len(m.ColIDs))
	}
	// Expanding every (segment, mask) pair must reproduce each row's
	// exact column set, in order.
	for r := 0; r < m.Rows; r++ {
		var expanded []int32
		sids, masks := s.Row(r)
		for i, sid := range sids {
			word := masks[i]
			for word != 0 {
				expanded = append(expanded, sid*64+int32(bits.TrailingZeros64(word)))
				word &= word - 1
			}
			if i > 0 && sid <= sids[i-1] {
				t.Fatalf("row %d: segment ids not ascending: %v", r, sids)
			}
		}
		lo, hi := m.RowOffsets[r], m.RowOffsets[r+1]
		want := m.ColIDs[lo:hi]
		if len(expanded) != len(want) {
			t.Fatalf("row %d: expanded %v, want %v", r, expanded, want)
		}
		for i := range want {
			if expanded[i] != want[i] {
				t.Fatalf("row %d: expanded %v, want %v", r, expanded, want)
			}
		}
	}
}

func TestCompressAdjacentMerge(t *testing.T) {
	// 6 columns in one segment plus 1 in another: 2 segments total.
	m := segMatrix(t, 200, [][]int32{{10, 11, 12, 13, 14, 15, 100}})
	s := Compress(m)
	if got := len(s.SegIDs); got != 2 {
		t.Fatalf("segments = %d, want 2", got)
	}
	if want := 7.0 / 2.0; s.Ratio() != want {
		t.Fatalf("Ratio = %v, want %v", s.Ratio(), want)
	}
}

func TestCompressNoClustering(t *testing.T) {
	// One column per segment: ratio exactly 1.
	m := segMatrix(t, 64*8, [][]int32{{0, 64, 128, 192, 256}})
	s := Compress(m)
	if s.Ratio() != 1 {
		t.Fatalf("Ratio = %v, want 1", s.Ratio())
	}
}

func TestCompressEmpty(t *testing.T) {
	m := segMatrix(t, 10, [][]int32{{}, {}})
	s := Compress(m)
	if s.Ratio() != 1 {
		t.Fatalf("empty Ratio = %v, want 1", s.Ratio())
	}
	if sids, _ := s.Row(1); len(sids) != 0 {
		t.Fatalf("empty row has segments: %v", sids)
	}
	if s.Bytes() <= 0 {
		t.Fatalf("Bytes = %d", s.Bytes())
	}
}
