package csr

import (
	"math/rand"
	"testing"
)

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		m := randomMatrix(rng, 1+rng.Intn(20), 1+rng.Intn(20), 0.3)
		x := make([]float64, m.Cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, m.Rows)
		if err := m.MulVec(x, y); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < m.Rows; r++ {
			var want float64
			cols, vals := m.Row(r)
			for i := range cols {
				want += vals[i] * x[cols[i]]
			}
			if d := y[r] - want; d > 1e-12 || d < -1e-12 {
				t.Fatalf("y[%d] = %v, want %v", r, y[r], want)
			}
		}
	}
}

func TestMulVecIdentityAndErrors(t *testing.T) {
	var es []Entry
	for i := 0; i < 5; i++ {
		es = append(es, Entry{int32(i), int32(i), 1})
	}
	id, _ := FromEntries(5, 5, es)
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, 5)
	if err := id.MulVec(x, y); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("I·x != x at %d", i)
		}
	}
	if err := id.MulVec(x[:3], y); err == nil {
		t.Fatal("expected length error for short x")
	}
	if err := id.MulVec(x, y[:2]); err == nil {
		t.Fatal("expected length error for short y")
	}
}

func TestDiagonal(t *testing.T) {
	m, _ := FromEntries(3, 3, []Entry{
		{0, 0, 5}, {0, 1, 1}, {1, 2, 2}, {2, 2, -3},
	})
	d := m.Diagonal()
	if d[0] != 5 || d[1] != 0 || d[2] != -3 {
		t.Fatalf("Diagonal = %v", d)
	}
	// Rectangular matrix: diagonal truncated to min(rows, cols).
	r, _ := FromEntries(2, 4, []Entry{{1, 1, 7}})
	if dd := r.Diagonal(); len(dd) != 2 || dd[1] != 7 {
		t.Fatalf("rect Diagonal = %v", dd)
	}
}

func TestRowSums(t *testing.T) {
	m, _ := FromEntries(2, 3, []Entry{{0, 0, 1}, {0, 2, 2}, {1, 1, -4}})
	s := m.RowSums()
	if s[0] != 3 || s[1] != -4 {
		t.Fatalf("RowSums = %v", s)
	}
}
