package csr

import "errors"

// Hadamard returns the element-wise product A ∘ B (entries present in
// both matrices, values multiplied). Graph algorithms use it for
// masked SpGEMM: A ∘ (A·A) counts the triangles through each edge.
func Hadamard(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, errors.New("csr: Hadamard dimension mismatch")
	}
	out := &Matrix{Rows: a.Rows, Cols: a.Cols, RowOffsets: make([]int64, a.Rows+1)}
	// Pass 1: intersection sizes.
	for r := 0; r < a.Rows; r++ {
		out.RowOffsets[r+1] = out.RowOffsets[r] + intersectRowLen(a, b, r)
	}
	nnz := out.RowOffsets[a.Rows]
	out.ColIDs = make([]int32, nnz)
	out.Data = make([]float64, nnz)
	// Pass 2: merge-intersect each row.
	for r := 0; r < a.Rows; r++ {
		ac, av := a.Row(r)
		bc, bv := b.Row(r)
		w := out.RowOffsets[r]
		i, j := 0, 0
		for i < len(ac) && j < len(bc) {
			switch {
			case ac[i] < bc[j]:
				i++
			case bc[j] < ac[i]:
				j++
			default:
				out.ColIDs[w] = ac[i]
				out.Data[w] = av[i] * bv[j]
				w++
				i++
				j++
			}
		}
	}
	return out, nil
}

func intersectRowLen(a, b *Matrix, r int) int64 {
	ac, _ := a.Row(r)
	bc, _ := b.Row(r)
	var n int64
	i, j := 0, 0
	for i < len(ac) && j < len(bc) {
		switch {
		case ac[i] < bc[j]:
			i++
		case bc[j] < ac[i]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Sum returns the sum of all stored values.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Prune returns a copy with entries of absolute value <= tol removed.
func (m *Matrix) Prune(tol float64) *Matrix {
	out := &Matrix{Rows: m.Rows, Cols: m.Cols, RowOffsets: make([]int64, m.Rows+1)}
	keep := func(v float64) bool { return v > tol || v < -tol }
	for r := 0; r < m.Rows; r++ {
		_, vals := m.Row(r)
		var n int64
		for _, v := range vals {
			if keep(v) {
				n++
			}
		}
		out.RowOffsets[r+1] = out.RowOffsets[r] + n
	}
	nnz := out.RowOffsets[m.Rows]
	out.ColIDs = make([]int32, nnz)
	out.Data = make([]float64, nnz)
	w := int64(0)
	for r := 0; r < m.Rows; r++ {
		cols, vals := m.Row(r)
		for i := range cols {
			if keep(vals[i]) {
				out.ColIDs[w] = cols[i]
				out.Data[w] = vals[i]
				w++
			}
		}
	}
	return out
}
