package csr

import (
	"math/rand"
	"testing"
)

func TestHadamardBasic(t *testing.T) {
	a, _ := FromEntries(2, 3, []Entry{{0, 0, 2}, {0, 2, 3}, {1, 1, 4}})
	b, _ := FromEntries(2, 3, []Entry{{0, 0, 5}, {0, 1, 7}, {1, 1, -1}})
	h, err := Hadamard(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	want, _ := FromEntries(2, 3, []Entry{{0, 0, 10}, {1, 1, -4}})
	if !Equal(h, want, 0) {
		t.Fatalf("Hadamard = %s", Diff(h, want, 0))
	}
}

func TestHadamardCommutesAndMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		a := randomMatrix(rng, 20, 20, 0.25)
		b := randomMatrix(rng, 20, 20, 0.25)
		ab, err := Hadamard(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := Hadamard(b, a)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(ab, ba, 1e-12) {
			t.Fatal("Hadamard not commutative")
		}
		// The support is the intersection.
		for r := 0; r < ab.Rows; r++ {
			cols, _ := ab.Row(r)
			for _, c := range cols {
				if !hasEntry(a, r, c) || !hasEntry(b, r, c) {
					t.Fatalf("(%d,%d) not in both inputs", r, c)
				}
			}
		}
	}
}

func hasEntry(m *Matrix, r int, c int32) bool {
	cols, _ := m.Row(r)
	for _, cc := range cols {
		if cc == c {
			return true
		}
	}
	return false
}

func TestHadamardErrors(t *testing.T) {
	if _, err := Hadamard(New(2, 2), New(3, 2)); err == nil {
		t.Fatal("expected dimension mismatch")
	}
}

func TestSum(t *testing.T) {
	m, _ := FromEntries(2, 2, []Entry{{0, 0, 1.5}, {1, 1, -0.5}})
	if s := m.Sum(); s != 1.0 {
		t.Fatalf("Sum = %v", s)
	}
	if s := New(3, 3).Sum(); s != 0 {
		t.Fatalf("empty Sum = %v", s)
	}
}

func TestPrune(t *testing.T) {
	m, _ := FromEntries(2, 3, []Entry{{0, 0, 0.001}, {0, 1, 5}, {1, 2, -0.002}, {1, 0, -3}})
	p := m.Prune(0.01)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	want, _ := FromEntries(2, 3, []Entry{{0, 1, 5}, {1, 0, -3}})
	if !Equal(p, want, 0) {
		t.Fatalf("Prune = %s", Diff(p, want, 0))
	}
	// Prune with zero tolerance keeps everything nonzero.
	if q := m.Prune(0); q.Nnz() != 4 {
		t.Fatalf("Prune(0) dropped entries: %d", q.Nnz())
	}
}
