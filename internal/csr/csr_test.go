package csr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustFromEntries(t *testing.T, rows, cols int, es []Entry) *Matrix {
	t.Helper()
	m, err := FromEntries(rows, cols, es)
	if err != nil {
		t.Fatalf("FromEntries: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate after FromEntries: %v", err)
	}
	return m
}

func TestEmptyMatrix(t *testing.T) {
	m := New(3, 4)
	if err := m.Validate(); err != nil {
		t.Fatalf("empty matrix invalid: %v", err)
	}
	if m.Nnz() != 0 {
		t.Fatalf("Nnz = %d, want 0", m.Nnz())
	}
	if m.MaxRowNnz() != 0 {
		t.Fatalf("MaxRowNnz = %d, want 0", m.MaxRowNnz())
	}
}

func TestZeroValueMatrix(t *testing.T) {
	var m Matrix
	if m.Nnz() != 0 {
		t.Fatalf("zero-value Nnz = %d, want 0", m.Nnz())
	}
}

func TestFromEntriesBasic(t *testing.T) {
	// The CSR example of Figure 1 style: small matrix with known layout.
	m := mustFromEntries(t, 4, 4, []Entry{
		{0, 0, 1}, {0, 2, 2},
		{1, 1, 3},
		{2, 0, 4}, {2, 2, 5}, {2, 3, 6},
		// row 3 empty
	})
	if m.Nnz() != 6 {
		t.Fatalf("Nnz = %d, want 6", m.Nnz())
	}
	wantOffsets := []int64{0, 2, 3, 6, 6}
	for i, w := range wantOffsets {
		if m.RowOffsets[i] != w {
			t.Fatalf("RowOffsets[%d] = %d, want %d", i, m.RowOffsets[i], w)
		}
	}
	cols, vals := m.Row(2)
	if len(cols) != 3 || cols[0] != 0 || cols[1] != 2 || cols[2] != 3 {
		t.Fatalf("row 2 cols = %v", cols)
	}
	if vals[1] != 5 {
		t.Fatalf("row 2 vals = %v", vals)
	}
}

func TestFromEntriesDuplicatesSummed(t *testing.T) {
	m := mustFromEntries(t, 2, 2, []Entry{
		{0, 1, 1.5}, {0, 1, 2.5}, {1, 0, -1}, {1, 0, 1},
	})
	if m.Nnz() != 2 {
		t.Fatalf("Nnz = %d, want 2 after merging duplicates", m.Nnz())
	}
	_, vals := m.Row(0)
	if vals[0] != 4.0 {
		t.Fatalf("merged value = %v, want 4.0", vals[0])
	}
}

func TestFromEntriesOutOfRange(t *testing.T) {
	if _, err := FromEntries(2, 2, []Entry{{2, 0, 1}}); err == nil {
		t.Fatal("expected error for out-of-range row")
	}
	if _, err := FromEntries(2, 2, []Entry{{0, 5, 1}}); err == nil {
		t.Fatal("expected error for out-of-range column")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func() *Matrix {
		m, _ := FromEntries(3, 3, []Entry{{0, 0, 1}, {0, 2, 2}, {2, 1, 3}})
		return m
	}

	m := mk()
	m.RowOffsets[1] = 5
	if err := m.Validate(); err == nil {
		t.Fatal("expected error for non-monotone offsets")
	}

	m = mk()
	m.ColIDs[1] = 9
	if err := m.Validate(); err == nil {
		t.Fatal("expected error for out-of-range column")
	}

	m = mk()
	m.ColIDs[0], m.ColIDs[1] = m.ColIDs[1], m.ColIDs[0]
	if err := m.Validate(); err == nil {
		t.Fatal("expected error for unsorted columns")
	}

	m = mk()
	m.RowOffsets[0] = 1
	if err := m.Validate(); err == nil {
		t.Fatal("expected error for RowOffsets[0] != 0")
	}

	m = mk()
	m.Data = m.Data[:1]
	if err := m.Validate(); err == nil {
		t.Fatal("expected error for short Data")
	}
}

func randomMatrix(rng *rand.Rand, rows, cols int, density float64) *Matrix {
	var es []Entry
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				es = append(es, Entry{int32(r), int32(c), rng.NormFloat64()})
			}
		}
	}
	m, err := FromEntries(rows, cols, es)
	if err != nil {
		panic(err)
	}
	return m
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		m := randomMatrix(rng, 1+rng.Intn(30), 1+rng.Intn(30), 0.2)
		tt := m.Transpose().Transpose()
		if err := tt.Validate(); err != nil {
			t.Fatalf("transpose-transpose invalid: %v", err)
		}
		if !Equal(m, tt, 0) {
			t.Fatalf("transpose not an involution: %s", Diff(m, tt, 0))
		}
	}
}

func TestTransposeEntries(t *testing.T) {
	m := mustFromEntries(t, 2, 3, []Entry{{0, 2, 7}, {1, 0, 3}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose dims %dx%d", tr.Rows, tr.Cols)
	}
	cols, vals := tr.Row(2)
	if len(cols) != 1 || cols[0] != 0 || vals[0] != 7 {
		t.Fatalf("transpose row 2 = %v %v", cols, vals)
	}
}

func TestExtractRows(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomMatrix(rng, 20, 10, 0.3)
	p, err := m.ExtractRows(5, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("panel invalid: %v", err)
	}
	if p.Rows != 7 || p.Cols != 10 {
		t.Fatalf("panel dims %dx%d", p.Rows, p.Cols)
	}
	for r := 0; r < 7; r++ {
		pc, pv := p.Row(r)
		mc, mv := m.Row(r + 5)
		if len(pc) != len(mc) {
			t.Fatalf("panel row %d nnz mismatch", r)
		}
		for i := range pc {
			if pc[i] != mc[i] || pv[i] != mv[i] {
				t.Fatalf("panel row %d element %d mismatch", r, i)
			}
		}
	}
}

func TestExtractRowsWholeAndEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, 8, 8, 0.4)
	whole, err := m.ExtractRows(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(m, whole, 0) {
		t.Fatal("ExtractRows(0, Rows) != original")
	}
	empty, err := m.ExtractRows(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Rows != 0 || empty.Nnz() != 0 {
		t.Fatal("empty panel not empty")
	}
}

func TestExtractRowsOutOfRange(t *testing.T) {
	m := New(4, 4)
	for _, r := range [][2]int{{2, 9}, {-1, 3}, {3, 2}} {
		if _, err := m.ExtractRows(r[0], r[1]); err == nil {
			t.Fatalf("ExtractRows(%d, %d): expected error", r[0], r[1])
		}
	}
}

func TestAdd(t *testing.T) {
	a := mustFromEntries(t, 2, 3, []Entry{{0, 0, 1}, {0, 2, 2}, {1, 1, 3}})
	b := mustFromEntries(t, 2, 3, []Entry{{0, 0, 4}, {0, 1, 5}, {1, 1, -3}})
	s, err := Add(a, b)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("sum invalid: %v", err)
	}
	want := mustFromEntries(t, 2, 3, []Entry{{0, 0, 5}, {0, 1, 5}, {0, 2, 2}, {1, 1, 0}})
	if !Equal(s, want, 0) {
		t.Fatalf("Add mismatch: %s", Diff(s, want, 0))
	}
}

func TestAddDimensionMismatch(t *testing.T) {
	if _, err := Add(New(2, 2), New(3, 2)); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestAddCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		a := randomMatrix(rng, 15, 15, 0.2)
		b := randomMatrix(rng, 15, 15, 0.2)
		ab, _ := Add(a, b)
		ba, _ := Add(b, a)
		if !Equal(ab, ba, 1e-12) {
			t.Fatalf("Add not commutative: %s", Diff(ab, ba, 1e-12))
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := mustFromEntries(t, 2, 2, []Entry{{0, 0, 1}, {1, 1, 2}})
	c := m.Clone()
	c.Data[0] = 99
	c.ColIDs[1] = 0
	if m.Data[0] == 99 || m.ColIDs[1] == 0 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestScale(t *testing.T) {
	m := mustFromEntries(t, 1, 3, []Entry{{0, 0, 1}, {0, 2, -2}})
	m.Scale(2.5)
	_, vals := m.Row(0)
	if vals[0] != 2.5 || vals[1] != -5 {
		t.Fatalf("Scale values = %v", vals)
	}
}

func TestBytes(t *testing.T) {
	m := mustFromEntries(t, 2, 2, []Entry{{0, 0, 1}, {1, 1, 2}})
	want := int64(3*8 + 2*4 + 2*8)
	if m.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", m.Bytes(), want)
	}
}

func TestEqualTolerance(t *testing.T) {
	a := mustFromEntries(t, 1, 2, []Entry{{0, 0, 1.0}, {0, 1, 2.0}})
	b := mustFromEntries(t, 1, 2, []Entry{{0, 0, 1.0 + 1e-13}, {0, 1, 2.0}})
	if !Equal(a, b, 1e-9) {
		t.Fatal("matrices should be equal within tolerance")
	}
	if Equal(a, b, 0) {
		t.Fatal("matrices should differ at zero tolerance")
	}
}

// Property: round-tripping any set of entries through CSR preserves the
// dense reconstruction.
func TestQuickFromEntriesDenseRoundTrip(t *testing.T) {
	f := func(raw []struct {
		R, C uint8
		V    int16
	}) bool {
		const n = 16
		dense := make([]float64, n*n)
		es := make([]Entry, 0, len(raw))
		for _, e := range raw {
			// Small-integer values make summation exact regardless of
			// the order duplicates are merged in.
			r, c, v := int(e.R)%n, int(e.C)%n, float64(e.V)
			dense[r*n+c] += v
			es = append(es, Entry{int32(r), int32(c), v})
		}
		m, err := FromEntries(n, n, es)
		if err != nil || m.Validate() != nil {
			return false
		}
		got := make([]float64, n*n)
		for r := 0; r < n; r++ {
			cols, vals := m.Row(r)
			for i := range cols {
				got[r*n+int(cols[i])] = vals[i]
			}
		}
		for i := range dense {
			if dense[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: transposing preserves nnz and swaps dimensions.
func TestQuickTransposeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMatrix(r, 1+int(seed%13+13)%13+1, 1+r.Intn(20), 0.25)
		tr := m.Transpose()
		return tr.Validate() == nil && tr.Nnz() == m.Nnz() && tr.Rows == m.Cols && tr.Cols == m.Rows
	}
	for i := 0; i < 25; i++ {
		if !f(rng.Int63()) {
			t.Fatal("transpose shape property violated")
		}
	}
}

// TestFromEntriesLargeParallelSort pushes FromEntries past the
// parallel-sort cutoff and checks the result against per-element
// expectations (sorted rows, summed duplicates preserved).
func TestFromEntriesLargeParallelSort(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const rows, cols = 500, 500
	n := sortEntriesCutoff * 2
	es := make([]Entry, n)
	want := map[[2]int32]float64{}
	for i := range es {
		e := Entry{Row: int32(rng.Intn(rows)), Col: int32(rng.Intn(cols)), Val: rng.NormFloat64()}
		es[i] = e
		want[[2]int32{e.Row, e.Col}] += e.Val
	}
	m := mustFromEntries(t, rows, cols, es)
	if m.Nnz() != int64(len(want)) {
		t.Fatalf("nnz %d, want %d", m.Nnz(), len(want))
	}
	for r := 0; r < rows; r++ {
		mc, mv := m.Row(r)
		for i := range mc {
			w := want[[2]int32{int32(r), mc[i]}]
			if d := mv[i] - w; d > 1e-9 || d < -1e-9 {
				t.Fatalf("row %d col %d = %g, want %g", r, mc[i], mv[i], w)
			}
		}
	}
}

// TestTransposeLargeParallelAgreesWithSequential forces both transpose
// paths on the same matrix and requires identical output.
func TestTransposeLargeParallelAgreesWithSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const rows, cols = 900, 300
	var es []Entry
	for i := 0; i < transposeParallelCutoff+5000; i++ {
		es = append(es, Entry{Row: int32(rng.Intn(rows)), Col: int32(rng.Intn(cols)), Val: rng.NormFloat64()})
	}
	m := mustFromEntries(t, rows, cols, es)

	// The sequential reference, computed inline regardless of cutoff.
	ref := &Matrix{Rows: m.Cols, Cols: m.Rows, RowOffsets: make([]int64, m.Cols+1),
		ColIDs: make([]int32, m.Nnz()), Data: make([]float64, m.Nnz())}
	for _, c := range m.ColIDs {
		ref.RowOffsets[c+1]++
	}
	for c := 0; c < m.Cols; c++ {
		ref.RowOffsets[c+1] += ref.RowOffsets[c]
	}
	pos := make([]int64, m.Cols)
	copy(pos, ref.RowOffsets[:m.Cols])
	for r := 0; r < m.Rows; r++ {
		for p := m.RowOffsets[r]; p < m.RowOffsets[r+1]; p++ {
			c := m.ColIDs[p]
			ref.ColIDs[pos[c]] = int32(r)
			ref.Data[pos[c]] = m.Data[p]
			pos[c]++
		}
	}

	// The parallel path, invoked directly so the test does not depend
	// on GOMAXPROCS exceeding one.
	got := m.transposeParallel(4)
	if err := got.Validate(); err != nil {
		t.Fatalf("parallel transpose invalid: %v", err)
	}
	if !Equal(got, ref, 0) {
		t.Fatalf("parallel transpose differs: %s", Diff(got, ref, 0))
	}

	// And the involution still holds through the public entry point.
	back := got.Transpose()
	if !Equal(back, m, 0) {
		t.Fatalf("transpose involution broken: %s", Diff(back, m, 0))
	}
}
