package csr

// Flops reports the number of floating-point operations required to
// compute A·B with Gustavson's algorithm, counting a multiply-add as two
// flops as the paper does (Table II: "a multiply-add counts as 2 flops").
// It is the sum over all non-zeros A[i][k] of 2*nnz(B[k][*]).
func Flops(a, b *Matrix) int64 {
	bRowNnz := make([]int64, b.Rows)
	for r := 0; r < b.Rows; r++ {
		bRowNnz[r] = b.RowNnz(r)
	}
	var total int64
	for _, k := range a.ColIDs {
		total += 2 * bRowNnz[k]
	}
	return total
}

// RowFlops returns, for every row i of A, the number of flops needed to
// compute row i of A·B. This is the "row analysis" quantity of the
// framework's first GPU stage (Figure 3), used for load balancing and
// for the hybrid work distribution.
func RowFlops(a, b *Matrix) []int64 {
	bRowNnz := make([]int64, b.Rows)
	for r := 0; r < b.Rows; r++ {
		bRowNnz[r] = b.RowNnz(r)
	}
	out := make([]int64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		var f int64
		for p := a.RowOffsets[i]; p < a.RowOffsets[i+1]; p++ {
			f += 2 * bRowNnz[a.ColIDs[p]]
		}
		out[i] = f
	}
	return out
}

// RowUpperBounds returns, for every row of A, the worst-case number of
// non-zeros in the corresponding row of A·B: the sum of nnz(B[k][*])
// over the non-zeros A[i][k]. The paper (Section IV-B) discusses — and
// rejects — sizing device allocations from these bounds because the gap
// between the bound and the observed nnz can be very large; we keep them
// for hash-table sizing and for the upper-bound ablation.
func RowUpperBounds(a, b *Matrix) []int64 {
	bRowNnz := make([]int64, b.Rows)
	for r := 0; r < b.Rows; r++ {
		bRowNnz[r] = b.RowNnz(r)
	}
	out := make([]int64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		var n int64
		for p := a.RowOffsets[i]; p < a.RowOffsets[i+1]; p++ {
			n += bRowNnz[a.ColIDs[p]]
		}
		out[i] = n
	}
	return out
}

// CompressionRatio reports flop(A·B) / nnz(A·B) given the product
// matrix c. The paper uses this ratio (Table II) as the key predictor of
// out-of-core performance: it compares the amount of computation with
// the amount of output data that must cross the PCIe bus.
func CompressionRatio(a, b, c *Matrix) float64 {
	n := c.Nnz()
	if n == 0 {
		return 0
	}
	return float64(Flops(a, b)) / float64(n)
}
