package csr

import "repro/internal/parallel"

// Flops reports the number of floating-point operations required to
// compute A·B with Gustavson's algorithm, counting a multiply-add as two
// flops as the paper does (Table II: "a multiply-add counts as 2 flops").
// It is the sum over all non-zeros A[i][k] of 2*nnz(B[k][*]).
func Flops(a, b *Matrix) int64 {
	var total int64
	for _, f := range RowFlops(a, b) {
		total += f
	}
	return total
}

// RowFlops returns, for every row i of A, the number of flops needed to
// compute row i of A·B. This is the "row analysis" quantity of the
// framework's first GPU stage (Figure 3), used for load balancing and
// for the hybrid work distribution. It feeds every engine's scheduler,
// so the scan itself is row-parallel.
func RowFlops(a, b *Matrix) []int64 {
	bRowNnz := make([]int64, b.Rows)
	parallel.For(0, b.Rows, parallel.Grain(b.Rows, 0), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			bRowNnz[r] = b.RowNnz(r)
		}
	})
	out := make([]int64, a.Rows)
	parallel.For(0, a.Rows, parallel.Grain(a.Rows, 0), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var f int64
			for p := a.RowOffsets[i]; p < a.RowOffsets[i+1]; p++ {
				f += 2 * bRowNnz[a.ColIDs[p]]
			}
			out[i] = f
		}
	})
	return out
}

// RowUpperBounds returns, for every row of A, the worst-case number of
// non-zeros in the corresponding row of A·B: the sum of nnz(B[k][*])
// over the non-zeros A[i][k]. The paper (Section IV-B) discusses — and
// rejects — sizing device allocations from these bounds because the gap
// between the bound and the observed nnz can be very large; we keep them
// for hash-table sizing and for the upper-bound ablation.
func RowUpperBounds(a, b *Matrix) []int64 {
	out := RowFlops(a, b)
	for i := range out {
		out[i] /= 2
	}
	return out
}

// CompressionRatio reports flop(A·B) / nnz(A·B) given the product
// matrix c. The paper uses this ratio (Table II) as the key predictor of
// out-of-core performance: it compares the amount of computation with
// the amount of output data that must cross the PCIe bus.
func CompressionRatio(a, b, c *Matrix) float64 {
	n := c.Nnz()
	if n == 0 {
		return 0
	}
	return float64(Flops(a, b)) / float64(n)
}
