package csr

// Segment compression of a matrix's sparsity pattern, in the style of
// CSeg's two-level column representation: each row's column ids are
// grouped into 64-wide segments, and every segment is stored once as a
// (segment id, occupancy mask) pair. A row whose columns cluster —
// banded matrices, block structure, any locality at all — compresses
// by up to 64x, and a Gustavson symbolic phase that consumes the
// compressed rows does one word-OR per segment instead of one
// hash/bitmap update per column. Rows with no clustering degrade to
// one pair per column (ratio 1), which is why consumers check Ratio
// before preferring the compressed walk.
type Segments struct {
	// RowPtr indexes SegIDs/Masks per row, CSR-style:
	// row r's segments are [RowPtr[r], RowPtr[r+1]).
	RowPtr []int64
	// SegIDs is the segment id (column id >> 6) of each entry, ascending
	// within a row (inherited from the CSR column order).
	SegIDs []int32
	// Masks holds the 64-column occupancy mask of each segment.
	Masks []uint64
	// Nnz is the number of non-zeros the compression covers.
	Nnz int64
}

// Compress builds the segment representation of m's pattern in one
// O(nnz) pass. Column ids within each CSR row are ascending, so equal
// segments are adjacent and the pass needs no hashing.
func Compress(m *Matrix) *Segments {
	s := &Segments{
		RowPtr: make([]int64, m.Rows+1),
		Nnz:    int64(len(m.ColIDs)),
	}
	// Worst case one segment per non-zero; the append below only ever
	// shrinks that.
	s.SegIDs = make([]int32, 0, len(m.ColIDs))
	s.Masks = make([]uint64, 0, len(m.ColIDs))
	for r := 0; r < m.Rows; r++ {
		cur := int32(-1)
		for p := m.RowOffsets[r]; p < m.RowOffsets[r+1]; p++ {
			col := m.ColIDs[p]
			seg := col >> 6
			if seg != cur {
				s.SegIDs = append(s.SegIDs, seg)
				s.Masks = append(s.Masks, 0)
				cur = seg
			}
			s.Masks[len(s.Masks)-1] |= 1 << uint(col&63)
		}
		s.RowPtr[r+1] = int64(len(s.SegIDs))
	}
	return s
}

// Row returns row r's segment ids and masks.
func (s *Segments) Row(r int) ([]int32, []uint64) {
	lo, hi := s.RowPtr[r], s.RowPtr[r+1]
	return s.SegIDs[lo:hi], s.Masks[lo:hi]
}

// Ratio reports the compression ratio nnz / segments — 1 means no
// clustering at all (every segment holds a single column), 64 is the
// maximum (every segment full). Empty matrices report 1.
func (s *Segments) Ratio() float64 {
	if len(s.SegIDs) == 0 {
		return 1
	}
	return float64(s.Nnz) / float64(len(s.SegIDs))
}

// Bytes reports the memory the representation retains.
func (s *Segments) Bytes() int64 {
	return int64(len(s.RowPtr))*8 + int64(len(s.SegIDs))*4 + int64(len(s.Masks))*8
}
