package csr

import "fmt"

// MulVec computes y = A·x. The slices must have lengths Cols and Rows
// respectively.
func (m *Matrix) MulVec(x, y []float64) error {
	if len(x) != m.Cols || len(y) != m.Rows {
		return fmt.Errorf("csr: MulVec dims: len(x)=%d want %d, len(y)=%d want %d", len(x), m.Cols, len(y), m.Rows)
	}
	for r := 0; r < m.Rows; r++ {
		var sum float64
		for p := m.RowOffsets[r]; p < m.RowOffsets[r+1]; p++ {
			sum += m.Data[p] * x[m.ColIDs[p]]
		}
		y[r] = sum
	}
	return nil
}

// Diagonal returns the main-diagonal values (zero where absent).
func (m *Matrix) Diagonal() []float64 {
	d := make([]float64, m.Rows)
	for r := 0; r < m.Rows && r < m.Cols; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			if int(c) == r {
				d[r] = vals[i]
				break
			}
		}
	}
	return d
}

// RowSums returns the sum of each row's values.
func (m *Matrix) RowSums() []float64 {
	s := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		_, vals := m.Row(r)
		for _, v := range vals {
			s[r] += v
		}
	}
	return s
}
