// Package csr implements the compressed sparse row (CSR) matrix
// representation used throughout the out-of-core SpGEMM framework.
//
// A CSR matrix stores its non-zero elements row by row in three arrays:
// RowOffsets (length Rows+1), ColIDs and Data (length Nnz). Within each
// row, column identifiers are kept sorted in increasing order, matching
// the convention of the paper (Section II-A) and of spECK/Nagasaka-style
// SpGEMM implementations that the framework builds on.
//
// Index arrays use int64 so matrices whose nnz exceeds 2^31 can be
// represented (the paper points out that MKL's int32 indices cannot
// handle its large inputs).
package csr

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/parallel"
)

// Matrix is a sparse matrix in CSR form. The zero value is an empty 0x0
// matrix ready for use.
type Matrix struct {
	// Rows and Cols are the logical dimensions of the matrix.
	Rows, Cols int
	// RowOffsets has length Rows+1. Row r occupies positions
	// RowOffsets[r]..RowOffsets[r+1] (exclusive) of ColIDs and Data.
	RowOffsets []int64
	// ColIDs holds the column identifier of each non-zero, row by row,
	// sorted in increasing order within each row.
	ColIDs []int32
	// Data holds the value of each non-zero, parallel to ColIDs.
	Data []float64
}

// Nnz reports the number of stored non-zero elements.
func (m *Matrix) Nnz() int64 {
	if len(m.RowOffsets) == 0 {
		return 0
	}
	return m.RowOffsets[len(m.RowOffsets)-1]
}

// RowNnz reports the number of stored elements in row r.
func (m *Matrix) RowNnz(r int) int64 {
	return m.RowOffsets[r+1] - m.RowOffsets[r]
}

// Row returns the column ids and values of row r as sub-slices of the
// matrix storage. The caller must not modify the returned slices' length.
func (m *Matrix) Row(r int) ([]int32, []float64) {
	lo, hi := m.RowOffsets[r], m.RowOffsets[r+1]
	return m.ColIDs[lo:hi], m.Data[lo:hi]
}

// New creates an empty matrix with the given dimensions and a zero
// row-offset array.
func New(rows, cols int) *Matrix {
	return &Matrix{
		Rows:       rows,
		Cols:       cols,
		RowOffsets: make([]int64, rows+1),
	}
}

// Entry is one coordinate-format non-zero, used when building matrices
// from triplets.
type Entry struct {
	Row, Col int32
	Val      float64
}

// FromEntries builds a CSR matrix from coordinate triplets. Duplicate
// (row, col) entries are summed. The input slice is reordered in place.
// The dominant cost — sorting the triplets — runs as a parallel merge
// sort on large inputs.
func FromEntries(rows, cols int, entries []Entry) (*Matrix, error) {
	for _, e := range entries {
		if int(e.Row) < 0 || int(e.Row) >= rows || int(e.Col) < 0 || int(e.Col) >= cols {
			return nil, fmt.Errorf("csr: entry (%d,%d) outside %dx%d matrix", e.Row, e.Col, rows, cols)
		}
	}
	sortEntries(entries)
	// Merge duplicates.
	w := 0
	for i := 0; i < len(entries); i++ {
		if w > 0 && entries[w-1].Row == entries[i].Row && entries[w-1].Col == entries[i].Col {
			entries[w-1].Val += entries[i].Val
			continue
		}
		entries[w] = entries[i]
		w++
	}
	entries = entries[:w]

	m := &Matrix{
		Rows:       rows,
		Cols:       cols,
		RowOffsets: make([]int64, rows+1),
		ColIDs:     make([]int32, len(entries)),
		Data:       make([]float64, len(entries)),
	}
	counts := make([]int64, rows)
	for _, e := range entries {
		counts[e.Row]++
	}
	parallel.PrefixSum(0, m.RowOffsets, counts)
	// The deduplicated entries are already in CSR order, so entry i
	// lands at position i; the fill is an independent per-element copy.
	parallel.For(0, len(entries), parallel.Grain(len(entries), 0), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m.ColIDs[i] = entries[i].Col
			m.Data[i] = entries[i].Val
		}
	})
	return m, nil
}

// sortEntriesCutoff is the size below which the triplet sort stays
// sequential; goroutine fan-out costs more than it saves there.
const sortEntriesCutoff = 1 << 14

// sortEntries orders triplets by (row, col): a parallel merge sort for
// large slices (sorted power-of-two runs, then pairwise parallel merge
// rounds), the standard library sort otherwise.
func sortEntries(entries []Entry) {
	n := len(entries)
	workers := parallel.Workers(0)
	if workers == 1 || n < sortEntriesCutoff {
		sort.Slice(entries, func(i, j int) bool { return entryLess(entries[i], entries[j]) })
		return
	}
	runs := 1
	for runs < 2*workers {
		runs <<= 1
	}
	rb := parallel.Blocks(n, runs)
	parallel.ForChunks(workers, rb, func(lo, hi int) {
		seg := entries[lo:hi]
		sort.Slice(seg, func(i, j int) bool { return entryLess(seg[i], seg[j]) })
	})
	buf := make([]Entry, n)
	src, dst := entries, buf
	for width := 1; width < runs; width *= 2 {
		type job struct{ lo, mid, hi int }
		var jobs []job
		for k := 0; k < runs; k += 2 * width {
			mid, end := k+width, k+2*width
			if mid > runs {
				mid = runs
			}
			if end > runs {
				end = runs
			}
			jobs = append(jobs, job{rb[k], rb[mid], rb[end]})
		}
		localSrc, localDst := src, dst
		parallel.For(workers, len(jobs), 1, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				mergeEntryRuns(localDst[jobs[j].lo:jobs[j].hi], localSrc[jobs[j].lo:jobs[j].mid], localSrc[jobs[j].mid:jobs[j].hi])
			}
		})
		src, dst = dst, src
	}
	if &src[0] != &entries[0] {
		copy(entries, src)
	}
}

func entryLess(a, b Entry) bool {
	if a.Row != b.Row {
		return a.Row < b.Row
	}
	return a.Col < b.Col
}

// mergeEntryRuns merges the two sorted runs a and b into dst, whose
// length is len(a)+len(b).
func mergeEntryRuns(dst, a, b []Entry) {
	i, j := 0, 0
	for k := range dst {
		switch {
		case i >= len(a):
			dst[k] = b[j]
			j++
		case j >= len(b) || !entryLess(b[j], a[i]):
			dst[k] = a[i]
			i++
		default:
			dst[k] = b[j]
			j++
		}
	}
}

// Validate checks the structural invariants of the CSR representation:
// monotone row offsets, in-range sorted column ids, and consistent array
// lengths. It returns a descriptive error for the first violation found.
func (m *Matrix) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("csr: negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if len(m.RowOffsets) != m.Rows+1 {
		return fmt.Errorf("csr: RowOffsets length %d, want %d", len(m.RowOffsets), m.Rows+1)
	}
	if m.RowOffsets[0] != 0 {
		return fmt.Errorf("csr: RowOffsets[0] = %d, want 0", m.RowOffsets[0])
	}
	nnz := m.RowOffsets[m.Rows]
	if int64(len(m.ColIDs)) != nnz || int64(len(m.Data)) != nnz {
		return fmt.Errorf("csr: nnz %d but len(ColIDs)=%d len(Data)=%d", nnz, len(m.ColIDs), len(m.Data))
	}
	for r := 0; r < m.Rows; r++ {
		if m.RowOffsets[r+1] < m.RowOffsets[r] {
			return fmt.Errorf("csr: RowOffsets not monotone at row %d", r)
		}
		prev := int32(-1)
		for p := m.RowOffsets[r]; p < m.RowOffsets[r+1]; p++ {
			c := m.ColIDs[p]
			if int(c) < 0 || int(c) >= m.Cols {
				return fmt.Errorf("csr: row %d has column %d outside [0,%d)", r, c, m.Cols)
			}
			if c <= prev {
				return fmt.Errorf("csr: row %d columns not strictly increasing at position %d", r, p)
			}
			prev = c
		}
	}
	return nil
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{
		Rows:       m.Rows,
		Cols:       m.Cols,
		RowOffsets: append([]int64(nil), m.RowOffsets...),
		ColIDs:     append([]int32(nil), m.ColIDs...),
		Data:       append([]float64(nil), m.Data...),
	}
	return c
}

// transposeParallelCutoff is the nnz below which Transpose stays
// sequential: the counting-sort passes are too short to win back the
// per-worker histogram setup.
const transposeParallelCutoff = 1 << 15

// Transpose returns the transpose of the matrix, also in CSR form (which
// is equivalently the CSC form of the original). Large matrices use a
// parallel counting sort: each worker histograms a block of rows, the
// per-worker column counts are scanned into disjoint write cursors, and
// the scatter runs block-parallel while preserving the row order (so
// transposed rows stay sorted). The parallel path is skipped when the
// per-worker histograms would rival the matrix itself in size.
func (m *Matrix) Transpose() *Matrix {
	workers := parallel.Workers(0)
	nnz := m.Nnz()
	if workers > 1 && nnz >= transposeParallelCutoff && int64(workers)*int64(m.Cols) <= 4*nnz {
		return m.transposeParallel(workers)
	}
	t := &Matrix{
		Rows:       m.Cols,
		Cols:       m.Rows,
		RowOffsets: make([]int64, m.Cols+1),
		ColIDs:     make([]int32, nnz),
		Data:       make([]float64, nnz),
	}
	for _, c := range m.ColIDs {
		t.RowOffsets[c+1]++
	}
	for c := 0; c < m.Cols; c++ {
		t.RowOffsets[c+1] += t.RowOffsets[c]
	}
	pos := make([]int64, m.Cols)
	copy(pos, t.RowOffsets[:m.Cols])
	for r := 0; r < m.Rows; r++ {
		for p := m.RowOffsets[r]; p < m.RowOffsets[r+1]; p++ {
			c := m.ColIDs[p]
			q := pos[c]
			t.ColIDs[q] = int32(r)
			t.Data[q] = m.Data[p]
			pos[c]++
		}
	}
	return t
}

func (m *Matrix) transposeParallel(workers int) *Matrix {
	t := &Matrix{
		Rows:       m.Cols,
		Cols:       m.Rows,
		RowOffsets: make([]int64, m.Cols+1),
		ColIDs:     make([]int32, m.Nnz()),
		Data:       make([]float64, m.Nnz()),
	}
	rb := parallel.Blocks(m.Rows, workers)
	// Phase 1: per-worker column histograms over disjoint row blocks.
	counts := make([]int64, workers*m.Cols)
	parallel.Run(workers, func(w int) {
		h := counts[w*m.Cols : (w+1)*m.Cols]
		for p := m.RowOffsets[rb[w]]; p < m.RowOffsets[rb[w+1]]; p++ {
			h[m.ColIDs[p]]++
		}
	})
	// Phase 2: column totals feed the row offsets of the transpose;
	// then each histogram cell becomes its worker's write cursor for
	// that column (an exclusive scan across workers per column).
	colTotal := make([]int64, m.Cols)
	grain := parallel.Grain(m.Cols, workers)
	parallel.For(workers, m.Cols, grain, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			var s int64
			for w := 0; w < workers; w++ {
				s += counts[w*m.Cols+c]
			}
			colTotal[c] = s
		}
	})
	parallel.PrefixSum(workers, t.RowOffsets, colTotal)
	parallel.For(workers, m.Cols, grain, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			pos := t.RowOffsets[c]
			for w := 0; w < workers; w++ {
				n := counts[w*m.Cols+c]
				counts[w*m.Cols+c] = pos
				pos += n
			}
		}
	})
	// Phase 3: scatter. Each worker walks its row block in order, so
	// within every transposed row the original row ids — its column
	// ids — appear in increasing order.
	parallel.Run(workers, func(w int) {
		pos := counts[w*m.Cols : (w+1)*m.Cols]
		for r := rb[w]; r < rb[w+1]; r++ {
			for p := m.RowOffsets[r]; p < m.RowOffsets[r+1]; p++ {
				c := m.ColIDs[p]
				q := pos[c]
				t.ColIDs[q] = int32(r)
				t.Data[q] = m.Data[p]
				pos[c] = q + 1
			}
		}
	})
	return t
}

// ExtractRows returns the row panel consisting of rows [lo, hi) as an
// independent matrix with the same number of columns. This is the
// partition_rows primitive of Algorithm 3: under CSR it is a contiguous
// copy of the three arrays. An out-of-range interval is a caller-data
// failure (panel boundaries come from user-chosen panel counts), so it
// is returned as an error rather than panicking.
func (m *Matrix) ExtractRows(lo, hi int) (*Matrix, error) {
	if lo < 0 || hi > m.Rows || lo > hi {
		return nil, fmt.Errorf("csr: ExtractRows[%d,%d) outside %d rows", lo, hi, m.Rows)
	}
	base := m.RowOffsets[lo]
	p := &Matrix{
		Rows:       hi - lo,
		Cols:       m.Cols,
		RowOffsets: make([]int64, hi-lo+1),
		ColIDs:     append([]int32(nil), m.ColIDs[base:m.RowOffsets[hi]]...),
		Data:       append([]float64(nil), m.Data[base:m.RowOffsets[hi]]...),
	}
	for r := lo; r <= hi; r++ {
		p.RowOffsets[r-lo] = m.RowOffsets[r] - base
	}
	return p, nil
}

// Equal reports whether the two matrices have identical structure and
// values equal within the absolute-or-relative tolerance tol.
func Equal(a, b *Matrix, tol float64) bool {
	return Diff(a, b, tol) == ""
}

// Diff compares two matrices and returns a human-readable description of
// the first discrepancy, or "" if they are equal within tol.
func Diff(a, b *Matrix, tol float64) string {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return fmt.Sprintf("dimensions %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for r := 0; r < a.Rows; r++ {
		if a.RowNnz(r) != b.RowNnz(r) {
			return fmt.Sprintf("row %d nnz %d vs %d", r, a.RowNnz(r), b.RowNnz(r))
		}
		ac, av := a.Row(r)
		bc, bv := b.Row(r)
		for i := range ac {
			if ac[i] != bc[i] {
				return fmt.Sprintf("row %d position %d column %d vs %d", r, i, ac[i], bc[i])
			}
			d := math.Abs(av[i] - bv[i])
			if d > tol && d > tol*math.Max(math.Abs(av[i]), math.Abs(bv[i])) {
				return fmt.Sprintf("row %d col %d value %g vs %g", r, ac[i], av[i], bv[i])
			}
		}
	}
	return ""
}

// Add returns A + B for two matrices of identical dimensions.
func Add(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, errors.New("csr: Add dimension mismatch")
	}
	out := &Matrix{Rows: a.Rows, Cols: a.Cols, RowOffsets: make([]int64, a.Rows+1)}
	// Two passes: count, then fill.
	for r := 0; r < a.Rows; r++ {
		out.RowOffsets[r+1] = out.RowOffsets[r] + int64(mergedRowLen(a, b, r))
	}
	out.ColIDs = make([]int32, out.RowOffsets[a.Rows])
	out.Data = make([]float64, out.RowOffsets[a.Rows])
	for r := 0; r < a.Rows; r++ {
		ac, av := a.Row(r)
		bc, bv := b.Row(r)
		w := out.RowOffsets[r]
		i, j := 0, 0
		for i < len(ac) || j < len(bc) {
			switch {
			case j >= len(bc) || (i < len(ac) && ac[i] < bc[j]):
				out.ColIDs[w], out.Data[w] = ac[i], av[i]
				i++
			case i >= len(ac) || bc[j] < ac[i]:
				out.ColIDs[w], out.Data[w] = bc[j], bv[j]
				j++
			default:
				out.ColIDs[w], out.Data[w] = ac[i], av[i]+bv[j]
				i++
				j++
			}
			w++
		}
	}
	return out, nil
}

func mergedRowLen(a, b *Matrix, r int) int {
	ac, _ := a.Row(r)
	bc, _ := b.Row(r)
	n, i, j := 0, 0, 0
	for i < len(ac) || j < len(bc) {
		switch {
		case j >= len(bc) || (i < len(ac) && ac[i] < bc[j]):
			i++
		case i >= len(ac) || bc[j] < ac[i]:
			j++
		default:
			i++
			j++
		}
		n++
	}
	return n
}

// Scale multiplies every stored value by s, in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Bytes reports the storage footprint of the matrix in bytes using the
// framework's on-device layout: 8 bytes per row offset, 4 per column id,
// 8 per value. This is the quantity whose transfer the out-of-core
// framework schedules.
func (m *Matrix) Bytes() int64 {
	return int64(len(m.RowOffsets))*8 + int64(len(m.ColIDs))*4 + int64(len(m.Data))*8
}

// MaxRowNnz returns the largest per-row non-zero count.
func (m *Matrix) MaxRowNnz() int64 {
	var mx int64
	for r := 0; r < m.Rows; r++ {
		if n := m.RowNnz(r); n > mx {
			mx = n
		}
	}
	return mx
}
