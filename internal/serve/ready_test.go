package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/spgemm"
	apiv1 "repro/spgemm/api/v1"
)

// getReadyz fetches /readyz and decodes the wire body.
func getReadyz(t *testing.T, url string) (int, apiv1.ReadyResponse) {
	t.Helper()
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body apiv1.ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("readyz body: %v", err)
	}
	return resp.StatusCode, body
}

// TestReadyzWireStatuses pins the /readyz wire contract the cluster
// coordinator and load balancers dispatch on: the literal strings
// "ready", "degraded" and "draining" in the status field, 200 for the
// first two (a degraded server still serves, through its fallback
// paths) and 503 only once draining.
func TestReadyzWireStatuses(t *testing.T) {
	a := spgemm.RMAT(7, 8, 0.57, 0.19, 0.19, 107)
	s := New(Config{
		MaxConcurrent: 1,
		Breaker: BreakerConfig{
			TripFailures:    -1,
			TripRetries:     -1,
			TripDevicesLost: 1,
			CooldownJobs:    4,
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, body := getReadyz(t, ts.URL)
	if status != http.StatusOK || body.Status != "ready" || body.Draining {
		t.Fatalf("fresh server: %d %+v, want 200 status=ready", status, body)
	}

	// One lost device trips the hybrid breaker: the server keeps
	// serving via its CPU fallback and reports degraded, still 200.
	if _, err := s.Submit(Job{Engine: "hybrid", A: a, B: a, Opts: hybridLossOpts(1)}); err != nil {
		t.Fatal(err)
	}
	status, body = getReadyz(t, ts.URL)
	if status != http.StatusOK || body.Status != "degraded" || body.Draining {
		t.Fatalf("tripped breaker: %d %+v, want 200 status=degraded", status, body)
	}
	if body.Breakers["hybrid"] != "open" {
		t.Fatalf("degraded breakers: %v", body.Breakers)
	}

	// Draining wins over everything and flips to 503.
	s.Drain(0)
	status, body = getReadyz(t, ts.URL)
	if status != http.StatusServiceUnavailable || body.Status != "draining" || !body.Draining {
		t.Fatalf("draining server: %d %+v, want 503 status=draining", status, body)
	}
}

// TestBatchPinsHandlesAgainstEviction is the regression test for the
// eviction-vs-inflight-batch race: a handle referenced by an admitted
// but unfinished batch must survive LRU pressure from concurrent
// uploads, and must become evictable again once the batch finishes.
func TestBatchPinsHandlesAgainstEviction(t *testing.T) {
	registerTestEngines()
	a := spgemm.ER(64, 64, 0.05, 10)
	budget := 2*a.Bytes() + a.Bytes()/2 // room for two matrices, not three
	s := New(Config{MaxConcurrent: 2, MatrixStoreBytes: budget})
	defer s.Drain(0)

	ha, err := s.StoreMatrix(a)
	if err != nil {
		t.Fatal(err)
	}

	gate := openGate()
	done := make(chan *apiv1.BatchResponse, 1)
	go func() {
		resp, err := s.SubmitBatch(&apiv1.BatchRequest{Nodes: []apiv1.BatchNode{
			{ID: "pinned", Engine: "block", A: apiv1.Operand{Handle: ha}},
		}})
		if err != nil {
			t.Errorf("batch rejected: %v", err)
			done <- nil
			return
		}
		done <- resp
	}()
	waitInflight(t, s, 1)

	// Two uploads under a two-matrix budget: without pinning the LRU
	// policy would evict ha (the oldest) for the second one. With the
	// batch holding a pin, the first filler is sacrificed instead.
	if _, err := s.StoreMatrix(spgemm.ER(64, 64, 0.05, 11)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StoreMatrix(spgemm.ER(64, 64, 0.05, 12)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Matrix(ha); !ok {
		t.Fatal("handle referenced by a running batch was evicted")
	}

	close(gate)
	resp := <-done
	if resp == nil {
		t.FailNow()
	}
	if resp.Nodes[0].Status != apiv1.StatusOK {
		t.Fatalf("pinned node: %+v", resp.Nodes[0])
	}

	// The batch is done, its pin released: enough fresh uploads now
	// evict ha like any other LRU entry. (Two, because the survival
	// check above touched ha to the LRU tail.)
	if _, err := s.StoreMatrix(spgemm.ER(64, 64, 0.05, 13)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StoreMatrix(spgemm.ER(64, 64, 0.05, 14)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Matrix(ha); ok {
		t.Fatal("handle stayed unevictable after its batch finished")
	}
}

// TestStoreRejectsWhenAllPinned: when every resident byte is pinned by
// running work, an upload that cannot fit fails instead of shrinking a
// live working set.
func TestStoreRejectsWhenAllPinned(t *testing.T) {
	registerTestEngines()
	a := spgemm.ER(64, 64, 0.05, 10)
	s := New(Config{MaxConcurrent: 2, MatrixStoreBytes: a.Bytes() + a.Bytes()/2})
	defer s.Drain(0)

	ha, err := s.StoreMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	gate := openGate()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = s.SubmitBatch(&apiv1.BatchRequest{Nodes: []apiv1.BatchNode{
			{ID: "n", Engine: "block", A: apiv1.Operand{Handle: ha}},
		}})
	}()
	waitInflight(t, s, 1)

	if _, err := s.StoreMatrix(spgemm.ER(64, 64, 0.05, 11)); err == nil {
		t.Fatal("upload succeeded by evicting a fully pinned store")
	}
	if _, ok := s.Matrix(ha); !ok {
		t.Fatal("pinned handle evicted")
	}
	close(gate)
	<-done
}
