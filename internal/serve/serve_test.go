package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/spgemm"
)

// --- test engines -----------------------------------------------------

var (
	testEngineOnce sync.Once
	// blockGate holds the channel the "block" engine waits on; tests
	// swap in a fresh channel and close it to release blocked jobs.
	blockGate atomic.Value // chan struct{}
)

type funcEngine struct {
	name string
	run  func(a, b *spgemm.Matrix, o *spgemm.RunOptions) (*spgemm.Matrix, spgemm.Report, error)
}

func (e funcEngine) Name() string     { return e.name }
func (e funcEngine) Describe() string { return "test engine " + e.name }
func (e funcEngine) Run(a, b *spgemm.Matrix, o *spgemm.RunOptions) (*spgemm.Matrix, spgemm.Report, error) {
	return e.run(a, b, o)
}

func registerTestEngines() {
	testEngineOnce.Do(func() {
		spgemm.Register(funcEngine{name: "block", run: func(a, b *spgemm.Matrix, _ *spgemm.RunOptions) (*spgemm.Matrix, spgemm.Report, error) {
			<-blockGate.Load().(chan struct{})
			c, err := spgemm.MultiplyCPU(a, b, 1)
			return c, nil, err
		}})
		spgemm.Register(funcEngine{name: "boom", run: func(_, _ *spgemm.Matrix, _ *spgemm.RunOptions) (*spgemm.Matrix, spgemm.Report, error) {
			panic("chaos monkey")
		}})
	})
}

func openGate() chan struct{} {
	gate := make(chan struct{})
	blockGate.Store(gate)
	return gate
}

// --- helpers ----------------------------------------------------------

func testMatrix() *spgemm.Matrix { return spgemm.ER(40, 40, 0.1, 1) }

func waitInflight(t *testing.T, s *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if jobs, _ := s.Inflight(); jobs == want {
			return
		}
		if time.Now().After(deadline) {
			jobs, _ := s.Inflight()
			t.Fatalf("inflight jobs = %d, want %d", jobs, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func waitTrue(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// checkGoroutines asserts the goroutine count settles back to the
// baseline (the leak audit of the drain path).
func checkGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// hybridLossOpts reproduces the chaos suite's hybrid+loss scenario:
// the device dies mid-run, the CPU worker absorbs the chunks, the job
// completes with DevicesLost=1 in its recovery signal — a
// deterministic breaker trip source.
func hybridLossOpts(seed int64) *spgemm.RunOptions {
	cfg := spgemm.V100WithMemory(1 << 20)
	return &spgemm.RunOptions{
		Device: &cfg,
		Core:   spgemm.OutOfCoreOptions{RowPanels: 4, ColPanels: 2},
		Faults: spgemm.FaultConfig{Seed: seed, TransferRate: 0.02, LossAfterOps: 60},
	}
}

func healthyHybridOpts() *spgemm.RunOptions {
	cfg := spgemm.V100WithMemory(1 << 20)
	return &spgemm.RunOptions{
		Device: &cfg,
		Core:   spgemm.OutOfCoreOptions{RowPanels: 4, ColPanels: 2},
	}
}

// --- tests ------------------------------------------------------------

func TestSubmitRunsJob(t *testing.T) {
	s := New(Config{})
	defer s.Drain(0)
	a := testMatrix()
	res, err := s.Submit(Job{Engine: "cpu", A: a, B: a})
	if err != nil {
		t.Fatal(err)
	}
	want, err := spgemm.Multiply(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !spgemm.Equal(res.C, want, 1e-9) {
		t.Fatal("served product differs from direct multiply")
	}
	if res.Engine != "cpu" || res.Degraded {
		t.Fatalf("routing: engine %q degraded=%v, want cpu undegraded", res.Engine, res.Degraded)
	}
	if res.Cost.Flops != spgemm.Flops(a, a) {
		t.Fatalf("cost flops = %d, want %d", res.Cost.Flops, spgemm.Flops(a, a))
	}
	snap := s.Snapshot()
	if snap[metrics.CounterServeAccepted] != 1 || snap[metrics.CounterServeCompleted] != 1 {
		t.Fatalf("counters: %v", snap)
	}
}

func TestOverloadShedsTyped(t *testing.T) {
	registerTestEngines()
	gate := openGate()
	a := testMatrix()
	flops := spgemm.Flops(a, a)
	s := New(Config{
		MaxConcurrent:    1,
		QueueDepth:       8,
		MaxInflightFlops: flops + flops/2, // one job fits, two do not
		FlopsPerSec:      1000,
	})
	defer s.Drain(0)

	resCh := make(chan *Result, 1)
	go func() {
		res, _ := s.Submit(Job{Engine: "block", A: a, B: a})
		resCh <- res
	}()
	waitInflight(t, s, 1)

	_, err := s.Submit(Job{Engine: "block", A: a, B: a})
	if err == nil {
		t.Fatal("second job admitted past the flop budget")
	}
	if !errors.Is(err, spgemm.ErrOverloaded) || !faults.Shedding(err) {
		t.Fatalf("err = %v, want ErrOverloaded shedding", err)
	}
	// The typed error must survive further wrapping, and carry the hint.
	wrapped := fmt.Errorf("client retry layer: %w", fmt.Errorf("rpc: %w", err))
	if !errors.Is(wrapped, faults.ErrOverloaded) {
		t.Fatal("ErrOverloaded lost through double wrap")
	}
	var oe *OverloadError
	if !errors.As(wrapped, &oe) {
		t.Fatal("OverloadError not extractable from wrap chain")
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("retry-after hint %v, want > 0", oe.RetryAfter)
	}
	// inflight flops / FlopsPerSec: one blocked job's worth at 1k/s.
	if wantMin := time.Duration(float64(flops) / 1000 * float64(time.Second) / 2); oe.RetryAfter < wantMin {
		t.Fatalf("retry-after %v implausibly small (inflight %d flops at 1000/s)", oe.RetryAfter, flops)
	}
	if d, ok := RetryAfter(wrapped); !ok || d != oe.RetryAfter {
		t.Fatalf("RetryAfter helper = %v,%v", d, ok)
	}

	close(gate)
	if res := <-resCh; res == nil || res.Err != nil {
		t.Fatalf("blocked job failed: %+v", res)
	}
	snap := s.Snapshot()
	if snap[metrics.CounterServeRejectedOverload] != 1 || snap[metrics.CounterServeAccepted] != 1 {
		t.Fatalf("counters: %v", snap)
	}
}

func TestQueueFullSheds(t *testing.T) {
	registerTestEngines()
	gate := openGate()
	a := testMatrix()
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1})
	defer s.Drain(0)

	results := make(chan *Result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			res, _ := s.Submit(Job{Engine: "block", A: a, B: a})
			results <- res
		}()
	}
	// Job 1 occupies the worker, job 2 the single queue slot.
	waitInflight(t, s, 2)

	_, err := s.Submit(Job{Engine: "block", A: a, B: a})
	if !errors.Is(err, spgemm.ErrQueueFull) || !faults.Shedding(err) {
		t.Fatalf("err = %v, want ErrQueueFull shedding", err)
	}
	var qe *QueueFullError
	if !errors.As(fmt.Errorf("wrap: %w", err), &qe) || qe.Depth != 1 {
		t.Fatalf("QueueFullError not preserved: %v", err)
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if res := <-results; res == nil || res.Err != nil {
			t.Fatalf("admitted job failed: %+v", res)
		}
	}
	snap := s.Snapshot()
	if snap[metrics.CounterServeRejectedQueue] != 1 || snap[metrics.CounterServeAccepted] != 2 {
		t.Fatalf("counters: %v", snap)
	}
}

// TestBreakerLifecycle walks the full circuit: two device-loss jobs
// trip the hybrid breaker, the next two jobs degrade to the CPU
// engine, the cooldown expires and a healthy half-open probe closes
// the circuit again.
func TestBreakerLifecycle(t *testing.T) {
	a := spgemm.RMAT(7, 8, 0.57, 0.19, 0.19, 107)
	want, err := spgemm.Multiply(a, a)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		MaxConcurrent: 1,
		Breaker: BreakerConfig{
			TripFailures:    -1,
			TripRetries:     -1,
			TripDevicesLost: 2,
			CooldownJobs:    2,
		},
	})
	defer s.Drain(0)

	// Two jobs, one lost device each: cumulative 2 trips the breaker.
	for i := int64(1); i <= 2; i++ {
		res, err := s.Submit(Job{Engine: "hybrid", A: a, B: a, Opts: hybridLossOpts(i)})
		if err != nil {
			t.Fatalf("loss job %d: %v", i, err)
		}
		if res.Degraded || res.Engine != "hybrid" {
			t.Fatalf("loss job %d routed to %q degraded=%v before trip", i, res.Engine, res.Degraded)
		}
		if res.Snapshot["faults_injected_lost"] == 0 {
			t.Fatalf("loss job %d lost no device; scenario drifted: %v", i, res.Snapshot)
		}
	}
	if st := s.BreakerStates()["hybrid"]; st != "open" {
		t.Fatalf("breaker state %q after 2 lost devices, want open", st)
	}
	if trips := s.Snapshot()[metrics.CounterServeBreakerTrips]; trips != 1 {
		t.Fatalf("breaker trips = %d, want 1", trips)
	}

	// Cooldown: the next two hybrid jobs degrade to the CPU engine and
	// still produce the exact product.
	for i := 0; i < 2; i++ {
		res, err := s.Submit(Job{Engine: "hybrid", A: a, B: a, Opts: hybridLossOpts(9)})
		if err != nil {
			t.Fatalf("degraded job %d: %v", i, err)
		}
		if !res.Degraded || res.Engine != "cpu" || res.Requested != "hybrid" {
			t.Fatalf("degraded job %d: engine %q degraded=%v", i, res.Engine, res.Degraded)
		}
		if !spgemm.Equal(res.C, want, 1e-9) {
			t.Fatal("degraded product differs from reference")
		}
	}
	if n := s.Snapshot()[metrics.CounterServeDegraded]; n != 2 {
		t.Fatalf("degraded jobs = %d, want 2", n)
	}

	// Cooldown spent: the next job is the half-open probe. It runs
	// fault-free, so the circuit closes.
	res, err := s.Submit(Job{Engine: "hybrid", A: a, B: a, Opts: healthyHybridOpts()})
	if err != nil {
		t.Fatalf("probe job: %v", err)
	}
	if !res.Probe || res.Engine != "hybrid" || res.Degraded {
		t.Fatalf("probe job: engine %q probe=%v degraded=%v", res.Engine, res.Probe, res.Degraded)
	}
	if st := s.BreakerStates()["hybrid"]; st != "closed" {
		t.Fatalf("breaker state %q after healthy probe, want closed", st)
	}
	snap := s.Snapshot()
	if snap[metrics.CounterServeBreakerProbes] != 1 || snap[metrics.CounterServeBreakerCloses] != 1 {
		t.Fatalf("probe/close counters: %v", snap)
	}

	// Closed again: traffic flows to hybrid directly.
	res, err = s.Submit(Job{Engine: "hybrid", A: a, B: a, Opts: healthyHybridOpts()})
	if err != nil || res.Degraded || res.Probe || res.Engine != "hybrid" {
		t.Fatalf("post-close job: %+v err=%v", res, err)
	}
	// The server snapshot aggregated every job's recovery counters.
	if snap[metrics.CounterServeAccepted] != 5 {
		t.Fatalf("accepted = %d, want 5", snap[metrics.CounterServeAccepted])
	}
}

// TestBreakerReopensOnUnhealthyProbe: a probe that loses its device
// again sends the circuit straight back to open with a fresh cooldown.
func TestBreakerReopensOnUnhealthyProbe(t *testing.T) {
	a := spgemm.RMAT(7, 8, 0.57, 0.19, 0.19, 107)
	s := New(Config{
		MaxConcurrent: 1,
		Breaker: BreakerConfig{
			TripFailures:    -1,
			TripRetries:     -1,
			TripDevicesLost: 1,
			CooldownJobs:    1,
		},
	})
	defer s.Drain(0)

	if _, err := s.Submit(Job{Engine: "hybrid", A: a, B: a, Opts: hybridLossOpts(1)}); err != nil {
		t.Fatal(err)
	}
	if st := s.BreakerStates()["hybrid"]; st != "open" {
		t.Fatalf("state %q, want open", st)
	}
	if res, err := s.Submit(Job{Engine: "hybrid", A: a, B: a, Opts: hybridLossOpts(2)}); err != nil || !res.Degraded {
		t.Fatalf("cooldown job: %+v err=%v", res, err)
	}
	// Probe loses its device too: back to open, not closed.
	res, err := s.Submit(Job{Engine: "hybrid", A: a, B: a, Opts: hybridLossOpts(3)})
	if err != nil || !res.Probe {
		t.Fatalf("probe: %+v err=%v", res, err)
	}
	if st := s.BreakerStates()["hybrid"]; st != "open" {
		t.Fatalf("state %q after unhealthy probe, want open", st)
	}
	snap := s.Snapshot()
	if snap[metrics.CounterServeBreakerCloses] != 0 || snap[metrics.CounterServeBreakerProbes] != 1 {
		t.Fatalf("counters: %v", snap)
	}
}

func TestPanicIsolation(t *testing.T) {
	registerTestEngines()
	a := testMatrix()
	s := New(Config{MaxConcurrent: 1})
	defer s.Drain(0)

	res, err := s.Submit(Job{Engine: "boom", A: a, B: a})
	if !errors.Is(err, spgemm.ErrJobPanic) {
		t.Fatalf("err = %v, want ErrJobPanic", err)
	}
	var pe *PanicError
	if !errors.As(fmt.Errorf("wrap: %w", err), &pe) || pe.Engine != "boom" {
		t.Fatalf("PanicError not preserved: %v", err)
	}
	if res == nil || res.Err == nil {
		t.Fatal("panicked job must still deliver its Result")
	}
	// The server survives: the next job completes normally.
	if res, err := s.Submit(Job{Engine: "cpu", A: a, B: a}); err != nil || res.C == nil {
		t.Fatalf("server did not survive the panic: %v", err)
	}
	snap := s.Snapshot()
	if snap[metrics.CounterServePanicked] != 1 || snap[metrics.CounterServeCompleted] != 1 {
		t.Fatalf("counters: %v", snap)
	}
}

func TestDrainGraceful(t *testing.T) {
	registerTestEngines()
	baseline := runtime.NumGoroutine()
	gate := openGate()
	a := testMatrix()
	s := New(Config{MaxConcurrent: 2})

	results := make(chan *Result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			res, _ := s.Submit(Job{Engine: "block", A: a, B: a})
			results <- res
		}()
	}
	waitInflight(t, s, 2)
	close(gate)

	snap := s.Drain(5 * time.Second)
	if snap[metrics.CounterServeCompleted] != 2 {
		t.Fatalf("drain snapshot: %v", snap)
	}
	for i := 0; i < 2; i++ {
		if res := <-results; res == nil || res.Err != nil {
			t.Fatalf("inflight job did not finish during drain: %+v", res)
		}
	}

	// Admission is closed now.
	_, err := s.Submit(Job{Engine: "cpu", A: a, B: a})
	var de *DrainingError
	if !errors.As(err, &de) || !errors.Is(err, spgemm.ErrOverloaded) {
		t.Fatalf("post-drain submit err = %v, want DrainingError", err)
	}
	if s.Snapshot()[metrics.CounterServeRejectedDraining] != 1 {
		t.Fatalf("counters: %v", s.Snapshot())
	}
	// Drain is idempotent and the workers are gone.
	s.Drain(time.Second)
	checkGoroutines(t, baseline)
}

func TestDrainAbandonsQueued(t *testing.T) {
	registerTestEngines()
	gate := openGate()
	a := testMatrix()
	s := New(Config{MaxConcurrent: 1, QueueDepth: 4})

	running := make(chan *Result, 1)
	queued := make(chan *Result, 1)
	go func() {
		res, _ := s.Submit(Job{Engine: "block", A: a, B: a})
		running <- res
	}()
	waitInflight(t, s, 1)
	go func() {
		res, _ := s.Submit(Job{Engine: "block", A: a, B: a})
		queued <- res
	}()
	waitInflight(t, s, 2)

	snapCh := make(chan map[string]int64, 1)
	go func() { snapCh <- s.Drain(20 * time.Millisecond) }()
	// Wait for the drain deadline to pass before releasing the worker,
	// so the queued job is dequeued under abandonment.
	waitTrue(t, "drain deadline", s.Abandoning)
	close(gate)

	snap := <-snapCh
	if res := <-running; res == nil || res.Err != nil || res.Abandoned {
		t.Fatalf("inflight job: %+v", res)
	}
	res := <-queued
	if res == nil || !res.Abandoned || !errors.Is(res.Err, spgemm.ErrDeadline) {
		t.Fatalf("queued job not abandoned with ErrDeadline: %+v", res)
	}
	if snap[metrics.CounterServeAbandoned] != 1 || snap[metrics.CounterServeCompleted] != 1 {
		t.Fatalf("drain snapshot: %v", snap)
	}
}

// TestErrorTaxonomyWrapPoints is the satellite table test: every typed
// serving error must keep its errors.Is identity through the wrap
// layers a response crosses (engine → registry → server → client).
func TestErrorTaxonomyWrapPoints(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		sentinel error
		shedding bool
	}{
		{"overload", &OverloadError{RetryAfter: time.Second}, faults.ErrOverloaded, true},
		{"queue-full", &QueueFullError{Depth: 4}, faults.ErrQueueFull, true},
		{"draining", &DrainingError{}, faults.ErrOverloaded, true},
		{"panic", &PanicError{Engine: "gpu", Value: "boom"}, faults.ErrJobPanic, false},
	}
	wraps := []func(error) error{
		func(e error) error { return e },
		func(e error) error { return fmt.Errorf("server: %w", e) },
		func(e error) error { return fmt.Errorf("registry: %w", fmt.Errorf("engine: %w", e)) },
	}
	for _, tc := range cases {
		for i, wrap := range wraps {
			err := wrap(tc.err)
			if !errors.Is(err, tc.sentinel) {
				t.Errorf("%s (wrap %d): lost sentinel %v", tc.name, i, tc.sentinel)
			}
			if faults.Shedding(err) != tc.shedding {
				t.Errorf("%s (wrap %d): Shedding = %v, want %v", tc.name, i, faults.Shedding(err), tc.shedding)
			}
		}
	}
	// The spgemm re-exports are the same sentinels, not copies.
	if spgemm.ErrOverloaded != faults.ErrOverloaded ||
		spgemm.ErrQueueFull != faults.ErrQueueFull ||
		spgemm.ErrJobPanic != faults.ErrJobPanic {
		t.Fatal("spgemm re-exports differ from faults sentinels")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := New(Config{MaxConcurrent: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, map[string]any) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if code, body := get("/readyz"); code != http.StatusOK || body["draining"] != false {
		t.Fatalf("readyz = %d %v", code, body)
	}

	req := `{"engine":"cpu","a":{"kind":"er","rows":40,"cols":40,"density":0.1,"seed":1}}`
	resp, err := http.Post(ts.URL+"/v1/multiply", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	var mr MultiplyResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || mr.Engine != "cpu" || mr.NnzC == 0 {
		t.Fatalf("multiply = %d %+v", resp.StatusCode, mr)
	}

	// Unknown engine is a client error, not a crash.
	resp, err = http.Post(ts.URL+"/v1/multiply", "application/json",
		strings.NewReader(`{"engine":"warp-drive","a":{"kind":"er","rows":8,"cols":8}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown engine = %d, want 400", resp.StatusCode)
	}

	if code, body := get("/metricsz"); code != http.StatusOK || body[metrics.CounterServeAccepted] != float64(1) {
		t.Fatalf("metricsz = %d %v", code, body)
	}

	s.Drain(time.Second)
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", code)
	}
	resp, err = http.Post(ts.URL+"/v1/multiply", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("multiply while draining = %d, want 503", resp.StatusCode)
	}
}

func TestHTTPShedsWith429(t *testing.T) {
	registerTestEngines()
	gate := openGate()
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1})
	defer s.Drain(0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := `{"engine":"block","a":{"kind":"er","rows":40,"cols":40,"density":0.1,"seed":1}}`
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/multiply", "application/json", strings.NewReader(req))
			if err == nil {
				resp.Body.Close()
			}
			done <- struct{}{}
		}()
	}
	waitInflight(t, s, 2)

	resp, err := http.Post(ts.URL+"/v1/multiply", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	var body errorResponse
	_ = json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if body.Error == "" {
		t.Fatal("429 without error body")
	}

	close(gate)
	<-done
	<-done
}
