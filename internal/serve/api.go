package serve

import (
	"fmt"

	"repro/spgemm"
	apiv1 "repro/spgemm/api/v1"
)

// Request-level API: the operations of the HTTP surface as typed Go
// calls speaking the apiv1 wire types. The HTTP handlers are thin
// wrappers over these, and the cluster coordinator's in-process
// replica backend calls them directly — so a replica behind the
// coordinator behaves exactly like a standalone server, including its
// typed error taxonomy (ErrorCode / WriteError map it to the wire).

// Multiply resolves one MultiplyRequest into a Job, submits it, and
// shapes the result. Errors are the scheduler's typed taxonomy
// (OverloadError, QueueFullError, DrainingError, UnknownHandleError,
// ...) plus plain errors for malformed specs.
func (s *Server) Multiply(req apiv1.MultiplyRequest) (*apiv1.MultiplyResponse, error) {
	var a, b *spgemm.Matrix
	var err error
	if req.AHandle == "" {
		if a, err = req.A.Build(); err != nil {
			return nil, err
		}
	}
	bHandle := req.BHandle
	switch {
	case req.B != nil:
		if b, err = req.B.Build(); err != nil {
			return nil, err
		}
	case bHandle == "":
		// B defaults to A, in whichever form A came.
		b, bHandle = a, req.AHandle
	}
	opts := &spgemm.RunOptions{
		DeadlineSec: req.DeadlineSec,
		Threads:     req.Threads,
		NumGPUs:     req.NumGPUs,
	}
	res, err := s.Submit(Job{
		Engine: req.Engine, A: a, B: b,
		AHandle: req.AHandle, BHandle: bHandle,
		Opts: opts,
	})
	if err != nil {
		return nil, err
	}
	resp := &apiv1.MultiplyResponse{
		Requested: res.Requested, Engine: res.Engine, Degraded: res.Degraded,
		Rows: res.C.Rows, Cols: res.C.Cols, NnzC: res.C.Nnz(),
		Flops: res.Cost.Flops,
	}
	if res.Report != nil {
		resp.Seconds = res.Report.Seconds()
		resp.GFLOPS = res.Report.Throughput()
	}
	if req.StoreC {
		if resp.CHandle, err = s.StoreMatrix(res.C); err != nil {
			return nil, err
		}
	}
	return resp, nil
}

// StoreFromRequest serves one MatrixRequest: store a raw CSR payload,
// re-value a stored handle, or build-and-store a spec (in that
// precedence order). The response describes the stored matrix; a
// missing revalue handle returns *UnknownHandleError.
func (s *Server) StoreFromRequest(req apiv1.MatrixRequest) (*apiv1.MatrixResponse, error) {
	var handle string
	var err error
	switch {
	case req.Data != nil:
		// Raw upload: the cluster's spill re-homing path. Validated
		// before storing; the handle is content-addressed, so an upload
		// of bytes the server already holds is a no-op dedup.
		var m *spgemm.Matrix
		if m, err = req.Data.Matrix(); err == nil {
			handle, err = s.StoreMatrix(m)
		}
		if err != nil {
			return nil, err
		}
	case req.Handle != "":
		if handle, err = s.RevalueMatrix(req.Handle, req.ValuesSeed); err != nil {
			return nil, err
		}
	case req.Spec != nil:
		var m *spgemm.Matrix
		if m, err = req.Spec.Build(); err == nil {
			handle, err = s.StoreMatrix(m)
		}
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("serve: matrix request needs data, spec or handle")
	}
	m, _ := s.Matrix(handle)
	return &apiv1.MatrixResponse{
		Handle: handle, Rows: m.Rows, Cols: m.Cols, Nnz: m.Nnz(), Bytes: m.Bytes(),
		StructureFP: fmt.Sprintf("%016x", spgemm.Fingerprint(m)),
	}, nil
}

// StoreBulk serves one MatrixBatchRequest: every matrix stored in
// order, all-or-nothing validated (the first bad entry fails the whole
// batch before anything else is inspected — stores already made stick,
// which is safe because handles are content-addressed). This is the
// pipelined transfer behind a cluster failover re-upload: one round
// trip instead of N.
func (s *Server) StoreBulk(req apiv1.MatrixBatchRequest) (*apiv1.MatrixBatchResponse, error) {
	if len(req.Matrices) == 0 {
		return nil, fmt.Errorf("serve: bulk store needs at least one matrix")
	}
	out := &apiv1.MatrixBatchResponse{Matrices: make([]apiv1.MatrixResponse, 0, len(req.Matrices))}
	for i := range req.Matrices {
		resp, err := s.StoreFromRequest(req.Matrices[i])
		if err != nil {
			return nil, fmt.Errorf("serve: bulk store entry %d: %w", i, err)
		}
		out.Matrices = append(out.Matrices, *resp)
	}
	return out, nil
}

// Ready reports the server's readiness: "draining" once Drain began,
// "degraded" while any engine breaker is open or probing (device
// traffic is being rerouted through the CPU fallback path), "ready"
// otherwise. The strings are wire contract (apiv1.ReadyStatus*).
func (s *Server) Ready() apiv1.ReadyResponse {
	jobs, flops := s.Inflight()
	breakers := s.BreakerStates()
	status := apiv1.ReadyStatusReady
	for _, st := range breakers {
		if st != "closed" {
			status = apiv1.ReadyStatusDegraded
			break
		}
	}
	draining := s.Draining()
	if draining {
		status = apiv1.ReadyStatusDraining
	}
	return apiv1.ReadyResponse{
		Status:        status,
		Draining:      draining,
		InflightJobs:  jobs,
		InflightFlops: flops,
		Breakers:      breakers,
	}
}
