package serve

import "repro/internal/faults"

// BreakerConfig tunes the per-engine circuit breakers. Cooldown is
// measured in jobs rather than wall time so breaker behaviour is
// deterministic under test: the same job sequence always produces the
// same state transitions.
type BreakerConfig struct {
	// TripFailures trips the breaker after that many consecutive
	// failed runs (0 means 3, negative disables the criterion).
	TripFailures int
	// TripDevicesLost trips on that many cumulative lost devices since
	// the circuit last closed (0 means 2, negative disables).
	TripDevicesLost int64
	// TripRetries trips on that many cumulative transient-fault
	// retries since the circuit last closed (0 means 64, negative
	// disables).
	TripRetries int64
	// CooldownJobs is how many jobs are degraded to the fallback
	// engine before an open breaker lets one half-open probe through
	// (0 means 4).
	CooldownJobs int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.TripFailures == 0 {
		c.TripFailures = 3
	}
	if c.TripDevicesLost == 0 {
		c.TripDevicesLost = 2
	}
	if c.TripRetries == 0 {
		c.TripRetries = 64
	}
	if c.CooldownJobs <= 0 {
		c.CooldownJobs = 4
	}
	return c
}

// breaker is one engine's circuit: closed (jobs run on the engine),
// open (jobs degrade to the fallback engine), half-open (one probe job
// runs on the engine once the cooldown is spent). All methods are
// called under the server mutex.
type breaker struct {
	cfg  BreakerConfig
	open bool
	// consecFails, devicesLost and retries accumulate while closed and
	// reset when the circuit closes again.
	consecFails int
	devicesLost int64
	retries     int64
	// cooldown counts degraded jobs remaining before a probe; probing
	// marks a half-open probe in flight (at most one at a time).
	cooldown int
	probing  bool
}

func newBreaker(cfg BreakerConfig) *breaker { return &breaker{cfg: cfg} }

// route decides where the next job for this engine goes: the fallback
// engine (fallback), or the engine itself — either normally or as the
// half-open probe (probe).
func (b *breaker) route() (fallback, probe bool) {
	if !b.open {
		return false, false
	}
	if !b.probing && b.cooldown <= 0 {
		return false, true
	}
	return true, false
}

// committed applies the state changes of an accepted admission (route
// decisions must not mutate state: the admission can still be rejected
// by the flop budget or the bounded queue).
func (b *breaker) committed(degraded, probe bool) {
	if probe {
		b.probing = true
	}
	if degraded && b.cooldown > 0 {
		b.cooldown--
	}
}

// record consumes one finished run's recovery signal and reports the
// resulting transition, if any. Probe outcomes close or re-open the
// circuit; closed-circuit outcomes accumulate toward a trip.
func (b *breaker) record(sig faults.RecoverySignal, probe bool) (tripped, closed bool) {
	if probe {
		b.probing = false
		if sig.Healthy() {
			*b = breaker{cfg: b.cfg}
			return false, true
		}
		b.cooldown = b.cfg.CooldownJobs
		return false, false
	}
	if b.open {
		return false, false
	}
	b.devicesLost += sig.DevicesLost
	b.retries += sig.Retries
	if sig.Failed() {
		b.consecFails++
	} else if sig.Err == nil {
		b.consecFails = 0
	}
	if b.shouldTrip() {
		b.open = true
		b.cooldown = b.cfg.CooldownJobs
		return true, false
	}
	return false, false
}

func (b *breaker) shouldTrip() bool {
	if b.cfg.TripFailures > 0 && b.consecFails >= b.cfg.TripFailures {
		return true
	}
	if b.cfg.TripDevicesLost > 0 && b.devicesLost >= b.cfg.TripDevicesLost {
		return true
	}
	if b.cfg.TripRetries > 0 && b.retries >= b.cfg.TripRetries {
		return true
	}
	return false
}

// state renders the circuit for /readyz and BreakerStates.
func (b *breaker) state() string {
	switch {
	case !b.open:
		return "closed"
	case b.probing:
		return "half-open"
	default:
		return "open"
	}
}
