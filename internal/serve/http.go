package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/spgemm"
)

// MatrixSpec describes a generated operand for the HTTP API, so
// clients submit matrix *recipes* instead of shipping coordinate data.
// Kind selects the generator: "rmat" (Scale, EdgeFactor), "er" (Rows,
// Cols, Density), "band" (N, Half). Seed feeds all of them.
type MatrixSpec struct {
	Kind       string  `json:"kind"`
	Scale      uint    `json:"scale,omitempty"`
	EdgeFactor int     `json:"edge_factor,omitempty"`
	Rows       int     `json:"rows,omitempty"`
	Cols       int     `json:"cols,omitempty"`
	Density    float64 `json:"density,omitempty"`
	N          int     `json:"n,omitempty"`
	Half       int     `json:"half,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
}

// maxGenDim caps generated matrix dimensions so a single request
// cannot ask the server to materialize an absurd operand: generation
// happens before admission control can weigh the job.
const maxGenDim = 1 << 22

// Build materializes the spec.
func (m MatrixSpec) Build() (*spgemm.Matrix, error) {
	switch m.Kind {
	case "rmat":
		scale := m.Scale
		if scale == 0 {
			scale = 10
		}
		if scale > 22 {
			return nil, fmt.Errorf("serve: rmat scale %d too large (max 22)", scale)
		}
		ef := m.EdgeFactor
		if ef <= 0 {
			ef = 8
		}
		return spgemm.RMAT(scale, ef, 0.57, 0.19, 0.19, m.Seed), nil
	case "er":
		rows, cols := m.Rows, m.Cols
		if rows <= 0 {
			rows = 1024
		}
		if cols <= 0 {
			cols = rows
		}
		if rows > maxGenDim || cols > maxGenDim {
			return nil, fmt.Errorf("serve: er dimensions %dx%d too large (max %d)", rows, cols, maxGenDim)
		}
		p := m.Density
		if p <= 0 {
			p = 0.01
		}
		return spgemm.ER(rows, cols, p, m.Seed), nil
	case "band":
		n, half := m.N, m.Half
		if n <= 0 {
			n = 1024
		}
		if n > maxGenDim {
			return nil, fmt.Errorf("serve: band n %d too large (max %d)", n, maxGenDim)
		}
		if half <= 0 {
			half = 8
		}
		return spgemm.Band(n, half, m.Seed), nil
	default:
		return nil, fmt.Errorf("serve: unknown matrix kind %q (want rmat, er or band)", m.Kind)
	}
}

// MultiplyRequest is the POST /v1/multiply body. Operands come either
// as specs or as handles into the matrix store (a handle wins over
// its spec); B defaults to the same matrix as A (the common A·A graph
// workload).
type MultiplyRequest struct {
	Engine      string      `json:"engine"`
	A           MatrixSpec  `json:"a"`
	B           *MatrixSpec `json:"b,omitempty"`
	AHandle     string      `json:"a_handle,omitempty"`
	BHandle     string      `json:"b_handle,omitempty"`
	DeadlineSec float64     `json:"deadline_sec,omitempty"`
	Threads     int         `json:"threads,omitempty"`
	NumGPUs     int         `json:"num_gpus,omitempty"`
}

// MatrixRequest is the POST /v1/matrices body: either a spec to build
// and store, or a stored handle plus a values seed to re-value (same
// pattern, fresh deterministic values — the iterative-workload upload
// that keeps cached plans warm).
type MatrixRequest struct {
	Spec       *MatrixSpec `json:"spec,omitempty"`
	Handle     string      `json:"handle,omitempty"`
	ValuesSeed int64       `json:"values_seed,omitempty"`
}

// MatrixResponse describes a stored matrix. StructureFP is the
// sparsity-pattern fingerprint: two handles sharing it share cached
// plans.
type MatrixResponse struct {
	Handle      string `json:"handle"`
	Rows        int    `json:"rows"`
	Cols        int    `json:"cols"`
	Nnz         int64  `json:"nnz"`
	Bytes       int64  `json:"bytes"`
	StructureFP string `json:"structure_fingerprint"`
}

// MultiplyResponse reports a completed job.
type MultiplyResponse struct {
	Requested string  `json:"requested"`
	Engine    string  `json:"engine"`
	Degraded  bool    `json:"degraded"`
	Rows      int     `json:"rows"`
	Cols      int     `json:"cols"`
	NnzC      int64   `json:"nnz_c"`
	Flops     int64   `json:"flops"`
	Seconds   float64 `json:"seconds"`
	GFLOPS    float64 `json:"gflops"`
}

type errorResponse struct {
	Error         string  `json:"error"`
	RetryAfterSec float64 `json:"retry_after_sec,omitempty"`
}

// Handler returns the server's HTTP surface:
//
//	GET    /healthz              — liveness (200 while the process serves)
//	GET    /readyz               — readiness (503 once draining) + breaker states
//	GET    /metricsz             — the flat metrics snapshot + cache hit rates as JSON
//	POST   /v1/multiply          — submit a job (429 + Retry-After when shed)
//	POST   /v1/matrices          — store a matrix (spec) or re-value a handle
//	DELETE /v1/matrices/{handle} — drop a stored matrix (and orphaned plans)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metricsz", s.handleMetricsz)
	mux.HandleFunc("/v1/multiply", s.handleMultiply)
	mux.HandleFunc("/v1/matrices", s.handleMatrices)
	mux.HandleFunc("/v1/matrices/", s.handleMatrixByHandle)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	jobs, flops := s.Inflight()
	body := map[string]any{
		"draining":       s.Draining(),
		"inflight_jobs":  jobs,
		"inflight_flops": flops,
		"breakers":       s.BreakerStates(),
	}
	status := http.StatusOK
	if s.Draining() {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	snap := s.Snapshot()
	body := make(map[string]any, len(snap)+2)
	for k, v := range snap {
		body[k] = v
	}
	// Derived hit rates (0..1): counters alone force every dashboard to
	// re-derive them, so the endpoint publishes the ratio too.
	rate := func(hits, misses int64) float64 {
		if hits+misses == 0 {
			return 0
		}
		return float64(hits) / float64(hits+misses)
	}
	body["plan_cache_hit_rate"] = rate(snap[metrics.CounterPlanCacheHits], snap[metrics.CounterPlanCacheMisses])
	body["matrix_store_hit_rate"] = rate(snap[metrics.CounterMatrixStoreHits], snap[metrics.CounterMatrixStoreMisses])
	// Estimation hit rate: the share of non-empty output rows sized by
	// the sampled estimator rather than the exact-symbolic fallback.
	body["symbolic_estimation_hit_rate"] = rate(snap[metrics.CounterSymbolicEstimatedRows], snap[metrics.CounterSymbolicFallbackRows])
	writeJSON(w, http.StatusOK, body)
}

// handleMatrices stores a matrix from a spec, or re-values a stored
// handle when the body names one.
func (s *Server) handleMatrices(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req MatrixRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	var handle string
	var err error
	switch {
	case req.Handle != "":
		handle, err = s.RevalueMatrix(req.Handle, req.ValuesSeed)
		if err != nil {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
			return
		}
	case req.Spec != nil:
		var m *spgemm.Matrix
		if m, err = req.Spec.Build(); err == nil {
			handle, err = s.StoreMatrix(m)
		}
		if err != nil {
			s.writeError(w, err)
			return
		}
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "need spec or handle"})
		return
	}
	m, _ := s.Matrix(handle)
	writeJSON(w, http.StatusOK, MatrixResponse{
		Handle: handle, Rows: m.Rows, Cols: m.Cols, Nnz: m.Nnz(), Bytes: m.Bytes(),
		StructureFP: fmt.Sprintf("%016x", spgemm.Fingerprint(m)),
	})
}

// handleMatrixByHandle serves DELETE /v1/matrices/{handle}.
func (s *Server) handleMatrixByHandle(w http.ResponseWriter, r *http.Request) {
	handle := strings.TrimPrefix(r.URL.Path, "/v1/matrices/")
	if r.Method != http.MethodDelete {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "DELETE only"})
		return
	}
	if !s.DeleteMatrix(handle) {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: (&UnknownHandleError{Handle: handle}).Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": handle})
}

func (s *Server) handleMultiply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req MultiplyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	var a, b *spgemm.Matrix
	var err error
	if req.AHandle == "" {
		if a, err = req.A.Build(); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
	}
	bHandle := req.BHandle
	switch {
	case req.B != nil:
		if b, err = req.B.Build(); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
	case bHandle == "":
		// B defaults to A, in whichever form A came.
		b, bHandle = a, req.AHandle
	}
	opts := &spgemm.RunOptions{
		DeadlineSec: req.DeadlineSec,
		Threads:     req.Threads,
		NumGPUs:     req.NumGPUs,
	}
	res, err := s.Submit(Job{
		Engine: req.Engine, A: a, B: b,
		AHandle: req.AHandle, BHandle: bHandle,
		Opts: opts,
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := MultiplyResponse{
		Requested: res.Requested, Engine: res.Engine, Degraded: res.Degraded,
		Rows: res.C.Rows, Cols: res.C.Cols, NnzC: res.C.Nnz(),
		Flops: res.Cost.Flops,
	}
	if res.Report != nil {
		resp.Seconds = res.Report.Seconds()
		resp.GFLOPS = res.Report.Throughput()
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeError maps the serving error taxonomy onto HTTP statuses:
// shedding is 429/503 with a Retry-After hint, a panic is a 500 for
// that job only, a deadline is 504, an up-front OOM rejection is 413.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	resp := errorResponse{Error: err.Error()}
	var status int
	var de *DrainingError
	var uh *UnknownHandleError
	switch {
	case errors.As(err, &uh):
		status = http.StatusNotFound
	case errors.As(err, &de):
		status = http.StatusServiceUnavailable
	case faults.Shedding(err):
		status = http.StatusTooManyRequests
		retry := time.Second
		if d, ok := RetryAfter(err); ok {
			retry = d
		}
		resp.RetryAfterSec = retry.Seconds()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int64(math.Ceil(retry.Seconds()))))
	case errors.Is(err, faults.ErrJobPanic):
		status = http.StatusInternalServerError
	case errors.Is(err, faults.ErrDeadline):
		status = http.StatusGatewayTimeout
	case errors.Is(err, faults.ErrOOM):
		status = http.StatusRequestEntityTooLarge
	default:
		status = http.StatusBadRequest
	}
	writeJSON(w, status, resp)
}
