package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	apiv1 "repro/spgemm/api/v1"
)

// The wire types moved to the public versioned package
// repro/spgemm/api/v1 (shared by the server, the drive harnesses and
// the thin client). The aliases keep the old internal names working.
type (
	// MatrixSpec aliases apiv1.MatrixSpec.
	MatrixSpec = apiv1.MatrixSpec
	// MultiplyRequest aliases apiv1.MultiplyRequest.
	MultiplyRequest = apiv1.MultiplyRequest
	// MatrixRequest aliases apiv1.MatrixRequest.
	MatrixRequest = apiv1.MatrixRequest
	// MatrixResponse aliases apiv1.MatrixResponse.
	MatrixResponse = apiv1.MatrixResponse
	// MultiplyResponse aliases apiv1.MultiplyResponse.
	MultiplyResponse = apiv1.MultiplyResponse

	errorResponse = apiv1.ErrorResponse
)

// Handler returns the server's HTTP surface:
//
//	GET    /healthz              — liveness (200 while the process serves)
//	GET    /readyz               — readiness (503 once draining) + breaker states
//	GET    /metricsz             — the flat metrics snapshot + cache hit rates as JSON
//	POST   /v1/multiply          — submit a job (429 + Retry-After when shed)
//	POST   /v1/batch             — submit a DAG of multiplies (per-node statuses)
//	POST   /v1/matrices          — store a matrix (data, spec, or re-value a handle)
//	POST   /v1/matrices/bulk     — store several matrices in one round trip
//	GET    /v1/matrices/{handle} — fetch a stored matrix's raw CSR payload
//	DELETE /v1/matrices/{handle} — drop a stored matrix (and orphaned plans)
//	POST   /v1/admin/drain       — drain gracefully, answer the final counters
//
// Every route answers a wrong method with 405, an Allow header and the
// shared error envelope; every error path emits the envelope with a
// machine-readable code from the apiv1 taxonomy.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", guarded(http.MethodGet, s.handleHealthz))
	mux.HandleFunc("/readyz", guarded(http.MethodGet, s.handleReadyz))
	mux.HandleFunc("/metricsz", guarded(http.MethodGet, s.handleMetricsz))
	mux.HandleFunc("/v1/multiply", guarded(http.MethodPost, s.handleMultiply))
	mux.HandleFunc("/v1/batch", guarded(http.MethodPost, s.handleBatch))
	mux.HandleFunc("/v1/matrices", guarded(http.MethodPost, s.handleMatrices))
	mux.HandleFunc("/v1/matrices/bulk", guarded(http.MethodPost, s.handleMatricesBulk))
	mux.HandleFunc("/v1/matrices/", guardedMethods(map[string]http.HandlerFunc{
		http.MethodGet:    s.handleMatrixGet,
		http.MethodDelete: s.handleMatrixDelete,
	}))
	mux.HandleFunc("/v1/admin/drain", guarded(http.MethodPost, s.handleAdminDrain))
	return mux
}

// guarded enforces one allowed method per route: anything else is 405
// with the Allow header and the shared envelope.
func guarded(method string, h http.HandlerFunc) http.HandlerFunc {
	return guardedMethods(map[string]http.HandlerFunc{method: h})
}

// guardedMethods dispatches on the request method across the allowed
// set; anything else is 405 with a deterministic (sorted) Allow header
// and the shared envelope.
func guardedMethods(handlers map[string]http.HandlerFunc) http.HandlerFunc {
	allowed := make([]string, 0, len(handlers))
	for m := range handlers {
		allowed = append(allowed, m)
	}
	sort.Strings(allowed)
	allow := strings.Join(allowed, ", ")
	return func(w http.ResponseWriter, r *http.Request) {
		h, ok := handlers[r.Method]
		if !ok {
			w.Header().Set("Allow", allow)
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{
				Code:  apiv1.CodeMethodNotAllowed,
				Error: fmt.Sprintf("method %s not allowed (use %s)", r.Method, allow),
			})
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeBadRequest emits the envelope for a client-side request error.
func writeBadRequest(w http.ResponseWriter, msg string) {
	writeJSON(w, http.StatusBadRequest, errorResponse{Code: apiv1.CodeBadRequest, Error: msg})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz serves the readiness body. The Status string is the
// wire contract load balancers and the cluster coordinator dispatch
// on: "ready" and "degraded" answer 200 (the server still serves, a
// degraded one through its fallback paths), "draining" answers 503.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	body := s.Ready()
	status := http.StatusOK
	if body.Status == apiv1.ReadyStatusDraining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	snap := s.Snapshot()
	body := make(map[string]any, len(snap)+2)
	for k, v := range snap {
		body[k] = v
	}
	// Derived hit rates (0..1): counters alone force every dashboard to
	// re-derive them, so the endpoint publishes the ratio too.
	rate := func(hits, misses int64) float64 {
		if hits+misses == 0 {
			return 0
		}
		return float64(hits) / float64(hits+misses)
	}
	body["plan_cache_hit_rate"] = rate(snap[metrics.CounterPlanCacheHits], snap[metrics.CounterPlanCacheMisses])
	body["matrix_store_hit_rate"] = rate(snap[metrics.CounterMatrixStoreHits], snap[metrics.CounterMatrixStoreMisses])
	// Estimation hit rate: the share of non-empty output rows sized by
	// the sampled estimator rather than the exact-symbolic fallback.
	body["symbolic_estimation_hit_rate"] = rate(snap[metrics.CounterSymbolicEstimatedRows], snap[metrics.CounterSymbolicFallbackRows])
	writeJSON(w, http.StatusOK, body)
}

// handleMatrices stores a matrix from a spec, or re-values a stored
// handle when the body names one.
func (s *Server) handleMatrices(w http.ResponseWriter, r *http.Request) {
	var req MatrixRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeBadRequest(w, "bad request body: "+err.Error())
		return
	}
	resp, err := s.StoreFromRequest(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMatricesBulk serves POST /v1/matrices/bulk: several stores in
// one round trip (the cluster failover re-upload path).
func (s *Server) handleMatricesBulk(w http.ResponseWriter, r *http.Request) {
	var req apiv1.MatrixBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeBadRequest(w, "bad request body: "+err.Error())
		return
	}
	resp, err := s.StoreBulk(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMatrixGet serves GET /v1/matrices/{handle}: the stored CSR
// payload, raw, so a peer can re-home the matrix byte-identically.
func (s *Server) handleMatrixGet(w http.ResponseWriter, r *http.Request) {
	handle := strings.TrimPrefix(r.URL.Path, "/v1/matrices/")
	m, ok := s.Matrix(handle)
	if !ok {
		s.writeError(w, &UnknownHandleError{Handle: handle})
		return
	}
	writeJSON(w, http.StatusOK, apiv1.MatrixDataFrom(m))
}

// handleMatrixDelete serves DELETE /v1/matrices/{handle}.
func (s *Server) handleMatrixDelete(w http.ResponseWriter, r *http.Request) {
	handle := strings.TrimPrefix(r.URL.Path, "/v1/matrices/")
	if !s.DeleteMatrix(handle) {
		s.writeError(w, &UnknownHandleError{Handle: handle})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": handle})
}

// handleAdminDrain serves POST /v1/admin/drain: stop admitting, wait
// for in-flight work up to the requested timeout, answer the final
// counter snapshot. The call is idempotent — draining an already
// draining server just waits again and re-reads the counters.
func (s *Server) handleAdminDrain(w http.ResponseWriter, r *http.Request) {
	var req apiv1.DrainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeBadRequest(w, "bad request body: "+err.Error())
		return
	}
	timeout := 30 * time.Second
	if req.TimeoutSec > 0 {
		timeout = time.Duration(req.TimeoutSec * float64(time.Second))
	}
	writeJSON(w, http.StatusOK, apiv1.DrainResponse{Counters: s.Drain(timeout)})
}

func (s *Server) handleMultiply(w http.ResponseWriter, r *http.Request) {
	var req MultiplyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeBadRequest(w, "bad request body: "+err.Error())
		return
	}
	resp, err := s.Multiply(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBatch serves POST /v1/batch: one DAG of multiplies, admitted
// as a unit, with per-node statuses in the response.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req apiv1.BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeBadRequest(w, "bad request body: "+err.Error())
		return
	}
	resp, err := s.SubmitBatch(&req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeError keeps the handler call sites short.
func (s *Server) writeError(w http.ResponseWriter, err error) { WriteError(w, err) }

// WriteError maps the serving error taxonomy onto HTTP statuses and
// envelope codes: shedding is 429 with a Retry-After hint (header and
// body), a panic is a 500 for that job only, a deadline is 504, an
// up-front OOM rejection is 413, an unresolvable handle 404, a
// rejected batch DAG 400, an unreachable cluster 503 with Retry-After.
// It is shared by the server's handlers and the cluster coordinator's
// HTTP surface, so both speak the identical wire taxonomy.
func WriteError(w http.ResponseWriter, err error) {
	code := ErrorCode(err)
	resp := errorResponse{Code: code, Error: err.Error()}
	var status int
	switch code {
	case apiv1.CodeUnknownHandle:
		status = http.StatusNotFound
	case apiv1.CodeDraining:
		status = http.StatusServiceUnavailable
	case apiv1.CodeReplicaDown:
		// No replica could take the request; it never ran anywhere.
		// Retryable like a shed, but 503: capacity is gone, not busy.
		status = http.StatusServiceUnavailable
		retry := time.Second
		if d, ok := RetryAfter(err); ok {
			retry = d
		}
		resp.RetryAfterSec = retry.Seconds()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int64(math.Ceil(retry.Seconds()))))
	case apiv1.CodeOverloaded, apiv1.CodeQueueFull:
		status = http.StatusTooManyRequests
		retry := time.Second
		if d, ok := RetryAfter(err); ok {
			retry = d
		}
		resp.RetryAfterSec = retry.Seconds()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int64(math.Ceil(retry.Seconds()))))
	case apiv1.CodeJobPanic, apiv1.CodeDeviceLost:
		status = http.StatusInternalServerError
	case apiv1.CodeDeadline:
		status = http.StatusGatewayTimeout
	case apiv1.CodeOOM:
		status = http.StatusRequestEntityTooLarge
	default:
		status = http.StatusBadRequest
	}
	writeJSON(w, status, resp)
}

// ErrorCode maps a serving error onto the machine-readable envelope
// code of the apiv1 taxonomy. Unknown errors are client errors
// (CodeBadRequest): the scheduler rejects them before running anything.
func ErrorCode(err error) string {
	var be *BatchError
	var uh *UnknownHandleError
	var de *DrainingError
	var oe *OverloadError
	var qe *QueueFullError
	switch {
	case errors.As(err, &be):
		return be.Code
	case errors.As(err, &uh):
		return apiv1.CodeUnknownHandle
	case errors.As(err, &de):
		// Before the Shedding check: DrainingError wraps ErrOverloaded.
		return apiv1.CodeDraining
	case errors.Is(err, faults.ErrReplicaDown):
		return apiv1.CodeReplicaDown
	case errors.As(err, &oe):
		return apiv1.CodeOverloaded
	case errors.As(err, &qe):
		return apiv1.CodeQueueFull
	case errors.Is(err, faults.ErrJobPanic):
		return apiv1.CodeJobPanic
	case errors.Is(err, faults.ErrDeadline):
		return apiv1.CodeDeadline
	case errors.Is(err, faults.ErrOOM):
		return apiv1.CodeOOM
	case errors.Is(err, faults.ErrDeviceLost):
		return apiv1.CodeDeviceLost
	default:
		return apiv1.CodeBadRequest
	}
}
