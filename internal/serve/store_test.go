package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/metrics"
	"repro/spgemm"
)

// TestMatrixStoreContentAddressing: identical uploads are idempotent,
// a values-only change yields a new handle with the same structural
// fingerprint, a different pattern changes the fingerprint.
func TestMatrixStoreContentAddressing(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	defer s.Drain(0)
	a := spgemm.ER(60, 60, 0.05, 7)
	h1, err := s.StoreMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := s.StoreMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("re-upload of identical content changed the handle: %s vs %s", h1, h2)
	}
	entries, _, _, _, _ := s.store.stats()
	if entries != 1 {
		t.Fatalf("store holds %d entries after idempotent upload, want 1", entries)
	}
	h3, err := s.RevalueMatrix(h1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("re-valued matrix kept the old handle")
	}
	m1, _ := s.Matrix(h1)
	m3, ok := s.Matrix(h3)
	if !ok {
		t.Fatal("re-valued handle not resolvable")
	}
	if spgemm.Fingerprint(m1) != spgemm.Fingerprint(m3) {
		t.Fatal("values-only change altered the structural fingerprint")
	}
	if spgemm.FingerprintValues(m1) == spgemm.FingerprintValues(m3) {
		t.Fatal("re-valued matrix carries identical values")
	}
	if _, ok := s.Matrix("m-nope"); ok {
		t.Fatal("unknown handle resolved")
	}
}

// TestServeHandleRepeatsHitPlanCache is the acceptance scenario:
// repeated handle-based multiplies on one pattern hit the plan cache,
// a values-only change (re-value) invalidates nothing and stays warm,
// and deleting a pattern invalidates exactly its entries.
func TestServeHandleRepeatsHitPlanCache(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	defer s.Drain(0)
	a := spgemm.ER(80, 80, 0.05, 8)
	b := spgemm.ER(80, 80, 0.05, 9)
	ha, err := s.StoreMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := s.StoreMatrix(b)
	if err != nil {
		t.Fatal(err)
	}

	// Three repeats on pattern a: 1 miss + 2 hits.
	var first, repeat *Result
	for i := 0; i < 3; i++ {
		res, err := s.Submit(Job{Engine: "cpu", AHandle: ha, BHandle: ha})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res
		} else {
			repeat = res
		}
	}
	hits, misses, _ := s.PlanCache().Counters()
	if misses != 1 || hits != 2 {
		t.Fatalf("after 3 repeats: hits=%d misses=%d, want 2/1", hits, misses)
	}
	if !spgemm.Equal(first.C, repeat.C, 0) {
		t.Fatal("warm repeat product differs from the first run")
	}

	// One job on pattern b: its own miss.
	if _, err := s.Submit(Job{Engine: "cpu", AHandle: hb, BHandle: hb}); err != nil {
		t.Fatal(err)
	}

	// Values-only change: re-value pattern a, multiply by the new
	// handle — still warm, nothing invalidated.
	ha2, err := s.RevalueMatrix(ha, 123)
	if err != nil {
		t.Fatal(err)
	}
	lenBefore := s.PlanCache().Len()
	if _, err := s.Submit(Job{Engine: "cpu", AHandle: ha2, BHandle: ha2}); err != nil {
		t.Fatal(err)
	}
	hits2, misses2, _ := s.PlanCache().Counters()
	if misses2 != 2 || hits2 != 3 {
		t.Fatalf("after values-only change: hits=%d misses=%d, want 3/2", hits2, misses2)
	}
	if s.PlanCache().Len() != lenBefore {
		t.Fatalf("values-only change changed cached entries %d -> %d", lenBefore, s.PlanCache().Len())
	}

	// Pattern change: delete both of pattern a's handles. The second
	// delete retires the pattern and must invalidate exactly its
	// entries — pattern b stays warm.
	if !s.DeleteMatrix(ha) || !s.DeleteMatrix(ha2) {
		t.Fatal("delete of stored handles failed")
	}
	if s.PlanCache().Len() != lenBefore-1 {
		t.Fatalf("pattern delete left %d entries, want %d", s.PlanCache().Len(), lenBefore-1)
	}
	if _, err := s.Submit(Job{Engine: "cpu", AHandle: hb, BHandle: hb}); err != nil {
		t.Fatal(err)
	}
	hits3, _, _ := s.PlanCache().Counters()
	if hits3 != hits2+1 {
		t.Fatalf("pattern b lost its warm plan after deleting pattern a (hits %d -> %d)", hits2, hits3)
	}
	// The retired pattern's handles are gone from the store.
	if _, ok := s.Matrix(ha); ok {
		t.Fatal("deleted handle still resolves")
	}
	// A job naming it is rejected with the typed error.
	if _, err := s.Submit(Job{Engine: "cpu", AHandle: ha, BHandle: ha}); err == nil {
		t.Fatal("job on deleted handle admitted")
	} else {
		var uh *UnknownHandleError
		if !errors.As(err, &uh) {
			t.Fatalf("error %v, want UnknownHandleError", err)
		}
	}

	// Counters reconcile in the snapshot: the serving totals match the
	// cache's own view.
	snap := s.Snapshot()
	ch, cm, _ := s.PlanCache().Counters()
	if snap[metrics.CounterPlanCacheHits] != ch || snap[metrics.CounterPlanCacheMisses] != cm {
		t.Fatalf("snapshot counters (%d/%d) disagree with cache (%d/%d)",
			snap[metrics.CounterPlanCacheHits], snap[metrics.CounterPlanCacheMisses], ch, cm)
	}
}

// TestMatrixStoreLRUEviction bounds the store by bytes and checks the
// last-pattern-out rule invalidates the evicted pattern's plans.
func TestMatrixStoreLRUEviction(t *testing.T) {
	a := spgemm.ER(64, 64, 0.05, 10)
	budget := 2*a.Bytes() + a.Bytes()/2 // room for two matrices, not three
	s := New(Config{MaxConcurrent: 1, MatrixStoreBytes: budget})
	defer s.Drain(0)
	ha, err := s.StoreMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Job{Engine: "cpu", AHandle: ha, BHandle: ha}); err != nil {
		t.Fatal(err)
	}
	planned := s.PlanCache().Len()
	if planned == 0 {
		t.Fatal("no plan cached for stored pattern")
	}
	if _, err := s.StoreMatrix(spgemm.ER(64, 64, 0.05, 11)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StoreMatrix(spgemm.ER(64, 64, 0.05, 12)); err != nil {
		t.Fatal(err) // evicts ha (LRU)
	}
	if _, ok := s.Matrix(ha); ok {
		t.Fatal("LRU matrix survived eviction")
	}
	if s.PlanCache().Len() != 0 {
		t.Fatalf("evicted pattern's plans survived: %d entries", s.PlanCache().Len())
	}
	snap := s.Snapshot()
	if snap[metrics.CounterMatrixStoreEvictions] == 0 {
		t.Fatal("no store eviction counted")
	}
	// Oversized upload is rejected outright.
	if _, err := s.StoreMatrix(spgemm.ER(512, 512, 0.2, 13)); err == nil {
		t.Fatal("oversized matrix accepted")
	}
}

// TestHTTPMatrixEndpoints drives the handle lifecycle over HTTP:
// upload, re-value, handle-based multiply, delete, and the hit-rate
// fields in /metricsz.
func TestHTTPMatrixEndpoints(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	defer s.Drain(0)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(path string, body any) (*http.Response, map[string]any) {
		t.Helper()
		buf, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]any{}
		_ = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		return resp, out
	}

	resp, body := post("/v1/matrices", MatrixRequest{Spec: &MatrixSpec{Kind: "er", Rows: 64, Cols: 64, Density: 0.05, Seed: 3}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: %d %v", resp.StatusCode, body)
	}
	handle, _ := body["handle"].(string)
	structFP, _ := body["structure_fingerprint"].(string)
	if handle == "" || structFP == "" {
		t.Fatalf("upload response incomplete: %v", body)
	}

	// Two handle-based multiplies: second is warm.
	for i := 0; i < 2; i++ {
		resp, body = post("/v1/multiply", MultiplyRequest{Engine: "cpu", AHandle: handle})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("multiply %d: %d %v", i, resp.StatusCode, body)
		}
	}

	// Re-value keeps the structural fingerprint.
	resp, body = post("/v1/matrices", MatrixRequest{Handle: handle, ValuesSeed: 42})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("revalue: %d %v", resp.StatusCode, body)
	}
	if got, _ := body["structure_fingerprint"].(string); got != structFP {
		t.Fatalf("revalue changed structure fingerprint %s -> %s", structFP, got)
	}

	// Metrics carry the counters and derived hit rates.
	mresp, err := http.Get(srv.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody := map[string]any{}
	_ = json.NewDecoder(mresp.Body).Decode(&metricsBody)
	mresp.Body.Close()
	if hits, _ := metricsBody["plan_cache_hits"].(float64); hits != 1 {
		t.Fatalf("plan_cache_hits = %v, want 1", metricsBody["plan_cache_hits"])
	}
	if rate, _ := metricsBody["plan_cache_hit_rate"].(float64); rate != 0.5 {
		t.Fatalf("plan_cache_hit_rate = %v, want 0.5", metricsBody["plan_cache_hit_rate"])
	}
	if _, ok := metricsBody["matrix_store_hit_rate"]; !ok {
		t.Fatal("metricsz missing matrix_store_hit_rate")
	}

	// Delete; a multiply by the dead handle is a 404.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/matrices/"+handle, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
	resp, body = post("/v1/multiply", MultiplyRequest{Engine: "cpu", AHandle: handle})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("multiply on deleted handle: %d %v", resp.StatusCode, body)
	}
	// Unknown-handle revalue is a 404 too.
	resp, _ = post("/v1/matrices", MatrixRequest{Handle: "m-gone", ValuesSeed: 1})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("revalue of unknown handle: %d", resp.StatusCode)
	}
}
