package serve

import (
	"fmt"
	"sync"

	"repro/internal/metrics"
	"repro/spgemm"
)

// matrixStore is the serving layer's content-addressed matrix store:
// clients upload an operand once and re-multiply it by handle, so
// repeated-pattern traffic (AMG setup, graph iterations) ships no
// matrix data after the first request and keeps the plan cache warm.
//
// Handles are derived from the content — the structural fingerprint
// plus the values fingerprint — so re-uploading identical content is
// idempotent, and a values-only refresh yields a new handle that
// still shares the structural fingerprint (and therefore the cached
// plan) of its pattern.
//
// The store is LRU-bounded by matrix bytes. When the last stored
// matrix carrying a given sparsity pattern leaves the store (eviction
// or explicit delete), the pattern's plan-cache entries are
// invalidated with it: a plan without any resident operand can never
// get a warm hit again, it is pure dead weight.
type matrixStore struct {
	mu      sync.Mutex
	max     int64
	bytes   int64
	entries map[string]*storeEntry
	order   []string // LRU: oldest first
	col     *metrics.Collector
	pc      *spgemm.PlanCache

	hits, misses, evictions int64
}

type storeEntry struct {
	m        *spgemm.Matrix
	structFP uint64
	bytes    int64
	// pins counts admitted-but-unfinished jobs and batch nodes holding
	// this handle; LRU eviction never drops a pinned entry, so a
	// running batch cannot lose a handle (or its pattern's cached
	// plans) to eviction pressure from concurrent uploads. Explicit
	// DELETE is operator intent and still wins.
	pins int
}

// DefaultMatrixStoreBytes bounds the store when Config leaves it zero.
const DefaultMatrixStoreBytes = 512 << 20

func newMatrixStore(maxBytes int64, col *metrics.Collector, pc *spgemm.PlanCache) *matrixStore {
	if maxBytes <= 0 {
		maxBytes = DefaultMatrixStoreBytes
	}
	return &matrixStore{max: maxBytes, entries: map[string]*storeEntry{}, col: col, pc: pc}
}

// handleFor derives the content address.
func handleFor(structFP, valuesFP uint64) string {
	return fmt.Sprintf("m-%016x%016x", structFP, valuesFP)
}

// put stores a matrix and returns its handle. Identical content
// returns the existing handle without a second copy.
func (s *matrixStore) put(m *spgemm.Matrix) (string, error) {
	if err := m.Validate(); err != nil {
		return "", fmt.Errorf("serve: matrix rejected by store: %w", err)
	}
	structFP := spgemm.Fingerprint(m)
	h := handleFor(structFP, spgemm.FingerprintValues(m))
	bytes := m.Bytes()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.entries[h] != nil {
		s.touchLocked(h)
		return h, nil
	}
	if bytes > s.max {
		return "", fmt.Errorf("serve: matrix (%d bytes) exceeds the store budget (%d)", bytes, s.max)
	}
	for s.bytes+bytes > s.max {
		if !s.evictLocked() {
			return "", fmt.Errorf("serve: matrix store full (%d of %d bytes)", s.bytes, s.max)
		}
	}
	s.entries[h] = &storeEntry{m: m, structFP: structFP, bytes: bytes}
	s.order = append(s.order, h)
	s.bytes += bytes
	return h, nil
}

// get resolves a handle, counting hits and misses.
func (s *matrixStore) get(handle string) (*spgemm.Matrix, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ent := s.entries[handle]
	if ent == nil {
		s.misses++
		s.col.Add(metrics.CounterMatrixStoreMisses, 1)
		return nil, false
	}
	s.hits++
	s.col.Add(metrics.CounterMatrixStoreHits, 1)
	s.touchLocked(handle)
	return ent.m, true
}

// getPin resolves a handle and pins it in one critical section, so a
// concurrent eviction cannot race between resolution and pinning. The
// caller must balance with unpin.
func (s *matrixStore) getPin(handle string) (*spgemm.Matrix, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ent := s.entries[handle]
	if ent == nil {
		s.misses++
		s.col.Add(metrics.CounterMatrixStoreMisses, 1)
		return nil, false
	}
	s.hits++
	s.col.Add(metrics.CounterMatrixStoreHits, 1)
	s.touchLocked(handle)
	ent.pins++
	return ent.m, true
}

// unpin releases one pin; a handle explicitly deleted while pinned is
// simply gone (the job holds its resolved matrix regardless).
func (s *matrixStore) unpin(handle string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ent := s.entries[handle]; ent != nil && ent.pins > 0 {
		ent.pins--
	}
}

// unpinAll releases one pin per listed handle.
func (s *matrixStore) unpinAll(handles []string) {
	for _, h := range handles {
		s.unpin(h)
	}
}

// revalue stores a fresh-valued copy of the handle's matrix: the same
// sparsity pattern, values drawn deterministically from seed. The new
// handle shares the pattern's structural fingerprint, so plans cached
// for the original stay valid — this is the "new values, old plan"
// entry point of the iterative workloads.
func (s *matrixStore) revalue(handle string, seed int64) (string, error) {
	s.mu.Lock()
	ent := s.entries[handle]
	if ent == nil {
		s.misses++
		s.col.Add(metrics.CounterMatrixStoreMisses, 1)
		s.mu.Unlock()
		return "", &UnknownHandleError{Handle: handle}
	}
	s.hits++
	s.col.Add(metrics.CounterMatrixStoreHits, 1)
	s.touchLocked(handle)
	src := ent.m
	s.mu.Unlock()
	return s.put(spgemm.Revalue(src, seed))
}

// delete removes a handle and reports whether it existed. Plan-cache
// invalidation follows the last-pattern-out rule.
func (s *matrixStore) delete(handle string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ent := s.entries[handle]
	if ent == nil {
		return false
	}
	for i, h := range s.order {
		if h == handle {
			s.dropLocked(i)
			break
		}
	}
	return true
}

// evictLocked drops the least-recently-used unpinned entry. When every
// resident entry is pinned by an in-flight job or batch, nothing is
// evictable and the incoming put fails instead — shrinking a running
// batch's working set would be worse than rejecting the upload.
func (s *matrixStore) evictLocked() bool {
	for i := range s.order {
		if s.entries[s.order[i]].pins > 0 {
			continue
		}
		s.dropLocked(i)
		s.evictions++
		s.col.Add(metrics.CounterMatrixStoreEvictions, 1)
		return true
	}
	return false
}

// dropLocked removes order[i] and, when no other stored matrix shares
// its sparsity pattern, invalidates the pattern's cached plans.
func (s *matrixStore) dropLocked(i int) {
	h := s.order[i]
	s.order = append(s.order[:i:i], s.order[i+1:]...)
	ent := s.entries[h]
	delete(s.entries, h)
	s.bytes -= ent.bytes
	for _, other := range s.entries {
		if other.structFP == ent.structFP {
			return // pattern still resident under another handle
		}
	}
	s.pc.Invalidate(ent.structFP)
}

// touchLocked moves a handle to the LRU tail.
func (s *matrixStore) touchLocked(h string) {
	for i, k := range s.order {
		if k == h {
			s.order = append(append(s.order[:i:i], s.order[i+1:]...), h)
			return
		}
	}
}

// stats snapshots the store for /metricsz and tests.
func (s *matrixStore) stats() (entries int, bytes, hits, misses, evictions int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries), s.bytes, s.hits, s.misses, s.evictions
}
