package serve

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/faults"
)

// OverloadError is the admission controller's load-shed rejection: the
// job's estimated flop cost on top of the work already admitted would
// exceed the server's inflight budget. It wraps faults.ErrOverloaded
// so errors.Is classification survives any further wrapping, and
// carries a retry-after hint sized from the backlog.
type OverloadError struct {
	// RetryAfter estimates when enough inflight work will have drained
	// for the job to fit (backlog flops over the configured drain
	// rate). It is a hint, not a promise.
	RetryAfter time.Duration
	// InflightFlops, JobFlops and BudgetFlops document the rejection:
	// inflight + job exceeded budget.
	InflightFlops, JobFlops, BudgetFlops int64
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: %v: %d inflight + %d job flops exceed budget %d (retry in %v)",
		faults.ErrOverloaded, e.InflightFlops, e.JobFlops, e.BudgetFlops, e.RetryAfter)
}

func (e *OverloadError) Unwrap() error { return faults.ErrOverloaded }

// QueueFullError is the bounded-queue rejection: every worker is busy
// and the admission queue has no free slot. It wraps
// faults.ErrQueueFull.
type QueueFullError struct {
	// Depth is the queue's capacity.
	Depth int
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("serve: %v (depth %d)", faults.ErrQueueFull, e.Depth)
}

func (e *QueueFullError) Unwrap() error { return faults.ErrQueueFull }

// DrainingError rejects jobs submitted after Drain began: the server
// is shutting down and admits nothing. It wraps faults.ErrOverloaded
// (the job never ran; another replica may take it).
type DrainingError struct{}

func (e *DrainingError) Error() string {
	return fmt.Sprintf("serve: draining, not admitting jobs: %v", faults.ErrOverloaded)
}

func (e *DrainingError) Unwrap() error { return faults.ErrOverloaded }

// PanicError converts an engine panic into a typed per-job error so
// one crashed job cannot take the server down. It wraps
// faults.ErrJobPanic.
type PanicError struct {
	// Engine is the engine that panicked; Value is the recovered panic
	// value.
	Engine string
	Value  any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("serve: engine %q: %v: %v", e.Engine, faults.ErrJobPanic, e.Value)
}

func (e *PanicError) Unwrap() error { return faults.ErrJobPanic }

// UnknownHandleError rejects a job referencing a matrix handle the
// store does not hold (never uploaded, deleted, or evicted). The
// client re-uploads and retries; the HTTP layer maps it to 404.
type UnknownHandleError struct {
	// Handle is the unresolved handle.
	Handle string
}

func (e *UnknownHandleError) Error() string {
	return fmt.Sprintf("serve: unknown matrix handle %q (re-upload via /v1/matrices)", e.Handle)
}

// BatchError rejects a whole /v1/batch request before admission: the
// DAG cannot be scheduled (invalid graph or an operand shape
// mismatch). Code is the apiv1 envelope code; the HTTP layer maps any
// BatchError to 400.
type BatchError struct {
	// Code is the machine-readable envelope code ("invalid_dag" or
	// "shape_mismatch").
	Code string
	// Node is the offending node id ("" when the whole graph is at
	// fault); Reason is the human-readable diagnosis.
	Node   string
	Reason string
}

func (e *BatchError) Error() string {
	if e.Node == "" {
		return fmt.Sprintf("serve: batch rejected (%s): %s", e.Code, e.Reason)
	}
	return fmt.Sprintf("serve: batch rejected (%s) at node %q: %s", e.Code, e.Node, e.Reason)
}

// RetryAfter extracts the retry-after hint from a shedding error
// chain (ok is false when err carries none).
func RetryAfter(err error) (d time.Duration, ok bool) {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return oe.RetryAfter, true
	}
	return 0, false
}
