// Package serve is the overload-safe serving layer over the engine
// registry: a multi-tenant job scheduler that multiplexes SpGEMM jobs
// across the registered engines while staying up under overload,
// device failures and misbehaving jobs.
//
// Its safety mechanisms, in admission order:
//
//   - Admission control. Every job is sized before it is accepted
//     (spgemm.EstimateCost: exact flops plus, for device-backed
//     engines, the out-of-core plan against device memory). Jobs that
//     cannot fit the device are rejected up front; jobs that would
//     push the inflight flop total past the budget are shed with a
//     typed OverloadError carrying a retry-after hint; a bounded
//     queue sheds the rest with QueueFullError. Shedding never blocks
//     and never runs the job.
//   - Circuit breakers. Each device-backed engine has a breaker fed
//     by the recovery counters of its finished jobs (retries, lost
//     devices) and their terminal errors. A tripped breaker degrades
//     the engine's traffic to the CPU fallback engine until a
//     half-open probe completes healthily.
//   - Per-job isolation. An engine panic is recovered into a typed
//     PanicError for that job alone; deadlines and cancellation ride
//     on spgemm.RunOptions.DeadlineSec.
//   - Graceful drain. Drain stops admission, lets inflight jobs
//     finish within the drain deadline, abandons what remains, and
//     returns the final metrics snapshot.
//
// On top of single multiplies, SubmitBatch (POST /v1/batch) schedules
// a whole DAG of multiplies as one admission unit: validated up front
// (unknown handles, cycles, shape mismatches), planned so nodes
// sharing a structural fingerprint pay one cold symbolic phase and
// replay numeric-only via the shared plan cache, and pipelined so a
// chain stage consumes its predecessor's output from an in-flight
// namespace without a round trip through the matrix store. Failure is
// partial: a failed node fails alone, its downstream nodes are
// skipped, everything else completes.
//
// The HTTP surface (Handler) exposes /healthz, /readyz, /metricsz,
// POST /v1/multiply and POST /v1/batch; cmd/spgemm-serve wires it to
// a daemon with SIGTERM-triggered drain. The wire types live in the
// public versioned package repro/spgemm/api/v1.
package serve

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/spgemm"
)

// Config tunes a Server. The zero value is usable: two workers, a
// bounded queue of twice that, no flop budget (admission sheds only on
// queue depth), CPU fallback, default breaker thresholds.
type Config struct {
	// MaxConcurrent is the worker count — jobs running at once
	// (0 means 2).
	MaxConcurrent int
	// QueueDepth bounds the admission queue (0 means 2*MaxConcurrent).
	QueueDepth int
	// MaxInflightFlops is the admission budget: a job is shed when its
	// estimated flops plus the admitted-but-unfinished total exceed
	// it. 0 disables the budget (the queue still bounds admission).
	MaxInflightFlops int64
	// FlopsPerSec converts backlog flops into the OverloadError
	// retry-after hint (0 means 1e9).
	FlopsPerSec int64
	// FallbackEngine is where tripped breakers degrade traffic
	// (empty means "cpu").
	FallbackEngine string
	// Breaker tunes the per-engine circuit breakers.
	Breaker BreakerConfig
	// Base is the option set jobs inherit (device model, fault
	// injection, threads); per-job options override it.
	Base spgemm.RunOptions
	// PlanCacheBytes bounds the shared structure-reuse plan cache
	// every job inherits (0 means the spgemm default, negative
	// disables the cache and makes every job run cold).
	PlanCacheBytes int64
	// MatrixStoreBytes bounds the content-addressed matrix store
	// behind handle-based re-multiply (0 means 512 MiB).
	MatrixStoreBytes int64
	// DrainTimeout is the default Drain deadline (0 means 30s).
	DrainTimeout time.Duration
	// Metrics receives the serving counters (plus each job's
	// recovery_* counters, aggregated); nil means a fresh collector.
	Metrics *metrics.Collector
}

// Job is one multiply request: an engine name from the registry and
// the two operands — either as matrices or as handles into the
// server's matrix store (a handle wins over its matrix field). Opts
// may be nil to inherit the server's base options wholesale.
type Job struct {
	Engine string
	A, B   *spgemm.Matrix
	// AHandle and BHandle name stored matrices (see Server.StoreMatrix
	// and POST /v1/matrices); an unknown handle rejects the job at
	// admission.
	AHandle, BHandle string
	Opts             *spgemm.RunOptions
}

// Result is a finished (or abandoned) job. Err is also returned by
// Submit; the rest documents what actually happened — which engine ran
// the job after breaker routing, its cost estimate, and the job's own
// metrics snapshot (spans and counters, including the recovery_*
// family the breaker consumed).
type Result struct {
	C         *spgemm.Matrix
	Report    spgemm.Report
	Requested string
	Engine    string
	Degraded  bool
	Probe     bool
	Abandoned bool
	Cost      spgemm.Cost
	Snapshot  map[string]int64
	Err       error
}

// task is a Job after admission: routed, costed, instrumented.
type task struct {
	a, b      *spgemm.Matrix
	requested string
	engine    string
	degraded  bool
	probe     bool
	cost      spgemm.Cost
	opts      *spgemm.RunOptions
	col       *metrics.Collector
	done      chan *Result
}

// Server is the scheduler. Create with New, submit with Submit (or
// the HTTP handler), shut down with Drain.
type Server struct {
	cfg     Config
	metrics *metrics.Collector
	queue   chan *task
	wg      sync.WaitGroup
	abandon atomic.Bool
	plans   *spgemm.PlanCache
	store   *matrixStore

	mu            sync.Mutex
	draining      bool
	inflight      int
	inflightFlops int64
	breakers      map[string]*breaker
}

// New starts a server and its worker pool.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.MaxConcurrent
	}
	if cfg.FlopsPerSec <= 0 {
		cfg.FlopsPerSec = 1e9
	}
	if cfg.FallbackEngine == "" {
		cfg.FallbackEngine = "cpu"
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	cfg.Breaker = cfg.Breaker.withDefaults()
	m := cfg.Metrics
	if m == nil {
		m = metrics.New()
	}
	s := &Server{
		cfg:      cfg,
		metrics:  m,
		queue:    make(chan *task, cfg.QueueDepth),
		breakers: map[string]*breaker{},
	}
	if cfg.PlanCacheBytes >= 0 {
		s.plans = spgemm.NewPlanCache(cfg.PlanCacheBytes)
	}
	s.store = newMatrixStore(cfg.MatrixStoreBytes, m, s.plans)
	s.wg.Add(cfg.MaxConcurrent)
	for i := 0; i < cfg.MaxConcurrent; i++ {
		go s.worker()
	}
	return s
}

// Submit admits and runs one job, blocking until it finishes.
// Admission rejections come back immediately as typed errors
// (OverloadError, QueueFullError, DrainingError — all classified by
// faults.Shedding) with a nil Result; admitted jobs always produce a
// Result, whose Err is echoed as the second return.
func (s *Server) Submit(job Job) (*Result, error) {
	t, err := s.admit(job)
	if err != nil {
		return nil, err
	}
	res := <-t.done
	return res, res.Err
}

// admit performs the whole admission decision under one critical
// section, so a concurrent Drain cannot close the queue between the
// draining check and the enqueue.
func (s *Server) admit(job Job) (*task, error) {
	if job.AHandle != "" {
		m, ok := s.store.get(job.AHandle)
		if !ok {
			return nil, &UnknownHandleError{Handle: job.AHandle}
		}
		job.A = m
	}
	if job.BHandle != "" {
		m, ok := s.store.get(job.BHandle)
		if !ok {
			return nil, &UnknownHandleError{Handle: job.BHandle}
		}
		job.B = m
	}
	if job.A == nil || job.B == nil {
		return nil, fmt.Errorf("serve: nil input matrix")
	}
	requested := job.Engine
	if requested == "" {
		requested = s.cfg.FallbackEngine
	}
	opts := s.jobOptions(job)
	col := opts.Metrics
	if col == nil {
		col = metrics.New()
		opts.Metrics = col
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.metrics.Add(metrics.CounterServeRejectedDraining, 1)
		return nil, &DrainingError{}
	}
	engine, degraded, probe := requested, false, false
	if br := s.breakerFor(requested); br != nil {
		fallback, p := br.route()
		if fallback {
			engine, degraded = s.cfg.FallbackEngine, true
		}
		probe = p
	}
	cost, err := spgemm.EstimateCost(engine, job.A, job.B, opts)
	if err != nil {
		return nil, err
	}
	if lim := s.cfg.MaxInflightFlops; lim > 0 && s.inflight > 0 && s.inflightFlops+cost.Flops > lim {
		s.metrics.Add(metrics.CounterServeRejectedOverload, 1)
		return nil, &OverloadError{
			RetryAfter:    s.retryAfterLocked(),
			InflightFlops: s.inflightFlops,
			JobFlops:      cost.Flops,
			BudgetFlops:   lim,
		}
	}
	t := &task{
		a: job.A, b: job.B,
		requested: requested, engine: engine,
		degraded: degraded, probe: probe,
		cost: cost, opts: opts, col: col,
		done: make(chan *Result, 1),
	}
	select {
	case s.queue <- t:
	default:
		s.metrics.Add(metrics.CounterServeRejectedQueue, 1)
		return nil, &QueueFullError{Depth: cap(s.queue)}
	}
	s.inflight++
	s.inflightFlops += cost.Flops
	s.metrics.Add(metrics.CounterServeAccepted, 1)
	if degraded {
		s.metrics.Add(metrics.CounterServeDegraded, 1)
	}
	if probe {
		s.metrics.Add(metrics.CounterServeBreakerProbes, 1)
	}
	if br := s.breakerFor(requested); br != nil {
		br.committed(degraded, probe)
	}
	return t, nil
}

// jobOptions merges a job's options over the server base: nil inherits
// the base wholesale; otherwise the job's options win, with unset
// device/faults/threads/deadline backfilled from the base. The
// metrics collector is per-job, never the base's: a job that brings
// its own keeps it (its spans stay readable by the caller), everyone
// else gets a fresh one in admit.
func (s *Server) jobOptions(job Job) *spgemm.RunOptions {
	o := s.cfg.Base
	o.Metrics = nil
	if job.Opts != nil {
		o = *job.Opts
		if o.Device == nil {
			o.Device = s.cfg.Base.Device
		}
		if !o.Faults.Enabled() {
			o.Faults = s.cfg.Base.Faults
		}
		if o.Threads == 0 {
			o.Threads = s.cfg.Base.Threads
		}
		if o.DeadlineSec == 0 {
			o.DeadlineSec = s.cfg.Base.DeadlineSec
		}
		if o.Symbolic == spgemm.SymbolicExact {
			// Exact is the zero value, so a job can't distinguish "unset"
			// from "explicitly exact" — HTTP jobs carry no symbolic field
			// and inherit the server's base mode, as the -symbolic flag
			// documents.
			o.Symbolic = s.cfg.Base.Symbolic
			o.Estimator = s.cfg.Base.Estimator
		}
	}
	if o.PlanCache == nil && !o.Faults.Enabled() {
		// Jobs share the server's plan cache: repeated patterns across
		// requests hit warm plans. A job bringing its own cache keeps
		// it. Fault-injected jobs stay cold unless they bring one — a
		// warm run does less device work, which would silently shift
		// when (or whether) the job's seeded faults fire.
		o.PlanCache = s.plans
	}
	return &o
}

// breakerFor returns the engine's breaker, creating it lazily. Only
// device-backed engines other than the fallback get breakers — the
// fallback must always accept degraded traffic.
func (s *Server) breakerFor(name string) *breaker {
	if name == s.cfg.FallbackEngine || !spgemm.DeviceBacked(name) {
		return nil
	}
	br := s.breakers[name]
	if br == nil {
		br = newBreaker(s.cfg.Breaker)
		s.breakers[name] = br
	}
	return br
}

// retryAfterLocked sizes the retry-after hint from the backlog: the
// time the inflight flops take to drain at the configured rate,
// clamped to at least one millisecond so the hint is never zero.
func (s *Server) retryAfterLocked() time.Duration {
	d := time.Duration(float64(s.inflightFlops) / float64(s.cfg.FlopsPerSec) * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

func (s *Server) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		res := s.run(t)
		s.finish(t, res)
		t.done <- res
	}
}

// run executes one admitted task, converting an engine panic into a
// typed per-job error instead of crashing the worker.
func (s *Server) run(t *task) *Result {
	res := &Result{
		Requested: t.requested, Engine: t.engine,
		Degraded: t.degraded, Probe: t.probe, Cost: t.cost,
	}
	if s.abandon.Load() {
		res.Abandoned = true
		res.Err = fmt.Errorf("serve: job abandoned at drain deadline: %w", faults.ErrDeadline)
		return res
	}
	eng, err := spgemm.ByName(t.engine)
	if err != nil {
		res.Err = err
		return res
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				res.Err = &PanicError{Engine: t.engine, Value: r}
			}
		}()
		res.C, res.Report, res.Err = eng.Run(t.a, t.b, t.opts)
	}()
	res.Snapshot = t.col.Snapshot()
	return res
}

// finish releases the job's admission budget, publishes its outcome
// counters, aggregates its recovery counters, and feeds its recovery
// signal to the engine's breaker.
func (s *Server) finish(t *task, res *Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	s.inflightFlops -= t.cost.Flops
	s.settleLocked(t, res)
}

// settleLocked publishes a finished task's outcome counters,
// aggregates its recovery/plan-cache/symbolic counters, and feeds its
// recovery signal to the engine's breaker. It does NOT touch the
// admission accounting — finish does that per job; the batch executor
// accounts a whole DAG as one unit and settles each node through here.
// The caller holds s.mu.
func (s *Server) settleLocked(t *task, res *Result) {
	switch {
	case res.Abandoned:
		s.metrics.Add(metrics.CounterServeAbandoned, 1)
	case res.Err == nil:
		s.metrics.Add(metrics.CounterServeCompleted, 1)
	case errors.Is(res.Err, faults.ErrJobPanic):
		s.metrics.Add(metrics.CounterServePanicked, 1)
	default:
		s.metrics.Add(metrics.CounterServeFailed, 1)
	}
	for k, v := range res.Snapshot {
		if strings.HasPrefix(k, "recovery_") || strings.HasPrefix(k, "plan_cache_") ||
			strings.HasPrefix(k, "symbolic_") {
			s.metrics.Add(k, v)
		}
	}
	if res.Abandoned || t.degraded {
		return
	}
	if br := s.breakers[t.engine]; br != nil {
		sig := faults.SignalFromCounters(res.Snapshot, res.Err)
		tripped, closedNow := br.record(sig, t.probe)
		if tripped {
			s.metrics.Add(metrics.CounterServeBreakerTrips, 1)
		}
		if closedNow {
			s.metrics.Add(metrics.CounterServeBreakerCloses, 1)
		}
	}
}

// Drain shuts the server down gracefully: stop admitting, let
// inflight and queued jobs finish within the deadline (0 means the
// configured DrainTimeout), abandon whatever the deadline catches
// still queued, and return the final metrics snapshot. Abandoned jobs
// resolve with an error wrapping faults.ErrDeadline. Drain is
// idempotent; every call waits for the workers and returns the
// snapshot.
func (s *Server) Drain(timeout time.Duration) map[string]int64 {
	if timeout <= 0 {
		timeout = s.cfg.DrainTimeout
	}
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		s.abandon.Store(true)
		<-done
	}
	return s.Snapshot()
}

// Snapshot returns the server's current flat metrics snapshot,
// including the authoritative plan-cache and matrix-store totals
// (the cache's own counters, which also cover evictions and hits
// recorded outside any job).
func (s *Server) Snapshot() map[string]int64 {
	snap := s.metrics.Snapshot()
	if s.plans != nil {
		hits, misses, evictions := s.plans.Counters()
		snap[metrics.CounterPlanCacheHits] = hits
		snap[metrics.CounterPlanCacheMisses] = misses
		snap[metrics.CounterPlanCacheEvictions] = evictions
	}
	entries, bytes, hits, misses, evictions := s.store.stats()
	snap["matrix_store_entries"] = int64(entries)
	snap["matrix_store_bytes"] = bytes
	snap[metrics.CounterMatrixStoreHits] = hits
	snap[metrics.CounterMatrixStoreMisses] = misses
	snap[metrics.CounterMatrixStoreEvictions] = evictions
	return snap
}

// StoreMatrix uploads a matrix into the content-addressed store and
// returns its handle. Identical content is idempotent.
func (s *Server) StoreMatrix(m *spgemm.Matrix) (string, error) { return s.store.put(m) }

// Matrix resolves a stored handle.
func (s *Server) Matrix(handle string) (*spgemm.Matrix, bool) { return s.store.get(handle) }

// RevalueMatrix stores a fresh-valued copy of a stored pattern (same
// structure, deterministic new values from seed) and returns the new
// handle; the pattern's cached plans remain valid for it.
func (s *Server) RevalueMatrix(handle string, seed int64) (string, error) {
	return s.store.revalue(handle, seed)
}

// DeleteMatrix removes a stored handle; if it carried the last copy
// of its sparsity pattern, the pattern's plan-cache entries go with
// it. It reports whether the handle existed.
func (s *Server) DeleteMatrix(handle string) bool { return s.store.delete(handle) }

// PlanCache exposes the server's shared plan cache (nil when disabled).
func (s *Server) PlanCache() *spgemm.PlanCache { return s.plans }

// Draining reports whether Drain has begun (readiness turns false).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Abandoning reports whether the drain deadline has passed and queued
// jobs are being abandoned rather than run.
func (s *Server) Abandoning() bool { return s.abandon.Load() }

// Inflight reports the admitted-but-unfinished jobs and their summed
// flop estimates.
func (s *Server) Inflight() (jobs int, flops int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight, s.inflightFlops
}

// BreakerStates reports each engine breaker as "closed", "open" or
// "half-open". Engines without traffic have no entry.
func (s *Server) BreakerStates() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string]string{}
	for name, br := range s.breakers {
		out[name] = br.state()
	}
	return out
}
