package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/spgemm"
	apiv1 "repro/spgemm/api/v1"
)

// SubmitBatch validates, admits and executes one /v1/batch DAG,
// blocking until every node has resolved.
//
// Validation happens before admission and rejects the whole batch with
// a typed BatchError (HTTP 400): an empty or oversized graph,
// duplicate or missing node ids, a reference to an unknown node, a
// dependency cycle, or an operand shape mismatch anywhere in the DAG
// (output shapes are statically known — rows(A)×cols(B) — so the whole
// chain is checked without running anything).
//
// Admission is one decision for the whole DAG: the summed per-node
// flop estimate (upstream outputs estimated through the standard
// row-product model) is weighed against the inflight budget exactly
// like a single job's cost, and the batch is shed with OverloadError
// or rejected with DrainingError as a unit.
//
// Execution pipelines the DAG: a bounded worker pool (the server's
// MaxConcurrent) runs nodes as their dependencies resolve, each node's
// output living in an in-flight namespace its consumers read directly
// — no round trip through the matrix store unless the node asked for
// `store: true`. Nodes sharing a structural fingerprint pair are
// grouped: the first of a group runs the cold symbolic phase alone,
// the rest wait for its plan and replay numeric-only via the shared
// plan cache.
//
// Failure is partial and the response is always complete: a node that
// cannot resolve its handle fails alone (code unknown_handle), a
// panicking or erroring engine fails its node (the envelope carries
// the taxonomy code), and every node downstream of a failure is
// skipped with code upstream_failed naming the dependency. An
// admitted batch never turns into an HTTP error.
func (s *Server) SubmitBatch(req *apiv1.BatchRequest) (*apiv1.BatchResponse, error) {
	nodes, pinned, total, err := s.planBatch(req)
	if err != nil {
		return nil, err
	}
	// Handle operands stay pinned in the matrix store for the batch's
	// lifetime: concurrent uploads cannot evict a pattern (or its cached
	// plans) out from under an admitted-but-unfinished node.
	defer s.store.unpinAll(pinned)

	s.mu.Lock()
	if s.draining {
		s.metrics.Add(metrics.CounterServeRejectedDraining, 1)
		s.mu.Unlock()
		return nil, &DrainingError{}
	}
	if lim := s.cfg.MaxInflightFlops; lim > 0 && s.inflight > 0 && s.inflightFlops+total > lim {
		s.metrics.Add(metrics.CounterServeRejectedOverload, 1)
		oe := &OverloadError{
			RetryAfter:    s.retryAfterLocked(),
			InflightFlops: s.inflightFlops,
			JobFlops:      total,
			BudgetFlops:   lim,
		}
		s.mu.Unlock()
		return nil, oe
	}
	// The batch holds one admission unit for its whole flop estimate;
	// wg.Add under the same critical section as the draining check keeps
	// Drain from missing it (Drain flips draining before waiting).
	s.inflight++
	s.inflightFlops += total
	s.metrics.Add(metrics.CounterServeBatchesAccepted, 1)
	s.metrics.Add(metrics.CounterServeAccepted, int64(len(nodes)))
	s.wg.Add(1)
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.inflight--
		s.inflightFlops -= total
		s.metrics.Add(metrics.CounterServeBatchesCompleted, 1)
		s.mu.Unlock()
		s.wg.Done()
	}()

	run := &batchRun{
		s: s, req: req, nodes: nodes,
		results: make([]apiv1.NodeResult, len(nodes)),
		outputs: make([]*spgemm.Matrix, len(nodes)),
		ready:   make(chan int, len(nodes)),
		groups:  map[planGroupKey]chan struct{}{},
	}
	start := time.Now()
	run.execute()
	return run.response(total, time.Since(start)), nil
}

// bnode is one batch node after validation: resolved concrete
// operands, dependency edges, statically propagated output shape and
// the admission flop estimate.
type bnode struct {
	node apiv1.BatchNode
	// a and b are concrete operands (handle or spec); nil when the
	// operand is an upstream node's output.
	a, b *spgemm.Matrix
	// aFrom/bFrom index the upstream node an operand comes from (-1 for
	// concrete operands).
	aFrom, bFrom int
	// deps lists the distinct upstream indices; pending counts the
	// unresolved ones during execution.
	deps    []int
	pending int
	// outRows/outCols is the statically known output shape; estFlops
	// the admission estimate (0 when unknowable because an input
	// already failed validation).
	outRows, outCols int
	estNnz           float64
	estFlops         int64
	// failed carries a validation-time per-node failure (unknown
	// handle, bad spec): the node is admitted but resolves failed, and
	// its downstream resolves skipped.
	failed *apiv1.ErrorResponse
	// shapeKnown marks nodes whose operand shapes all resolved (false
	// only downstream of a validation failure).
	shapeKnown bool
}

// planBatch validates the DAG and computes the admission estimate.
// Whole-batch rejections return a *BatchError; per-node problems
// (unknown handle, bad spec) are recorded on the node and surface as
// node statuses after execution. Every handle operand that resolved is
// pinned in the store; the returned pinned list is the caller's
// obligation to unpin (planBatch unpins itself on whole-batch errors).
func (s *Server) planBatch(req *apiv1.BatchRequest) ([]*bnode, []string, int64, error) {
	if req == nil || len(req.Nodes) == 0 {
		return nil, nil, 0, &BatchError{Code: apiv1.CodeInvalidDAG, Reason: "batch has no nodes"}
	}
	if len(req.Nodes) > apiv1.MaxBatchNodes {
		return nil, nil, 0, &BatchError{
			Code:   apiv1.CodeInvalidDAG,
			Reason: fmt.Sprintf("%d nodes exceed the %d-node cap", len(req.Nodes), apiv1.MaxBatchNodes),
		}
	}
	index := make(map[string]int, len(req.Nodes))
	for i, n := range req.Nodes {
		if n.ID == "" {
			return nil, nil, 0, &BatchError{Code: apiv1.CodeInvalidDAG, Reason: fmt.Sprintf("node %d has an empty id", i)}
		}
		if _, dup := index[n.ID]; dup {
			return nil, nil, 0, &BatchError{Code: apiv1.CodeInvalidDAG, Node: n.ID, Reason: "duplicate node id"}
		}
		index[n.ID] = i
	}

	var pinned []string
	fail := func(err error) ([]*bnode, []string, int64, error) {
		s.store.unpinAll(pinned)
		return nil, nil, 0, err
	}
	nodes := make([]*bnode, len(req.Nodes))
	for i, n := range req.Nodes {
		bn := &bnode{node: n, aFrom: -1, bFrom: -1}
		var err error
		if bn.a, bn.aFrom, err = s.resolveOperand(n.A, n.ID, "a", index, bn, &pinned); err != nil {
			return fail(err)
		}
		b := n.B
		if b == nil {
			// B defaults to the same operand as A (the A·A convention).
			b = &n.A
		}
		if bn.b, bn.bFrom, err = s.resolveOperand(*b, n.ID, "b", index, bn, &pinned); err != nil {
			return fail(err)
		}
		seen := map[int]bool{}
		for _, from := range []int{bn.aFrom, bn.bFrom} {
			if from >= 0 && !seen[from] {
				seen[from] = true
				bn.deps = append(bn.deps, from)
			}
		}
		nodes[i] = bn
	}

	order, err := topoOrder(nodes)
	if err != nil {
		return fail(err)
	}

	// Shape propagation in topological order: every output shape is
	// rows(A)×cols(B), so the whole chain is checked statically. A
	// validation-failed input makes downstream shapes unknowable; those
	// nodes skip the check (they resolve skipped, never run).
	var total int64
	for _, i := range order {
		bn := nodes[i]
		if bn.failed != nil {
			// A validation-failed operand (unknown handle, bad spec) has no
			// shape to propagate; the node resolves failed, downstream skips.
			continue
		}
		aRows, aCols, aNnz, aOK := operandShape(bn.a, bn.aFrom, nodes)
		bRows, bCols, bNnz, bOK := operandShape(bn.b, bn.bFrom, nodes)
		if !aOK || !bOK {
			continue
		}
		if aCols != bRows {
			return fail(&BatchError{
				Code: apiv1.CodeShapeMismatch, Node: bn.node.ID,
				Reason: fmt.Sprintf("a is %dx%d but b is %dx%d", aRows, aCols, bRows, bCols),
			})
		}
		bn.outRows, bn.outCols, bn.shapeKnown = aRows, bCols, true
		// The standard row-product estimate: each nonzero of A meets the
		// average B row. Upstream outputs carry their own estimate.
		est := 2 * aNnz * bNnz / float64(maxInt(bRows, 1))
		bn.estFlops = int64(est)
		bn.estNnz = est / 2
		if dense := float64(bn.outRows) * float64(bn.outCols); bn.estNnz > dense {
			bn.estNnz = dense
		}
		total += bn.estFlops
	}
	return nodes, pinned, total, nil
}

// resolveOperand checks the exactly-one-field rule, resolves node
// references against the id index, and materializes concrete operands.
// Handle misses and spec errors are per-node failures recorded on bn;
// structural problems (no field, two fields, unknown node id) reject
// the whole batch.
func (s *Server) resolveOperand(op apiv1.Operand, nodeID, side string, index map[string]int, bn *bnode, pinned *[]string) (*spgemm.Matrix, int, error) {
	set := 0
	if op.Handle != "" {
		set++
	}
	if op.Node != "" {
		set++
	}
	if op.Spec != nil {
		set++
	}
	if set != 1 {
		return nil, -1, &BatchError{
			Code: apiv1.CodeInvalidDAG, Node: nodeID,
			Reason: fmt.Sprintf("operand %s must set exactly one of handle, node, spec (got %d)", side, set),
		}
	}
	switch {
	case op.Node != "":
		from, ok := index[op.Node]
		if !ok {
			return nil, -1, &BatchError{
				Code: apiv1.CodeInvalidDAG, Node: nodeID,
				Reason: fmt.Sprintf("operand %s references unknown node %q", side, op.Node),
			}
		}
		return nil, from, nil
	case op.Handle != "":
		// Resolve-and-pin in one store critical section: from here until
		// the batch finishes, eviction pressure cannot drop this handle.
		m, ok := s.store.getPin(op.Handle)
		if !ok {
			bn.fail(apiv1.CodeUnknownHandle, (&UnknownHandleError{Handle: op.Handle}).Error())
			return nil, -1, nil
		}
		*pinned = append(*pinned, op.Handle)
		return m, -1, nil
	default:
		m, err := op.Spec.Build()
		if err != nil {
			bn.fail(apiv1.CodeBadRequest, err.Error())
			return nil, -1, nil
		}
		return m, -1, nil
	}
}

// fail records the first validation failure of a node.
func (bn *bnode) fail(code, msg string) {
	if bn.failed == nil {
		bn.failed = &apiv1.ErrorResponse{Code: code, Error: msg}
	}
}

// operandShape reports an operand's dimensions and (estimated) nnz:
// exact for concrete matrices, propagated for upstream outputs, ok
// false when the upstream shape is unknowable.
func operandShape(m *spgemm.Matrix, from int, nodes []*bnode) (rows, cols int, nnz float64, ok bool) {
	if m != nil {
		return m.Rows, m.Cols, float64(m.Nnz()), true
	}
	up := nodes[from]
	if !up.shapeKnown {
		return 0, 0, 0, false
	}
	return up.outRows, up.outCols, up.estNnz, true
}

// topoOrder returns a topological order of the nodes (Kahn), or a
// BatchError naming a node on a cycle.
func topoOrder(nodes []*bnode) ([]int, error) {
	pending := make([]int, len(nodes))
	dependents := make([][]int, len(nodes))
	for i, bn := range nodes {
		pending[i] = len(bn.deps)
		for _, d := range bn.deps {
			dependents[d] = append(dependents[d], i)
		}
	}
	var order []int
	var queue []int
	for i := range nodes {
		if pending[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, d := range dependents[i] {
			if pending[d]--; pending[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if len(order) < len(nodes) {
		for i, bn := range nodes {
			if pending[i] > 0 {
				return nil, &BatchError{Code: apiv1.CodeInvalidDAG, Node: bn.node.ID, Reason: "dependency cycle"}
			}
		}
	}
	return order, nil
}

// planGroupKey identifies a plan-sharing group: nodes whose operands
// share both structural fingerprints and dimensions hit the same plan
// cache entry, so exactly one of them needs to run the cold symbolic
// phase.
type planGroupKey struct {
	fpA, fpB          uint64
	rows, aCols, cols int
}

// batchRun is the execution state of one admitted batch.
type batchRun struct {
	s     *Server
	req   *apiv1.BatchRequest
	nodes []*bnode

	mu       sync.Mutex
	results  []apiv1.NodeResult
	outputs  []*spgemm.Matrix
	resolved int
	groups   map[planGroupKey]chan struct{}

	ready chan int
}

// execute runs the DAG to completion on a bounded worker pool,
// releasing each node to the pool the moment its dependencies resolve.
func (r *batchRun) execute() {
	for i, bn := range r.nodes {
		bn.pending = len(bn.deps)
		if bn.pending == 0 {
			r.ready <- i
		}
	}
	workers := r.s.cfg.MaxConcurrent
	if workers > len(r.nodes) {
		workers = len(r.nodes)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range r.ready {
				res, out := r.runNode(i)
				r.resolve(i, res, out)
			}
		}()
	}
	wg.Wait()
}

// resolve publishes a node's result and releases its dependents; the
// last resolution closes the ready channel and ends the pool.
func (r *batchRun) resolve(i int, res apiv1.NodeResult, out *spgemm.Matrix) {
	var unblocked []int
	r.mu.Lock()
	r.results[i] = res
	r.outputs[i] = out
	r.resolved++
	for j, bn := range r.nodes {
		for _, d := range bn.deps {
			if d == i {
				if bn.pending--; bn.pending == 0 {
					unblocked = append(unblocked, j)
				}
				break
			}
		}
	}
	done := r.resolved == len(r.nodes)
	r.mu.Unlock()
	for _, j := range unblocked {
		r.ready <- j
	}
	if done {
		close(r.ready)
	}
}

// runNode executes one ready node: skip on failed upstream, route
// through the breaker, serialize the cold symbolic phase within its
// plan group, run with full per-job isolation, optionally persist.
func (r *batchRun) runNode(i int) (apiv1.NodeResult, *spgemm.Matrix) {
	s := r.s
	bn := r.nodes[i]
	res := apiv1.NodeResult{ID: bn.node.ID}
	if bn.failed != nil {
		res.Status = apiv1.StatusFailed
		res.Error = bn.failed
		return res, nil
	}
	// A failed or skipped dependency skips this node before any work.
	r.mu.Lock()
	for _, d := range bn.deps {
		if r.results[d].Status != apiv1.StatusOK {
			dep := r.nodes[d].node.ID
			r.mu.Unlock()
			res.Status = apiv1.StatusSkipped
			res.Error = &apiv1.ErrorResponse{
				Code:  apiv1.CodeUpstreamFailed,
				Error: fmt.Sprintf("serve: upstream node %q did not complete", dep),
			}
			return res, nil
		}
	}
	a, b := bn.a, bn.b
	if a == nil {
		a = r.outputs[bn.aFrom]
	}
	if b == nil {
		b = r.outputs[bn.bFrom]
	}
	r.mu.Unlock()

	requested := bn.node.Engine
	if requested == "" {
		requested = r.req.Engine
	}
	if requested == "" {
		requested = s.cfg.FallbackEngine
	}
	opts := s.jobOptions(Job{Opts: &spgemm.RunOptions{
		DeadlineSec: r.req.DeadlineSec,
		Threads:     r.req.Threads,
		NumGPUs:     r.req.NumGPUs,
	}})
	col := metrics.New()
	opts.Metrics = col

	// Breaker routing, exactly as single-job admission does it.
	s.mu.Lock()
	engine, degraded, probe := requested, false, false
	if br := s.breakerFor(requested); br != nil {
		fallback, p := br.route()
		if fallback {
			engine, degraded = s.cfg.FallbackEngine, true
		}
		probe = p
		br.committed(degraded, probe)
	}
	if degraded {
		s.metrics.Add(metrics.CounterServeDegraded, 1)
	}
	if probe {
		s.metrics.Add(metrics.CounterServeBreakerProbes, 1)
	}
	s.mu.Unlock()

	cost, err := spgemm.EstimateCost(engine, a, b, opts)
	if err != nil {
		res.Status = apiv1.StatusFailed
		res.Error = &apiv1.ErrorResponse{Code: ErrorCode(err), Error: err.Error()}
		return res, nil
	}

	if release := r.acquireGroup(a, b, opts); release != nil {
		defer release()
	}

	t := &task{
		a: a, b: b,
		requested: requested, engine: engine,
		degraded: degraded, probe: probe,
		cost: cost, opts: opts, col: col,
		done: make(chan *Result, 1),
	}
	out := s.run(t)
	s.mu.Lock()
	s.settleLocked(t, out)
	s.mu.Unlock()

	res.Engine, res.Degraded = out.Engine, out.Degraded
	if out.Err != nil {
		res.Status = apiv1.StatusFailed
		res.Error = &apiv1.ErrorResponse{Code: ErrorCode(out.Err), Error: out.Err.Error()}
		return res, nil
	}
	res.Status = apiv1.StatusOK
	res.Rows, res.Cols, res.NnzC = out.C.Rows, out.C.Cols, out.C.Nnz()
	res.Flops = cost.Flops
	if out.Report != nil {
		res.Seconds = out.Report.Seconds()
	}
	res.PlanCacheHit = out.Snapshot[metrics.CounterPlanCacheHits] > 0
	if bn.node.Store {
		handle, err := s.StoreMatrix(out.C)
		if err != nil {
			res.Status = apiv1.StatusFailed
			res.Error = &apiv1.ErrorResponse{Code: ErrorCode(err), Error: err.Error()}
			return res, nil
		}
		res.Handle = handle
	}
	return res, out.C
}

// acquireGroup serializes the cold symbolic phase within a plan group:
// the first node of a group (by operand fingerprints and dimensions)
// runs alone and the rest wait for its plan, so an N-node group pays
// one cold symbolic phase and N-1 numeric-only replays. Groups whose
// pattern is already warm in the shared cache — and nodes not using it
// (fault-injected bases, disabled cache) — skip serialization. The
// returned release is nil when no serialization happened; a leader's
// release opens the group even if its run failed (followers then race
// cold, which the cache's first-store-wins handles).
func (r *batchRun) acquireGroup(a, b *spgemm.Matrix, opts *spgemm.RunOptions) func() {
	plans := r.s.plans
	if plans == nil || opts.PlanCache != plans {
		return nil
	}
	key := planGroupKey{
		fpA: spgemm.Fingerprint(a), fpB: spgemm.Fingerprint(b),
		rows: a.Rows, aCols: a.Cols, cols: b.Cols,
	}
	if plans.HasPlanKey(key.fpA, key.fpB, key.rows, key.aCols, key.cols) {
		return nil
	}
	r.mu.Lock()
	gate, ok := r.groups[key]
	if !ok {
		gate = make(chan struct{})
		r.groups[key] = gate
		r.mu.Unlock()
		return func() { close(gate) } // leader
	}
	r.mu.Unlock()
	<-gate
	return nil
}

// response assembles the batch response: per-node results in request
// order plus batch-level accounting.
func (r *batchRun) response(total int64, elapsed time.Duration) *apiv1.BatchResponse {
	resp := &apiv1.BatchResponse{
		Nodes:          r.results,
		Seconds:        elapsed.Seconds(),
		EstimatedFlops: total,
	}
	var skipped int64
	for i := range r.results {
		switch r.results[i].Status {
		case apiv1.StatusOK:
			resp.Completed++
			if r.results[i].PlanCacheHit {
				resp.PlanCacheHits++
			} else {
				resp.PlanCacheMisses++
			}
		case apiv1.StatusFailed:
			resp.Failed++
		default:
			resp.Skipped++
			skipped++
		}
	}
	if n := resp.PlanCacheHits + resp.PlanCacheMisses; n > 0 {
		resp.PlanCacheHitRate = float64(resp.PlanCacheHits) / float64(n)
	}
	if skipped > 0 {
		r.s.metrics.Add(metrics.CounterServeBatchSkipped, skipped)
	}
	return resp
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
