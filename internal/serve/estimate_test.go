package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/spgemm"
)

// TestEstimationCountersAggregate submits an estimation-mode job (the
// mode inherited from the server's base options) and checks the
// symbolic_* counter family lands in the server-level snapshot and the
// /metricsz body, including the derived estimation hit rate.
func TestEstimationCountersAggregate(t *testing.T) {
	s := New(Config{
		MaxConcurrent: 1,
		Base:          spgemm.RunOptions{Symbolic: spgemm.SymbolicEstimate},
	})
	defer s.Drain(time.Second)
	a := spgemm.ER(300, 300, 0.03, 61)
	res, err := s.Submit(Job{Engine: "cpu", A: a, B: a})
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot[metrics.CounterSymbolicEstimatedRows] == 0 {
		t.Fatalf("job snapshot has no estimated rows: %v", res.Snapshot)
	}
	snap := s.Snapshot()
	if snap[metrics.CounterSymbolicEstimatedRows] != res.Snapshot[metrics.CounterSymbolicEstimatedRows] {
		t.Fatalf("server snapshot %d != job %d",
			snap[metrics.CounterSymbolicEstimatedRows], res.Snapshot[metrics.CounterSymbolicEstimatedRows])
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	rate, ok := body["symbolic_estimation_hit_rate"].(float64)
	if !ok {
		t.Fatalf("metricsz missing symbolic_estimation_hit_rate: %v", body)
	}
	if rate <= 0 || rate > 1 {
		t.Fatalf("estimation hit rate %v outside (0, 1]", rate)
	}
}

// TestEstimationModeInheritedByHTTPJobs drives the HTTP surface the
// way the daemon is used: /v1/multiply requests carry their own
// RunOptions (threads, deadline) with no symbolic field, and must
// still inherit the server's base symbolic mode.
func TestEstimationModeInheritedByHTTPJobs(t *testing.T) {
	s := New(Config{
		MaxConcurrent: 1,
		Base:          spgemm.RunOptions{Symbolic: spgemm.SymbolicEstimate},
	})
	defer s.Drain(time.Second)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"engine":"cpu","a":{"kind":"rmat","scale":9,"edge_factor":8,"seed":3}}`
	resp, err := http.Post(ts.URL+"/v1/multiply", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("multiply status %d", resp.StatusCode)
	}
	snap := s.Snapshot()
	if snap[metrics.CounterSymbolicEstimatedRows] == 0 {
		t.Fatalf("HTTP job did not inherit estimation mode: %v", snap)
	}
}

// TestEstimatedJobMatchesExact pins the serving-layer contract: the
// same job in estimation mode returns the product the exact mode
// returns, bit for bit.
func TestEstimatedJobMatchesExact(t *testing.T) {
	exactSrv := New(Config{MaxConcurrent: 1, PlanCacheBytes: -1})
	defer exactSrv.Drain(time.Second)
	estSrv := New(Config{
		MaxConcurrent:  1,
		PlanCacheBytes: -1,
		Base:           spgemm.RunOptions{Symbolic: spgemm.SymbolicEstimate},
	})
	defer estSrv.Drain(time.Second)

	a := spgemm.RMAT(9, 8, 0.57, 0.19, 0.19, 62)
	exact, err := exactSrv.Submit(Job{Engine: "cpu", A: a, B: a})
	if err != nil {
		t.Fatal(err)
	}
	est, err := estSrv.Submit(Job{Engine: "cpu", A: a, B: a})
	if err != nil {
		t.Fatal(err)
	}
	if !spgemm.Equal(exact.C, est.C, 0) {
		t.Fatal("estimated job product differs from exact")
	}
}
