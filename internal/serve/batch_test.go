package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/spgemm"
	apiv1 "repro/spgemm/api/v1"
)

// batchChain builds a k-stage Aᵏ chain request over one stored handle:
// s1 = A·A, s_k = s_{k-1}·A.
func batchChain(handle string, stages int) *apiv1.BatchRequest {
	nodes := []apiv1.BatchNode{{ID: "s1", A: apiv1.Operand{Handle: handle}}}
	for k := 2; k <= stages; k++ {
		nodes = append(nodes, apiv1.BatchNode{
			ID: nodeName(k),
			A:  apiv1.Operand{Node: nodeName(k - 1)},
			B:  &apiv1.Operand{Handle: handle},
		})
	}
	return &apiv1.BatchRequest{Engine: "cpu", Nodes: nodes}
}

func nodeName(k int) string { return "s" + string(rune('0'+k)) }

// TestBatchChainPipelines drives the tentpole scenario end to end: a
// 6-stage Aᵏ chain over a block-diagonal operand completes with
// exactly one cold symbolic phase, every later stage a plan-cache hit,
// intermediates never touching the matrix store, and the final product
// byte-equal to the sequentially computed reference.
func TestBatchChainPipelines(t *testing.T) {
	s := New(Config{MaxConcurrent: 2})
	defer s.Drain(0)
	a := spgemm.BlockDiag(16, 8, 7)
	h, err := s.StoreMatrix(a)
	if err != nil {
		t.Fatal(err)
	}

	req := batchChain(h, 6)
	req.Nodes[5].Store = true
	resp, err := s.SubmitBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Completed != 6 || resp.Failed != 0 || resp.Skipped != 0 {
		t.Fatalf("completed/failed/skipped = %d/%d/%d, want 6/0/0", resp.Completed, resp.Failed, resp.Skipped)
	}
	// Block-diagonal patterns are closed under multiplication: the whole
	// chain shares one plan, so exactly the first node runs cold.
	if resp.PlanCacheMisses != 1 || resp.PlanCacheHits != 5 {
		t.Fatalf("plan cache hits/misses = %d/%d, want 5/1", resp.PlanCacheHits, resp.PlanCacheMisses)
	}
	if resp.PlanCacheHitRate < 0.8 {
		t.Fatalf("plan cache hit rate = %.2f, want >= 0.8", resp.PlanCacheHitRate)
	}

	// Only the node that asked for store: true has a handle, and it
	// resolves to the reference product A⁷ (6 multiplies).
	for i, nr := range resp.Nodes {
		if nr.Status != apiv1.StatusOK {
			t.Fatalf("node %s status = %s", nr.ID, nr.Status)
		}
		if (nr.Handle != "") != (i == 5) {
			t.Fatalf("node %s handle = %q", nr.ID, nr.Handle)
		}
	}
	ref := a
	for k := 0; k < 6; k++ {
		if ref, err = spgemm.MultiplyCPU(ref, a, 0); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := s.Matrix(resp.Nodes[5].Handle)
	if !ok {
		t.Fatal("stored handle of the final stage not found")
	}
	if !spgemm.Equal(got, ref, 1e-9) {
		t.Fatal("chain product differs from the sequential reference")
	}

	snap := s.Snapshot()
	if snap[metrics.CounterServeBatchesAccepted] != 1 || snap[metrics.CounterServeBatchesCompleted] != 1 {
		t.Fatalf("batch counters = %d accepted / %d completed, want 1/1",
			snap[metrics.CounterServeBatchesAccepted], snap[metrics.CounterServeBatchesCompleted])
	}
	if jobs, flops := s.Inflight(); jobs != 0 || flops != 0 {
		t.Fatalf("inflight after batch = %d jobs / %d flops, want 0/0", jobs, flops)
	}
}

// TestBatchPlanGroupSharing submits independent same-structure nodes in
// one batch: the plan group runs one cold symbolic phase (the leader)
// and every sibling replays numeric-only, even though all of them were
// ready simultaneously.
func TestBatchPlanGroupSharing(t *testing.T) {
	s := New(Config{MaxConcurrent: 4})
	defer s.Drain(0)
	h, err := s.StoreMatrix(spgemm.BlockDiag(16, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	req := &apiv1.BatchRequest{Engine: "cpu", Nodes: []apiv1.BatchNode{
		{ID: "n1", A: apiv1.Operand{Handle: h}},
		{ID: "n2", A: apiv1.Operand{Handle: h}},
		{ID: "n3", A: apiv1.Operand{Handle: h}},
		{ID: "n4", A: apiv1.Operand{Handle: h}},
	}}
	resp, err := s.SubmitBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Completed != 4 {
		t.Fatalf("completed = %d, want 4", resp.Completed)
	}
	if resp.PlanCacheMisses != 1 || resp.PlanCacheHits != 3 {
		t.Fatalf("plan cache hits/misses = %d/%d, want 3/1", resp.PlanCacheHits, resp.PlanCacheMisses)
	}
}

// TestBatchValidation covers the whole-batch rejections: every case is
// a 400-class *BatchError with a machine-readable code, and nothing is
// admitted or run.
func TestBatchValidation(t *testing.T) {
	s := New(Config{})
	defer s.Drain(0)
	h, err := s.StoreMatrix(testMatrix())
	if err != nil {
		t.Fatal(err)
	}
	wide, err := s.StoreMatrix(spgemm.ER(40, 13, 0.2, 2))
	if err != nil {
		t.Fatal(err)
	}

	big := make([]apiv1.BatchNode, apiv1.MaxBatchNodes+1)
	for i := range big {
		big[i] = apiv1.BatchNode{ID: nodeName(i), A: apiv1.Operand{Handle: h}}
	}

	cases := []struct {
		name     string
		nodes    []apiv1.BatchNode
		wantCode string
		wantNode string
	}{
		{"empty batch", nil, apiv1.CodeInvalidDAG, ""},
		{"oversized batch", big, apiv1.CodeInvalidDAG, ""},
		{"empty id", []apiv1.BatchNode{{A: apiv1.Operand{Handle: h}}}, apiv1.CodeInvalidDAG, ""},
		{"duplicate id", []apiv1.BatchNode{
			{ID: "x", A: apiv1.Operand{Handle: h}},
			{ID: "x", A: apiv1.Operand{Handle: h}},
		}, apiv1.CodeInvalidDAG, "x"},
		{"unknown node reference", []apiv1.BatchNode{
			{ID: "x", A: apiv1.Operand{Node: "ghost"}},
		}, apiv1.CodeInvalidDAG, "x"},
		{"no operand field", []apiv1.BatchNode{
			{ID: "x", A: apiv1.Operand{}},
		}, apiv1.CodeInvalidDAG, "x"},
		{"two operand fields", []apiv1.BatchNode{
			{ID: "x", A: apiv1.Operand{Handle: h, Node: "x"}},
		}, apiv1.CodeInvalidDAG, "x"},
		{"two-node cycle", []apiv1.BatchNode{
			{ID: "x", A: apiv1.Operand{Node: "y"}},
			{ID: "y", A: apiv1.Operand{Node: "x"}},
		}, apiv1.CodeInvalidDAG, ""},
		{"self cycle", []apiv1.BatchNode{
			{ID: "x", A: apiv1.Operand{Node: "x"}},
		}, apiv1.CodeInvalidDAG, "x"},
		{"direct shape mismatch", []apiv1.BatchNode{
			{ID: "x", A: apiv1.Operand{Handle: wide}, B: &apiv1.Operand{Handle: h}},
		}, apiv1.CodeShapeMismatch, "x"},
		{"propagated shape mismatch", []apiv1.BatchNode{
			// x is 40x13; feeding it into y against the 40x40 handle can
			// only be caught through static shape propagation.
			{ID: "x", A: apiv1.Operand{Handle: h}, B: &apiv1.Operand{Handle: wide}},
			{ID: "y", A: apiv1.Operand{Node: "x"}, B: &apiv1.Operand{Handle: h}},
		}, apiv1.CodeShapeMismatch, "y"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := s.Snapshot()
			_, err := s.SubmitBatch(&apiv1.BatchRequest{Engine: "cpu", Nodes: tc.nodes})
			var be *BatchError
			if !errors.As(err, &be) {
				t.Fatalf("err = %v, want *BatchError", err)
			}
			if be.Code != tc.wantCode {
				t.Fatalf("code = %q, want %q", be.Code, tc.wantCode)
			}
			if tc.wantNode != "" && be.Node != tc.wantNode {
				t.Fatalf("node = %q, want %q", be.Node, tc.wantNode)
			}
			after := s.Snapshot()
			if after[metrics.CounterServeBatchesAccepted] != before[metrics.CounterServeBatchesAccepted] {
				t.Fatal("rejected batch was admitted")
			}
		})
	}
}

// TestBatchUnknownHandleFailsNode checks per-node failure semantics: a
// node whose handle is gone fails with code unknown_handle, every node
// downstream of it is skipped with code upstream_failed, and unrelated
// nodes complete — all in one 200-class response.
func TestBatchUnknownHandleFailsNode(t *testing.T) {
	s := New(Config{MaxConcurrent: 2})
	defer s.Drain(0)
	h, err := s.StoreMatrix(testMatrix())
	if err != nil {
		t.Fatal(err)
	}
	doomed, err := s.StoreMatrix(spgemm.ER(40, 40, 0.2, 9))
	if err != nil {
		t.Fatal(err)
	}
	if !s.DeleteMatrix(doomed) {
		t.Fatal("delete failed")
	}

	resp, err := s.SubmitBatch(&apiv1.BatchRequest{Engine: "cpu", Nodes: []apiv1.BatchNode{
		{ID: "gone", A: apiv1.Operand{Handle: doomed}},
		{ID: "child", A: apiv1.Operand{Node: "gone"}, B: &apiv1.Operand{Handle: h}},
		{ID: "grandchild", A: apiv1.Operand{Node: "child"}, B: &apiv1.Operand{Handle: h}},
		{ID: "healthy", A: apiv1.Operand{Handle: h}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Completed != 1 || resp.Failed != 1 || resp.Skipped != 2 {
		t.Fatalf("completed/failed/skipped = %d/%d/%d, want 1/1/2", resp.Completed, resp.Failed, resp.Skipped)
	}
	byID := map[string]apiv1.NodeResult{}
	for _, nr := range resp.Nodes {
		byID[nr.ID] = nr
	}
	if nr := byID["gone"]; nr.Status != apiv1.StatusFailed || nr.Error == nil || nr.Error.Code != apiv1.CodeUnknownHandle {
		t.Fatalf("gone = %+v", nr)
	}
	for _, id := range []string{"child", "grandchild"} {
		if nr := byID[id]; nr.Status != apiv1.StatusSkipped || nr.Error == nil || nr.Error.Code != apiv1.CodeUpstreamFailed {
			t.Fatalf("%s = %+v", id, nr)
		}
	}
	if nr := byID["healthy"]; nr.Status != apiv1.StatusOK {
		t.Fatalf("healthy = %+v", nr)
	}
	if snap := s.Snapshot(); snap[metrics.CounterServeBatchSkipped] != 2 {
		t.Fatalf("skipped counter = %d, want 2", snap[metrics.CounterServeBatchSkipped])
	}
}

// TestBatchPanicPartialFailure injects a panicking engine into one
// node: that node fails with code job_panic, its dependent is skipped,
// the sibling chain completes, and the server stays healthy for later
// submissions (panic isolation is per node).
func TestBatchPanicPartialFailure(t *testing.T) {
	registerTestEngines()
	s := New(Config{MaxConcurrent: 2})
	defer s.Drain(0)
	h, err := s.StoreMatrix(testMatrix())
	if err != nil {
		t.Fatal(err)
	}

	resp, err := s.SubmitBatch(&apiv1.BatchRequest{Engine: "cpu", Nodes: []apiv1.BatchNode{
		{ID: "bad", Engine: "boom", A: apiv1.Operand{Handle: h}},
		{ID: "dead", A: apiv1.Operand{Node: "bad"}, B: &apiv1.Operand{Handle: h}},
		{ID: "ok1", A: apiv1.Operand{Handle: h}},
		{ID: "ok2", A: apiv1.Operand{Node: "ok1"}, B: &apiv1.Operand{Handle: h}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Completed != 2 || resp.Failed != 1 || resp.Skipped != 1 {
		t.Fatalf("completed/failed/skipped = %d/%d/%d, want 2/1/1", resp.Completed, resp.Failed, resp.Skipped)
	}
	byID := map[string]apiv1.NodeResult{}
	for _, nr := range resp.Nodes {
		byID[nr.ID] = nr
	}
	if nr := byID["bad"]; nr.Status != apiv1.StatusFailed || nr.Error == nil || nr.Error.Code != apiv1.CodeJobPanic {
		t.Fatalf("bad = %+v", nr)
	}
	if nr := byID["dead"]; nr.Status != apiv1.StatusSkipped || nr.Error == nil || nr.Error.Code != apiv1.CodeUpstreamFailed {
		t.Fatalf("dead = %+v", nr)
	}

	// The panic charged the breaker and the panic counter, not the batch
	// accounting: a fresh submission still works.
	if snap := s.Snapshot(); snap[metrics.CounterServePanicked] != 1 {
		t.Fatalf("panic counter = %d, want 1", snap[metrics.CounterServePanicked])
	}
	if _, err := s.Submit(Job{Engine: "cpu", AHandle: h, BHandle: h}); err != nil {
		t.Fatalf("server unhealthy after batch panic: %v", err)
	}
}

// TestBatchOverloadShedsWhole pins a job in flight and submits a batch
// that exceeds the flop budget: the whole DAG is shed as one unit with
// a typed OverloadError carrying a retry hint, and nothing ran.
func TestBatchOverloadShedsWhole(t *testing.T) {
	registerTestEngines()
	gate := openGate()
	s := New(Config{MaxConcurrent: 1, MaxInflightFlops: 1000})
	defer s.Drain(0)
	a := testMatrix()
	h, err := s.StoreMatrix(a)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = s.Submit(Job{Engine: "block", A: a, B: a})
	}()
	waitInflight(t, s, 1)

	_, err = s.SubmitBatch(batchChain(h, 4))
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want *OverloadError", err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("retry hint = %v, want > 0", oe.RetryAfter)
	}
	if ErrorCode(err) != apiv1.CodeOverloaded {
		t.Fatalf("code = %q, want %q", ErrorCode(err), apiv1.CodeOverloaded)
	}

	close(gate)
	<-done
}

// TestBatchDrainingRejects drains the server and submits a batch: the
// typed DrainingError maps to code draining (HTTP 503), matching the
// single-job surface.
func TestBatchDrainingRejects(t *testing.T) {
	s := New(Config{})
	h, err := s.StoreMatrix(testMatrix())
	if err != nil {
		t.Fatal(err)
	}
	s.Drain(0)
	_, err = s.SubmitBatch(batchChain(h, 2))
	var de *DrainingError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DrainingError", err)
	}
	if ErrorCode(err) != apiv1.CodeDraining {
		t.Fatalf("code = %q, want %q", ErrorCode(err), apiv1.CodeDraining)
	}
}

// TestHTTPBatch exercises the /v1/batch route: a valid DAG returns 200
// with per-node statuses, an invalid DAG 400 with code invalid_dag in
// the shared envelope.
func TestHTTPBatch(t *testing.T) {
	s := New(Config{MaxConcurrent: 2})
	defer s.Drain(0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cli := apiv1.NewClient(ts.URL)

	mr, err := cli.StoreMatrix(apiv1.MatrixRequest{Spec: &apiv1.MatrixSpec{Kind: "blocks", N: 64, Block: 8, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cli.Batch(*batchChain(mr.Handle, 3))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Completed != 3 || len(resp.Nodes) != 3 {
		t.Fatalf("batch response = %+v", resp)
	}

	_, err = cli.Batch(apiv1.BatchRequest{Engine: "cpu", Nodes: []apiv1.BatchNode{
		{ID: "x", A: apiv1.Operand{Node: "x"}},
	}})
	var ae *apiv1.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *apiv1.APIError", err)
	}
	if ae.Status != http.StatusBadRequest || ae.Code != apiv1.CodeInvalidDAG {
		t.Fatalf("cycle rejection = %d %q, want 400 %q", ae.Status, ae.Code, apiv1.CodeInvalidDAG)
	}
}

// TestHTTPMethodNotAllowed sweeps every route with a wrong method: all
// of them answer 405 with the Allow header and the envelope's
// method_not_allowed code — the uniform HTTP semantics satellite.
func TestHTTPMethodNotAllowed(t *testing.T) {
	s := New(Config{})
	defer s.Drain(0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	routes := []struct {
		method, path, allow string
	}{
		{http.MethodPost, "/healthz", http.MethodGet},
		{http.MethodPost, "/readyz", http.MethodGet},
		{http.MethodDelete, "/metricsz", http.MethodGet},
		{http.MethodGet, "/v1/multiply", http.MethodPost},
		{http.MethodGet, "/v1/batch", http.MethodPost},
		{http.MethodPut, "/v1/matrices", http.MethodPost},
		{http.MethodGet, "/v1/matrices/bulk", http.MethodPost},
		{http.MethodPut, "/v1/matrices/deadbeef", "DELETE, GET"},
		{http.MethodGet, "/v1/admin/drain", http.MethodPost},
	}
	for _, rt := range routes {
		req, err := http.NewRequest(rt.method, ts.URL+rt.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var body errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", rt.method, rt.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != rt.allow {
			t.Errorf("%s %s Allow = %q, want %q", rt.method, rt.path, got, rt.allow)
		}
		if body.Code != apiv1.CodeMethodNotAllowed {
			t.Errorf("%s %s code = %q, want %q", rt.method, rt.path, body.Code, apiv1.CodeMethodNotAllowed)
		}
	}
}

// TestHTTP429CarriesRetryAfterBody pins the envelope contract on 429:
// the machine-readable code and the retry hint appear in the body, not
// only the header.
func TestHTTP429CarriesRetryAfterBody(t *testing.T) {
	registerTestEngines()
	gate := openGate()
	s := New(Config{MaxConcurrent: 1, MaxInflightFlops: 1000})
	defer s.Drain(0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a := testMatrix()
	h, err := s.StoreMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = s.Submit(Job{Engine: "block", A: a, B: a})
	}()
	waitInflight(t, s, 1)

	body, err := json.Marshal(batchChain(h, 2))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var envelope errorResponse
	_ = json.NewDecoder(resp.Body).Decode(&envelope)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if envelope.Code != apiv1.CodeOverloaded || envelope.RetryAfterSec <= 0 {
		t.Fatalf("envelope = %+v, want code %q with retry_after_sec > 0", envelope, apiv1.CodeOverloaded)
	}

	close(gate)
	<-done
}
