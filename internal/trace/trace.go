// Package trace renders and analyzes simulated-execution timelines:
// the Gantt-style schedules of the paper's Figures 5 and 6, and
// per-lane utilization breakdowns.
//
// A timeline comes from internal/sim's span trace. Rendering delegates
// to internal/metrics — the shared renderer of both time domains — so
// a simulated timeline and a metrics collector print identically; this
// package keeps the sim-typed API plus the schedule analyses
// (LaneOrder, Overlap) that only make sense on one virtual clock.
package trace

import (
	"io"
	"sort"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Gantt renders the timeline as one row per lane, using width
// character cells over the span [0, end of timeline]. Cells covered by
// a span show '#'; idle cells '.'.
func Gantt(tl []sim.Span, width int) string {
	return metrics.Gantt(metrics.FromSim(tl), width)
}

// Utilization reports, per lane, the busy time and its fraction of the
// makespan.
type Utilization struct {
	Lane     string
	Busy     sim.Duration
	Fraction float64
}

// Utilizations computes the per-lane busy fractions of a timeline.
func Utilizations(tl []sim.Span) []Utilization {
	us := metrics.Utilizations(metrics.FromSim(tl))
	out := make([]Utilization, len(us))
	for i, u := range us {
		out[i] = Utilization{Lane: u.Lane, Busy: sim.Duration(u.BusyNs), Fraction: u.Fraction}
	}
	return out
}

// FprintUtilization writes a utilization table.
func FprintUtilization(w io.Writer, tl []sim.Span) error {
	return metrics.FprintUtilization(w, metrics.FromSim(tl))
}

// LaneOrder returns the labels of one lane's spans in start-time order
// — tests use it to assert the Figure 6 transfer schedule.
func LaneOrder(tl []sim.Span, lane string) []string {
	var spans []sim.Span
	for _, s := range tl {
		if s.Lane == lane {
			spans = append(spans, s)
		}
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Label
	}
	return out
}

// Overlap reports the total time during which both lanes were busy
// simultaneously — the quantity asynchronous execution maximizes.
func Overlap(tl []sim.Span, laneA, laneB string) sim.Duration {
	var as, bs []sim.Span
	for _, s := range tl {
		switch s.Lane {
		case laneA:
			as = append(as, s)
		case laneB:
			bs = append(bs, s)
		}
	}
	var total sim.Duration
	for _, a := range as {
		for _, b := range bs {
			lo, hi := a.Start, a.End
			if b.Start > lo {
				lo = b.Start
			}
			if b.End < hi {
				hi = b.End
			}
			if hi > lo {
				total += sim.Duration(hi - lo)
			}
		}
	}
	return total
}
