// Package trace renders and analyzes simulated-execution timelines:
// the Gantt-style schedules of the paper's Figures 5 and 6, and
// per-lane utilization breakdowns.
//
// A timeline comes from internal/sim's span trace. Rendering is plain
// text so schedules can be inspected in tests and printed by
// cmd/spgemm-bench -exp=timeline.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Gantt renders the timeline as one row per lane, using width
// character cells over the span [0, end of timeline]. Cells covered by
// a span show '#'; idle cells '.'.
func Gantt(tl []sim.Span, width int) string {
	if len(tl) == 0 {
		return "(empty timeline)\n"
	}
	var end sim.Time
	lanes := map[string][]sim.Span{}
	var order []string
	for _, s := range tl {
		if s.End > end {
			end = s.End
		}
		if _, ok := lanes[s.Lane]; !ok {
			order = append(order, s.Lane)
		}
		lanes[s.Lane] = append(lanes[s.Lane], s)
	}
	sort.Strings(order)
	if end == 0 {
		end = 1
	}

	var b strings.Builder
	nameW := 0
	for _, l := range order {
		if len(l) > nameW {
			nameW = len(l)
		}
	}
	cell := func(lane string, i int) byte {
		lo := sim.Time(int64(end) * int64(i) / int64(width))
		hi := sim.Time(int64(end) * int64(i+1) / int64(width))
		if hi == lo {
			hi = lo + 1
		}
		for _, s := range lanes[lane] {
			if s.Start < hi && s.End > lo {
				return '#'
			}
		}
		return '.'
	}
	for _, lane := range order {
		fmt.Fprintf(&b, "%-*s |", nameW, lane)
		for i := 0; i < width; i++ {
			b.WriteByte(cell(lane, i))
		}
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "%-*s  0%*s\n", nameW, "", width-1, fmt.Sprintf("%.3fms", sim.SecondsAt(end)*1e3))
	return b.String()
}

// Utilization reports, per lane, the busy time and its fraction of the
// makespan.
type Utilization struct {
	Lane     string
	Busy     sim.Duration
	Fraction float64
}

// Utilizations computes the per-lane busy fractions of a timeline.
func Utilizations(tl []sim.Span) []Utilization {
	var end sim.Time
	busy := map[string]sim.Duration{}
	var order []string
	for _, s := range tl {
		if s.End > end {
			end = s.End
		}
		if _, ok := busy[s.Lane]; !ok {
			order = append(order, s.Lane)
		}
		busy[s.Lane] += sim.Duration(s.End - s.Start)
	}
	sort.Strings(order)
	out := make([]Utilization, 0, len(order))
	for _, lane := range order {
		u := Utilization{Lane: lane, Busy: busy[lane]}
		if end > 0 {
			u.Fraction = float64(busy[lane]) / float64(end)
		}
		out = append(out, u)
	}
	return out
}

// FprintUtilization writes a utilization table.
func FprintUtilization(w io.Writer, tl []sim.Span) error {
	for _, u := range Utilizations(tl) {
		if _, err := fmt.Fprintf(w, "%-8s %8.3f ms  %5.1f%%\n", u.Lane, sim.SecondsOf(u.Busy)*1e3, u.Fraction*100); err != nil {
			return err
		}
	}
	return nil
}

// LaneOrder returns the labels of one lane's spans in start-time order
// — tests use it to assert the Figure 6 transfer schedule.
func LaneOrder(tl []sim.Span, lane string) []string {
	var spans []sim.Span
	for _, s := range tl {
		if s.Lane == lane {
			spans = append(spans, s)
		}
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Label
	}
	return out
}

// Overlap reports the total time during which both lanes were busy
// simultaneously — the quantity asynchronous execution maximizes.
func Overlap(tl []sim.Span, laneA, laneB string) sim.Duration {
	var as, bs []sim.Span
	for _, s := range tl {
		switch s.Lane {
		case laneA:
			as = append(as, s)
		case laneB:
			bs = append(bs, s)
		}
	}
	var total sim.Duration
	for _, a := range as {
		for _, b := range bs {
			lo, hi := a.Start, a.End
			if b.Start > lo {
				lo = b.Start
			}
			if b.End < hi {
				hi = b.End
			}
			if hi > lo {
				total += sim.Duration(hi - lo)
			}
		}
	}
	return total
}
