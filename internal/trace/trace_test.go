package trace

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/matgen"
	"repro/internal/sim"
)

func sampleTimeline() []sim.Span {
	return []sim.Span{
		{Start: 0, End: sim.Time(sim.Seconds(1)), Lane: "kernel", Label: "k0"},
		{Start: sim.Time(sim.Seconds(1)), End: sim.Time(sim.Seconds(3)), Lane: "d2h", Label: "t0"},
		{Start: sim.Time(sim.Seconds(2)), End: sim.Time(sim.Seconds(3)), Lane: "kernel", Label: "k1"},
	}
}

func TestGantt(t *testing.T) {
	g := Gantt(sampleTimeline(), 30)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 3 { // two lanes + axis
		t.Fatalf("gantt lines:\n%s", g)
	}
	if !strings.HasPrefix(lines[0], "d2h") || !strings.HasPrefix(lines[1], "kernel") {
		t.Fatalf("lane order wrong:\n%s", g)
	}
	// The kernel lane must be busy at the start, idle in the middle,
	// busy at the end.
	kernelRow := lines[1][strings.Index(lines[1], "|")+1:]
	if kernelRow[0] != '#' || kernelRow[len("123456789012345")] != '.' {
		t.Fatalf("kernel occupancy wrong: %q", kernelRow)
	}
	if Gantt(nil, 10) != "(empty timeline)\n" {
		t.Fatal("empty timeline rendering wrong")
	}
}

func TestUtilizations(t *testing.T) {
	us := Utilizations(sampleTimeline())
	if len(us) != 2 {
		t.Fatalf("got %d lanes", len(us))
	}
	// makespan 3s: d2h busy 2s (2/3), kernel busy 2s (2/3).
	for _, u := range us {
		if u.Busy != sim.Seconds(2) {
			t.Fatalf("%s busy %v", u.Lane, u.Busy)
		}
		if u.Fraction < 0.66 || u.Fraction > 0.67 {
			t.Fatalf("%s fraction %v", u.Lane, u.Fraction)
		}
	}
	var buf bytes.Buffer
	if err := FprintUtilization(&buf, sampleTimeline()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "kernel") {
		t.Fatalf("utilization table:\n%s", buf.String())
	}
}

func TestLaneOrder(t *testing.T) {
	order := LaneOrder(sampleTimeline(), "kernel")
	if len(order) != 2 || order[0] != "k0" || order[1] != "k1" {
		t.Fatalf("order = %v", order)
	}
}

func TestOverlap(t *testing.T) {
	// kernel k1 [2,3] overlaps d2h t0 [1,3] for 1s.
	if got := Overlap(sampleTimeline(), "kernel", "d2h"); got != sim.Seconds(1) {
		t.Fatalf("overlap = %v", got)
	}
	if got := Overlap(sampleTimeline(), "kernel", "nothing"); got != 0 {
		t.Fatalf("overlap with empty lane = %v", got)
	}
}

// TestAsyncScheduleMatchesFigure6 is the schedule-correctness test of
// the asynchronous pipeline: on the device-to-host engine, chunk i's
// row-info transfer must be followed by chunk i-1's first output
// portion, then chunk i's nnz info, then chunk i-1's second portion —
// the numbered order of the paper's Figure 6.
func TestAsyncScheduleMatchesFigure6(t *testing.T) {
	a := matgen.RMAT(9, 8, 0.57, 0.19, 0.19, 55)
	cfg := gpusim.ScaledV100Config(64 << 20)
	_, _, tl, err := core.RunTraced(a, a, cfg, core.Options{RowPanels: 1, ColPanels: 3, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	got := LaneOrder(tl, "d2h")
	want := []string{
		"row info c0",
		"nnz info c0",
		"row info c1",
		"output p1 c0", // overlaps symbolic of c1
		"nnz info c1",
		"output p2 c0", // overlaps numeric of c1
		"row info c2",
		"output p1 c1",
		"nnz info c2",
		"output p2 c1",
		"output p1 c2",
		"output p2 c2",
	}
	if len(got) != len(want) {
		t.Fatalf("d2h schedule has %d transfers, want %d:\n%v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("d2h schedule position %d = %q, want %q\nfull: %v", i, got[i], want[i], got)
		}
	}
}

// TestAsyncOverlapExceedsSync verifies the async pipeline actually
// overlaps kernels with device-to-host transfers while the synchronous
// baseline does not.
func TestAsyncOverlapExceedsSync(t *testing.T) {
	a := matgen.RMAT(10, 10, 0.57, 0.19, 0.19, 56)
	cfg := gpusim.ScaledV100Config(128 << 20)

	_, _, syncTl, err := core.RunTraced(a, a, cfg, core.Options{RowPanels: 3, ColPanels: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, _, asyncTl, err := core.RunTraced(a, a, cfg, core.Options{RowPanels: 3, ColPanels: 3, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	syncOv := Overlap(syncTl, "kernel", "d2h")
	asyncOv := Overlap(asyncTl, "kernel", "d2h")
	if syncOv != 0 {
		t.Fatalf("synchronous run overlapped kernels with D2H for %v", syncOv)
	}
	if asyncOv == 0 {
		t.Fatal("asynchronous run achieved no kernel/D2H overlap")
	}
}

func TestGanttOnRealRun(t *testing.T) {
	a := matgen.Band(400, 3, 57)
	cfg := gpusim.ScaledV100Config(32 << 20)
	_, _, tl, err := core.RunTraced(a, a, cfg, core.Options{RowPanels: 2, ColPanels: 2, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	g := Gantt(tl, 60)
	for _, lane := range []string{"kernel", "d2h", "h2d"} {
		if !strings.Contains(g, lane) {
			t.Fatalf("gantt missing lane %s:\n%s", lane, g)
		}
	}
	// Smoke the formatting helpers on the real data too.
	var buf bytes.Buffer
	if err := FprintUtilization(&buf, tl); err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		fmt.Println(g)
		fmt.Println(buf.String())
	}
}
