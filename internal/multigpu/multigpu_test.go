package multigpu

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpuspgemm"
	"repro/internal/csr"
	"repro/internal/gpusim"
	"repro/internal/matgen"
)

func cfg() gpusim.DeviceConfig { return gpusim.ScaledV100Config(64 << 20) }

func TestAssignBalanced(t *testing.T) {
	flops := []int64{100, 90, 50, 40, 30, 20, 10, 10}
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7}
	shares := Assign(ids, flops, 2)
	if len(shares) != 2 {
		t.Fatalf("%d shares", len(shares))
	}
	loads := make([]int64, 2)
	seen := map[int]bool{}
	for w, share := range shares {
		var prev int64 = 1 << 62
		for _, id := range share {
			if seen[id] {
				t.Fatalf("chunk %d assigned twice", id)
			}
			seen[id] = true
			loads[w] += flops[id]
			if flops[id] > prev {
				t.Fatalf("worker %d share not flop-sorted: %v", w, share)
			}
			prev = flops[id]
		}
	}
	if len(seen) != len(ids) {
		t.Fatalf("assigned %d of %d chunks", len(seen), len(ids))
	}
	// LPT on this input: loads 100+40+30+10=180 vs 90+50+20+10=170.
	diff := loads[0] - loads[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > 20 {
		t.Fatalf("imbalanced loads %v", loads)
	}
}

func TestAssignMoreWorkersThanChunks(t *testing.T) {
	shares := Assign([]int{0, 1}, []int64{5, 3}, 4)
	nonEmpty := 0
	for _, s := range shares {
		if len(s) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 2 {
		t.Fatalf("%d non-empty shares, want 2", nonEmpty)
	}
}

func TestRunMatchesSequential(t *testing.T) {
	a := matgen.RMAT(10, 8, 0.57, 0.19, 0.19, 61)
	want, err := cpuspgemm.Sequential(a, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, gpus := range []int{1, 2, 3} {
		for _, useCPU := range []bool{false, true} {
			got, st, err := Run(a, a, cfg(), Options{
				Core:    core.Options{RowPanels: 3, ColPanels: 3},
				NumGPUs: gpus,
				UseCPU:  useCPU,
			})
			if err != nil {
				t.Fatalf("gpus=%d cpu=%v: %v", gpus, useCPU, err)
			}
			if !csr.Equal(got, want, 1e-9) {
				t.Fatalf("gpus=%d cpu=%v: wrong product", gpus, useCPU)
			}
			var chunks int
			for _, n := range st.GPUChunks {
				chunks += n
			}
			chunks += st.CPUChunks
			if chunks != 9 {
				t.Fatalf("gpus=%d cpu=%v: %d chunks processed", gpus, useCPU, chunks)
			}
			if st.GFLOPS <= 0 {
				t.Fatalf("gpus=%d: bad stats %+v", gpus, st)
			}
		}
	}
}

func TestScalingImproves(t *testing.T) {
	a := matgen.RMAT(11, 10, 0.57, 0.19, 0.19, 62)
	var prev float64
	for _, gpus := range []int{1, 2, 4} {
		_, st, err := Run(a, a, cfg(), Options{
			Core:    core.Options{RowPanels: 4, ColPanels: 4},
			NumGPUs: gpus,
		})
		if err != nil {
			t.Fatal(err)
		}
		if prev > 0 && st.TotalSec >= prev {
			t.Fatalf("%d GPUs (%.4fs) not faster than fewer (%.4fs)", gpus, st.TotalSec, prev)
		}
		prev = st.TotalSec
	}
}

func TestScalingEfficiencyBounded(t *testing.T) {
	// Speedup cannot exceed the GPU count (no superlinear artifacts).
	a := matgen.Band(6000, 5, 63)
	_, one, err := Run(a, a, cfg(), Options{Core: core.Options{RowPanels: 4, ColPanels: 4}, NumGPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, four, err := Run(a, a, cfg(), Options{Core: core.Options{RowPanels: 4, ColPanels: 4}, NumGPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	speedup := one.TotalSec / four.TotalSec
	if speedup > 4.01 {
		t.Fatalf("superlinear speedup %.2f", speedup)
	}
	if speedup < 1.2 {
		t.Fatalf("4 GPUs gained only %.2fx", speedup)
	}
}

func TestCPUAssistHelps(t *testing.T) {
	a := matgen.RMAT(11, 10, 0.57, 0.19, 0.19, 64)
	opts := Options{Core: core.Options{RowPanels: 4, ColPanels: 4}, NumGPUs: 2}
	_, noCPU, err := Run(a, a, cfg(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.UseCPU = true
	_, withCPU, err := Run(a, a, cfg(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if withCPU.TotalSec >= noCPU.TotalSec {
		t.Fatalf("CPU assist did not help: %.4fs vs %.4fs", withCPU.TotalSec, noCPU.TotalSec)
	}
}
