// Package multigpu extends the out-of-core framework to several GPUs
// on one node — the scaling direction the paper's conclusion points to
// ("our ultimate goal of continuing to scale SpGEMM computations to
// arbitrarily large matrices").
//
// The chunk grid of Algorithm 3 already makes chunks independent, so
// multi-GPU execution is a scheduling problem: chunks are sorted by
// decreasing flops and assigned greedily to the least-loaded GPU (LPT
// scheduling), each GPU runs the asynchronous out-of-core pipeline
// over its share, and an optional CPU worker takes a trailing share of
// the flops exactly as in the hybrid engine. Every simulated GPU has
// its own DMA engines (cards on separate PCIe slots); all share one
// virtual clock.
package multigpu

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cpuspgemm"
	"repro/internal/csr"
	"repro/internal/gpusim"
	"repro/internal/hybrid"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/speck"
)

// Options configures a multi-GPU run.
type Options struct {
	// Core configures the chunk grid and the per-GPU pipeline (Async
	// is forced on).
	Core core.Options
	// NumGPUs is the device count; 0 means 1.
	NumGPUs int
	// UseCPU adds a CPU worker taking the trailing (1-Ratio) share of
	// flops.
	UseCPU bool
	// Ratio is the collective GPU flop share when UseCPU is set; zero
	// means hybrid.DefaultRatio.
	Ratio float64
	// Host is the CPU cost model; zero value means the default.
	Host hybrid.HostModel
	// Metrics is an optional observability sink receiving the shared
	// timeline of all devices plus aggregate counters.
	Metrics *metrics.Collector
}

// Stats reports a multi-GPU run.
type Stats struct {
	// TotalSec is the simulated makespan; Flops and GFLOPS as usual.
	TotalSec float64
	Flops    int64
	GFLOPS   float64
	NnzC     int64
	// GPUChunks[i] is the chunk count GPU i processed; CPUChunks the
	// CPU worker's count.
	GPUChunks []int
	CPUChunks int
	// GPUBusySec[i] is the finish time of GPU i's worker.
	GPUBusySec []float64
	// BytesH2D and BytesD2H sum the payload bytes moved by all devices.
	BytesH2D, BytesD2H int64
}

// Seconds returns the simulated makespan; part of metrics.Report.
func (s Stats) Seconds() float64 { return s.TotalSec }

// FlopCount returns the multiply-add flop count (x2) of the product.
func (s Stats) FlopCount() int64 { return s.Flops }

// Throughput returns the run's GFLOPS.
func (s Stats) Throughput() float64 { return s.GFLOPS }

// OutputNnz returns the product's non-zero count.
func (s Stats) OutputNnz() int64 { return s.NnzC }

// Counters returns the flat key/value snapshot of the run.
func (s Stats) Counters() map[string]int64 {
	var gpuChunks int64
	for _, n := range s.GPUChunks {
		gpuChunks += int64(n)
	}
	return map[string]int64{
		metrics.CounterFlops:    s.Flops,
		metrics.CounterBytesH2D: s.BytesH2D,
		metrics.CounterBytesD2H: s.BytesD2H,
		metrics.CounterChunks:   gpuChunks + int64(s.CPUChunks),
		metrics.CounterNnzC:     s.NnzC,
		"gpus":                  int64(len(s.GPUChunks)),
		"gpu_chunks":            gpuChunks,
		"cpu_chunks":            int64(s.CPUChunks),
	}
}

// Assign distributes chunk ids over n workers with longest-processing-
// time-first greedy scheduling on their flop counts. It returns one id
// list per worker, each sorted by decreasing flops (the §IV-C order).
func Assign(ids []int, flops []int64, n int) [][]int {
	sorted := append([]int(nil), ids...)
	sort.SliceStable(sorted, func(i, j int) bool { return flops[sorted[i]] > flops[sorted[j]] })
	out := make([][]int, n)
	load := make([]int64, n)
	for _, id := range sorted {
		// Least-loaded worker (ties to the lowest index).
		w := 0
		for i := 1; i < n; i++ {
			if load[i] < load[w] {
				w = i
			}
		}
		out[w] = append(out[w], id)
		load[w] += flops[id]
	}
	return out
}

// Run multiplies A·B across NumGPUs simulated devices (plus optionally
// the CPU) and returns the exact product and statistics.
func Run(a, b *csr.Matrix, cfg gpusim.DeviceConfig, opts Options) (*csr.Matrix, Stats, error) {
	if opts.NumGPUs < 1 {
		opts.NumGPUs = 1
	}
	if opts.Ratio <= 0 {
		// Generalize the paper's Ratio = S/(S+1) to N GPUs: the GPUs
		// collectively deliver N·S CPU-equivalents, so they take
		// N·S/(N·S+1) of the flops.
		s := hybrid.DefaultRatio / (1 - hybrid.DefaultRatio)
		ns := float64(opts.NumGPUs) * s
		opts.Ratio = ns / (ns + 1)
	}
	if opts.Host == (hybrid.HostModel{}) {
		opts.Host = hybrid.DefaultHostModel()
	}
	opts.Core.Async = true
	opts.Core.Reorder = false // Assign already orders each share

	env := sim.NewEnv()

	// One engine per GPU. The first engine also assembles the result.
	engines := make([]*core.Engine, opts.NumGPUs)
	for g := range engines {
		dev := gpusim.NewDevice(env, cfg)
		eng, err := core.NewEngine(dev, a, b, opts.Core)
		if err != nil {
			return nil, Stats{}, err
		}
		engines[g] = eng
	}
	flops := engines[0].ChunkFlops()
	var totalFlops int64
	for _, f := range flops {
		totalFlops += f
	}

	// Optional CPU share: the trailing chunks by flops, as in the
	// hybrid engine.
	all := make([]int, len(flops))
	for i := range all {
		all[i] = i
	}
	gpuIDs, cpuIDs := all, []int(nil)
	if opts.UseCPU {
		gpuIDs, cpuIDs = hybrid.Split(flops, opts.Ratio, true)
	}
	shares := Assign(gpuIDs, flops, opts.NumGPUs)

	st := Stats{
		Flops:      totalFlops,
		GPUChunks:  make([]int, opts.NumGPUs),
		GPUBusySec: make([]float64, opts.NumGPUs),
		CPUChunks:  len(cpuIDs),
	}

	var cpuErr error
	for g := range engines {
		g := g
		st.GPUChunks[g] = len(shares[g])
		env.Spawn(fmt.Sprintf("gpu%d", g), func(p *sim.Proc) {
			engines[g].ProcessChunks(p, shares[g])
			st.GPUBusySec[g] = sim.SecondsAt(env.Now())
		})
	}
	if len(cpuIDs) > 0 {
		env.Spawn("cpu", func(p *sim.Proc) {
			hashF, denseF, outNnz := speck.ClassifyFlops(a, b)
			wholeSec := opts.Host.ChunkSeconds(hashF, denseF, outNnz*12+int64(a.Rows+1)*8)
			for _, id := range cpuIDs {
				nc := len(engines[0].ColPanels)
				rp, cp := engines[0].RowPanels[id/nc], engines[0].ColPanels[id%nc]
				c, err := cpuspgemm.Multiply(rp.M, cp.M, cpuspgemm.Options{Threads: opts.Host.Threads})
				if err != nil {
					cpuErr = err
					return
				}
				sec := 0.0
				if totalFlops > 0 {
					sec = wholeSec * float64(flops[id]) / float64(totalFlops)
				}
				p.Span("cpu", fmt.Sprintf("chunk %d", id), sim.Seconds(sec))
				engines[0].PutCPUResult(id, c, flops[id])
			}
		})
	}
	if err := env.Run(); err != nil {
		return nil, Stats{}, err
	}
	for _, eng := range engines {
		if eng.Err() != nil {
			return nil, Stats{}, eng.Err()
		}
	}
	if cpuErr != nil {
		return nil, Stats{}, cpuErr
	}

	// Merge all results into engine 0 and assemble.
	for g := 1; g < len(engines); g++ {
		for id, res := range engines[g].Results {
			engines[0].Results[id] = res
		}
	}
	c, err := engines[0].Assemble()
	if err != nil {
		return nil, Stats{}, err
	}
	st.TotalSec = sim.SecondsAt(env.Now())
	st.NnzC = c.Nnz()
	if st.TotalSec > 0 {
		st.GFLOPS = float64(totalFlops) / st.TotalSec / 1e9
	}
	for _, eng := range engines {
		st.BytesH2D += eng.Dev.BytesH2D()
		st.BytesD2H += eng.Dev.BytesD2H()
	}
	if m := opts.Metrics; m != nil {
		m.ImportSim(env.Timeline)
		for k, v := range st.Counters() {
			m.Add(k, v)
		}
	}
	return c, st, nil
}
