// Package multigpu extends the out-of-core framework to several GPUs
// on one node — the scaling direction the paper's conclusion points to
// ("our ultimate goal of continuing to scale SpGEMM computations to
// arbitrarily large matrices").
//
// The chunk grid of Algorithm 3 already makes chunks independent, so
// multi-GPU execution is a scheduling problem: chunks are sorted by
// decreasing flops and assigned greedily to the least-loaded GPU (LPT
// scheduling), each GPU runs the asynchronous out-of-core pipeline
// over its share, and an optional CPU worker takes a trailing share of
// the flops exactly as in the hybrid engine. Every simulated GPU has
// its own DMA engines (cards on separate PCIe slots); all share one
// virtual clock.
//
// Chunk independence is also what makes the engine fault-tolerant: a
// chunk that fails on one device (retries exhausted, or the device
// lost mid-run) is handed to a small controller that redistributes it
// — to a surviving GPU while one exists and the chunk's redistribution
// budget lasts, otherwise to the CPU worker. Only chunks with no
// remaining healthy worker strand the run in a typed error.
package multigpu

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cpuspgemm"
	"repro/internal/csr"
	"repro/internal/faults"
	"repro/internal/gpusim"
	"repro/internal/hybrid"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/speck"
)

// maxRedistributes bounds how many times one chunk may bounce between
// GPUs before it is sent to the CPU (or stranded); it prevents a
// livelock where an unlucky chunk ping-pongs among degraded devices.
const maxRedistributes = 2

// Options configures a multi-GPU run.
type Options struct {
	// Core configures the chunk grid and the per-GPU pipeline (Async
	// is forced on). Core.Faults seeds a per-device injector derived
	// from the base seed, so each GPU replays an independent but
	// deterministic fault stream.
	Core core.Options
	// NumGPUs is the device count; 0 means 1.
	NumGPUs int
	// UseCPU adds a CPU worker taking the trailing (1-Ratio) share of
	// flops.
	UseCPU bool
	// Ratio is the collective GPU flop share when UseCPU is set; zero
	// means hybrid.DefaultRatio.
	Ratio float64
	// Host is the CPU cost model; zero value means the default.
	Host hybrid.HostModel
	// Metrics is an optional observability sink receiving the shared
	// timeline of all devices plus aggregate counters.
	Metrics *metrics.Collector
}

// Stats reports a multi-GPU run.
type Stats struct {
	// TotalSec is the simulated makespan; Flops and GFLOPS as usual.
	TotalSec float64
	Flops    int64
	GFLOPS   float64
	NnzC     int64
	// GPUChunks[i] is the chunk count scheduled on GPU i (its initial
	// share plus any chunks it adopted); CPUChunks the CPU worker's
	// count.
	GPUChunks []int
	CPUChunks int
	// GPUBusySec[i] is the finish time of GPU i's worker.
	GPUBusySec []float64
	// BytesH2D and BytesD2H sum the payload bytes moved by all devices.
	BytesH2D, BytesD2H int64
	// Retries and Abandoned sum the per-device transient-fault
	// recovery counters (see core.Stats).
	Retries, Abandoned int64
	// Failovers counts chunk redistributions off a failing device;
	// FallbackChunks the subset absorbed by the CPU worker; LostGPUs
	// the devices that died mid-run.
	Failovers      int
	FallbackChunks int
	LostGPUs       int
}

// Seconds returns the simulated makespan; part of metrics.Report.
func (s Stats) Seconds() float64 { return s.TotalSec }

// FlopCount returns the multiply-add flop count (x2) of the product.
func (s Stats) FlopCount() int64 { return s.Flops }

// Throughput returns the run's GFLOPS.
func (s Stats) Throughput() float64 { return s.GFLOPS }

// OutputNnz returns the product's non-zero count.
func (s Stats) OutputNnz() int64 { return s.NnzC }

// Counters returns the flat key/value snapshot of the run.
func (s Stats) Counters() map[string]int64 {
	var gpuChunks int64
	for _, n := range s.GPUChunks {
		gpuChunks += int64(n)
	}
	return map[string]int64{
		metrics.CounterFlops:       s.Flops,
		metrics.CounterBytesH2D:    s.BytesH2D,
		metrics.CounterBytesD2H:    s.BytesD2H,
		metrics.CounterChunks:      gpuChunks + int64(s.CPUChunks),
		metrics.CounterNnzC:        s.NnzC,
		"gpus":                     int64(len(s.GPUChunks)),
		"gpu_chunks":               gpuChunks,
		"cpu_chunks":               int64(s.CPUChunks),
		metrics.CounterRetries:     s.Retries,
		metrics.CounterAbandoned:   s.Abandoned,
		metrics.CounterFailovers:   int64(s.Failovers),
		metrics.CounterFallbacks:   int64(s.FallbackChunks),
		metrics.CounterDevicesLost: int64(s.LostGPUs),
	}
}

// Assign distributes chunk ids over n workers with longest-processing-
// time-first greedy scheduling on their flop counts. It returns one id
// list per worker, each sorted by decreasing flops (the §IV-C order).
func Assign(ids []int, flops []int64, n int) [][]int {
	sorted := append([]int(nil), ids...)
	sort.SliceStable(sorted, func(i, j int) bool { return flops[sorted[i]] > flops[sorted[j]] })
	out := make([][]int, n)
	load := make([]int64, n)
	for _, id := range sorted {
		// Least-loaded worker (ties to the lowest index).
		w := 0
		for i := 1; i < n; i++ {
			if load[i] < load[w] {
				w = i
			}
		}
		out[w] = append(out[w], id)
		load[w] += flops[id]
	}
	return out
}

// controller owns the failover state shared by all workers. It is only
// touched from simulation processes — the discrete-event kernel runs
// exactly one at a time, so the plain fields need no locking and every
// decision lands in deterministic order.
type controller struct {
	orphans  []int // chunks awaiting adoption by a surviving GPU
	cpuQueue []int // chunks past their GPU budget, bound for the CPU
	stranded map[int]error
	tries    map[int]int
	aliveGPU int
	busy     int // workers currently processing (not waiting/exited)
	hasCPU   bool
	sig      *sim.Signal

	failovers int
}

// wake signals every waiting worker (work arrived or a worker left)
// and arms a fresh signal for the next round of waiters.
func (c *controller) wake(p *sim.Proc) {
	old := c.sig
	c.sig = &sim.Signal{}
	old.Fire(p)
}

// route disposes of the chunks a worker reports as failed: recoverable
// ones go back into circulation (surviving GPUs first, then the CPU),
// the rest are stranded. The reporting engine's failed set is cleared
// — the chunks are the controller's problem now.
func (c *controller) route(eng *core.Engine, failed []int, fromGPU bool) {
	for _, id := range failed {
		err := eng.Failed()[id]
		eng.ClearFailed(id)
		if !core.IsRecoverable(err) {
			c.stranded[id] = err
			continue
		}
		if fromGPU {
			c.failovers++
		}
		c.tries[id]++
		switch {
		case c.aliveGPU > 0 && c.tries[id] <= maxRedistributes:
			c.orphans = append(c.orphans, id)
		case c.hasCPU:
			c.cpuQueue = append(c.cpuQueue, id)
		default:
			c.stranded[id] = err
		}
	}
}

// gpuDied retires a lost device. With no GPU left, pending orphans are
// pushed to the CPU queue (or stranded when there is no CPU worker).
func (c *controller) gpuDied(p *sim.Proc) {
	c.aliveGPU--
	c.busy--
	if c.aliveGPU == 0 {
		for _, id := range c.orphans {
			if c.hasCPU {
				c.cpuQueue = append(c.cpuQueue, id)
			} else {
				c.stranded[id] = fmt.Errorf("multigpu: chunk %d: no surviving worker: %w", id, faults.ErrDeviceLost)
			}
		}
		c.orphans = nil
	}
	c.wake(p)
}

// take empties one of the controller's queues, preserving order.
func take(q *[]int) []int {
	batch := *q
	*q = nil
	return batch
}

// Run multiplies A·B across NumGPUs simulated devices (plus optionally
// the CPU) and returns the exact product and statistics.
func Run(a, b *csr.Matrix, cfg gpusim.DeviceConfig, opts Options) (*csr.Matrix, Stats, error) {
	if opts.NumGPUs < 1 {
		opts.NumGPUs = 1
	}
	if opts.Ratio <= 0 {
		// Generalize the paper's Ratio = S/(S+1) to N GPUs: the GPUs
		// collectively deliver N·S CPU-equivalents, so they take
		// N·S/(N·S+1) of the flops.
		s := hybrid.DefaultRatio / (1 - hybrid.DefaultRatio)
		ns := float64(opts.NumGPUs) * s
		opts.Ratio = ns / (ns + 1)
	}
	if opts.Host == (hybrid.HostModel{}) {
		opts.Host = hybrid.DefaultHostModel()
	}
	opts.Core.Async = true
	opts.Core.Reorder = false // Assign already orders each share

	env := sim.NewEnv()

	// One engine per GPU, each with an independently seeded injector.
	// The first engine also assembles the result.
	engines := make([]*core.Engine, opts.NumGPUs)
	for g := range engines {
		dev := gpusim.NewDevice(env, cfg)
		if opts.Core.Faults.Enabled() {
			dev.SetFaults(faults.New(opts.Core.Faults.Derive(g)))
		}
		coreOpts := opts.Core
		// Each GPU records plan-cache panel residency under its own
		// namespace; a shared one would let one device's residency
		// masquerade as another's.
		coreOpts.PlanDevice = fmt.Sprintf("dev%d", g)
		eng, err := core.NewEngine(dev, a, b, coreOpts)
		if err != nil {
			return nil, Stats{}, err
		}
		engines[g] = eng
		// Release each device's allocations and publish the leak-audit
		// counter on every exit path, including deadline aborts.
		defer eng.Teardown()
	}
	flops := engines[0].ChunkFlops()
	var totalFlops int64
	for _, f := range flops {
		totalFlops += f
	}

	// Optional CPU share: the trailing chunks by flops, as in the
	// hybrid engine.
	all := make([]int, len(flops))
	for i := range all {
		all[i] = i
	}
	gpuIDs, cpuIDs := all, []int(nil)
	if opts.UseCPU {
		gpuIDs, cpuIDs = hybrid.Split(flops, opts.Ratio, true)
	}
	shares := Assign(gpuIDs, flops, opts.NumGPUs)

	st := Stats{
		Flops:      totalFlops,
		GPUChunks:  make([]int, opts.NumGPUs),
		GPUBusySec: make([]float64, opts.NumGPUs),
		CPUChunks:  len(cpuIDs),
	}

	// The CPU worker exists when it has an initial share, or (under
	// fault injection) as the adopter of last resort for chunks no GPU
	// can finish.
	spawnCPU := len(cpuIDs) > 0 || (opts.UseCPU && opts.Core.Faults.Enabled())
	ctl := &controller{
		stranded: map[int]error{},
		tries:    map[int]int{},
		aliveGPU: opts.NumGPUs,
		busy:     opts.NumGPUs,
		hasCPU:   spawnCPU,
		sig:      &sim.Signal{},
	}
	if spawnCPU {
		ctl.busy++
	}

	var cpuErr error
	for g := range engines {
		g := g
		st.GPUChunks[g] = len(shares[g])
		env.Spawn(fmt.Sprintf("gpu%d", g), func(p *sim.Proc) {
			eng := engines[g]
			failed := eng.ProcessChunks(p, shares[g])
			st.GPUBusySec[g] = sim.SecondsAt(env.Now())
			for {
				ctl.route(eng, failed, true)
				failed = nil
				if eng.DeviceLost() {
					ctl.gpuDied(p)
					return
				}
				batch := take(&ctl.orphans)
				if batch == nil {
					// Nothing to adopt; wait for redistributed work or
					// for every worker to go idle (global termination).
					ctl.busy--
					for batch == nil {
						if ctl.busy == 0 {
							ctl.wake(p)
							return
						}
						sig := ctl.sig
						p.Await(sig)
						batch = take(&ctl.orphans)
					}
					ctl.busy++
				}
				failed = eng.ProcessChunks(p, batch)
				st.GPUBusySec[g] = sim.SecondsAt(env.Now())
				st.GPUChunks[g] += len(batch)
			}
		})
	}
	if spawnCPU {
		env.Spawn("cpu", func(p *sim.Proc) {
			hashF, denseF, outNnz := speck.ClassifyFlops(a, b)
			wholeSec := opts.Host.ChunkSeconds(hashF, denseF, outNnz*12+int64(a.Rows+1)*8)
			runIDs := func(ids []int, label string) error {
				for _, id := range ids {
					if d := opts.Core.DeadlineSec; d > 0 && sim.SecondsAt(env.Now()) > d {
						return fmt.Errorf("multigpu: cpu worker: %w: simulated clock at %.6fs past %.6fs",
							faults.ErrDeadline, sim.SecondsAt(env.Now()), d)
					}
					nc := len(engines[0].ColPanels)
					rp, cp := engines[0].RowPanels[id/nc], engines[0].ColPanels[id%nc]
					c, err := cpuspgemm.Multiply(rp.M, cp.M, cpuspgemm.Options{Threads: opts.Host.Threads})
					if err != nil {
						return err
					}
					sec := 0.0
					if totalFlops > 0 {
						sec = wholeSec * float64(flops[id]) / float64(totalFlops)
					}
					p.Span("cpu", fmt.Sprintf("%s %d", label, id), sim.Seconds(sec))
					engines[0].PutCPUResult(id, c, flops[id])
				}
				return nil
			}
			if err := runIDs(cpuIDs, "chunk"); err != nil {
				cpuErr = err
				ctl.busy--
				ctl.wake(p)
				return
			}
			for {
				batch := take(&ctl.cpuQueue)
				if batch == nil {
					ctl.busy--
					for batch == nil {
						if ctl.busy == 0 {
							ctl.wake(p)
							return
						}
						sig := ctl.sig
						p.Await(sig)
						batch = take(&ctl.cpuQueue)
					}
					ctl.busy++
				}
				// Adopted chunks run on the real CPU engine — the exact
				// product either way, only the schedule pays.
				if err := runIDs(batch, "fallback chunk"); err != nil {
					cpuErr = err
					ctl.busy--
					ctl.wake(p)
					return
				}
				st.FallbackChunks += len(batch)
				st.CPUChunks += len(batch)
			}
		})
	}
	if err := env.Run(); err != nil {
		return nil, Stats{}, err
	}
	for _, eng := range engines {
		if eng.Err() != nil {
			return nil, Stats{}, eng.Err()
		}
	}
	if cpuErr != nil {
		return nil, Stats{}, cpuErr
	}
	st.Failovers = ctl.failovers
	st.LostGPUs = opts.NumGPUs - ctl.aliveGPU
	for _, eng := range engines {
		st.Retries += eng.Retries()
		st.Abandoned += eng.Abandoned()
	}
	// Anything still failed or queued at this point has no worker left
	// to run it: surface a typed error instead of a partial product.
	leftover := append(take(&ctl.orphans), take(&ctl.cpuQueue)...)
	for _, id := range leftover {
		ctl.stranded[id] = fmt.Errorf("multigpu: chunk %d: no surviving worker: %w", id, faults.ErrDeviceLost)
	}
	for _, eng := range engines {
		if err := eng.FailedError(); err != nil {
			return nil, Stats{}, err
		}
	}
	if len(ctl.stranded) > 0 {
		ids := make([]int, 0, len(ctl.stranded))
		for id := range ctl.stranded {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		return nil, Stats{}, fmt.Errorf("multigpu: %d chunks stranded (first: chunk %d): %w",
			len(ids), ids[0], ctl.stranded[ids[0]])
	}

	// Merge all results into engine 0 and assemble.
	for g := 1; g < len(engines); g++ {
		for id, res := range engines[g].Results {
			engines[0].Results[id] = res
		}
	}
	c, err := engines[0].Assemble()
	if err != nil {
		return nil, Stats{}, err
	}
	st.TotalSec = sim.SecondsAt(env.Now())
	st.NnzC = c.Nnz()
	if st.TotalSec > 0 {
		st.GFLOPS = float64(totalFlops) / st.TotalSec / 1e9
	}
	for _, eng := range engines {
		st.BytesH2D += eng.Dev.BytesH2D()
		st.BytesD2H += eng.Dev.BytesD2H()
	}
	if m := opts.Metrics; m != nil {
		m.ImportSim(env.Timeline)
		for k, v := range st.Counters() {
			m.Add(k, v)
		}
		for _, eng := range engines {
			for kind, n := range eng.Dev.Faults().Counts() {
				m.Add("faults_injected_"+kind, n)
			}
		}
	}
	return c, st, nil
}
