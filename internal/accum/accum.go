// Package accum provides the row accumulators used by every SpGEMM
// implementation in this repository.
//
// Gustavson's algorithm produces, for each output row, a stream of
// (column, value) intermediate products that must be combined: products
// with the same column id are summed, and the surviving set is emitted
// sorted by column id. The paper (Section II-B) uses two combination
// methods following spECK and Nagasaka et al.:
//
//   - the hash-map method, sized from an upper bound, keyed by column id,
//     sorted at the end — efficient for sparse output rows;
//   - the dense-accumulation method, which indexes a dense array directly
//     by column id — efficient for dense output rows, wasteful for very
//     sparse ones.
//
// Both implement the Accumulator interface and both support a symbolic
// (structure-only) mode used in the symbolic phase of the two-phase
// strategy.
package accum

import "sort"

// Accumulator combines intermediate products of one output row.
type Accumulator interface {
	// Add accumulates val into column col.
	Add(col int32, val float64)
	// AddSymbolic records that column col is occupied, without a value.
	AddSymbolic(col int32)
	// Len reports the number of distinct columns accumulated so far.
	Len() int
	// Flush appends the accumulated (column, value) pairs, sorted by
	// column, to the destination slices and resets the accumulator.
	// For symbolic use the value written is undefined.
	Flush(cols []int32, vals []float64) ([]int32, []float64)
	// FlushSymbolic resets the accumulator and reports the number of
	// distinct columns, without materializing them.
	FlushSymbolic() int
	// Reset clears the accumulator without extracting anything.
	Reset()
}

// Hash is an open-addressing hash accumulator. Capacity is fixed at
// construction (from a per-row upper bound as the paper describes) and
// grows automatically if the bound is exceeded.
type Hash struct {
	keys  []int32 // -1 = empty
	vals  []float64
	used  []int32 // indices of occupied slots, in insertion order
	mask  uint32
	count int
}

// NewHash creates a hash accumulator able to hold at least capacity
// distinct columns before growing. The table is sized to the next power
// of two at most half full, matching the upper-bound sizing strategy of
// the hashmap method.
func NewHash(capacity int) *Hash {
	h := &Hash{}
	h.init(capacity)
	return h
}

func (h *Hash) init(capacity int) {
	size := 16
	for size < capacity*2 {
		size <<= 1
	}
	h.keys = make([]int32, size)
	for i := range h.keys {
		h.keys[i] = -1
	}
	h.vals = make([]float64, size)
	h.used = make([]int32, 0, capacity)
	h.mask = uint32(size - 1)
	h.count = 0
}

// slot finds the slot for col, inserting the key if absent. The boolean
// reports whether the key was newly inserted.
func (h *Hash) slot(col int32) (int, bool) {
	// Multiplicative hashing: the same scheme GPU hash SpGEMM kernels
	// use (cheap, and good enough for column ids).
	i := (uint32(col) * 2654435761) & h.mask
	for {
		k := h.keys[i]
		if k == col {
			return int(i), false
		}
		if k == -1 {
			h.keys[i] = col
			h.used = append(h.used, int32(i))
			h.count++
			return int(i), true
		}
		i = (i + 1) & h.mask
	}
}

func (h *Hash) maybeGrow() {
	if h.count*2 < len(h.keys) {
		return
	}
	oldKeys, oldVals, oldUsed := h.keys, h.vals, h.used
	h.init(len(h.keys)) // doubles: init sizes to capacity*2
	for _, i := range oldUsed {
		s, _ := h.slot(oldKeys[i])
		h.vals[s] = oldVals[i]
	}
}

// Add accumulates val into column col.
func (h *Hash) Add(col int32, val float64) {
	s, fresh := h.slot(col)
	if fresh {
		h.vals[s] = val
		h.maybeGrow()
		return
	}
	h.vals[s] += val
}

// AddSymbolic records the column without a value.
func (h *Hash) AddSymbolic(col int32) {
	_, fresh := h.slot(col)
	if fresh {
		h.maybeGrow()
	}
}

// Len reports the number of distinct columns.
func (h *Hash) Len() int { return h.count }

// Flush emits the sorted (column, value) pairs and resets.
func (h *Hash) Flush(cols []int32, vals []float64) ([]int32, []float64) {
	start := len(cols)
	for _, i := range h.used {
		cols = append(cols, h.keys[i])
		vals = append(vals, h.vals[i])
	}
	sortPairs(cols[start:], vals[start:])
	h.Reset()
	return cols, vals
}

// FlushSymbolic reports the count and resets.
func (h *Hash) FlushSymbolic() int {
	n := h.count
	h.Reset()
	return n
}

// Reset clears the accumulator, retaining capacity.
func (h *Hash) Reset() {
	for _, i := range h.used {
		h.keys[i] = -1
	}
	h.used = h.used[:0]
	h.count = 0
}

// Dense is a dense-array accumulator over a fixed column range
// [0, width). It stores values in a dense array indexed by column id and
// tracks occupancy with generation stamps so Reset is O(1).
type Dense struct {
	vals    []float64
	stamp   []uint32
	gen     uint32
	touched []int32
}

// NewDense creates a dense accumulator for columns in [0, width).
func NewDense(width int) *Dense {
	return &Dense{
		vals:  make([]float64, width),
		stamp: make([]uint32, width),
		gen:   1,
	}
}

// Width reports the column range the accumulator covers.
func (d *Dense) Width() int { return len(d.vals) }

// Add accumulates val into column col.
func (d *Dense) Add(col int32, val float64) {
	if d.stamp[col] != d.gen {
		d.stamp[col] = d.gen
		d.vals[col] = val
		d.touched = append(d.touched, col)
		return
	}
	d.vals[col] += val
}

// AddSymbolic records the column without a value.
func (d *Dense) AddSymbolic(col int32) {
	if d.stamp[col] != d.gen {
		d.stamp[col] = d.gen
		d.touched = append(d.touched, col)
	}
}

// Len reports the number of distinct columns.
func (d *Dense) Len() int { return len(d.touched) }

// Flush emits the sorted (column, value) pairs and resets.
func (d *Dense) Flush(cols []int32, vals []float64) ([]int32, []float64) {
	sort.Slice(d.touched, func(i, j int) bool { return d.touched[i] < d.touched[j] })
	for _, c := range d.touched {
		cols = append(cols, c)
		vals = append(vals, d.vals[c])
	}
	d.Reset()
	return cols, vals
}

// FlushSymbolic reports the count and resets.
func (d *Dense) FlushSymbolic() int {
	n := len(d.touched)
	d.Reset()
	return n
}

// Reset clears the accumulator in O(1) by advancing the generation.
func (d *Dense) Reset() {
	d.touched = d.touched[:0]
	d.gen++
	if d.gen == 0 { // stamp wrap-around: clear and restart
		for i := range d.stamp {
			d.stamp[i] = 0
		}
		d.gen = 1
	}
}

// sortPairs sorts cols ascending, permuting vals identically.
func sortPairs(cols []int32, vals []float64) {
	sort.Sort(&pairSorter{cols, vals})
}

type pairSorter struct {
	cols []int32
	vals []float64
}

func (p *pairSorter) Len() int           { return len(p.cols) }
func (p *pairSorter) Less(i, j int) bool { return p.cols[i] < p.cols[j] }
func (p *pairSorter) Swap(i, j int) {
	p.cols[i], p.cols[j] = p.cols[j], p.cols[i]
	p.vals[i], p.vals[j] = p.vals[j], p.vals[i]
}

// Interface conformance checks.
var (
	_ Accumulator = (*Hash)(nil)
	_ Accumulator = (*Dense)(nil)
)
