package accum

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestListMatchesHash drives List and Hash with the same product
// stream and demands bit-identical flushes — the invariant the
// adaptive class selection rests on.
func TestListMatchesHash(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		list := NewList(4)
		hash := NewHash(16)
		dense := NewDense(64)
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			col := int32(rng.Intn(64))
			val := rng.NormFloat64()
			list.Add(col, val)
			hash.Add(col, val)
			dense.Add(col, val)
		}
		if list.Len() != hash.Len() {
			t.Fatalf("trial %d: Len %d != %d", trial, list.Len(), hash.Len())
		}
		lc, lv := list.Flush(nil, nil)
		hc, hv := hash.Flush(nil, nil)
		dc, dv := dense.Flush(nil, nil)
		if len(lc) != len(hc) || len(lc) != len(dc) {
			t.Fatalf("trial %d: lengths %d/%d/%d", trial, len(lc), len(hc), len(dc))
		}
		for i := range lc {
			if lc[i] != hc[i] || lc[i] != dc[i] {
				t.Fatalf("trial %d: col[%d] %d/%d/%d", trial, i, lc[i], hc[i], dc[i])
			}
			if math.Float64bits(lv[i]) != math.Float64bits(hv[i]) ||
				math.Float64bits(lv[i]) != math.Float64bits(dv[i]) {
				t.Fatalf("trial %d: val[%d] bits differ across accumulators", trial, i)
			}
		}
	}
}

func TestListFlushSortedAndAppends(t *testing.T) {
	l := NewList(2)
	for _, c := range []int32{9, 3, 7, 3, 9, 1} {
		l.Add(c, 1)
	}
	cols, vals := l.Flush([]int32{100}, []float64{0})
	if cols[0] != 100 {
		t.Fatal("Flush clobbered the prefix")
	}
	tail := cols[1:]
	if !sort.SliceIsSorted(tail, func(i, j int) bool { return tail[i] < tail[j] }) {
		t.Fatalf("unsorted flush: %v", tail)
	}
	if len(tail) != 4 || vals[1]+vals[2]+vals[3]+vals[4] != 6 {
		t.Fatalf("flush = %v / %v", tail, vals[1:])
	}
	if l.Len() != 0 {
		t.Fatal("Flush did not reset")
	}
}

func TestListSymbolic(t *testing.T) {
	l := NewList(4)
	for _, c := range []int32{5, 5, 2, 8, 2} {
		l.AddSymbolic(c)
	}
	if n := l.FlushSymbolic(); n != 3 {
		t.Fatalf("FlushSymbolic = %d, want 3", n)
	}
	if l.Len() != 0 {
		t.Fatal("FlushSymbolic did not reset")
	}
}

func TestListGrowAndPool(t *testing.T) {
	l := NewList(0)
	l.Grow(128)
	for i := int32(0); i < 128; i++ {
		l.Add(i, float64(i))
	}
	if l.Len() != 128 {
		t.Fatalf("Len = %d", l.Len())
	}
	PutList(l)
	got := GetList(64)
	if got.Len() != 0 {
		t.Fatal("pooled list not reset")
	}
	got.Add(1, 1)
	PutList(got)
}
