package accum

import (
	"math/bits"
	"sort"
)

// CSeg is a two-level compressed hash accumulator in the style of
// CSeg's DenseHashMap over compressed column indices: the open
// addressing table is keyed by 64-column *segment* (column id >> 6)
// and each slot holds a 64-bit occupancy mask, so one probe covers up
// to 64 columns. Two effects make it faster than the per-column Hash
// on clustered patterns:
//
//   - the symbolic phase consumes segment-compressed B rows
//     (csr.Segments) with one probe + word-OR per segment instead of
//     one probe per column, dividing the symbolic work by the
//     compression ratio;
//   - the numeric phase still touches every product, but the table has
//     one entry per distinct segment rather than per distinct column —
//     a smaller, hotter table with far fewer collisions — and values
//     land in per-segment 64-slot blocks addressed by the low bits,
//     with no per-column probe chain.
//
// Like Hash, Dense, List and Bitmap, CSeg assigns on first touch and
// accumulates in product-arrival order, and Flush walks the segments
// in ascending id order emitting set bits low-to-high — exactly the
// sorted order the others emit, so a row accumulated here is
// bit-for-bit the row any other class produces.
type CSeg struct {
	segs  []int32  // segment keys; -1 = empty slot
	masks []uint64 // 64-column occupancy mask per slot
	blks  []int32  // value-block index per slot; -1 = none allocated
	used  []int32  // occupied slot indices, insertion order
	vals  []float64
	mask  uint32 // table index mask
	nblk  int    // value blocks handed out from vals
	count int    // distinct columns (popcount over masks)

	// One-entry probe cache: products arrive in column order per B row,
	// so consecutive Adds usually hit the same segment; remembering the
	// last slot turns the common case into a single compare.
	lastSeg  int32
	lastSlot int32
}

// NewCSeg creates a compressed accumulator able to hold at least
// capacity distinct segments before growing.
func NewCSeg(capacity int) *CSeg {
	c := &CSeg{}
	c.init(capacity)
	return c
}

func (c *CSeg) init(capacity int) {
	size := 16
	for size < capacity*2 {
		size <<= 1
	}
	c.segs = make([]int32, size)
	for i := range c.segs {
		c.segs[i] = -1
	}
	c.masks = make([]uint64, size)
	c.blks = make([]int32, size)
	for i := range c.blks {
		c.blks[i] = -1
	}
	c.used = make([]int32, 0, capacity)
	c.mask = uint32(size - 1)
	c.count = 0
	c.nblk = 0
	c.lastSeg = -1
}

// Grow resizes the table so at least capacity distinct segments fit
// before rehashing. It must only be called on an empty accumulator
// (freshly constructed or after Reset), matching Hash.Grow's pool
// contract.
func (c *CSeg) Grow(capacity int) {
	need := 16
	for need < capacity*2 {
		need <<= 1
	}
	if len(c.segs) < need {
		vals := c.vals // the arena survives re-init
		c.init(capacity)
		c.vals = vals
	}
}

// slot finds the slot for seg, inserting the key if absent.
func (c *CSeg) slot(seg int32) int32 {
	if seg == c.lastSeg {
		return c.lastSlot
	}
	i := (uint32(seg) * 2654435761) & c.mask
	for {
		k := c.segs[i]
		if k == seg {
			c.lastSeg, c.lastSlot = seg, int32(i)
			return int32(i)
		}
		if k == -1 {
			c.segs[i] = seg
			c.used = append(c.used, int32(i))
			c.lastSeg, c.lastSlot = seg, int32(i)
			return int32(i)
		}
		i = (i + 1) & c.mask
	}
}

// maybeGrow rehashes once the table is half full of segments, keeping
// masks and block assignments attached to their keys.
func (c *CSeg) maybeGrow() {
	if len(c.used)*2 < len(c.segs) {
		return
	}
	oldSegs, oldMasks, oldBlks, oldUsed := c.segs, c.masks, c.blks, c.used
	count, nblk, vals := c.count, c.nblk, c.vals
	c.init(len(c.segs)) // doubles: init sizes to capacity*2
	c.vals = vals
	c.count, c.nblk = count, nblk
	for _, i := range oldUsed {
		s := c.slot(oldSegs[i])
		c.masks[s] = oldMasks[i]
		c.blks[s] = oldBlks[i]
	}
	c.lastSeg = -1
}

// block returns the base index of the slot's value block, allocating
// one from the arena on first touch.
func (c *CSeg) block(s int32) int {
	b := c.blks[s]
	if b < 0 {
		b = int32(c.nblk)
		c.nblk++
		c.blks[s] = b
		if need := c.nblk * 64; need > len(c.vals) {
			grown := make([]float64, need*2)
			copy(grown, c.vals)
			c.vals = grown
		}
	}
	return int(b) * 64
}

// Add accumulates val into column col.
func (c *CSeg) Add(col int32, val float64) {
	s := c.slot(col >> 6)
	bit := uint64(1) << uint(col&63)
	base := c.block(s)
	if c.masks[s]&bit == 0 {
		c.masks[s] |= bit
		c.count++
		c.vals[base+int(col&63)] = val
		c.maybeGrow()
		return
	}
	c.vals[base+int(col&63)] += val
}

// AddSymbolic records the column without a value.
func (c *CSeg) AddSymbolic(col int32) {
	s := c.slot(col >> 6)
	bit := uint64(1) << uint(col&63)
	if c.masks[s]&bit == 0 {
		c.masks[s] |= bit
		c.count++
		c.maybeGrow()
	}
}

// AddSegment ORs a whole 64-column occupancy mask into segment seg —
// the compressed symbolic step: one call covers every column a
// csr.Segments entry holds.
func (c *CSeg) AddSegment(seg int32, mask uint64) {
	s := c.slot(seg)
	c.count += bits.OnesCount64(mask &^ c.masks[s])
	c.masks[s] |= mask
	c.maybeGrow()
}

// Len reports the number of distinct columns.
func (c *CSeg) Len() int { return c.count }

// Flush appends the accumulated (column, value) pairs sorted by column
// and resets. Segments are sorted by id and bits walk low-to-high, so
// the emitted order matches every other accumulator class. Slots
// populated only symbolically (no value block) emit zero values, per
// the Accumulator contract ("the value written is undefined").
func (c *CSeg) Flush(cols []int32, vals []float64) ([]int32, []float64) {
	sort.Slice(c.used, func(i, j int) bool { return c.segs[c.used[i]] < c.segs[c.used[j]] })
	for _, s := range c.used {
		word := c.masks[s]
		if word == 0 {
			continue
		}
		base := int32(c.segs[s]) << 6
		blk := -1
		if c.blks[s] >= 0 {
			blk = int(c.blks[s]) * 64
		}
		for word != 0 {
			low := int32(bits.TrailingZeros64(word))
			cols = append(cols, base+low)
			if blk >= 0 {
				vals = append(vals, c.vals[blk+int(low)])
			} else {
				vals = append(vals, 0)
			}
			word &= word - 1
		}
	}
	c.Reset()
	return cols, vals
}

// FlushSymbolic reports the count and resets.
func (c *CSeg) FlushSymbolic() int {
	n := c.count
	c.Reset()
	return n
}

// Reset clears the accumulator, retaining table and arena capacity.
func (c *CSeg) Reset() {
	for _, s := range c.used {
		c.segs[s] = -1
		c.masks[s] = 0
		c.blks[s] = -1
	}
	c.used = c.used[:0]
	c.count = 0
	c.nblk = 0
	c.lastSeg = -1
}

var _ Accumulator = (*CSeg)(nil)
