package accum

import (
	"math/rand"
	"testing"
)

// fillAndFlush pushes pairs through an accumulator and returns the
// flushed row.
func fillAndFlush(a Accumulator, cols []int32, vals []float64) ([]int32, []float64) {
	for i := range cols {
		a.Add(cols[i], vals[i])
	}
	return a.Flush(nil, nil)
}

func TestPooledAccumulatorsAreEmptyAndCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 20; round++ {
		n := 1 + rng.Intn(200)
		cols := make([]int32, n)
		vals := make([]float64, n)
		for i := range cols {
			cols[i] = int32(rng.Intn(64))
			vals[i] = rng.NormFloat64()
		}
		want := map[int32]float64{}
		for i := range cols {
			want[cols[i]] += vals[i]
		}
		for _, get := range []func() Accumulator{
			func() Accumulator { return GetHash(n) },
			func() Accumulator { return GetDense(64) },
			func() Accumulator { return GetSort(n) },
		} {
			a := get()
			if a.Len() != 0 {
				t.Fatalf("round %d: pooled accumulator not empty: %d", round, a.Len())
			}
			gc, gv := fillAndFlush(a, cols, vals)
			if len(gc) != len(want) {
				t.Fatalf("round %d: %d distinct, want %d", round, len(gc), len(want))
			}
			for i := range gc {
				if i > 0 && gc[i] <= gc[i-1] {
					t.Fatalf("round %d: output not sorted", round)
				}
				if d := gv[i] - want[gc[i]]; d > 1e-12 || d < -1e-12 {
					t.Fatalf("round %d: col %d = %g, want %g", round, gc[i], gv[i], want[gc[i]])
				}
			}
			Put(a)
		}
	}
}

func TestHashGrowPreservesEmptyInvariant(t *testing.T) {
	h := GetHash(4)
	h.Add(7, 1)
	h.Reset()
	h.Grow(10000)
	if h.Len() != 0 {
		t.Fatal("grown accumulator not empty")
	}
	h.Add(9999, 2)
	c, v := h.Flush(nil, nil)
	if len(c) != 1 || c[0] != 9999 || v[0] != 2 {
		t.Fatalf("after grow: %v %v", c, v)
	}
	PutHash(h)
}

func TestDenseGrowWidens(t *testing.T) {
	d := GetDense(4)
	PutDense(d)
	d = GetDense(1000)
	if d.Width() < 1000 {
		t.Fatalf("width %d after Grow(1000)", d.Width())
	}
	d.Add(999, 1.5)
	c, v := d.Flush(nil, nil)
	if len(c) != 1 || c[0] != 999 || v[0] != 1.5 {
		t.Fatalf("dense after grow: %v %v", c, v)
	}
	PutDense(d)
}

func TestSortGrowReserves(t *testing.T) {
	s := GetSort(8)
	s.Grow(4096)
	if cap(s.cols) < 4096 {
		t.Fatalf("cap %d after Grow(4096)", cap(s.cols))
	}
	PutSort(s)
}

func TestPutDropsUnknownImplementations(t *testing.T) {
	Put(nil) // must not panic
}
