package accum

import (
	"math"
	"math/rand"
	"testing"
)

// csegReference accumulates through Hash (the long-standing reference
// class) and returns the sorted flush — CSeg must match it bit for bit.
func csegReference(adds [][2]float64) ([]int32, []float64) {
	h := NewHash(16)
	for _, a := range adds {
		h.Add(int32(a[0]), a[1])
	}
	return h.Flush(nil, nil)
}

func TestCSegMatchesHashReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		width := 64 + rng.Intn(1<<14)
		n := 1 + rng.Intn(400)
		adds := make([][2]float64, n)
		for i := range adds {
			// Cluster some columns so segments get revisits and the probe
			// cache path runs; leave others scattered for collisions.
			col := rng.Intn(width)
			if i > 0 && rng.Intn(2) == 0 {
				col = int(adds[i-1][0]) % width
			}
			adds[i] = [2]float64{float64(col), rng.NormFloat64()}
		}
		wantC, wantV := csegReference(adds)

		c := NewCSeg(2)
		for _, a := range adds {
			c.Add(int32(a[0]), a[1])
		}
		if c.Len() != len(wantC) {
			t.Fatalf("trial %d: Len %d, want %d", trial, c.Len(), len(wantC))
		}
		gotC, gotV := c.Flush(nil, nil)
		if len(gotC) != len(wantC) {
			t.Fatalf("trial %d: flush %d cols, want %d", trial, len(gotC), len(wantC))
		}
		for i := range gotC {
			if gotC[i] != wantC[i] {
				t.Fatalf("trial %d: col[%d] = %d, want %d", trial, i, gotC[i], wantC[i])
			}
			if math.Float64bits(gotV[i]) != math.Float64bits(wantV[i]) {
				t.Fatalf("trial %d: val[%d] bits differ", trial, i)
			}
		}
	}
}

// TestCSegCollisions packs distinct segment keys into a minimum-size
// table so open-addressing chains form (and one rehash fires at the
// half-full threshold), then checks the chains resolve to the right
// columns and values.
func TestCSegCollisions(t *testing.T) {
	c := NewCSeg(2) // 16-slot table: 8 segments is exactly the grow threshold
	// 8 distinct segments (columns 64 apart), several columns each.
	for seg := int32(0); seg < 8; seg++ {
		for b := int32(0); b < 3; b++ {
			c.Add(seg*64+b*7, float64(seg*100+b))
		}
	}
	if got, want := c.Len(), 24; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	cols, vals := c.Flush(nil, nil)
	for i := 1; i < len(cols); i++ {
		if cols[i] <= cols[i-1] {
			t.Fatalf("flush not strictly ascending at %d: %d <= %d", i, cols[i], cols[i-1])
		}
	}
	// Spot-check a value survived its chain.
	for i, col := range cols {
		if col == 7*64+2*7 {
			if vals[i] != 702 {
				t.Fatalf("col %d = %v, want 702", col, vals[i])
			}
		}
	}
}

// TestCSegGrowth pushes far past the initial capacity so maybeGrow
// rehashes repeatedly, and checks keys, masks and value blocks all
// survive the rehashes.
func TestCSegGrowth(t *testing.T) {
	c := NewCSeg(2)
	const segs = 3000
	for s := int32(0); s < segs; s++ {
		c.Add(s*64, float64(s))
		c.Add(s*64+63, float64(-s))
	}
	if got, want := c.Len(), 2*segs; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	cols, vals := c.Flush(nil, nil)
	if len(cols) != 2*segs {
		t.Fatalf("flush %d, want %d", len(cols), 2*segs)
	}
	for s := 0; s < segs; s++ {
		if cols[2*s] != int32(s*64) || vals[2*s] != float64(s) {
			t.Fatalf("seg %d low: (%d, %v)", s, cols[2*s], vals[2*s])
		}
		if cols[2*s+1] != int32(s*64+63) || vals[2*s+1] != float64(-s) {
			t.Fatalf("seg %d high: (%d, %v)", s, cols[2*s+1], vals[2*s+1])
		}
	}
}

// TestCSegFirstTouchNegZero checks the assign-on-first-touch rule CSeg
// shares with every other class: a lone -0.0 product must surface as
// -0.0, not be accumulated into +0.0.
func TestCSegFirstTouchNegZero(t *testing.T) {
	c := NewCSeg(4)
	negZero := math.Copysign(0, -1)
	c.Add(100, negZero)
	_, vals := c.Flush(nil, nil)
	if len(vals) != 1 || math.Float64bits(vals[0]) != math.Float64bits(negZero) {
		t.Fatalf("lone -0.0 flushed as %v (bits %x)", vals[0], math.Float64bits(vals[0]))
	}
}

// TestCSegSymbolic exercises AddSymbolic and AddSegment, including the
// popcount-over-new-bits counting and zero-valued flush of slots that
// never saw a numeric Add.
func TestCSegSymbolic(t *testing.T) {
	c := NewCSeg(4)
	c.AddSymbolic(10)
	c.AddSymbolic(10) // duplicate: no recount
	c.AddSegment(0, 1<<10|1<<20)
	c.AddSegment(0, 1<<20|1<<30) // overlap: only bit 30 is new
	c.AddSegment(5, 0xFF)
	if got, want := c.Len(), 3+8; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if got := c.FlushSymbolic(); got != 11 {
		t.Fatalf("FlushSymbolic = %d, want 11", got)
	}
	if c.Len() != 0 {
		t.Fatalf("Len after flush = %d", c.Len())
	}

	// Symbolic-then-Flush (numeric flush of symbolic-only slots) emits
	// zero values per the Accumulator contract.
	c.AddSegment(2, 1<<3)
	cols, vals := c.Flush(nil, nil)
	if len(cols) != 1 || cols[0] != 2*64+3 || vals[0] != 0 {
		t.Fatalf("symbolic-only flush = (%v, %v)", cols, vals)
	}
}

// TestCSegPoolReuse round-trips through the pool and checks a reused
// accumulator starts empty and still produces correct output.
func TestCSegPoolReuse(t *testing.T) {
	c := GetCSeg(8)
	c.Add(1000, 1.5)
	c.Add(2000, 2.5)
	PutCSeg(c)

	r := GetCSeg(8)
	if r.Len() != 0 {
		t.Fatalf("pooled CSeg not empty: Len=%d", r.Len())
	}
	r.Add(64, 3.0)
	r.Add(64, 0.25)
	cols, vals := r.Flush(nil, nil)
	if len(cols) != 1 || cols[0] != 64 || vals[0] != 3.25 {
		t.Fatalf("reused CSeg flush = (%v, %v)", cols, vals)
	}
	PutCSeg(r)

	// Put via the generic dispatcher must also accept CSeg.
	g := GetCSeg(8)
	g.Add(5, 1)
	Put(g)
}

// TestCSegGrowPreservesEmptyContract verifies Grow on an empty (reset)
// accumulator enlarges the table without corrupting later use.
func TestCSegGrowPreservesEmptyContract(t *testing.T) {
	c := NewCSeg(2)
	c.Add(1, 1)
	c.Reset()
	c.Grow(1024)
	for s := int32(0); s < 100; s++ {
		c.AddSymbolic(s * 64)
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d, want 100", c.Len())
	}
	if got := c.FlushSymbolic(); got != 100 {
		t.Fatalf("FlushSymbolic = %d", got)
	}
}

// TestCSegFlushAppends checks Flush appends to the passed slices like
// every other class (the engines flush into CSR sub-slices).
func TestCSegFlushAppends(t *testing.T) {
	c := NewCSeg(4)
	c.Add(9, 0.5)
	cols := make([]int32, 1, 4)
	vals := make([]float64, 1, 4)
	cols[0], vals[0] = -7, -7
	gc, gv := c.Flush(cols, vals)
	if len(gc) != 2 || gc[0] != -7 || gc[1] != 9 || gv[1] != 0.5 {
		t.Fatalf("append flush = (%v, %v)", gc, gv)
	}
}
