package accum

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSortMatchesHash(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewSort(4)
	h := NewHash(4)
	for i := 0; i < 3000; i++ {
		c := int32(rng.Intn(700))
		v := float64(rng.Intn(9) - 4)
		s.Add(c, v)
		h.Add(c, v)
	}
	if s.Len() != h.Len() {
		t.Fatalf("Len: sort %d, hash %d", s.Len(), h.Len())
	}
	sc, sv := s.Flush(nil, nil)
	hc, hv := h.Flush(nil, nil)
	for i := range sc {
		if sc[i] != hc[i] || sv[i] != hv[i] {
			t.Fatalf("pair %d: sort (%d,%v) hash (%d,%v)", i, sc[i], sv[i], hc[i], hv[i])
		}
	}
}

func TestSortSymbolic(t *testing.T) {
	s := NewSort(2)
	for i := 0; i < 40; i++ {
		s.AddSymbolic(int32(i % 8))
	}
	if n := s.FlushSymbolic(); n != 8 {
		t.Fatalf("symbolic = %d, want 8", n)
	}
	if n := s.FlushSymbolic(); n != 0 {
		t.Fatalf("after flush = %d, want 0", n)
	}
}

func TestSortLenCachedAcrossAdds(t *testing.T) {
	s := NewSort(2)
	s.Add(5, 1)
	s.Add(5, 1)
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Adding after Len must invalidate the cache.
	s.Add(7, 1)
	if s.Len() != 2 {
		t.Fatalf("Len after new column = %d", s.Len())
	}
	// Flush after Len-triggered sorting must still compress correctly.
	cols, vals := s.Flush(nil, nil)
	if len(cols) != 2 || cols[0] != 5 || vals[0] != 2 || cols[1] != 7 {
		t.Fatalf("Flush = %v %v", cols, vals)
	}
}

func TestSortReset(t *testing.T) {
	s := NewSort(2)
	s.Add(1, 1)
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len after Reset = %d", s.Len())
	}
	s.Add(3, 4)
	cols, vals := s.Flush(nil, nil)
	if len(cols) != 1 || cols[0] != 3 || vals[0] != 4 {
		t.Fatalf("stale state: %v %v", cols, vals)
	}
}

func TestQuickSortDenseAgree(t *testing.T) {
	g := func(ops []struct {
		Col uint16
		Val int8
	}) bool {
		const width = 1 << 16
		s := NewSort(4)
		d := NewDense(width)
		for _, op := range ops {
			s.Add(int32(op.Col), float64(op.Val))
			d.Add(int32(op.Col), float64(op.Val))
		}
		sc, sv := s.Flush(nil, nil)
		dc, dv := d.Flush(nil, nil)
		if len(sc) != len(dc) {
			return false
		}
		for i := range sc {
			if sc[i] != dc[i] || sv[i] != dv[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSortAccumulate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cols := make([]int32, 4096)
	for i := range cols {
		cols[i] = int32(rng.Intn(1 << 20))
	}
	acc := NewSort(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cols {
			acc.Add(c, 1.0)
		}
		acc.Flush(nil, nil)
	}
}
