package accum

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// reference accumulates with a plain map for cross-checking.
type reference map[int32]float64

func (r reference) sorted() ([]int32, []float64) {
	cols := make([]int32, 0, len(r))
	for c := range r {
		cols = append(cols, c)
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })
	vals := make([]float64, len(cols))
	for i, c := range cols {
		vals[i] = r[c]
	}
	return cols, vals
}

func accumulators(width int) map[string]Accumulator {
	return map[string]Accumulator{
		"hash":  NewHash(8),
		"dense": NewDense(width),
		"sort":  NewSort(8),
	}
}

func TestAccumulateMatchesReference(t *testing.T) {
	const width = 500
	rng := rand.New(rand.NewSource(1))
	for name, acc := range accumulators(width) {
		ref := reference{}
		for i := 0; i < 2000; i++ {
			c := int32(rng.Intn(width))
			v := float64(rng.Intn(7)) - 3 // small ints: exact addition
			acc.Add(c, v)
			ref[c] += v
		}
		if acc.Len() != len(ref) {
			t.Fatalf("%s: Len = %d, want %d", name, acc.Len(), len(ref))
		}
		cols, vals := acc.Flush(nil, nil)
		wc, wv := ref.sorted()
		if len(cols) != len(wc) {
			t.Fatalf("%s: flushed %d, want %d", name, len(cols), len(wc))
		}
		for i := range cols {
			if cols[i] != wc[i] || vals[i] != wv[i] {
				t.Fatalf("%s: pair %d = (%d,%v), want (%d,%v)", name, i, cols[i], vals[i], wc[i], wv[i])
			}
		}
		if acc.Len() != 0 {
			t.Fatalf("%s: Len after Flush = %d", name, acc.Len())
		}
	}
}

func TestFlushAppends(t *testing.T) {
	for name, acc := range accumulators(10) {
		acc.Add(3, 1)
		cols := []int32{99}
		vals := []float64{-1}
		cols, vals = acc.Flush(cols, vals)
		if len(cols) != 2 || cols[0] != 99 || cols[1] != 3 || vals[0] != -1 {
			t.Fatalf("%s: Flush did not append: %v %v", name, cols, vals)
		}
	}
}

func TestSymbolicCountsDistinct(t *testing.T) {
	for name, acc := range accumulators(100) {
		for i := 0; i < 50; i++ {
			acc.AddSymbolic(int32(i % 10))
		}
		if n := acc.FlushSymbolic(); n != 10 {
			t.Fatalf("%s: symbolic count = %d, want 10", name, n)
		}
		if n := acc.FlushSymbolic(); n != 0 {
			t.Fatalf("%s: symbolic count after flush = %d, want 0", name, n)
		}
	}
}

func TestMixedSymbolicNumeric(t *testing.T) {
	// Symbolic then flush then numeric on the same accumulator, as the
	// two-phase SpGEMM does row by row.
	for name, acc := range accumulators(20) {
		acc.AddSymbolic(5)
		acc.AddSymbolic(7)
		if n := acc.FlushSymbolic(); n != 2 {
			t.Fatalf("%s: symbolic = %d", name, n)
		}
		acc.Add(5, 2.5)
		acc.Add(5, 2.5)
		cols, vals := acc.Flush(nil, nil)
		if len(cols) != 1 || cols[0] != 5 || vals[0] != 5.0 {
			t.Fatalf("%s: numeric after symbolic = %v %v", name, cols, vals)
		}
	}
}

func TestReset(t *testing.T) {
	for name, acc := range accumulators(10) {
		acc.Add(1, 1)
		acc.Add(2, 2)
		acc.Reset()
		if acc.Len() != 0 {
			t.Fatalf("%s: Len after Reset = %d", name, acc.Len())
		}
		acc.Add(2, 7)
		cols, vals := acc.Flush(nil, nil)
		if len(cols) != 1 || vals[0] != 7 {
			t.Fatalf("%s: stale state after Reset: %v %v", name, cols, vals)
		}
	}
}

func TestHashGrowthBeyondCapacity(t *testing.T) {
	acc := NewHash(2) // deliberately undersized
	const n = 10000
	for i := 0; i < n; i++ {
		acc.Add(int32(i), 1)
	}
	if acc.Len() != n {
		t.Fatalf("Len = %d, want %d", acc.Len(), n)
	}
	cols, _ := acc.Flush(nil, nil)
	for i := range cols {
		if cols[i] != int32(i) {
			t.Fatalf("cols[%d] = %d after growth", i, cols[i])
		}
	}
}

func TestDenseGenerationWraparound(t *testing.T) {
	d := NewDense(4)
	d.gen = ^uint32(0) - 1 // two resets from wrapping
	d.Add(1, 5)
	d.Reset()
	d.Add(2, 6)
	d.Reset() // wraps here
	d.Add(3, 7)
	cols, vals := d.Flush(nil, nil)
	if len(cols) != 1 || cols[0] != 3 || vals[0] != 7 {
		t.Fatalf("wraparound leaked state: %v %v", cols, vals)
	}
}

func TestDenseWidth(t *testing.T) {
	if w := NewDense(17).Width(); w != 17 {
		t.Fatalf("Width = %d, want 17", w)
	}
}

// Property: both accumulators agree with each other on any input stream.
func TestQuickHashDenseAgree(t *testing.T) {
	f := func(ops []struct {
		Col uint16
		Val int8
	}) bool {
		const width = 1 << 16
		h := NewHash(4)
		d := NewDense(width)
		for _, op := range ops {
			h.Add(int32(op.Col), float64(op.Val))
			d.Add(int32(op.Col), float64(op.Val))
		}
		hc, hv := h.Flush(nil, nil)
		dc, dv := d.Flush(nil, nil)
		if len(hc) != len(dc) {
			return false
		}
		for i := range hc {
			if hc[i] != dc[i] || hv[i] != dv[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHashAccumulate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cols := make([]int32, 4096)
	for i := range cols {
		cols[i] = int32(rng.Intn(1 << 20))
	}
	acc := NewHash(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cols {
			acc.Add(c, 1.0)
		}
		acc.Reset()
	}
}

func BenchmarkDenseAccumulate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cols := make([]int32, 4096)
	for i := range cols {
		cols[i] = int32(rng.Intn(1 << 20))
	}
	acc := NewDense(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cols {
			acc.Add(c, 1.0)
		}
		acc.Reset()
	}
}
