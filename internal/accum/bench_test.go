package accum

import (
	"fmt"
	"math/rand"
	"testing"
)

// Accumulator micro-benchmarks across the row-size bands the adaptive
// exact path bins on (speck.PickClass): tiny rows (list band), medium
// sparse rows (hash band), and dense rows (bitmap band), plus a
// clustered pattern where the compressed-segment accumulator's
// one-probe-per-segment layout pays. Run with
//
//	go test ./internal/accum -bench Accum -benchtime 100x
//
// to compare classes within a band; the adaptive path's class
// thresholds were sanity-checked against these numbers.

// band describes one workload: n adds over distinct columns drawn from
// [0, width) with the given clustering (columns per 64-wide segment).
type band struct {
	name      string
	width     int
	distinct  int
	revisits  int // extra adds per distinct column (numeric accumulation)
	clustered bool
}

var bands = []band{
	{name: "tiny", width: 1 << 12, distinct: 12, revisits: 1},
	{name: "medium", width: 1 << 14, distinct: 256, revisits: 3},
	{name: "large", width: 1 << 16, distinct: 4096, revisits: 3},
	{name: "dense", width: 1 << 12, distinct: 2048, revisits: 7},
	{name: "clustered", width: 1 << 16, distinct: 4096, revisits: 3, clustered: true},
}

// pattern materializes a band's add sequence once, outside the timer.
func (b band) pattern() []int32 {
	rng := rand.New(rand.NewSource(97))
	cols := make([]int32, 0, b.distinct)
	seen := map[int32]bool{}
	for len(cols) < b.distinct {
		var c int32
		if b.clustered {
			// ~16 columns per segment: high csr.Segments compression.
			seg := int32(rng.Intn(b.width / 64 / 16))
			c = seg*64 + int32(rng.Intn(64))
		} else {
			c = int32(rng.Intn(b.width))
		}
		if !seen[c] {
			seen[c] = true
			cols = append(cols, c)
		}
	}
	adds := make([]int32, 0, b.distinct*(1+b.revisits))
	for r := 0; r <= b.revisits; r++ {
		adds = append(adds, cols...)
	}
	return adds
}

func benchAccum(b *testing.B, acc Accumulator, adds []int32) {
	cols := make([]int32, 0, len(adds))
	vals := make([]float64, 0, len(adds))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range adds {
			acc.Add(c, 1.0)
		}
		cols, vals = acc.Flush(cols[:0], vals[:0])
	}
	_ = cols
	_ = vals
}

func BenchmarkAccum(b *testing.B) {
	for _, bd := range bands {
		adds := bd.pattern()
		b.Run(fmt.Sprintf("%s/list", bd.name), func(b *testing.B) {
			if bd.distinct > 64 {
				b.Skip("list class only serves tiny rows")
			}
			benchAccum(b, NewList(bd.distinct), adds)
		})
		b.Run(fmt.Sprintf("%s/hash", bd.name), func(b *testing.B) {
			benchAccum(b, NewHash(bd.distinct), adds)
		})
		b.Run(fmt.Sprintf("%s/bitmap", bd.name), func(b *testing.B) {
			benchAccum(b, NewBitmap(bd.width), adds)
		})
		b.Run(fmt.Sprintf("%s/cseg", bd.name), func(b *testing.B) {
			benchAccum(b, NewCSeg(bd.distinct/8+2), adds)
		})
	}
}
