package accum

import "math/bits"

// Bitmap is a dense accumulator that tracks occupancy in a bitset
// instead of a touched list: values scatter into a width-sized array
// and Flush walks the set bits in ascending order, so the row comes
// out sorted with NO per-row sort at all. That makes it the workhorse
// of the estimation-elided numeric pass — the exact engines' Dense
// accumulator pays an O(nnz log nnz) sort per row at flush, which is
// the bulk of what separates a cold multiply from the warm numeric
// replay; the bit scan replaces it with width/64 word reads.
//
// Like Hash, Dense and List, Bitmap assigns on first touch and
// accumulates in product-arrival order, and its ascending-bit Flush
// emits exactly the sorted order the others emit — so a row
// accumulated here is bit-for-bit the row any other class produces.
type Bitmap struct {
	width int
	bits  []uint64
	vals  []float64
	n     int
}

// NewBitmap creates a bitmap accumulator for the half-open column
// range [0, width).
func NewBitmap(width int) *Bitmap {
	return &Bitmap{
		width: width,
		bits:  make([]uint64, (width+63)/64),
		vals:  make([]float64, width),
	}
}

// Grow ensures the accumulator covers width columns. Only valid on an
// empty accumulator (matching Hash.Grow's pool-reuse contract).
func (b *Bitmap) Grow(width int) {
	if b.width >= width {
		return
	}
	b.width = width
	b.bits = make([]uint64, (width+63)/64)
	b.vals = make([]float64, width)
}

// Width reports the column range the accumulator covers.
func (b *Bitmap) Width() int { return b.width }

// Add accumulates val into column col.
func (b *Bitmap) Add(col int32, val float64) {
	w, m := col>>6, uint64(1)<<(col&63)
	if b.bits[w]&m == 0 {
		b.bits[w] |= m
		b.vals[col] = val
		b.n++
		return
	}
	b.vals[col] += val
}

// AddSegment ORs a whole 64-column occupancy mask into the word for
// segment seg (column ids [seg*64, seg*64+64)) — the compressed
// symbolic step over csr.Segments rows: one OR plus a popcount covers
// every column the segment holds, with no per-column branch at all.
func (b *Bitmap) AddSegment(seg int32, mask uint64) {
	b.n += bits.OnesCount64(mask &^ b.bits[seg])
	b.bits[seg] |= mask
}

// AddSymbolic records the column without a value.
func (b *Bitmap) AddSymbolic(col int32) {
	w, m := col>>6, uint64(1)<<(col&63)
	if b.bits[w]&m == 0 {
		b.bits[w] |= m
		b.n++
	}
}

// Len reports the number of distinct columns.
func (b *Bitmap) Len() int { return b.n }

// Flush appends the (column, value) pairs in ascending column order —
// already sorted by construction — and resets.
func (b *Bitmap) Flush(cols []int32, vals []float64) ([]int32, []float64) {
	for w, word := range b.bits {
		if word == 0 {
			continue
		}
		base := int32(w << 6)
		for word != 0 {
			col := base + int32(bits.TrailingZeros64(word))
			cols = append(cols, col)
			vals = append(vals, b.vals[col])
			word &= word - 1
		}
		b.bits[w] = 0
	}
	b.n = 0
	return cols, vals
}

// FlushSymbolic reports the count and resets.
func (b *Bitmap) FlushSymbolic() int {
	n := b.n
	if n != 0 {
		for i := range b.bits {
			b.bits[i] = 0
		}
		b.n = 0
	}
	return n
}

// Reset clears the accumulator, retaining capacity.
func (b *Bitmap) Reset() {
	if b.n == 0 {
		return
	}
	for i := range b.bits {
		b.bits[i] = 0
	}
	b.n = 0
}

var _ Accumulator = (*Bitmap)(nil)
