package accum

// List is a linear-scan accumulator for rows expected to stay very
// sparse: intermediate products land in a short unordered array that
// is scanned on every insert. For a handful of distinct columns the
// scan beats both the hash probe (no hashing, no collisions, perfect
// locality) and the dense array (no width-sized state to touch). The
// adaptive estimation path routes rows whose estimated output is tiny
// here — the "merge-like" small-row class of its dense/hash/list
// selection.
//
// Like Hash and Dense, List assigns on first touch and accumulates in
// product-arrival order, and Flush emits the columns sorted — so a row
// accumulated by List is bit-for-bit the row Hash or Dense would have
// produced.
type List struct {
	cols []int32
	vals []float64
}

// NewList creates a list accumulator with room for capacity distinct
// columns before growing.
func NewList(capacity int) *List {
	if capacity < 4 {
		capacity = 4
	}
	return &List{
		cols: make([]int32, 0, capacity),
		vals: make([]float64, 0, capacity),
	}
}

// Grow ensures capacity for n distinct columns. Only valid on an empty
// accumulator (matching Hash.Grow's pool-reuse contract).
func (l *List) Grow(n int) {
	if cap(l.cols) >= n {
		return
	}
	l.cols = make([]int32, 0, n)
	l.vals = make([]float64, 0, n)
}

// Add accumulates val into column col.
func (l *List) Add(col int32, val float64) {
	for i, c := range l.cols {
		if c == col {
			l.vals[i] += val
			return
		}
	}
	l.cols = append(l.cols, col)
	l.vals = append(l.vals, val)
}

// AddSymbolic records the column without a value.
func (l *List) AddSymbolic(col int32) {
	for _, c := range l.cols {
		if c == col {
			return
		}
	}
	l.cols = append(l.cols, col)
	l.vals = append(l.vals, 0)
}

// Len reports the number of distinct columns.
func (l *List) Len() int { return len(l.cols) }

// Flush emits the sorted (column, value) pairs and resets.
func (l *List) Flush(cols []int32, vals []float64) ([]int32, []float64) {
	start := len(cols)
	cols = append(cols, l.cols...)
	vals = append(vals, l.vals...)
	sortPairs(cols[start:], vals[start:])
	l.Reset()
	return cols, vals
}

// FlushSymbolic reports the count and resets.
func (l *List) FlushSymbolic() int {
	n := len(l.cols)
	l.Reset()
	return n
}

// Reset clears the accumulator, retaining capacity.
func (l *List) Reset() {
	l.cols = l.cols[:0]
	l.vals = l.vals[:0]
}

var _ Accumulator = (*List)(nil)
