package accum

import "sort"

// Sort is an expand-sort-compress (ESC) accumulator in the style of
// Bell et al. [7,9] (the paper's related work): intermediate products
// are appended unsorted to an expansion buffer; on Flush the buffer is
// sorted by column id and compressed by summing runs of equal columns.
// ESC needs no hash table or dense array but touches every
// intermediate product twice; it is the classic baseline the hash and
// dense accumulators are measured against.
type Sort struct {
	cols []int32
	vals []float64
	// distinct caches the Len computation between calls; -1 = dirty.
	distinct int
}

// NewSort creates an ESC accumulator with the given initial expansion
// capacity.
func NewSort(capacity int) *Sort {
	return &Sort{
		cols:     make([]int32, 0, capacity),
		vals:     make([]float64, 0, capacity),
		distinct: 0,
	}
}

// Add appends an intermediate product to the expansion buffer.
func (s *Sort) Add(col int32, val float64) {
	s.cols = append(s.cols, col)
	s.vals = append(s.vals, val)
	s.distinct = -1
}

// AddSymbolic appends a column to the expansion buffer.
func (s *Sort) AddSymbolic(col int32) {
	s.cols = append(s.cols, col)
	s.vals = append(s.vals, 0)
	s.distinct = -1
}

// Len reports the number of distinct columns, sorting the buffer if
// needed (ESC has no cheaper way to know).
func (s *Sort) Len() int {
	if s.distinct >= 0 {
		return s.distinct
	}
	s.sortBuffer()
	n := 0
	for i := range s.cols {
		if i == 0 || s.cols[i] != s.cols[i-1] {
			n++
		}
	}
	s.distinct = n
	return n
}

func (s *Sort) sortBuffer() {
	sort.Sort(&pairSorter{s.cols, s.vals})
}

// Flush sorts, compresses and appends the (column, value) pairs.
func (s *Sort) Flush(cols []int32, vals []float64) ([]int32, []float64) {
	s.sortBuffer()
	for i := 0; i < len(s.cols); {
		c := s.cols[i]
		v := s.vals[i]
		for i++; i < len(s.cols) && s.cols[i] == c; i++ {
			v += s.vals[i]
		}
		cols = append(cols, c)
		vals = append(vals, v)
	}
	s.Reset()
	return cols, vals
}

// FlushSymbolic reports the distinct-column count and resets.
func (s *Sort) FlushSymbolic() int {
	n := s.Len()
	s.Reset()
	return n
}

// Reset clears the expansion buffer, retaining capacity.
func (s *Sort) Reset() {
	s.cols = s.cols[:0]
	s.vals = s.vals[:0]
	s.distinct = 0
}

var _ Accumulator = (*Sort)(nil)
