package accum

import (
	"sync"
	"sync/atomic"
)

// Accumulator pooling. The SpGEMM survey literature identifies per-row
// accumulator allocation churn as a recurring CPU bottleneck: a
// two-phase engine that allocates one accumulator per worker per phase
// per call rebuilds the same hash tables and dense arrays over and
// over. These pools recycle accumulators across rows, phases,
// Multiply calls and engines (the hybrid CPU worker multiplies many
// chunks in a row, hitting the same pooled tables each time).
// sync.Pool keeps per-P caches, so Get/Put on the hot path almost
// never contends.
//
// Accumulators returned by the Get functions are empty; Put resets
// before pooling so a pooled accumulator never leaks a previous row.

var (
	hashPool  = sync.Pool{New: func() any { poolNews.Add(1); return NewHash(16) }}
	densePool = sync.Pool{New: func() any { poolNews.Add(1); return NewDense(0) }}
	sortPool  = sync.Pool{New: func() any { poolNews.Add(1); return NewSort(16) }}
	listPool  = sync.Pool{New: func() any { poolNews.Add(1); return NewList(16) }}
	bmapPool  = sync.Pool{New: func() any { poolNews.Add(1); return NewBitmap(0) }}
	csegPool  = sync.Pool{New: func() any { poolNews.Add(1); return NewCSeg(16) }}

	// poolGets counts Get* calls and poolNews the pool misses that fell
	// through to a fresh allocation, so the observability layer can
	// report the pool hit rate (gets - news hits). Both are process-wide
	// monotonic counters; consumers diff snapshots around a run.
	poolGets atomic.Int64
	poolNews atomic.Int64
)

// PoolCounters returns the process-wide accumulator-pool counters:
// total Get* calls and the subset that missed the pool and allocated.
func PoolCounters() (gets, news int64) {
	return poolGets.Load(), poolNews.Load()
}

// GetHash returns an empty pooled hash accumulator able to hold at
// least capacity distinct columns before growing.
func GetHash(capacity int) *Hash {
	poolGets.Add(1)
	h := hashPool.Get().(*Hash)
	h.Grow(capacity)
	return h
}

// PutHash resets h and returns it to the pool. The caller must not use
// h afterwards.
func PutHash(h *Hash) {
	h.Reset()
	hashPool.Put(h)
}

// GetDense returns an empty pooled dense accumulator covering columns
// [0, width).
func GetDense(width int) *Dense {
	poolGets.Add(1)
	d := densePool.Get().(*Dense)
	d.Grow(width)
	return d
}

// PutDense resets d and returns it to the pool.
func PutDense(d *Dense) {
	d.Reset()
	densePool.Put(d)
}

// GetSort returns an empty pooled ESC accumulator with at least the
// given expansion capacity.
func GetSort(capacity int) *Sort {
	poolGets.Add(1)
	s := sortPool.Get().(*Sort)
	s.Grow(capacity)
	return s
}

// PutSort resets s and returns it to the pool.
func PutSort(s *Sort) {
	s.Reset()
	sortPool.Put(s)
}

// GetList returns an empty pooled list accumulator with room for at
// least capacity distinct columns before growing.
func GetList(capacity int) *List {
	poolGets.Add(1)
	l := listPool.Get().(*List)
	l.Grow(capacity)
	return l
}

// PutList resets l and returns it to the pool.
func PutList(l *List) {
	l.Reset()
	listPool.Put(l)
}

// GetBitmap returns an empty pooled bitmap accumulator covering
// columns [0, width).
func GetBitmap(width int) *Bitmap {
	poolGets.Add(1)
	b := bmapPool.Get().(*Bitmap)
	b.Grow(width)
	return b
}

// PutBitmap resets b and returns it to the pool.
func PutBitmap(b *Bitmap) {
	b.Reset()
	bmapPool.Put(b)
}

// GetCSeg returns an empty pooled compressed-segment accumulator able
// to hold at least capacity distinct segments before growing.
func GetCSeg(capacity int) *CSeg {
	poolGets.Add(1)
	c := csegPool.Get().(*CSeg)
	c.Grow(capacity)
	return c
}

// PutCSeg resets c and returns it to the pool.
func PutCSeg(c *CSeg) {
	c.Reset()
	csegPool.Put(c)
}

// Put returns any accumulator obtained from a Get function to its
// pool. Unknown implementations are dropped.
func Put(a Accumulator) {
	switch acc := a.(type) {
	case *Hash:
		PutHash(acc)
	case *Dense:
		PutDense(acc)
	case *Sort:
		PutSort(acc)
	case *List:
		PutList(acc)
	case *Bitmap:
		PutBitmap(acc)
	case *CSeg:
		PutCSeg(acc)
	}
}

// Grow resizes the table so at least capacity distinct columns fit
// before rehashing. It must only be called on an empty accumulator
// (freshly constructed or after Reset).
func (h *Hash) Grow(capacity int) {
	need := 16
	for need < capacity*2 {
		need <<= 1
	}
	if len(h.keys) < need {
		h.init(capacity)
	}
}

// Grow widens the accumulator to cover columns [0, width). It must
// only be called on an empty accumulator.
func (d *Dense) Grow(width int) {
	if len(d.vals) >= width {
		return
	}
	d.vals = make([]float64, width)
	d.stamp = make([]uint32, width)
	d.gen = 1
	d.touched = d.touched[:0]
}

// Grow reserves expansion capacity. It must only be called on an empty
// accumulator.
func (s *Sort) Grow(capacity int) {
	if cap(s.cols) < capacity {
		s.cols = make([]int32, 0, capacity)
		s.vals = make([]float64, 0, capacity)
	}
}
