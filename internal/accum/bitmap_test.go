package accum

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestBitmapMatchesHash drives Bitmap and Hash with the same product
// stream and demands bit-identical flushes — the invariant that lets
// the adaptive numeric pass put any row on the bitmap class.
func TestBitmapMatchesHash(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		bm := NewBitmap(300)
		hash := NewHash(16)
		n := 1 + rng.Intn(120)
		for i := 0; i < n; i++ {
			col := int32(rng.Intn(300))
			val := rng.NormFloat64()
			bm.Add(col, val)
			hash.Add(col, val)
		}
		if bm.Len() != hash.Len() {
			t.Fatalf("trial %d: Len %d != %d", trial, bm.Len(), hash.Len())
		}
		bc, bv := bm.Flush(nil, nil)
		hc, hv := hash.Flush(nil, nil)
		if len(bc) != len(hc) {
			t.Fatalf("trial %d: lengths %d/%d", trial, len(bc), len(hc))
		}
		for i := range bc {
			if bc[i] != hc[i] {
				t.Fatalf("trial %d: col[%d] %d != %d", trial, i, bc[i], hc[i])
			}
			if math.Float64bits(bv[i]) != math.Float64bits(hv[i]) {
				t.Fatalf("trial %d: val[%d] bits differ", trial, i)
			}
		}
	}
}

func TestBitmapFlushSortedAndAppends(t *testing.T) {
	b := NewBitmap(128)
	for _, c := range []int32{90, 3, 65, 3, 90, 127, 0} {
		b.Add(c, 1)
	}
	cols, vals := b.Flush([]int32{100}, []float64{0})
	if cols[0] != 100 {
		t.Fatal("Flush clobbered the prefix")
	}
	tail := cols[1:]
	if !sort.SliceIsSorted(tail, func(i, j int) bool { return tail[i] < tail[j] }) {
		t.Fatalf("unsorted flush: %v", tail)
	}
	if len(tail) != 5 || vals[1]+vals[2]+vals[3]+vals[4]+vals[5] != 7 {
		t.Fatalf("flush = %v / %v", tail, vals[1:])
	}
	if b.Len() != 0 {
		t.Fatal("Flush did not reset")
	}
	// The flush must have cleared every word, so a reuse starts clean.
	b.Add(64, 2)
	cols, vals = b.Flush(nil, nil)
	if len(cols) != 1 || cols[0] != 64 || vals[0] != 2 {
		t.Fatalf("reuse after flush = %v / %v", cols, vals)
	}
}

func TestBitmapSymbolic(t *testing.T) {
	b := NewBitmap(64)
	for _, c := range []int32{5, 5, 2, 63, 2} {
		b.AddSymbolic(c)
	}
	if n := b.FlushSymbolic(); n != 3 {
		t.Fatalf("FlushSymbolic = %d, want 3", n)
	}
	if b.Len() != 0 {
		t.Fatal("FlushSymbolic did not reset")
	}
	b.Add(7, 1)
	if b.Len() != 1 {
		t.Fatal("bits leaked across FlushSymbolic")
	}
}

func TestBitmapGrowAndPool(t *testing.T) {
	b := NewBitmap(0)
	b.Grow(130)
	for i := int32(0); i < 130; i++ {
		b.Add(i, float64(i))
	}
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	PutBitmap(b)
	got := GetBitmap(64)
	if got.Len() != 0 {
		t.Fatal("pooled bitmap not reset")
	}
	got.Add(1, 1)
	PutBitmap(got)
}
