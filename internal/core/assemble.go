package core

import (
	"fmt"

	"repro/internal/csr"
	"repro/internal/speck"
)

// Assemble merges all chunk results into the final product matrix on
// the host. Because chunks of one row panel cover disjoint, ordered
// column ranges, each output row is the concatenation of its chunk
// rows in column-panel order, with column ids rebased to global.
func (e *Engine) Assemble() (*csr.Matrix, error) {
	nc := len(e.ColPanels)
	for id := 0; id < e.NumChunks(); id++ {
		if e.Results[id] == nil {
			return nil, fmt.Errorf("core: chunk %d missing (processed %d of %d)", id, len(e.Results), e.NumChunks())
		}
	}
	return AssembleChunks(e.rows, e.cols, len(e.RowPanels), nc,
		func(r, c int) *csr.Matrix { return e.Results[r*nc+c].C },
		func(r int) int { return e.RowPanels[r].Start },
		func(c int) int { return e.ColPanels[c].Start },
	)
}

// AssembleChunks builds the final rows x cols matrix from a grid of
// chunk matrices. chunk(r,c) returns the chunk of row panel r and
// column panel c (panel-local columns); rowStart and colStart give the
// global offsets of each panel.
func AssembleChunks(rows, cols, numRow, numCol int,
	chunk func(r, c int) *csr.Matrix,
	rowStart func(r int) int,
	colStart func(c int) int) (*csr.Matrix, error) {

	out := &csr.Matrix{Rows: rows, Cols: cols, RowOffsets: make([]int64, rows+1)}
	// Pass 1: row sizes.
	for r := 0; r < numRow; r++ {
		base := rowStart(r)
		for c := 0; c < numCol; c++ {
			m := chunk(r, c)
			for lr := 0; lr < m.Rows; lr++ {
				out.RowOffsets[base+lr+1] += m.RowNnz(lr)
			}
		}
	}
	for i := 0; i < rows; i++ {
		out.RowOffsets[i+1] += out.RowOffsets[i]
	}
	nnz := out.RowOffsets[rows]
	out.ColIDs = make([]int32, nnz)
	out.Data = make([]float64, nnz)

	// Pass 2: fill, walking column panels in order so each row stays
	// sorted.
	pos := make([]int64, rows)
	for r := 0; r < numRow; r++ {
		base := rowStart(r)
		for lr := 0; lr < rowEnd(r, numRow, rows, rowStart)-base; lr++ {
			pos[base+lr] = out.RowOffsets[base+lr]
		}
		for c := 0; c < numCol; c++ {
			m := chunk(r, c)
			off := int32(colStart(c))
			for lr := 0; lr < m.Rows; lr++ {
				gc, gv := m.Row(lr)
				w := pos[base+lr]
				for i := range gc {
					out.ColIDs[w] = gc[i] + off
					out.Data[w] = gv[i]
					w++
				}
				pos[base+lr] = w
			}
		}
	}
	return out, nil
}

func rowEnd(r, numRow, rows int, rowStart func(int) int) int {
	if r+1 < numRow {
		return rowStart(r + 1)
	}
	return rows
}

// PutCPUResult gives the hybrid package a uniform way to register a
// chunk computed on the CPU: it wraps a bare product matrix in a
// speck.Result carrying its flop count.
func (e *Engine) PutCPUResult(id int, c *csr.Matrix, flops int64) {
	e.Results[id] = &speck.Result{
		C:           c,
		Flops:       flops,
		OutputBytes: c.Bytes(),
	}
}
