package core

import (
	"fmt"

	"repro/internal/csr"
	"repro/internal/parallel"
	"repro/internal/speck"
)

// Assemble merges all chunk results into the final product matrix on
// the host. Because chunks of one row panel cover disjoint, ordered
// column ranges, each output row is the concatenation of its chunk
// rows in column-panel order, with column ids rebased to global.
func (e *Engine) Assemble() (*csr.Matrix, error) {
	nc := len(e.ColPanels)
	for id := 0; id < e.NumChunks(); id++ {
		if e.Results[id] == nil {
			return nil, fmt.Errorf("core: chunk %d missing (processed %d of %d)", id, len(e.Results), e.NumChunks())
		}
	}
	defer e.Opts.Metrics.StartWall("host", "assemble")()
	return AssembleChunks(e.rows, e.cols, len(e.RowPanels), nc,
		func(r, c int) *csr.Matrix { return e.Results[r*nc+c].C },
		func(r int) int { return e.RowPanels[r].Start },
		func(c int) int { return e.ColPanels[c].Start },
	)
}

// AssembleChunks builds the final rows x cols matrix from a grid of
// chunk matrices. chunk(r,c) returns the chunk of row panel r and
// column panel c (panel-local columns); rowStart and colStart give the
// global offsets of each panel.
//
// Assembly is the sequential tail of every out-of-core, hybrid and
// multi-GPU run, so both passes run row-parallel on the shared
// runtime: every output row is owned by exactly one goroutine (its
// chunks cover disjoint column ranges), and the row-offset array comes
// from a parallel prefix sum.
func AssembleChunks(rows, cols, numRow, numCol int,
	chunk func(r, c int) *csr.Matrix,
	rowStart func(r int) int,
	colStart func(c int) int) (*csr.Matrix, error) {

	out := &csr.Matrix{Rows: rows, Cols: cols, RowOffsets: make([]int64, rows+1)}

	// Resolve the grid once so the parallel passes index slices instead
	// of calling back per row, and map each global row to its panel.
	grid := make([]*csr.Matrix, numRow*numCol)
	for r := 0; r < numRow; r++ {
		for c := 0; c < numCol; c++ {
			grid[r*numCol+c] = chunk(r, c)
		}
	}
	offs := make([]int32, numCol)
	for c := 0; c < numCol; c++ {
		offs[c] = int32(colStart(c))
	}
	panelOf := make([]int32, rows)
	for r := 0; r < numRow; r++ {
		for i := rowStart(r); i < rowEnd(r, numRow, rows, rowStart); i++ {
			panelOf[i] = int32(r)
		}
	}

	grain := parallel.Grain(rows, 0)

	// Pass 1: row sizes (each row sums its chunk-row lengths across the
	// column panels), then a parallel prefix sum for the offsets.
	rowNnz := make([]int64, rows)
	parallel.For(0, rows, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := int(panelOf[i])
			lr := i - rowStart(r)
			var n int64
			for c := 0; c < numCol; c++ {
				if m := grid[r*numCol+c]; lr < m.Rows {
					n += m.RowNnz(lr)
				}
			}
			rowNnz[i] = n
		}
	})
	parallel.PrefixSum(0, out.RowOffsets, rowNnz)
	nnz := out.RowOffsets[rows]
	out.ColIDs = make([]int32, nnz)
	out.Data = make([]float64, nnz)

	// Pass 2: fill, walking column panels in order so each row stays
	// sorted; rows are independent, so the loop is parallel.
	parallel.For(0, rows, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := int(panelOf[i])
			lr := i - rowStart(r)
			w := out.RowOffsets[i]
			for c := 0; c < numCol; c++ {
				m := grid[r*numCol+c]
				if lr >= m.Rows {
					continue
				}
				off := offs[c]
				gc, gv := m.Row(lr)
				for j := range gc {
					out.ColIDs[w] = gc[j] + off
					out.Data[w] = gv[j]
					w++
				}
			}
		}
	})
	return out, nil
}

func rowEnd(r, numRow, rows int, rowStart func(int) int) int {
	if r+1 < numRow {
		return rowStart(r + 1)
	}
	return rows
}

// PutCPUResult gives the hybrid package a uniform way to register a
// chunk computed on the CPU: it wraps a bare product matrix in a
// speck.Result carrying its flop count.
func (e *Engine) PutCPUResult(id int, c *csr.Matrix, flops int64) {
	e.Results[id] = &speck.Result{
		C:           c,
		Flops:       flops,
		OutputBytes: c.Bytes(),
	}
}
