package core

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/speck"
)

// processAsync is the paper's asynchronous pipeline (Section IV-B,
// Figure 6). For each chunk i in schedule order:
//
//	H2D inputs(i)
//	analysis kernel(i)
//	D2H row info(i)                 <- transfer 1 in Figure 6
//	  host grouping
//	D2H output portion 1 of (i-1)   <- transfer 2, overlaps symbolic(i)
//	symbolic kernels(i)
//	D2H nnz info(i)                 <- transfer 3
//	  host prefix sum, arena offsets assigned
//	D2H output portion 2 of (i-1)   <- transfer 4, overlaps numeric(i)
//	numeric kernels(i)
//
// All D2H transfers are enqueued on one in-order stream, giving exactly
// the Figure 6 ordering on the single device-to-host DMA engine. The
// output region is double buffered: a chunk's numeric phase cannot
// start until the buffer last used two chunks ago has drained to the
// host. No device allocation happens after the initial arena Malloc,
// so nothing ever serializes the device mid-pipeline.
func (e *Engine) processAsync(p *sim.Proc, ids []int) {
	dev := e.Dev

	if _, err := dev.Malloc(p, "arena", dev.Cfg.MemoryBytes); err != nil {
		e.fail(err)
		return
	}
	arena := dev.Cfg.MemoryBytes
	var arenaUsed int64
	var cache *inputCache
	// reserve takes arena space for working structures, evicting cached
	// input panels (except the pinned current ones) when necessary.
	reserve := func(p *sim.Proc, label string, bytes int64, pinned ...string) bool {
		for arenaUsed+bytes > arena-cache.bytes {
			if !cache.evictOne(p, pinned...) {
				e.fail(fmt.Errorf("core: async pipeline does not fit arena (%d used + %d %s > %d); increase RowPanels/ColPanels",
					arenaUsed, bytes, label, arena))
				return false
			}
		}
		arenaUsed += bytes
		return true
	}

	out := dev.NewStream("d2h-out")

	// Output buffering (the paper double-buffers): slotDone[s] fires
	// when the output occupying slot s has fully reached the host.
	nbuf := e.Opts.OutputBuffers
	slotDone := make([]*sim.Signal, nbuf)
	for s := range slotDone {
		slotDone[s] = &sim.Signal{}
		slotDone[s].Fire(p) // all slots start free
	}
	slotBytes := make([]int64, nbuf)

	type pending struct {
		id   int
		res  *speck.Result
		slot int
	}
	var prev *pending
	cache = newInputCache(e, false)

	slotCounter := 0
	for _, id := range ids {
		rp, cp := e.chunkPanels(id)
		res, err := speck.Compute(rp.M, cp.M, e.cm)
		if err != nil {
			e.fail(err)
			return
		}
		e.Results[id] = res
		if res.Flops == 0 {
			// Empty chunk: known from the host-side flop analysis, no
			// device work or transfer required.
			continue
		}
		slot := slotCounter % nbuf
		slotCounter++

		// Inputs stay resident between chunks while the arena allows.
		aBytes, bBytes := inputBytes(rp, cp)
		aKey, bKey := panelKeys(rp, cp)
		capacityLeft := func() int64 { return arena - arenaUsed }
		if err := cache.ensure(p, aKey, lbl("A panel", id), aBytes, capacityLeft, aKey, bKey); err != nil {
			e.fail(err)
			return
		}
		if err := cache.ensure(p, bKey, lbl("B panel", id), bBytes, capacityLeft, aKey, bKey); err != nil {
			e.fail(err)
			return
		}

		// Row analysis, then its (small) D2H. The previous chunk's
		// output is deliberately NOT transferred yet: the paper gives
		// up overlap during this short stage so the pipeline can keep
		// processing chunk i without waiting on chunk i-1's transfer.
		if !reserve(p, "workspace", res.WorkspaceBytes, aKey, bKey) {
			return
		}
		dev.Kernel(p, lbl("analysis", id), res.AnalysisSec)
		rowInfoDone := out.Enqueue(lbl("row info", id), func(q *sim.Proc) {
			dev.TransferD2H(q, lbl("row info", id), res.RowInfoBytes)
		})
		p.Await(rowInfoDone) // host grouping needs the row analysis

		// Transfer 2: first portion of the previous chunk's output,
		// overlapping this chunk's symbolic phase.
		if prev != nil {
			bytes1 := int64(float64(prev.res.OutputBytes) * e.Opts.SplitFraction)
			pr := prev
			out.Enqueue(lbl("output p1", pr.id), func(q *sim.Proc) {
				dev.TransferD2H(q, lbl("output p1", pr.id), bytes1)
			})
		}
		e.launchGroupKernels(p, id, res, "symbolic")

		// Transfer 3: this chunk's symbolic results; the host needs
		// them to assign arena offsets for the output arrays.
		nnzInfoDone := out.Enqueue(lbl("nnz info", id), func(q *sim.Proc) {
			dev.TransferD2H(q, lbl("nnz info", id), res.NnzInfoBytes)
		})
		p.Await(nnzInfoDone)

		// Transfer 4: remainder of the previous chunk's output,
		// overlapping this chunk's numeric phase. Its completion frees
		// the previous chunk's buffer slot.
		if prev != nil {
			pr := prev
			bytes2 := pr.res.OutputBytes - int64(float64(pr.res.OutputBytes)*e.Opts.SplitFraction)
			done := out.Enqueue(lbl("output p2", pr.id), func(q *sim.Proc) {
				dev.TransferD2H(q, lbl("output p2", pr.id), bytes2)
			})
			slotDone[pr.slot] = done
		}

		// Output allocation: wait for this chunk's buffer slot to have
		// drained (two chunks ago), then take arena space for it.
		p.Await(slotDone[slot])
		arenaUsed -= slotBytes[slot]
		slotBytes[slot] = res.OutputBytes
		if !reserve(p, "output", res.OutputBytes, aKey, bKey) {
			return
		}
		e.launchGroupKernels(p, id, res, "numeric")
		arenaUsed -= res.WorkspaceBytes

		prev = &pending{id: id, res: res, slot: slot}
	}

	// Drain: transfer the last chunk's output (both portions).
	if prev != nil {
		pr := prev
		bytes1 := int64(float64(pr.res.OutputBytes) * e.Opts.SplitFraction)
		out.Enqueue(lbl("output p1", pr.id), func(q *sim.Proc) {
			dev.TransferD2H(q, lbl("output p1", pr.id), bytes1)
		})
		done := out.Enqueue(lbl("output p2", pr.id), func(q *sim.Proc) {
			dev.TransferD2H(q, lbl("output p2", pr.id), pr.res.OutputBytes-bytes1)
		})
		p.Await(done)
	}
	// Await any remaining slot drains so the makespan includes them.
	p.AwaitAll(slotDone...)
}
