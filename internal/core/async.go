package core

import (
	"errors"
	"fmt"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/speck"
)

// processAsync is the paper's asynchronous pipeline (Section IV-B,
// Figure 6). For each chunk i in schedule order:
//
//	H2D inputs(i)
//	analysis kernel(i)
//	D2H row info(i)                 <- transfer 1 in Figure 6
//	  host grouping
//	D2H output portion 1 of (i-1)   <- transfer 2, overlaps symbolic(i)
//	symbolic kernels(i)
//	D2H nnz info(i)                 <- transfer 3
//	  host prefix sum, arena offsets assigned
//	D2H output portion 2 of (i-1)   <- transfer 4, overlaps numeric(i)
//	numeric kernels(i)
//
// All D2H transfers are enqueued on one in-order stream, giving exactly
// the Figure 6 ordering on the single device-to-host DMA engine. The
// output region is double buffered: a chunk's numeric phase cannot
// start until the buffer last used two chunks ago has drained to the
// host. No device allocation happens after the initial arena Malloc,
// so nothing ever serializes the device mid-pipeline.
//
// Under fault injection each device operation runs through the chunk's
// retry budget (devOp). A chunk that cannot complete — retries
// exhausted, its allocation misfit, or the device lost — is rolled
// back and recorded as failed, while the previous chunk's two output
// transfers are still enqueued so a healthy predecessor always drains;
// the pipeline then moves on (or, on device loss, fails the rest of
// the schedule). Completion signals fire even for failed stream
// operations, so the final drain never deadlocks.
func (e *Engine) processAsync(p *sim.Proc, ids []int) []int {
	dev := e.Dev
	var failedIDs []int
	fail := func(id int, err error) {
		if _, seen := e.failed[id]; seen {
			return
		}
		e.failChunk(id, err)
		failedIDs = append(failedIDs, id)
	}

	// One arena allocation per engine: failover may route extra chunks
	// through ProcessChunks again, reusing the resident arena.
	arena := dev.UsableBytes()
	if !e.arenaAllocated {
		a, err := dev.Malloc(p, "arena", arena)
		if err != nil {
			for _, id := range ids {
				fail(id, err)
			}
			return failedIDs
		}
		e.trackAlloc(a)
		e.arenaAllocated = true
	}
	var arenaUsed int64
	var cache *inputCache
	// reserve takes arena space for working structures, evicting cached
	// input panels (except the pinned current ones) when necessary.
	reserve := func(p *sim.Proc, id int, label string, bytes int64, pinned ...string) error {
		for arenaUsed+bytes > arena-cache.bytes {
			if !cache.evictOne(p, pinned...) {
				return fmt.Errorf("core: chunk %d %s (%d bytes) does not fit the arena (%d used of %d); increase RowPanels/ColPanels: %w",
					id, label, bytes, arenaUsed, arena, faults.ErrOOM)
			}
		}
		arenaUsed += bytes
		return nil
	}

	out := dev.NewStream("d2h-out")

	// Output buffering (the paper double-buffers): slotDone[s] fires
	// when the output occupying slot s has fully reached the host.
	nbuf := e.Opts.OutputBuffers
	slotDone := make([]*sim.Signal, nbuf)
	for s := range slotDone {
		slotDone[s] = &sim.Signal{}
		slotDone[s].Fire(p) // all slots start free
	}
	slotBytes := make([]int64, nbuf)

	type pending struct {
		id     int
		res    *speck.Result
		slot   int
		p1Sent bool
		p2Sent bool
	}
	var prev *pending
	cache = newInputCache(e, false)

	// sendP1 and sendP2 enqueue the previous chunk's two output
	// portions (transfers 2 and 4 of Figure 6). The failure paths call
	// them too, so a healthy previous chunk still drains when the
	// current chunk dies; if the transfer itself fails past its retry
	// budget the previous chunk is the one marked failed, because its
	// output never reached the host.
	sendP1 := func(pr *pending) {
		if pr == nil || pr.p1Sent {
			return
		}
		pr.p1Sent = true
		bytes1 := int64(float64(pr.res.OutputBytes) * e.Opts.SplitFraction)
		out.Enqueue(lbl("output p1", pr.id), func(q *sim.Proc) {
			if err := e.devOp(q, pr.id, func() error {
				return dev.TransferD2H(q, lbl("output p1", pr.id), bytes1)
			}); err != nil {
				fail(pr.id, err)
			}
		})
	}
	sendP2 := func(pr *pending) {
		if pr == nil || pr.p2Sent {
			return
		}
		pr.p2Sent = true
		bytes1 := int64(float64(pr.res.OutputBytes) * e.Opts.SplitFraction)
		bytes2 := pr.res.OutputBytes - bytes1
		done := out.Enqueue(lbl("output p2", pr.id), func(q *sim.Proc) {
			if err := e.devOp(q, pr.id, func() error {
				return dev.TransferD2H(q, lbl("output p2", pr.id), bytes2)
			}); err != nil {
				fail(pr.id, err)
			}
		})
		slotDone[pr.slot] = done
	}

	slotCounter := 0
loop:
	for idx, id := range ids {
		if e.pastDeadline() {
			break
		}
		rp, cp := e.chunkPanels(id)
		res, warm, err := e.chunkResult(id, rp, cp)
		if err != nil {
			e.fail(err) // host-side arithmetic failure is terminal
			break
		}
		e.Results[id] = res
		if res.Flops == 0 {
			// Empty chunk: known from the host-side flop analysis, no
			// device work or transfer required.
			continue
		}
		slot := slotCounter % nbuf
		slotCounter++

		// abort routes a chunk failure: complete the previous chunk's
		// output obligations, roll back this chunk's arena accounting,
		// and either move on (retries exhausted, misfit) or fail the
		// rest of the schedule (device lost). Returns true to stop.
		reservedWS, reservedOut := false, false
		abort := func(err error) bool {
			sendP1(prev)
			sendP2(prev)
			prev = nil
			if reservedOut {
				arenaUsed -= res.OutputBytes
				slotBytes[slot] = 0
			}
			if reservedWS {
				arenaUsed -= res.WorkspaceBytes
			}
			fail(id, err)
			if errors.Is(err, faults.ErrDeviceLost) {
				for _, rest := range ids[idx+1:] {
					fail(rest, fmt.Errorf("core: chunk %d unprocessed: %w", rest, faults.ErrDeviceLost))
				}
				return true
			}
			return false
		}

		// Inputs stay resident between chunks while the arena allows.
		aBytes, bBytes := inputBytes(rp, cp)
		aKey, bKey := panelKeys(rp, cp)
		capacityLeft := func() int64 { return arena - arenaUsed }
		if err := cache.ensure(p, id, aKey, lbl("A panel", id), aBytes, capacityLeft, aKey, bKey); err != nil {
			if abort(err) {
				break loop
			}
			continue
		}
		if err := cache.ensure(p, id, bKey, lbl("B panel", id), bBytes, capacityLeft, aKey, bKey); err != nil {
			if abort(err) {
				break loop
			}
			continue
		}

		// Row analysis, then its (small) D2H. The previous chunk's
		// output is deliberately NOT transferred yet: the paper gives
		// up overlap during this short stage so the pipeline can keep
		// processing chunk i without waiting on chunk i-1's transfer.
		if err := reserve(p, id, "workspace", res.WorkspaceBytes, aKey, bKey); err != nil {
			if abort(err) {
				break
			}
			continue
		}
		reservedWS = true
		if !warm {
			if err := e.devOp(p, id, func() error {
				return dev.Kernel(p, lbl("analysis", id), res.AnalysisSec)
			}); err != nil {
				if abort(err) {
					break
				}
				continue
			}
			var rowInfoErr error
			rowInfoDone := out.Enqueue(lbl("row info", id), func(q *sim.Proc) {
				rowInfoErr = e.devOp(q, id, func() error {
					return dev.TransferD2H(q, lbl("row info", id), res.RowInfoBytes)
				})
			})
			p.Await(rowInfoDone) // host grouping needs the row analysis
			if rowInfoErr != nil {
				if abort(rowInfoErr) {
					break
				}
				continue
			}
		}

		// Transfer 2: first portion of the previous chunk's output,
		// overlapping this chunk's symbolic phase. A warm chunk has no
		// symbolic phase — its structure came from the plan cache — so
		// the transfer overlaps the numeric phase instead.
		sendP1(prev)
		if !warm {
			if err := e.launchGroupKernels(p, id, res, "symbolic"); err != nil {
				if abort(err) {
					break
				}
				continue
			}

			// Transfer 3: this chunk's symbolic results; the host needs
			// them to assign arena offsets for the output arrays.
			var nnzInfoErr error
			nnzInfoDone := out.Enqueue(lbl("nnz info", id), func(q *sim.Proc) {
				nnzInfoErr = e.devOp(q, id, func() error {
					return dev.TransferD2H(q, lbl("nnz info", id), res.NnzInfoBytes)
				})
			})
			p.Await(nnzInfoDone)
			if nnzInfoErr != nil {
				if abort(nnzInfoErr) {
					break
				}
				continue
			}
		}

		// Transfer 4: remainder of the previous chunk's output,
		// overlapping this chunk's numeric phase. Its completion frees
		// the previous chunk's buffer slot.
		sendP2(prev)

		// Output allocation: wait for this chunk's buffer slot to have
		// drained (two chunks ago), then take arena space for it.
		p.Await(slotDone[slot])
		arenaUsed -= slotBytes[slot]
		slotBytes[slot] = res.OutputBytes
		if err := reserve(p, id, "output", res.OutputBytes, aKey, bKey); err != nil {
			slotBytes[slot] = 0
			if abort(err) {
				break
			}
			continue
		}
		reservedOut = true
		if err := e.launchGroupKernels(p, id, res, "numeric"); err != nil {
			if abort(err) {
				break
			}
			continue
		}
		arenaUsed -= res.WorkspaceBytes

		prev = &pending{id: id, res: res, slot: slot}
	}

	// Drain: transfer the last chunk's output (both portions), then
	// wait for every slot. On a lost device the enqueued attempts fail
	// fast but their completion signals still fire, so the drain never
	// deadlocks.
	sendP1(prev)
	sendP2(prev)
	p.AwaitAll(slotDone...)
	e.endResident = cache.keys()
	return failedIDs
}
