package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cpuspgemm"
	"repro/internal/csr"
	"repro/internal/gpusim"
	"repro/internal/matgen"
	"repro/internal/sim"
)

// testCfg returns a device sized so the test matrices are genuinely
// out-of-core (the whole product cannot fit at once).
func testCfg(memBytes int64) gpusim.DeviceConfig {
	return gpusim.ScaledV100Config(memBytes)
}

func TestRunMatchesSequentialAllModes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mats := []*csr.Matrix{
		matgen.RMAT(9, 8, 0.57, 0.19, 0.19, 11),
		matgen.Band(600, 3, 12),
		matgen.ER(300, 300, 0.03, rng.Int63()),
	}
	grids := []struct{ r, c int }{{1, 1}, {2, 3}, {4, 4}}
	for mi, a := range mats {
		want, err := cpuspgemm.Sequential(a, a)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range grids {
			for _, mode := range []struct {
				name string
				opts Options
			}{
				{"sync-prealloc", Options{RowPanels: g.r, ColPanels: g.c}},
				{"sync-dynamic", Options{RowPanels: g.r, ColPanels: g.c, DynamicAlloc: true}},
				{"async", Options{RowPanels: g.r, ColPanels: g.c, Async: true}},
				{"async-reorder", Options{RowPanels: g.r, ColPanels: g.c, Async: true, Reorder: true}},
			} {
				got, st, err := Run(a, a, testCfg(64<<20), mode.opts)
				if err != nil {
					t.Fatalf("matrix %d %s grid %dx%d: %v", mi, mode.name, g.r, g.c, err)
				}
				if err := got.Validate(); err != nil {
					t.Fatalf("matrix %d %s: invalid product: %v", mi, mode.name, err)
				}
				if !csr.Equal(got, want, 1e-9) {
					t.Fatalf("matrix %d %s grid %dx%d: %s", mi, mode.name, g.r, g.c, csr.Diff(got, want, 1e-9))
				}
				if st.TotalSec <= 0 || st.GFLOPS <= 0 {
					t.Fatalf("matrix %d %s: bad stats %+v", mi, mode.name, st)
				}
				if st.Chunks != g.r*g.c {
					t.Fatalf("matrix %d %s: chunks %d, want %d", mi, mode.name, st.Chunks, g.r*g.c)
				}
			}
		}
	}
}

func TestAsyncFasterThanSync(t *testing.T) {
	a := matgen.RMAT(11, 10, 0.57, 0.19, 0.19, 13)
	opts := Options{RowPanels: 3, ColPanels: 3}
	_, syncSt, err := Run(a, a, testCfg(256<<20), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Async = true
	_, asyncSt, err := Run(a, a, testCfg(256<<20), opts)
	if err != nil {
		t.Fatal(err)
	}
	if asyncSt.TotalSec >= syncSt.TotalSec {
		t.Fatalf("async (%.4fs) not faster than sync (%.4fs)", asyncSt.TotalSec, syncSt.TotalSec)
	}
	speedup := syncSt.TotalSec / asyncSt.TotalSec
	if speedup > 1.0/(1.0-syncSt.TransferFraction)+0.01 {
		t.Fatalf("async speedup %.3f exceeds the overlap bound %.3f",
			speedup, 1.0/(1.0-syncSt.TransferFraction))
	}
}

func TestSyncTransferFractionDominates(t *testing.T) {
	// The motivation experiment (Figure 4): for graph-like matrices the
	// transfer share of synchronous execution is very high.
	a := matgen.RMAT(11, 10, 0.57, 0.19, 0.19, 14)
	_, st, err := Run(a, a, testCfg(256<<20), Options{RowPanels: 3, ColPanels: 3, DynamicAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.TransferFraction < 0.6 || st.TransferFraction > 0.99 {
		t.Fatalf("sync transfer fraction %.3f outside plausible band", st.TransferFraction)
	}
}

func TestMallocCounts(t *testing.T) {
	a := matgen.Band(500, 2, 15)
	_, st, err := Run(a, a, testCfg(64<<20), Options{RowPanels: 2, ColPanels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Mallocs != 1 {
		t.Fatalf("prealloc mode made %d mallocs, want 1", st.Mallocs)
	}
	_, st, err = Run(a, a, testCfg(64<<20), Options{RowPanels: 2, ColPanels: 2, DynamicAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic mode allocates row info, group info and output per chunk
	// (3 each for 4 chunks) plus one allocation per cached input panel.
	if st.Mallocs < 4*3+4 {
		t.Fatalf("dynamic mode made %d mallocs, want at least %d", st.Mallocs, 4*3+4)
	}
}

func TestScheduleOrder(t *testing.T) {
	a := matgen.RMAT(9, 8, 0.57, 0.19, 0.19, 16)
	dev := gpusim.NewDevice(nil, testCfg(64<<20))
	eng, err := NewEngine(dev, a, a, Options{RowPanels: 2, ColPanels: 3})
	if err != nil {
		t.Fatal(err)
	}
	def := eng.ScheduleOrder()
	for i, id := range def {
		if id != i {
			t.Fatalf("default order = %v", def)
		}
	}
	eng.Opts.Reorder = true
	flops := eng.ChunkFlops()
	ord := eng.ScheduleOrder()
	for i := 1; i < len(ord); i++ {
		if flops[ord[i-1]] < flops[ord[i]] {
			t.Fatalf("reorder not decreasing: %v (flops %v)", ord, flops)
		}
	}
	var sum int64
	for _, f := range flops {
		sum += f
	}
	if want := csr.Flops(a, a); sum != want {
		t.Fatalf("chunk flops sum %d, want %d", sum, want)
	}
}

func TestTooSmallDeviceMemoryErrors(t *testing.T) {
	a := matgen.RMAT(10, 10, 0.57, 0.19, 0.19, 17)
	for _, async := range []bool{false, true} {
		_, _, err := Run(a, a, testCfg(1<<16), Options{RowPanels: 1, ColPanels: 1, Async: async})
		if err == nil {
			t.Fatalf("async=%v: expected out-of-memory error for tiny device", async)
		}
		if !strings.Contains(err.Error(), "arena") && !strings.Contains(err.Error(), "memory") {
			t.Fatalf("async=%v: unhelpful error: %v", async, err)
		}
	}
}

func TestDimensionMismatch(t *testing.T) {
	_, _, err := Run(csr.New(3, 4), csr.New(5, 5), testCfg(1<<20), Options{})
	if err == nil {
		t.Fatal("expected dimension mismatch")
	}
}

func TestSplitFractionVariants(t *testing.T) {
	a := matgen.RMAT(10, 8, 0.57, 0.19, 0.19, 18)
	want, _ := cpuspgemm.Sequential(a, a)
	for _, frac := range []float64{0.1, 0.33, 0.5, 0.9} {
		got, _, err := Run(a, a, testCfg(128<<20), Options{RowPanels: 2, ColPanels: 2, Async: true, SplitFraction: frac})
		if err != nil {
			t.Fatalf("frac %v: %v", frac, err)
		}
		if !csr.Equal(got, want, 1e-9) {
			t.Fatalf("frac %v: wrong product", frac)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{Async: true, DynamicAlloc: true}.withDefaults()
	if o.DynamicAlloc {
		t.Fatal("Async must disable DynamicAlloc")
	}
	if o.SplitFraction <= 0.32 || o.SplitFraction >= 0.34 {
		t.Fatalf("default split fraction = %v", o.SplitFraction)
	}
	if o.RowPanels != 1 || o.ColPanels != 1 {
		t.Fatal("zero panels must default to 1")
	}
}

func TestAssembleMissingChunk(t *testing.T) {
	a := matgen.Band(100, 2, 19)
	dev := gpusim.NewDevice(nil, testCfg(64<<20))
	eng, err := NewEngine(dev, a, a, Options{RowPanels: 2, ColPanels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Assemble(); err == nil {
		t.Fatal("expected error for missing chunks")
	}
}

func TestEmptyMatrixRun(t *testing.T) {
	a := csr.New(16, 16)
	got, st, err := Run(a, a, testCfg(1<<20), Options{RowPanels: 2, ColPanels: 2, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.Nnz() != 0 {
		t.Fatal("empty product has nnz")
	}
	if st.Flops != 0 {
		t.Fatalf("flops = %d", st.Flops)
	}
}

func TestTightMemoryForcesPanelEviction(t *testing.T) {
	// Size the device so input panels cannot all stay resident: the
	// cache must evict and re-transfer, and the result must still be
	// exact. Compare H2D traffic against a roomy device to prove the
	// eviction path actually ran.
	// A uniform random matrix: every chunk is non-empty, so the
	// row-major sweep cycles through all B panels each row panel and
	// evicted panels must be re-fetched.
	a := matgen.ER(2000, 2000, 0.004, 45)
	want, err := cpuspgemm.Sequential(a, a)
	if err != nil {
		t.Fatal(err)
	}

	roomy := testCfg(64 << 20)
	_, _, roomyTl, err := RunTraced(a, a, roomy, Options{RowPanels: 4, ColPanels: 4, Async: true})
	if err != nil {
		t.Fatal(err)
	}

	// Tight: the combined input panels (~0.7 MB) cannot all fit next
	// to the output slots, so panels churn.
	tight := testCfg(400 << 10)
	got, _, tightTl, err := RunTraced(a, a, tight, Options{RowPanels: 8, ColPanels: 8, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	if !csr.Equal(got, want, 1e-9) {
		t.Fatal("tight-memory run produced a wrong product")
	}

	h2d := func(tl []sim.Span) int {
		n := 0
		for _, s := range tl {
			if s.Lane == "h2d" {
				n++
			}
		}
		return n
	}
	// The tight run has more panels AND must reload evicted ones; it
	// must perform strictly more H2D transfers than the roomy run's
	// panel count (8+8 at most without eviction is 16, roomy needs 8).
	if h2d(tightTl) <= 16 {
		t.Fatalf("tight run made only %d H2D transfers — eviction never happened", h2d(tightTl))
	}
	if h2d(roomyTl) > 8 {
		t.Fatalf("roomy run re-transferred panels: %d H2D transfers", h2d(roomyTl))
	}
}

func TestEngineAccessors(t *testing.T) {
	a := matgen.Band(100, 2, 46)
	dev := gpusim.NewDevice(nil, testCfg(8<<20))
	eng, err := NewEngine(dev, a, a, Options{RowPanels: 2, ColPanels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Err() != nil {
		t.Fatal("fresh engine has an error")
	}
	if eng.NumChunks() != 4 {
		t.Fatalf("NumChunks = %d", eng.NumChunks())
	}
	// PutCPUResult feeds assembly like the hybrid engine does.
	prod, _ := cpuspgemm.Sequential(a, a)
	_ = prod
}
