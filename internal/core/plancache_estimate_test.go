package core

import (
	"testing"

	"repro/internal/matgen"
	"repro/internal/partition"
	"repro/internal/speck"
)

// TestPlanCacheEstimatedWarmByteIdentical runs the out-of-core engine
// cold in estimation mode, then warm in exact mode on fresh values:
// the cached symbolic structure is exact regardless of provenance, so
// the warm exact replay must match an uncached exact cold run bit for
// bit.
func TestPlanCacheEstimatedWarmByteIdentical(t *testing.T) {
	a := matgen.RMAT(9, 8, 0.57, 0.19, 0.19, 27)
	pc := NewPlanCache(0)
	est := Options{RowPanels: 2, ColPanels: 3, PlanCache: pc, Symbolic: speck.ModeEstimate}
	if _, _, err := Run(a, a, testCfg(64<<20), est); err != nil {
		t.Fatal(err)
	}
	fresh := withFreshValues(a, 28)
	cold, _, err := Run(fresh, fresh, testCfg(64<<20), Options{RowPanels: 2, ColPanels: 3})
	if err != nil {
		t.Fatal(err)
	}
	warm, _, err := Run(fresh, fresh, testCfg(64<<20), Options{RowPanels: 2, ColPanels: 3, PlanCache: pc})
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, cold, warm)
	hits, misses, _ := pc.Counters()
	if misses != 1 || hits != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	// The warm run replayed the cached plans; nothing re-ran cold, so
	// no provenance upgrade happened.
	if pc.Upgrades() != 0 {
		t.Fatalf("Upgrades = %d, want 0", pc.Upgrades())
	}
}

// TestPlanCacheEstimatedCheaperSymbolic pins the point of the elision
// on the simulated device: a cold estimation-mode run spends less
// simulated symbolic time than the exact cold run, at an identical
// product.
func TestPlanCacheEstimatedCheaperSymbolic(t *testing.T) {
	a := matgen.RMAT(9, 8, 0.57, 0.19, 0.19, 29)
	exact, exactSt, err := Run(a, a, testCfg(64<<20), Options{RowPanels: 2, ColPanels: 2})
	if err != nil {
		t.Fatal(err)
	}
	est, estSt, err := Run(a, a, testCfg(64<<20), Options{RowPanels: 2, ColPanels: 2, Symbolic: speck.ModeEstimate})
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, exact, est)
	if estSt.TotalSec >= exactSt.TotalSec {
		t.Fatalf("estimated makespan %.6fs not below exact %.6fs", estSt.TotalSec, exactSt.TotalSec)
	}
}

// TestAddSymbolicUpgrade pins the chunk-level provenance rules of
// addSymbolic directly: estimated records are upgraded in place by
// exact ones and never the other way around.
func TestAddSymbolicUpgrade(t *testing.T) {
	a := matgen.ER(60, 60, 0.08, 30)
	cm := speck.ModelFromDevice(testCfg(64 << 20))
	symEst, err := speck.SymbolicCompute(a, a, cm)
	if err != nil {
		t.Fatal(err)
	}
	symExact, err := speck.SymbolicCompute(a, a, cm)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPlanCache(0)
	rps, err := partition.RowPanels(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	cps, err := partition.ColPanels(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	ent := pc.store(planKey{fpA: 1, fpB: 2, aRows: a.Rows, aCols: a.Cols, bCols: a.Cols}, rps, cps)

	pc.addSymbolic(ent, 0, symEst, true)
	if !ent.symsEst[0] {
		t.Fatal("estimated record not marked")
	}
	// Estimated does not displace estimated.
	pc.addSymbolic(ent, 0, symEst, true)
	if pc.Upgrades() != 0 {
		t.Fatal("estimated re-add counted as upgrade")
	}
	// Exact upgrades in place.
	pc.addSymbolic(ent, 0, symExact, false)
	if pc.symbolic(ent, 0) != symExact || ent.symsEst[0] {
		t.Fatal("exact did not upgrade the estimated record")
	}
	if pc.Upgrades() != 1 {
		t.Fatalf("Upgrades = %d, want 1", pc.Upgrades())
	}
	// Estimated never displaces exact.
	pc.addSymbolic(ent, 0, symEst, true)
	if pc.symbolic(ent, 0) != symExact {
		t.Fatal("estimated displaced exact")
	}
	if pc.Upgrades() != 1 {
		t.Fatalf("Upgrades = %d after estimated re-add, want 1", pc.Upgrades())
	}
}
