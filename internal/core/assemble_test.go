package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cpuspgemm"
	"repro/internal/csr"
	"repro/internal/partition"
)

// randomCSR builds a random rows x cols matrix with the given density.
func randomCSR(rng *rand.Rand, rows, cols int, density float64) *csr.Matrix {
	var es []csr.Entry
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				es = append(es, csr.Entry{Row: int32(r), Col: int32(c), Val: rng.NormFloat64()})
			}
		}
	}
	m, err := csr.FromEntries(rows, cols, es)
	if err != nil {
		panic(err)
	}
	return m
}

// assembleViaGrid partitions A into numRow row panels and B into
// numCol column panels, multiplies every chunk with the sequential
// reference, and reassembles the product with AssembleChunks.
func assembleViaGrid(t *testing.T, a, b *csr.Matrix, numRow, numCol int) *csr.Matrix {
	t.Helper()
	rps, err := partition.RowPanels(a, numRow)
	if err != nil {
		t.Fatal(err)
	}
	cps, err := partition.ColPanels(b, numCol)
	if err != nil {
		t.Fatal(err)
	}
	chunks := make([]*csr.Matrix, numRow*numCol)
	for r := 0; r < numRow; r++ {
		for c := 0; c < numCol; c++ {
			m, err := cpuspgemm.Sequential(rps[r].M, cps[c].M)
			if err != nil {
				t.Fatal(err)
			}
			chunks[r*numCol+c] = m
		}
	}
	got, err := AssembleChunks(a.Rows, b.Cols, numRow, numCol,
		func(r, c int) *csr.Matrix { return chunks[r*numCol+c] },
		func(r int) int { return rps[r].Start },
		func(c int) int { return cps[c].Start },
	)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestAssembleChunksRandomGrids cross-checks assembly of randomized
// chunk grids against the sequential product of the whole matrices,
// covering degenerate single-panel grids and skinny panels.
func TestAssembleChunksRandomGrids(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		rows := 10 + rng.Intn(60)
		inner := 5 + rng.Intn(40)
		cols := 10 + rng.Intn(60)
		a := randomCSR(rng, rows, inner, 0.15)
		b := randomCSR(rng, inner, cols, 0.15)
		want, err := cpuspgemm.Sequential(a, b)
		if err != nil {
			t.Fatal(err)
		}
		grids := [][2]int{
			{1, 1}, // single-panel degenerate grid
			{1 + rng.Intn(rows), 1 + rng.Intn(cols)},
			{rows, 1},
			{1, cols},
		}
		for _, g := range grids {
			t.Run(fmt.Sprintf("trial%d/grid%dx%d", trial, g[0], g[1]), func(t *testing.T) {
				got := assembleViaGrid(t, a, b, g[0], g[1])
				if err := got.Validate(); err != nil {
					t.Fatalf("assembled product invalid: %v", err)
				}
				if !csr.Equal(got, want, 1e-12) {
					t.Fatalf("grid %dx%d: %s", g[0], g[1], csr.Diff(got, want, 1e-12))
				}
			})
		}
	}
}

// TestAssembleChunksEmptyChunks covers grids where many chunks carry no
// non-zeros at all, including a fully empty product.
func TestAssembleChunksEmptyChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(32))

	// A block-diagonal-ish A times B produces chunks that are entirely
	// empty away from the diagonal.
	var es []csr.Entry
	n := 40
	for i := 0; i < n; i++ {
		es = append(es, csr.Entry{Row: int32(i), Col: int32(i), Val: rng.NormFloat64()})
	}
	diag, err := csr.FromEntries(n, n, es)
	if err != nil {
		t.Fatal(err)
	}
	b := randomCSR(rng, n, n, 0.1)
	want, err := cpuspgemm.Sequential(diag, b)
	if err != nil {
		t.Fatal(err)
	}
	got := assembleViaGrid(t, diag, b, 5, 4)
	if !csr.Equal(got, want, 1e-12) {
		t.Fatalf("diagonal grid: %s", csr.Diff(got, want, 1e-12))
	}

	// Fully empty inputs: every chunk is empty, the product too.
	empty := csr.New(16, 16)
	got = assembleViaGrid(t, empty, empty, 4, 4)
	if got.Nnz() != 0 || got.Rows != 16 || got.Cols != 16 {
		t.Fatalf("empty assembly wrong: nnz=%d dims %dx%d", got.Nnz(), got.Rows, got.Cols)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}
