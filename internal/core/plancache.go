package core

import (
	"sync"

	"repro/internal/csr"
	"repro/internal/partition"
	"repro/internal/speck"
)

// PlanCache stores the values-independent half of out-of-core runs —
// the chunk grid (re-valuable partitions), per-chunk flop counts and
// per-chunk symbolic results (output structure, row groups, transfer
// sizes) — keyed by the structural fingerprints of the operands. A
// warm run skips host-side partitioning and the per-chunk symbolic
// pipeline (analysis and symbolic kernels, row-info and nnz-info
// transfers), running only numeric kernels and output transfers, and
// reuses device residency of input panels recorded by the previous
// run on the same pattern.
//
// The cache is LRU-bounded by bytes and safe for concurrent use; the
// serving layer shares one across jobs. A nil *PlanCache disables
// caching entirely and leaves every run byte-identical to a build
// without it.
type PlanCache struct {
	mu      sync.Mutex
	max     int64
	bytes   int64
	entries map[planKey]*planEntry
	order   []planKey // LRU order, most recently used last

	hits, misses, evictions int64
	upgrades                int64
}

// planKey identifies a cached plan: the structural fingerprints of
// both operands, their dimensions (a fingerprint collision can then at
// worst alias two same-shape patterns, never misindex), the chunk grid
// and the device cost model (symbolic durations depend on it).
type planKey struct {
	fpA, fpB             uint64
	aRows, aCols, bCols  int
	rowPanels, colPanels int
	cm                   speck.CostModel
}

// planEntry is one cached plan. Partitions are stored structure-only
// (Data nil): warm runs re-value row panels by reslicing A's value
// array (rows are contiguous in CSR) and col panels by one sequential
// copy pass driven by the cached panel row offsets — no index work.
type planEntry struct {
	key planKey
	rps []partition.RowPanel
	cps []partition.ColPanel
	// chunkFlops is filled on first ChunkFlops call against the plan.
	chunkFlops []int64
	// syms holds per-chunk symbolic results, filled as cold chunks
	// complete; a warm run finding one skips the chunk's symbolic
	// device phases. symsEst marks the subset recorded by the
	// estimation-elided path — the structure is exact either way, but
	// an exact run later upgrades the provenance in place.
	syms    map[int]*speck.Symbolic
	symsEst map[int]bool
	// resident records, per device namespace (Options.PlanDevice), the
	// input-panel keys left device-resident by the last run; a device
	// loss clears the namespace so no run trusts stale residency.
	resident map[string]map[string]struct{}
	bytes    int64
	refs     int
}

// DefaultPlanCacheBytes bounds a cache constructed with size 0.
const DefaultPlanCacheBytes = 256 << 20

// NewPlanCache creates a plan cache bounded to maxBytes (0 means
// DefaultPlanCacheBytes).
func NewPlanCache(maxBytes int64) *PlanCache {
	if maxBytes <= 0 {
		maxBytes = DefaultPlanCacheBytes
	}
	return &PlanCache{max: maxBytes, entries: map[planKey]*planEntry{}}
}

// Counters reports the cache's lifetime hit/miss/eviction totals.
func (pc *PlanCache) Counters() (hits, misses, evictions int64) {
	if pc == nil {
		return 0, 0, 0
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses, pc.evictions
}

// Len reports the number of cached plans.
func (pc *PlanCache) Len() int {
	if pc == nil {
		return 0
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.entries)
}

// Bytes reports the cache's current retained size.
func (pc *PlanCache) Bytes() int64 {
	if pc == nil {
		return 0
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.bytes
}

// Has reports whether any plan is keyed by the fingerprint pair (as A
// and B respectively), regardless of chunk grid or cost model. The
// serving layer's batch planner probes it to decide whether a plan
// group still needs its cold symbolic leader serialized.
func (pc *PlanCache) Has(fpA, fpB uint64) bool {
	if pc == nil {
		return false
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for key := range pc.entries {
		if key.fpA == fpA && key.fpB == fpB {
			return true
		}
	}
	return false
}

// Invalidate drops every plan that references the given structural
// fingerprint (as either operand). The serving layer calls it when a
// matrix leaves the content-addressed store, so a pattern change
// invalidates exactly its own entries.
func (pc *PlanCache) Invalidate(fp uint64) int {
	if pc == nil {
		return 0
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	n := 0
	for i := 0; i < len(pc.order); {
		k := pc.order[i]
		if k.fpA != fp && k.fpB != fp {
			i++
			continue
		}
		pc.dropLocked(i)
		n++
	}
	return n
}

// acquire looks up the plan for key, marking it used and pinning it
// against eviction until release. It returns nil on a miss.
func (pc *PlanCache) acquire(key planKey) *planEntry {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	ent := pc.entries[key]
	if ent == nil {
		pc.misses++
		return nil
	}
	pc.hits++
	ent.refs++
	pc.touchLocked(key)
	return ent
}

// store inserts a freshly built plan, pinned until release. Partitions
// are stripped to structure-only copies so the cache does not retain
// the cold run's value arrays.
func (pc *PlanCache) store(key planKey, rps []partition.RowPanel, cps []partition.ColPanel) *planEntry {
	ent := &planEntry{
		key:      key,
		rps:      make([]partition.RowPanel, len(rps)),
		cps:      make([]partition.ColPanel, len(cps)),
		syms:     map[int]*speck.Symbolic{},
		symsEst:  map[int]bool{},
		resident: map[string]map[string]struct{}{},
		refs:     1,
	}
	for i, rp := range rps {
		ent.rps[i] = partition.RowPanel{Start: rp.Start, End: rp.End, M: structureOnly(rp.M)}
		ent.bytes += structureBytes(rp.M)
	}
	for i, cp := range cps {
		ent.cps[i] = partition.ColPanel{Start: cp.Start, End: cp.End, M: structureOnly(cp.M)}
		ent.bytes += structureBytes(cp.M)
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if old := pc.entries[key]; old != nil {
		// A concurrent cold run on the same pattern beat us to the
		// store; keep the existing entry and hand it out instead.
		old.refs++
		pc.touchLocked(key)
		return old
	}
	pc.entries[key] = ent
	pc.order = append(pc.order, key)
	pc.bytes += ent.bytes
	pc.evictLocked()
	return ent
}

// release unpins an entry acquired or stored by a run.
func (pc *PlanCache) release(ent *planEntry) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if ent.refs > 0 {
		ent.refs--
	}
	pc.evictLocked()
}

// flops returns the cached per-chunk flop counts, or nil.
func (pc *PlanCache) flops(ent *planEntry) []int64 {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return ent.chunkFlops
}

// setFlops records the per-chunk flop counts computed by a cold run.
func (pc *PlanCache) setFlops(ent *planEntry, flops []int64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if ent.chunkFlops != nil {
		return
	}
	ent.chunkFlops = flops
	grow := int64(len(flops)) * 8
	ent.bytes += grow
	pc.bytes += grow
	pc.evictLocked()
}

// symbolic returns the cached symbolic result of a chunk, or nil.
func (pc *PlanCache) symbolic(ent *planEntry, id int) *speck.Symbolic {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return ent.syms[id]
}

// addSymbolic records a chunk's symbolic result from a cold run.
// estimated marks results captured by the estimation-elided path; an
// exact result arriving for a chunk whose record is estimated upgrades
// it in place (same pattern, exact provenance), while an estimated
// result never displaces an exact one.
func (pc *PlanCache) addSymbolic(ent *planEntry, id int, sym *speck.Symbolic, estimated bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if old := ent.syms[id]; old != nil {
		if !ent.symsEst[id] || estimated {
			return
		}
		delete(ent.symsEst, id)
		grow := sym.Bytes() - old.Bytes()
		ent.syms[id] = sym
		ent.bytes += grow
		pc.bytes += grow
		pc.upgrades++
		pc.evictLocked()
		return
	}
	ent.syms[id] = sym
	if estimated {
		ent.symsEst[id] = true
	}
	grow := sym.Bytes()
	ent.bytes += grow
	pc.bytes += grow
	pc.evictLocked()
}

// Upgrades reports how many estimated chunk plans were upgraded in
// place by exact results.
func (pc *PlanCache) Upgrades() int64 {
	if pc == nil {
		return 0
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.upgrades
}

// residentSet returns a copy of the panel keys recorded as
// device-resident for the namespace.
func (pc *PlanCache) residentSet(ent *planEntry, dev string) map[string]struct{} {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	src := ent.resident[dev]
	out := make(map[string]struct{}, len(src))
	for k := range src {
		out[k] = struct{}{}
	}
	return out
}

// setResident replaces the namespace's resident-panel record with the
// state a run left behind; lost=true clears it instead (the device's
// memory is gone — trusting it would serve stale residency).
func (pc *PlanCache) setResident(ent *planEntry, dev string, keys []string, lost bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if lost {
		delete(ent.resident, dev)
		return
	}
	set := make(map[string]struct{}, len(keys))
	for _, k := range keys {
		set[k] = struct{}{}
	}
	ent.resident[dev] = set
}

// touchLocked moves key to the most-recently-used position.
func (pc *PlanCache) touchLocked(key planKey) {
	for i, k := range pc.order {
		if k == key {
			pc.order = append(append(pc.order[:i:i], pc.order[i+1:]...), key)
			return
		}
	}
}

// evictLocked drops least-recently-used unpinned entries until the
// cache fits its byte budget.
func (pc *PlanCache) evictLocked() {
	for pc.bytes > pc.max {
		evicted := false
		for i := 0; i < len(pc.order); i++ {
			if pc.entries[pc.order[i]].refs > 0 {
				continue
			}
			pc.dropLocked(i)
			pc.evictions++
			evicted = true
			break
		}
		if !evicted {
			return // everything pinned; callers will drain soon
		}
	}
}

// dropLocked removes the entry at order position i.
func (pc *PlanCache) dropLocked(i int) {
	key := pc.order[i]
	ent := pc.entries[key]
	pc.order = append(pc.order[:i:i], pc.order[i+1:]...)
	delete(pc.entries, key)
	pc.bytes -= ent.bytes
}

// structureOnly copies a matrix header sharing its structure arrays
// and dropping the values, the cacheable half of a panel.
func structureOnly(m *csr.Matrix) *csr.Matrix {
	return &csr.Matrix{Rows: m.Rows, Cols: m.Cols, RowOffsets: m.RowOffsets, ColIDs: m.ColIDs}
}

// structureBytes is the retained size of a structure-only matrix.
func structureBytes(m *csr.Matrix) int64 {
	return int64(len(m.RowOffsets))*8 + int64(len(m.ColIDs))*4
}

// revalueRowPanels builds full row panels from cached structure and a
// fresh A: each panel's rows are contiguous in CSR, so its value array
// is a zero-copy reslice of A's.
func revalueRowPanels(cached []partition.RowPanel, a *csr.Matrix) []partition.RowPanel {
	out := make([]partition.RowPanel, len(cached))
	for i, rp := range cached {
		lo, hi := a.RowOffsets[rp.Start], a.RowOffsets[rp.End]
		out[i] = partition.RowPanel{Start: rp.Start, End: rp.End, M: &csr.Matrix{
			Rows:       rp.M.Rows,
			Cols:       rp.M.Cols,
			RowOffsets: rp.M.RowOffsets,
			ColIDs:     rp.M.ColIDs,
			Data:       a.Data[lo:hi:hi],
		}}
	}
	return out
}

// revalueColPanels builds full column panels from cached structure and
// a fresh B. Column ids are sorted within a CSR row, so each panel's
// share of a row is a contiguous segment; walking panels in column
// order lets one cursor per row locate every segment without any
// comparisons — the cached row offsets already encode the lengths.
func revalueColPanels(cached []partition.ColPanel, b *csr.Matrix) []partition.ColPanel {
	cur := make([]int64, b.Rows)
	for r := range cur {
		cur[r] = b.RowOffsets[r]
	}
	out := make([]partition.ColPanel, len(cached))
	for p, cp := range cached {
		pm := cp.M
		data := make([]float64, pm.RowOffsets[pm.Rows])
		for r := 0; r < pm.Rows; r++ {
			off, end := pm.RowOffsets[r], pm.RowOffsets[r+1]
			n := end - off
			if n > 0 {
				copy(data[off:end], b.Data[cur[r]:cur[r]+n])
				cur[r] += n
			}
		}
		out[p] = partition.ColPanel{Start: cp.Start, End: cp.End, M: &csr.Matrix{
			Rows:       pm.Rows,
			Cols:       pm.Cols,
			RowOffsets: pm.RowOffsets,
			ColIDs:     pm.ColIDs,
			Data:       data,
		}}
	}
	return out
}
