package core

import (
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/speck"
)

// panelKeys identify panels in the input cache.
func panelKeys(rp partition.RowPanel, cp partition.ColPanel) (aKey, bKey string) {
	return fmt.Sprintf("A%d", rp.Start), fmt.Sprintf("B%d", cp.Start)
}

// processSync is the synchronous partitioned-spECK baseline
// (Section IV-A): every phase of every chunk, including the output
// transfer, runs back to back on a single stream. With
// Opts.DynamicAlloc it also performs spECK's per-phase device
// allocations; otherwise a single arena allocation is made up front.
// Input panels stay resident between chunks while memory allows.
func (e *Engine) processSync(p *sim.Proc, ids []int) {
	dev := e.Dev
	cache := newInputCache(e, e.Opts.DynamicAlloc)

	var arena, arenaUsed int64
	if !e.Opts.DynamicAlloc {
		arena = dev.Cfg.MemoryBytes
		if _, err := dev.Malloc(p, "arena", arena); err != nil {
			e.fail(err)
			return
		}
	}

	for _, id := range ids {
		rp, cp := e.chunkPanels(id)
		res, err := speck.Compute(rp.M, cp.M, e.cm)
		if err != nil {
			e.fail(err)
			return
		}
		e.Results[id] = res
		if res.Flops == 0 {
			// The host already knows the chunk is empty from the flop
			// analysis (Algorithm 4's GetFlops); no device work needed.
			continue
		}
		aBytes, bBytes := inputBytes(rp, cp)
		aKey, bKey := panelKeys(rp, cp)

		capacityLeft := func() int64 { return arena - arenaUsed }
		if err := cache.ensure(p, aKey, lbl("A panel", id), aBytes, capacityLeft, aKey, bKey); err != nil {
			e.fail(err)
			return
		}
		if err := cache.ensure(p, bKey, lbl("B panel", id), bBytes, capacityLeft, aKey, bKey); err != nil {
			e.fail(err)
			return
		}

		if e.Opts.DynamicAlloc {
			e.syncChunkDynamic(p, id, res)
		} else {
			arenaUsed = 0
			need := res.WorkspaceBytes + res.OutputBytes
			for arenaUsed+need > arena-cache.bytes {
				if !cache.evictOne(p, aKey, bKey) {
					e.fail(fmt.Errorf("core: chunk %d needs %d bytes beyond the arena; increase RowPanels/ColPanels", id, need))
					return
				}
			}
			arenaUsed += need
			e.syncChunkPrealloc(p, id, res)
		}
		if e.err != nil {
			return
		}
	}
}

// syncChunkPrealloc runs one chunk's phases serially without device
// allocations; the input panels are already resident.
func (e *Engine) syncChunkPrealloc(p *sim.Proc, id int, res *speck.Result) {
	dev := e.Dev
	dev.Kernel(p, lbl("analysis", id), res.AnalysisSec)
	dev.TransferD2H(p, lbl("row info", id), res.RowInfoBytes)
	e.launchGroupKernels(p, id, res, "symbolic")
	dev.TransferD2H(p, lbl("nnz info", id), res.NnzInfoBytes)
	e.launchGroupKernels(p, id, res, "numeric")
	dev.TransferD2H(p, lbl("output", id), res.OutputBytes)
}

// syncChunkDynamic runs one chunk with spECK's dynamic allocations:
// row info, group info and the output arrays are each a separate
// device Malloc, freed at chunk end. Every Malloc stalls the device,
// which is harmless here (nothing overlaps anyway) but models why this
// variant cannot be made asynchronous.
func (e *Engine) syncChunkDynamic(p *sim.Proc, id int, res *speck.Result) {
	dev := e.Dev
	mustAlloc := func(label string, bytes int64) *allocHandle {
		if e.err != nil {
			return &allocHandle{}
		}
		h, err := dev.Malloc(p, lbl(label, id), bytes)
		if err != nil {
			e.fail(err)
			return &allocHandle{}
		}
		return &allocHandle{a: h}
	}

	rowInfo := mustAlloc("row info", res.RowInfoBytes)
	if e.err != nil {
		return
	}
	dev.Kernel(p, lbl("analysis", id), res.AnalysisSec)
	dev.TransferD2H(p, lbl("row info", id), res.RowInfoBytes)

	groupInfo := mustAlloc("group info", int64(len(res.Groups))*64+res.WorkspaceBytes)
	if e.err != nil {
		return
	}
	e.launchGroupKernels(p, id, res, "symbolic")
	dev.TransferD2H(p, lbl("nnz info", id), res.NnzInfoBytes)

	out := mustAlloc("output", res.OutputBytes)
	if e.err != nil {
		return
	}
	e.launchGroupKernels(p, id, res, "numeric")
	dev.TransferD2H(p, lbl("output", id), res.OutputBytes)

	for _, h := range []*allocHandle{rowInfo, groupInfo, out} {
		h.free(p, e)
	}
}

// allocHandle wraps a device allocation so failed runs can skip frees.
type allocHandle struct {
	a *gpusim.Alloc
}

func (h *allocHandle) free(p *sim.Proc, e *Engine) {
	if h.a != nil {
		e.Dev.Free(p, h.a)
	}
}

// launchGroupKernels launches one kernel per row group, splitting the
// phase duration across groups in proportion to their flops (spECK
// launches a kernel per group; Figure 3's symbolic/numeric boxes).
func (e *Engine) launchGroupKernels(p *sim.Proc, id int, res *speck.Result, phase string) {
	total := res.NumericSec
	if phase == "symbolic" {
		total = res.SymbolicSec
	}
	if res.Flops == 0 || total == 0 {
		return
	}
	for gi, g := range res.Groups {
		frac := float64(g.Flops) / float64(res.Flops)
		e.Dev.Kernel(p, fmt.Sprintf("%s c%d g%d(%s)", phase, id, gi, g.Kind), total*frac)
	}
}

func lbl(what string, id int) string {
	return fmt.Sprintf("%s c%d", what, id)
}
