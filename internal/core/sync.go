package core

import (
	"errors"
	"fmt"

	"repro/internal/faults"
	"repro/internal/gpusim"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/speck"
)

// panelKeys identify panels in the input cache.
func panelKeys(rp partition.RowPanel, cp partition.ColPanel) (aKey, bKey string) {
	return fmt.Sprintf("A%d", rp.Start), fmt.Sprintf("B%d", cp.Start)
}

// processSync is the synchronous partitioned-spECK baseline
// (Section IV-A): every phase of every chunk, including the output
// transfer, runs back to back on a single stream. With
// Opts.DynamicAlloc it also performs spECK's per-phase device
// allocations; otherwise a single arena allocation is made up front.
// Input panels stay resident between chunks while memory allows.
//
// Failure semantics mirror the asynchronous pipeline: a chunk whose
// retries are exhausted or whose allocations misfit is recorded as
// failed and the loop moves on; a lost device fails the rest of the
// schedule.
func (e *Engine) processSync(p *sim.Proc, ids []int) []int {
	dev := e.Dev
	cache := newInputCache(e, e.Opts.DynamicAlloc)
	var failedIDs []int
	fail := func(id int, err error) {
		if _, seen := e.failed[id]; seen {
			return
		}
		e.failChunk(id, err)
		failedIDs = append(failedIDs, id)
	}

	var arena, arenaUsed int64
	if !e.Opts.DynamicAlloc {
		arena = dev.UsableBytes()
		if !e.arenaAllocated {
			a, err := dev.Malloc(p, "arena", arena)
			if err != nil {
				for _, id := range ids {
					fail(id, err)
				}
				return failedIDs
			}
			e.trackAlloc(a)
			e.arenaAllocated = true
		}
	}

	for idx, id := range ids {
		if e.pastDeadline() {
			break
		}
		rp, cp := e.chunkPanels(id)
		res, warm, err := e.chunkResult(id, rp, cp)
		if err != nil {
			e.fail(err) // host-side arithmetic failure is terminal
			break
		}
		e.Results[id] = res
		if res.Flops == 0 {
			// The host already knows the chunk is empty from the flop
			// analysis (Algorithm 4's GetFlops); no device work needed.
			continue
		}
		// abort routes a chunk failure; returns true on device loss,
		// which fails the rest of the schedule and stops the loop.
		abort := func(err error) bool {
			fail(id, err)
			if errors.Is(err, faults.ErrDeviceLost) {
				for _, rest := range ids[idx+1:] {
					fail(rest, fmt.Errorf("core: chunk %d unprocessed: %w", rest, faults.ErrDeviceLost))
				}
				return true
			}
			return false
		}

		aBytes, bBytes := inputBytes(rp, cp)
		aKey, bKey := panelKeys(rp, cp)
		capacityLeft := func() int64 { return arena - arenaUsed }
		if err := cache.ensure(p, id, aKey, lbl("A panel", id), aBytes, capacityLeft, aKey, bKey); err != nil {
			if abort(err) {
				break
			}
			continue
		}
		if err := cache.ensure(p, id, bKey, lbl("B panel", id), bBytes, capacityLeft, aKey, bKey); err != nil {
			if abort(err) {
				break
			}
			continue
		}

		var chunkErr error
		if e.Opts.DynamicAlloc {
			chunkErr = e.syncChunkDynamic(p, id, res)
		} else {
			arenaUsed = 0
			need := res.WorkspaceBytes + res.OutputBytes
			misfit := false
			for arenaUsed+need > arena-cache.bytes {
				if !cache.evictOne(p, aKey, bKey) {
					chunkErr = fmt.Errorf("core: chunk %d needs %d bytes beyond the arena; increase RowPanels/ColPanels: %w",
						id, need, faults.ErrOOM)
					misfit = true
					break
				}
			}
			if !misfit {
				arenaUsed += need
				chunkErr = e.syncChunkPrealloc(p, id, res, warm)
			}
		}
		if chunkErr != nil {
			if abort(chunkErr) {
				break
			}
			continue
		}
		if e.err != nil {
			return failedIDs
		}
	}
	e.endResident = cache.keys()
	return failedIDs
}

// syncChunkPrealloc runs one chunk's phases serially without device
// allocations; the input panels are already resident. Each device
// operation runs under the chunk's retry budget. A warm chunk (its
// symbolic structure served from the plan cache) skips the analysis
// and symbolic kernels and their info transfers: only numeric kernels
// and the output transfer touch the device.
func (e *Engine) syncChunkPrealloc(p *sim.Proc, id int, res *speck.Result, warm bool) error {
	dev := e.Dev
	if !warm {
		if err := e.devOp(p, id, func() error {
			return dev.Kernel(p, lbl("analysis", id), res.AnalysisSec)
		}); err != nil {
			return err
		}
		if err := e.devOp(p, id, func() error {
			return dev.TransferD2H(p, lbl("row info", id), res.RowInfoBytes)
		}); err != nil {
			return err
		}
		if err := e.launchGroupKernels(p, id, res, "symbolic"); err != nil {
			return err
		}
		if err := e.devOp(p, id, func() error {
			return dev.TransferD2H(p, lbl("nnz info", id), res.NnzInfoBytes)
		}); err != nil {
			return err
		}
	}
	if err := e.launchGroupKernels(p, id, res, "numeric"); err != nil {
		return err
	}
	return e.devOp(p, id, func() error {
		return dev.TransferD2H(p, lbl("output", id), res.OutputBytes)
	})
}

// syncChunkDynamic runs one chunk with spECK's dynamic allocations:
// row info, group info and the output arrays are each a separate
// device Malloc, freed at chunk end. Every Malloc stalls the device,
// which is harmless here (nothing overlaps anyway) but models why this
// variant cannot be made asynchronous. On failure the allocations made
// so far are still freed, so an abandoned chunk leaks no device
// memory.
func (e *Engine) syncChunkDynamic(p *sim.Proc, id int, res *speck.Result) (err error) {
	dev := e.Dev
	var held []*gpusim.Alloc
	defer func() {
		for _, a := range held {
			if ferr := dev.Free(p, a); ferr != nil {
				// A failing Free is a lifetime bug, not a device fault;
				// surface it as terminal.
				e.fail(ferr)
			}
		}
	}()
	alloc := func(label string, bytes int64) error {
		a, aerr := dev.Malloc(p, lbl(label, id), bytes)
		if aerr != nil {
			return aerr
		}
		held = append(held, a)
		return nil
	}

	if err := alloc("row info", res.RowInfoBytes); err != nil {
		return err
	}
	if err := e.devOp(p, id, func() error {
		return dev.Kernel(p, lbl("analysis", id), res.AnalysisSec)
	}); err != nil {
		return err
	}
	if err := e.devOp(p, id, func() error {
		return dev.TransferD2H(p, lbl("row info", id), res.RowInfoBytes)
	}); err != nil {
		return err
	}

	if err := alloc("group info", int64(len(res.Groups))*64+res.WorkspaceBytes); err != nil {
		return err
	}
	if err := e.launchGroupKernels(p, id, res, "symbolic"); err != nil {
		return err
	}
	if err := e.devOp(p, id, func() error {
		return dev.TransferD2H(p, lbl("nnz info", id), res.NnzInfoBytes)
	}); err != nil {
		return err
	}

	if err := alloc("output", res.OutputBytes); err != nil {
		return err
	}
	if err := e.launchGroupKernels(p, id, res, "numeric"); err != nil {
		return err
	}
	return e.devOp(p, id, func() error {
		return dev.TransferD2H(p, lbl("output", id), res.OutputBytes)
	})
}

// launchGroupKernels launches one kernel per row group, splitting the
// phase duration across groups in proportion to their flops (spECK
// launches a kernel per group; Figure 3's symbolic/numeric boxes).
func (e *Engine) launchGroupKernels(p *sim.Proc, id int, res *speck.Result, phase string) error {
	total := res.NumericSec
	if phase == "symbolic" {
		total = res.SymbolicSec
	}
	if res.Flops == 0 || total == 0 {
		return nil
	}
	for gi, g := range res.Groups {
		frac := float64(g.Flops) / float64(res.Flops)
		label := fmt.Sprintf("%s c%d g%d(%s)", phase, id, gi, g.Kind)
		dur := total * frac
		if err := e.devOp(p, id, func() error {
			return e.Dev.Kernel(p, label, dur)
		}); err != nil {
			return err
		}
	}
	return nil
}

func lbl(what string, id int) string {
	return fmt.Sprintf("%s c%d", what, id)
}
