package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/csr"
	"repro/internal/faults"
	"repro/internal/matgen"
	"repro/internal/metrics"
)

// withFreshValues returns a copy of m sharing the sparsity pattern
// with new deterministic values.
func withFreshValues(m *csr.Matrix, seed int64) *csr.Matrix {
	rng := rand.New(rand.NewSource(seed))
	out := &csr.Matrix{
		Rows:       m.Rows,
		Cols:       m.Cols,
		RowOffsets: m.RowOffsets,
		ColIDs:     m.ColIDs,
		Data:       make([]float64, len(m.Data)),
	}
	for i := range out.Data {
		out.Data[i] = rng.NormFloat64()
	}
	return out
}

func requireBitIdentical(t *testing.T, cold, warm *csr.Matrix) {
	t.Helper()
	if cold.Rows != warm.Rows || cold.Cols != warm.Cols || len(cold.ColIDs) != len(warm.ColIDs) {
		t.Fatalf("shape/nnz mismatch: %dx%d/%d vs %dx%d/%d",
			cold.Rows, cold.Cols, len(cold.ColIDs), warm.Rows, warm.Cols, len(warm.ColIDs))
	}
	for i := range cold.RowOffsets {
		if cold.RowOffsets[i] != warm.RowOffsets[i] {
			t.Fatalf("row offset %d: %d != %d", i, cold.RowOffsets[i], warm.RowOffsets[i])
		}
	}
	for i := range cold.ColIDs {
		if cold.ColIDs[i] != warm.ColIDs[i] {
			t.Fatalf("col id %d: %d != %d", i, cold.ColIDs[i], warm.ColIDs[i])
		}
	}
	for i := range cold.Data {
		if math.Float64bits(cold.Data[i]) != math.Float64bits(warm.Data[i]) {
			t.Fatalf("value %d: bits differ (%v vs %v)", i, cold.Data[i], warm.Data[i])
		}
	}
}

// TestPlanCacheWarmByteIdentical is the device-engine half of the
// fast path's contract: a warm run (cached plan, fresh values) returns
// a product bit-for-bit identical to an uncached cold run of the same
// inputs, in both pipeline modes.
func TestPlanCacheWarmByteIdentical(t *testing.T) {
	a := matgen.RMAT(9, 8, 0.57, 0.19, 0.19, 21)
	for _, async := range []bool{false, true} {
		pc := NewPlanCache(0)
		opts := Options{RowPanels: 2, ColPanels: 3, Async: async, PlanCache: pc}
		if _, _, err := Run(a, a, testCfg(64<<20), opts); err != nil {
			t.Fatal(err)
		}
		for it := int64(0); it < 3; it++ {
			fresh := withFreshValues(a, 300+it)
			cold, _, err := Run(fresh, fresh, testCfg(64<<20), Options{RowPanels: 2, ColPanels: 3, Async: async})
			if err != nil {
				t.Fatal(err)
			}
			warm, _, err := Run(fresh, fresh, testCfg(64<<20), opts)
			if err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, cold, warm)
		}
		hits, misses, _ := pc.Counters()
		if misses != 1 || hits != 3 {
			t.Fatalf("async=%v: hits=%d misses=%d, want 3/1", async, hits, misses)
		}
	}
}

// TestPlanCacheWarmSkipsWork pins what a warm run avoids: the
// symbolic-phase info transfers shrink BytesD2H, residency removes the
// panel H2D transfers entirely, and the simulated makespan drops.
func TestPlanCacheWarmSkipsWork(t *testing.T) {
	a := matgen.RMAT(9, 8, 0.57, 0.19, 0.19, 22)
	for _, async := range []bool{false, true} {
		pc := NewPlanCache(0)
		opts := Options{RowPanels: 2, ColPanels: 2, Async: async, PlanCache: pc}
		_, coldSt, err := Run(a, a, testCfg(256<<20), opts)
		if err != nil {
			t.Fatal(err)
		}
		fresh := withFreshValues(a, 23)
		_, warmSt, err := Run(fresh, fresh, testCfg(256<<20), opts)
		if err != nil {
			t.Fatal(err)
		}
		if warmSt.BytesH2D != 0 {
			t.Fatalf("async=%v: warm run transferred %d H2D bytes; panels should be resident", async, warmSt.BytesH2D)
		}
		if warmSt.BytesD2H >= coldSt.BytesD2H {
			t.Fatalf("async=%v: warm D2H %d not below cold %d (info transfers not skipped)",
				async, warmSt.BytesD2H, coldSt.BytesD2H)
		}
		if warmSt.TotalSec >= coldSt.TotalSec {
			t.Fatalf("async=%v: warm makespan %.6fs not below cold %.6fs", async, warmSt.TotalSec, coldSt.TotalSec)
		}
	}
}

// TestPlanCacheCountersReconcile runs N jobs on one pattern and one on
// another: hits+misses must equal the job count, and the per-run
// metrics counters must agree with the cache's own totals.
func TestPlanCacheCountersReconcile(t *testing.T) {
	a := matgen.ER(200, 200, 0.03, 24)
	b := matgen.ER(200, 200, 0.03, 25)
	pc := NewPlanCache(0)
	col := metrics.New()
	opts := Options{RowPanels: 2, ColPanels: 2, PlanCache: pc, Metrics: col}
	const jobsA, jobsB = 4, 2
	for i := 0; i < jobsA; i++ {
		if _, _, err := Run(a, a, testCfg(64<<20), opts); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < jobsB; i++ {
		if _, _, err := Run(b, b, testCfg(64<<20), opts); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, evictions := pc.Counters()
	if hits+misses != jobsA+jobsB {
		t.Fatalf("hits %d + misses %d != %d jobs", hits, misses, jobsA+jobsB)
	}
	if misses != 2 || hits != jobsA+jobsB-2 {
		t.Fatalf("hits=%d misses=%d, want %d/2", hits, misses, jobsA+jobsB-2)
	}
	if evictions != 0 {
		t.Fatalf("unexpected evictions %d", evictions)
	}
	if got := col.Counter(metrics.CounterPlanCacheHits); got != hits {
		t.Fatalf("metrics hit counter %d != cache %d", got, hits)
	}
	if got := col.Counter(metrics.CounterPlanCacheMisses); got != misses {
		t.Fatalf("metrics miss counter %d != cache %d", got, misses)
	}
}

// TestPlanCacheInvalidate removes exactly the entries referencing a
// fingerprint and leaves other patterns warm.
func TestPlanCacheInvalidate(t *testing.T) {
	a := matgen.ER(150, 150, 0.04, 26)
	b := matgen.ER(150, 150, 0.04, 27)
	pc := NewPlanCache(0)
	opts := Options{RowPanels: 2, ColPanels: 2, PlanCache: pc}
	for _, m := range []*csr.Matrix{a, b} {
		if _, _, err := Run(m, m, testCfg(64<<20), opts); err != nil {
			t.Fatal(err)
		}
	}
	if pc.Len() != 2 {
		t.Fatalf("cache has %d entries, want 2", pc.Len())
	}
	if n := pc.Invalidate(csr.Fingerprint(a)); n != 1 {
		t.Fatalf("invalidated %d entries, want 1", n)
	}
	if pc.Len() != 1 {
		t.Fatalf("cache has %d entries after invalidate, want 1", pc.Len())
	}
	// b's plan must still be warm.
	if _, _, err := Run(b, b, testCfg(64<<20), opts); err != nil {
		t.Fatal(err)
	}
	hits, _, _ := pc.Counters()
	if hits != 1 {
		t.Fatalf("hits=%d after invalidate+rerun, want 1", hits)
	}
}

// TestPlanCacheLRUEviction bounds the cache by bytes: inserting a
// second pattern over a tiny budget evicts the least-recently-used.
func TestPlanCacheLRUEviction(t *testing.T) {
	a := matgen.ER(300, 300, 0.03, 28)
	b := matgen.ER(300, 300, 0.03, 29)
	pc := NewPlanCache(1) // smaller than any plan: every insert evicts the previous
	opts := Options{RowPanels: 2, ColPanels: 2, PlanCache: pc}
	if _, _, err := Run(a, a, testCfg(64<<20), opts); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(b, b, testCfg(64<<20), opts); err != nil {
		t.Fatal(err)
	}
	_, _, evictions := pc.Counters()
	if evictions == 0 {
		t.Fatal("no evictions under a 1-byte budget")
	}
	if pc.Bytes() > pc.max+1 && pc.Len() > 1 {
		t.Fatalf("cache retains %d bytes across %d entries over budget", pc.Bytes(), pc.Len())
	}
}

// TestPlanCacheDeviceLossInvalidatesResidency is the chaos scenario:
// a device dies while a cached plan's panels are recorded resident.
// The loss must clear the residency record, and the next run on the
// pattern must fall back to cold panel transfers (BytesH2D > 0) and
// still produce the exact product — never serve stale residency.
func TestPlanCacheDeviceLossInvalidatesResidency(t *testing.T) {
	a := matgen.RMAT(8, 8, 0.57, 0.19, 0.19, 30)
	pc := NewPlanCache(0)
	base := Options{RowPanels: 2, ColPanels: 2, PlanCache: pc}

	// Job 1: cold; records plan and panel residency.
	want, _, err := Run(a, a, testCfg(64<<20), base)
	if err != nil {
		t.Fatal(err)
	}

	// Job 2: warm, but the device is lost mid-run.
	lossy := base
	lossy.Faults = faults.Config{Seed: 1, LossAfterOps: 3}
	if _, _, err := Run(a, a, testCfg(64<<20), lossy); err == nil {
		t.Fatal("device-loss run unexpectedly succeeded")
	}

	// Job 3: fault-free warm run. The plan structure is still valid,
	// but residency must have been invalidated: the panels transfer
	// again from the host.
	got, st, err := Run(a, a, testCfg(64<<20), base)
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesH2D == 0 {
		t.Fatal("run after device loss moved no H2D bytes: stale residency served")
	}
	requireBitIdentical(t, want, got)
}

// TestPlanCacheDynamicAllocStaysCold pins that unmodified-spECK mode
// never engages the plan cache.
func TestPlanCacheDynamicAllocStaysCold(t *testing.T) {
	a := matgen.ER(100, 100, 0.05, 31)
	pc := NewPlanCache(0)
	opts := Options{RowPanels: 2, ColPanels: 2, DynamicAlloc: true, PlanCache: pc}
	for i := 0; i < 2; i++ {
		if _, _, err := Run(a, a, testCfg(64<<20), opts); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, _ := pc.Counters()
	if hits != 0 || misses != 0 || pc.Len() != 0 {
		t.Fatalf("dynamic mode touched the plan cache: hits=%d misses=%d len=%d", hits, misses, pc.Len())
	}
}
