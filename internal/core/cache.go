package core

import (
	"errors"
	"fmt"

	"repro/internal/faults"
	"repro/internal/gpusim"
	"repro/internal/sim"
)

// inputCache keeps input panels resident on the device between chunks.
// The paper notes (Section III-C) that panels are kept on device memory
// when possible; only the output is inherently out-of-core. Panels are
// transferred on first use and evicted FIFO when the arena (or, in
// dynamic mode, the device allocator) runs out of room.
type inputCache struct {
	e       *Engine
	dynamic bool
	entries map[string]*cacheEntry
	order   []string // insertion order for FIFO eviction
	bytes   int64
}

type cacheEntry struct {
	bytes int64
	alloc *gpusim.Alloc // dynamic mode only
}

func newInputCache(e *Engine, dynamic bool) *inputCache {
	return &inputCache{e: e, dynamic: dynamic, entries: map[string]*cacheEntry{}}
}

// ensure makes the panel identified by key resident, transferring it
// host-to-device on a miss. capacityLeft reports how many arena bytes
// remain for inputs (ignored in dynamic mode, where the device
// allocator itself is the limit). The transfer runs under chunk id's
// retry budget; on failure the panel is left non-resident.
func (c *inputCache) ensure(p *sim.Proc, id int, key, label string, bytes int64, capacityLeft func() int64, pinned ...string) error {
	if c.entries[key] != nil {
		return nil
	}
	ent := &cacheEntry{bytes: bytes}
	if c.dynamic {
		for {
			a, err := c.e.Dev.Malloc(p, label, bytes)
			if err == nil {
				ent.alloc = a
				c.e.trackAlloc(a)
				break
			}
			if !errors.Is(err, faults.ErrOOM) {
				return err // device lost — eviction cannot help
			}
			if !c.evictOne(p, pinned...) {
				return fmt.Errorf("core: input panel %s (%d bytes) does not fit device memory: %w", key, bytes, err)
			}
		}
	} else {
		for c.bytes+bytes > capacityLeft() {
			if !c.evictOne(p, pinned...) {
				return fmt.Errorf("core: input panel %s (%d bytes) does not fit the arena (%d left); increase device memory or panel counts: %w",
					key, bytes, capacityLeft(), faults.ErrOOM)
			}
		}
	}
	if _, resident := c.e.planResident[key]; resident {
		// The previous run on this pattern left the panel on the
		// device (plan cache residency): no H2D transfer needed.
		delete(c.e.planResident, key) // consume once per run
	} else if err := c.e.devOp(p, id, func() error {
		return c.e.Dev.TransferH2D(p, label, bytes)
	}); err != nil {
		if ent.alloc != nil {
			c.e.untrackAlloc(ent.alloc)
			if ferr := c.e.Dev.Free(p, ent.alloc); ferr != nil {
				c.e.fail(ferr)
			}
		}
		return err
	}
	c.entries[key] = ent
	c.order = append(c.order, key)
	c.bytes += bytes
	return nil
}

// resident reports whether a panel key is currently cached.
func (c *inputCache) resident(key string) bool { return c.entries[key] != nil }

// keys returns the currently resident panel keys in insertion order;
// the engine records them at end of run as the residency the next
// warm run on the same pattern inherits.
func (c *inputCache) keys() []string {
	return append([]string(nil), c.order...)
}

// evictOne drops the oldest resident panel that is not pinned (the
// current chunk's panels are pinned); it reports false when nothing
// can be evicted.
func (c *inputCache) evictOne(p *sim.Proc, pinned ...string) bool {
	for i, key := range c.order {
		if contains(pinned, key) {
			continue
		}
		c.order = append(c.order[:i:i], c.order[i+1:]...)
		ent := c.entries[key]
		delete(c.entries, key)
		c.bytes -= ent.bytes
		if ent.alloc != nil {
			c.e.untrackAlloc(ent.alloc)
			if err := c.e.Dev.Free(p, ent.alloc); err != nil {
				// A failing Free is a lifetime bug; record it terminally.
				c.e.fail(err)
			}
		}
		return true
	}
	return false
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
