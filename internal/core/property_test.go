package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cpuspgemm"
	"repro/internal/csr"
	"repro/internal/matgen"
)

// TestQuickPipelineMatchesReference is the pipeline's property test:
// for arbitrary random matrices, grids, split fractions and modes, the
// out-of-core product equals the sequential reference exactly.
func TestQuickPipelineMatchesReference(t *testing.T) {
	f := func(seed int64, gridSel uint8, frac uint8, async, reorder bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32 + rng.Intn(96)
		a := matgen.ER(n, n, 0.05+rng.Float64()*0.1, rng.Int63())
		grids := [][2]int{{1, 1}, {1, 3}, {3, 1}, {2, 2}, {3, 4}, {4, 3}}
		g := grids[int(gridSel)%len(grids)]
		opts := Options{
			RowPanels:     g[0],
			ColPanels:     g[1],
			Async:         async,
			Reorder:       reorder,
			SplitFraction: 0.05 + float64(frac%90)/100,
		}
		got, _, err := Run(a, a, testCfg(64<<20), opts)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want, err := cpuspgemm.Sequential(a, a)
		if err != nil {
			return false
		}
		return csr.Equal(got, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicSimulation checks that repeated runs produce
// identical simulated timings — the property the whole experiment
// harness rests on.
func TestDeterministicSimulation(t *testing.T) {
	a := matgen.RMAT(10, 9, 0.57, 0.19, 0.19, 71)
	opts := Options{RowPanels: 3, ColPanels: 3, Async: true, Reorder: true}
	_, first, err := Run(a, a, testCfg(128<<20), opts)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		_, st, err := Run(a, a, testCfg(128<<20), opts)
		if err != nil {
			t.Fatal(err)
		}
		if st != first {
			t.Fatalf("trial %d: stats differ:\n%+v\n%+v", trial, st, first)
		}
	}
}

// TestRectangularProducts exercises A·B with distinct shapes (the
// framework is not limited to squaring).
func TestRectangularProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	a := matgen.ER(150, 80, 0.1, rng.Int63())
	b := matgen.ER(80, 220, 0.08, rng.Int63())
	want, err := cpuspgemm.Sequential(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, async := range []bool{false, true} {
		got, st, err := Run(a, b, testCfg(32<<20), Options{RowPanels: 3, ColPanels: 4, Async: async})
		if err != nil {
			t.Fatalf("async=%v: %v", async, err)
		}
		if !csr.Equal(got, want, 1e-9) {
			t.Fatalf("async=%v: %s", async, csr.Diff(got, want, 1e-9))
		}
		if got.Rows != 150 || got.Cols != 220 {
			t.Fatalf("async=%v: dims %dx%d", async, got.Rows, got.Cols)
		}
		if st.Flops != csr.Flops(a, b) {
			t.Fatalf("async=%v: flops %d", async, st.Flops)
		}
	}
}

// TestZeroFlopChunksSkipped confirms empty chunks cost no device time.
func TestZeroFlopChunksSkipped(t *testing.T) {
	// Block-diagonal: off-diagonal chunks of a matching grid are empty.
	a := matgen.BlockDiag(4, 30, 73)
	_, _, tl, err := RunTraced(a, a, testCfg(32<<20), Options{RowPanels: 4, ColPanels: 4, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	// Only 4 diagonal chunks carry work: exactly 4 outputs transfer
	// (two portions each).
	outs := 0
	for _, s := range tl {
		if s.Lane == "d2h" && len(s.Label) >= 6 && s.Label[:6] == "output" {
			outs++
		}
	}
	if outs != 8 {
		t.Fatalf("saw %d output-portion transfers, want 8 (4 chunks x 2 portions)", outs)
	}
}
