package core

import (
	"errors"
	"testing"

	"repro/internal/faults"
	"repro/internal/gpusim"
	"repro/internal/matgen"
	"repro/internal/sim"
)

// cacheHarness builds an engine bound to a fresh simulated device and
// runs fn inside a simulation process, the context every inputCache
// method requires.
func cacheHarness(t *testing.T, memBytes int64, dynamic bool, fn func(e *Engine, c *inputCache, p *sim.Proc)) {
	t.Helper()
	a := matgen.ER(50, 50, 0.1, 99)
	env := sim.NewEnv()
	dev := gpusim.NewDevice(env, testCfg(memBytes))
	eng, err := NewEngine(dev, a, a, Options{RowPanels: 2, ColPanels: 2, DynamicAlloc: dynamic})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Teardown()
	env.Spawn("test", func(p *sim.Proc) {
		fn(eng, newInputCache(eng, dynamic), p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if eng.Err() != nil {
		t.Fatal(eng.Err())
	}
}

// TestInputCacheFIFOEvictionOrder pins the eviction policy: the oldest
// unpinned panel goes first, insertion order is preserved.
func TestInputCacheFIFOEvictionOrder(t *testing.T) {
	cacheHarness(t, 64<<20, false, func(e *Engine, c *inputCache, p *sim.Proc) {
		capacity := func() int64 { return 1 << 20 }
		for _, key := range []string{"A0", "B0", "B1"} {
			if err := c.ensure(p, 0, key, key, 100, capacity); err != nil {
				t.Errorf("ensure %s: %v", key, err)
			}
		}
		if !c.evictOne(p) {
			t.Error("evictOne failed with three resident panels")
		}
		if c.resident("A0") {
			t.Error("A0 survived the first eviction (not FIFO)")
		}
		if !c.evictOne(p) {
			t.Error("second evictOne failed")
		}
		if c.resident("B0") || !c.resident("B1") {
			t.Errorf("after two evictions want only B1 resident; have order %v", c.order)
		}
		if c.bytes != 100 {
			t.Errorf("cache accounts %d bytes, want 100", c.bytes)
		}
	})
}

// TestInputCachePinnedPanelProtection: the current chunk's panels are
// pinned and must never be evicted, even when that means the cache
// cannot make room.
func TestInputCachePinnedPanelProtection(t *testing.T) {
	cacheHarness(t, 64<<20, false, func(e *Engine, c *inputCache, p *sim.Proc) {
		capacity := func() int64 { return 250 }
		if err := c.ensure(p, 0, "A0", "A0", 100, capacity, "A0", "B0"); err != nil {
			t.Errorf("ensure A0: %v", err)
		}
		if err := c.ensure(p, 0, "B0", "B0", 100, capacity, "A0", "B0"); err != nil {
			t.Errorf("ensure B0: %v", err)
		}
		if c.evictOne(p, "A0", "B0") {
			t.Error("evictOne evicted a pinned panel")
		}
		// A third panel cannot fit: both residents are pinned, so the
		// cache must refuse rather than evict the current chunk's data.
		err := c.ensure(p, 0, "B1", "B1", 100, capacity, "A0", "B0", "B1")
		if err == nil {
			t.Error("ensure succeeded by evicting a pinned panel")
		}
		if !errors.Is(err, faults.ErrOOM) {
			t.Errorf("misfit error is %v, want ErrOOM", err)
		}
		if !c.resident("A0") || !c.resident("B0") {
			t.Error("pinned panels were dropped")
		}
		// With the pins released, the same insert evicts FIFO and fits.
		if err := c.ensure(p, 0, "B1", "B1", 100, capacity, "B1"); err != nil {
			t.Errorf("ensure B1 after unpinning: %v", err)
		}
		if c.resident("A0") {
			t.Error("A0 not evicted after unpinning")
		}
	})
}

// TestInputCacheDynamicOOMEvictRetry: in dynamic mode the device
// allocator is the capacity limit; an OOM'd Malloc must evict the
// oldest panel and retry until the new panel fits.
func TestInputCacheDynamicOOMEvictRetry(t *testing.T) {
	cacheHarness(t, 64<<20, true, func(e *Engine, c *inputCache, p *sim.Proc) {
		usable := e.Dev.UsableBytes()
		half := usable/2 + 1 // two fit nothing else
		if err := c.ensure(p, 0, "A0", "A0", half, nil); err != nil {
			t.Errorf("ensure A0: %v", err)
		}
		if err := c.ensure(p, 0, "B0", "B0", half-2, nil); err != nil {
			t.Errorf("ensure B0: %v", err)
		}
		mallocs := e.Dev.Mallocs()
		// B1 cannot fit until A0 is evicted; the retry loop must do
		// that transparently.
		if err := c.ensure(p, 0, "B1", "B1", half, nil, "B0", "B1"); err != nil {
			t.Errorf("ensure B1 (evict-retry): %v", err)
		}
		if c.resident("A0") {
			t.Error("A0 still resident; OOM retry did not evict")
		}
		if !c.resident("B0") || !c.resident("B1") {
			t.Error("pinned B0 or new B1 missing after retry")
		}
		if e.Dev.Mallocs() <= mallocs {
			t.Error("no allocation recorded for the retried panel")
		}
		// A panel larger than the whole device must fail even after
		// evicting everything unpinned.
		err := c.ensure(p, 0, "A1", "A1", usable+1, nil, "A1")
		if err == nil {
			t.Error("oversized panel unexpectedly fit")
		}
		if !errors.Is(err, faults.ErrOOM) {
			t.Errorf("oversized panel error is %v, want ErrOOM", err)
		}
	})
}

// TestInputCacheEvictionUnderShrunkenArena: co-tenant pressure
// (Faults.OOMShrink) shrinks usable capacity; a run that fit before
// must now evict panels FIFO mid-run yet still produce the product.
func TestInputCacheEvictionUnderShrunkenArena(t *testing.T) {
	a := matgen.RMAT(8, 8, 0.57, 0.19, 0.19, 98)
	roomy, _, err := Run(a, a, testCfg(24<<20), Options{RowPanels: 3, ColPanels: 3})
	if err != nil {
		t.Fatal(err)
	}
	shrunk, st, err := Run(a, a, testCfg(24<<20), Options{
		RowPanels: 3, ColPanels: 3,
		Faults: faults.Config{Seed: 5, OOMShrink: 0.5},
	})
	if err != nil {
		t.Fatalf("shrunken-arena run failed: %v", err)
	}
	requireBitIdentical(t, roomy, shrunk)
	// Evicted panels are re-transferred on their next use, so the
	// shrunken run moves at least as many H2D bytes.
	roomySt, err2 := func() (Stats, error) {
		_, s, e := Run(a, a, testCfg(24<<20), Options{RowPanels: 3, ColPanels: 3})
		return s, e
	}()
	if err2 != nil {
		t.Fatal(err2)
	}
	if st.BytesH2D < roomySt.BytesH2D {
		t.Fatalf("shrunken arena moved fewer H2D bytes (%d) than the roomy run (%d)", st.BytesH2D, roomySt.BytesH2D)
	}
}
