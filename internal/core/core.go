// Package core implements the paper's primary contribution: an
// out-of-core SpGEMM framework that multiplies matrices whose output
// does not fit in GPU memory.
//
// Following Algorithm 3, matrix A is partitioned into row panels and
// matrix B into column panels; each (row panel, column panel) pair
// produces an independent chunk of C under the row-column formulation,
// which is what makes partitioning both inputs possible (Section III-A).
// Chunks are computed on the (simulated) GPU with the spECK-style
// in-core algorithm and streamed back to host memory.
//
// Two execution modes are provided:
//
//   - Synchronous (Async=false): the partitioned-spECK baseline of
//     Section IV-A — each chunk's phases and its output transfer run
//     back to back, optionally with per-phase dynamic device
//     allocations (DynamicAlloc=true) as spECK performs them.
//   - Asynchronous (Async=true): the paper's design. All device memory
//     comes from one pre-allocated arena managed by offsets, so no
//     malloc ever serializes the device; the output of chunk i-1 is
//     split into two portions whose transfers overlap the symbolic and
//     numeric phases of chunk i, with the small row-analysis and
//     symbolic-info transfers scheduled between them (Figure 6); and
//     chunks can be reordered by decreasing flops so transfers hide
//     computation (Section IV-C).
package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/csr"
	"repro/internal/faults"
	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/speck"
)

// Options configures an out-of-core multiplication.
type Options struct {
	// RowPanels and ColPanels give the chunk grid (Algorithm 3's
	// num_row_panels and num_col_panels). Zero means 1.
	RowPanels, ColPanels int
	// Async enables the paper's asynchronous pipeline; false gives the
	// synchronous partitioned-spECK baseline.
	Async bool
	// Reorder processes chunks in decreasing-flops order (Section IV-C).
	Reorder bool
	// SplitFraction is the share of the previous chunk's output rows
	// transferred during the symbolic phase; the paper uses 33%.
	// Zero means 1/3. Only used when Async is set.
	SplitFraction float64
	// DynamicAlloc performs per-phase device allocations like
	// unmodified spECK instead of arena pre-allocation. Only meaningful
	// for the synchronous mode: dynamic allocation forbids overlap, the
	// very constraint the paper designs around.
	DynamicAlloc bool
	// OutputBuffers is the number of in-flight output chunk buffers in
	// the asynchronous pipeline; the paper double-buffers (2, the
	// default). More buffers trade device memory for tolerance to
	// transfer-time variance.
	OutputBuffers int
	// PartitionThreads sets the parallelism of the host-side column
	// partitioner; 0 means 4.
	PartitionThreads int
	// Metrics is an optional observability sink. When set, the run
	// publishes its simulated timeline, wall-clock host phases
	// (partitioning, assembly) and counters (bytes moved, flops,
	// chunks, mallocs) into it. Nil disables instrumentation at the
	// cost of a pointer comparison.
	Metrics *metrics.Collector
	// Faults configures deterministic fault injection on the device.
	// The zero value is fault-free and leaves the run byte-identical to
	// a build without the injection layer.
	Faults faults.Config
	// ChunkRetries bounds the transient-fault retries spent on one
	// chunk before it is abandoned to the caller's recovery path
	// (CPU fallback, device failover, or a returned error). 0 means 3;
	// negative means no retries.
	ChunkRetries int
	// RetryBackoffSec is the simulated backoff before the first retry;
	// it doubles per retry of the same chunk. 0 means 50 microseconds.
	RetryBackoffSec float64
	// DeadlineSec aborts the run (faults.ErrDeadline) once the
	// simulated clock passes it. 0 means no deadline.
	DeadlineSec float64
	// PlanCache, when non-nil, caches the values-independent half of
	// runs (partitions, chunk flops, symbolic results, panel residency)
	// across engines keyed by the operands' structural fingerprints.
	// A warm run re-values the cached partitions and skips the
	// symbolic device pipeline. Ignored with DynamicAlloc (that mode
	// models unmodified spECK, which re-plans every run by design).
	// Nil leaves every run byte-identical to a build without caching.
	PlanCache *PlanCache
	// PlanDevice namespaces the plan cache's device-residency record
	// when several devices share one cache (multigpu); empty means
	// "dev".
	PlanDevice string
	// Symbolic selects the per-chunk symbolic strategy: ModeExact (the
	// default) runs the exact symbolic kernels on every cold chunk;
	// ModeEstimate elides them behind the sampled row estimator
	// (speck.ComputeEstimated — output bit-identical); ModeAuto
	// estimates only chunks whose flop count clears the estimator's
	// auto threshold. Warm chunks never care: a cached symbolic result
	// replays numerically regardless of how it was first captured.
	Symbolic speck.Mode
	// Estimator tunes the estimation path; the zero value uses the
	// defaults.
	Estimator speck.EstimatorConfig
}

func (o Options) withDefaults() Options {
	if o.RowPanels < 1 {
		o.RowPanels = 1
	}
	if o.ColPanels < 1 {
		o.ColPanels = 1
	}
	if o.SplitFraction <= 0 || o.SplitFraction >= 1 {
		o.SplitFraction = 1.0 / 3.0
	}
	if o.PartitionThreads < 1 {
		o.PartitionThreads = 4
	}
	if o.OutputBuffers < 2 {
		o.OutputBuffers = 2
	}
	if o.Async && o.DynamicAlloc {
		// The asynchronous pipeline requires pre-allocation; keep the
		// combination well-defined by ignoring DynamicAlloc.
		o.DynamicAlloc = false
	}
	switch {
	case o.ChunkRetries == 0:
		o.ChunkRetries = 3
	case o.ChunkRetries < 0:
		o.ChunkRetries = 0
	}
	if o.RetryBackoffSec <= 0 {
		o.RetryBackoffSec = 50e-6
	}
	return o
}

// Stats summarizes a run in simulated time.
type Stats struct {
	// TotalSec is the simulated makespan, including all output
	// transfers (the paper's GFLOPS definition).
	TotalSec float64
	// TransferSec is the total time the two DMA engines were busy;
	// TransferFraction is TransferSec / TotalSec (Figure 4's metric).
	TransferSec      float64
	TransferFraction float64
	// ComputeSec is the time the kernel engine was busy.
	ComputeSec float64
	// Flops is the multiply-add flop count (x2) of the whole product.
	Flops int64
	// GFLOPS is Flops / TotalSec / 1e9.
	GFLOPS float64
	// NnzC is the number of non-zeros of the product.
	NnzC int64
	// MemPeakBytes is the device memory high-water mark.
	MemPeakBytes int64
	// Mallocs counts device allocations (1 in pre-allocated mode).
	Mallocs int
	// Chunks is RowPanels*ColPanels.
	Chunks int
	// BytesH2D and BytesD2H are the payload bytes moved over each DMA
	// engine; their sum is the "bytes moved" a trace must reconcile.
	BytesH2D, BytesD2H int64
	// Retries counts transient device faults absorbed by retrying;
	// Abandoned counts transient faults NOT retried because the chunk's
	// budget was exhausted (each abandons the chunk to the caller's
	// recovery path). Retries+Abandoned equals the injector's
	// transfer+kernel fault count, the reconciliation invariant of the
	// chaos tests. Both are zero fault-free.
	Retries, Abandoned int64
}

// Seconds returns the simulated makespan; part of metrics.Report.
func (s Stats) Seconds() float64 { return s.TotalSec }

// FlopCount returns the multiply-add flop count (x2) of the product.
func (s Stats) FlopCount() int64 { return s.Flops }

// Throughput returns the run's GFLOPS.
func (s Stats) Throughput() float64 { return s.GFLOPS }

// OutputNnz returns the product's non-zero count.
func (s Stats) OutputNnz() int64 { return s.NnzC }

// Counters returns the flat key/value snapshot of the run.
func (s Stats) Counters() map[string]int64 {
	return map[string]int64{
		metrics.CounterFlops:     s.Flops,
		metrics.CounterBytesH2D:  s.BytesH2D,
		metrics.CounterBytesD2H:  s.BytesD2H,
		metrics.CounterChunks:    int64(s.Chunks),
		metrics.CounterMallocs:   int64(s.Mallocs),
		metrics.CounterMemPeak:   s.MemPeakBytes,
		metrics.CounterNnzC:      s.NnzC,
		metrics.CounterRetries:   s.Retries,
		metrics.CounterAbandoned: s.Abandoned,
	}
}

// Engine drives the out-of-core multiplication of one (A, B) pair on a
// device. It is exported so the hybrid package can schedule a subset of
// chunks on the GPU while a CPU worker takes the rest.
type Engine struct {
	Dev  *gpusim.Device
	Opts Options

	RowPanels []partition.RowPanel
	ColPanels []partition.ColPanel

	cm speck.CostModel

	// Results maps chunk id (row*ColPanels+col) to the computed chunk.
	Results map[int]*speck.Result

	// err records the first failure inside simulation processes.
	err error

	// failed maps chunk ids that did not complete on the device to the
	// error that stopped them; callers recover them (hybrid falls back
	// to the CPU, multigpu fails over to a surviving device) or the run
	// surfaces them as a typed error.
	failed map[int]error
	// retries tracks the per-chunk retry budget already spent;
	// nRetries and nAbandoned are the run totals behind Stats.
	retries              map[int]int
	nRetries, nAbandoned int64
	// arenaAllocated notes that the one-time device arena Malloc has
	// happened; failover re-entries of ProcessChunks reuse it.
	arenaAllocated bool
	// live tracks device allocations still resident (the arena and,
	// in dynamic mode, cached input panels) so Teardown can release
	// their accounting when the run ends on any path.
	live map[*gpusim.Alloc]struct{}

	// plan is the engine's pinned plan-cache entry (nil without a
	// cache); planWarm marks a cache hit. planResident carries the
	// panel keys the previous run on this pattern left device-resident
	// (those skip their H2D transfer); endResident collects the final
	// residency this run writes back at Teardown.
	plan         *planEntry
	planWarm     bool
	planResident map[string]struct{}
	endResident  []string

	rows, cols int // dimensions of C
}

// NewEngine partitions the inputs (host-side, real work) and prepares
// an engine bound to the device.
func NewEngine(dev *gpusim.Device, a, b *csr.Matrix, opts Options) (*Engine, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("core: dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	opts = opts.withDefaults()
	if opts.RowPanels > a.Rows && a.Rows > 0 {
		return nil, fmt.Errorf("core: %d row panels for %d rows", opts.RowPanels, a.Rows)
	}
	cm := speck.ModelFromDevice(dev.Cfg)
	pc := opts.PlanCache
	if opts.DynamicAlloc {
		pc = nil // unmodified-spECK mode re-plans every run by design
	}
	if opts.PlanDevice == "" {
		opts.PlanDevice = "dev"
	}

	var rps []partition.RowPanel
	var cps []partition.ColPanel
	var ent *planEntry
	warm := false
	var key planKey
	if pc != nil {
		stopFP := opts.Metrics.StartWall("host", "fingerprint")
		key = planKey{
			fpA: csr.Fingerprint(a), fpB: csr.Fingerprint(b),
			aRows: a.Rows, aCols: a.Cols, bCols: b.Cols,
			rowPanels: opts.RowPanels, colPanels: opts.ColPanels,
			cm: cm,
		}
		stopFP()
		ent = pc.acquire(key)
	}
	if ent != nil {
		// Warm: re-value the cached partitions against the fresh
		// operands — a reslice for row panels, one copy pass for
		// column panels — skipping all partitioning index work.
		stopRevalue := opts.Metrics.StartWall("host", "revalue panels")
		rps = revalueRowPanels(ent.rps, a)
		cps = revalueColPanels(ent.cps, b)
		stopRevalue()
		warm = true
		opts.Metrics.Add(metrics.CounterPlanCacheHits, 1)
	} else {
		stopPartition := opts.Metrics.StartWall("host", "partition")
		var err error
		rps, err = partition.RowPanels(a, opts.RowPanels)
		if err != nil {
			return nil, err
		}
		cps, err = partition.ColPanelsParallel(b, opts.ColPanels, opts.PartitionThreads)
		if err != nil {
			return nil, err
		}
		stopPartition()
		if pc != nil {
			ent = pc.store(key, rps, cps)
			opts.Metrics.Add(metrics.CounterPlanCacheMisses, 1)
		}
	}
	if opts.Faults.Enabled() && dev.Faults() == nil {
		// Attach the injector unless the caller (multigpu) already
		// installed a per-device derived one.
		dev.SetFaults(faults.New(opts.Faults))
	}
	e := &Engine{
		Dev:       dev,
		Opts:      opts,
		RowPanels: rps,
		ColPanels: cps,
		cm:        cm,
		Results:   map[int]*speck.Result{},
		failed:    map[int]error{},
		retries:   map[int]int{},
		live:      map[*gpusim.Alloc]struct{}{},
		plan:      ent,
		planWarm:  warm,
		rows:      a.Rows,
		cols:      b.Cols,
	}
	if warm {
		e.planResident = pc.residentSet(ent, opts.PlanDevice)
	}
	return e, nil
}

// trackAlloc and untrackAlloc maintain the live-allocation set behind
// Teardown's end-of-run release.
func (e *Engine) trackAlloc(a *gpusim.Alloc)   { e.live[a] = struct{}{} }
func (e *Engine) untrackAlloc(a *gpusim.Alloc) { delete(e.live, a) }

// Teardown releases the engine's remaining device allocations from
// the host after the simulation has drained (accounting only — the
// simulated context is gone) and returns the device memory still
// accounted afterwards. Anything nonzero is a leak: an allocation the
// engine lost track of on some exit path. Callers publish the result
// as the mem_in_use_bytes counter, which the arena-leak audit pins to
// zero even for deadline-aborted runs.
func (e *Engine) Teardown() int64 {
	for a := range e.live {
		// Double frees were already reported at the Free site; the
		// teardown's job is only to return what is still held.
		_ = e.Dev.FreeAccounting(a)
	}
	e.live = map[*gpusim.Alloc]struct{}{}
	e.arenaAllocated = false
	if e.plan != nil {
		// Write back device residency for the next run on this
		// pattern — unless the device was lost, which invalidates any
		// recorded residency (its memory is gone; trusting it would
		// serve stale panels).
		pc := e.Opts.PlanCache
		pc.setResident(e.plan, e.Opts.PlanDevice, e.endResident, e.DeviceLost())
		pc.release(e.plan)
		e.plan = nil
		e.planResident = nil
		e.endResident = nil
	}
	leaked := e.Dev.MemUsed()
	if m := e.Opts.Metrics; m != nil {
		m.Add(metrics.CounterMemInUse, leaked)
	}
	return leaked
}

// NumChunks returns the chunk count of the grid.
func (e *Engine) NumChunks() int { return len(e.RowPanels) * len(e.ColPanels) }

// chunkPanels resolves a chunk id to its panels.
func (e *Engine) chunkPanels(id int) (partition.RowPanel, partition.ColPanel) {
	nc := len(e.ColPanels)
	return e.RowPanels[id/nc], e.ColPanels[id%nc]
}

// ChunkFlops computes the flop count of every chunk (GetFlops of
// Algorithm 4), indexed by chunk id in row-major order. Flop counts
// depend only on structure, so with a plan cache a warm run returns
// the cached counts without re-walking the panels.
func (e *Engine) ChunkFlops() []int64 {
	pc := e.Opts.PlanCache
	if e.plan != nil {
		if f := pc.flops(e.plan); f != nil {
			return f
		}
	}
	out := make([]int64, e.NumChunks())
	for id := range out {
		rp, cp := e.chunkPanels(id)
		out[id] = csr.Flops(rp.M, cp.M)
	}
	if e.plan != nil {
		pc.setFlops(e.plan, out)
	}
	return out
}

// PlanWarm reports whether the engine was built from a plan-cache hit.
func (e *Engine) PlanWarm() bool { return e.planWarm }

// chunkResult computes one chunk's result. With a cached symbolic
// plan for the chunk it runs only the numeric half (warm=true tells
// the pipelines to skip the chunk's symbolic device phases); otherwise
// it runs the full computation and, when a plan entry is active,
// records the symbolic half for future runs. Compute is exactly
// SymbolicCompute followed by Numeric, so both paths produce
// bit-identical chunks.
func (e *Engine) chunkResult(id int, rp partition.RowPanel, cp partition.ColPanel) (res *speck.Result, warm bool, err error) {
	if e.plan == nil {
		if e.useEstimation(rp, cp) {
			res, _, st, err := speck.ComputeEstimated(rp.M, cp.M, e.cm, e.Opts.Estimator)
			if err == nil {
				e.noteEstimation(st)
			}
			return res, false, err
		}
		res, err = speck.Compute(rp.M, cp.M, e.cm)
		return res, false, err
	}
	pc := e.Opts.PlanCache
	if sym := pc.symbolic(e.plan, id); sym != nil {
		res, err = speck.Numeric(sym, rp.M, cp.M)
		return res, err == nil, err
	}
	if e.useEstimation(rp, cp) {
		res, sym, st, err := speck.ComputeEstimated(rp.M, cp.M, e.cm, e.Opts.Estimator)
		if err != nil {
			return nil, false, err
		}
		e.noteEstimation(st)
		pc.addSymbolic(e.plan, id, sym, true)
		return res, false, nil
	}
	sym, err := speck.SymbolicCompute(rp.M, cp.M, e.cm)
	if err != nil {
		return nil, false, err
	}
	res, err = speck.Numeric(sym, rp.M, cp.M)
	if err != nil {
		return nil, false, err
	}
	pc.addSymbolic(e.plan, id, sym, false)
	return res, false, nil
}

// useEstimation resolves the symbolic mode for one chunk; ModeAuto
// compares the chunk's flop count against the estimator threshold, so
// a grid can mix estimated heavy chunks with exact light ones.
func (e *Engine) useEstimation(rp partition.RowPanel, cp partition.ColPanel) bool {
	switch e.Opts.Symbolic {
	case speck.ModeEstimate:
		return true
	case speck.ModeAuto:
		return e.Opts.Symbolic.Estimates(csr.Flops(rp.M, cp.M), e.Opts.Estimator)
	}
	return false
}

// noteEstimation publishes the estimation counters of one cold chunk.
func (e *Engine) noteEstimation(st speck.EstStats) {
	if m := e.Opts.Metrics; m.Enabled() {
		m.Add(metrics.CounterSymbolicEstimatedRows, st.EstimatedRows)
		m.Add(metrics.CounterSymbolicFallbackRows, st.FallbackRows)
		m.Add(metrics.CounterSymbolicOverflowRows, st.OverflowRows)
	}
}

// ScheduleOrder returns the chunk ids in execution order: row-major by
// default, decreasing flops when Opts.Reorder is set.
func (e *Engine) ScheduleOrder() []int {
	ids := make([]int, e.NumChunks())
	for i := range ids {
		ids[i] = i
	}
	if e.Opts.Reorder {
		flops := e.ChunkFlops()
		sort.SliceStable(ids, func(i, j int) bool { return flops[ids[i]] > flops[ids[j]] })
	}
	return ids
}

// Err returns the first error recorded by a simulation process.
func (e *Engine) Err() error { return e.err }

// fail records the first process error.
func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// failChunk marks one chunk as not completed on the device. Its result
// is dropped so the schedule stays honest: a failed chunk contributes
// no output until a recovery path (CPU fallback, another device)
// recomputes it.
func (e *Engine) failChunk(id int, err error) {
	delete(e.Results, id)
	e.failed[id] = err
}

// Failed returns the chunks that did not complete, keyed by the error
// that stopped them. The map is live; callers that recover a chunk
// must ClearFailed it.
func (e *Engine) Failed() map[int]error { return e.failed }

// ClearFailed removes a chunk from the failed set after a recovery
// path has produced its result elsewhere.
func (e *Engine) ClearFailed(id int) { delete(e.failed, id) }

// Retries reports the transient faults absorbed by retrying so far.
func (e *Engine) Retries() int64 { return e.nRetries }

// Abandoned reports the transient faults that exhausted a chunk's
// retry budget so far.
func (e *Engine) Abandoned() int64 { return e.nAbandoned }

// devOp runs one device operation under the chunk's retry budget:
// transient faults (ErrTransfer, ErrKernel) retry after an exponential
// simulated-clock backoff recorded on the "recovery" lane; exhausting
// the budget wraps faults.ErrChunkAbandoned; device loss and other
// errors pass through untouched.
func (e *Engine) devOp(p *sim.Proc, id int, op func() error) error {
	for {
		err := op()
		if err == nil || !faults.Transient(err) {
			return err
		}
		if e.retries[id] >= e.Opts.ChunkRetries {
			e.nAbandoned++
			return fmt.Errorf("core: chunk %d: %w: %w", id, faults.ErrChunkAbandoned, err)
		}
		e.retries[id]++
		e.nRetries++
		backoff := e.Opts.RetryBackoffSec * float64(int64(1)<<min(e.retries[id]-1, 10))
		p.Span("recovery", fmt.Sprintf("backoff c%d", id), sim.Seconds(backoff))
	}
}

// pastDeadline reports whether the run's deadline has passed on the
// simulated clock, recording the terminal error once it has.
func (e *Engine) pastDeadline() bool {
	if e.Opts.DeadlineSec <= 0 {
		return false
	}
	if now := sim.SecondsAt(e.Dev.Env.Now()); now > e.Opts.DeadlineSec {
		e.fail(fmt.Errorf("core: %w: simulated clock at %.6fs past %.6fs", faults.ErrDeadline, now, e.Opts.DeadlineSec))
		return true
	}
	return false
}

// FailedError folds the failed-chunk set into one typed error for
// callers whose recovery paths are exhausted (or absent).
func (e *Engine) FailedError() error {
	if len(e.failed) == 0 {
		return nil
	}
	ids := make([]int, 0, len(e.failed))
	for id := range e.failed {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return fmt.Errorf("core: %d of %d chunks failed (first: chunk %d): %w",
		len(ids), e.NumChunks(), ids[0], e.failed[ids[0]])
}

// Run multiplies A·B out-of-core on a fresh simulated device and
// returns the exact product plus simulated-time statistics. It is the
// package's main entry point for GPU-only execution.
func Run(a, b *csr.Matrix, cfg gpusim.DeviceConfig, opts Options) (*csr.Matrix, Stats, error) {
	c, st, _, err := RunTraced(a, b, cfg, opts)
	return c, st, err
}

// RunTraced is Run, additionally returning the simulated timeline
// (kernel, DMA and barrier spans) for schedule inspection — the data
// behind the paper's Figures 5 and 6.
func RunTraced(a, b *csr.Matrix, cfg gpusim.DeviceConfig, opts Options) (*csr.Matrix, Stats, []sim.Span, error) {
	env := sim.NewEnv()
	dev := gpusim.NewDevice(env, cfg)
	eng, err := NewEngine(dev, a, b, opts)
	if err != nil {
		return nil, Stats{}, nil, err
	}
	// End-of-run teardown on every exit path (success, deadline,
	// abandonment): release remaining device allocations and publish
	// the leak audit counter.
	defer eng.Teardown()
	env.Spawn("gpu", func(p *sim.Proc) {
		eng.ProcessChunks(p, eng.ScheduleOrder())
	})
	if err := env.Run(); err != nil {
		return nil, Stats{}, nil, err
	}
	if eng.err != nil {
		return nil, Stats{}, nil, eng.err
	}
	if err := eng.FailedError(); err != nil {
		// GPU-only execution has no fallback device; abandoned or
		// orphaned chunks surface as a typed error.
		return nil, Stats{}, nil, err
	}
	c, err := eng.Assemble()
	if err != nil {
		return nil, Stats{}, nil, err
	}
	st := eng.stats(env, c)
	eng.PublishMetrics(env, st)
	return c, st, env.Timeline, nil
}

// PublishMetrics exports the run's simulated timeline and counters
// into the engine's metrics collector (no-op when none is configured).
// Callers that drive the environment themselves (hybrid, multigpu)
// invoke it after computing their stats so instrumentation lands once,
// here, rather than per engine.
func (e *Engine) PublishMetrics(env *sim.Env, st Stats) {
	c := e.Opts.Metrics
	if c == nil {
		return
	}
	c.ImportSim(env.Timeline)
	for k, v := range st.Counters() {
		c.Add(k, v)
	}
	for kind, n := range e.Dev.Faults().Counts() {
		c.Add("faults_injected_"+kind, n)
	}
}

// stats collects run statistics from the environment.
func (e *Engine) stats(env *sim.Env, c *csr.Matrix) Stats {
	var flops int64
	for _, r := range e.Results {
		flops += r.Flops
	}
	total := sim.SecondsAt(env.Now())
	transfer := sim.SecondsOf(e.Dev.TransferBusy())
	st := Stats{
		TotalSec:     total,
		TransferSec:  transfer,
		ComputeSec:   sim.SecondsOf(e.Dev.ComputeBusy()),
		Flops:        flops,
		MemPeakBytes: e.Dev.MemPeak(),
		Mallocs:      e.Dev.Mallocs(),
		Chunks:       e.NumChunks(),
		BytesH2D:     e.Dev.BytesH2D(),
		BytesD2H:     e.Dev.BytesD2H(),
		Retries:      e.nRetries,
		Abandoned:    e.nAbandoned,
	}
	if c != nil {
		st.NnzC = c.Nnz()
	}
	if total > 0 {
		st.TransferFraction = transfer / total
		st.GFLOPS = float64(flops) / total / 1e9
	}
	return st
}

// StatsFor exposes stats computation for callers (like the hybrid
// engine) that drive the environment themselves.
func (e *Engine) StatsFor(env *sim.Env, c *csr.Matrix) Stats { return e.stats(env, c) }

// ProcessChunks executes the given chunks on the device in order,
// using the synchronous or asynchronous pipeline per Options. It must
// be called from a simulation process. It returns the ids from this
// call that did not complete (also recorded in Failed, with their
// errors) so callers can route them to a recovery path; terminal
// errors — a deadline, a host-side failure — are recorded on the
// engine (see Err).
func (e *Engine) ProcessChunks(p *sim.Proc, ids []int) []int {
	if len(ids) == 0 {
		return nil
	}
	if e.Opts.Async {
		return e.processAsync(p, ids)
	}
	return e.processSync(p, ids)
}

// DeviceLost reports whether the engine's device has permanently
// failed.
func (e *Engine) DeviceLost() bool { return e.Dev.Faults().Lost() }

// IsRecoverable reports whether a chunk failure can be recovered by
// recomputing the chunk elsewhere (as opposed to a terminal condition
// like a missed deadline).
func IsRecoverable(err error) bool {
	return err != nil && !errors.Is(err, faults.ErrDeadline)
}

// inputBytes reports the device footprint of a chunk's input panels.
func inputBytes(rp partition.RowPanel, cp partition.ColPanel) (aBytes, bBytes int64) {
	return rp.M.Bytes(), cp.M.Bytes()
}
