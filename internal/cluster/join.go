package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"

	apiv1 "repro/spgemm/api/v1"
)

// JoinerConfig tunes a replica's membership loop against a
// coordinator. The zero value needs Coordinator, Name and Advertise.
type JoinerConfig struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// Name is the replica's stable name; Advertise the base URL the
	// coordinator should dial back.
	Name, Advertise string
	// Heartbeat overrides the cadence the coordinator answers with
	// (0 = follow the JoinResponse's HeartbeatSec).
	Heartbeat time.Duration
	// BackoffBase and BackoffMax bound the capped exponential backoff
	// between failed join attempts — the re-registration schedule after
	// a coordinator restart or partition (0 = 500ms / 8s).
	BackoffBase, BackoffMax time.Duration
	// JoinTimeout bounds one join exchange (0 = 2s) — a join is a
	// control-plane call; it must never wait out a data-plane budget.
	JoinTimeout time.Duration
	// Sleep replaces the wait between attempts in tests; nil means a
	// real timer. The loop re-checks Stop after every wait either way.
	Sleep func(time.Duration)
	// HTTP overrides the transport (tests); nil means a plain client.
	HTTP *http.Client
}

func (c JoinerConfig) withDefaults() JoinerConfig {
	if c.BackoffBase <= 0 {
		c.BackoffBase = 500 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 8 * time.Second
	}
	if c.JoinTimeout <= 0 {
		c.JoinTimeout = 2 * time.Second
	}
	return c
}

// Joiner keeps one replica registered with a coordinator: an immediate
// join at startup, heartbeat joins at the coordinator's cadence, and
// capped-backoff re-registration whenever the coordinator is
// unreachable — so a restarted coordinator rebuilds its membership
// from the replicas themselves, with no stored state.
type Joiner struct {
	cfg    JoinerConfig
	client *apiv1.Client

	stop chan struct{}
	done chan struct{}
	once sync.Once

	mu         sync.Mutex
	joins      int64
	failures   int64
	rejoinAcks int64
	lastErr    error
}

// NewJoiner builds the loop; Start (or Run) begins it.
func NewJoiner(cfg JoinerConfig) *Joiner {
	cfg = cfg.withDefaults()
	return &Joiner{
		cfg:    cfg,
		client: &apiv1.Client{BaseURL: cfg.Coordinator, HTTP: cfg.HTTP},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Start runs the loop in a goroutine; Stop ends it.
func (j *Joiner) Start() {
	go j.Run()
}

// Stop ends the loop and waits for it to exit.
func (j *Joiner) Stop() {
	j.once.Do(func() { close(j.stop) })
	<-j.done
}

// Counters reports the loop's activity: joins_sent (successful
// registrations/heartbeats), join_failures (unreachable coordinator
// attempts) and rejoin_acks (joins the coordinator answered
// rejoined=true — it had us down, or never knew us after its restart).
func (j *Joiner) Counters() map[string]int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return map[string]int64{
		"joins_sent":    j.joins,
		"join_failures": j.failures,
		"rejoin_acks":   j.rejoinAcks,
	}
}

// LastErr returns the most recent join failure (nil after a success).
func (j *Joiner) LastErr() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastErr
}

// Run executes the membership loop until Stop. Every iteration is one
// join exchange; the wait after it is the heartbeat cadence on
// success and the capped exponential backoff on failure (reset by the
// next success).
func (j *Joiner) Run() {
	defer close(j.done)
	backoff := j.cfg.BackoffBase
	for {
		ctx, cancel := context.WithTimeout(context.Background(), j.cfg.JoinTimeout)
		resp, err := j.client.Join(ctx, apiv1.JoinRequest{Name: j.cfg.Name, URL: j.cfg.Advertise})
		cancel()
		var wait time.Duration
		j.mu.Lock()
		if err != nil {
			j.failures++
			j.lastErr = err
			wait = backoff
			backoff *= 2
			if backoff > j.cfg.BackoffMax {
				backoff = j.cfg.BackoffMax
			}
		} else {
			j.joins++
			j.lastErr = nil
			if resp.Rejoined {
				j.rejoinAcks++
			}
			backoff = j.cfg.BackoffBase
			wait = j.cfg.Heartbeat
			if wait <= 0 && resp.HeartbeatSec > 0 {
				wait = time.Duration(resp.HeartbeatSec * float64(time.Second))
			}
			if wait <= 0 {
				wait = 2 * time.Second
			}
		}
		j.mu.Unlock()
		if !j.sleepOrStop(wait) {
			return
		}
	}
}

// sleepOrStop waits for the duration (via the injected clock when
// set), returning false when Stop fired.
func (j *Joiner) sleepOrStop(d time.Duration) bool {
	if j.cfg.Sleep != nil {
		j.cfg.Sleep(d)
		select {
		case <-j.stop:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-j.stop:
		return false
	case <-t.C:
		return true
	}
}
