package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/serve"
	apiv1 "repro/spgemm/api/v1"
)

// Handler returns the coordinator's HTTP surface — route-for-route the
// single server's API, so a client (or the apiv1.Client) pointed at a
// cluster cannot tell the difference:
//
//	GET    /healthz              — coordinator liveness
//	GET    /readyz               — aggregated readiness + per-replica states
//	GET    /metricsz             — cluster_* counters + summed replica counters
//	POST   /v1/multiply          — routed by structural fingerprint
//	POST   /v1/batch             — whole DAG routed to one replica
//	POST   /v1/matrices          — placed on the ring owner, spilled for failover
//	POST   /v1/matrices/bulk     — several matrices placed in one request
//	GET    /v1/matrices/{handle} — the spill copy's raw CSR payload
//	DELETE /v1/matrices/{handle} — dropped everywhere it lives
//	POST   /v1/join              — replica registration + heartbeat
//	POST   /v1/admin/drain       — drain every replica, answer merged counters
//
// Errors ride the shared apiv1 envelope via serve.WriteError, with the
// cluster-specific replica_down code (503 + Retry-After) when no
// replica could take a request.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", guard(http.MethodGet, c.handleHealthz))
	mux.HandleFunc("/readyz", guard(http.MethodGet, c.handleReadyz))
	mux.HandleFunc("/metricsz", guard(http.MethodGet, c.handleMetricsz))
	mux.HandleFunc("/v1/multiply", guard(http.MethodPost, c.handleMultiply))
	mux.HandleFunc("/v1/batch", guard(http.MethodPost, c.handleBatch))
	mux.HandleFunc("/v1/matrices", guard(http.MethodPost, c.handleMatrices))
	mux.HandleFunc("/v1/matrices/bulk", guard(http.MethodPost, c.handleMatricesBulk))
	mux.HandleFunc("/v1/matrices/", guardMethods(map[string]http.HandlerFunc{
		http.MethodGet:    c.handleMatrixGet,
		http.MethodDelete: c.handleMatrixDelete,
	}))
	mux.HandleFunc("/v1/join", guard(http.MethodPost, c.handleJoin))
	mux.HandleFunc("/v1/admin/drain", guard(http.MethodPost, c.handleAdminDrain))
	return mux
}

func guard(method string, h http.HandlerFunc) http.HandlerFunc {
	return guardMethods(map[string]http.HandlerFunc{method: h})
}

// guardMethods dispatches on the allowed method set; anything else is
// 405 with a deterministic sorted Allow header and the envelope —
// identical behavior to the single server's guard, by contract.
func guardMethods(handlers map[string]http.HandlerFunc) http.HandlerFunc {
	allowed := make([]string, 0, len(handlers))
	for m := range handlers {
		allowed = append(allowed, m)
	}
	sort.Strings(allowed)
	allow := strings.Join(allowed, ", ")
	return func(w http.ResponseWriter, r *http.Request) {
		h, ok := handlers[r.Method]
		if !ok {
			w.Header().Set("Allow", allow)
			writeJSON(w, http.StatusMethodNotAllowed, apiv1.ErrorResponse{
				Code:  apiv1.CodeMethodNotAllowed,
				Error: fmt.Sprintf("method %s not allowed (use %s)", r.Method, allow),
			})
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz serves the aggregated readiness: the same wire statuses
// a single server emits, plus the per-replica health map. 503 only
// when draining — a degraded cluster still serves.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	body := c.Ready()
	status := http.StatusOK
	if body.Status == apiv1.ReadyStatusDraining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

func (c *Coordinator) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	counters := c.Counters()
	body := make(map[string]any, len(counters)+1)
	for k, v := range counters {
		body[k] = v
	}
	body["cluster_replicas"] = c.Health()
	writeJSON(w, http.StatusOK, body)
}

func (c *Coordinator) handleMultiply(w http.ResponseWriter, r *http.Request) {
	var req apiv1.MultiplyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiv1.ErrorResponse{Code: apiv1.CodeBadRequest, Error: "bad request body: " + err.Error()})
		return
	}
	resp, err := c.Multiply(req)
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req apiv1.BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiv1.ErrorResponse{Code: apiv1.CodeBadRequest, Error: "bad request body: " + err.Error()})
		return
	}
	resp, err := c.Batch(&req)
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleMatrices(w http.ResponseWriter, r *http.Request) {
	var req apiv1.MatrixRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiv1.ErrorResponse{Code: apiv1.CodeBadRequest, Error: "bad request body: " + err.Error()})
		return
	}
	resp, err := c.StoreFromRequest(req)
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMatricesBulk places several matrices in one request — the same
// bulk surface the replicas expose, so a client can speak to either.
func (c *Coordinator) handleMatricesBulk(w http.ResponseWriter, r *http.Request) {
	var req apiv1.MatrixBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiv1.ErrorResponse{Code: apiv1.CodeBadRequest, Error: "bad request body: " + err.Error()})
		return
	}
	resp, err := c.StoreBulk(req)
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMatrixGet answers from the coordinator's spill copy — the
// authoritative record of everything stored through it, reachable even
// while the handle's owner is down.
func (c *Coordinator) handleMatrixGet(w http.ResponseWriter, r *http.Request) {
	handle := strings.TrimPrefix(r.URL.Path, "/v1/matrices/")
	c.mu.Lock()
	ent := c.spill[handle]
	c.mu.Unlock()
	if ent == nil {
		serve.WriteError(w, &serve.UnknownHandleError{Handle: handle})
		return
	}
	writeJSON(w, http.StatusOK, apiv1.MatrixDataFrom(ent.m))
}

func (c *Coordinator) handleMatrixDelete(w http.ResponseWriter, r *http.Request) {
	handle := strings.TrimPrefix(r.URL.Path, "/v1/matrices/")
	if !c.DeleteMatrix(handle) {
		serve.WriteError(w, &serve.UnknownHandleError{Handle: handle})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": handle})
}

// handleJoin serves replica registration and heartbeat.
func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req apiv1.JoinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiv1.ErrorResponse{Code: apiv1.CodeBadRequest, Error: "bad request body: " + err.Error()})
		return
	}
	resp, err := c.Join(req)
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAdminDrain drains the whole cluster and answers the merged
// final counters — the reconciliation snapshot of the soak harness.
func (c *Coordinator) handleAdminDrain(w http.ResponseWriter, r *http.Request) {
	var req apiv1.DrainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiv1.ErrorResponse{Code: apiv1.CodeBadRequest, Error: "bad request body: " + err.Error()})
		return
	}
	timeout := 30 * time.Second
	if req.TimeoutSec > 0 {
		timeout = time.Duration(req.TimeoutSec * float64(time.Second))
	}
	writeJSON(w, http.StatusOK, apiv1.DrainResponse{Counters: c.Drain(timeout)})
}
