package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/serve"
	apiv1 "repro/spgemm/api/v1"
)

// Handler returns the coordinator's HTTP surface — route-for-route the
// single server's API, so a client (or the apiv1.Client) pointed at a
// cluster cannot tell the difference:
//
//	GET    /healthz              — coordinator liveness
//	GET    /readyz               — aggregated readiness + per-replica states
//	GET    /metricsz             — cluster_* counters + summed replica counters
//	POST   /v1/multiply          — routed by structural fingerprint
//	POST   /v1/batch             — whole DAG routed to one replica
//	POST   /v1/matrices          — placed on the ring owner, spilled for failover
//	DELETE /v1/matrices/{handle} — dropped everywhere it lives
//
// Errors ride the shared apiv1 envelope via serve.WriteError, with the
// cluster-specific replica_down code (503 + Retry-After) when no
// replica could take a request.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", guard(http.MethodGet, c.handleHealthz))
	mux.HandleFunc("/readyz", guard(http.MethodGet, c.handleReadyz))
	mux.HandleFunc("/metricsz", guard(http.MethodGet, c.handleMetricsz))
	mux.HandleFunc("/v1/multiply", guard(http.MethodPost, c.handleMultiply))
	mux.HandleFunc("/v1/batch", guard(http.MethodPost, c.handleBatch))
	mux.HandleFunc("/v1/matrices", guard(http.MethodPost, c.handleMatrices))
	mux.HandleFunc("/v1/matrices/", guard(http.MethodDelete, c.handleMatrixByHandle))
	return mux
}

func guard(method string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeJSON(w, http.StatusMethodNotAllowed, apiv1.ErrorResponse{
				Code:  apiv1.CodeMethodNotAllowed,
				Error: fmt.Sprintf("method %s not allowed (use %s)", r.Method, method),
			})
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz serves the aggregated readiness: the same wire statuses
// a single server emits, plus the per-replica health map. 503 only
// when draining — a degraded cluster still serves.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	body := c.Ready()
	status := http.StatusOK
	if body.Status == apiv1.ReadyStatusDraining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

func (c *Coordinator) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	counters := c.Counters()
	body := make(map[string]any, len(counters)+1)
	for k, v := range counters {
		body[k] = v
	}
	body["cluster_replicas"] = c.Health()
	writeJSON(w, http.StatusOK, body)
}

func (c *Coordinator) handleMultiply(w http.ResponseWriter, r *http.Request) {
	var req apiv1.MultiplyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiv1.ErrorResponse{Code: apiv1.CodeBadRequest, Error: "bad request body: " + err.Error()})
		return
	}
	resp, err := c.Multiply(req)
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req apiv1.BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiv1.ErrorResponse{Code: apiv1.CodeBadRequest, Error: "bad request body: " + err.Error()})
		return
	}
	resp, err := c.Batch(&req)
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleMatrices(w http.ResponseWriter, r *http.Request) {
	var req apiv1.MatrixRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiv1.ErrorResponse{Code: apiv1.CodeBadRequest, Error: "bad request body: " + err.Error()})
		return
	}
	resp, err := c.StoreFromRequest(req)
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleMatrixByHandle(w http.ResponseWriter, r *http.Request) {
	handle := strings.TrimPrefix(r.URL.Path, "/v1/matrices/")
	if !c.DeleteMatrix(handle) {
		serve.WriteError(w, &serve.UnknownHandleError{Handle: handle})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": handle})
}
