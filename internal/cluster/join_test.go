package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	apiv1 "repro/spgemm/api/v1"
)

// waitRecorder captures the joiner's waits without real sleeping.
type waitRecorder struct {
	mu    sync.Mutex
	waits []time.Duration
}

func (w *waitRecorder) sleep(d time.Duration) {
	w.mu.Lock()
	w.waits = append(w.waits, d)
	w.mu.Unlock()
	time.Sleep(100 * time.Microsecond) // keep the hot loop polite
}

func (w *waitRecorder) snapshot() []time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]time.Duration(nil), w.waits...)
}

// TestJoinerBackoffCapsAndResets scripts a coordinator outage: the
// first five joins fail, then service returns. The waits must follow
// the capped doubling schedule (500ms → 8s) and snap back to the
// heartbeat cadence on the first success.
func TestJoinerBackoffCapsAndResets(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 5 {
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(apiv1.ErrorResponse{Code: apiv1.CodeReplicaDown, Error: "coordinator restarting"})
			return
		}
		_ = json.NewEncoder(w).Encode(apiv1.JoinResponse{Name: "r0", HeartbeatSec: 3})
	}))
	defer ts.Close()

	rec := &waitRecorder{}
	j := NewJoiner(JoinerConfig{
		Coordinator: ts.URL, Name: "r0", Advertise: "http://127.0.0.1:1",
		Sleep: rec.sleep,
	})
	j.Start()
	deadline := time.Now().Add(5 * time.Second)
	for j.Counters()["joins_sent"] < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("joiner never recovered: %+v, lastErr %v", j.Counters(), j.LastErr())
		}
		time.Sleep(time.Millisecond)
	}
	j.Stop()

	waits := rec.snapshot()
	want := []time.Duration{
		500 * time.Millisecond, time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second,
		3 * time.Second, // first success: heartbeat cadence from the response
	}
	if len(waits) < len(want) {
		t.Fatalf("recorded %d waits, want at least %d: %v", len(waits), len(want), waits)
	}
	for i, w := range want {
		if waits[i] != w {
			t.Fatalf("wait %d = %v, want %v (all: %v)", i, waits[i], w, waits)
		}
	}
	c := j.Counters()
	if c["join_failures"] != 5 || c["joins_sent"] < 2 {
		t.Fatalf("counters = %+v, want 5 failures and >=2 joins", c)
	}
	if j.LastErr() != nil {
		t.Fatalf("lastErr after recovery = %v, want nil", j.LastErr())
	}
}

// TestJoinerRegistersAndRevives runs a real coordinator over HTTP: a
// joiner registers a (stub) replica, request-path evidence condemns
// it, and the next heartbeat revives it with a rejoined ack — the
// whole membership protocol end to end, minus only real replica
// processes.
func TestJoinerRegistersAndRevives(t *testing.T) {
	stub := &stubBackend{name: "r9"}
	coord := New(Config{NewBackend: func(name, url string) Backend { return stub }})
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	rec := &waitRecorder{}
	j := NewJoiner(JoinerConfig{
		Coordinator: ts.URL, Name: "r9", Advertise: "http://127.0.0.1:2",
		Sleep: rec.sleep,
	})
	j.Start()
	defer j.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for coord.Health()["r9"] != HealthUp {
		if time.Now().After(deadline) {
			t.Fatalf("replica never registered: health %v", coord.Health())
		}
		time.Sleep(time.Millisecond)
	}
	if got := coord.Snapshot()[metrics.CounterClusterJoins]; got != 1 {
		t.Fatalf("join_total after first registration = %d, want 1", got)
	}

	// Heartbeats while healthy change nothing.
	base := j.Counters()["joins_sent"]
	for j.Counters()["joins_sent"] < base+3 {
		if time.Now().After(deadline) {
			t.Fatal("heartbeats stalled")
		}
		time.Sleep(time.Millisecond)
	}
	if got := coord.Snapshot()[metrics.CounterClusterJoins]; got != 1 {
		t.Fatalf("join_total after heartbeats = %d, want still 1", got)
	}
	if got := coord.Snapshot()[metrics.CounterClusterRejoins]; got != 0 {
		t.Fatalf("rejoin_total while healthy = %d, want 0", got)
	}

	// Request-path proof of death: the next heartbeat is a rejoin.
	coord.noteFailure("r9", noHealthyReplica())
	if coord.Health()["r9"] != HealthDown {
		t.Fatalf("health after condemnation = %v", coord.Health())
	}
	for coord.Health()["r9"] != HealthUp {
		if time.Now().After(deadline) {
			t.Fatalf("replica never revived: health %v", coord.Health())
		}
		time.Sleep(time.Millisecond)
	}
	if got := coord.Snapshot()[metrics.CounterClusterRejoins]; got != 1 {
		t.Fatalf("rejoin_total after revival = %d, want 1", got)
	}
	deadline = time.Now().Add(5 * time.Second)
	for j.Counters()["rejoin_acks"] < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("joiner never saw the rejoin ack: %+v", j.Counters())
		}
		time.Sleep(time.Millisecond)
	}
}
