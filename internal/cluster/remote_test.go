package cluster

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/spgemm"
	apiv1 "repro/spgemm/api/v1"
)

// remoteServe starts a real serve server on a real socket and returns
// it with its base URL.
func remoteServe(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Drain(0) })
	return s, ts
}

// oneShot is an HTTP client with keep-alives off, so each request is
// one connection — the unit a NetProxy fate is drawn per.
func oneShot() *http.Client {
	return &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
}

// TestRemoteReplicaIndistinguishable runs the coordinator over two
// remote replicas on real sockets: store, handle multiply, batch and
// merged counters all work through the Backend interface exactly as
// they do over local replicas — the coordinator cannot tell.
func TestRemoteReplicaIndistinguishable(t *testing.T) {
	_, ts0 := remoteServe(t, serve.Config{MaxConcurrent: 2})
	_, ts1 := remoteServe(t, serve.Config{MaxConcurrent: 2})
	coord := New(Config{},
		NewRemoteReplica("r0", ts0.URL, RemoteConfig{}),
		NewRemoteReplica("r1", ts1.URL, RemoteConfig{}),
	)
	defer coord.Drain(time.Second)

	m := testMatrix(1)
	want, err := spgemm.Multiply(m, m)
	if err != nil {
		t.Fatal(err)
	}
	handle, err := coord.StoreMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := coord.Multiply(apiv1.MultiplyRequest{Engine: "cpu", AHandle: handle})
	if err != nil {
		t.Fatal(err)
	}
	if resp.NnzC != want.Nnz() {
		t.Fatalf("remote multiply nnz = %d, want %d", resp.NnzC, want.Nnz())
	}
	br, err := coord.Batch(&apiv1.BatchRequest{Engine: "cpu", Nodes: []apiv1.BatchNode{
		{ID: "sq", A: apiv1.Operand{Handle: handle}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if br.Completed != 1 {
		t.Fatalf("remote batch completed = %d", br.Completed)
	}
	snap := coord.Counters()
	if snap[metrics.CounterServeAccepted] < 2 {
		t.Fatalf("merged counters missing remote serve counters: %v", snap)
	}
}

// TestRemoteReplicaFailoverOnKilledServer kills the operand's owning
// server process (its socket refuses), and the next multiply must fail
// over to the survivor: refused evidence condemns immediately, the
// spill copy is re-uploaded in one batch, and the request succeeds.
func TestRemoteReplicaFailoverOnKilledServer(t *testing.T) {
	_, ts0 := remoteServe(t, serve.Config{MaxConcurrent: 2})
	_, ts1 := remoteServe(t, serve.Config{MaxConcurrent: 2})
	servers := map[string]*httptest.Server{"r0": ts0, "r1": ts1}
	r0 := NewRemoteReplica("r0", ts0.URL, RemoteConfig{HTTP: oneShot()})
	r1 := NewRemoteReplica("r1", ts1.URL, RemoteConfig{HTTP: oneShot()})
	coord := New(Config{}, r0, r1)

	m := testMatrix(1)
	handle, err := coord.StoreMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	owner := tcOwner(coord, m)
	servers[owner].Close() // a real dead socket, not a simulated one

	resp, err := coord.Multiply(apiv1.MultiplyRequest{Engine: "cpu", AHandle: handle})
	if err != nil {
		t.Fatalf("multiply after killing owner %s: %v", owner, err)
	}
	if resp.NnzC == 0 {
		t.Fatal("failover answer empty")
	}
	if coord.Health()[owner] != HealthDown {
		t.Fatalf("killed owner health = %s, want down (refused condemns immediately)", coord.Health()[owner])
	}
	snap := coord.Snapshot()
	if snap[metrics.CounterClusterFailovers] != 1 {
		t.Fatalf("failovers = %d, want 1", snap[metrics.CounterClusterFailovers])
	}
	if snap[metrics.CounterClusterSpillReuploadBatch] != 1 {
		t.Fatalf("spill reupload batches = %d, want 1 (successor takeover)", snap[metrics.CounterClusterSpillReuploadBatch])
	}
	if snap[metrics.CounterClusterSpillReuploadBytes] != m.Bytes() {
		t.Fatalf("spill reupload bytes = %d, want %d", snap[metrics.CounterClusterSpillReuploadBytes], m.Bytes())
	}
	dead := map[string]*RemoteReplica{"r0": r0, "r1": r1}[owner]
	if dead.TransportCounters()[metrics.CounterClusterRemoteRefused] == 0 {
		t.Fatalf("no refused transport counted on the dead replica: %v", dead.TransportCounters())
	}
}

// tcOwner is ownerOf for a coordinator without the test-cluster struct.
func tcOwner(c *Coordinator, m *spgemm.Matrix) string {
	return c.candidates(spgemm.Fingerprint(m))[0]
}

// TestRemoteErrorTaxonomy pins the wire round trip of the server's
// typed errors: a scripted remote answers each envelope code and the
// RemoteReplica must hand the coordinator the same typed error the
// in-process server would have returned.
func TestRemoteErrorTaxonomy(t *testing.T) {
	var code string
	var retryAfter float64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		status := map[string]int{
			apiv1.CodeDraining:      http.StatusServiceUnavailable,
			apiv1.CodeReplicaDown:   http.StatusServiceUnavailable,
			apiv1.CodeOverloaded:    http.StatusTooManyRequests,
			apiv1.CodeQueueFull:     http.StatusTooManyRequests,
			apiv1.CodeUnknownHandle: http.StatusNotFound,
		}[code]
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(apiv1.ErrorResponse{
			Code: code, Error: "scripted", RetryAfterSec: retryAfter,
		})
	}))
	defer ts.Close()
	r := NewRemoteReplica("r0", ts.URL, RemoteConfig{})
	multiply := func() error {
		_, err := r.Multiply(apiv1.MultiplyRequest{Engine: "cpu", AHandle: "m-feedfacefeedfacefeedfacefeedface"})
		return err
	}

	code = apiv1.CodeDraining
	var de *serve.DrainingError
	if err := multiply(); !errors.As(err, &de) {
		t.Fatalf("draining decoded as %T (%v)", err, err)
	}

	code, retryAfter = apiv1.CodeOverloaded, 3
	var oe *serve.OverloadError
	if err := multiply(); !errors.As(err, &oe) || oe.RetryAfter != 3*time.Second {
		t.Fatalf("overloaded decoded as %T (%v)", err, err)
	}

	code, retryAfter = apiv1.CodeQueueFull, 0
	var qe *serve.QueueFullError
	if err := multiply(); !errors.As(err, &qe) {
		t.Fatalf("queue_full decoded as %T (%v)", err, err)
	}

	code = apiv1.CodeUnknownHandle
	var uh *serve.UnknownHandleError
	if err := multiply(); !errors.As(err, &uh) || uh.Handle != "m-feedfacefeedfacefeedfacefeedface" {
		t.Fatalf("unknown_handle decoded as %T (%v)", err, err)
	}

	code = apiv1.CodeReplicaDown
	if err := multiply(); !errors.Is(err, faults.ErrReplicaDown) {
		t.Fatalf("replica_down not ErrReplicaDown: %v", err)
	}
	// Typed envelopes are the replica answering, not transport failure.
	if n := len(r.TransportCounters()); n != 0 {
		t.Fatalf("typed errors counted as transport failures: %v", r.TransportCounters())
	}
}

// TestRemoteTransportClassification injects each of the proxy's fault
// fates in front of a real server and checks the classified kind, the
// counter, and that every kind still matches ErrReplicaDown for the
// coordinator's failover dispatch.
func TestRemoteTransportClassification(t *testing.T) {
	_, ts := remoteServe(t, serve.Config{MaxConcurrent: 2})
	target := strings.TrimPrefix(ts.URL, "http://")
	cases := []struct {
		name    string
		cfg     faults.NetProxyConfig
		timeout time.Duration
		kind    string
		counter string
	}{
		{"reset", faults.NetProxyConfig{Seed: 7, Target: target, ResetRate: 1}, 0, TransportReset, metrics.CounterClusterRemoteResets},
		{"timeout", faults.NetProxyConfig{Seed: 3, Target: target, LatencyRate: 1, Latency: 500 * time.Millisecond}, 50 * time.Millisecond, TransportTimeout, metrics.CounterClusterRemoteTimeouts},
		{"refused", faults.NetProxyConfig{Seed: 9, Target: target}, 0, TransportRefused, metrics.CounterClusterRemoteRefused},
	}
	for _, tcase := range cases {
		t.Run(tcase.name, func(t *testing.T) {
			p := faults.NewNetProxy(tcase.cfg)
			addr, err := p.Start()
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			if tcase.kind == TransportRefused {
				if err := p.Partition(true); err != nil {
					t.Fatal(err)
				}
			}
			r := NewRemoteReplica("r0", "http://"+addr, RemoteConfig{
				MultiplyTimeout: tcase.timeout, HTTP: oneShot(),
			})
			_, err = r.Multiply(apiv1.MultiplyRequest{
				Engine: "cpu",
				A:      apiv1.MatrixSpec{Kind: "er", Rows: 16, Cols: 16, Density: 0.2, Seed: 1},
			})
			var te *TransportError
			if !errors.As(err, &te) || te.Kind != tcase.kind {
				t.Fatalf("error = %v, want transport kind %s", err, tcase.kind)
			}
			if !errors.Is(err, faults.ErrReplicaDown) {
				t.Fatalf("%s transport error does not match ErrReplicaDown", tcase.kind)
			}
			if got := r.TransportCounters()[tcase.counter]; got != 1 {
				t.Fatalf("%s counter = %d, want 1 (%v)", tcase.counter, got, r.TransportCounters())
			}
		})
	}
}

// TestRemoteEvidenceWeights pins the health machine's failure weights:
// a timeout or reset is one unit of suspect evidence (DownAfter of
// them condemn), while a refused connection condemns immediately.
func TestRemoteEvidenceWeights(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})

	tc.c.noteFailure("r0", &TransportError{Replica: "r0", Kind: TransportTimeout, Err: errors.New("deadline")})
	if got := tc.c.Health()["r0"]; got != HealthSuspect {
		t.Fatalf("after one timeout: health %s, want suspect", got)
	}
	tc.c.noteFailure("r0", &TransportError{Replica: "r0", Kind: TransportReset, Err: errors.New("rst")})
	if got := tc.c.Health()["r0"]; got != HealthDown {
		t.Fatalf("after DownAfter soft failures: health %s, want down", got)
	}

	tc.c.noteFailure("r1", &TransportError{Replica: "r1", Kind: TransportRefused, Err: errors.New("refused")})
	if got := tc.c.Health()["r1"]; got != HealthDown {
		t.Fatalf("after one refused: health %s, want down immediately", got)
	}
}

// TestRemoteProbeTimeoutDistinct pins the per-operation failure
// domains: a replica that hangs must be detected in probe time, not
// after waiting out a multiply-sized budget.
func TestRemoteProbeTimeoutDistinct(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Second) // a hung peer
	}))
	defer ts.Close()
	r := NewRemoteReplica("r0", ts.URL, RemoteConfig{
		ProbeTimeout:    50 * time.Millisecond,
		MultiplyTimeout: time.Minute,
		HTTP:            oneShot(),
	})
	start := time.Now()
	_, err := r.Ready()
	elapsed := time.Since(start)
	var te *TransportError
	if !errors.As(err, &te) || te.Kind != TransportTimeout {
		t.Fatalf("hung probe error = %v, want transport timeout", err)
	}
	if elapsed > time.Second {
		t.Fatalf("probe took %v — it waited out more than ProbeTimeout", elapsed)
	}
}
