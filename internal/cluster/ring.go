package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over replica names. Each member owns
// VirtualNodes points on the ring, so keys spread evenly and removing
// one member redistributes only its own arc to the survivors — the
// other replicas' plan caches and matrix stores stay warm, which is
// the entire reason the coordinator shards by structural fingerprint
// instead of round-robining.
//
// Ring is not safe for concurrent mutation; the Coordinator guards it
// with its own lock.
type Ring struct {
	vnodes  int
	points  []ringPoint // sorted by hash
	members map[string]bool
}

type ringPoint struct {
	hash   uint64
	member string
}

// DefaultVirtualNodes is the per-member point count when the
// configuration leaves it zero. 64 keeps the largest/smallest arc
// ratio within a few percent for single-digit replica counts.
const DefaultVirtualNodes = 64

// NewRing creates an empty ring with the given virtual-node count per
// member (0 means DefaultVirtualNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, members: map[string]bool{}}
}

// Add inserts a member's virtual nodes; adding twice is a no-op.
func (r *Ring) Add(member string) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash: vnodeHash(member, v), member: member})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove drops a member's virtual nodes; removing a non-member is a
// no-op.
func (r *Ring) Remove(member string) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members lists the current members in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size reports the member count.
func (r *Ring) Size() int { return len(r.members) }

// Owner returns the member owning a key: the first virtual node at or
// clockwise after the key's ring position. Empty string on an empty
// ring.
func (r *Ring) Owner(key uint64) string {
	succ := r.Successors(key, 1)
	if len(succ) == 0 {
		return ""
	}
	return succ[0]
}

// Successors returns up to n distinct members in ring order starting
// at the key's owner. The tail of the list is the failover order: when
// the owner is down, the key's requests re-route to Successors[1], and
// so on.
func (r *Ring) Successors(key uint64, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := mix64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}

// vnodeHash places one virtual node: FNV-1a over "member#v".
func vnodeHash(member string, v int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", member, v)
	return h.Sum64()
}

// mix64 is the splitmix64 finalizer: structural fingerprints are
// themselves hash-like but may share low-entropy regions, and the ring
// positions must not correlate with them.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
