package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	apiv1 "repro/spgemm/api/v1"
)

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]any{}
	_ = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	return resp, out
}

// TestClusterHTTPSurface drives the coordinator end to end over HTTP:
// upload, routed multiply, batch, aggregated readiness and metrics —
// the same wire surface a single server exposes.
func TestClusterHTTPSurface(t *testing.T) {
	tc := newTestCluster(t, 3, Config{})
	ts := httptest.NewServer(tc.c.Handler())
	defer ts.Close()

	// Aggregated readiness: all up.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready apiv1.ReadyResponse
	_ = json.NewDecoder(resp.Body).Decode(&ready)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ready.Status != "ready" {
		t.Fatalf("readyz: %d %+v", resp.StatusCode, ready)
	}
	if len(ready.Replicas) != 3 || ready.Replicas["r0"] != "up" {
		t.Fatalf("replicas map: %v", ready.Replicas)
	}

	// Upload, multiply by handle, batch.
	hr, body := postJSON(t, ts.URL+"/v1/matrices", apiv1.MatrixRequest{
		Spec: &apiv1.MatrixSpec{Kind: "er", Rows: 32, Cols: 32, Density: 0.1, Seed: 1},
	})
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("upload: %d %v", hr.StatusCode, body)
	}
	handle, _ := body["handle"].(string)
	if handle == "" {
		t.Fatalf("no handle in %v", body)
	}
	mr, mbody := postJSON(t, ts.URL+"/v1/multiply", apiv1.MultiplyRequest{Engine: "cpu", AHandle: handle})
	if mr.StatusCode != http.StatusOK {
		t.Fatalf("multiply: %d %v", mr.StatusCode, mbody)
	}
	br, bbody := postJSON(t, ts.URL+"/v1/batch", apiv1.BatchRequest{Engine: "cpu", Nodes: []apiv1.BatchNode{
		{ID: "sq", A: apiv1.Operand{Handle: handle}},
	}})
	if br.StatusCode != http.StatusOK || bbody["completed"].(float64) != 1 {
		t.Fatalf("batch: %d %v", br.StatusCode, bbody)
	}

	// Aggregated metrics: cluster_* plus summed replica counters.
	gr, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody := map[string]any{}
	_ = json.NewDecoder(gr.Body).Decode(&metricsBody)
	gr.Body.Close()
	if v, _ := metricsBody["cluster_requests_total"].(float64); v != 3 {
		t.Fatalf("cluster_requests_total = %v, want 3", metricsBody["cluster_requests_total"])
	}
	if v, _ := metricsBody["serve_jobs_accepted"].(float64); v < 2 {
		t.Fatalf("summed serve counters missing: %v", metricsBody["serve_jobs_accepted"])
	}
	if _, ok := metricsBody["cluster_replicas"].(map[string]any); !ok {
		t.Fatalf("cluster_replicas missing: %v", metricsBody["cluster_replicas"])
	}

	// Unknown handle delete: 404 envelope.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/matrices/m-bogus", nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if dr.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus delete: %d", dr.StatusCode)
	}
}

// TestClusterHTTPMethodParity pins 405 + the deterministic Allow
// header + the envelope code on every route — the same contract the
// single server's surface keeps, so clients cannot tell them apart.
func TestClusterHTTPMethodParity(t *testing.T) {
	tc := newTestCluster(t, 1, Config{})
	ts := httptest.NewServer(tc.c.Handler())
	defer ts.Close()

	routes := []struct {
		method, path, allow string
	}{
		{http.MethodPost, "/healthz", http.MethodGet},
		{http.MethodPost, "/readyz", http.MethodGet},
		{http.MethodPost, "/metricsz", http.MethodGet},
		{http.MethodGet, "/v1/multiply", http.MethodPost},
		{http.MethodGet, "/v1/batch", http.MethodPost},
		{http.MethodGet, "/v1/matrices", http.MethodPost},
		{http.MethodGet, "/v1/matrices/bulk", http.MethodPost},
		{http.MethodPut, "/v1/matrices/deadbeef", "DELETE, GET"},
		{http.MethodGet, "/v1/join", http.MethodPost},
		{http.MethodGet, "/v1/admin/drain", http.MethodPost},
	}
	for _, rt := range routes {
		req, _ := http.NewRequest(rt.method, ts.URL+rt.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var env apiv1.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", rt.method, rt.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != rt.allow {
			t.Errorf("%s %s: Allow %q, want %q", rt.method, rt.path, got, rt.allow)
		}
		if env.Code != apiv1.CodeMethodNotAllowed {
			t.Errorf("%s %s: code %q, want %q", rt.method, rt.path, env.Code, apiv1.CodeMethodNotAllowed)
		}
	}
}

// TestClusterHTTPMalformedJSON pins the 400 bad_request envelope on
// every body-taking route.
func TestClusterHTTPMalformedJSON(t *testing.T) {
	tc := newTestCluster(t, 1, Config{})
	ts := httptest.NewServer(tc.c.Handler())
	defer ts.Close()

	for _, path := range []string{
		"/v1/multiply", "/v1/batch", "/v1/matrices", "/v1/matrices/bulk",
		"/v1/join", "/v1/admin/drain",
	} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		var env apiv1.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || env.Code != apiv1.CodeBadRequest {
			t.Errorf("POST %s with garbage: status %d code %q, want 400 %q",
				path, resp.StatusCode, env.Code, apiv1.CodeBadRequest)
		}
	}
}

// TestClusterHTTPRetryAfterOnReplicaDown pins the Retry-After header on
// every request path's replica_down 503 — multiply, batch and store
// must all tell the client when to come back.
func TestClusterHTTPRetryAfterOnReplicaDown(t *testing.T) {
	tc := newTestCluster(t, 1, Config{})
	ts := httptest.NewServer(tc.c.Handler())
	defer ts.Close()
	tc.chaos["r0"].Kill()
	tc.c.Probe()
	tc.c.Probe()

	bodies := map[string]any{
		"/v1/multiply": apiv1.MultiplyRequest{Engine: "cpu", A: apiv1.MatrixSpec{Kind: "er", Rows: 8, Cols: 8, Density: 0.5, Seed: 1}},
		"/v1/batch":    apiv1.BatchRequest{Engine: "cpu", Nodes: []apiv1.BatchNode{{ID: "n", A: apiv1.Operand{Spec: &apiv1.MatrixSpec{Kind: "er", Rows: 8, Cols: 8, Density: 0.5, Seed: 1}}}}},
		"/v1/matrices": apiv1.MatrixRequest{Spec: &apiv1.MatrixSpec{Kind: "er", Rows: 8, Cols: 8, Density: 0.5, Seed: 1}},
	}
	for path, body := range bodies {
		resp, env := postJSON(t, ts.URL+path, body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s all-down: status %d, want 503 (%v)", path, resp.StatusCode, env)
			continue
		}
		if code, _ := env["code"].(string); code != apiv1.CodeReplicaDown {
			t.Errorf("%s all-down: code %q, want %q", path, code, apiv1.CodeReplicaDown)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s all-down: missing Retry-After", path)
		}
	}
}

// TestClusterHTTPDegradedAndDown pins the degraded aggregation and the
// replica_down wire answer when the whole replica set is gone.
func TestClusterHTTPDegradedAndDown(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	ts := httptest.NewServer(tc.c.Handler())
	defer ts.Close()

	tc.chaos["r0"].Kill()
	tc.c.Probe()
	tc.c.Probe()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready apiv1.ReadyResponse
	_ = json.NewDecoder(resp.Body).Decode(&ready)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ready.Status != "degraded" || ready.Replicas["r0"] != "down" {
		t.Fatalf("degraded readyz: %d %+v", resp.StatusCode, ready)
	}

	// Both replicas gone: 503 with the replica_down code and a
	// Retry-After hint, so clients treat it like any other shed.
	tc.chaos["r1"].Kill()
	tc.c.Probe()
	tc.c.Probe()
	mr, mbody := postJSON(t, ts.URL+"/v1/multiply", apiv1.MultiplyRequest{
		Engine: "cpu",
		A:      apiv1.MatrixSpec{Kind: "er", Rows: 16, Cols: 16, Density: 0.2, Seed: 1},
	})
	if mr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-down multiply: %d %v", mr.StatusCode, mbody)
	}
	if code, _ := mbody["code"].(string); code != apiv1.CodeReplicaDown {
		t.Fatalf("all-down code %q, want %q", code, apiv1.CodeReplicaDown)
	}
	if mr.Header.Get("Retry-After") == "" {
		t.Fatal("all-down answer missing Retry-After")
	}
}
