// Package cluster is the distributed serving tier: a coordinator that
// consistent-hashes the content-addressed matrix store across N serve
// replicas and keeps the service answering through replica failures.
//
// Requests route by structural fingerprint — the quantity the whole
// stack below already keys on. A handle-based multiply lands on the
// replica whose matrix store holds the operand and whose plan cache
// holds the pattern's symbolic plan, so sharding preserves exactly the
// locality the single-server fast path earns. A batch routes as one
// unit (its nodes share plans by design), and spec-only requests hash
// their canonical spec so identical generators land together too.
//
// Health is a per-replica state machine (up → suspect → down, plus
// draining) driven by two evidence streams: synchronous /readyz-style
// probes and request-path failures. Failover walks the key's ring
// successor list, re-uploading the coordinator's spill copy of any
// handle the new owner is missing — an admitted request is lost only
// when every replica is gone.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/spgemm"
	apiv1 "repro/spgemm/api/v1"
)

// Replica health states of the coordinator's state machine. The wire
// strings appear in the aggregated /readyz body, so they are contract.
const (
	// HealthUp is a replica answering probes and taking traffic.
	HealthUp = "up"
	// HealthSuspect is a replica that failed recent evidence but not
	// enough to condemn; it still takes traffic (removing it too eagerly
	// would dump its arc's cache locality on the successors).
	HealthSuspect = "suspect"
	// HealthDown is a replica confirmed unreachable; its arc re-routes
	// to ring successors until a probe sees it again.
	HealthDown = "down"
	// HealthDraining is a replica that answered "draining": finishing
	// in-flight work, not admitting. Routed around, but not condemned.
	HealthDraining = "draining"
)

// Config tunes the coordinator. The zero value is usable.
type Config struct {
	// VirtualNodes per replica on the ring (0 = DefaultVirtualNodes).
	VirtualNodes int
	// ShedRetries is how many times a shed request (429-class) is
	// retried against the same replica before the rejection surfaces to
	// the client. Default 2. (The legacy negative sentinel still
	// disables retries, but DisableShedRetries is the explicit,
	// zero-value-safe way to say it.)
	ShedRetries int
	// DisableShedRetries turns shed retries off outright. It wins over
	// any ShedRetries value, so a zero-valued Config stays on the
	// default policy and disabling is an explicit field, not a
	// sentinel.
	DisableShedRetries bool
	// RetryBase and RetryMax bound the exponential backoff between shed
	// retries; a Retry-After hint from the replica overrides the
	// exponential schedule but still respects RetryMax. Defaults
	// 5ms / 250ms.
	RetryBase, RetryMax time.Duration
	// DownAfter is the count of consecutive failed probes (or
	// request-path failures) that moves a replica suspect → down.
	// Default 2; the first failure always moves up → suspect.
	DownAfter int
	// Hedge duplicates spec-only multiplies to the next ring successor
	// and takes the first answer — tail-latency insurance bought with
	// duplicate work, so it is opt-in.
	Hedge bool
	// Heartbeat is the cadence the coordinator hands to joining
	// replicas (0 = 2s): miss enough heartbeats and the probe loop's
	// evidence condemns as usual — the join protocol adds membership,
	// not a second health machine.
	Heartbeat time.Duration
	// NewBackend constructs the Backend for a /v1/join registration.
	// Nil means a RemoteReplica with default timeouts; tests swap in
	// stubs or fault-proxied transports.
	NewBackend func(name, url string) Backend
	// Sleep is the backoff clock, swappable in tests. Defaults to
	// time.Sleep.
	Sleep func(time.Duration)
}

func (c Config) withDefaults() Config {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.ShedRetries == 0 {
		c.ShedRetries = 2
	}
	if c.ShedRetries < 0 || c.DisableShedRetries {
		c.ShedRetries = 0
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 2 * time.Second
	}
	if c.NewBackend == nil {
		c.NewBackend = func(name, url string) Backend {
			return NewRemoteReplica(name, url, RemoteConfig{})
		}
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 5 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 250 * time.Millisecond
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 2
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// replicaState is one replica's position in the health state machine.
type replicaState struct {
	backend    Backend
	health     string
	probeFails int
	// url is the advertised base URL of a joined remote replica (""
	// for in-process backends); the membership table keys rejoin
	// detection on it.
	url string
}

// spillEntry is the coordinator's durable copy of one stored matrix:
// the payload it re-uploads when a handle's owner dies and the ring
// successor needs the operand.
type spillEntry struct {
	m        *spgemm.Matrix
	structFP uint64
	placed   map[string]bool // replica name → handle resident there
}

// Coordinator routes apiv1 requests across the replica set.
type Coordinator struct {
	cfg Config
	col *metrics.Collector

	mu       sync.Mutex
	ring     *Ring
	replicas map[string]*replicaState
	spill    map[string]*spillEntry
	draining bool
}

// New creates a coordinator over the given replicas, all starting up.
func New(cfg Config, backends ...Backend) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:      cfg,
		col:      metrics.New(),
		ring:     NewRing(cfg.VirtualNodes),
		replicas: map[string]*replicaState{},
		spill:    map[string]*spillEntry{},
	}
	for _, b := range backends {
		c.AddReplica(b)
	}
	return c
}

// AddReplica joins a replica to the ring in state up.
func (c *Coordinator) AddReplica(b Backend) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.replicas[b.Name()]; dup {
		return
	}
	c.replicas[b.Name()] = &replicaState{backend: b, health: HealthUp}
	c.ring.Add(b.Name())
}

// Join serves a /v1/join registration or heartbeat. Three cases:
//
//   - Unknown name: a new replica. Build its Backend (Config.NewBackend),
//     add it to the ring in state up, count a join.
//   - Known name, not up (or a changed URL): a rejoin — the process
//     behind the name restarted, so its placements are void (its store
//     restarted empty; any record to the contrary is healed by the
//     unknown_handle → re-upload path anyway). Revive to up, count a
//     join and a rejoin.
//   - Known name, up, same URL: a plain heartbeat; nothing counted.
//
// The response tells the replica the heartbeat cadence and the current
// membership size. Join never removes anyone: leaving is the health
// machine's call, not the protocol's.
func (c *Coordinator) Join(req apiv1.JoinRequest) (*apiv1.JoinResponse, error) {
	if req.Name == "" || req.URL == "" {
		return nil, fmt.Errorf("cluster: join needs name and url")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return nil, &serve.DrainingError{}
	}
	st := c.replicas[req.Name]
	rejoined := false
	switch {
	case st == nil:
		b := c.cfg.NewBackend(req.Name, req.URL)
		c.replicas[req.Name] = &replicaState{backend: b, health: HealthUp, url: req.URL}
		c.ring.Add(req.Name)
		c.col.Add(metrics.CounterClusterJoins, 1)
	case st.health != HealthUp || st.url != req.URL:
		rejoined = true
		if st.url != req.URL {
			st.backend = c.cfg.NewBackend(req.Name, req.URL)
			st.url = req.URL
		}
		st.probeFails = 0
		c.setHealthLocked(req.Name, HealthUp)
		for _, ent := range c.spill {
			delete(ent.placed, req.Name)
		}
		c.col.Add(metrics.CounterClusterJoins, 1)
		c.col.Add(metrics.CounterClusterRejoins, 1)
	default:
		// Healthy heartbeat: refresh the probe evidence, count nothing.
		st.probeFails = 0
	}
	return &apiv1.JoinResponse{
		Name:         req.Name,
		Rejoined:     rejoined,
		Replicas:     len(c.replicas),
		HeartbeatSec: c.cfg.Heartbeat.Seconds(),
	}, nil
}

// Health reports every replica's current state (a copy).
func (c *Coordinator) Health() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.replicas))
	for name, st := range c.replicas {
		out[name] = st.health
	}
	return out
}

// Probe runs one synchronous health round over every replica, in name
// order so a seeded scenario replays identically. A failed probe is
// one unit of evidence: the first moves up → suspect, DownAfter
// consecutive ones condemn to down. A successful probe clears the
// evidence and revives a down replica (counting the up transition).
func (c *Coordinator) Probe() {
	c.mu.Lock()
	names := make([]string, 0, len(c.replicas))
	for name := range c.replicas {
		names = append(names, name)
	}
	sort.Strings(names)
	c.mu.Unlock()

	for _, name := range names {
		c.mu.Lock()
		st := c.replicas[name]
		b := st.backend
		c.mu.Unlock()
		ready, err := b.Ready()

		c.mu.Lock()
		if err != nil {
			st.probeFails++
			c.col.Add(metrics.CounterClusterProbeFailures, 1)
			if st.probeFails >= c.cfg.DownAfter {
				c.setHealthLocked(name, HealthDown)
			} else if st.health == HealthUp || st.health == HealthDraining {
				c.setHealthLocked(name, HealthSuspect)
			}
		} else {
			st.probeFails = 0
			if ready.Status == apiv1.ReadyStatusDraining {
				c.setHealthLocked(name, HealthDraining)
			} else {
				c.setHealthLocked(name, HealthUp)
			}
		}
		c.mu.Unlock()
	}
}

// setHealthLocked applies a transition and counts down/up edges.
func (c *Coordinator) setHealthLocked(name, health string) {
	st := c.replicas[name]
	if st.health == health {
		return
	}
	wasServing := st.health == HealthUp || st.health == HealthSuspect
	nowServing := health == HealthUp || health == HealthSuspect
	if wasServing && health == HealthDown {
		c.col.Add(metrics.CounterClusterReplicaDown, 1)
	}
	if !wasServing && nowServing {
		c.col.Add(metrics.CounterClusterReplicaUp, 1)
	}
	st.health = health
}

// noteFailure feeds request-path evidence into the state machine,
// weighted by what the failure says about the replica. A refused
// connection or a plain ErrReplicaDown is direct proof nothing is
// listening: condemn immediately. A transport timeout or reset may be
// one slow peer or one bad exchange, so it is one unit of suspect
// evidence — DownAfter of them condemn, exactly like failed probes.
// Placements are voided only on the condemning transition: whatever a
// dead replica held is gone when (if) it returns.
func (c *Coordinator) noteFailure(name string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.replicas[name]
	if st == nil {
		return
	}
	var te *TransportError
	if errors.As(err, &te) && te.Kind != TransportRefused {
		st.probeFails++
		if st.probeFails < c.cfg.DownAfter {
			if st.health == HealthUp || st.health == HealthDraining {
				c.setHealthLocked(name, HealthSuspect)
			}
			return
		}
	} else {
		st.probeFails = c.cfg.DownAfter
	}
	c.setHealthLocked(name, HealthDown)
	for _, ent := range c.spill {
		delete(ent.placed, name)
	}
}

// candidates returns the key's failover order: the ring successor list
// filtered to replicas currently taking traffic (up or suspect).
func (c *Coordinator) candidates(key uint64) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, name := range c.ring.Successors(key, c.ring.Size()) {
		if h := c.replicas[name].health; h == HealthUp || h == HealthSuspect {
			out = append(out, name)
		}
	}
	return out
}

// backendOf resolves a replica's Backend under the lock.
func (c *Coordinator) backendOf(name string) Backend {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.replicas[name]; st != nil {
		return st.backend
	}
	return nil
}

// noHealthyReplica is the terminal routing failure: every replica on
// the key's successor walk is down or draining.
func noHealthyReplica() error {
	return fmt.Errorf("cluster: no healthy replica: %w", faults.ErrReplicaDown)
}

// --- routing keys -----------------------------------------------------

// handleStructFP parses the structural fingerprint out of a matrix
// handle ("m-" + 16 hex structFP + 16 hex valuesFP) — the property
// that makes handles routable without a lookup table.
func handleStructFP(handle string) (uint64, bool) {
	if len(handle) < 18 || handle[:2] != "m-" {
		return 0, false
	}
	fp, err := strconv.ParseUint(handle[2:18], 16, 64)
	if err != nil {
		return 0, false
	}
	return fp, true
}

// specKey hashes a generated-operand spec canonically, so identical
// specs land on the same replica and share its plan cache.
func specKey(spec *apiv1.MatrixSpec) uint64 {
	buf, _ := json.Marshal(spec)
	h := fnv.New64a()
	_, _ = h.Write(buf)
	return h.Sum64()
}

// multiplyKey routes a multiply: by A's handle when it has one, by B's
// otherwise, by the canonical spec hash when fully inline.
func multiplyKey(req apiv1.MultiplyRequest) uint64 {
	if fp, ok := handleStructFP(req.AHandle); ok {
		return fp
	}
	if fp, ok := handleStructFP(req.BHandle); ok {
		return fp
	}
	return specKey(&req.A)
}

// multiplyHandles lists the stored operands a replica must hold to run
// the request.
func multiplyHandles(req apiv1.MultiplyRequest) []string {
	var hs []string
	if req.AHandle != "" {
		hs = append(hs, req.AHandle)
	}
	if req.BHandle != "" && req.BHandle != req.AHandle {
		hs = append(hs, req.BHandle)
	}
	return hs
}

// batchKey routes a whole DAG as one unit: the first handle operand
// wins (plan-group locality), else the first spec.
func batchKey(req *apiv1.BatchRequest) uint64 {
	for _, n := range req.Nodes {
		ops := []*apiv1.Operand{&n.A}
		if n.B != nil {
			ops = append(ops, n.B)
		}
		for _, op := range ops {
			if fp, ok := handleStructFP(op.Handle); ok {
				return fp
			}
		}
	}
	for _, n := range req.Nodes {
		if n.A.Spec != nil {
			return specKey(n.A.Spec)
		}
		if n.B != nil && n.B.Spec != nil {
			return specKey(n.B.Spec)
		}
	}
	return 0
}

// batchHandles lists every distinct handle operand of the DAG.
func batchHandles(req *apiv1.BatchRequest) []string {
	seen := map[string]bool{}
	var hs []string
	for _, n := range req.Nodes {
		ops := []*apiv1.Operand{&n.A}
		if n.B != nil {
			ops = append(ops, n.B)
		}
		for _, op := range ops {
			if op.Handle != "" && !seen[op.Handle] {
				seen[op.Handle] = true
				hs = append(hs, op.Handle)
			}
		}
	}
	return hs
}

// --- placement and spill ----------------------------------------------

// recordSpill remembers a stored matrix and where it lives.
func (c *Coordinator) recordSpill(handle string, m *spgemm.Matrix, replica string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent := c.spill[handle]
	if ent == nil {
		ent = &spillEntry{m: m, structFP: spgemm.Fingerprint(m), placed: map[string]bool{}}
		c.spill[handle] = ent
	}
	ent.placed[replica] = true
}

// ensurePlaced re-uploads any of the handles the named replica is
// missing, from the coordinator's spill copies — batched into one
// StoreMany call, so a successor takeover during failover is one
// pipelined transfer rather than N serial round trips. A handle with
// no spill copy (stored before the coordinator, or already deleted) is
// the replica's own problem — the request will surface unknown_handle.
func (c *Coordinator) ensurePlaced(name string, handles []string) error {
	c.mu.Lock()
	var missing []*spgemm.Matrix
	var missingHandles []string
	var bytes int64
	for _, h := range handles {
		if ent := c.spill[h]; ent != nil && !ent.placed[name] {
			missing = append(missing, ent.m)
			missingHandles = append(missingHandles, h)
			bytes += ent.m.Bytes()
		}
	}
	st := c.replicas[name]
	c.mu.Unlock()
	if len(missing) == 0 || st == nil {
		return nil
	}
	if _, err := st.backend.StoreMany(missing); err != nil {
		return err
	}
	c.col.Add(metrics.CounterClusterRebalances, int64(len(missing)))
	c.col.Add(metrics.CounterClusterSpillReuploadBatch, 1)
	c.col.Add(metrics.CounterClusterSpillReuploadBytes, bytes)
	c.mu.Lock()
	for _, h := range missingHandles {
		if ent := c.spill[h]; ent != nil {
			ent.placed[name] = true
		}
	}
	c.mu.Unlock()
	return nil
}

// --- request paths ----------------------------------------------------

// StoreFromRequest serves the cluster /v1/matrices endpoint. Both
// variants materialize the matrix at the coordinator first — that copy
// is the spill the failover path re-uploads from — then place it on
// the key's owner. A re-value is computed from the spill copy (same
// pattern, fresh seeded values), so it works even while the handle's
// owner is down.
func (c *Coordinator) StoreFromRequest(req apiv1.MatrixRequest) (*apiv1.MatrixResponse, error) {
	var m *spgemm.Matrix
	switch {
	case req.Data != nil:
		var err error
		if m, err = req.Data.Matrix(); err != nil {
			return nil, err
		}
	case req.Handle != "":
		c.mu.Lock()
		ent := c.spill[req.Handle]
		c.mu.Unlock()
		if ent == nil {
			return nil, &serve.UnknownHandleError{Handle: req.Handle}
		}
		m = spgemm.Revalue(ent.m, req.ValuesSeed)
	case req.Spec != nil:
		var err error
		if m, err = req.Spec.Build(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("cluster: matrix request needs spec or handle")
	}
	handle, err := c.StoreMatrix(m)
	if err != nil {
		return nil, err
	}
	return &apiv1.MatrixResponse{
		Handle: handle, Rows: m.Rows, Cols: m.Cols, Nnz: m.Nnz(), Bytes: m.Bytes(),
		StructureFP: fmt.Sprintf("%016x", spgemm.Fingerprint(m)),
	}, nil
}

// StoreBulk places each matrix of the batch through the normal
// store path (ring owner + spill), failing on the first bad entry.
func (c *Coordinator) StoreBulk(req apiv1.MatrixBatchRequest) (*apiv1.MatrixBatchResponse, error) {
	if len(req.Matrices) == 0 {
		return nil, fmt.Errorf("cluster: bulk store needs at least one matrix")
	}
	out := &apiv1.MatrixBatchResponse{Matrices: make([]apiv1.MatrixResponse, 0, len(req.Matrices))}
	for i := range req.Matrices {
		resp, err := c.StoreFromRequest(req.Matrices[i])
		if err != nil {
			return nil, fmt.Errorf("cluster: bulk store entry %d: %w", i, err)
		}
		out.Matrices = append(out.Matrices, *resp)
	}
	return out, nil
}

// StoreMatrix places a matrix on its ring owner and keeps the spill
// copy. Failing owners are condemned and the walk continues to their
// successors.
func (c *Coordinator) StoreMatrix(m *spgemm.Matrix) (string, error) {
	c.col.Add(metrics.CounterClusterRequests, 1)
	key := spgemm.Fingerprint(m)
	cands := c.candidates(key)
	if len(cands) == 0 {
		return "", noHealthyReplica()
	}
	c.noteDegradedIfFunneling(len(cands))
	var lastErr error
	for i, name := range cands {
		b := c.backendOf(name)
		if b == nil {
			continue
		}
		handle, err := b.Store(m)
		if err == nil {
			if i > 0 {
				c.col.Add(metrics.CounterClusterFailovers, 1)
			}
			c.col.Add(metrics.CounterClusterRoutes, 1)
			c.recordSpill(handle, m, name)
			return handle, nil
		}
		lastErr = err
		if errors.Is(err, faults.ErrReplicaDown) {
			c.noteFailure(name, err)
			continue
		}
		return "", err
	}
	return "", lastErr
}

// DeleteMatrix drops a handle everywhere it might live, plus the
// spill copy. The delete broadcasts to every replica rather than
// trusting the placement records: a replica that was condemned and
// revived may still hold copies the coordinator wrote off. True when
// any replica (or the spill) knew the handle.
func (c *Coordinator) DeleteMatrix(handle string) bool {
	c.col.Add(metrics.CounterClusterRequests, 1)
	c.mu.Lock()
	ent := c.spill[handle]
	delete(c.spill, handle)
	targets := make([]Backend, 0, len(c.replicas))
	for _, st := range c.replicas {
		targets = append(targets, st.backend)
	}
	c.mu.Unlock()
	found := ent != nil
	for _, b := range targets {
		if b.Delete(handle) {
			found = true
		}
	}
	return found
}

// Multiply routes one multiply: owner first, ring successors on
// failure, shed retries with backoff against whichever replica shed.
func (c *Coordinator) Multiply(req apiv1.MultiplyRequest) (*apiv1.MultiplyResponse, error) {
	c.col.Add(metrics.CounterClusterRequests, 1)
	key := multiplyKey(req)
	handles := multiplyHandles(req)
	cands := c.candidates(key)
	if len(cands) == 0 {
		return nil, noHealthyReplica()
	}
	c.noteDegradedIfFunneling(len(cands))

	if c.cfg.Hedge && len(handles) == 0 && len(cands) > 1 {
		return c.hedgedMultiply(req, cands)
	}

	var lastErr error
	for i, name := range cands {
		resp, err := c.multiplyOn(name, req, handles)
		if err == nil {
			if i > 0 {
				c.col.Add(metrics.CounterClusterFailovers, 1)
			}
			c.col.Add(metrics.CounterClusterRoutes, 1)
			return resp, nil
		}
		lastErr = err
		switch {
		case errors.Is(err, faults.ErrReplicaDown):
			c.noteFailure(name, err)
			continue
		case isDraining(err):
			c.setDraining(name)
			continue
		default:
			// Engine failures, deadlines, bad requests and exhausted
			// sheds are the replica's honest answer, not its absence.
			return nil, err
		}
	}
	return nil, lastErr
}

// multiplyOn runs the request on one replica: placement first, then
// the shed-retry loop. An unknown_handle answer means the replica lost
// the operand since placement was recorded (restart, eviction): the
// spill is re-uploaded and the request retried once.
func (c *Coordinator) multiplyOn(name string, req apiv1.MultiplyRequest, handles []string) (*apiv1.MultiplyResponse, error) {
	if err := c.ensurePlaced(name, handles); err != nil {
		return nil, err
	}
	b := c.backendOf(name)
	if b == nil {
		return nil, noHealthyReplica()
	}
	resp, err := c.withShedRetry(func() (*apiv1.MultiplyResponse, error) { return b.Multiply(req) })
	var uh *serve.UnknownHandleError
	if errors.As(err, &uh) && c.reupload(name, handles) {
		resp, err = c.withShedRetry(func() (*apiv1.MultiplyResponse, error) { return b.Multiply(req) })
	}
	if err == nil && req.StoreC && resp.CHandle != "" {
		// The stored product is cluster state now: spill it so failover
		// can re-home it like any client upload.
		if m, ok := b.Matrix(resp.CHandle); ok {
			c.recordSpill(resp.CHandle, m, name)
		}
	}
	return resp, err
}

// reupload voids the placement record for the handles on one replica
// and pushes the spill copies again; false when nothing was pushed.
func (c *Coordinator) reupload(name string, handles []string) bool {
	c.mu.Lock()
	any := false
	for _, h := range handles {
		if ent := c.spill[h]; ent != nil && ent.placed[name] {
			delete(ent.placed, name)
			any = true
		}
	}
	c.mu.Unlock()
	if !any {
		return false
	}
	return c.ensurePlaced(name, handles) == nil
}

// withShedRetry runs one replica call with the shed-retry policy:
// capped exponential backoff, Retry-After hint honored, draining
// excluded (a draining replica will not change its mind).
func (c *Coordinator) withShedRetry(call func() (*apiv1.MultiplyResponse, error)) (*apiv1.MultiplyResponse, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := call()
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if isDraining(err) || !faults.Shedding(err) || attempt >= c.cfg.ShedRetries {
			return nil, lastErr
		}
		delay := c.cfg.RetryBase << uint(attempt)
		if hint, ok := serve.RetryAfter(err); ok {
			delay = hint
		}
		if delay > c.cfg.RetryMax {
			delay = c.cfg.RetryMax
		}
		c.col.Add(metrics.CounterClusterRetries, 1)
		c.cfg.Sleep(delay)
	}
}

// hedgedMultiply races the owner against its first successor and takes
// the first success; the duplicate work is the price of the tail
// latency bound. Only spec-only requests hedge (no placement needed,
// and the duplicate cannot mutate stored state).
func (c *Coordinator) hedgedMultiply(req apiv1.MultiplyRequest, cands []string) (*apiv1.MultiplyResponse, error) {
	c.col.Add(metrics.CounterClusterHedges, 1)
	type answer struct {
		resp *apiv1.MultiplyResponse
		err  error
		from int
	}
	ch := make(chan answer, 2)
	for i := 0; i < 2; i++ {
		name := cands[i]
		i := i
		b := c.backendOf(name)
		go func() {
			if b == nil {
				ch <- answer{err: noHealthyReplica(), from: i}
				return
			}
			resp, err := b.Multiply(req)
			if err != nil && errors.Is(err, faults.ErrReplicaDown) {
				c.noteFailure(name, err)
			}
			ch <- answer{resp: resp, err: err, from: i}
		}()
	}
	first := <-ch
	if first.err == nil {
		if first.from == 1 {
			c.col.Add(metrics.CounterClusterHedgesWon, 1)
		}
		c.col.Add(metrics.CounterClusterRoutes, 1)
		return first.resp, nil
	}
	second := <-ch
	if second.err == nil {
		if second.from == 1 {
			c.col.Add(metrics.CounterClusterHedgesWon, 1)
		}
		c.col.Add(metrics.CounterClusterRoutes, 1)
		return second.resp, nil
	}
	return nil, first.err
}

// Batch routes one DAG as a unit, with the same failover walk as
// Multiply. Keeping the whole batch on one replica is deliberate: its
// nodes share symbolic plans, and splitting them would turn the plan
// group's one cold phase into many.
func (c *Coordinator) Batch(req *apiv1.BatchRequest) (*apiv1.BatchResponse, error) {
	c.col.Add(metrics.CounterClusterRequests, 1)
	key := batchKey(req)
	handles := batchHandles(req)
	cands := c.candidates(key)
	if len(cands) == 0 {
		return nil, noHealthyReplica()
	}
	c.noteDegradedIfFunneling(len(cands))

	var lastErr error
	for i, name := range cands {
		resp, err := c.batchOn(name, req, handles)
		if err == nil {
			if i > 0 {
				c.col.Add(metrics.CounterClusterFailovers, 1)
			}
			c.col.Add(metrics.CounterClusterRoutes, 1)
			return resp, nil
		}
		lastErr = err
		switch {
		case errors.Is(err, faults.ErrReplicaDown):
			c.noteFailure(name, err)
			continue
		case isDraining(err):
			c.setDraining(name)
			continue
		default:
			return nil, err
		}
	}
	return nil, lastErr
}

// batchOn runs the batch on one replica with placement and the
// shed-retry policy.
func (c *Coordinator) batchOn(name string, req *apiv1.BatchRequest, handles []string) (*apiv1.BatchResponse, error) {
	if err := c.ensurePlaced(name, handles); err != nil {
		return nil, err
	}
	b := c.backendOf(name)
	if b == nil {
		return nil, noHealthyReplica()
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := b.Batch(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if isDraining(err) || !faults.Shedding(err) || attempt >= c.cfg.ShedRetries {
			return nil, lastErr
		}
		delay := c.cfg.RetryBase << uint(attempt)
		if hint, ok := serve.RetryAfter(err); ok {
			delay = hint
		}
		if delay > c.cfg.RetryMax {
			delay = c.cfg.RetryMax
		}
		c.col.Add(metrics.CounterClusterRetries, 1)
		c.cfg.Sleep(delay)
	}
}

// isDraining classifies the replica's draining rejection. Checked
// before Shedding everywhere: DrainingError wraps ErrOverloaded, and
// retrying a draining replica would wait on a server that already said
// it will never admit again.
func isDraining(err error) bool {
	var de *serve.DrainingError
	return errors.As(err, &de)
}

// setDraining moves a replica to draining off request-path evidence.
func (c *Coordinator) setDraining(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.replicas[name]; ok {
		c.setHealthLocked(name, HealthDraining)
	}
}

// noteDegradedIfFunneling counts requests served in degraded mode: a
// multi-replica cluster funneling through a single survivor.
func (c *Coordinator) noteDegradedIfFunneling(healthy int) {
	c.mu.Lock()
	size := c.ring.Size()
	c.mu.Unlock()
	if size > 1 && healthy == 1 {
		c.col.Add(metrics.CounterClusterDegraded, 1)
	}
}

// Ready aggregates the cluster readiness: "ready" with every replica
// up, "degraded" while any is not (including the single-survivor
// funnel), "draining" once the coordinator or every replica drains.
func (c *Coordinator) Ready() apiv1.ReadyResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	replicas := make(map[string]string, len(c.replicas))
	up, serving := 0, 0
	for name, st := range c.replicas {
		replicas[name] = st.health
		if st.health == HealthUp {
			up++
		}
		if st.health == HealthUp || st.health == HealthSuspect {
			serving++
		}
	}
	status := apiv1.ReadyStatusReady
	if up < len(c.replicas) {
		status = apiv1.ReadyStatusDegraded
	}
	if c.draining || (len(c.replicas) > 0 && serving == 0) {
		status = apiv1.ReadyStatusDraining
	}
	return apiv1.ReadyResponse{
		Status:   status,
		Draining: c.draining,
		Replicas: replicas,
	}
}

// Snapshot returns the coordinator's own cluster_* counters.
func (c *Coordinator) Snapshot() map[string]int64 { return c.col.Snapshot() }

// Counters merges the coordinator's cluster_* counters with the sum of
// every replica's serving counters — the /metricsz body of the cluster
// endpoint, so dashboards pointed at a single server keep working when
// it becomes a cluster.
func (c *Coordinator) Counters() map[string]int64 {
	c.mu.Lock()
	backends := make([]Backend, 0, len(c.replicas))
	for _, st := range c.replicas {
		backends = append(backends, st.backend)
	}
	c.mu.Unlock()
	out := c.col.Snapshot()
	for _, b := range backends {
		for k, v := range b.Counters() {
			out[k] += v
		}
	}
	return out
}

// Drain drains every replica (in name order) and marks the coordinator
// draining; new requests are rejected by the replicas' own draining
// answers. Returns the merged final counters.
func (c *Coordinator) Drain(timeout time.Duration) map[string]int64 {
	c.mu.Lock()
	c.draining = true
	names := make([]string, 0, len(c.replicas))
	for name := range c.replicas {
		names = append(names, name)
	}
	sort.Strings(names)
	backends := make([]Backend, 0, len(names))
	for _, name := range names {
		backends = append(backends, c.replicas[name].backend)
		c.setHealthLocked(name, HealthDraining)
	}
	c.mu.Unlock()
	for _, b := range backends {
		b.Drain(timeout)
	}
	return c.Counters()
}
