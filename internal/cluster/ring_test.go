package cluster

import (
	"testing"
)

func TestRingDeterministicOwnership(t *testing.T) {
	build := func() *Ring {
		r := NewRing(64)
		r.Add("r0")
		r.Add("r1")
		r.Add("r2")
		return r
	}
	a, b := build(), build()
	for key := uint64(0); key < 1000; key++ {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %d: owners differ across identical rings", key)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(64)
	members := []string{"r0", "r1", "r2"}
	for _, m := range members {
		r.Add(m)
	}
	counts := map[string]int{}
	const keys = 10000
	for key := uint64(0); key < keys; key++ {
		counts[r.Owner(key*0x9e3779b97f4a7c15 + 1)]++
	}
	for _, m := range members {
		share := float64(counts[m]) / keys
		if share < 0.15 || share > 0.55 {
			t.Fatalf("member %s owns %.1f%% of keys: %v", m, 100*share, counts)
		}
	}
}

// TestRingMinimalDisruption is the consistent-hashing property the
// cluster exists for: removing one member moves only that member's
// keys, so the survivors' matrix stores and plan caches stay warm.
func TestRingMinimalDisruption(t *testing.T) {
	r := NewRing(64)
	for _, m := range []string{"r0", "r1", "r2"} {
		r.Add(m)
	}
	before := map[uint64]string{}
	for key := uint64(0); key < 2000; key++ {
		before[key] = r.Owner(key)
	}
	r.Remove("r1")
	for key, owner := range before {
		after := r.Owner(key)
		if owner != "r1" && after != owner {
			t.Fatalf("key %d moved %s -> %s though %s stayed", key, owner, after, owner)
		}
		if owner == "r1" && after == "r1" {
			t.Fatalf("key %d still owned by removed member", key)
		}
	}
}

func TestRingSuccessors(t *testing.T) {
	r := NewRing(64)
	for _, m := range []string{"r0", "r1", "r2"} {
		r.Add(m)
	}
	for key := uint64(0); key < 100; key++ {
		succ := r.Successors(key, 3)
		if len(succ) != 3 {
			t.Fatalf("key %d: %d successors, want 3", key, len(succ))
		}
		if succ[0] != r.Owner(key) {
			t.Fatalf("key %d: successors[0] = %s, owner = %s", key, succ[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, m := range succ {
			if seen[m] {
				t.Fatalf("key %d: duplicate successor %s", key, m)
			}
			seen[m] = true
		}
	}
	if r.Owner(7) == "" && r.Size() > 0 {
		t.Fatal("owner empty on populated ring")
	}
	empty := NewRing(8)
	if empty.Owner(7) != "" || empty.Successors(7, 2) != nil {
		t.Fatal("empty ring returned members")
	}
	// Asking for more successors than members truncates.
	if got := r.Successors(7, 10); len(got) != 3 {
		t.Fatalf("successors beyond membership: %v", got)
	}
}
