package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/spgemm"
	apiv1 "repro/spgemm/api/v1"
)

// --- harness ----------------------------------------------------------

// testCluster is an in-process cluster: N real serve.Servers, each
// behind a seeded ChaosBackend, under one Coordinator.
type testCluster struct {
	c       *Coordinator
	servers []*serve.Server
	chaos   map[string]*ChaosBackend
}

func newTestCluster(t *testing.T, n int, cfg Config) *testCluster {
	t.Helper()
	tc := &testCluster{chaos: map[string]*ChaosBackend{}}
	var backends []Backend
	for i := 0; i < n; i++ {
		s := serve.New(serve.Config{MaxConcurrent: 2})
		name := fmt.Sprintf("r%d", i)
		cb := NewChaosBackend(NewLocalReplica(name, s), ChaosConfig{Seed: int64(i + 1)})
		tc.servers = append(tc.servers, s)
		tc.chaos[name] = cb
		backends = append(backends, cb)
	}
	if cfg.Sleep == nil {
		cfg.Sleep = func(time.Duration) {} // no real backoff waits in tests
	}
	tc.c = New(cfg, backends...)
	t.Cleanup(func() {
		for _, cb := range tc.chaos {
			cb.Revive() // drain must reach the servers
		}
		tc.c.Drain(0)
	})
	return tc
}

// ownerOf reports the healthy route order for a matrix's fingerprint.
func (tc *testCluster) ownerOf(m *spgemm.Matrix) []string {
	return tc.c.candidates(spgemm.Fingerprint(m))
}

func testMatrix(seed int64) *spgemm.Matrix { return spgemm.ER(40, 40, 0.1, seed) }

// --- routing ----------------------------------------------------------

func TestClusterRoutesByFingerprint(t *testing.T) {
	tc := newTestCluster(t, 3, Config{})
	m := testMatrix(1)
	want, err := spgemm.Multiply(m, m)
	if err != nil {
		t.Fatal(err)
	}
	owner := tc.ownerOf(m)[0]

	handle, err := tc.c.StoreMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	if fp, ok := handleStructFP(handle); !ok || fp != spgemm.Fingerprint(m) {
		t.Fatalf("handle %q does not carry the structural fingerprint", handle)
	}

	// Repeated handle multiplies land on the owner and hit its plan
	// cache after the cold run.
	for i := 0; i < 3; i++ {
		resp, err := tc.c.Multiply(apiv1.MultiplyRequest{Engine: "cpu", AHandle: handle})
		if err != nil {
			t.Fatalf("multiply %d: %v", i, err)
		}
		if resp.NnzC != want.Nnz() {
			t.Fatalf("multiply %d: nnz %d, want %d", i, resp.NnzC, want.Nnz())
		}
	}
	for name, cb := range tc.chaos {
		accepted := cb.Counters()[metrics.CounterServeAccepted]
		if name == owner && accepted != 3 {
			t.Fatalf("owner %s accepted %d jobs, want 3", name, accepted)
		}
		if name != owner && accepted != 0 {
			t.Fatalf("non-owner %s accepted %d jobs, want 0", name, accepted)
		}
	}
	if hits := tc.chaos[owner].Counters()[metrics.CounterPlanCacheHits]; hits != 2 {
		t.Fatalf("owner plan cache hits = %d, want 2 (one cold, two warm)", hits)
	}
	snap := tc.c.Snapshot()
	if snap[metrics.CounterClusterRoutes] != 4 || snap[metrics.CounterClusterFailovers] != 0 {
		t.Fatalf("routing counters: %v", snap)
	}
}

// --- failover ---------------------------------------------------------

func TestClusterFailoverOnKilledReplica(t *testing.T) {
	tc := newTestCluster(t, 3, Config{})
	m := testMatrix(2)
	want, err := spgemm.Multiply(m, m)
	if err != nil {
		t.Fatal(err)
	}
	handle, err := tc.c.StoreMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.c.Multiply(apiv1.MultiplyRequest{Engine: "cpu", AHandle: handle}); err != nil {
		t.Fatal(err)
	}
	route := tc.ownerOf(m)
	owner, successor := route[0], route[1]

	// Kill the owner mid-stream: the very next request re-routes to the
	// ring successor, which gets the operand re-uploaded from the
	// coordinator's spill copy. No admitted request is lost.
	tc.chaos[owner].Kill()
	resp, err := tc.c.Multiply(apiv1.MultiplyRequest{Engine: "cpu", AHandle: handle})
	if err != nil {
		t.Fatalf("multiply after kill: %v", err)
	}
	if resp.NnzC != want.Nnz() {
		t.Fatalf("failover product nnz %d, want %d", resp.NnzC, want.Nnz())
	}
	if got := tc.c.Health()[owner]; got != HealthDown {
		t.Fatalf("killed owner health %q, want down", got)
	}
	if accepted := tc.chaos[successor].Counters()[metrics.CounterServeAccepted]; accepted != 1 {
		t.Fatalf("successor accepted %d jobs, want 1", accepted)
	}
	snap := tc.c.Snapshot()
	if snap[metrics.CounterClusterFailovers] == 0 {
		t.Fatalf("no failover counted: %v", snap)
	}
	if snap[metrics.CounterClusterRebalances] == 0 {
		t.Fatalf("no rebalance move counted: %v", snap)
	}
	if snap[metrics.CounterClusterReplicaDown] != 1 {
		t.Fatalf("down transitions = %d, want 1", snap[metrics.CounterClusterReplicaDown])
	}

	// Revive + probe: the owner rejoins. Its store is empty (the kill
	// wiped it), so the next owner-routed request re-uploads again.
	tc.chaos[owner].Revive()
	tc.c.Probe()
	if got := tc.c.Health()[owner]; got != HealthUp {
		t.Fatalf("revived owner health %q, want up", got)
	}
	if _, err := tc.c.Multiply(apiv1.MultiplyRequest{Engine: "cpu", AHandle: handle}); err != nil {
		t.Fatalf("multiply after revive: %v", err)
	}
	snap = tc.c.Snapshot()
	if snap[metrics.CounterClusterReplicaUp] != 1 {
		t.Fatalf("up transitions = %d, want 1", snap[metrics.CounterClusterReplicaUp])
	}
}

func TestClusterBatchFailover(t *testing.T) {
	tc := newTestCluster(t, 3, Config{})
	m := testMatrix(3)
	handle, err := tc.c.StoreMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	req := &apiv1.BatchRequest{Engine: "cpu", Nodes: []apiv1.BatchNode{
		{ID: "sq", A: apiv1.Operand{Handle: handle}},
		{ID: "cube", A: apiv1.Operand{Node: "sq"}, B: &apiv1.Operand{Handle: handle}},
	}}
	owner := tc.c.candidates(batchKey(req))[0]
	tc.chaos[owner].Kill()

	resp, err := tc.c.Batch(req)
	if err != nil {
		t.Fatalf("batch after kill: %v", err)
	}
	if resp.Completed != 2 || resp.Failed != 0 || resp.Skipped != 0 {
		t.Fatalf("batch results: %+v", resp)
	}
	snap := tc.c.Snapshot()
	if snap[metrics.CounterClusterFailovers] == 0 || snap[metrics.CounterClusterRebalances] == 0 {
		t.Fatalf("failover counters: %v", snap)
	}
}

// TestClusterRevalueWhileOwnerDown: the coordinator's spill copy makes
// a re-value independent of the handle's owner being alive.
func TestClusterRevalueWhileOwnerDown(t *testing.T) {
	tc := newTestCluster(t, 3, Config{})
	m := testMatrix(4)
	handle, err := tc.c.StoreMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	tc.chaos[tc.ownerOf(m)[0]].Kill()

	resp, err := tc.c.StoreFromRequest(apiv1.MatrixRequest{Handle: handle, ValuesSeed: 99})
	if err != nil {
		t.Fatalf("revalue with dead owner: %v", err)
	}
	if resp.StructureFP != fmt.Sprintf("%016x", spgemm.Fingerprint(m)) {
		t.Fatalf("revalue changed the structural fingerprint: %s", resp.StructureFP)
	}
	if resp.Handle == handle {
		t.Fatal("revalue returned the original handle")
	}
	if _, err := tc.c.Multiply(apiv1.MultiplyRequest{Engine: "cpu", AHandle: resp.Handle}); err != nil {
		t.Fatalf("multiply of revalued handle: %v", err)
	}
}

// --- degraded mode ----------------------------------------------------

func TestClusterDegradedSingleSurvivor(t *testing.T) {
	tc := newTestCluster(t, 3, Config{})
	tc.chaos["r0"].Kill()
	tc.chaos["r1"].Kill()
	tc.c.Probe()
	tc.c.Probe() // two failed rounds condemn suspect -> down
	health := tc.c.Health()
	if health["r0"] != HealthDown || health["r1"] != HealthDown || health["r2"] != HealthUp {
		t.Fatalf("health after kills: %v", health)
	}
	if got := tc.c.Ready(); got.Status != apiv1.ReadyStatusDegraded {
		t.Fatalf("cluster status %q, want degraded", got.Status)
	}

	// Every request funnels through the survivor and none fails: the
	// degraded single-replica mode is the survivor's own admission and
	// breaker machinery, fronted by the coordinator.
	const n = 5
	for i := 0; i < n; i++ {
		resp, err := tc.c.Multiply(apiv1.MultiplyRequest{
			Engine: "cpu",
			A:      apiv1.MatrixSpec{Kind: "er", Rows: 32, Cols: 32, Density: 0.1, Seed: int64(i)},
		})
		if err != nil {
			t.Fatalf("degraded multiply %d: %v", i, err)
		}
		if resp.Engine != "cpu" {
			t.Fatalf("degraded multiply %d ran on %q", i, resp.Engine)
		}
	}
	snap := tc.c.Snapshot()
	if snap[metrics.CounterClusterDegraded] != n {
		t.Fatalf("degraded requests = %d, want %d", snap[metrics.CounterClusterDegraded], n)
	}
	if accepted := tc.chaos["r2"].Counters()[metrics.CounterServeAccepted]; accepted != n {
		t.Fatalf("survivor accepted %d, want %d", accepted, n)
	}
}

func TestClusterNoHealthyReplica(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	tc.chaos["r0"].Kill()
	tc.chaos["r1"].Kill()
	tc.c.Probe()
	tc.c.Probe()
	_, err := tc.c.Multiply(apiv1.MultiplyRequest{
		Engine: "cpu",
		A:      apiv1.MatrixSpec{Kind: "er", Rows: 16, Cols: 16, Density: 0.2, Seed: 1},
	})
	if !errors.Is(err, faults.ErrReplicaDown) {
		t.Fatalf("err = %v, want ErrReplicaDown", err)
	}
	if code := serve.ErrorCode(err); code != apiv1.CodeReplicaDown {
		t.Fatalf("wire code %q, want %q", code, apiv1.CodeReplicaDown)
	}
}

// --- health state machine ---------------------------------------------

func TestClusterProbeStateMachine(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	tc.chaos["r0"].Kill()

	tc.c.Probe()
	if got := tc.c.Health()["r0"]; got != HealthSuspect {
		t.Fatalf("after one failed probe: %q, want suspect", got)
	}
	// Suspect still takes traffic: it is on the candidate list.
	if got := tc.c.Ready(); got.Status != apiv1.ReadyStatusDegraded {
		t.Fatalf("one-suspect cluster status %q, want degraded", got.Status)
	}

	tc.c.Probe()
	if got := tc.c.Health()["r0"]; got != HealthDown {
		t.Fatalf("after two failed probes: %q, want down", got)
	}

	tc.chaos["r0"].Revive()
	tc.c.Probe()
	if got := tc.c.Health()["r0"]; got != HealthUp {
		t.Fatalf("after revival probe: %q, want up", got)
	}
	if got := tc.c.Ready(); got.Status != apiv1.ReadyStatusReady {
		t.Fatalf("recovered cluster status %q, want ready", got.Status)
	}
	snap := tc.c.Snapshot()
	if snap[metrics.CounterClusterProbeFailures] != 2 ||
		snap[metrics.CounterClusterReplicaDown] != 1 ||
		snap[metrics.CounterClusterReplicaUp] != 1 {
		t.Fatalf("probe counters: %v", snap)
	}
}

func TestClusterProbeSeesDraining(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	// Drain one server out-of-band (an operator action the coordinator
	// discovers by probing, exactly like a rolling restart).
	var drained string
	for i, s := range tc.servers {
		name := fmt.Sprintf("r%d", i)
		if name == "r0" {
			s.Drain(0)
			drained = name
		}
	}
	tc.c.Probe()
	if got := tc.c.Health()[drained]; got != HealthDraining {
		t.Fatalf("drained replica health %q, want draining", got)
	}
	// Requests route around it without errors.
	for i := 0; i < 4; i++ {
		if _, err := tc.c.Multiply(apiv1.MultiplyRequest{
			Engine: "cpu",
			A:      apiv1.MatrixSpec{Kind: "er", Rows: 24, Cols: 24, Density: 0.1, Seed: int64(i)},
		}); err != nil {
			t.Fatalf("multiply %d with draining replica: %v", i, err)
		}
	}
	if accepted := tc.chaos[drained].Counters()[metrics.CounterServeAccepted]; accepted != 0 {
		t.Fatalf("draining replica accepted %d jobs", accepted)
	}
}

// --- shed retry -------------------------------------------------------

// stubBackend scripts one replica's answers for retry/hedge tests.
type stubBackend struct {
	name       string
	multiplyFn func(apiv1.MultiplyRequest) (*apiv1.MultiplyResponse, error)
}

func (s *stubBackend) Name() string { return s.name }
func (s *stubBackend) Multiply(req apiv1.MultiplyRequest) (*apiv1.MultiplyResponse, error) {
	return s.multiplyFn(req)
}
func (s *stubBackend) Batch(*apiv1.BatchRequest) (*apiv1.BatchResponse, error) {
	return nil, fmt.Errorf("stub: no batch")
}
func (s *stubBackend) Store(*spgemm.Matrix) (string, error)    { return "", fmt.Errorf("stub: no store") }
func (s *stubBackend) StoreMany([]*spgemm.Matrix) ([]string, error) {
	return nil, fmt.Errorf("stub: no store")
}
func (s *stubBackend) Matrix(string) (*spgemm.Matrix, bool)    { return nil, false }
func (s *stubBackend) Delete(string) bool                      { return false }
func (s *stubBackend) Ready() (apiv1.ReadyResponse, error)     { return apiv1.ReadyResponse{Status: apiv1.ReadyStatusReady}, nil }
func (s *stubBackend) Counters() map[string]int64              { return nil }
func (s *stubBackend) Drain(time.Duration) map[string]int64    { return nil }

func TestClusterShedRetryHonorsRetryAfter(t *testing.T) {
	var calls int
	stub := &stubBackend{name: "r0", multiplyFn: func(apiv1.MultiplyRequest) (*apiv1.MultiplyResponse, error) {
		calls++
		if calls <= 2 {
			return nil, &serve.OverloadError{RetryAfter: 40 * time.Millisecond}
		}
		return &apiv1.MultiplyResponse{Engine: "cpu"}, nil
	}}
	var slept []time.Duration
	c := New(Config{
		ShedRetries: 3,
		RetryBase:   5 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}, stub)

	resp, err := c.Multiply(apiv1.MultiplyRequest{Engine: "cpu", A: apiv1.MatrixSpec{Kind: "er", Rows: 8, Cols: 8, Density: 0.5, Seed: 1}})
	if err != nil || resp == nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (two sheds, one success)", calls)
	}
	// The Retry-After hint overrides the exponential schedule.
	if len(slept) != 2 || slept[0] != 40*time.Millisecond || slept[1] != 40*time.Millisecond {
		t.Fatalf("backoff schedule %v, want [40ms 40ms]", slept)
	}
	if got := c.Snapshot()[metrics.CounterClusterRetries]; got != 2 {
		t.Fatalf("retries counter = %d, want 2", got)
	}
}

func TestClusterShedRetryExhaustion(t *testing.T) {
	var calls int
	stub := &stubBackend{name: "r0", multiplyFn: func(apiv1.MultiplyRequest) (*apiv1.MultiplyResponse, error) {
		calls++
		return nil, &serve.QueueFullError{Depth: 4}
	}}
	var slept []time.Duration
	c := New(Config{
		ShedRetries: 2,
		RetryBase:   5 * time.Millisecond,
		RetryMax:    8 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}, stub)

	_, err := c.Multiply(apiv1.MultiplyRequest{Engine: "cpu", A: apiv1.MatrixSpec{Kind: "er", Rows: 8, Cols: 8, Density: 0.5, Seed: 1}})
	if !faults.Shedding(err) {
		t.Fatalf("exhausted retries returned %v, want a shedding error", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (initial + 2 retries)", calls)
	}
	// Exponential backoff capped at RetryMax: 5ms, then 10ms -> 8ms.
	if len(slept) != 2 || slept[0] != 5*time.Millisecond || slept[1] != 8*time.Millisecond {
		t.Fatalf("backoff schedule %v, want [5ms 8ms]", slept)
	}
}

// TestClusterShedRetriesConfig pins the retry-count configuration
// surface: zero value means the default policy, DisableShedRetries is
// the explicit off switch (and wins over any count), and the legacy
// negative sentinel still disables.
func TestClusterShedRetriesConfig(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want int
	}{
		{"zero value keeps default", Config{}, 2},
		{"explicit count", Config{ShedRetries: 5}, 5},
		{"legacy negative sentinel disables", Config{ShedRetries: -1}, 0},
		{"explicit disable", Config{DisableShedRetries: true}, 0},
		{"disable wins over a count", Config{ShedRetries: 5, DisableShedRetries: true}, 0},
	}
	for _, tc := range cases {
		if got := tc.cfg.withDefaults().ShedRetries; got != tc.want {
			t.Errorf("%s: ShedRetries = %d, want %d", tc.name, got, tc.want)
		}
	}

	// Behavior check for the explicit off switch: one call, no sleeps,
	// the shed surfaces immediately.
	var calls int
	stub := &stubBackend{name: "r0", multiplyFn: func(apiv1.MultiplyRequest) (*apiv1.MultiplyResponse, error) {
		calls++
		return nil, &serve.QueueFullError{Depth: 4}
	}}
	c := New(Config{
		DisableShedRetries: true,
		Sleep:              func(time.Duration) { t.Fatal("disabled retries must not sleep") },
	}, stub)
	_, err := c.Multiply(apiv1.MultiplyRequest{Engine: "cpu", A: apiv1.MatrixSpec{Kind: "er", Rows: 8, Cols: 8, Density: 0.5, Seed: 1}})
	if !faults.Shedding(err) {
		t.Fatalf("disabled retries returned %v, want the shed surfaced", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retries)", calls)
	}
}

// TestClusterDrainingNotRetried: a draining rejection must re-route,
// never retry-in-place — DrainingError wraps ErrOverloaded, so a
// classification order bug would wait on a server that already said it
// will never admit again.
func TestClusterDrainingNotRetried(t *testing.T) {
	var r0Calls, r1Calls int
	r0 := &stubBackend{name: "r0", multiplyFn: func(apiv1.MultiplyRequest) (*apiv1.MultiplyResponse, error) {
		r0Calls++
		return nil, &serve.DrainingError{}
	}}
	r1 := &stubBackend{name: "r1", multiplyFn: func(apiv1.MultiplyRequest) (*apiv1.MultiplyResponse, error) {
		r1Calls++
		return &apiv1.MultiplyResponse{Engine: "cpu"}, nil
	}}
	var slept []time.Duration
	c := New(Config{Sleep: func(d time.Duration) { slept = append(slept, d) }}, r0, r1)

	// Find a request whose owner is r0, so the draining answer comes
	// first and the re-route is observable.
	var req apiv1.MultiplyRequest
	for seed := int64(1); ; seed++ {
		req = apiv1.MultiplyRequest{Engine: "cpu", A: apiv1.MatrixSpec{Kind: "er", Rows: 8, Cols: 8, Density: 0.5, Seed: seed}}
		if c.candidates(multiplyKey(req))[0] == "r0" {
			break
		}
	}
	if _, err := c.Multiply(req); err != nil {
		t.Fatalf("draining re-route failed: %v", err)
	}
	if r0Calls != 1 || r1Calls != 1 {
		t.Fatalf("calls r0=%d r1=%d, want exactly one each (no in-place retry)", r0Calls, r1Calls)
	}
	if len(slept) != 0 {
		t.Fatalf("slept %v on a draining answer", slept)
	}
	if got := c.Health()["r0"]; got != HealthDraining {
		t.Fatalf("r0 health %q, want draining", got)
	}
}

// --- hedging ----------------------------------------------------------

func TestClusterHedgedMultiply(t *testing.T) {
	gate := make(chan struct{})
	mk := func(name string, slow bool) *stubBackend {
		return &stubBackend{name: name, multiplyFn: func(apiv1.MultiplyRequest) (*apiv1.MultiplyResponse, error) {
			if slow {
				<-gate
			}
			return &apiv1.MultiplyResponse{Engine: name}, nil
		}}
	}
	// Decide the route order first, then make the owner the slow one so
	// the hedge observably wins.
	probe := New(Config{}, mk("r0", false), mk("r1", false))
	req := apiv1.MultiplyRequest{Engine: "cpu", A: apiv1.MatrixSpec{Kind: "er", Rows: 8, Cols: 8, Density: 0.5, Seed: 7}}
	order := probe.candidates(multiplyKey(req))

	c := New(Config{Hedge: true}, mk(order[0], true), mk(order[1], false))
	resp, err := c.Multiply(req)
	if err != nil {
		t.Fatalf("hedged multiply: %v", err)
	}
	close(gate)
	if resp.Engine != order[1] {
		t.Fatalf("winner %q, want the hedge %q", resp.Engine, order[1])
	}
	snap := c.Snapshot()
	if snap[metrics.CounterClusterHedges] != 1 || snap[metrics.CounterClusterHedgesWon] != 1 {
		t.Fatalf("hedge counters: %v", snap)
	}
}

// --- aggregation ------------------------------------------------------

func TestClusterCountersMergeReplicas(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	for i := 0; i < 3; i++ {
		if _, err := tc.c.Multiply(apiv1.MultiplyRequest{
			Engine: "cpu",
			A:      apiv1.MatrixSpec{Kind: "er", Rows: 24, Cols: 24, Density: 0.1, Seed: int64(i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	merged := tc.c.Counters()
	if merged[metrics.CounterServeAccepted] != 3 {
		t.Fatalf("merged serve_accepted = %d, want 3", merged[metrics.CounterServeAccepted])
	}
	if merged[metrics.CounterClusterRequests] != 3 || merged[metrics.CounterClusterRoutes] != 3 {
		t.Fatalf("cluster counters: %v", merged)
	}
}

func TestClusterDeleteEverywhere(t *testing.T) {
	tc := newTestCluster(t, 3, Config{})
	m := testMatrix(5)
	handle, err := tc.c.StoreMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	// Spread the handle to a second replica via failover.
	route := tc.ownerOf(m)
	tc.chaos[route[0]].Kill()
	if _, err := tc.c.Multiply(apiv1.MultiplyRequest{Engine: "cpu", AHandle: handle}); err != nil {
		t.Fatal(err)
	}
	tc.chaos[route[0]].Revive()
	tc.c.Probe()

	if !tc.c.DeleteMatrix(handle) {
		t.Fatal("delete found nothing")
	}
	if tc.c.DeleteMatrix(handle) {
		t.Fatal("second delete still found the handle")
	}
	// The spill is gone too: a multiply now fails with unknown_handle
	// from the routed replica.
	_, err = tc.c.Multiply(apiv1.MultiplyRequest{Engine: "cpu", AHandle: handle})
	if serve.ErrorCode(err) != apiv1.CodeUnknownHandle {
		t.Fatalf("post-delete multiply: %v", err)
	}
}
