package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/serve"
	"repro/spgemm"
	apiv1 "repro/spgemm/api/v1"
)

// Backend is one serve replica as the coordinator sees it: the
// request-level operations of the serving API plus the introspection
// the health prober and the aggregated /metricsz need. The in-process
// implementation wraps *serve.Server directly; a remote one would
// speak apiv1 over HTTP — the coordinator cannot tell the difference,
// which is what makes the chaos wrapper below an honest stand-in for
// a killed process.
type Backend interface {
	Name() string
	Multiply(req apiv1.MultiplyRequest) (*apiv1.MultiplyResponse, error)
	Batch(req *apiv1.BatchRequest) (*apiv1.BatchResponse, error)
	Store(m *spgemm.Matrix) (string, error)
	// StoreMany uploads a set of matrices as one pipelined transfer —
	// the failover re-upload path. Implementations may fan it out to
	// Store, but a remote backend turns it into a single round trip.
	StoreMany(ms []*spgemm.Matrix) ([]string, error)
	Matrix(handle string) (*spgemm.Matrix, bool)
	Delete(handle string) bool
	Ready() (apiv1.ReadyResponse, error)
	Counters() map[string]int64
	Drain(timeout time.Duration) map[string]int64
}

// localReplica adapts *serve.Server to the Backend interface for the
// in-process cluster mode (CI, tests, the -cluster flag).
type localReplica struct {
	name string
	s    *serve.Server
}

// NewLocalReplica wraps a serve.Server as an in-process Backend.
func NewLocalReplica(name string, s *serve.Server) Backend {
	return &localReplica{name: name, s: s}
}

func (r *localReplica) Name() string { return r.name }
func (r *localReplica) Multiply(req apiv1.MultiplyRequest) (*apiv1.MultiplyResponse, error) {
	return r.s.Multiply(req)
}
func (r *localReplica) Batch(req *apiv1.BatchRequest) (*apiv1.BatchResponse, error) {
	return r.s.SubmitBatch(req)
}
func (r *localReplica) Store(m *spgemm.Matrix) (string, error)      { return r.s.StoreMatrix(m) }
func (r *localReplica) StoreMany(ms []*spgemm.Matrix) ([]string, error) {
	handles := make([]string, len(ms))
	for i, m := range ms {
		h, err := r.s.StoreMatrix(m)
		if err != nil {
			return nil, err
		}
		handles[i] = h
	}
	return handles, nil
}
func (r *localReplica) Matrix(h string) (*spgemm.Matrix, bool)      { return r.s.Matrix(h) }
func (r *localReplica) Delete(h string) bool                        { return r.s.DeleteMatrix(h) }
func (r *localReplica) Ready() (apiv1.ReadyResponse, error)         { return r.s.Ready(), nil }
func (r *localReplica) Counters() map[string]int64                  { return r.s.Snapshot() }
func (r *localReplica) Drain(t time.Duration) map[string]int64      { return r.s.Drain(t) }

// Server exposes the wrapped serve.Server of a local replica (the
// cluster harness uses it to reach test-only surfaces).
func (r *localReplica) Server() *serve.Server { return r.s }

// ChaosConfig is the deterministic failure model of one replica, in
// the style of internal/faults: a seed and the schedule replay the
// identical failure sequence, so every cluster chaos scenario is a
// reproducible test case.
type ChaosConfig struct {
	// Seed feeds the per-replica RNG used by FailRate draws.
	Seed int64
	// FailRate is the per-operation probability the replica drops the
	// request as if the process vanished mid-call (the request is NOT
	// admitted — the coordinator may safely re-route it).
	FailRate float64
	// KillAfterOps kills the replica permanently after that many
	// operations (0 disables); Revive brings it back.
	KillAfterOps int
}

// ChaosBackend wraps a Backend with seeded fault injection. A dead
// replica fails every call — including health probes — with an error
// wrapping faults.ErrReplicaDown, exactly what a connection refused
// would map to for a remote backend.
type ChaosBackend struct {
	inner Backend
	cfg   ChaosConfig

	mu   sync.Mutex
	rng  *rand.Rand
	ops  int
	dead bool
}

// NewChaosBackend wraps inner with the given failure schedule.
func NewChaosBackend(inner Backend, cfg ChaosConfig) *ChaosBackend {
	return &ChaosBackend{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Kill marks the replica dead immediately (the external loss event of
// the chaos suite).
func (c *ChaosBackend) Kill() {
	c.mu.Lock()
	c.dead = true
	c.mu.Unlock()
}

// Revive brings a killed replica back; its op counter restarts so a
// KillAfterOps schedule applies afresh.
func (c *ChaosBackend) Revive() {
	c.mu.Lock()
	c.dead = false
	c.ops = 0
	c.mu.Unlock()
}

// Dead reports whether the replica is currently dead.
func (c *ChaosBackend) Dead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// step advances the op counter and decides this operation's fate.
func (c *ChaosBackend) step() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return fmt.Errorf("cluster: replica %s: %w", c.inner.Name(), faults.ErrReplicaDown)
	}
	c.ops++
	if c.cfg.KillAfterOps > 0 && c.ops >= c.cfg.KillAfterOps {
		c.dead = true
		return fmt.Errorf("cluster: replica %s: %w", c.inner.Name(), faults.ErrReplicaDown)
	}
	if c.cfg.FailRate > 0 && c.rng.Float64() < c.cfg.FailRate {
		return fmt.Errorf("cluster: replica %s dropped the request: %w", c.inner.Name(), faults.ErrReplicaDown)
	}
	return nil
}

func (c *ChaosBackend) Name() string { return c.inner.Name() }

func (c *ChaosBackend) Multiply(req apiv1.MultiplyRequest) (*apiv1.MultiplyResponse, error) {
	if err := c.step(); err != nil {
		return nil, err
	}
	return c.inner.Multiply(req)
}

func (c *ChaosBackend) Batch(req *apiv1.BatchRequest) (*apiv1.BatchResponse, error) {
	if err := c.step(); err != nil {
		return nil, err
	}
	return c.inner.Batch(req)
}

func (c *ChaosBackend) Store(m *spgemm.Matrix) (string, error) {
	if err := c.step(); err != nil {
		return "", err
	}
	return c.inner.Store(m)
}

// StoreMany charges one fault-schedule step for the whole batch: on
// the wire it is one exchange, and the chaos model mirrors that.
func (c *ChaosBackend) StoreMany(ms []*spgemm.Matrix) ([]string, error) {
	if err := c.step(); err != nil {
		return nil, err
	}
	return c.inner.StoreMany(ms)
}

func (c *ChaosBackend) Matrix(h string) (*spgemm.Matrix, bool) {
	if err := c.step(); err != nil {
		return nil, false
	}
	return c.inner.Matrix(h)
}

func (c *ChaosBackend) Delete(h string) bool {
	if err := c.step(); err != nil {
		return false
	}
	return c.inner.Delete(h)
}

// Ready is the probe path: a dead replica's probe fails like a refused
// connection, but probes do not advance the kill schedule — only
// request traffic does, so KillAfterOps stays meaningful regardless of
// the probing cadence.
func (c *ChaosBackend) Ready() (apiv1.ReadyResponse, error) {
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead {
		return apiv1.ReadyResponse{}, fmt.Errorf("cluster: replica %s: %w", c.inner.Name(), faults.ErrReplicaDown)
	}
	return c.inner.Ready()
}

func (c *ChaosBackend) Counters() map[string]int64 { return c.inner.Counters() }

func (c *ChaosBackend) Drain(t time.Duration) map[string]int64 { return c.inner.Drain(t) }
