package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/spgemm"
	apiv1 "repro/spgemm/api/v1"
)

// Transport failure kinds. The distinction feeds the health machine
// with different evidence weights: a refused connection means no
// process is listening (condemn immediately, like a killed in-process
// replica), while a timeout or a reset may be a slow peer or one bad
// exchange (one unit of suspect evidence; DownAfter of them condemn).
const (
	// TransportRefused: connect failed outright — nothing listening.
	TransportRefused = "refused"
	// TransportTimeout: the per-operation deadline expired (slow peer,
	// network black hole, or a partition that eats SYNs).
	TransportTimeout = "timeout"
	// TransportReset: the exchange started and died — connection reset,
	// truncated body, undecodable partial response.
	TransportReset = "reset"
)

// TransportError is a network-layer failure talking to a remote
// replica, classified into one of the transport kinds. It matches
// errors.Is(err, faults.ErrReplicaDown) so every existing coordinator
// path (failover, spill re-upload, shed classification) treats it as
// the replica being unreachable, while errors.As(*TransportError)
// exposes the kind for evidence-weighted health accounting.
type TransportError struct {
	// Replica is the backend name; Kind one of the Transport* kinds.
	Replica string
	Kind    string
	// Err is the underlying transport error.
	Err error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("cluster: replica %s transport %s: %v", e.Replica, e.Kind, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// Is makes the error satisfy errors.Is(err, faults.ErrReplicaDown)
// without hiding the underlying transport error from Unwrap.
func (e *TransportError) Is(target error) bool { return target == faults.ErrReplicaDown }

// classifyTransport maps a raw client error onto a transport kind.
func classifyTransport(err error) string {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return TransportTimeout
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return TransportTimeout
	}
	if errors.Is(err, syscall.ECONNREFUSED) {
		return TransportRefused
	}
	// Everything else — resets, truncated bodies, undecodable partial
	// JSON, EOFs mid-exchange — is evidence the process answered and
	// then died on us.
	return TransportReset
}

// RemoteConfig tunes one remote replica's failure domain: every
// operation class gets its own context deadline, distinct from any job
// deadline inside the request body. The zero value is usable.
type RemoteConfig struct {
	// MultiplyTimeout bounds one multiply or batch exchange end to end
	// (0 means 90s — requests carry their own engine deadline; this
	// only catches a dead transport).
	MultiplyTimeout time.Duration
	// StoreTimeout bounds store/fetch/delete exchanges (0 means 30s).
	StoreTimeout time.Duration
	// ProbeTimeout bounds health probes and counter scrapes (0 means
	// 2s) — the point of the satellite: a probe must not wait out a
	// multiply-sized budget to notice a hung peer.
	ProbeTimeout time.Duration
	// HTTP overrides the transport (tests inject a fault proxy or an
	// httptest client). Nil means a plain http.Client with no
	// client-wide timeout: the per-operation contexts govern.
	HTTP *http.Client
}

func (c RemoteConfig) withDefaults() RemoteConfig {
	if c.MultiplyTimeout <= 0 {
		c.MultiplyTimeout = 90 * time.Second
	}
	if c.StoreTimeout <= 0 {
		c.StoreTimeout = 30 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.HTTP == nil {
		c.HTTP = &http.Client{}
	}
	return c
}

// RemoteReplica is a serve replica behind a real socket, adapted to
// the Backend interface over apiv1. The coordinator cannot tell it
// from a localReplica except through latency: wire error envelopes are
// decoded back into the exact typed errors the in-process server
// returns, so every dispatch the coordinator performs (shed retry,
// draining exclusion, failover, unknown-handle re-upload) works
// unchanged.
type RemoteReplica struct {
	name   string
	url    string
	cfg    RemoteConfig
	client *apiv1.Client

	mu        sync.Mutex
	transport map[string]int64
}

// NewRemoteReplica returns a Backend speaking apiv1 to the serve
// process at url. No client-level retry policy is installed: the
// coordinator owns retries and failover.
func NewRemoteReplica(name, url string, cfg RemoteConfig) *RemoteReplica {
	cfg = cfg.withDefaults()
	return &RemoteReplica{
		name: name, url: strings.TrimRight(url, "/"), cfg: cfg,
		client:    &apiv1.Client{BaseURL: strings.TrimRight(url, "/"), HTTP: cfg.HTTP},
		transport: map[string]int64{},
	}
}

func (r *RemoteReplica) Name() string { return r.name }

// URL returns the replica's base URL (the membership table keys on it).
func (r *RemoteReplica) URL() string { return r.url }

// wrap classifies an error from the wire: an *APIError envelope is
// decoded back into the server's typed taxonomy; anything else is a
// transport failure, counted and classified.
func (r *RemoteReplica) wrap(err error, handle string) error {
	if err == nil {
		return nil
	}
	var ae *apiv1.APIError
	if errors.As(err, &ae) {
		return decodeAPIError(ae, handle)
	}
	kind := classifyTransport(err)
	r.mu.Lock()
	switch kind {
	case TransportRefused:
		r.transport[metrics.CounterClusterRemoteRefused]++
	case TransportTimeout:
		r.transport[metrics.CounterClusterRemoteTimeouts]++
	default:
		r.transport[metrics.CounterClusterRemoteResets]++
	}
	r.mu.Unlock()
	return &TransportError{Replica: r.name, Kind: kind, Err: err}
}

// decodeAPIError turns a wire envelope back into the typed error the
// remote server raised, so errors.Is/As dispatch in the coordinator is
// transport-agnostic. handle seeds UnknownHandleError when the caller
// knows which handle the request named.
func decodeAPIError(ae *apiv1.APIError, handle string) error {
	retry := time.Duration(ae.RetryAfterSec * float64(time.Second))
	switch ae.Code {
	case apiv1.CodeReplicaDown:
		return fmt.Errorf("remote: %s: %w", ae.Message, faults.ErrReplicaDown)
	case apiv1.CodeDraining:
		return &serve.DrainingError{}
	case apiv1.CodeOverloaded:
		return &serve.OverloadError{RetryAfter: retry}
	case apiv1.CodeQueueFull:
		return &serve.QueueFullError{}
	case apiv1.CodeUnknownHandle:
		return &serve.UnknownHandleError{Handle: handle}
	case apiv1.CodeJobPanic:
		return fmt.Errorf("remote: %s: %w", ae.Message, faults.ErrJobPanic)
	case apiv1.CodeDeadline:
		return fmt.Errorf("remote: %s: %w", ae.Message, faults.ErrDeadline)
	case apiv1.CodeOOM:
		return fmt.Errorf("remote: %s: %w", ae.Message, faults.ErrOOM)
	case apiv1.CodeDeviceLost:
		return fmt.Errorf("remote: %s: %w", ae.Message, faults.ErrDeviceLost)
	case apiv1.CodeInvalidDAG, apiv1.CodeShapeMismatch:
		return &serve.BatchError{Code: ae.Code, Reason: ae.Message}
	default:
		return ae
	}
}

func (r *RemoteReplica) Multiply(req apiv1.MultiplyRequest) (*apiv1.MultiplyResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.MultiplyTimeout)
	defer cancel()
	resp, err := r.client.MultiplyCtx(ctx, req)
	if err != nil {
		handle := req.AHandle
		if req.BHandle != "" {
			handle = req.BHandle
		}
		return nil, r.wrap(err, handle)
	}
	return resp, nil
}

func (r *RemoteReplica) Batch(req *apiv1.BatchRequest) (*apiv1.BatchResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.MultiplyTimeout)
	defer cancel()
	resp, err := r.client.BatchCtx(ctx, *req)
	if err != nil {
		return nil, r.wrap(err, "")
	}
	return resp, nil
}

func (r *RemoteReplica) Store(m *spgemm.Matrix) (string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.StoreTimeout)
	defer cancel()
	resp, err := r.client.StoreMatrixCtx(ctx, apiv1.MatrixRequest{Data: apiv1.MatrixDataFrom(m)})
	if err != nil {
		return "", r.wrap(err, "")
	}
	return resp.Handle, nil
}

// StoreMany uploads several matrices in one bulk round trip — the
// pipelined spill re-upload of a failover takeover.
func (r *RemoteReplica) StoreMany(ms []*spgemm.Matrix) ([]string, error) {
	if len(ms) == 0 {
		return nil, nil
	}
	req := apiv1.MatrixBatchRequest{Matrices: make([]apiv1.MatrixRequest, len(ms))}
	for i, m := range ms {
		req.Matrices[i] = apiv1.MatrixRequest{Data: apiv1.MatrixDataFrom(m)}
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.StoreTimeout)
	defer cancel()
	resp, err := r.client.StoreMatrixBulk(ctx, req)
	if err != nil {
		return nil, r.wrap(err, "")
	}
	handles := make([]string, len(resp.Matrices))
	for i := range resp.Matrices {
		handles[i] = resp.Matrices[i].Handle
	}
	return handles, nil
}

func (r *RemoteReplica) Matrix(handle string) (*spgemm.Matrix, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.StoreTimeout)
	defer cancel()
	data, err := r.client.FetchMatrix(ctx, handle)
	if err != nil {
		return nil, false
	}
	m, err := data.Matrix()
	if err != nil {
		return nil, false
	}
	return m, true
}

func (r *RemoteReplica) Delete(handle string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.StoreTimeout)
	defer cancel()
	return r.client.DeleteMatrixCtx(ctx, handle) == nil
}

// Ready is the probe path: bounded by ProbeTimeout, not the multiply
// budget, so a hung replica is detected in probe time.
func (r *RemoteReplica) Ready() (apiv1.ReadyResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
	defer cancel()
	resp, err := r.client.ReadyCtx(ctx)
	if err != nil {
		return apiv1.ReadyResponse{}, r.wrap(err, "")
	}
	return *resp, nil
}

// Counters scrapes the replica's /metricsz and merges the local
// transport counters on top. Derived *_rate ratios are skipped — the
// aggregated snapshot is integer counters; rates are re-derived at the
// aggregation point. An unreachable replica still reports its
// transport counters: the evidence of its unreachability.
func (r *RemoteReplica) Counters() map[string]int64 {
	out := map[string]int64{}
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
	defer cancel()
	snap, err := r.client.MetricsCtx(ctx)
	if err == nil {
		for k, v := range snap {
			if strings.HasSuffix(k, "_rate") {
				continue
			}
			out[k] = int64(v)
		}
	}
	r.mu.Lock()
	for k, v := range r.transport {
		out[k] += v
	}
	r.mu.Unlock()
	return out
}

// TransportCounters returns a copy of only the local transport-failure
// counters (tests and the coordinator's own snapshot use it).
func (r *RemoteReplica) TransportCounters() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.transport))
	for k, v := range r.transport {
		out[k] = v
	}
	return out
}

// Drain asks the remote process to drain and returns its final
// counters. The context allows the drain deadline plus slack for the
// transport; an unreachable replica answers nil (there is nothing to
// reconcile from a process that is gone).
func (r *RemoteReplica) Drain(timeout time.Duration) map[string]int64 {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout+r.cfg.StoreTimeout)
	defer cancel()
	resp, err := r.client.Drain(ctx, apiv1.DrainRequest{TimeoutSec: timeout.Seconds()})
	if err != nil {
		return nil
	}
	return resp.Counters
}
