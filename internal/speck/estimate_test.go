package speck

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/csr"
	"repro/internal/matgen"
)

func bitsEqual(t *testing.T, got, want *csr.Matrix, label string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	if !reflect.DeepEqual(got.RowOffsets, want.RowOffsets) {
		t.Fatalf("%s: RowOffsets differ", label)
	}
	if !reflect.DeepEqual(got.ColIDs, want.ColIDs) {
		t.Fatalf("%s: ColIDs differ", label)
	}
	if len(got.Data) != len(want.Data) {
		t.Fatalf("%s: nnz %d, want %d", label, len(got.Data), len(want.Data))
	}
	for i := range got.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: Data[%d] = %x, want %x", label,
				i, math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]))
		}
	}
}

func estimateTestMatrices() map[string]*csr.Matrix {
	return map[string]*csr.Matrix{
		"rmat":      matgen.RMAT(9, 8, 0.57, 0.19, 0.19, 11),
		"er":        matgen.ER(150, 150, 0.05, 12),
		"band":      matgen.Band(400, 4, 13),
		"blockdiag": matgen.BlockDiag(8, 10, 14),
		"stencil":   matgen.Stencil2D(20, 20),
	}
}

// TestComputeEstimatedBitIdentical is the core invariant of the
// estimation path: the product AND the symbolic plan must be
// bit-for-bit what the exact path produces, across matrix families and
// estimator extremes (defaults, forced fallback, forced overflow).
func TestComputeEstimatedBitIdentical(t *testing.T) {
	cfgs := map[string]EstimatorConfig{
		"default":  {},
		"fallback": {SpreadGate: -1, ExactBelow: -1},
		"overflow": {Safety: 0.01, ExactBelow: -1},
		"sample2":  {SampleK: 2},
	}
	for mname, a := range estimateTestMatrices() {
		want, err := Compute(a, a, model())
		if err != nil {
			t.Fatal(err)
		}
		wantSym, err := SymbolicCompute(a, a, model())
		if err != nil {
			t.Fatal(err)
		}
		for cname, cfg := range cfgs {
			res, sym, stats, err := ComputeEstimated(a, a, model(), cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", mname, cname, err)
			}
			bitsEqual(t, res.C, want.C, mname+"/"+cname)
			if !reflect.DeepEqual(sym, wantSym) {
				t.Fatalf("%s/%s: estimated Symbolic differs from exact", mname, cname)
			}
			if stats.EstimatedRows+stats.FallbackRows == 0 {
				t.Fatalf("%s/%s: no rows processed", mname, cname)
			}
			if cname == "fallback" && stats.EstimatedRows != 0 {
				t.Fatalf("%s/fallback: %d rows estimated despite forced gate", mname, stats.EstimatedRows)
			}
			if res.SymbolicSec >= want.SymbolicSec {
				t.Fatalf("%s/%s: estimated SymbolicSec %v not below exact %v",
					mname, cname, res.SymbolicSec, want.SymbolicSec)
			}
			// The estimated plan must replay like an exact one.
			replay, err := Numeric(sym, a, a)
			if err != nil {
				t.Fatal(err)
			}
			bitsEqual(t, replay.C, want.C, mname+"/"+cname+"/replay")
		}
	}
}

func TestComputeEstimatedOverflowForced(t *testing.T) {
	// A moderately dense square: rows clear ExactBelow and a 1% safety
	// factor guarantees the estimate's capacity is outgrown.
	a := matgen.ER(200, 200, 0.15, 21)
	want, err := Compute(a, a, model())
	if err != nil {
		t.Fatal(err)
	}
	res, _, stats, err := ComputeEstimated(a, a, model(), EstimatorConfig{Safety: 0.01, ExactBelow: -1, SpreadGate: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if stats.OverflowRows == 0 {
		t.Fatal("expected overflow rows with Safety=0.01")
	}
	bitsEqual(t, res.C, want.C, "overflow")
}

func TestEstimateRowsDeterministicAndBounded(t *testing.T) {
	a := matgen.RMAT(9, 8, 0.57, 0.19, 0.19, 31)
	ub := csr.RowUpperBounds(a, a)
	e1 := EstimateRows(a, a, ub, EstimatorConfig{})
	e2 := EstimateRows(a, a, ub, EstimatorConfig{})
	if !reflect.DeepEqual(e1, e2) {
		t.Fatal("EstimateRows is not deterministic")
	}
	width := int64(a.Cols)
	for i := range e1.Caps {
		if ub[i] == 0 {
			if e1.Caps[i] != 0 || e1.Est[i] != 0 || e1.Fallback[i] {
				t.Fatalf("empty row %d got work", i)
			}
			continue
		}
		if e1.Fallback[i] {
			if e1.Caps[i] != 0 {
				t.Fatalf("fallback row %d pre-sized to %d", i, e1.Caps[i])
			}
			continue
		}
		if e1.Caps[i] < 1 || e1.Caps[i] > ub[i] || e1.Caps[i] > width {
			t.Fatalf("row %d cap %d outside [1, min(ub=%d, width=%d)]", i, e1.Caps[i], ub[i], width)
		}
		if e1.Est[i] < 1 || e1.Est[i] > ub[i] {
			t.Fatalf("row %d est %d outside [1, ub=%d]", i, e1.Est[i], ub[i])
		}
	}
}

func TestExpectedDistinct(t *testing.T) {
	cases := []struct {
		width, products, wantMin, wantMax int64
	}{
		{0, 5, 0, 0},
		{10, 0, 0, 0},
		{1, 100, 1, 1},
		{100, 1, 1, 1},
		{1000, 10, 9, 10},   // few balls: nearly all distinct
		{10, 10000, 10, 10}, // saturated: the full width
		{100, 100, 60, 100}, // 1-1/e of the width, roughly
	}
	for _, c := range cases {
		got := ExpectedDistinct(c.width, c.products)
		if got < c.wantMin || got > c.wantMax {
			t.Fatalf("ExpectedDistinct(%d, %d) = %d, want [%d, %d]",
				c.width, c.products, got, c.wantMin, c.wantMax)
		}
	}
}

func TestEstimateTotalNnzOverestimatesUniform(t *testing.T) {
	// Uniform patterns are the estimator's model: the collision-corrected
	// bound must cover the true output size.
	for _, a := range []*csr.Matrix{matgen.Band(300, 3, 41), matgen.Stencil2D(15, 15)} {
		res, err := Compute(a, a, model())
		if err != nil {
			t.Fatal(err)
		}
		est := EstimateTotalNnz(a, a, EstimatorConfig{})
		if est < res.C.Nnz() {
			t.Fatalf("EstimateTotalNnz %d below exact %d", est, res.C.Nnz())
		}
		if est > 4*res.C.Nnz() {
			t.Fatalf("EstimateTotalNnz %d over 4x exact %d", est, res.C.Nnz())
		}
	}
}

func TestModeParseAndString(t *testing.T) {
	for _, c := range []struct {
		s    string
		want Mode
	}{{"", ModeExact}, {"exact", ModeExact}, {"estimate", ModeEstimate}, {"auto", ModeAuto}} {
		got, err := ParseMode(c.s)
		if err != nil || got != c.want {
			t.Fatalf("ParseMode(%q) = %v, %v", c.s, got, err)
		}
	}
	if _, err := ParseMode("banana"); err == nil {
		t.Fatal("ParseMode accepted junk")
	}
	if ModeExact.String() != "exact" || ModeEstimate.String() != "estimate" || ModeAuto.String() != "auto" {
		t.Fatal("Mode.String wrong")
	}
}

func TestModeEstimates(t *testing.T) {
	cfg := EstimatorConfig{AutoFlopsMin: 1000}
	if ModeExact.Estimates(1<<40, cfg) {
		t.Fatal("exact mode estimated")
	}
	if !ModeEstimate.Estimates(1, cfg) {
		t.Fatal("estimate mode declined")
	}
	if ModeAuto.Estimates(999, cfg) {
		t.Fatal("auto estimated below threshold")
	}
	if !ModeAuto.Estimates(1000, cfg) {
		t.Fatal("auto declined at threshold")
	}
}

func TestPickClass(t *testing.T) {
	const width = 1024
	if got := PickClass(100, ListClassMax, width); got != ListClass {
		t.Fatalf("tiny row classed %v", got)
	}
	// Sparse row in a very wide panel: the bitmap flush scan would not
	// amortize, so the hash class serves it.
	if got := PickClass(500, 100, 1<<20); got != HashClass {
		t.Fatalf("sparse wide-panel row classed %v", got)
	}
	// Flop-heavy: each output slot revisited many times.
	if got := PickClass(100*8, 100, 1<<20); got != DenseClass {
		t.Fatalf("flop-heavy row classed %v", got)
	}
	// Dense enough for the bitmap scan to amortize (estNnz = width/256)
	// without tripping the flop-heaviness rule.
	if got := PickClass(64, 32, 8192); got != DenseClass {
		t.Fatalf("bitmap-amortized row classed %v", got)
	}
	// Wide output: covers an eighth of the panel.
	if got := PickClass(200, width/8, width); got != DenseClass {
		t.Fatalf("wide row classed %v", got)
	}
}

func TestEstimatorConfigDefaults(t *testing.T) {
	d := EstimatorConfig{}.WithDefaults()
	if d.SampleK != 8 || d.Safety != 1.5 || d.SpreadGate != 8 || d.ExactBelow != 32 || d.AutoFlopsMin != 2<<20 {
		t.Fatalf("unexpected defaults: %+v", d)
	}
	neg := EstimatorConfig{SpreadGate: -1, ExactBelow: -1}.WithDefaults()
	if neg.SpreadGate != -1 || neg.ExactBelow != -1 {
		t.Fatal("negative extremes must survive WithDefaults")
	}
}
