package speck

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/csr"
	"repro/internal/matgen"
)

// reseedValues returns a copy of m with the same sparsity pattern and
// fresh deterministic values — the iterative-workload shape (AMG
// setup, contraction iterations) the structure-reuse fast path serves.
func reseedValues(m *csr.Matrix, seed int64) *csr.Matrix {
	rng := rand.New(rand.NewSource(seed))
	out := &csr.Matrix{
		Rows:       m.Rows,
		Cols:       m.Cols,
		RowOffsets: m.RowOffsets,
		ColIDs:     m.ColIDs,
		Data:       make([]float64, len(m.Data)),
	}
	for i := range out.Data {
		out.Data[i] = rng.NormFloat64()
	}
	return out
}

// bitIdentical asserts two matrices match structure-for-structure and
// bit-for-bit in their values (== would treat -0.0 and +0.0 as equal
// and NaN as unequal; the fast path promises stronger).
func bitIdentical(t *testing.T, cold, warm *csr.Matrix) {
	t.Helper()
	if cold.Rows != warm.Rows || cold.Cols != warm.Cols {
		t.Fatalf("dims %dx%d != %dx%d", cold.Rows, cold.Cols, warm.Rows, warm.Cols)
	}
	if len(cold.RowOffsets) != len(warm.RowOffsets) || len(cold.ColIDs) != len(warm.ColIDs) || len(cold.Data) != len(warm.Data) {
		t.Fatalf("array lengths differ: offsets %d/%d cols %d/%d data %d/%d",
			len(cold.RowOffsets), len(warm.RowOffsets), len(cold.ColIDs), len(warm.ColIDs), len(cold.Data), len(warm.Data))
	}
	for i := range cold.RowOffsets {
		if cold.RowOffsets[i] != warm.RowOffsets[i] {
			t.Fatalf("row offset %d: %d != %d", i, cold.RowOffsets[i], warm.RowOffsets[i])
		}
	}
	for i := range cold.ColIDs {
		if cold.ColIDs[i] != warm.ColIDs[i] {
			t.Fatalf("col id %d: %d != %d", i, cold.ColIDs[i], warm.ColIDs[i])
		}
	}
	for i := range cold.Data {
		if math.Float64bits(cold.Data[i]) != math.Float64bits(warm.Data[i]) {
			t.Fatalf("value %d: %x != %x (%v vs %v)", i,
				math.Float64bits(cold.Data[i]), math.Float64bits(warm.Data[i]), cold.Data[i], warm.Data[i])
		}
	}
}

// TestNumericByteIdenticalToCold is the fast path's core contract: a
// warm numeric-only re-multiply against a cached symbolic plan is
// bit-for-bit the product a cold Compute of the same inputs returns.
func TestNumericByteIdenticalToCold(t *testing.T) {
	mats := []*csr.Matrix{
		matgen.RMAT(9, 8, 0.57, 0.19, 0.19, 42),
		matgen.Band(400, 6, 43),
		matgen.ER(120, 120, 0.05, 44),
	}
	for _, a := range mats {
		sym, err := SymbolicCompute(a, a, model())
		if err != nil {
			t.Fatal(err)
		}
		for it := int64(0); it < 3; it++ {
			fresh := reseedValues(a, 100+it)
			cold, err := Compute(fresh, fresh, model())
			if err != nil {
				t.Fatal(err)
			}
			warm, err := Numeric(sym, fresh, fresh)
			if err != nil {
				t.Fatal(err)
			}
			bitIdentical(t, cold.C, warm.C)
		}
	}
}

// TestNumericSharesStructure pins the zero-copy contract: warm
// products share the plan's structure arrays and only allocate values.
func TestNumericSharesStructure(t *testing.T) {
	a := matgen.RMAT(8, 8, 0.57, 0.19, 0.19, 45)
	sym, err := SymbolicCompute(a, a, model())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Numeric(sym, a, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(sym.ColIDs) > 0 && &res.C.ColIDs[0] != &sym.ColIDs[0] {
		t.Fatal("warm product does not share the plan's ColIDs array")
	}
	if &res.C.RowOffsets[0] != &sym.RowOffsets[0] {
		t.Fatal("warm product does not share the plan's RowOffsets array")
	}
}

// TestNumericShapeMismatch rejects operands that do not match the plan.
func TestNumericShapeMismatch(t *testing.T) {
	a := matgen.ER(30, 30, 0.1, 46)
	b := matgen.ER(20, 20, 0.1, 47)
	sym, err := SymbolicCompute(a, a, model())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Numeric(sym, b, b); err == nil {
		t.Fatal("shape mismatch not rejected")
	}
}

// TestSymbolicMetadataMatchesCompute pins that the split did not drift
// from the fused pipeline: every values-independent field of a cold
// Result equals the Symbolic it was derived from.
func TestSymbolicMetadataMatchesCompute(t *testing.T) {
	a := matgen.RMAT(9, 8, 0.57, 0.19, 0.19, 48)
	sym, err := SymbolicCompute(a, a, model())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(a, a, model())
	if err != nil {
		t.Fatal(err)
	}
	if sym.Flops != res.Flops || sym.HashFlops != res.HashFlops || sym.DenseFlops != res.DenseFlops {
		t.Fatalf("flops drift: sym (%d,%d,%d) vs compute (%d,%d,%d)",
			sym.Flops, sym.HashFlops, sym.DenseFlops, res.Flops, res.HashFlops, res.DenseFlops)
	}
	if sym.NumericSec != res.NumericSec || sym.SymbolicSec != res.SymbolicSec || sym.AnalysisSec != res.AnalysisSec {
		t.Fatal("phase costs drift between Symbolic and Compute")
	}
	if sym.OutputBytes != res.OutputBytes || sym.WorkspaceBytes != res.WorkspaceBytes {
		t.Fatalf("size drift: output %d/%d workspace %d/%d",
			sym.OutputBytes, res.OutputBytes, sym.WorkspaceBytes, res.WorkspaceBytes)
	}
	if sym.OutputBytes != res.C.Bytes() {
		t.Fatalf("symbolic OutputBytes %d != materialized product bytes %d", sym.OutputBytes, res.C.Bytes())
	}
	if len(sym.Groups) != len(res.Groups) {
		t.Fatalf("group count drift: %d != %d", len(sym.Groups), len(res.Groups))
	}
	if sym.Bytes() <= 0 {
		t.Fatal("Symbolic.Bytes must be positive for cache accounting")
	}
}
